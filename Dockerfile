# Build the buspower binary from source; the runtime stage carries only
# the static binary and CA certificates.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/buspower ./cmd/buspower

FROM alpine:3.20
RUN apk add --no-cache ca-certificates curl && adduser -D -u 10001 buspower
USER buspower
COPY --from=build /out/buspower /usr/local/bin/buspower
# The trace cache defaults to the user cache dir; keep it on a volume so
# warmed simulations survive container restarts.
VOLUME ["/home/buspower/.cache/buspower"]
EXPOSE 8080
ENTRYPOINT ["buspower"]
CMD ["serve", "-addr", ":8080"]
