package buspower

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per artifact, each printing nothing but timing the full
// regeneration at the quick scale), measures the ablations called out in
// DESIGN.md §5 as custom metrics, and micro-benchmarks the hot paths.
//
// Run everything:   go test -bench=. -benchmem
// One artifact:     go test -bench=BenchmarkFig19
// Full-scale data:  go run ./cmd/buspower -exp all -o results/

import (
	"context"
	"testing"

	"buspower/internal/bus"
	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/cpu"
	"buspower/internal/experiments"
	"buspower/internal/stats"
	"buspower/internal/wire"
	"buspower/internal/workload"
)

// benchExperiment times regenerating one artifact at the quick scale
// (workload traces are cached after the warm-up run, so the measurement
// covers the sweep itself, like repeated reruns would in practice).
func benchExperiment(b *testing.B, id string) {
	cfg := experiments.QuickConfig()
	if _, err := experiments.Run(id, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B)  { benchExperiment(b, "fig24") }
func BenchmarkFig25(b *testing.B)  { benchExperiment(b, "fig25") }
func BenchmarkFig26(b *testing.B)  { benchExperiment(b, "fig26") }
func BenchmarkFig35(b *testing.B)  { benchExperiment(b, "fig35") }
func BenchmarkFig36(b *testing.B)  { benchExperiment(b, "fig36") }
func BenchmarkFig37(b *testing.B)  { benchExperiment(b, "fig37") }
func BenchmarkFig38(b *testing.B)  { benchExperiment(b, "fig38") }

// --- The concurrent experiment engine ---

// benchRunAll times regenerating a set of artifacts through the parallel
// engine at the given pool width; compare widths (and the serial
// Benchmark* entries above) to see the engine's speedup on this machine.
func benchRunAll(b *testing.B, jobs int) {
	cfg := experiments.QuickConfig()
	ids := []string{"fig7", "fig8", "fig16", "fig18", "extvlc"}
	if _, err := experiments.RunAll(context.Background(), cfg, ids, experiments.Options{Jobs: jobs}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(context.Background(), cfg, ids, experiments.Options{Jobs: jobs}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllJobs1(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkRunAllJobs4(b *testing.B) { benchRunAll(b, 4) }
func BenchmarkRunAllMax(b *testing.B)   { benchRunAll(b, 0) }

// The single-flight trace cache under contention: all goroutines ask for
// an already-simulated key; the measurement is pure cache-hit overhead.
func BenchmarkTracesCacheHit(b *testing.B) {
	cfg := workload.RunConfig{MaxInstructions: 50_000, MaxBusValues: 5_000}
	if _, err := workload.Traces("li", cfg); err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := workload.Traces("li", cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ---
// Each reports the design choice's effect as a custom metric alongside the
// runtime cost of evaluating it.

// hotTrace is shared ablation traffic: a hot value set with noise.
func hotTrace(n int) []uint64 {
	rng := stats.NewRNG(424242)
	hot := make([]uint64, 8)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	out := make([]uint64, n)
	for i := range out {
		if rng.Intn(6) == 0 {
			out[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			out[i] = hot[rng.Intn(len(hot))]
		}
	}
	return out
}

// Selective precharge vs naive full-width CAM probing: comparator
// bit-charges saved.
func BenchmarkAblationSelectivePrecharge(b *testing.B) {
	rng := stats.NewRNG(7)
	tags := make([]uint64, 2048)
	for i := range tags {
		tags[i] = rng.Uint64() & 0xFFFFFFFF
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		cam := circuit.NewCAM(8, 32, 8)
		for j := 0; j < 8; j++ {
			cam.Write(j, tags[j])
		}
		for _, t := range tags {
			cam.Match(t)
		}
		ratio = float64(cam.Charges()) / float64(cam.NaiveMatchCharges())
	}
	b.ReportMetric(ratio, "charge-ratio")
}

// Coupling-aware codeword ordering (λ=1 codebook) vs weight-only (λ=0):
// coded cost difference at Λ=1.
func BenchmarkAblationCouplingAwareCodebook(b *testing.B) {
	trace := hotTrace(20000)
	var gain float64
	for i := 0; i < b.N; i++ {
		w0, err := coding.NewWindow(32, 8, 0)
		if err != nil {
			b.Fatal(err)
		}
		w1, err := coding.NewWindow(32, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		r0 := coding.MustEvaluate(w0, trace, 1)
		r1 := coding.MustEvaluate(w1, trace, 1)
		gain = r0.CodedCost()/r1.CodedCost() - 1
	}
	b.ReportMetric(100*gain, "coupling-cost-saved-%")
}

// λN-aware inversion coding vs λ0 at high actual Λ (the Figure 15 story).
func BenchmarkAblationInversionLambda(b *testing.B) {
	rng := stats.NewRNG(12)
	trace := make([]uint64, 20000)
	for i := range trace {
		trace[i] = rng.Uint64() & 0xFFFFFFFF
	}
	pats, err := coding.DefaultInversionPatterns(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	const actual = 10.0
	var gain float64
	for i := 0; i < b.N; i++ {
		l0, err := coding.NewInversion(32, pats, 0)
		if err != nil {
			b.Fatal(err)
		}
		lN, err := coding.NewInversion(32, pats, actual)
		if err != nil {
			b.Fatal(err)
		}
		r0 := coding.MustEvaluate(l0, trace, actual)
		rN := coding.MustEvaluate(lN, trace, actual)
		gain = r0.CodedCost()/rN.CodedCost() - 1
	}
	b.ReportMetric(100*gain, "lambdaN-cost-saved-%")
}

// Counter division on vs off across a phase change in the traffic.
func BenchmarkAblationCounterDivision(b *testing.B) {
	rng := stats.NewRNG(33)
	// Phase 1 hot set, then phase 2 hot set: without division the stale
	// phase-1 counters pin the table.
	trace := make([]uint64, 40000)
	phase1 := make([]uint64, 8)
	phase2 := make([]uint64, 8)
	for i := range phase1 {
		phase1[i] = rng.Uint64() & 0xFFFFFFFF
		phase2[i] = rng.Uint64() & 0xFFFFFFFF
	}
	for i := range trace {
		set := phase1
		if i >= len(trace)/2 {
			set = phase2
		}
		trace[i] = set[rng.Intn(len(set))]
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		mk := func(period int) coding.Result {
			ctx, err := coding.NewContext(coding.ContextConfig{
				Width: 32, TableSize: 8, ShiftEntries: 4,
				DividePeriod: period, Lambda: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			return coding.MustEvaluate(ctx, trace, 1)
		}
		off := mk(0)
		on := mk(1024)
		gain = off.CodedCost()/on.CodedCost() - 1
	}
	b.ReportMetric(100*gain, "division-cost-saved-%")
}

// Window vs context design at equal total entries: savings per pJ.
func BenchmarkAblationWindowVsContext(b *testing.B) {
	trace := hotTrace(20000)
	opE, err := circuit.OpEnergiesFor(wire.Tech130)
	if err != nil {
		b.Fatal(err)
	}
	var winPerPJ, ctxPerPJ float64
	for i := 0; i < b.N; i++ {
		win, err := coding.NewWindow(32, 12, 1)
		if err != nil {
			b.Fatal(err)
		}
		ctx, err := coding.NewContext(coding.ContextConfig{
			Width: 32, TableSize: 8, ShiftEntries: 4, DividePeriod: 4096, Lambda: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rw := coding.MustEvaluate(win, trace, 1)
		rc := coding.MustEvaluate(ctx, trace, 1)
		winPerPJ = rw.EnergyRemoved() / (opE.PairEnergyPJ(rw.Ops) / float64(rw.Ops.Cycles))
		ctxPerPJ = rc.EnergyRemoved() / (opE.PairEnergyPJ(rc.Ops) / float64(rc.Ops.Cycles))
	}
	b.ReportMetric(winPerPJ, "window-removed-per-pJ")
	b.ReportMetric(ctxPerPJ, "context-removed-per-pJ")
}

// Pointer-based vs naive shift register: storage bit toggles per insert.
func BenchmarkAblationShiftRegister(b *testing.B) {
	rng := stats.NewRNG(21)
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = rng.Uint64() & 0xFFFFFFFF
	}
	var ptrPer, naivePer float64
	for i := 0; i < b.N; i++ {
		naive := circuit.NewNaiveShiftRegister(8)
		ptr := circuit.NewPointerShiftRegister(8)
		for _, v := range vals {
			naive.Insert(v)
			ptr.Insert(v)
		}
		naivePer = float64(naive.BitTransitions()) / float64(len(vals))
		ptrPer = float64(ptr.BitTransitions()) / float64(len(vals))
	}
	b.ReportMetric(ptrPer, "pointer-toggles-per-insert")
	b.ReportMetric(naivePer, "naive-toggles-per-insert")
}

// Johnson vs binary counting: register bit toggles per count.
func BenchmarkAblationJohnsonCounter(b *testing.B) {
	var johnson, binary float64
	for i := 0; i < b.N; i++ {
		j := circuit.NewJohnsonCounter(4)
		const n = 4000
		for k := 0; k < n; k++ {
			j.Increment()
		}
		johnson = float64(j.BitTransitions) / n
		// Binary counter toggles = popcount(k XOR k+1) summed.
		total := 0
		for k := 0; k < n; k++ {
			total += bus.Weight(bus.Word(k) ^ bus.Word(k+1))
		}
		binary = float64(total) / n
	}
	b.ReportMetric(johnson, "johnson-toggles-per-count")
	b.ReportMetric(binary, "binary-toggles-per-count")
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkMeterRecord(b *testing.B) {
	rng := stats.NewRNG(1)
	vals := make([]bus.Word, 4096)
	for i := range vals {
		vals[i] = bus.Word(rng.Uint64())
	}
	m := bus.NewMeter(34)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Record(vals[i&4095])
	}
}

func BenchmarkWindowEncode(b *testing.B) {
	trace := hotTrace(4096)
	win, err := coding.NewWindow(32, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	enc := win.NewEncoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(trace[i&4095])
	}
}

func BenchmarkContextEncode(b *testing.B) {
	trace := hotTrace(4096)
	ctx, err := coding.NewContext(coding.ContextConfig{
		Width: 32, TableSize: 28, ShiftEntries: 4, DividePeriod: 4096, Lambda: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	enc := ctx.NewEncoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(trace[i&4095])
	}
}

func BenchmarkStrideEncode(b *testing.B) {
	str, err := coding.NewStride(32, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	enc := str.NewEncoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(uint64(i) * 12)
	}
}

func BenchmarkInversionEncode(b *testing.B) {
	pats, err := coding.DefaultInversionPatterns(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	inv, err := coding.NewInversion(32, pats, 1)
	if err != nil {
		b.Fatal(err)
	}
	enc := inv.NewEncoder()
	rng := stats.NewRNG(3)
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(vals[i&4095])
	}
}

func BenchmarkSimulator(b *testing.B) {
	w, err := workload.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := cpu.NewSimulator(p, cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		tr := sim.Run(100_000, 0)
		if tr.Instructions == 0 {
			b.Fatal("no instructions executed")
		}
	}
	b.SetBytes(100_000) // report instruction throughput as MB/s ~ Minstr/s
}

func BenchmarkCAMMatch(b *testing.B) {
	cam := circuit.NewCAM(32, 32, 8)
	rng := stats.NewRNG(5)
	for i := 0; i < 32; i++ {
		cam.Write(i, rng.Uint64())
	}
	probes := make([]uint64, 4096)
	for i := range probes {
		probes[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cam.Match(probes[i&4095])
	}
}
