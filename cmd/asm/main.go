// Command asm assembles, disassembles and functionally executes programs
// for the reproduction's 32-bit RISC ISA — the same toolchain the
// workload suite is built on, exposed for writing new benchmarks.
//
// Usage:
//
//	asm -disasm prog.s                 # listing with instruction indices
//	asm -run prog.s                    # execute; print exit state
//	asm -run prog.s -trace -max 20     # per-instruction execution trace
//	asm -run prog.s -timing            # run under the OoO timing model
package main

import (
	"flag"
	"fmt"
	"os"

	"buspower/internal/cpu"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		disasm   = flag.Bool("disasm", false, "print the assembled instruction listing")
		runIt    = flag.Bool("run", false, "execute the program functionally")
		timing   = flag.Bool("timing", false, "with -run: use the out-of-order timing model and report IPC")
		traceIt  = flag.Bool("trace", false, "with -run: print each executed instruction")
		maxInstr = flag.Uint64("max", 10_000_000, "instruction budget")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("need exactly one source file")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	p, err := cpu.Assemble(string(src))
	if err != nil {
		return err
	}

	if *disasm {
		fmt.Printf("# %d instructions, %d data bytes\n", len(p.Instrs), len(p.Data))
		labelsAt := map[int32][]string{}
		for name, addr := range p.Labels {
			if int(addr) <= len(p.Instrs) {
				labelsAt[addr] = append(labelsAt[addr], name)
			}
		}
		for i, in := range p.Instrs {
			for _, l := range labelsAt[int32(i)] {
				fmt.Printf("%s:\n", l)
			}
			fmt.Printf("%5d:  %s\n", i, in)
		}
	}

	if !*runIt {
		if !*disasm {
			fmt.Printf("assembled ok: %d instructions, %d data bytes\n", len(p.Instrs), len(p.Data))
		}
		return nil
	}

	if *timing {
		sim, err := cpu.NewSimulator(p, cpu.DefaultConfig())
		if err != nil {
			return err
		}
		tr := sim.Run(*maxInstr, 0)
		fmt.Printf("instructions: %d\ncycles:       %d\nIPC:          %.3f\n",
			tr.Instructions, tr.Cycles, tr.IPC)
		fmt.Printf("L1D miss:     %.2f%%\nL2 miss:      %.2f%%\nbranch acc:   %.2f%%\n",
			100*tr.L1DMissRate, 100*tr.L2MissRate, 100*tr.BranchAccuracy)
		fmt.Printf("bus beats:    %d register, %d memory\n", len(tr.RegisterBus), len(tr.MemoryBus))
		return nil
	}

	core, err := cpu.NewCore(p)
	if err != nil {
		return err
	}
	var executed uint64
	for !core.Halted() && executed < *maxInstr {
		info := core.Step()
		executed++
		if *traceIt {
			fmt.Printf("%5d:  %-28s", info.Index, info.Instr)
			if info.IsLoad || info.IsStore {
				fmt.Printf("  [%#x] = %#x", info.Addr, info.Data)
			}
			fmt.Println()
		}
	}
	fmt.Printf("halted=%v after %d instructions\n", core.Halted(), executed)
	for r := 1; r < 32; r++ {
		if core.R[r] != 0 {
			fmt.Printf("  r%-2d = %d (%#x)\n", r, int32(core.R[r]), core.R[r])
		}
	}
	return nil
}
