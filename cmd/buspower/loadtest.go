package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"buspower/pkg/buspowersdk"
)

// `buspower loadtest`: closed-loop warm-path throughput measurement
// against one server or a whole shard group. A fixed set of distinct
// requests is generated deterministically from a seed, warmed into
// every cache layer (memo, response cache, peer-filled non-owner
// caches), then hammered by N concurrent workers round-robining across
// the targets. The committed JSON report carries the machine context
// (CPU count, GOMAXPROCS) alongside the numbers, because absolute
// throughput is meaningless without it.

// loadtestReport is the committed artifact (results/LOADTEST_*.json).
type loadtestReport struct {
	Schema     int       `json:"schema"`
	Created    time.Time `json:"created"`
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	NumCPU     int       `json:"num_cpu"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	Targets      []string `json:"targets"`
	Concurrency  int      `json:"concurrency"`
	DistinctKeys int      `json:"distinct_requests"`
	Scheme       string   `json:"scheme"`
	TraceLen     int      `json:"trace_len"`
	WarmupSecs   float64  `json:"warmup_seconds"`
	MeasuredSecs float64  `json:"measured_seconds"`

	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	ReqPerSec    float64 `json:"requests_per_second"`
	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP95 float64 `json:"latency_ms_p95"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	Note         string  `json:"note,omitempty"`
}

// loadtestRequests derives the distinct request set: deterministic
// inline traces (xorshift from the seed), so every run against the
// same flags measures the same key population — and so a shard group
// spreads them across owners. Bodies are marshalled once, up front:
// the hot loop sends fixed bytes through EvalRaw, keeping the
// generator's per-request JSON cost out of the measurement.
func loadtestRequests(keys, traceLen int, scheme string, seed uint64) ([][]byte, error) {
	bodies := make([][]byte, keys)
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := range bodies {
		values := make([]uint64, traceLen)
		for j := range values {
			values[j] = next()
		}
		body, err := json.Marshal(buspowersdk.EvalRequest{Values: values, Scheme: scheme})
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	return bodies, nil
}

// runLoadtest implements the `buspower loadtest` subcommand.
func runLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	var (
		servers     = fs.String("servers", "http://localhost:8080", "comma-separated target base URLs (a shard group's members, or one server)")
		concurrency = fs.Int("c", 32, "concurrent closed-loop workers")
		duration    = fs.Duration("duration", 10*time.Second, "measured phase length")
		warmup      = fs.Duration("warmup", 2*time.Second, "cache warm-up phase length (not measured)")
		keys        = fs.Int("keys", 64, "distinct requests in the working set")
		traceLen    = fs.Int("trace-len", 64, "inline trace length per request")
		scheme      = fs.String("scheme", "gray", "coding scheme under load")
		seed        = fs.Uint64("seed", 0x9E3779B97F4A7C15, "request-generation seed")
		out         = fs.String("out", "", "write the JSON report to this file (default stdout)")
		note        = fs.String("note", "", "free-form context recorded in the report")
		minRPS      = fs.Float64("min-rps", 0, "fail unless measured req/s >= this (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := strings.Split(*servers, ",")
	for i := range targets {
		targets[i] = strings.TrimSpace(targets[i])
	}
	clients := make([]*buspowersdk.Client, len(targets))
	for i, u := range targets {
		// No retries: under load, a shed request must count as a shed
		// request, not hide inside a backoff loop.
		c, err := buspowersdk.New(u, buspowersdk.WithRetries(0))
		if err != nil {
			return err
		}
		clients[i] = c
	}
	reqs, err := loadtestRequests(*keys, *traceLen, *scheme, *seed)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Warm-up: push every request through every target once (fills each
	// replica's response cache, via peer fetch where it is not the
	// owner), then free-run the remaining warm-up budget.
	for _, c := range clients {
		for i := range reqs {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if _, err := c.EvalRaw(ctx, reqs[i]); err != nil {
				return fmt.Errorf("warm-up against %s: %w", c.BaseURL(), err)
			}
		}
	}
	warmCtx, cancelWarm := context.WithTimeout(ctx, *warmup)
	runWorkers(warmCtx, *concurrency, clients, reqs, nil, nil)
	cancelWarm()
	if ctx.Err() != nil {
		return ctx.Err()
	}

	// Measured phase.
	var requests, errors atomic.Uint64
	latencies := make([][]time.Duration, *concurrency)
	measCtx, cancelMeas := context.WithTimeout(ctx, *duration)
	start := time.Now()
	runWorkers(measCtx, *concurrency, clients, reqs, &latencies, func(ok bool) {
		requests.Add(1)
		if !ok {
			errors.Add(1)
		}
	})
	elapsed := time.Since(start)
	cancelMeas()

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Microseconds()) / 1000
	}

	rep := loadtestReport{
		Schema:       1,
		Created:      time.Now().UTC(),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Targets:      targets,
		Concurrency:  *concurrency,
		DistinctKeys: *keys,
		Scheme:       *scheme,
		TraceLen:     *traceLen,
		WarmupSecs:   warmup.Seconds(),
		MeasuredSecs: elapsed.Seconds(),
		Requests:     requests.Load(),
		Errors:       errors.Load(),
		ReqPerSec:    float64(requests.Load()-errors.Load()) / elapsed.Seconds(),
		LatencyMsP50: pct(0.50),
		LatencyMsP95: pct(0.95),
		LatencyMsP99: pct(0.99),
		Note:         *note,
	}
	fmt.Fprintf(os.Stderr, "loadtest: %d req (%d errors) in %.2fs = %.0f req/s; p50 %.3fms p95 %.3fms p99 %.3fms\n",
		rep.Requests, rep.Errors, rep.MeasuredSecs, rep.ReqPerSec, rep.LatencyMsP50, rep.LatencyMsP95, rep.LatencyMsP99)

	if *out != "" {
		if dir := filepath.Dir(*out); dir != "." && dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	} else if err := printJSON(rep); err != nil {
		return err
	}
	if *minRPS > 0 && rep.ReqPerSec < *minRPS {
		return fmt.Errorf("loadtest: %.0f req/s is below the %.0f floor", rep.ReqPerSec, *minRPS)
	}
	return nil
}

// runWorkers drives the closed loop until ctx ends. latencies (when
// non-nil) receives each worker's sample slice; done (when non-nil) is
// called per completed request.
func runWorkers(ctx context.Context, n int, clients []*buspowersdk.Client, reqs [][]byte, latencies *[][]time.Duration, done func(ok bool)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []time.Duration
			for i := w; ctx.Err() == nil; i++ {
				c := clients[i%len(clients)]
				req := reqs[i%len(reqs)]
				t0 := time.Now()
				_, err := c.EvalRaw(ctx, req)
				if ctx.Err() != nil {
					break // deadline mid-request: not a sample
				}
				if latencies != nil {
					local = append(local, time.Since(t0))
				}
				if done != nil {
					done(err == nil)
				}
			}
			if latencies != nil {
				(*latencies)[w] = local
			}
		}(w)
	}
	wg.Wait()
}
