// Command buspower reproduces the tables and figures of "Exploiting
// Prediction to Reduce Power on Buses" (Wen, UCB/CSD-3-1294).
//
// Usage:
//
//	buspower -list
//	buspower -exp table3
//	buspower -exp fig15,fig16 -quick
//	buspower -exp all -o results/ -jobs 8 -v
//	buspower -exp all -trace-cache /tmp/traces
//	buspower -exp all -verify full
//	buspower bench -quick -out results/BENCH_PR9.json
//	buspower serve -addr :8080 -workers 8
//	buspower serve -addr :8081 -self n1 -peers n0=http://h0:8080,n1=http://h1:8081
//	buspower eval -server http://localhost:8080 -scheme gray -random 10000
//	buspower job -server http://localhost:8080 -suite table3,fig15 -watch
//	buspower loadtest -servers http://h0:8080,http://h1:8081 -c 64 -duration 15s
//
// Experiments run concurrently on a bounded worker pool (-jobs, default
// GOMAXPROCS) with deterministic output: the printed TSVs are
// byte-identical to running each experiment serially. Each experiment
// prints (or writes) a TSV table whose series correspond to the paper's
// artifact; see DESIGN.md for the per-experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers.
//
// Simulated traces are cached twice: in memory within one run, and in a
// persistent content-addressed directory across runs (default:
// os.UserCacheDir()/buspower/traces; override with -trace-cache, disable
// with -no-disk-cache). Cache keys hash the program text, the core
// configuration, the run bounds and the container format version, so a
// stale entry can never be served. Whole evaluation results are further
// memoized in-process (single-flight, LRU-bounded), so experiments that
// revisit a (transcoder config, trace, Λ) point compute it once; -v
// prints the memo's hit/miss counters.
//
// Decoder round-trip checking follows -verify: "sampled" (the default
// for experiment runs) checks the first window of every trace live plus
// a periodic sample replayed at the end; "full" checks every cycle;
// "off" disables the self-check. The printed tables are bit-identical
// under every policy — only the failure-detection latitude changes.
//
// The bench subcommand runs the kernel micro-benchmarks and an
// end-to-end quick regeneration, writing a JSON report comparable across
// PRs (see "Profiling & benchmarking" in README.md). Both modes accept
// -cpuprofile/-memprofile for pprof captures.
//
// The serve subcommand exposes the same memoized evaluation engine as an
// HTTP JSON API (POST /v1/eval, plus /v1/schemes, /v1/workloads,
// /healthz and Prometheus-format /metrics); see "Serving" in README.md.
// With -self/-peers, replicas form a static consistent-hash cache group:
// each request key has owner replicas, non-owners fetch cached results
// over the internal /v1/peer API before computing locally, and any peer
// failure degrades to local compute (see "Serving topology" in README.md).
// Batches and whole experiment suites run asynchronously behind
// POST /v1/jobs: jobs are content-addressed, drained by a dedicated
// worker pool, observable via GET /v1/jobs/{id} (or the SSE stream at
// /v1/jobs/{id}/events), cancellable via DELETE, and journaled under
// -jobs-dir so completed results survive restarts; see "Jobs API" in
// README.md.
//
// The eval and job subcommands are remote clients for a running server,
// built on the typed SDK (pkg/buspowersdk): eval runs one synchronous
// evaluation; job submits, lists, watches (SSE) and cancels async jobs.
// The loadtest subcommand measures closed-loop warm-path throughput
// against one server or a whole shard group and writes a JSON report
// that records the machine context next to the numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"buspower/internal/bench"
	"buspower/internal/coding"
	"buspower/internal/experiments"
	"buspower/internal/report"
	"buspower/internal/workload"
)

func main() {
	subcommands := map[string]func([]string) error{
		"bench":    runBench,
		"serve":    runServe,
		"eval":     runEval,
		"job":      runJob,
		"loadtest": runLoadtest,
	}
	if len(os.Args) > 1 {
		if sub, ok := subcommands[os.Args[1]]; ok {
			if err := sub(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "buspower %s: %v\n", os.Args[1], err)
				os.Exit(1)
			}
			return
		}
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "buspower:", err)
		os.Exit(1)
	}
}

// profileFlags registers -cpuprofile/-memprofile on fs and returns a
// start function whose returned stop function finishes both captures.
func profileFlags(fs *flag.FlagSet) func() (stop func() error, err error) {
	cpu := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	mem := fs.String("memprofile", "", "write a pprof heap profile to this file")
	return func() (func() error, error) {
		var cpuFile *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				return nil, err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, err
			}
			cpuFile = f
		}
		memPath := *mem
		return func() error {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					return err
				}
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					return err
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
}

// runBench implements the `buspower bench` subcommand.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "short per-kernel benchmark budget (CI smoke); skips the full-scale e2e phase")
		skipE2E   = fs.Bool("skip-e2e", false, "skip the end-to-end -exp all -quick timing")
		out       = fs.String("out", "results/BENCH_PR9.json", "write the JSON report to this file ('-' for stdout)")
		baseline  = fs.String("baseline", "", "previous report to embed baseline numbers and speedups from")
		note      = fs.String("note", "", "free-form context recorded in the report (machine caveats, why the run was taken)")
		benchtime = fs.Duration("benchtime", 0, "per-kernel time budget (0 = 500ms, or 30ms with -quick)")
		minRatio  = fs.Float64("min-throughput-ratio", 0, "fail unless suite throughput ÷ baseline throughput ≥ this (requires -baseline; 0 disables)")
		quiet     = fs.Bool("q", false, "suppress per-kernel progress on stderr")
	)
	startProfiles := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := bench.Options{Quick: *quick, SkipE2E: *skipE2E, BenchTime: *benchtime, Note: *note}
	if *baseline != "" {
		base, err := bench.Load(*baseline)
		if err != nil {
			return err
		}
		opts.Baseline = base
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	stopProfiles, err := startProfiles()
	if err != nil {
		return err
	}
	rep, err := bench.Run(opts)
	if err != nil {
		return err
	}
	if err := stopProfiles(); err != nil {
		return err
	}
	if *minRatio > 0 {
		if rep.E2E == nil || rep.E2E.ThroughputRatio == 0 {
			return fmt.Errorf("bench: -min-throughput-ratio needs a -baseline report with suite throughput and an e2e phase")
		}
		if rep.E2E.ThroughputRatio < *minRatio {
			return fmt.Errorf("bench: suite throughput regressed: %.1f Mcycles/s is %.2fx baseline (%.1f), below the %.2f floor",
				rep.E2E.WarmMCyclesPerSec, rep.E2E.ThroughputRatio, rep.E2E.BaselineWarmMCyclesPerSec, *minRatio)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "throughput gate: %.2fx baseline (floor %.2f) ok\n", rep.E2E.ThroughputRatio, *minRatio)
		}
	}
	if *out == "-" {
		data, err := rep.MarshalIndent()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if dir := filepath.Dir(*out); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := rep.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	return nil
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list available experiments and exit")
		exp       = flag.String("exp", "", "comma-separated experiment ids; 'all' (alone or inside the list) selects every experiment")
		quick     = flag.Bool("quick", false, "reduced sweeps and trace lengths (smoke test)")
		instrs    = flag.Uint64("instrs", 0, "override max simulated instructions per workload")
		values    = flag.Int("values", 0, "override max captured bus values per workload (-1 = unlimited, 0 = keep the config's cap)")
		jobs      = flag.Int("jobs", 0, "max concurrent workers across experiments and their sweeps (0 = GOMAXPROCS)")
		outDir    = flag.String("o", "", "write one <id>.tsv per experiment into this directory instead of stdout")
		verbose   = flag.Bool("v", false, "print per-experiment progress, wall times and cache/memo stats to stderr")
		verify    = flag.String("verify", "sampled", "decoder round-trip verification policy: full, sampled[:N] or off (results are bit-identical under all of them)")
		reportOut = flag.String("report", "", "write a Markdown self-check report (paper vs measured) to this file ('-' for stdout)")
		cacheDir  = flag.String("trace-cache", "", "persistent trace cache directory (default: the per-user cache dir)")
		noDisk    = flag.Bool("no-disk-cache", false, "disable the persistent trace cache for this run")
	)
	startProfiles := profileFlags(flag.CommandLine)
	flag.Parse()
	stopProfiles, err := startProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "buspower: profile:", err)
		}
	}()

	// The persistent trace cache is on by default: simulation output is
	// deterministic in its content-addressed key, so reuse is always
	// sound. An unusable directory degrades to memory-only caching.
	setupTraceCache(*cacheDir, *noDisk)

	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, titles[id])
		}
		return nil
	}
	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	// Experiment runs default to sampled verification: the meters read
	// only the encoder output, so every policy prints identical tables —
	// -verify=full re-proves each decode at the cost of running the
	// decoder on every cycle (see EXPERIMENTS.md).
	policy, err := coding.ParseVerifyPolicy(*verify)
	if err != nil {
		return err
	}
	cfg.Verify = policy
	if *instrs > 0 {
		cfg.Run.MaxInstructions = *instrs
	}
	// MaxBusValues uses 0 as the "unlimited" sentinel, so the CLI needs a
	// distinct one: -1 (any negative) requests unlimited capture, 0 leaves
	// the base config's cap in place.
	if *values < 0 {
		cfg.Run.MaxBusValues = 0
	} else if *values > 0 {
		cfg.Run.MaxBusValues = *values
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiments.Options{Jobs: *jobs}
	if *verbose {
		opts.Progress = func(ev experiments.ProgressEvent) {
			if !ev.Done {
				fmt.Fprintf(os.Stderr, "running %s...\n", ev.ID)
				return
			}
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s failed after %v: %v\n", ev.Index+1, ev.Total, ev.ID, ev.Elapsed.Round(time.Millisecond), ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s done in %v\n", ev.Index+1, ev.Total, ev.ID, ev.Elapsed.Round(time.Millisecond))
		}
	}

	if *reportOut != "" {
		r, err := report.BuildContext(ctx, cfg, opts)
		if err != nil {
			return err
		}
		md := r.Markdown()
		if *reportOut == "-" {
			fmt.Print(md)
			return nil
		}
		if err := os.WriteFile(*reportOut, []byte(md), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *reportOut)
		return nil
	}

	if *exp == "" {
		flag.Usage()
		return fmt.Errorf("no experiment selected (use -exp, -report or -list)")
	}

	// Validate the whole selection before anything runs: a typo in
	// "-exp fig15,figXX" must fail here, not after fig15 already printed.
	ids, err := experiments.ResolveIDs(*exp)
	if err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	tables, err := experiments.RunAll(ctx, cfg, ids, opts)
	if *verbose {
		s := workload.Stats()
		fmt.Fprintf(os.Stderr, "trace cache: memory %d hits / %d misses", s.MemHits, s.MemMisses)
		if dir := workload.TraceCacheDir(); dir != "" {
			fmt.Fprintf(os.Stderr, "; disk %d hits / %d misses (%d errors) in %s", s.DiskHits, s.DiskMisses, s.DiskErrors, dir)
		}
		fmt.Fprintln(os.Stderr)
		m := experiments.EvalMemoStats()
		fmt.Fprintf(os.Stderr, "eval memo: %d hits / %d misses, %d evictions, %d entries", m.Hits, m.Misses, m.Evictions, m.Size)
		r := experiments.RawMeterMemoStats()
		fmt.Fprintf(os.Stderr, "; raw meters: %d hits / %d misses\n", r.Hits, r.Misses)
		sl := experiments.SlicedCacheStats()
		fmt.Fprintf(os.Stderr, "sliced planes: %d hits / %d misses, %d entries\n", sl.Hits, sl.Misses, sl.Size)
	}
	if err != nil {
		return err
	}
	for i, tbl := range tables {
		if *outDir == "" {
			fmt.Print(tbl.TSV())
			fmt.Println()
			continue
		}
		path := filepath.Join(*outDir, ids[i]+".tsv")
		if err := os.WriteFile(path, []byte(tbl.TSV()), 0o644); err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	return nil
}
