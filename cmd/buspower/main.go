// Command buspower reproduces the tables and figures of "Exploiting
// Prediction to Reduce Power on Buses" (Wen, UCB/CSD-3-1294).
//
// Usage:
//
//	buspower -list
//	buspower -exp table3
//	buspower -exp fig15,fig16 -quick
//	buspower -exp all -o results/
//
// Each experiment prints (or writes) a TSV table whose series correspond
// to the paper's artifact; see DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"buspower/internal/experiments"
	"buspower/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "buspower:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list available experiments and exit")
		exp       = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		quick     = flag.Bool("quick", false, "reduced sweeps and trace lengths (smoke test)")
		instrs    = flag.Uint64("instrs", 0, "override max simulated instructions per workload")
		values    = flag.Int("values", 0, "override max captured bus values per workload")
		outDir    = flag.String("o", "", "write one <id>.tsv per experiment into this directory instead of stdout")
		verbose   = flag.Bool("v", false, "print progress to stderr")
		reportOut = flag.String("report", "", "write a Markdown self-check report (paper vs measured) to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, titles[id])
		}
		return nil
	}
	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *instrs > 0 {
		cfg.Run.MaxInstructions = *instrs
	}
	if *values > 0 {
		cfg.Run.MaxBusValues = *values
	}

	if *reportOut != "" {
		r, err := report.Build(cfg)
		if err != nil {
			return err
		}
		md := r.Markdown()
		if *reportOut == "-" {
			fmt.Print(md)
			return nil
		}
		if err := os.WriteFile(*reportOut, []byte(md), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *reportOut)
		return nil
	}

	if *exp == "" {
		flag.Usage()
		return fmt.Errorf("no experiment selected (use -exp, -report or -list)")
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.IDs()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if *verbose {
			fmt.Fprintf(os.Stderr, "running %s...\n", id)
		}
		tbl, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		if *outDir == "" {
			fmt.Print(tbl.TSV())
			fmt.Println()
			continue
		}
		path := filepath.Join(*outDir, id+".tsv")
		if err := os.WriteFile(path, []byte(tbl.TSV()), 0o644); err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	return nil
}
