// Command buspower reproduces the tables and figures of "Exploiting
// Prediction to Reduce Power on Buses" (Wen, UCB/CSD-3-1294).
//
// Usage:
//
//	buspower -list
//	buspower -exp table3
//	buspower -exp fig15,fig16 -quick
//	buspower -exp all -o results/ -jobs 8 -v
//
// Experiments run concurrently on a bounded worker pool (-jobs, default
// GOMAXPROCS) with deterministic output: the printed TSVs are
// byte-identical to running each experiment serially. Each experiment
// prints (or writes) a TSV table whose series correspond to the paper's
// artifact; see DESIGN.md for the per-experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"buspower/internal/experiments"
	"buspower/internal/report"
	"buspower/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "buspower:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list available experiments and exit")
		exp       = flag.String("exp", "", "comma-separated experiment ids; 'all' (alone or inside the list) selects every experiment")
		quick     = flag.Bool("quick", false, "reduced sweeps and trace lengths (smoke test)")
		instrs    = flag.Uint64("instrs", 0, "override max simulated instructions per workload")
		values    = flag.Int("values", 0, "override max captured bus values per workload (-1 = unlimited, 0 = keep the config's cap)")
		jobs      = flag.Int("jobs", 0, "max concurrent workers across experiments and their sweeps (0 = GOMAXPROCS)")
		outDir    = flag.String("o", "", "write one <id>.tsv per experiment into this directory instead of stdout")
		verbose   = flag.Bool("v", false, "print per-experiment progress, wall times and trace-cache stats to stderr")
		reportOut = flag.String("report", "", "write a Markdown self-check report (paper vs measured) to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		titles := experiments.Titles()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, titles[id])
		}
		return nil
	}
	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *instrs > 0 {
		cfg.Run.MaxInstructions = *instrs
	}
	// MaxBusValues uses 0 as the "unlimited" sentinel, so the CLI needs a
	// distinct one: -1 (any negative) requests unlimited capture, 0 leaves
	// the base config's cap in place.
	if *values < 0 {
		cfg.Run.MaxBusValues = 0
	} else if *values > 0 {
		cfg.Run.MaxBusValues = *values
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiments.Options{Jobs: *jobs}
	if *verbose {
		opts.Progress = func(ev experiments.ProgressEvent) {
			if !ev.Done {
				fmt.Fprintf(os.Stderr, "running %s...\n", ev.ID)
				return
			}
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s failed after %v: %v\n", ev.Index+1, ev.Total, ev.ID, ev.Elapsed.Round(time.Millisecond), ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s done in %v\n", ev.Index+1, ev.Total, ev.ID, ev.Elapsed.Round(time.Millisecond))
		}
	}

	if *reportOut != "" {
		r, err := report.BuildContext(ctx, cfg, opts)
		if err != nil {
			return err
		}
		md := r.Markdown()
		if *reportOut == "-" {
			fmt.Print(md)
			return nil
		}
		if err := os.WriteFile(*reportOut, []byte(md), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *reportOut)
		return nil
	}

	if *exp == "" {
		flag.Usage()
		return fmt.Errorf("no experiment selected (use -exp, -report or -list)")
	}

	// Validate the whole selection before anything runs: a typo in
	// "-exp fig15,figXX" must fail here, not after fig15 already printed.
	ids, err := experiments.ResolveIDs(*exp)
	if err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	tables, err := experiments.RunAll(ctx, cfg, ids, opts)
	if *verbose {
		hits, misses := workload.TraceCacheStats()
		fmt.Fprintf(os.Stderr, "trace cache: %d hits, %d misses (simulations)\n", hits, misses)
	}
	if err != nil {
		return err
	}
	for i, tbl := range tables {
		if *outDir == "" {
			fmt.Print(tbl.TSV())
			fmt.Println()
			continue
		}
		path := filepath.Join(*outDir, ids[i]+".tsv")
		if err := os.WriteFile(path, []byte(tbl.TSV()), 0o644); err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	return nil
}
