package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"buspower/pkg/buspowersdk"
)

// The remote subcommands: `buspower eval` and `buspower job` drive a
// running server through the typed SDK — the same client external
// tooling uses, so the CLI exercises the supported path, not a private
// one.

// newRemoteClient builds the SDK client shared by the remote
// subcommands.
func newRemoteClient(server string, retries int) (*buspowersdk.Client, error) {
	return buspowersdk.New(server, buspowersdk.WithRetries(retries))
}

// parseValuesList parses the -values flag: comma-separated uint64s.
func parseValuesList(s string) ([]uint64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -values entry %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// printJSON renders v as indented JSON on stdout.
func printJSON(v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// runEval implements `buspower eval`: one synchronous remote
// evaluation.
func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	var (
		server   = fs.String("server", "http://localhost:8080", "buspower server base URL")
		scheme   = fs.String("scheme", "", "coding scheme spec, e.g. window:entries=8 (required)")
		workload = fs.String("workload", "", "registered benchmark name (with -bus)")
		bus      = fs.String("bus", "reg", "workload bus: reg, mem or addr")
		random   = fs.Int("random", 0, "evaluate the shared random trace of this length")
		values   = fs.String("values", "", "inline trace as comma-separated values")
		lambda   = fs.Float64("lambda", 0, "coupling ratio Λ (0 = server default)")
		verify   = fs.String("verify", "", "verification policy: full, sampled[:N] or off")
		quick    = fs.Bool("quick", false, "reduced workload simulation bounds")
		retries  = fs.Int("retries", 3, "transient-failure retries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scheme == "" {
		return fmt.Errorf("-scheme is required")
	}
	vals, err := parseValuesList(*values)
	if err != nil {
		return err
	}
	req := buspowersdk.EvalRequest{
		Scheme: *scheme,
		Random: *random,
		Values: vals,
		Lambda: *lambda,
		Verify: *verify,
		Quick:  *quick,
	}
	if *workload != "" {
		req.Workload, req.Bus = *workload, *bus
	}
	c, err := newRemoteClient(*server, *retries)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	resp, err := c.Eval(ctx, req)
	if err != nil {
		return err
	}
	return printJSON(resp)
}

// runJob implements `buspower job`: submit, inspect, watch and cancel
// async batch jobs.
func runJob(args []string) error {
	fs := flag.NewFlagSet("job", flag.ContinueOnError)
	var (
		server   = fs.String("server", "http://localhost:8080", "buspower server base URL")
		suite    = fs.String("suite", "", "submit: run these experiment ids (comma-separated; 'all' = every one)")
		quick    = fs.Bool("quick", false, "submit: reduced simulation bounds for -suite")
		reqsFile = fs.String("requests", "", "submit: JSON file holding an array of eval requests ('-' = stdin)")
		get      = fs.String("get", "", "fetch one job by id")
		cancel   = fs.String("cancel", "", "cancel one job by id")
		list     = fs.Bool("list", false, "list resident jobs")
		watch    = fs.Bool("watch", false, "after submit (or with -get): stream events until the job finishes")
		retries  = fs.Int("retries", 3, "transient-failure retries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := newRemoteClient(*server, *retries)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	watchTo := func(id string) error {
		final, err := c.WatchJob(ctx, id, func(ev buspowersdk.Event) {
			switch ev.Type {
			case "item":
				fmt.Fprintf(os.Stderr, "job %s: item %d %s (%d/%d done)\n", ev.JobID, ev.Index, ev.Item.Status, ev.Progress.Done, ev.Progress.Total)
			default:
				fmt.Fprintf(os.Stderr, "job %s: %s\n", ev.JobID, ev.State)
			}
		})
		if err != nil {
			return err
		}
		return printJSON(final)
	}

	switch {
	case *list:
		jobs, err := c.Jobs(ctx)
		if err != nil {
			return err
		}
		return printJSON(jobs)
	case *get != "":
		if *watch {
			return watchTo(*get)
		}
		j, err := c.Job(ctx, *get)
		if err != nil {
			return err
		}
		return printJSON(j)
	case *cancel != "":
		j, err := c.CancelJob(ctx, *cancel)
		if err != nil {
			return err
		}
		return printJSON(j)
	case *suite != "" || *reqsFile != "":
		var spec buspowersdk.JobSpec
		if *suite != "" {
			spec.Suite = &buspowersdk.SuiteSpec{Experiments: *suite, Quick: *quick}
		}
		if *reqsFile != "" {
			var data []byte
			var err error
			if *reqsFile == "-" {
				data, err = io.ReadAll(os.Stdin)
			} else {
				data, err = os.ReadFile(*reqsFile)
			}
			if err != nil {
				return err
			}
			if err := json.Unmarshal(data, &spec.Requests); err != nil {
				return fmt.Errorf("parsing %s: %v", *reqsFile, err)
			}
		}
		j, created, err := c.SubmitJob(ctx, spec)
		if err != nil {
			return err
		}
		if created {
			fmt.Fprintf(os.Stderr, "job %s accepted (%d items)\n", j.ID, j.Progress.Total)
		} else {
			fmt.Fprintf(os.Stderr, "job %s already known (state %s)\n", j.ID, j.State)
		}
		if *watch {
			return watchTo(j.ID)
		}
		return printJSON(j)
	default:
		return fmt.Errorf("nothing to do: use -suite/-requests to submit, or -get/-list/-cancel")
	}
}
