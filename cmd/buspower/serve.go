package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"buspower/internal/cluster"
	"buspower/internal/serve"
	"buspower/internal/workload"
)

// setupTraceCache applies the shared -trace-cache/-no-disk-cache
// semantics: the persistent cache is on by default, an explicit dir
// overrides the per-user default, and an unusable directory degrades to
// memory-only caching with a warning rather than failing the run.
func setupTraceCache(cacheDir string, noDisk bool) {
	if noDisk {
		return
	}
	dir := cacheDir
	if dir == "" {
		dir = workload.DefaultTraceCacheDir()
	}
	if dir != "" {
		if _, err := workload.SetTraceCacheDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "buspower: disk trace cache disabled: %v\n", err)
		}
	}
}

// runServe implements the `buspower serve` subcommand: an HTTP JSON API
// over the same memoized evaluation engine the experiment runner uses.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	def := serve.DefaultOptions()
	var (
		addr     = fs.String("addr", def.Addr, "listen address")
		workers  = fs.Int("workers", def.Workers, "max concurrently executing evaluations")
		queue    = fs.Int("queue", def.QueueDepth, "max requests waiting for a worker before 429s are shed")
		timeout  = fs.Duration("timeout", def.RequestTimeout, "per-request evaluation deadline (0 disables)")
		maxBody  = fs.Int64("max-body", def.MaxBodyBytes, "max /v1/eval request body bytes")
		drain    = fs.Duration("drain", def.DrainTimeout, "graceful-shutdown budget for in-flight requests")
		pprofOn  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		quietLog = fs.Bool("quiet-access-log", false, "log successful requests at debug level only (load-test friendly)")
		verbose  = fs.Bool("v", false, "log at debug level")
		cacheDir = fs.String("trace-cache", "", "persistent trace cache directory (default: the per-user cache dir)")
		noDisk   = fs.Bool("no-disk-cache", false, "disable the persistent trace cache")
		jobsDir  = fs.String("jobs-dir", "", "async job journal directory; completed job results survive restarts there (empty = memory-only)")
		jobWork  = fs.Int("job-workers", 0, "dedicated async job worker pool size (0 = half of GOMAXPROCS)")
		jobQueue = fs.Int("job-queue", 0, "max queued job items before submissions are shed with 429 (0 = 4x the per-job item cap)")

		self      = fs.String("self", "", "this replica's node id in a sharded cache group (requires -peers)")
		peerList  = fs.String("peers", "", "full shard-group member list as comma-separated id=url entries, self included; empty = single-replica mode")
		vnodes    = fs.Int("vnodes", 0, "virtual nodes per replica on the consistent-hash ring (0 = 128)")
		rf        = fs.Int("replication", 0, "owners per key on the ring (0 = 1; clamped to the group size)")
		peerTmo   = fs.Duration("peer-timeout", 0, "deadline for one peer fetch before degrading to local compute (0 = 2s)")
		peerBody  = fs.Int64("peer-max-body", 0, "max accepted peer payload bytes (0 = 32 MiB)")
		respCache = fs.Int("resp-cache", 0, "marshalled-response LRU entries (0 = 4096)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	topo, err := cluster.ParseTopology(*self, cluster.SplitPeerList(*peerList), *vnodes, *rf)
	if err != nil {
		return err
	}
	setupTraceCache(*cacheDir, *noDisk)

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv := serve.NewServer(serve.Options{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		DrainTimeout:   *drain,
		EnablePprof:    *pprofOn,
		QuietAccessLog: *quietLog,
		Logger:         logger,
		JobsDir:        *jobsDir,
		JobWorkers:     *jobWork,
		JobQueueDepth:  *jobQueue,

		Topology:             topo,
		PeerTimeout:          *peerTmo,
		PeerMaxBodyBytes:     *peerBody,
		ResponseCacheEntries: *respCache,
	})

	// SIGINT/SIGTERM start a graceful drain: the listener closes, /healthz
	// flips to 503, and in-flight evaluations get up to -drain to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if err := srv.ListenAndServe(ctx); err != nil {
		return err
	}
	logger.Info("exited", "uptime", time.Since(start).Round(time.Millisecond).String())
	return nil
}
