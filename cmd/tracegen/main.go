// Command tracegen extracts bus value traces from the SPEC95-analog
// workloads running on the out-of-order simulator — the paper's §4.1 bus
// timing generators as a standalone tool.
//
// Usage:
//
//	tracegen -workloads                          # list benchmarks
//	tracegen -workload gcc -bus reg -o gcc.trc   # capture a trace
//	tracegen -workload swim -bus mem -stats      # print §4.2 statistics
//	tracegen -random 100000 -o rand.trc          # uniformly random values
package main

import (
	"flag"
	"fmt"
	"os"

	"buspower/internal/trace"
	"buspower/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listFlag = flag.Bool("workloads", false, "list available workloads and exit")
		name     = flag.String("workload", "", "workload to simulate")
		bus      = flag.String("bus", "reg", "which bus to capture: reg or mem")
		instrs   = flag.Uint64("instrs", 1_500_000, "max simulated instructions")
		values   = flag.Int("values", 120_000, "max captured bus values")
		random   = flag.Int("random", 0, "emit N uniformly random 32-bit values instead of simulating")
		seed     = flag.Uint64("seed", 1, "seed for -random")
		out      = flag.String("o", "", "output trace file (binary); stdout summary if omitted")
		statsF   = flag.Bool("stats", false, "print unique-value CDF and window-uniqueness statistics")
	)
	flag.Parse()

	if *listFlag {
		for _, w := range workload.All() {
			fmt.Printf("%-10s %-8s %s\n", w.Name, w.Suite, w.Description)
		}
		return nil
	}

	var values64 []uint64
	label := ""
	switch {
	case *random > 0:
		values64 = workload.RandomTrace(*random, *seed)
		label = "random"
	case *name != "":
		if *bus != "reg" && *bus != "mem" {
			return fmt.Errorf("invalid -bus %q (want reg or mem)", *bus)
		}
		ts, err := workload.Traces(*name, workload.RunConfig{
			MaxInstructions: *instrs, MaxBusValues: *values,
		})
		if err != nil {
			return err
		}
		if *bus == "reg" {
			values64 = ts.Reg
		} else {
			values64 = ts.Mem
		}
		label = *name + "/" + *bus
		fmt.Fprintf(os.Stderr, "simulated %d instructions in %d cycles (IPC %.2f, L1D miss %.1f%%, branch acc %.1f%%)\n",
			ts.Summary.Instructions, ts.Summary.Cycles, ts.Summary.IPC,
			100*ts.Summary.L1DMissRate, 100*ts.Summary.BranchAccuracy)
	default:
		flag.Usage()
		return fmt.Errorf("need -workload, -random or -workloads")
	}

	fmt.Printf("trace %s: %d values\n", label, len(values64))
	if *statsF {
		c := trace.Characterize(values64, []int{1, 10, 100, 1000, 10000})
		fmt.Printf("unique values: %d (%.2f%% of trace)\n", c.Unique, 100*float64(c.Unique)/float64(c.Values))
		for _, n := range []int{1, 10, 100, 1000, 10000} {
			fmt.Printf("coverage of top %6d values: %.4f\n", n, c.CoverageAt(n))
		}
		for _, w := range []int{1, 10, 100, 1000, 10000} {
			if f, ok := c.WindowUnique[w]; ok && f > 0 {
				fmt.Printf("window %6d unique fraction: %.4f\n", w, f)
			}
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		tr := &trace.Trace{Name: label, Width: 32, Values: values64}
		if err := tr.Write(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
