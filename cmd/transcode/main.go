// Command transcode applies one of the paper's coding schemes to a bus
// trace and reports the activity and energy consequences: transitions,
// coupling events, normalized energy removed, and — for the window design
// — break-even wire lengths per technology.
//
// Usage:
//
//	transcode -coder window-8 -in gcc.trc
//	transcode -coder context-32x8 -workload gcc -bus reg
//	transcode -coder businvert -workload swim -bus mem -lambda 0.67
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/energy"
	"buspower/internal/trace"
	"buspower/internal/wire"
	"buspower/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "transcode:", err)
		os.Exit(1)
	}
}

// buildCoder parses a coder spec:
//
//	raw | businvert | inversion-N | spatial-W | stride-K |
//	window-N | context-TxS | contextt-TxS (transition-based)
func buildCoder(spec string, lambda float64) (coding.Transcoder, int, error) {
	const width = 32
	switch {
	case spec == "raw":
		return coding.NewRaw(width), 0, nil
	case spec == "businvert":
		tc, err := coding.NewBusInvert(width, lambda)
		return tc, 0, err
	case strings.HasPrefix(spec, "inversion-"):
		n, err := strconv.Atoi(spec[len("inversion-"):])
		if err != nil {
			return nil, 0, fmt.Errorf("bad inversion spec %q", spec)
		}
		pats, err := coding.DefaultInversionPatterns(width, n)
		if err != nil {
			return nil, 0, err
		}
		tc, err := coding.NewInversion(width, pats, lambda)
		return tc, 0, err
	case strings.HasPrefix(spec, "spatial-"):
		w, err := strconv.Atoi(spec[len("spatial-"):])
		if err != nil {
			return nil, 0, fmt.Errorf("bad spatial spec %q", spec)
		}
		tc, err := coding.NewSpatial(w)
		return tc, 0, err
	case strings.HasPrefix(spec, "stride-"):
		k, err := strconv.Atoi(spec[len("stride-"):])
		if err != nil {
			return nil, 0, fmt.Errorf("bad stride spec %q", spec)
		}
		tc, err := coding.NewStride(width, k, lambda)
		return tc, 0, err
	case strings.HasPrefix(spec, "window-"):
		n, err := strconv.Atoi(spec[len("window-"):])
		if err != nil {
			return nil, 0, fmt.Errorf("bad window spec %q", spec)
		}
		tc, err := coding.NewWindow(width, n, lambda)
		return tc, n, err
	case strings.HasPrefix(spec, "context-"), strings.HasPrefix(spec, "contextt-"):
		transition := strings.HasPrefix(spec, "contextt-")
		rest := strings.TrimPrefix(strings.TrimPrefix(spec, "contextt-"), "context-")
		parts := strings.Split(rest, "x")
		if len(parts) != 2 {
			return nil, 0, fmt.Errorf("bad context spec %q (want context-<table>x<shift>)", spec)
		}
		tbl, err1 := strconv.Atoi(parts[0])
		sr, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, 0, fmt.Errorf("bad context spec %q", spec)
		}
		tc, err := coding.NewContext(coding.ContextConfig{
			Width: width, TableSize: tbl, ShiftEntries: sr,
			DividePeriod: 4096, TransitionBased: transition, Lambda: lambda,
		})
		return tc, tbl + sr, err
	default:
		return nil, 0, fmt.Errorf("unknown coder %q", spec)
	}
}

func run() error {
	var (
		coder  = flag.String("coder", "window-8", "coding scheme (raw|businvert|inversion-N|spatial-W|stride-K|window-N|context-TxS|contextt-TxS)")
		in     = flag.String("in", "", "input trace file (from tracegen)")
		name   = flag.String("workload", "", "simulate this workload instead of reading a file")
		bus    = flag.String("bus", "reg", "bus to capture with -workload: reg or mem")
		lambda = flag.Float64("lambda", 1.0, "coupling ratio Λ for evaluation (and the coder's assumed Λ)")
		instrs = flag.Uint64("instrs", 1_500_000, "max simulated instructions with -workload")
		values = flag.Int("values", 120_000, "max bus values with -workload")
	)
	flag.Parse()

	var vals []uint64
	label := ""
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		vals, label = tr.Values, tr.Name
	case *name != "":
		ts, err := workload.Traces(*name, workload.RunConfig{MaxInstructions: *instrs, MaxBusValues: *values})
		if err != nil {
			return err
		}
		if *bus == "mem" {
			vals = ts.Mem
		} else {
			vals = ts.Reg
		}
		label = *name + "/" + *bus
	default:
		flag.Usage()
		return fmt.Errorf("need -in or -workload")
	}

	tc, entries, err := buildCoder(*coder, *lambda)
	if err != nil {
		return err
	}
	res, err := coding.Evaluate(tc, vals, *lambda)
	if err != nil {
		return err
	}
	fmt.Printf("trace:          %s (%d values)\n", label, len(vals))
	fmt.Printf("coder:          %s (%d -> %d wires)\n", res.Scheme, res.DataWidth, res.CodedWidth)
	fmt.Printf("raw activity:   %d transitions, %d coupling events\n", res.Raw.Transitions(), res.Raw.Couplings())
	fmt.Printf("coded activity: %d transitions, %d coupling events\n", res.Coded.Transitions(), res.Coded.Couplings())
	fmt.Printf("energy removed: %.2f%% (Λ=%g)\n", 100*res.EnergyRemoved(), *lambda)

	if entries > 0 && res.Ops.Cycles > 0 && strings.HasPrefix(*coder, "window-") {
		fmt.Println("\nbreak-even wire lengths (window design):")
		for _, tech := range wire.Technologies() {
			a, err := energy.NewAnalysis(tech, res, circuit.WindowDesign, entries)
			if err != nil {
				return err
			}
			x := a.CrossoverMM()
			if math.IsInf(x, 1) {
				fmt.Printf("  %-8s never (coding does not pay on this trace)\n", tech.Name)
			} else {
				fmt.Printf("  %-8s %6.1f mm  (transcoder pair %.2f pJ/cycle)\n", tech.Name, x, a.PairEnergyPerCyclePJ())
			}
		}
	}
	return nil
}
