#!/usr/bin/env bash
# Three-replica shard-group smoke test: starts a ring of buspower
# servers as plain processes (same topology the docker-compose file
# wires up), proves cross-replica routing works, kills one replica
# mid-run, and asserts the survivors keep answering byte-identically
# while the peer-fetch / fallback counters move. Exits non-zero on any
# divergence.
#
# Usage: deploy/cluster-smoke.sh [path-to-buspower-binary]
set -euo pipefail

BIN=${1:-/tmp/buspower}
BASE_PORT=${BASE_PORT:-8461}
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

PEERS=""
for i in 0 1 2; do
  PEERS+="${PEERS:+,}n$i=http://127.0.0.1:$((BASE_PORT + i))"
done

start_replica() { # $1 = index
  "$BIN" serve -addr "127.0.0.1:$((BASE_PORT + $1))" -self "n$1" -peers "$PEERS" \
    -workers 2 -peer-timeout 2s -no-disk-cache -quiet-access-log \
    >"$WORK/n$1.log" 2>&1 &
  PIDS[$1]=$!
}

for i in 0 1 2; do start_replica "$i"; done
for i in 0 1 2; do
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$((BASE_PORT + i))/healthz" >/dev/null && break
    sleep 0.2
  done
  curl -sf "http://127.0.0.1:$((BASE_PORT + i))/healthz" | grep -q '"ok"'
done
echo "ring up: $PEERS"

# A spread of requests: enough distinct keys that every replica owns
# some and peer-fetches others.
bodies=()
for n in $(seq 1 12); do
  bodies+=("{\"random\":$((n * 500)),\"scheme\":\"gray\"}")
  bodies+=("{\"random\":$((n * 500)),\"scheme\":\"businvert\"}")
done

# Phase 1: every request through every replica must answer 200 with one
# byte-identical payload per body.
for b in "${bodies[@]}"; do
  ref=""
  for i in 0 1 2; do
    resp=$(curl -sf -X POST "http://127.0.0.1:$((BASE_PORT + i))/v1/eval" -d "$b")
    if [ -z "$ref" ]; then ref="$resp"
    elif [ "$resp" != "$ref" ]; then
      echo "FAIL: replica n$i diverged on $b" >&2
      exit 1
    fi
  done
done
echo "phase 1 ok: ${#bodies[@]} bodies x 3 replicas byte-identical"

# Routing must actually have crossed the ring: some replica peer-fetched.
hits=0
for i in 0 1 2; do
  h=$(curl -sf "http://127.0.0.1:$((BASE_PORT + i))/metrics" |
    awk '/^buspower_peer_fetch_total\{kind="eval",result="hit"\}/ {s+=$2} END {print s+0}')
  hits=$((hits + h))
done
if [ "$hits" -eq 0 ]; then
  echo "FAIL: no peer fetch ever happened (hits=$hits); routing is not crossing replicas" >&2
  exit 1
fi
echo "phase 1 peer-fetch hits across ring: $hits"

# Phase 2: kill n2 mid-run, then push FRESH keys (never seen, so no
# replica has them cached) through the two survivors. Keys n2 owned
# must degrade to local compute — same bytes, no errors — and the
# fallback counters must move to prove the dead replica was actually
# consulted and survived.
kill "${PIDS[2]}" 2>/dev/null
wait "${PIDS[2]}" 2>/dev/null || true
unset 'PIDS[2]'
echo "killed n2"

fresh=()
for n in $(seq 1 12); do
  fresh+=("{\"random\":$((n * 500 + 101)),\"scheme\":\"gray\"}")
  fresh+=("{\"random\":$((n * 500 + 101)),\"scheme\":\"businvert\"}")
done
for b in "${fresh[@]}"; do
  ref=""
  for i in 0 1; do
    resp=$(curl -sf -X POST "http://127.0.0.1:$((BASE_PORT + i))/v1/eval" -d "$b")
    if [ -z "$ref" ]; then ref="$resp"
    elif [ "$resp" != "$ref" ]; then
      echo "FAIL: survivor n$i diverged on $b after n2 died" >&2
      exit 1
    fi
  done
done
echo "phase 2 ok: ${#fresh[@]} fresh bodies byte-identical across survivors with n2 dead"

falls=0
for i in 0 1; do
  f=$(curl -sf "http://127.0.0.1:$((BASE_PORT + i))/metrics" |
    awk '/^buspower_cluster_eval_total\{path="fallback"\}/ {s+=$2} END {print s+0}')
  falls=$((falls + f))
done
if [ "$falls" -eq 0 ]; then
  echo "FAIL: no fallback recorded — the dead replica's keys never degraded through the peer path" >&2
  exit 1
fi
echo "phase 2 fallbacks across survivors: $falls"

echo "cluster smoke passed"
