// Package buspower is a from-scratch Go reproduction of Victor Wen's
// "Exploiting Prediction to Reduce Power on Buses" (UC Berkeley report
// UCB/CSD-3-1294; HPCA 2004 line of work): bus transcoding — synchronized
// encoder/decoder FSMs that re-code on-chip bus traffic to cut wire
// transitions and cross-coupling — evaluated end to end, from coding
// schemes through an out-of-order CPU substrate generating realistic bus
// traffic, down to circuit-level energy accounting and break-even wire
// lengths.
//
// The implementation lives under internal/:
//
//	bus         transition/coupling accounting (eq. 1-3)
//	stats       order statistics, CDFs, deterministic PRNG
//	wire        technology + repeater wire model (Table 1, Figs 5-6)
//	coding      the transcoding schemes (§4.3) and evaluation harness
//	circuit     Johnson counters, selective-precharge CAM, op energies (§5)
//	cpu         the SimpleScalar-substitute out-of-order simulator (§4.1)
//	workload    seventeen SPEC95-analog benchmark programs
//	trace       trace serialization and §4.2 statistics
//	energy      budgets and crossover lengths (§5.4)
//	experiments one runner per table/figure of the paper
//
// Executables: cmd/buspower (reproduce any table/figure), cmd/tracegen
// (extract bus traces), cmd/transcode (apply a scheme to a trace). Worked
// examples live under examples/. The benchmark harness in bench_test.go
// regenerates every artifact under `go test -bench`.
package buspower
