// Custom coder: the coding package's Encoder/Decoder interfaces accept
// user-defined prediction strategies. This example implements an
// "alternation" transcoder — it predicts that the value from two cycles
// ago repeats (catching ABAB... patterns such as interleaved operand
// streams) — and benchmarks it against the paper's window design.
//
// The only contract: the decoder must reconstruct every input exactly from
// the wire states alone, with both FSMs keyed off the decoded stream.
// coding.Evaluate enforces the contract on every cycle.
package main

import (
	"fmt"
	"log"

	"buspower/internal/bus"
	"buspower/internal/coding"
	"buspower/internal/workload"
)

// altTranscoder sends nothing when v[t] == v[t-2] (the stream alternates),
// a control-wire toggle when the value repeats, and the raw value
// otherwise.
type altTranscoder struct {
	width int
}

func (x *altTranscoder) Name() string   { return "alternation" }
func (x *altTranscoder) DataWidth() int { return x.width }
func (x *altTranscoder) NewEncoder() coding.Encoder {
	return &altEncoder{width: x.width}
}
func (x *altTranscoder) NewDecoder() coding.Decoder {
	return &altDecoder{width: x.width}
}

// Shared FSM state: the last two values. The encoder drives a bus of
// width+2 wires: data wires carry transitions, control wire `width` (raw
// flag) toggles on raw sends, control wire width+1 toggles on LAST sends.
type altEncoder struct {
	width      int
	last, prev uint64
	state      bus.Word
}

func (e *altEncoder) BusWidth() int { return e.width + 2 }

func (e *altEncoder) Encode(v uint64) bus.Word {
	v &= uint64(bus.Mask(e.width))
	switch v {
	case e.prev:
		// all-zero transition: "the stream alternated"
	case e.last:
		e.state ^= bus.Word(1) << uint(e.width+1) // LAST flag
	default:
		dataMask := bus.Mask(e.width)
		e.state = (e.state &^ dataMask) | bus.Word(v)
		e.state ^= bus.Word(1) << uint(e.width) // raw flag
	}
	e.prev, e.last = e.last, v
	return e.state
}

func (e *altEncoder) Reset() { *e = altEncoder{width: e.width} }

type altDecoder struct {
	width      int
	last, prev uint64
	state      bus.Word
}

func (d *altDecoder) Decode(w bus.Word) uint64 {
	t := d.state ^ w
	d.state = w
	var v uint64
	switch {
	case t&(bus.Word(1)<<uint(d.width)) != 0: // raw
		v = uint64(w & bus.Mask(d.width))
	case t&(bus.Word(1)<<uint(d.width+1)) != 0: // LAST
		v = d.last
	default: // alternation
		v = d.prev
	}
	d.prev, d.last = d.last, v
	return v
}

func (d *altDecoder) Reset() { *d = altDecoder{width: d.width} }

func main() {
	// Traffic the alternation predictor was built for: two interleaved
	// operand streams (the pattern a dual-issue loop body produces).
	alternating := make([]uint64, 40_000)
	for i := range alternating {
		if i%2 == 0 {
			alternating[i] = 0xAAAA0000 + uint64(i/512) // slowly drifting stream A
		} else {
			alternating[i] = 0x1234ABCD // constant stream B
		}
	}

	// Real traffic from the simulator, where the general-purpose window
	// dictionary is the better tool.
	ts, err := workload.Traces("perl", workload.RunConfig{
		MaxInstructions: 500_000,
		MaxBusValues:    60_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	custom := &altTranscoder{width: 32}
	win, err := coding.NewWindow(32, 8, 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, tr := range []struct {
		label  string
		values []uint64
	}{
		{"interleaved streams", alternating},
		{"perl register bus", ts.Reg},
	} {
		fmt.Printf("%s:\n", tr.label)
		for _, tc := range []coding.Transcoder{custom, win} {
			res, err := coding.Evaluate(tc, tr.values, 1) // verifies the round trip
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s removed %6.1f%% of Λ-weighted activity (%d -> %d wires)\n",
				res.Scheme, 100*res.EnergyRemoved(), res.DataWidth, res.CodedWidth)
		}
	}
	fmt.Println("\nAnything satisfying coding.Transcoder plugs into the same Evaluate,")
	fmt.Println("energy-budget, and crossover machinery as the paper's schemes.")
}
