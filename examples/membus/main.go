// Memory-bus study: reproduce the paper's §5.4.3 negative result — the
// memory data bus loses a large *fraction* of its transitions to coding,
// but its *absolute* activity per cycle is so low that the saved wire
// energy rarely pays for the transcoder.
package main

import (
	"fmt"
	"log"
	"math"

	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/energy"
	"buspower/internal/wire"
	"buspower/internal/workload"
)

func main() {
	cfg := workload.RunConfig{MaxInstructions: 800_000, MaxBusValues: 60_000}
	names := []string{"gcc", "swim", "su2cor", "compress", "applu"}

	fmt.Printf("%-10s %8s | %14s %16s | %14s %16s\n",
		"benchmark", "bus", "removed %", "activity/cycle", "crossover 0.13um", "crossover 0.07um")
	for _, name := range names {
		ts, err := workload.Traces(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, bus := range []struct {
			label string
			trace []uint64
		}{{"reg", ts.Reg}, {"mem", ts.Mem}} {
			if len(bus.trace) < 100 {
				continue
			}
			win, err := coding.NewWindow(32, 8, 1)
			if err != nil {
				log.Fatal(err)
			}
			res, err := coding.Evaluate(win, bus.trace, 1)
			if err != nil {
				log.Fatal(err)
			}
			beats := uint64(len(bus.trace))
			machineCycles := ts.Summary.Cycles
			if bus.label == "reg" {
				machineCycles = 0 // the register port sees a beat nearly every cycle
			}
			x13 := crossover(res, wire.Tech130, beats, machineCycles)
			x07 := crossover(res, wire.Tech070, beats, machineCycles)
			perCycle := res.RawCost() / float64(res.Raw.Cycles()-1)
			fmt.Printf("%-10s %8s | %13.1f%% %16.2f | %16s %16s\n",
				name, bus.label, 100*res.EnergyRemoved(), perCycle, x13, x07)
		}
	}
	fmt.Println("\nThe register bus breaks even at single-digit millimetres; the memory")
	fmt.Println("data bus — fewer beats, more random-looking fill/store words, idle")
	fmt.Println("transcoder cycles to pay for — stretches to tens of millimetres or")
	fmt.Println("never pays (§5.4.3: \"perhaps a different coding scheme with simpler")
	fmt.Println("encoder is needed to save wire transition energy on memory bus\").")
}

func crossover(res coding.Result, tech wire.Technology, beats, machineCycles uint64) string {
	a, err := energy.NewAnalysis(tech, res, circuit.WindowDesign, 8)
	if err != nil {
		log.Fatal(err)
	}
	if machineCycles > 0 {
		a = a.WithDutyCycle(beats, machineCycles)
	}
	x := a.CrossoverMM()
	if math.IsInf(x, 1) || x > 1000 {
		return "never"
	}
	return fmt.Sprintf("%.1f mm", x)
}
