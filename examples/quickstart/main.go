// Quickstart: capture a bus trace from a simulated benchmark, transcode it
// with the paper's 8-entry window design, and find the wire length where
// the transcoder starts saving energy.
package main

import (
	"fmt"
	"log"

	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/energy"
	"buspower/internal/wire"
	"buspower/internal/workload"
)

func main() {
	// 1. Run the "li" SPECint-analog on the out-of-order simulator and
	//    capture the integer register-file output port.
	ts, err := workload.Traces("li", workload.RunConfig{
		MaxInstructions: 400_000,
		MaxBusValues:    50_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated li: %d instructions, IPC %.2f, %d register-bus values\n",
		ts.Summary.Instructions, ts.Summary.IPC, len(ts.Reg))

	// 2. Transcode the trace with an 8-entry window dictionary (assumed
	//    coupling ratio Λ=1) and verify/measure in one call.
	win, err := coding.NewWindow(32, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := coding.Evaluate(win, ts.Reg, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window-8: %.1f%% of Λ-weighted bus activity removed (%d -> %d transitions)\n",
		100*res.EnergyRemoved(), res.Raw.Transitions(), res.Coded.Transitions())

	// 3. Pay for the encoder/decoder circuits and find the break-even
	//    wire length at each technology node.
	for _, tech := range wire.Technologies() {
		a, err := energy.NewAnalysis(tech, res, circuit.WindowDesign, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: transcoder pair %.2f pJ/cycle, break-even at %.1f mm (at 20mm the bus+transcoder uses %.0f%% of the raw bus energy)\n",
			tech.Name, a.PairEnergyPerCyclePJ(), a.CrossoverMM(), 100*a.NormalizedTotal(20))
	}
}
