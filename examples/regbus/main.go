// Register-bus study: compare every coding scheme of the paper on one
// benchmark's integer register-file output port — the bus where the paper
// reports its headline 36% transition reduction — and rank them by energy
// removed and by hardware practicality.
package main

import (
	"fmt"
	"log"
	"math"

	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/energy"
	"buspower/internal/wire"
	"buspower/internal/workload"
)

func main() {
	const benchmark = "perl"
	ts, err := workload.Traces(benchmark, workload.RunConfig{
		MaxInstructions: 800_000,
		MaxBusValues:    80_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s register bus: %d values\n\n", benchmark, len(ts.Reg))

	type entry struct {
		tc      coding.Transcoder
		entries int // window-design entries for crossover analysis, 0 = n/a
	}
	mk := func(tc coding.Transcoder, err error) coding.Transcoder {
		if err != nil {
			log.Fatal(err)
		}
		return tc
	}
	pats, err := coding.DefaultInversionPatterns(32, 4)
	if err != nil {
		log.Fatal(err)
	}
	schemes := []entry{
		{mk(coding.NewBusInvert(32, 0)), 0},
		{mk(coding.NewInversion(32, pats, 1)), 0},
		{mk(coding.NewStride(32, 8, 1)), 0},
		{mk(coding.NewStride(32, 30, 1)), 0},
		{mk(coding.NewWindow(32, 8, 1)), 8},
		{mk(coding.NewWindow(32, 16, 1)), 16},
		{mk(coding.NewContext(coding.ContextConfig{
			Width: 32, TableSize: 28, ShiftEntries: 4, DividePeriod: 4096, Lambda: 1,
		})), 0},
		{mk(coding.NewContext(coding.ContextConfig{
			Width: 32, TableSize: 28, ShiftEntries: 4, DividePeriod: 4096,
			TransitionBased: true, Lambda: 1,
		})), 0},
	}

	fmt.Printf("%-26s %10s %12s %12s\n", "scheme", "removed%", "wires", "crossover@0.13um")
	for _, s := range schemes {
		res, err := coding.Evaluate(s.tc, ts.Reg, 1)
		if err != nil {
			log.Fatal(err)
		}
		crossover := "n/a"
		if s.entries > 0 {
			a, err := energy.NewAnalysis(wire.Tech130, res, circuit.WindowDesign, s.entries)
			if err != nil {
				log.Fatal(err)
			}
			if x := a.CrossoverMM(); math.IsInf(x, 1) {
				crossover = "never"
			} else {
				crossover = fmt.Sprintf("%.1f mm", x)
			}
		}
		fmt.Printf("%-26s %9.1f%% %8d->%-2d %12s\n",
			res.Scheme, 100*res.EnergyRemoved(), res.DataWidth, res.CodedWidth, crossover)
	}

	fmt.Println("\nThe dictionary coders (window, context value-based) remove the most")
	fmt.Println("activity; only the window design is simple enough to break even at")
	fmt.Println("realistic on-chip lengths — the paper's central conclusion.")
}
