module buspower

go 1.22
