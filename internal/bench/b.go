package bench

import (
	"fmt"
	"runtime"
	"time"
)

// B is the harness's benchmark context: the subset of testing.B the
// kernels use (N, ResetTimer, SetBytes, ReportAllocs, Fatal), driven by
// an explicit per-kernel time budget instead of the test.benchtime
// global flag. Allocation statistics are always collected, so
// ReportAllocs is a no-op kept for testing.B symmetry.
type B struct {
	// N is the iteration count of the current run; kernels loop
	// `for i := 0; i < b.N; i++`.
	N int

	timerOn     bool
	start       time.Time
	elapsed     time.Duration
	startAllocs uint64
	startBytes  uint64
	netAllocs   uint64
	netBytes    uint64
	bytesPerOp  int64
}

// benchFailure carries a kernel's Fatal out of the run; the driver
// recovers it and surfaces the message as an error.
type benchFailure struct{ msg string }

func readMem() (allocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

// StartTimer resumes timing and allocation accounting.
func (b *B) StartTimer() {
	if b.timerOn {
		return
	}
	b.startAllocs, b.startBytes = readMem()
	b.start = time.Now()
	b.timerOn = true
}

// StopTimer pauses timing and allocation accounting.
func (b *B) StopTimer() {
	if !b.timerOn {
		return
	}
	b.elapsed += time.Since(b.start)
	allocs, bytes := readMem()
	b.netAllocs += allocs - b.startAllocs
	b.netBytes += bytes - b.startBytes
	b.timerOn = false
}

// ResetTimer discards time and allocations accumulated so far — kernels
// call it after setup, exactly as with testing.B.
func (b *B) ResetTimer() {
	if b.timerOn {
		b.startAllocs, b.startBytes = readMem()
		b.start = time.Now()
	}
	b.elapsed = 0
	b.netAllocs = 0
	b.netBytes = 0
}

// ReportAllocs is a no-op: the driver always records allocations.
func (b *B) ReportAllocs() {}

// SetBytes records the bytes processed per iteration (informational).
func (b *B) SetBytes(n int64) { b.bytesPerOp = n }

// Fatal aborts the kernel; the driver reports the message as an error.
func (b *B) Fatal(args ...interface{}) {
	panic(benchFailure{msg: fmt.Sprint(args...)})
}

// Fatalf is Fatal with formatting.
func (b *B) Fatalf(format string, args ...interface{}) {
	panic(benchFailure{msg: fmt.Sprintf(format, args...)})
}

// nsPerOp returns the mean time per iteration of one finished run.
func (b *B) nsPerOp() float64 {
	if b.N <= 0 {
		return 0
	}
	return float64(b.elapsed.Nanoseconds()) / float64(b.N)
}

// runN executes one benchmark run at a fixed iteration count.
func runN(fn func(*B), n int) (b *B, err error) {
	b = &B{N: n}
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(benchFailure); ok {
				err = fmt.Errorf("bench: %s", f.msg)
				return
			}
			panic(r)
		}
	}()
	runtime.GC()
	b.ResetTimer()
	b.StartTimer()
	fn(b)
	b.StopTimer()
	return b, nil
}

// maxIterations bounds the driver against pathologically cheap kernels.
const maxIterations = 1_000_000_000

// runBenchmark grows the iteration count, testing-package style, until
// one run meets the time budget, and returns that run.
func runBenchmark(fn func(*B), budget time.Duration) (*B, error) {
	n := 1
	for {
		b, err := runN(fn, n)
		if err != nil {
			return nil, err
		}
		if b.elapsed >= budget || n >= maxIterations {
			return b, nil
		}
		// Predict the budget-filling count from the observed per-op
		// cost, overshoot by 20%, and never grow more than 100x per
		// round (the first runs see warm-up effects).
		next := n * 100
		if perOp := b.elapsed.Nanoseconds() / int64(n); perOp > 0 {
			predicted := budget.Nanoseconds() / perOp
			predicted += predicted / 5
			if predicted < int64(next) {
				next = int(predicted)
			}
		}
		if next <= n {
			next = n + 1
		}
		if next > maxIterations {
			next = maxIterations
		}
		n = next
	}
}
