// Package bench is the reproducible performance harness behind the
// `buspower bench` subcommand. It micro-benchmarks the hot kernels of the
// simulate→encode→measure pipeline with its own explicit-budget driver
// (taking the fastest of three repetitions per kernel), times end-to-end
// experiment regenerations (quick-scale cache phases plus a full-scale
// cold/warm pass), derives the suite-level evaluation throughput in
// trace-cycle × grid-cell units, and writes a machine-readable JSON
// report (results/BENCH_*.json). Passing a previous report as the
// baseline embeds its numbers and the computed speedups in the new
// report, so kernel and throughput regressions across PRs show up as a
// diff in one committed file.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// KernelResult is one micro-benchmark measurement.
type KernelResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// BaselineNsPerOp and Speedup are filled when a baseline report
	// contains a kernel of the same name; Speedup > 1 means this run is
	// faster than the baseline.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// E2EResult times full `-exp all` regenerations through the parallel
// engine. The quick-scale phases isolate the caches: a cold and a warm
// workload trace cache, the evaluation-result memo cleared and kept, and
// — when the disk trace cache is exercised — a cold and a warm
// persistent cache directory (memory cache emptied both times, so the
// disk-warm number is what a fresh process with a populated cache dir
// pays). The full-scale phase (skipped in quick harness runs) times the
// paper-scale regeneration cold (no caches at all — CPU simulation
// included) and warm (traces in memory, every evaluation recomputed).
//
// The MCyclesPerSec figures are the suite-level evaluation throughput:
// millions of (trace cycle × grid cell) units delivered per wall-clock
// second during the corresponding warm pass, from the
// coding.EvaluatedCycles counter. Warm passes clear the result memo, so
// the figure measures real evaluation work, not cache hits; it is the
// one number that improves when the grid engine fans more cells out of a
// single trace pass.
type E2EResult struct {
	IDs    string  `json:"ids"`
	Config string  `json:"config"`
	Jobs   int     `json:"jobs"`
	Tables int     `json:"tables"`
	ColdMS float64 `json:"cold_ms"`
	WarmMS float64 `json:"warm_ms"`

	// WarmMCyclesPerSec is the suite throughput of the quick warm pass.
	WarmMCyclesPerSec float64 `json:"warm_mcycles_per_sec,omitempty"`

	// MemoColdMS repeats the warm run with the evaluation-result memo
	// cleared (isolating the recompute the memo avoids); MemoWarmMS runs
	// once more with every Result memoized.
	MemoColdMS float64 `json:"memo_cold_ms,omitempty"`
	MemoWarmMS float64 `json:"memo_warm_ms,omitempty"`

	DiskColdMS float64 `json:"disk_cold_ms,omitempty"`
	DiskWarmMS float64 `json:"disk_warm_ms,omitempty"`

	// SlicedPlaneHits/Misses snapshot the sliced-plane (bit-transposed
	// trace) cache counters over the disk-warm pass (the last quick
	// phase after a memo clear): hits are grids served an existing
	// transposition, misses are transpositions built.
	SlicedPlaneHits   uint64 `json:"sliced_plane_hits,omitempty"`
	SlicedPlaneMisses uint64 `json:"sliced_plane_misses,omitempty"`

	// Full-scale phase (paper axes, full trace lengths).
	FullColdMS            float64 `json:"full_cold_ms,omitempty"`
	FullWarmMS            float64 `json:"full_warm_ms,omitempty"`
	FullWarmMCyclesPerSec float64 `json:"full_warm_mcycles_per_sec,omitempty"`

	BaselineColdMS            float64 `json:"baseline_cold_ms,omitempty"`
	BaselineWarmMS            float64 `json:"baseline_warm_ms,omitempty"`
	BaselineMemoWarmMS        float64 `json:"baseline_memo_warm_ms,omitempty"`
	BaselineDiskWarmMS        float64 `json:"baseline_disk_warm_ms,omitempty"`
	BaselineFullColdMS        float64 `json:"baseline_full_cold_ms,omitempty"`
	BaselineFullWarmMS        float64 `json:"baseline_full_warm_ms,omitempty"`
	BaselineWarmMCyclesPerSec float64 `json:"baseline_warm_mcycles_per_sec,omitempty"`
	ColdSpeedup               float64 `json:"cold_speedup,omitempty"`
	WarmSpeedup               float64 `json:"warm_speedup,omitempty"`
	MemoWarmSpeedup           float64 `json:"memo_warm_speedup,omitempty"`
	DiskWarmSpeedup           float64 `json:"disk_warm_speedup,omitempty"`
	FullColdSpeedup           float64 `json:"full_cold_speedup,omitempty"`
	FullWarmSpeedup           float64 `json:"full_warm_speedup,omitempty"`
	// ThroughputRatio compares quick warm suite throughput against the
	// baseline's: > 1 means more evaluation work per second than before.
	ThroughputRatio float64 `json:"throughput_ratio,omitempty"`
}

// Report is the full harness output.
type Report struct {
	Schema     int    `json:"schema"`
	Created    string `json:"created"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the host CPU's model string (best effort; empty when
	// the platform doesn't expose one). Speedups between reports from
	// different CPU models measure the machines, not the code.
	CPUModel string `json:"cpu_model,omitempty"`
	Quick    bool   `json:"quick"`
	// Note is free-form context recorded with the run — why it was
	// taken, what the numbers should be read against.
	Note string `json:"note,omitempty"`

	Kernels []KernelResult `json:"kernels"`
	E2E     *E2EResult     `json:"e2e,omitempty"`

	// BaselineCreated is the timestamp of the report the speedups were
	// computed against, when one was supplied; BaselineNumCPU and
	// BaselineCPUModel flag cross-machine comparisons.
	BaselineCreated  string `json:"baseline_created,omitempty"`
	BaselineNumCPU   int    `json:"baseline_num_cpu,omitempty"`
	BaselineCPUModel string `json:"baseline_cpu_model,omitempty"`
}

// cpuModel reads the host CPU model string where the OS exposes one.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// kernelReps is how many times each kernel benchmark runs; the report
// keeps the fastest (see Run).
const kernelReps = 3

// Options tunes a harness run.
type Options struct {
	// Quick trims the per-kernel time budget and skips the full-scale
	// E2E phase; pair with CI smoke jobs.
	Quick bool
	// BenchTime overrides the per-kernel time budget (0 = 500ms, or
	// 30ms when Quick). It replaces the test.benchtime global flag the
	// harness once set through the flag registry.
	BenchTime time.Duration
	// SkipE2E skips the end-to-end experiment timings.
	SkipE2E bool
	// Baseline, when non-nil, is a previous Report to compare against.
	Baseline *Report
	// Note is free-form context copied into the report.
	Note string
	// Progress, when non-nil, receives one line per finished measurement.
	Progress func(string)
}

// benchTime resolves the per-kernel budget.
func (o Options) benchTime() time.Duration {
	if o.BenchTime > 0 {
		return o.BenchTime
	}
	if o.Quick {
		return 30 * time.Millisecond
	}
	return 500 * time.Millisecond
}

// Run executes every kernel benchmark plus the end-to-end timing and
// assembles the report.
func Run(opts Options) (*Report, error) {
	r := &Report{
		Schema:     2,
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Quick:      opts.Quick,
		Note:       opts.Note,
	}
	budget := opts.benchTime()
	for _, k := range Kernels() {
		// Each kernel runs kernelReps times and reports the fastest — the
		// classical minimum estimator: a kernel's true cost is its floor,
		// and anything above it is scheduler or frequency noise. runN
		// flushes the previous run's garbage before starting the clock,
		// so the container and trace kernels' multi-MB live sets don't
		// bleed GC time into the allocation-free kernels that follow.
		best, err := runBenchmark(k.Fn, budget)
		if err != nil {
			return nil, err
		}
		for rep := 1; rep < kernelReps; rep++ {
			b, err := runBenchmark(k.Fn, budget)
			if err != nil {
				return nil, err
			}
			if b.nsPerOp() < best.nsPerOp() {
				best = b
			}
		}
		kr := KernelResult{
			Name:        k.Name,
			Iterations:  best.N,
			NsPerOp:     best.nsPerOp(),
			BytesPerOp:  int64(best.netBytes) / int64(best.N),
			AllocsPerOp: int64(best.netAllocs) / int64(best.N),
		}
		r.Kernels = append(r.Kernels, kr)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%-32s %12.1f ns/op %8d allocs/op", kr.Name, kr.NsPerOp, kr.AllocsPerOp))
		}
	}
	if !opts.SkipE2E {
		e2e, err := runE2E(!opts.Quick)
		if err != nil {
			return nil, err
		}
		r.E2E = e2e
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%-32s %12.1f ms cold %10.1f ms warm", "E2E/"+e2e.IDs+"-"+e2e.Config, e2e.ColdMS, e2e.WarmMS))
			if e2e.WarmMCyclesPerSec > 0 {
				opts.Progress(fmt.Sprintf("%-32s %12.1f Mcycles/s warm", "E2E/suite-throughput", e2e.WarmMCyclesPerSec))
			}
			if e2e.MemoWarmMS > 0 {
				opts.Progress(fmt.Sprintf("%-32s %12.1f ms cold %10.1f ms warm", "E2E/eval-memo", e2e.MemoColdMS, e2e.MemoWarmMS))
			}
			if e2e.DiskWarmMS > 0 {
				opts.Progress(fmt.Sprintf("%-32s %12.1f ms cold %10.1f ms warm", "E2E/disk-cache", e2e.DiskColdMS, e2e.DiskWarmMS))
			}
			if e2e.SlicedPlaneHits+e2e.SlicedPlaneMisses > 0 {
				opts.Progress(fmt.Sprintf("%-32s %12d hits %10d misses", "E2E/sliced-planes", e2e.SlicedPlaneHits, e2e.SlicedPlaneMisses))
			}
			if e2e.FullColdMS > 0 {
				opts.Progress(fmt.Sprintf("%-32s %12.1f ms cold %10.1f ms warm (%.1f Mcycles/s)", "E2E/full-scale", e2e.FullColdMS, e2e.FullWarmMS, e2e.FullWarmMCyclesPerSec))
			}
		}
	}
	if opts.Baseline != nil {
		r.compare(opts.Baseline)
	}
	return r, nil
}

// compare fills baseline numbers and speedups from a previous report.
func (r *Report) compare(base *Report) {
	r.BaselineCreated = base.Created
	r.BaselineNumCPU = base.NumCPU
	r.BaselineCPUModel = base.CPUModel
	prev := make(map[string]KernelResult, len(base.Kernels))
	for _, k := range base.Kernels {
		prev[k.Name] = k
	}
	for i := range r.Kernels {
		b, ok := prev[r.Kernels[i].Name]
		if !ok || b.NsPerOp <= 0 || r.Kernels[i].NsPerOp <= 0 {
			continue
		}
		r.Kernels[i].BaselineNsPerOp = b.NsPerOp
		r.Kernels[i].Speedup = b.NsPerOp / r.Kernels[i].NsPerOp
	}
	if r.E2E != nil && base.E2E != nil {
		if base.E2E.ColdMS > 0 && r.E2E.ColdMS > 0 {
			r.E2E.BaselineColdMS = base.E2E.ColdMS
			r.E2E.ColdSpeedup = base.E2E.ColdMS / r.E2E.ColdMS
		}
		if base.E2E.WarmMS > 0 && r.E2E.WarmMS > 0 {
			r.E2E.BaselineWarmMS = base.E2E.WarmMS
			r.E2E.WarmSpeedup = base.E2E.WarmMS / r.E2E.WarmMS
		}
		if base.E2E.MemoWarmMS > 0 && r.E2E.MemoWarmMS > 0 {
			r.E2E.BaselineMemoWarmMS = base.E2E.MemoWarmMS
			r.E2E.MemoWarmSpeedup = base.E2E.MemoWarmMS / r.E2E.MemoWarmMS
		}
		if base.E2E.DiskWarmMS > 0 && r.E2E.DiskWarmMS > 0 {
			r.E2E.BaselineDiskWarmMS = base.E2E.DiskWarmMS
			r.E2E.DiskWarmSpeedup = base.E2E.DiskWarmMS / r.E2E.DiskWarmMS
		}
		if base.E2E.FullColdMS > 0 && r.E2E.FullColdMS > 0 {
			r.E2E.BaselineFullColdMS = base.E2E.FullColdMS
			r.E2E.FullColdSpeedup = base.E2E.FullColdMS / r.E2E.FullColdMS
		}
		if base.E2E.FullWarmMS > 0 && r.E2E.FullWarmMS > 0 {
			r.E2E.BaselineFullWarmMS = base.E2E.FullWarmMS
			r.E2E.FullWarmSpeedup = base.E2E.FullWarmMS / r.E2E.FullWarmMS
		}
		if base.E2E.WarmMCyclesPerSec > 0 && r.E2E.WarmMCyclesPerSec > 0 {
			r.E2E.BaselineWarmMCyclesPerSec = base.E2E.WarmMCyclesPerSec
			r.E2E.ThroughputRatio = r.E2E.WarmMCyclesPerSec / base.E2E.WarmMCyclesPerSec
		}
	}
}

// MarshalIndent renders the report as indented JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteFile marshals the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := r.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a report written by WriteFile.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad report %s: %w", path, err)
	}
	return &r, nil
}
