package bench

import (
	"context"
	"flag"
	"testing"
	"time"

	"buspower/internal/bus"
	"buspower/internal/coding"
	"buspower/internal/cpu"
	"buspower/internal/experiments"
	"buspower/internal/stats"
	"buspower/internal/workload"
)

func flagSet(name, value string) error { return flag.Set(name, value) }

// Kernel is one named micro-benchmark of a pipeline hot path.
type Kernel struct {
	Name string
	Fn   func(b *testing.B)
}

// Kernels returns the micro-benchmarks in report order. Names are stable
// across PRs — the JSON comparison matches on them — so measurements keep
// meaning "the same operation" even as implementations change underneath.
func Kernels() []Kernel {
	return []Kernel{
		{"Meter.Record/dense-32", benchMeterRecordDense},
		{"Meter.Record/sparse-64", benchMeterRecordSparse},
		{"Meter.MeasureTrace/dense-32", benchMeterMeasureTrace},
		{"Window.Encode/8", benchWindowEncode(8)},
		{"Window.Encode/128", benchWindowEncode(128)},
		{"Context.Encode/16", benchContextEncode(16)},
		{"Context.Encode/128", benchContextEncode(128)},
		{"Coding.EvaluateSweep/window", benchEvaluateSweep},
		{"CPU.Simulate/li-50k", benchSimulate},
	}
}

// denseTrace is uniformly random traffic: roughly half of all wires toggle
// every cycle, the worst case for per-wire accounting.
func denseTrace(n int, width int) []bus.Word {
	rng := stats.NewRNG(1)
	mask := bus.Mask(width)
	out := make([]bus.Word, n)
	for i := range out {
		out[i] = bus.Word(rng.Uint64()) & mask
	}
	return out
}

// sparseTrace toggles exactly one high-order wire per cycle — the paper's
// "quiet bus" regime (most cycles move little), and the worst case for
// bit-serial accounting loops that walk from wire 0 to the highest
// toggled wire.
func sparseTrace(n int) []bus.Word {
	out := make([]bus.Word, n)
	for i := range out {
		if i%2 == 1 {
			out[i] = 1 << 62
		}
	}
	return out
}

// dictTrace is dictionary-friendly traffic: a hot working set sized to the
// transcoder table with occasional cold values, so encode exercises both
// the hit (probe) and miss (insert) paths.
func dictTrace(n, hotValues int) []uint64 {
	rng := stats.NewRNG(424242)
	hot := make([]uint64, hotValues)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	out := make([]uint64, n)
	for i := range out {
		if rng.Intn(12) == 0 {
			out[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			out[i] = hot[rng.Intn(len(hot))]
		}
	}
	return out
}

func benchMeterRecordDense(b *testing.B) {
	trace := denseTrace(4096, 32)
	m := bus.NewMeter(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Record(trace[i&4095])
	}
}

func benchMeterRecordSparse(b *testing.B) {
	trace := sparseTrace(4096)
	m := bus.NewMeter(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Record(trace[i&4095])
	}
}

func benchMeterMeasureTrace(b *testing.B) {
	trace := denseTrace(4096, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := bus.MeasureTrace(32, trace)
		if m.Cycles() == 0 {
			b.Fatal("empty measurement")
		}
	}
	b.SetBytes(int64(len(trace)) * 8)
}

func benchWindowEncode(entries int) func(b *testing.B) {
	return func(b *testing.B) {
		trace := dictTrace(8192, entries*3/4)
		win, err := coding.NewWindow(32, entries, 1)
		if err != nil {
			b.Fatal(err)
		}
		enc := win.NewEncoder()
		// Warm the dictionary so the steady state dominates.
		for _, v := range trace {
			enc.Encode(v)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Encode(trace[i&8191])
		}
	}
}

func benchContextEncode(table int) func(b *testing.B) {
	return func(b *testing.B) {
		trace := dictTrace(8192, table*3/4)
		ctx, err := coding.NewContext(coding.ContextConfig{
			Width: 32, TableSize: table, ShiftEntries: 8,
			DividePeriod: 4096, Lambda: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		enc := ctx.NewEncoder()
		for _, v := range trace {
			enc.Encode(v)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Encode(trace[i&8191])
		}
	}
}

// benchEvaluateSweep is the experiments' inner loop in miniature: several
// window sizes evaluated over one shared trace, the way the figure sweeps
// multiply schemes × parameters over each workload.
func benchEvaluateSweep(b *testing.B) {
	trace := dictTrace(8192, 24)
	sizes := []int{4, 8, 16, 32}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evaluateWindowSweep(trace, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// evaluateWindowSweep evaluates each window size on the trace and returns
// the coded costs. It uses the same coding-package entry points as the
// experiment runners, so its cost tracks theirs: one shared raw-bus
// measurement for the sweep, encoder/decoder state reused via Evaluator.
func evaluateWindowSweep(trace []uint64, sizes []int) ([]float64, error) {
	raw := coding.MeasureRawValues(32, trace)
	var ev coding.Evaluator
	out := make([]float64, 0, len(sizes))
	for _, n := range sizes {
		win, err := coding.NewWindow(32, n, 1)
		if err != nil {
			return nil, err
		}
		ev.Use(win)
		res, err := ev.Evaluate(trace, 1, raw)
		if err != nil {
			return nil, err
		}
		out = append(out, res.CodedCost())
	}
	return out, nil
}

func benchSimulate(b *testing.B) {
	w, err := workload.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := cpu.NewSimulator(p, cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		tr := sim.Run(50_000, 0)
		if tr.Instructions == 0 {
			b.Fatal("no instructions executed")
		}
	}
}

// runE2E times one full quick-scale regeneration of every artifact through
// the parallel engine: cold (trace cache emptied first, so CPU simulation
// is included) and warm (sweep kernels only — the cost repeated reruns
// actually pay).
func runE2E() (*E2EResult, error) {
	cfg := experiments.QuickConfig()
	ids, err := experiments.ResolveIDs("all")
	if err != nil {
		return nil, err
	}
	workload.ClearTraceCache()
	start := time.Now()
	tables, err := experiments.RunAll(context.Background(), cfg, ids, experiments.Options{})
	if err != nil {
		return nil, err
	}
	cold := time.Since(start)
	start = time.Now()
	if _, err := experiments.RunAll(context.Background(), cfg, ids, experiments.Options{}); err != nil {
		return nil, err
	}
	warm := time.Since(start)
	return &E2EResult{
		IDs:    "all",
		Config: "quick",
		Jobs:   0,
		Tables: len(tables),
		ColdMS: float64(cold.Microseconds()) / 1000,
		WarmMS: float64(warm.Microseconds()) / 1000,
	}, nil
}
