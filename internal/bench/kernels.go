package bench

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"time"

	"buspower/internal/bus"
	"buspower/internal/coding"
	"buspower/internal/cpu"
	"buspower/internal/experiments"
	"buspower/internal/stats"
	"buspower/internal/trace"
	"buspower/internal/workload"
)

var (
	errDiskCacheCold = errors.New("bench: disk-warm pass had zero disk cache hits")
	errEvalMemoCold  = errors.New("bench: memo-warm pass had zero eval memo hits")
)

// Kernel is one named micro-benchmark of a pipeline hot path. Fn takes
// the harness's own B (see b.go), so the per-kernel budget is an
// explicit runBenchmark parameter rather than a global testing flag.
type Kernel struct {
	Name string
	Fn   func(b *B)
}

// Kernels returns the micro-benchmarks in report order. Names are stable
// across PRs — the JSON comparison matches on them — so measurements keep
// meaning "the same operation" even as implementations change underneath.
func Kernels() []Kernel {
	return []Kernel{
		{"Meter.Record/dense-32", benchMeterRecordDense},
		{"Meter.Record/sparse-64", benchMeterRecordSparse},
		{"Meter.MeasureTrace/dense-32", benchMeterMeasureTrace},
		{"Window.Encode/8", benchWindowEncode(8)},
		{"Window.Encode/128", benchWindowEncode(128)},
		{"Context.Encode/16", benchContextEncode(16)},
		{"Context.Encode/128", benchContextEncode(128)},
		{"Enum.Encode/optmem-32+2", benchEnumEncode(func() (coding.Transcoder, error) {
			return coding.NewOptMem(32, 2)
		})},
		{"Enum.Encode/vc-32+2", benchEnumEncode(func() (coding.Transcoder, error) {
			return coding.NewVC(32, 2)
		})},
		{"Enum.Encode/lowweight-32g4+1", benchEnumEncode(func() (coding.Transcoder, error) {
			return coding.NewLowWeight(32, 4, 1)
		})},
		{"Coding.EvaluateSweep/window", benchEvaluateSweep},
		{"Evaluate/window-8", benchEvaluateE2E(8, func() (coding.Transcoder, error) {
			return coding.NewWindow(32, 8, 1)
		})},
		{"Evaluate/context-64", benchEvaluateE2E(48, func() (coding.Transcoder, error) {
			return coding.NewContext(coding.ContextConfig{
				Width: 32, TableSize: 64, ShiftEntries: 8,
				DividePeriod: 4096, Lambda: 1,
			})
		})},
		{"Bus.SlicedMeter/32x8k", benchSlicedMeter},
		{"Grid.Stateless/raw-inv-gray", benchGridStateless},
		{"Grid.Stride/k1-8", benchGridStride},
		{"Grid.Optimal/4-family", benchGridOptimal},
		{"Batch.Window/8-128", benchBatchWindow},
		{"Batch.MultiTrace/li-suite", benchBatchMultiTrace},
		{"CPU.Simulate/li-50k", benchSimulate},
		{"Trace.Write/120k", benchTraceWrite},
		{"Trace.Read/120k", benchTraceRead},
		{"Container.Write/3x120k", benchContainerWrite},
		{"Container.Read/3x120k", benchContainerRead},
	}
}

// denseTrace is uniformly random traffic: roughly half of all wires toggle
// every cycle, the worst case for per-wire accounting.
func denseTrace(n int, width int) []bus.Word {
	rng := stats.NewRNG(1)
	mask := bus.Mask(width)
	out := make([]bus.Word, n)
	for i := range out {
		out[i] = bus.Word(rng.Uint64()) & mask
	}
	return out
}

// sparseTrace toggles exactly one high-order wire per cycle — the paper's
// "quiet bus" regime (most cycles move little), and the worst case for
// bit-serial accounting loops that walk from wire 0 to the highest
// toggled wire.
func sparseTrace(n int) []bus.Word {
	out := make([]bus.Word, n)
	for i := range out {
		if i%2 == 1 {
			out[i] = 1 << 62
		}
	}
	return out
}

// dictTrace is dictionary-friendly traffic: a hot working set sized to the
// transcoder table with occasional cold values, so encode exercises both
// the hit (probe) and miss (insert) paths.
func dictTrace(n, hotValues int) []uint64 {
	rng := stats.NewRNG(424242)
	hot := make([]uint64, hotValues)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	out := make([]uint64, n)
	for i := range out {
		if rng.Intn(12) == 0 {
			out[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			out[i] = hot[rng.Intn(len(hot))]
		}
	}
	return out
}

func benchMeterRecordDense(b *B) {
	trace := denseTrace(4096, 32)
	m := bus.NewMeter(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Record(trace[i&4095])
	}
}

func benchMeterRecordSparse(b *B) {
	trace := sparseTrace(4096)
	m := bus.NewMeter(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Record(trace[i&4095])
	}
}

func benchMeterMeasureTrace(b *B) {
	trace := denseTrace(4096, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := bus.MeasureTrace(32, trace)
		if m.Cycles() == 0 {
			b.Fatal("empty measurement")
		}
	}
	b.SetBytes(int64(len(trace)) * 8)
}

func benchWindowEncode(entries int) func(b *B) {
	return func(b *B) {
		trace := dictTrace(8192, entries*3/4)
		win, err := coding.NewWindow(32, entries, 1)
		if err != nil {
			b.Fatal(err)
		}
		enc := win.NewEncoder()
		// Warm the dictionary so the steady state dominates.
		for _, v := range trace {
			enc.Encode(v)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Encode(trace[i&8191])
		}
	}
}

func benchContextEncode(table int) func(b *B) {
	return func(b *B) {
		trace := dictTrace(8192, table*3/4)
		ctx, err := coding.NewContext(coding.ContextConfig{
			Width: 32, TableSize: table, ShiftEntries: 8,
			DividePeriod: 4096, Lambda: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		enc := ctx.NewEncoder()
		for _, v := range trace {
			enc.Encode(v)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Encode(trace[i&8191])
		}
	}
}

// benchEnumEncode measures the enumerative rank/unrank datapath of the
// optimal-codebook coders — a per-cycle O(wires) chain of binomial
// lookups, the opposite cost shape from the dictionary coders' probes.
func benchEnumEncode(build func() (coding.Transcoder, error)) func(b *B) {
	return func(b *B) {
		trace := dictTrace(8192, 48)
		tc, err := build()
		if err != nil {
			b.Fatal(err)
		}
		enc := tc.NewEncoder()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Encode(trace[i&8191])
		}
	}
}

// benchGridOptimal fans the four optimal-codebook coders out of one
// EvaluateGrid pass, exercising their materialize-and-slice fast paths
// the way the extopt experiment runs them.
func benchGridOptimal(b *B) {
	vals := dictTrace(8192, 48)
	raw := coding.MeasureRawValues(32, vals)
	var cells []coding.GridCell
	for _, spec := range []string{
		"optmem:extra=2", "vc:extra=2", "lowweight:groups=4,extra=1", "dvs:extra=2,vdd=80",
	} {
		tc, err := coding.BuildScheme(spec)
		if err != nil {
			b.Fatal(err)
		}
		cells = append(cells, coding.GridCell{T: tc, Lambda: 1})
	}
	b.SetBytes(int64(len(vals)) * 8 * int64(len(cells)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coding.EvaluateGrid(cells, vals, raw, coding.VerifySampled(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEvaluateE2E measures one whole Evaluator.Evaluate call — encode,
// meter and decoder self-check — the way the experiment runners invoke it
// (sampled verification, shared raw meter, reused evaluator scratch).
// Before PR 4 this operation buffered the coded trace, metered it in a
// second pass and ran the decoder on every cycle; the kernel name is
// stable so the report tracks that same end-to-end operation across both
// implementations.
//
// hot sizes the trace's working set to the scheme's capture range (at or
// just under its dictionary capacity), so the kernel measures the
// transcoder at its operating point — hit-dominated with a realistic miss
// tail — rather than degenerating into a pure raw-send (miss path)
// benchmark.
func benchEvaluateE2E(hot int, build func() (coding.Transcoder, error)) func(b *B) {
	return func(b *B) {
		trace := dictTrace(8192, hot)
		tc, err := build()
		if err != nil {
			b.Fatal(err)
		}
		raw := coding.MeasureRawValues(32, trace)
		var ev coding.Evaluator
		ev.Verify = coding.VerifySampled(0)
		ev.Use(tc)
		if _, err := ev.Evaluate(trace, 1, raw); err != nil { // warm scratch
			b.Fatal(err)
		}
		b.SetBytes(int64(len(trace)) * 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Evaluate(trace, 1, raw); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchEvaluateSweep is the experiments' inner loop in miniature: several
// window sizes evaluated over one shared trace, the way the figure sweeps
// multiply schemes × parameters over each workload.
func benchEvaluateSweep(b *B) {
	trace := dictTrace(8192, 24)
	sizes := []int{4, 8, 16, 32}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evaluateWindowSweep(trace, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// evaluateWindowSweep evaluates each window size on the trace and returns
// the coded costs. It uses the same coding-package entry points as the
// experiment runners, so its cost tracks theirs: one shared raw-bus
// measurement for the sweep, encoder/decoder state reused via Evaluator.
func evaluateWindowSweep(trace []uint64, sizes []int) ([]float64, error) {
	raw := coding.MeasureRawValues(32, trace)
	var ev coding.Evaluator
	out := make([]float64, 0, len(sizes))
	for _, n := range sizes {
		win, err := coding.NewWindow(32, n, 1)
		if err != nil {
			return nil, err
		}
		ev.Use(win)
		res, err := ev.Evaluate(trace, 1, raw)
		if err != nil {
			return nil, err
		}
		out = append(out, res.CodedCost())
	}
	return out, nil
}

// benchSlicedMeter measures the transposed-trace metering primitive the
// grid engine's stateless fast paths are built on: one transpose of an
// 8k-value trace into bit planes plus a word-parallel Σλ/Σψ count.
func benchSlicedMeter(b *B) {
	vals := dictTrace(8192, 48)
	b.SetBytes(int64(len(vals)) * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := bus.NewSlicedTrace(32, vals)
		if st.MeterLite().Cycles() == 0 {
			b.Fatal("empty sliced measurement")
		}
	}
}

// benchGridStateless fans the stateless coders (raw at two Λ, inversion,
// gray) out of one EvaluateGrid pass — the single-pass scheme-grid
// evaluation the experiment sweeps run on.
func benchGridStateless(b *B) {
	vals := dictTrace(8192, 48)
	raw := coding.MeasureRawValues(32, vals)
	inv, err := coding.NewBusInvert(32, 1)
	if err != nil {
		b.Fatal(err)
	}
	gray, err := coding.NewGray(32)
	if err != nil {
		b.Fatal(err)
	}
	cells := []coding.GridCell{
		{T: coding.NewRaw(32), Lambda: 1},
		{T: coding.NewRaw(32), Lambda: 2},
		{T: inv, Lambda: 1},
		{T: gray, Lambda: 1},
	}
	b.SetBytes(int64(len(vals)) * 8 * int64(len(cells)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coding.EvaluateGrid(cells, vals, raw, coding.VerifySampled(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGridStride evaluates a whole stride bank-depth sweep (k = 1..8)
// in one grid pass: the shared prefix-nesting tape is built once and
// replayed per depth, the way the figure-8 family runs.
func benchGridStride(b *B) {
	vals := dictTrace(8192, 24)
	raw := coding.MeasureRawValues(32, vals)
	var cells []coding.GridCell
	for k := 1; k <= 8; k++ {
		st, err := coding.NewStride(32, k, 1)
		if err != nil {
			b.Fatal(err)
		}
		cells = append(cells, coding.GridCell{T: st, Lambda: 1})
	}
	b.SetBytes(int64(len(vals)) * 8 * int64(len(cells)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coding.EvaluateGrid(cells, vals, raw, coding.VerifySampled(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchWindow fans a whole window register-size family out of one
// grid pass — the shared-prefix batch engine: one probe index, exact
// per-size rings, one pass over the trace metering every size at once.
func benchBatchWindow(b *B) {
	vals := dictTrace(8192, 48)
	raw := coding.MeasureRawValues(32, vals)
	var cells []coding.GridCell
	for _, n := range []int{8, 16, 32, 64, 128} {
		w, err := coding.NewWindow(32, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		cells = append(cells, coding.GridCell{T: w, Lambda: 1})
	}
	b.SetBytes(int64(len(vals)) * 8 * int64(len(cells)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coding.EvaluateGrid(cells, vals, raw, coding.VerifySampled(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchMultiTrace streams a small simulated suite — li's register,
// memory-data and memory-address buses — through one EvaluateBatch call,
// the way the experiment runners fan a scheme grid over a workload's
// traces with shared transcoder scratch.
func benchBatchMultiTrace(b *B) {
	w, err := workload.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	sim, err := cpu.NewSimulator(p, cpu.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tr := sim.Run(50_000, 0)
	var cells []coding.GridCell
	for _, n := range []int{8, 32, 128} {
		win, err := coding.NewWindow(32, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		cells = append(cells, coding.GridCell{T: win, Lambda: 1})
	}
	var total int
	traces := make([]coding.BatchTrace, 0, 3)
	for _, vals := range [][]uint64{tr.RegisterBus, tr.MemoryBus, tr.MemoryAddrBus} {
		traces = append(traces, coding.BatchTrace{Values: vals, Raw: coding.MeasureRawValues(32, vals)})
		total += len(vals)
	}
	b.SetBytes(int64(total) * 8 * int64(len(cells)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := coding.EvaluateBatch(cells, traces, coding.VerifySampled(0))
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(traces) {
			b.Fatal("short batch result")
		}
	}
}

func benchSimulate(b *B) {
	w, err := workload.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := cpu.NewSimulator(p, cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		tr := sim.Run(50_000, 0)
		if tr.Instructions == 0 {
			b.Fatal("no instructions executed")
		}
	}
}

// benchTraceSize matches DefaultRunConfig's per-bus trace length, so the
// serialization kernels measure the payload the cache actually moves.
const benchTraceSize = 120_000

func benchTraceValues(n int) []uint64 {
	rng := stats.NewRNG(7)
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() & 0xFFFFFFFF
	}
	return out
}

func benchTraceWrite(b *B) {
	tr := &trace.Trace{Name: "bench/reg", Width: 32, Values: benchTraceValues(benchTraceSize)}
	b.SetBytes(int64(len(tr.Values)) * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTraceRead(b *B) {
	tr := &trace.Trace{Name: "bench/reg", Width: 32, Values: benchTraceValues(benchTraceSize)}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchContainer mirrors one disk-cache entry: three bus sections at the
// full default trace length.
func benchContainer() *trace.Container {
	return &trace.Container{
		Name: "bench",
		Meta: []byte(`{"instructions":1500000,"cycles":2000000}`),
		Sections: []trace.Section{
			{Name: "reg", Width: 32, Values: benchTraceValues(benchTraceSize)},
			{Name: "mem", Width: 32, Values: benchTraceValues(benchTraceSize)},
			{Name: "addr", Width: 32, Values: benchTraceValues(benchTraceSize)},
		},
	}
}

func benchContainerWrite(b *B) {
	c := benchContainer()
	b.SetBytes(3 * benchTraceSize * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchContainerRead(b *B) {
	c := benchContainer()
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadContainer(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// mcyclesPerSec converts an EvaluatedCycles delta and a wall-clock
// duration into the suite throughput figure (millions of trace-cycle ×
// grid-cell units per second).
func mcyclesPerSec(cycles uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(cycles) / 1e6 / d.Seconds()
}

// runE2E times one full quick-scale regeneration of every artifact through
// the parallel engine in six states: cold (no caches — CPU simulation
// included), warm (in-memory traces, result memo cleared — the recompute
// cost with hot traces), memo-cold (identical inputs to warm: the eval
// memo is cleared again, isolating the evaluation recompute the memo
// exists to avoid), memo-warm (nothing cleared — the cost a rerun pays
// once every Result is memoized), disk-cold (an empty persistent cache
// directory being populated), and disk-warm (memory caches emptied but
// the directory kept — the cost a fresh process with a shipped cache dir
// pays). The eval memo is cleared before both disk phases so their
// numbers stay comparable with pre-memo reports.
//
// E2E phases run under sampled verification like real experiment runs
// (the CLI's -verify default); the tables are bit-identical either way.
func runE2E(includeFull bool) (*E2EResult, error) {
	cfg := experiments.QuickConfig()
	cfg.Verify = coding.VerifySampled(0)
	ids, err := experiments.ResolveIDs("all")
	if err != nil {
		return nil, err
	}
	runAll := func() (int, time.Duration, error) {
		start := time.Now()
		tables, err := experiments.RunAll(context.Background(), cfg, ids, experiments.Options{})
		return len(tables), time.Since(start), err
	}
	workload.ClearTraceCache()
	experiments.ClearEvalMemo()
	tables, cold, err := runAll()
	if err != nil {
		return nil, err
	}
	experiments.ClearEvalMemo()
	warmCycles := coding.EvaluatedCycles()
	_, warm, err := runAll()
	if err != nil {
		return nil, err
	}
	warmCycles = coding.EvaluatedCycles() - warmCycles
	experiments.ClearEvalMemo()
	_, memoCold, err := runAll()
	if err != nil {
		return nil, err
	}
	_, memoWarm, err := runAll()
	if err != nil {
		return nil, err
	}
	if s := experiments.EvalMemoStats(); s.Hits == 0 {
		// The memo-warm pass was supposed to be served from the memo; a
		// zero here means the memo is broken and the timing is a lie.
		return nil, errEvalMemoCold
	}

	// Disk phases run against a throwaway cache directory so the harness
	// never measures (or pollutes) a user's real cache.
	dir, err := os.MkdirTemp("", "buspower-bench-cache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	prevDir, err := workload.SetTraceCacheDir(dir)
	if err != nil {
		return nil, err
	}
	defer workload.SetTraceCacheDir(prevDir)
	workload.ClearTraceCache()
	experiments.ClearEvalMemo()
	_, diskCold, err := runAll()
	if err != nil {
		return nil, err
	}
	workload.ClearTraceCache() // memory only; the .trc files persist
	experiments.ClearEvalMemo()
	_, diskWarm, err := runAll()
	if err != nil {
		return nil, err
	}
	if s := workload.Stats(); s.DiskHits == 0 {
		// The warm pass was supposed to be served from disk; a zero here
		// means the cache is broken and the timing is a lie.
		return nil, errDiskCacheCold
	}
	sl := experiments.SlicedCacheStats()
	res := &E2EResult{
		IDs:               "all",
		Config:            "quick",
		SlicedPlaneHits:   sl.Hits,
		SlicedPlaneMisses: sl.Misses,
		Jobs:              0,
		Tables:            tables,
		ColdMS:            float64(cold.Microseconds()) / 1000,
		WarmMS:            float64(warm.Microseconds()) / 1000,
		WarmMCyclesPerSec: mcyclesPerSec(warmCycles, warm),
		MemoColdMS:        float64(memoCold.Microseconds()) / 1000,
		MemoWarmMS:        float64(memoWarm.Microseconds()) / 1000,
		DiskColdMS:        float64(diskCold.Microseconds()) / 1000,
		DiskWarmMS:        float64(diskWarm.Microseconds()) / 1000,
	}
	if !includeFull {
		return res, nil
	}

	// Full-scale phase: the paper-axes regeneration, timed cold (clean
	// memory caches against the still-throwaway disk dir, so the CPU
	// simulation of every workload is included) and warm (traces in
	// memory, every evaluation recomputed).
	fullCfg := experiments.DefaultConfig()
	fullCfg.Verify = coding.VerifySampled(0)
	runFull := func() (time.Duration, error) {
		start := time.Now()
		_, err := experiments.RunAll(context.Background(), fullCfg, ids, experiments.Options{})
		return time.Since(start), err
	}
	// Both full phases report the minimum of three runs: a full pass is
	// long enough that scheduler noise on a shared host dominates any
	// single sample, and the minimum is the run least disturbed by it.
	const fullReps = 3
	var fullDirs []string
	defer func() {
		for _, d := range fullDirs {
			os.RemoveAll(d)
		}
	}()
	var fullCold, fullWarm time.Duration
	for r := 0; r < fullReps; r++ {
		// Every cold rep gets a fresh empty disk dir: the first pass
		// populates whatever directory it runs against, and a reused one
		// would silently turn reps two and three into disk-warm runs.
		fullDir, err := os.MkdirTemp("", "buspower-bench-full-")
		if err != nil {
			return nil, err
		}
		fullDirs = append(fullDirs, fullDir)
		if _, err := workload.SetTraceCacheDir(fullDir); err != nil {
			return nil, err
		}
		workload.ClearTraceCache()
		experiments.ClearEvalMemo()
		d, err := runFull()
		if err != nil {
			return nil, err
		}
		if r == 0 || d < fullCold {
			fullCold = d
		}
	}
	// Warm reps reuse the traces the last cold rep left in memory; only
	// the evaluation memos are cleared, so each rep re-pays exactly the
	// recompute the warm figure measures. The cycle delta is taken around
	// the first rep (the count is deterministic across reps).
	fullCycles := coding.EvaluatedCycles()
	for r := 0; r < fullReps; r++ {
		experiments.ClearEvalMemo()
		d, err := runFull()
		if err != nil {
			return nil, err
		}
		if r == 0 {
			fullCycles = coding.EvaluatedCycles() - fullCycles
		}
		if r == 0 || d < fullWarm {
			fullWarm = d
		}
	}
	res.FullColdMS = float64(fullCold.Microseconds()) / 1000
	res.FullWarmMS = float64(fullWarm.Microseconds()) / 1000
	res.FullWarmMCyclesPerSec = mcyclesPerSec(fullCycles, fullWarm)
	return res, nil
}
