package bus

import (
	"fmt"
	"math/bits"
)

// SlicedTrace is the transposed (bit-sliced) representation of a value
// trace: plane b is the stream of wire b's values, packed 64 cycles per
// lane word — bit j of plane word k is bit b of value k*64+j. Building
// it costs one 64×64 bit-matrix transpose per block of 64 values; in
// exchange, the per-wire statistics the scalar Meter accumulates
// cycle-by-cycle become whole-word popcounts over the planes (64 cycles
// advance per machine word), and stateless per-wire recodings are
// plane-level transforms instead of per-cycle work.
//
// The represented measurement is exactly that of coding.MeasureRawValues:
// power-up in the all-zero state, then one beat per value. Meter and
// MeterLite are differential-tested bit-for-bit against the scalar path.
type SlicedTrace struct {
	width  int
	n      int // values represented
	blocks int // lane words per plane
	last   uint64
	lanes  []uint64 // width planes, plane-major: plane b is lanes[b*blocks:(b+1)*blocks]
}

// NewSlicedTrace transposes the values (masked to width) into planes.
func NewSlicedTrace(width int, values []uint64) *SlicedTrace {
	if width < 1 || width > MaxWidth {
		panic(fmt.Sprintf("bus: invalid sliced trace width %d", width))
	}
	n := len(values)
	blocks := (n + 63) / 64
	s := &SlicedTrace{
		width:  width,
		n:      n,
		blocks: blocks,
		lanes:  make([]uint64, width*blocks),
	}
	mask := uint64(Mask(width))
	if n > 0 {
		s.last = values[n-1] & mask
	}
	var block [64]uint64
	for k := 0; k < blocks; k++ {
		vals := values[k*64 : min(k*64+64, n)]
		// transpose64's bit/index convention yields out[p] bit q =
		// in[63-q] bit (63-p); loading value i at slot 63-i and reading
		// plane b from slot 63-b cancels both reversals (see the
		// derivation on transpose64).
		for i := range block {
			block[i] = 0
		}
		for i, v := range vals {
			block[63-i] = v & mask
		}
		transpose64(&block)
		for b := 0; b < width; b++ {
			s.lanes[b*blocks+k] = block[63-b]
		}
	}
	return s
}

// transpose64 transposes a 64×64 bit matrix in place with the classic
// masked block-swap network (6 rounds of halving block sizes). Under the
// convention "row i = a[i], column j = bit 63-j" each round swaps the two
// off-diagonal sub-blocks, so in raw (index, bit) terms the result is
// out[p] bit q = in[63-q] bit (63-p) — a transpose composed with both
// index and bit reversal, which NewSlicedTrace cancels by reversing its
// loads and stores.
func transpose64(a *[64]uint64) {
	j := 32
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k] ^ (a[k|j] >> uint(j))) & m
			a[k] ^= t
			a[k|j] ^= t << uint(j)
		}
		j >>= 1
		m ^= m << uint(j)
	}
}

// Width returns the data width of the represented trace.
func (s *SlicedTrace) Width() int { return s.width }

// Len returns the number of represented values.
func (s *SlicedTrace) Len() int { return s.n }

// Plane returns wire b's packed value stream (do not mutate).
func (s *SlicedTrace) Plane(b int) []uint64 {
	return s.lanes[b*s.blocks : (b+1)*s.blocks]
}

// Gray returns the sliced trace of the reflected-binary (Gray) coding of
// every value: bit b of the coded value is v_b ^ v_{b+1}, so coded plane
// b is simply plane b XOR plane b+1 (the top plane XORs against zero) —
// the plane-level form of coding.GrayEncode.
func (s *SlicedTrace) Gray() *SlicedTrace {
	g := &SlicedTrace{
		width:  s.width,
		n:      s.n,
		blocks: s.blocks,
		last:   (s.last ^ (s.last >> 1)) & uint64(Mask(s.width)),
		lanes:  make([]uint64, len(s.lanes)),
	}
	for b := 0; b < s.width; b++ {
		lo := s.lanes[b*s.blocks : (b+1)*s.blocks]
		out := g.lanes[b*s.blocks : (b+1)*s.blocks]
		if b+1 < s.width {
			hi := s.lanes[(b+1)*s.blocks : (b+2)*s.blocks]
			for k := range out {
				out[k] = lo[k] ^ hi[k]
			}
		} else {
			copy(out, lo)
		}
	}
	return g
}

// Meter returns a detailed meter (per-wire and per-pair histograms)
// bit-identical to feeding [0, v_0, ..., v_{n-1}] through NewMeter —
// the accounting of coding.MeasureRawValues, histograms included, with
// every per-wire count produced by lane-parallel popcounts.
func (s *SlicedTrace) Meter() *Meter { return s.meter(NewMeter(s.width)) }

// MeterLite is Meter with Σ-only accumulation (NewMeterLite).
func (s *SlicedTrace) MeterLite() *Meter { return s.meter(NewMeterLite(s.width)) }

// meter fills m (fresh, at s.width) from the planes. The transition lane
// of a plane is t = w ^ ((w << 1) | carry): bit j of word k compares
// cycle k*64+j with its predecessor, the carry threading the previous
// word's top lane across block boundaries and the initial all-zero state
// entering as carry 0 into the first word.
func (s *SlicedTrace) meter(m *Meter) *Meter {
	tail := ^uint64(0)
	if r := s.n & 63; r != 0 {
		tail = (uint64(1) << uint(r)) - 1
	}
	lastBlock := s.blocks - 1
	var transitions, couplings uint64
	// Each adjacent plane pair streams once: the pair pass also counts
	// the lower plane's transitions, and the top plane gets its own pass.
	for b := 0; b+1 < s.width; b++ {
		lo := s.lanes[b*s.blocks : (b+1)*s.blocks]
		hi := s.lanes[(b+1)*s.blocks : (b+2)*s.blocks]
		var carryLo, carryHi uint64
		var tc, sc, oc uint64
		for k := range lo {
			wl, wh := lo[k], hi[k]
			pl := (wl << 1) | carryLo
			ph := (wh << 1) | carryHi
			carryLo = wl >> 63
			carryHi = wh >> 63
			tl := wl ^ pl
			th := wh ^ ph
			single := tl ^ th
			opposite := ((wl &^ pl) & (ph &^ wh)) | ((pl &^ wl) & (wh &^ ph))
			if k == lastBlock {
				tl &= tail
				single &= tail
				opposite &= tail
			}
			tc += uint64(bits.OnesCount64(tl))
			sc += uint64(bits.OnesCount64(single))
			oc += uint64(bits.OnesCount64(opposite))
		}
		transitions += tc
		couplings += sc + 2*oc
		if m.perWire != nil {
			m.perWire[b] = tc
			m.perPair[b] = sc + 2*oc
		}
	}
	// Top plane (or the only plane at width 1): transitions only.
	{
		b := s.width - 1
		plane := s.lanes[b*s.blocks : (b+1)*s.blocks]
		var carry, tc uint64
		for k, w := range plane {
			t := w ^ ((w << 1) | carry)
			carry = w >> 63
			if k == lastBlock {
				t &= tail
			}
			tc += uint64(bits.OnesCount64(t))
		}
		transitions += tc
		if m.perWire != nil {
			m.perWire[b] = tc
		}
	}
	m.started = true
	m.prev = Word(s.last)
	m.cycles = uint64(s.n) + 1
	m.transitions = transitions
	m.couplings = couplings
	return m
}
