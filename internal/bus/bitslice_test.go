package bus

import (
	"math/rand"
	"testing"
)

// scalarMeasure is the reference the sliced path must reproduce exactly:
// power-up at zero, then one beat per value (coding.MeasureRawValues).
func scalarMeasure(width int, values []uint64, detailed bool) *Meter {
	var m *Meter
	if detailed {
		m = NewMeter(width)
	} else {
		m = NewMeterLite(width)
	}
	m.Record(0)
	m.RecordValues(values)
	return m
}

func compareMeters(t *testing.T, want, got *Meter) {
	t.Helper()
	if got.Cycles() != want.Cycles() {
		t.Errorf("cycles: got %d want %d", got.Cycles(), want.Cycles())
	}
	if got.Transitions() != want.Transitions() {
		t.Errorf("transitions: got %d want %d", got.Transitions(), want.Transitions())
	}
	if got.Couplings() != want.Couplings() {
		t.Errorf("couplings: got %d want %d", got.Couplings(), want.Couplings())
	}
	if got.State() != want.State() {
		t.Errorf("state: got %#x want %#x", got.State(), want.State())
	}
	if want.Detailed() != got.Detailed() {
		t.Fatalf("detailed: got %v want %v", got.Detailed(), want.Detailed())
	}
	if !want.Detailed() {
		return
	}
	for n := 0; n < want.Width(); n++ {
		if got.WireTransitions(n) != want.WireTransitions(n) {
			t.Errorf("wire %d transitions: got %d want %d", n, got.WireTransitions(n), want.WireTransitions(n))
		}
	}
	for n := 0; n+1 < want.Width(); n++ {
		if got.PairCouplings(n) != want.PairCouplings(n) {
			t.Errorf("pair %d couplings: got %d want %d", n, got.PairCouplings(n), want.PairCouplings(n))
		}
	}
}

func testTraces(width int, rng *rand.Rand) map[string][]uint64 {
	mask := uint64(Mask(width))
	dense := make([]uint64, 1000)
	for i := range dense {
		dense[i] = rng.Uint64() & mask
	}
	sparse := make([]uint64, 1000)
	v := uint64(0)
	for i := range sparse {
		if rng.Intn(8) == 0 {
			v ^= uint64(1) << uint(rng.Intn(width))
		}
		sparse[i] = v & mask
	}
	ramp := make([]uint64, 300)
	for i := range ramp {
		ramp[i] = uint64(i) & mask
	}
	return map[string][]uint64{
		"empty":     nil,
		"one":       {mask},
		"constant":  {3 & mask, 3 & mask, 3 & mask, 3 & mask},
		"len63":     dense[:63],
		"len64":     dense[:64],
		"len65":     dense[:65],
		"len127":    dense[:127],
		"len128":    dense[:128],
		"dense":     dense,
		"sparse":    sparse,
		"ramp":      ramp,
		"unmasked":  {^uint64(0), 0, ^uint64(0), 1},
		"alternate": {mask, 0, mask, 0, mask},
	}
}

func TestSlicedTraceMatchesMeter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 2, 33, 64} {
		for name, trace := range testTraces(width, rng) {
			s := NewSlicedTrace(width, trace)
			if s.Len() != len(trace) || s.Width() != width {
				t.Fatalf("w%d/%s: sliced dims %d/%d", width, name, s.Len(), s.Width())
			}
			t.Run(name, func(t *testing.T) {
				compareMeters(t, scalarMeasure(width, trace, true), s.Meter())
				compareMeters(t, scalarMeasure(width, trace, false), s.MeterLite())
			})
		}
	}
}

func TestSlicedTracePlanes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	width := 33
	trace := make([]uint64, 130)
	for i := range trace {
		trace[i] = rng.Uint64()
	}
	s := NewSlicedTrace(width, trace)
	mask := uint64(Mask(width))
	for b := 0; b < width; b++ {
		plane := s.Plane(b)
		for i, v := range trace {
			want := (v & mask >> uint(b)) & 1
			got := plane[i/64] >> uint(i%64) & 1
			if got != want {
				t.Fatalf("plane %d cycle %d: got %d want %d", b, i, got, want)
			}
		}
	}
}

func TestSlicedTraceGray(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, width := range []int{1, 2, 33, 64} {
		mask := uint64(Mask(width))
		trace := make([]uint64, 500)
		for i := range trace {
			trace[i] = rng.Uint64()
		}
		gray := make([]uint64, len(trace))
		for i, v := range trace {
			v &= mask
			gray[i] = (v ^ (v >> 1)) & mask
		}
		compareMeters(t, scalarMeasure(width, gray, true), NewSlicedTrace(width, trace).Gray().Meter())
	}
}

func FuzzSlicedMeter(f *testing.F) {
	f.Add(uint8(33), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(1), []byte{0xFF, 0x00, 0xFF})
	f.Add(uint8(64), []byte{})
	f.Fuzz(func(t *testing.T, w uint8, data []byte) {
		width := int(w)%MaxWidth + 1
		trace := make([]uint64, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			// Spread the bytes across the word so wide buses exercise
			// high planes too.
			v := uint64(data[i]) | uint64(data[i+1])<<8
			v |= v << 24 << (uint(data[i]) % 16)
			trace = append(trace, v)
		}
		s := NewSlicedTrace(width, trace)
		compareMeters(t, scalarMeasure(width, trace, true), s.Meter())
		compareMeters(t, scalarMeasure(width, trace, false), s.MeterLite())
	})
}
