// Package bus provides the fundamental abstractions of the paper's energy
// model: bus words, transition vectors, and the per-wire accounting of
// self transitions (λ_n) and inter-wire coupling events (ψ_n) defined by
// equations (1)-(3) of "Exploiting Prediction to Reduce Power on Buses".
//
// Energy expended by wire n over a trace is modeled as
//
//	E_n ∝ L_bus · (λ_n + Λ·ψ_n)
//
// where λ_n counts the charge/discharge events on the wire itself and ψ_n
// counts the cycles in which the relative polarity of wires n and n+1
// changes (exactly one of the adjacent pair toggles), weighted by the
// technology-dependent ratio Λ = C_I / C_S between inter-wire and
// wire-to-substrate capacitance.
package bus

import (
	"fmt"
	"math/bits"
)

// Word is the state of up to 64 bus wires; bit n is wire n.
type Word uint64

// MaxWidth is the widest bus representable by Word.
const MaxWidth = 64

// Mask returns a Word with the low width bits set.
// It panics if width is outside [0, MaxWidth].
func Mask(width int) Word {
	if uint(width) > MaxWidth {
		panicWidth(width)
	}
	// Branchless across the whole [0, MaxWidth] range: Go defines
	// over-wide shifts to yield 0, so width 0 masks to nothing and
	// width 64 keeps every bit. Keeping the body this small lets Mask
	// inline into the per-cycle encode/metering paths.
	return ^Word(0) >> uint(MaxWidth-width)
}

// panicWidth is kept out of line so Mask itself stays under the inlining
// budget — inlining the Sprintf panic path into Mask pushes it over.
//
//go:noinline
func panicWidth(width int) {
	panic(fmt.Sprintf("bus: invalid width %d", width))
}

// Transitions returns the transition vector between two successive bus
// states: bit n is set iff wire n changes value.
func Transitions(prev, cur Word) Word {
	return prev ^ cur
}

// Weight returns the Hamming weight of w — with transition coding this is
// the number of wires that expend charge/discharge energy.
func Weight(w Word) int {
	return bits.OnesCount64(uint64(w))
}

// TransitionCount returns the number of wires among the low width bits
// that toggle between prev and cur (the per-cycle contribution to Σλ_n).
func TransitionCount(prev, cur Word, width int) int {
	return Weight((prev ^ cur) & Mask(width))
}

// CouplingCount returns the number of coupling events across adjacent wire
// pairs (n, n+1) within the low width bits between states prev and cur;
// this is the per-cycle contribution to Σψ_n per equation (3):
//
//	ψ contribution = |(W_n − W_{n+1}) − (W'_n − W'_{n+1})|
//
// with arithmetic differences, so a pair contributes
//
//	0 if neither wire toggles, or both toggle in the same direction
//	  (the voltage across the coupling capacitor is unchanged),
//	1 if exactly one wire toggles (the coupling cap swings by Vdd),
//	2 if the wires toggle in opposite directions (the cap swings by 2·Vdd).
func CouplingCount(prev, cur Word, width int) int {
	single, opposite := CouplingPairs(prev, cur, width)
	return Weight(single) + 2*Weight(opposite)
}

// CouplingPairs classifies the adjacent wire pairs that couple between
// states prev and cur: bit n of single is set iff exactly one wire of the
// pair (n, n+1) toggles (1 event), bit n of opposite iff the wires toggle
// in opposite directions (2 events). It is the one implementation of the
// eq. (3) pair math, shared by CouplingCount and the Meter's per-pair
// accounting.
func CouplingPairs(prev, cur Word, width int) (single, opposite Word) {
	if width < 2 {
		return 0, 0
	}
	m := Mask(width)
	prev &= m
	cur &= m
	t := prev ^ cur
	rising := cur &^ prev
	falling := prev &^ cur
	pm := Mask(width - 1)
	// Pairs where exactly one wire toggles.
	single = (t ^ (t >> 1)) & pm
	// Pairs where the wires toggle in opposite directions.
	opposite = ((rising & (falling >> 1)) | (falling & (rising >> 1))) & pm
	return single, opposite
}

// Cost returns the Λ-weighted energy cost (in units of wire transitions)
// of moving the bus from prev to cur:
//
//	cost = #transitions + Λ · #coupling events.
func Cost(prev, cur Word, width int, lambda float64) float64 {
	return float64(TransitionCount(prev, cur, width)) +
		lambda*float64(CouplingCount(prev, cur, width))
}

// CostMasked is Cost for callers that keep their states pre-masked and
// hold the width's pair mask (Mask(width-1)) hoisted: the per-candidate
// form encoders use when ranking bus states every cycle.
func CostMasked(prev, cur, pairMask Word, lambda float64) float64 {
	t := prev ^ cur
	rising := cur &^ prev
	falling := prev &^ cur
	single := (t ^ (t >> 1)) & pairMask
	opposite := ((rising & (falling >> 1)) | (falling & (rising >> 1))) & pairMask
	return float64(Weight(t)) +
		lambda*float64(Weight(single)+2*Weight(opposite))
}

// CostMaskedInt is CostMasked for integral Λ, computed entirely in
// uint64. Transition and coupling counts are at most 64 and 126, so for
// Λ below 2^46 every cost both functions can produce is an integer under
// 2^53 — exactly representable in float64 — and comparing two
// CostMaskedInt values orders identically to comparing the CostMasked
// floats. Encoders that rank candidate bus states every cycle use this
// to drop the int→float conversions and float compares from their hot
// path without changing a single decision.
func CostMaskedInt(prev, cur, pairMask Word, lambda uint64) uint64 {
	t := prev ^ cur
	rising := cur &^ prev
	falling := prev &^ cur
	single := (t ^ (t >> 1)) & pairMask
	opposite := ((rising & (falling >> 1)) | (falling & (rising >> 1))) & pairMask
	return uint64(Weight(t)) +
		lambda*uint64(Weight(single)+2*Weight(opposite))
}

// ExpectedSelfCoupling returns the expected number of coupling events
// caused by applying transition vector t to a bus whose wire polarities are
// uniformly random. Pairs where exactly one wire toggles always cost 1;
// pairs where both wires toggle cost 0 (same direction) or 2 (opposite
// directions) with equal probability, i.e. 1 in expectation. The result is
// expressed in half-events to stay integral: divide by 2 for events.
//
// Codebook construction uses this to rank candidate transition vectors by
// coupling cost without knowing the live bus state.
func ExpectedSelfCoupling(t Word, width int) int {
	if width < 2 {
		return 0
	}
	t &= Mask(width)
	pm := Mask(width - 1)
	single := (t ^ (t >> 1)) & pm
	both := (t & (t >> 1)) & pm
	return 2*Weight(single) + 2*Weight(both) // half-events: 1 event == 2
}
