package bus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		width int
		want  Word
	}{
		{0, 0},
		{1, 1},
		{4, 0xF},
		{8, 0xFF},
		{32, 0xFFFFFFFF},
		{63, 0x7FFFFFFFFFFFFFFF},
		{64, ^Word(0)},
	}
	for _, c := range cases {
		if got := Mask(c.width); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.width, got, c.want)
		}
	}
}

func TestMaskPanics(t *testing.T) {
	for _, w := range []int{-1, 65, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mask(%d) did not panic", w)
				}
			}()
			Mask(w)
		}()
	}
}

func TestTransitions(t *testing.T) {
	if got := Transitions(0b1010, 0b0110); got != 0b1100 {
		t.Errorf("Transitions = %#b, want 0b1100", got)
	}
	if got := Transitions(0xFF, 0xFF); got != 0 {
		t.Errorf("identical states should produce no transitions, got %#x", got)
	}
}

func TestWeight(t *testing.T) {
	cases := []struct {
		w    Word
		want int
	}{
		{0, 0}, {1, 1}, {0b1011, 3}, {^Word(0), 64},
	}
	for _, c := range cases {
		if got := Weight(c.w); got != c.want {
			t.Errorf("Weight(%#x) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestTransitionCountMasksWidth(t *testing.T) {
	// Wires above the bus width must not be counted.
	if got := TransitionCount(0, ^Word(0), 8); got != 8 {
		t.Errorf("TransitionCount width 8 = %d, want 8", got)
	}
	if got := TransitionCount(0, ^Word(0), 64); got != 64 {
		t.Errorf("TransitionCount width 64 = %d, want 64", got)
	}
}

func TestCouplingCount(t *testing.T) {
	cases := []struct {
		name      string
		prev, cur Word
		width     int
		want      int
	}{
		{"no change", 0b0000, 0b0000, 4, 0},
		// One wire toggles in the middle: couples with both neighbors.
		{"single toggle", 0b0000, 0b0010, 4, 2},
		// One wire toggles at the edge: couples with one neighbor.
		{"edge toggle", 0b0000, 0b0001, 4, 1},
		// Two adjacent wires rise together: only the two boundary pairs couple.
		{"adjacent pair same direction", 0b0000, 0b0110, 4, 2},
		// Adjacent wires toggling in opposite directions: the shared pair
		// swings by 2·Vdd (2 events) plus the two boundary pairs.
		{"adjacent pair opposite", 0b0010, 0b0100, 4, 4},
		// Wires 0 and 2 toggle: pairs (0,1), (1,2), (2,3) all couple.
		{"one wire apart", 0b00000, 0b00101, 5, 3},
		// Interior wires 1 and 3 toggle: all four pairs couple.
		{"separated interior", 0b00000, 0b01010, 5, 4},
		// All wires toggle together: relative polarity everywhere unchanged.
		{"all toggle", 0b0000, 0b1111, 4, 0},
		// Alternating pattern inverts: every adjacent pair swings 2·Vdd.
		{"alternating flip", 0b0101, 0b1010, 4, 6},
		{"width 1 has no pairs", 0, 1, 1, 0},
	}
	for _, c := range cases {
		if got := CouplingCount(c.prev, c.cur, c.width); got != c.want {
			t.Errorf("%s: CouplingCount = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCouplingMatchesPaperEquation(t *testing.T) {
	// Direct implementation of eq. (3) with arithmetic differences:
	// ψ contribution for pair n = |(W_n − W_{n+1}) − (W'_n − W'_{n+1})|.
	ref := func(prev, cur Word, width int) int {
		count := 0
		for n := 0; n < width-1; n++ {
			dPrev := int((prev>>uint(n))&1) - int((prev>>uint(n+1))&1)
			dCur := int((cur>>uint(n))&1) - int((cur>>uint(n+1))&1)
			d := dCur - dPrev
			if d < 0 {
				d = -d
			}
			count += d
		}
		return count
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		width := 1 + rng.Intn(64)
		prev := Word(rng.Uint64()) & Mask(width)
		cur := Word(rng.Uint64()) & Mask(width)
		if got, want := CouplingCount(prev, cur, width), ref(prev, cur, width); got != want {
			t.Fatalf("width %d prev %#x cur %#x: got %d want %d", width, prev, cur, got, want)
		}
	}
}

func TestCostCombinesTerms(t *testing.T) {
	// 0b0000 -> 0b0101 on 4 wires: 2 transitions, pairs (0,1),(2,3) couple
	// plus (1,2): t=0101, t^(t>>1)=0101^0010=0111 -> 3 coupling events.
	got := Cost(0b0000, 0b0101, 4, 2.0)
	want := 2 + 2.0*3
	if got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestExpectedSelfCoupling(t *testing.T) {
	// Empirically average the exact coupling count over random bus states
	// and compare against the expectation (in half-events).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		width := 2 + rng.Intn(31)
		tvec := Word(rng.Uint64()) & Mask(width)
		const samples = 4000
		sum := 0
		for i := 0; i < samples; i++ {
			prev := Word(rng.Uint64()) & Mask(width)
			sum += CouplingCount(prev, prev^tvec, width)
		}
		avg := float64(sum) / samples
		want := float64(ExpectedSelfCoupling(tvec, width)) / 2
		if diff := avg - want; diff > 0.25 || diff < -0.25 {
			t.Errorf("width %d t %#x: empirical %v vs expected %v", width, tvec, avg, want)
		}
	}
}

func TestExpectedSelfCouplingExact(t *testing.T) {
	// Single toggling wire at the edge: one pair, always 1 event -> 2 half-events.
	if got := ExpectedSelfCoupling(0b0001, 4); got != 2 {
		t.Errorf("edge toggle: got %d half-events, want 2", got)
	}
	// Interior wire: two pairs -> 4 half-events.
	if got := ExpectedSelfCoupling(0b0010, 4); got != 4 {
		t.Errorf("interior toggle: got %d half-events, want 4", got)
	}
	// Width 1: no pairs.
	if got := ExpectedSelfCoupling(1, 1); got != 0 {
		t.Errorf("width 1: got %d, want 0", got)
	}
}

func TestMeterBasic(t *testing.T) {
	m := NewMeter(4)
	m.Record(0b0000) // initial: free
	m.Record(0b0001) // 1 transition, 1 coupling (edge)
	m.Record(0b0001) // idle
	// 0b0001 -> 0b1110: 4 transitions; wires 0 and 1 toggle in opposite
	// directions (2 events on pair 0); wires 1..3 rise together (0 events
	// on pairs 1 and 2).
	m.Record(0b1110)
	if m.Cycles() != 4 {
		t.Errorf("Cycles = %d, want 4", m.Cycles())
	}
	if m.Transitions() != 5 {
		t.Errorf("Transitions = %d, want 5", m.Transitions())
	}
	if m.Couplings() != 3 {
		t.Errorf("Couplings = %d, want 3", m.Couplings())
	}
	if got := m.Cost(0.5); got != 6.5 {
		t.Errorf("Cost(0.5) = %v, want 6.5", got)
	}
	if got := m.CostPerCycle(0.5); got != 6.5/3 {
		t.Errorf("CostPerCycle = %v, want %v", got, 6.5/3)
	}
}

func TestMeterPerWireSumsToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMeter(32)
	for i := 0; i < 1000; i++ {
		m.Record(Word(rng.Uint64()))
	}
	var sumWire, sumPair uint64
	for n := 0; n < 32; n++ {
		sumWire += m.WireTransitions(n)
	}
	for n := 0; n < 31; n++ {
		sumPair += m.PairCouplings(n)
	}
	if sumWire != m.Transitions() {
		t.Errorf("per-wire sum %d != total %d", sumWire, m.Transitions())
	}
	if sumPair != m.Couplings() {
		t.Errorf("per-pair sum %d != total %d", sumPair, m.Couplings())
	}
}

func TestMeterMasksHighBits(t *testing.T) {
	m := NewMeter(8)
	m.Record(0)
	m.Record(0xFFFFFFFFFFFFFF00) // all activity above the bus width
	if m.Transitions() != 0 {
		t.Errorf("high bits leaked into a width-8 meter: %d transitions", m.Transitions())
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(8)
	m.Record(0x00)
	m.Record(0xFF)
	m.Reset()
	if m.Cycles() != 0 || m.Transitions() != 0 || m.Couplings() != 0 {
		t.Error("Reset did not clear accumulators")
	}
	m.Record(0xFF) // must be treated as the initial state again
	if m.Transitions() != 0 {
		t.Error("Reset did not clear the initial-state latch")
	}
	for n := 0; n < 8; n++ {
		if m.WireTransitions(n) != 0 {
			t.Errorf("Reset left per-wire count on wire %d", n)
		}
	}
}

func TestMeterShortTraceCostPerCycle(t *testing.T) {
	m := NewMeter(8)
	if m.CostPerCycle(1) != 0 {
		t.Error("empty meter should report zero cost per cycle")
	}
	m.Record(0xAB)
	if m.CostPerCycle(1) != 0 {
		t.Error("single-cycle meter should report zero cost per cycle")
	}
}

func TestMeasureTrace(t *testing.T) {
	m := MeasureTrace(4, []Word{0b0000, 0b1111, 0b0000})
	if m.Transitions() != 8 {
		t.Errorf("Transitions = %d, want 8", m.Transitions())
	}
}

// Property: metering a trace equals the sum of per-step TransitionCount and
// CouplingCount calls.
func TestMeterMatchesStepwiseCounts(t *testing.T) {
	f := func(seed int64, rawWidth uint8) bool {
		width := 1 + int(rawWidth%64)
		rng := rand.New(rand.NewSource(seed))
		trace := make([]Word, 50)
		for i := range trace {
			trace[i] = Word(rng.Uint64()) & Mask(width)
		}
		m := MeasureTrace(width, trace)
		var trans, coup uint64
		for i := 1; i < len(trace); i++ {
			trans += uint64(TransitionCount(trace[i-1], trace[i], width))
			coup += uint64(CouplingCount(trace[i-1], trace[i], width))
		}
		return m.Transitions() == trans && m.Couplings() == coup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: at the boundary widths (1 has no pairs and exercises
// Mask(width-1) == Mask(0); 2 has a single pair; 33 straddles the word
// half; 64 is the full word) the Meter's totals equal the per-cycle sums
// of TransitionCount and CouplingCount — Record and the stateless
// counters must share one implementation of the pair math.
func TestMeterMatchesStepwiseCountsAtKeyWidths(t *testing.T) {
	for _, width := range []int{1, 2, 33, 64} {
		width := width
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			m := NewMeter(width)
			var trans, coup uint64
			prev := Word(0)
			for i := 0; i < 200; i++ {
				cur := Word(rng.Uint64()) & Mask(width)
				m.Record(cur)
				if i > 0 {
					trans += uint64(TransitionCount(prev, cur, width))
					coup += uint64(CouplingCount(prev, cur, width))
				}
				prev = cur
			}
			return m.Transitions() == trans && m.Couplings() == coup
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

// Property: cost is invariant under inverting the whole trace (all wires
// flip state each cycle equally).
func TestCostInversionInvariance(t *testing.T) {
	f := func(seed int64) bool {
		const width = 32
		rng := rand.New(rand.NewSource(seed))
		trace := make([]Word, 40)
		inv := make([]Word, 40)
		for i := range trace {
			trace[i] = Word(rng.Uint64()) & Mask(width)
			inv[i] = ^trace[i] & Mask(width)
		}
		a := MeasureTrace(width, trace)
		b := MeasureTrace(width, inv)
		return a.Transitions() == b.Transitions() && a.Couplings() == b.Couplings()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
