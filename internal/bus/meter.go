package bus

import "fmt"

// Meter accumulates the paper's per-wire activity statistics over a stream
// of bus states. Feed it the absolute wire state each cycle with Record;
// it tracks Σλ_n (self transitions, eq. 2) and Σψ_n (coupling events,
// eq. 3) so that the Λ-weighted energy cost of the trace can be computed
// for any wire length and technology.
//
// The first recorded word establishes the initial bus state and expends no
// energy.
type Meter struct {
	width   int
	prev    Word
	started bool

	cycles      uint64
	transitions uint64 // Σ_n λ_n
	couplings   uint64 // Σ_n ψ_n

	perWire []uint64 // λ_n per wire (len = width)
	perPair []uint64 // ψ_n per adjacent pair (len = max(width-1, 0))
}

// NewMeter returns a Meter for a bus of the given width (1..MaxWidth).
func NewMeter(width int) *Meter {
	if width < 1 || width > MaxWidth {
		panic(fmt.Sprintf("bus: invalid meter width %d", width))
	}
	pairs := width - 1
	return &Meter{
		width:   width,
		perWire: make([]uint64, width),
		perPair: make([]uint64, pairs),
	}
}

// Width returns the bus width the meter accounts for.
func (m *Meter) Width() int { return m.width }

// Record accounts one cycle in which the bus settles to state w.
func (m *Meter) Record(w Word) {
	w &= Mask(m.width)
	if !m.started {
		m.started = true
		m.prev = w
		m.cycles++
		return
	}
	t := m.prev ^ w
	if t != 0 {
		m.transitions += uint64(TransitionCount(m.prev, w, m.width))
		single, opposite := CouplingPairs(m.prev, w, m.width)
		m.couplings += uint64(Weight(single)) + 2*uint64(Weight(opposite))
		for n := 0; t != 0; n++ {
			if t&1 != 0 {
				m.perWire[n]++
			}
			t >>= 1
		}
		for n := 0; single != 0 || opposite != 0; n++ {
			m.perPair[n] += uint64(single&1) + 2*uint64(opposite&1)
			single >>= 1
			opposite >>= 1
		}
	}
	m.prev = w
	m.cycles++
}

// Cycles returns the number of recorded cycles (including the first).
func (m *Meter) Cycles() uint64 { return m.cycles }

// Transitions returns Σ_n λ_n over the recorded trace.
func (m *Meter) Transitions() uint64 { return m.transitions }

// Couplings returns Σ_n ψ_n over the recorded trace.
func (m *Meter) Couplings() uint64 { return m.couplings }

// WireTransitions returns λ_n for wire n.
func (m *Meter) WireTransitions(n int) uint64 { return m.perWire[n] }

// PairCouplings returns ψ_n for the adjacent pair (n, n+1).
func (m *Meter) PairCouplings(n int) uint64 { return m.perPair[n] }

// Cost returns the Λ-weighted activity Σλ + Λ·Σψ of the recorded trace —
// the quantity that, multiplied by the per-unit wire energy and the bus
// length, yields the trace's wire energy (eq. 1).
func (m *Meter) Cost(lambda float64) float64 {
	return float64(m.transitions) + lambda*float64(m.couplings)
}

// CostPerCycle returns Cost(lambda) normalized by the number of
// energy-expending cycles (cycles - 1); it returns 0 for traces shorter
// than two cycles.
func (m *Meter) CostPerCycle(lambda float64) float64 {
	if m.cycles < 2 {
		return 0
	}
	return m.Cost(lambda) / float64(m.cycles-1)
}

// State returns the current (most recently recorded) bus state.
func (m *Meter) State() Word { return m.prev }

// Reset clears all accumulated statistics and the initial-state latch.
func (m *Meter) Reset() {
	m.started = false
	m.prev = 0
	m.cycles = 0
	m.transitions = 0
	m.couplings = 0
	for i := range m.perWire {
		m.perWire[i] = 0
	}
	for i := range m.perPair {
		m.perPair[i] = 0
	}
}

// MeasureTrace runs a fresh meter over the given sequence of bus states
// and returns it. It is a convenience for one-shot accounting.
func MeasureTrace(width int, trace []Word) *Meter {
	m := NewMeter(width)
	for _, w := range trace {
		m.Record(w)
	}
	return m
}
