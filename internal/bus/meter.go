package bus

import (
	"fmt"
	"math/bits"
)

// Meter accumulates the paper's per-wire activity statistics over a stream
// of bus states. Feed it the absolute wire state each cycle with Record
// (or a batch with RecordTrace); it tracks Σλ_n (self transitions, eq. 2)
// and Σψ_n (coupling events, eq. 3) so that the Λ-weighted energy cost of
// the trace can be computed for any wire length and technology.
//
// The first recorded word establishes the initial bus state and expends no
// energy.
//
// NewMeter also collects per-wire and per-pair histograms; NewMeterLite
// keeps only the Σ totals, which is all the scheme sweeps consume, and
// makes Record a handful of word-parallel bit operations per cycle.
type Meter struct {
	width    int
	mask     Word // low width bits
	pairMask Word // low width-1 bits: valid adjacent pairs
	prev     Word
	started  bool

	cycles      uint64
	transitions uint64 // Σ_n λ_n
	couplings   uint64 // Σ_n ψ_n

	perWire []uint64 // λ_n per wire (len = width); nil for lite meters
	perPair []uint64 // ψ_n per adjacent pair (len = max(width-1, 0)); nil for lite meters
}

// NewMeter returns a Meter for a bus of the given width (1..MaxWidth),
// collecting per-wire and per-pair histograms alongside the Σ totals.
func NewMeter(width int) *Meter {
	m := NewMeterLite(width)
	m.perWire = make([]uint64, width)
	m.perPair = make([]uint64, width-1)
	return m
}

// NewMeterLite returns a Meter that accumulates only the Σλ/Σψ totals.
// WireTransitions and PairCouplings panic on a lite meter; everything
// else behaves identically, at a fraction of the per-cycle cost.
func NewMeterLite(width int) *Meter {
	if width < 1 || width > MaxWidth {
		panic(fmt.Sprintf("bus: invalid meter width %d", width))
	}
	return &Meter{width: width, mask: Mask(width), pairMask: Mask(width - 1)}
}

// Width returns the bus width the meter accounts for.
func (m *Meter) Width() int { return m.width }

// Detailed reports whether the meter collects per-wire and per-pair
// histograms (NewMeter) or only Σ totals (NewMeterLite).
func (m *Meter) Detailed() bool { return m.perWire != nil }

// Record accounts one cycle in which the bus settles to state w.
func (m *Meter) Record(w Word) {
	w &= m.mask
	if !m.started {
		m.started = true
		m.prev = w
		m.cycles++
		return
	}
	if t := m.prev ^ w; t != 0 {
		m.account(m.prev, w, t)
	}
	m.prev = w
	m.cycles++
}

// account folds one non-trivial transition into the statistics. prev and
// cur are already masked and differ by t = prev^cur.
func (m *Meter) account(prev, cur, t Word) {
	m.transitions += uint64(bits.OnesCount64(uint64(t)))
	// The eq. (3) pair classification of CouplingPairs, with the masks
	// hoisted out of the per-cycle path.
	rising := cur &^ prev
	falling := prev &^ cur
	single := (t ^ (t >> 1)) & m.pairMask
	opposite := ((rising & (falling >> 1)) | (falling & (rising >> 1))) & m.pairMask
	m.couplings += uint64(bits.OnesCount64(uint64(single))) + 2*uint64(bits.OnesCount64(uint64(opposite)))
	if m.perWire == nil {
		return
	}
	// Sparse histogram update: visit only the toggled wires and coupled
	// pairs instead of shifting through every bit position below them.
	for v := uint64(t); v != 0; v &= v - 1 {
		m.perWire[bits.TrailingZeros64(v)]++
	}
	for v := uint64(single); v != 0; v &= v - 1 {
		m.perPair[bits.TrailingZeros64(v)]++
	}
	for v := uint64(opposite); v != 0; v &= v - 1 {
		m.perPair[bits.TrailingZeros64(v)] += 2
	}
}

// RecordTrace accounts one cycle per element of trace, equivalent to
// calling Record on each but without the per-cycle call and field-access
// overhead — the batch fast path for measuring whole traces.
func (m *Meter) RecordTrace(trace []Word) { recordAll(m, trace) }

// RecordValues is RecordTrace for raw data-value streams ([]uint64), the
// form workload traces arrive in; each value is masked to the bus width.
func (m *Meter) RecordValues(values []uint64) { recordAll(m, values) }

// recordAll is the shared batch recording core. Σ totals accumulate in
// locals and flush once; histogram meters fall back to the per-cycle
// account path only on cycles that actually moved wires.
func recordAll[T ~uint64](m *Meter, vals []T) {
	if len(vals) == 0 {
		return
	}
	i := 0
	if !m.started {
		m.started = true
		m.prev = Word(vals[0]) & m.mask
		i = 1
	}
	prev, mask, pairMask := m.prev, m.mask, m.pairMask
	var transitions, couplings uint64
	if m.perWire == nil {
		for _, raw := range vals[i:] {
			w := Word(raw) & mask
			t := prev ^ w
			if t != 0 {
				transitions += uint64(bits.OnesCount64(uint64(t)))
				rising := w &^ prev
				falling := prev &^ w
				single := (t ^ (t >> 1)) & pairMask
				opposite := ((rising & (falling >> 1)) | (falling & (rising >> 1))) & pairMask
				couplings += uint64(bits.OnesCount64(uint64(single))) + 2*uint64(bits.OnesCount64(uint64(opposite)))
			}
			prev = w
		}
		m.transitions += transitions
		m.couplings += couplings
	} else {
		for _, raw := range vals[i:] {
			w := Word(raw) & mask
			if t := prev ^ w; t != 0 {
				m.account(prev, w, t)
			}
			prev = w
		}
	}
	m.prev = prev
	m.cycles += uint64(len(vals))
}

// streamChunk is the MeterStream staging capacity: large enough to
// amortize the batch accounting loop, small enough to stay resident in L1
// (2KB) and keep the stream stack-allocatable.
const streamChunk = 256

// MeterStream is the incremental batch-recording front-end of a Meter: a
// producer can meter each bus word as it is generated — no O(n) scratch
// trace buffer, no second pass — at RecordTrace's per-cycle cost. Record
// itself is a tiny inlinable append into a fixed-size staging chunk;
// every streamChunk words the chunk is drained through the same hoisted
// word-parallel loop as the RecordTrace fast path. Obtain one with
// Stream, Record words through it, and Flush to fold the accumulated
// statistics back into the Meter.
//
// A stream is a plain value (no heap allocation) and must not be copied
// while in use. Until Flush, the Meter itself does not observe the
// streamed cycles; interleaving direct Meter.Record calls with an
// unflushed stream is unsupported.
type MeterStream struct {
	m              *Meter
	mask, pairMask Word
	prev           Word
	started        bool
	detailed       bool
	cycles         uint64
	transitions    uint64
	couplings      uint64
	n              int
	buf            [streamChunk]Word
}

// Stream returns an incremental recorder continuing from the meter's
// current state.
func (m *Meter) Stream() MeterStream {
	var s MeterStream
	m.StreamInto(&s)
	return s
}

// StreamInto rebinds an existing MeterStream to m in place, continuing
// from the meter's current state. It exists for callers that keep the
// stream (whose chunk buffer makes it a large value) as long-lived
// scratch instead of building a fresh one per trace; any staged or
// accumulated state from a previous binding is discarded, so the previous
// use must have ended with Flush.
func (m *Meter) StreamInto(s *MeterStream) {
	s.m = m
	s.mask = m.mask
	s.pairMask = m.pairMask
	s.prev = m.prev
	s.started = m.started
	s.detailed = m.perWire != nil
	s.cycles, s.transitions, s.couplings = 0, 0, 0
	s.n = 0
}

// Record accounts one cycle in which the bus settles to state w,
// equivalent to Meter.Record once the stream is flushed.
func (s *MeterStream) Record(w Word) {
	if s.n == streamChunk {
		s.drain()
	}
	s.buf[s.n] = w
	s.n++
}

// AddBlock folds a pre-accounted run of cycles into the stream: the
// caller observed `cycles` bus states ending in `last` and already
// summed their Σ transition and coupling counts with the meter's exact
// arithmetic (stateful encoders get these for free from their eq. (3)
// cost evaluations). The first of those states must have been diffed
// against the stream's current last word — which the encoders'
// channel state equals by construction — and at least one word must
// have been recorded before the first AddBlock, so the power-up state
// is pinned. Histogram (detailed) meters cannot accept summary blocks.
func (s *MeterStream) AddBlock(cycles, transitions, couplings uint64, last Word) {
	if s.detailed {
		panic("bus: AddBlock on a histogram meter stream")
	}
	if cycles == 0 {
		// An empty block is equivalent to zero Records.
		return
	}
	s.drain()
	if !s.started {
		panic("bus: AddBlock before any recorded word")
	}
	s.cycles += cycles
	s.transitions += transitions
	s.couplings += couplings
	s.prev = last & s.mask
}

// drain accounts the staged words with the same local-accumulator batch
// arithmetic as Meter.recordAll.
func (s *MeterStream) drain() {
	if s.n == 0 {
		return
	}
	vals := s.buf[:s.n]
	s.n = 0
	s.cycles += uint64(len(vals))
	i := 0
	if !s.started {
		s.started = true
		s.prev = vals[0] & s.mask
		i = 1
	}
	prev := s.prev
	if s.detailed {
		// Histogram meters reuse the shared account path, which also
		// accumulates the Σ totals directly on the meter — the stream's
		// own Σ accumulators stay zero, so Flush never double-counts.
		for _, w := range vals[i:] {
			w &= s.mask
			if t := prev ^ w; t != 0 {
				s.m.account(prev, w, t)
			}
			prev = w
		}
		s.prev = prev
		return
	}
	mask, pairMask := s.mask, s.pairMask
	var transitions, couplings uint64
	for _, w := range vals[i:] {
		w &= mask
		if t := prev ^ w; t != 0 {
			transitions += uint64(bits.OnesCount64(uint64(t)))
			rising := w &^ prev
			falling := prev &^ w
			single := (t ^ (t >> 1)) & pairMask
			opposite := ((rising & (falling >> 1)) | (falling & (rising >> 1))) & pairMask
			couplings += uint64(bits.OnesCount64(uint64(single))) + 2*uint64(bits.OnesCount64(uint64(opposite)))
		}
		prev = w
	}
	s.prev = prev
	s.transitions += transitions
	s.couplings += couplings
}

// Flush drains the staging chunk and folds the streamed statistics into
// the Meter. The stream remains usable: further Record calls continue
// from the flushed state.
func (s *MeterStream) Flush() {
	s.drain()
	m := s.m
	m.transitions += s.transitions
	m.couplings += s.couplings
	m.cycles += s.cycles
	m.prev = s.prev
	m.started = s.started
	s.cycles, s.transitions, s.couplings = 0, 0, 0
}

// Clone returns an independent copy of the meter, histograms included.
// Cloning detaches a measurement from a Meter that will be Reset and
// reused (as coding.Evaluator does with its coded-bus meter).
func (m *Meter) Clone() *Meter {
	c := *m
	if m.perWire != nil {
		c.perWire = append([]uint64(nil), m.perWire...)
		c.perPair = append([]uint64(nil), m.perPair...)
	}
	return &c
}

// Cycles returns the number of recorded cycles (including the first).
func (m *Meter) Cycles() uint64 { return m.cycles }

// Transitions returns Σ_n λ_n over the recorded trace.
func (m *Meter) Transitions() uint64 { return m.transitions }

// Couplings returns Σ_n ψ_n over the recorded trace.
func (m *Meter) Couplings() uint64 { return m.couplings }

// WireTransitions returns λ_n for wire n. It panics on a lite meter.
func (m *Meter) WireTransitions(n int) uint64 {
	if m.perWire == nil {
		panic("bus: WireTransitions on a lite meter (use NewMeter for histograms)")
	}
	return m.perWire[n]
}

// PairCouplings returns ψ_n for the adjacent pair (n, n+1). It panics on
// a lite meter.
func (m *Meter) PairCouplings(n int) uint64 {
	if m.perPair == nil {
		panic("bus: PairCouplings on a lite meter (use NewMeter for histograms)")
	}
	return m.perPair[n]
}

// Cost returns the Λ-weighted activity Σλ + Λ·Σψ of the recorded trace —
// the quantity that, multiplied by the per-unit wire energy and the bus
// length, yields the trace's wire energy (eq. 1).
func (m *Meter) Cost(lambda float64) float64 {
	return float64(m.transitions) + lambda*float64(m.couplings)
}

// CostPerCycle returns Cost(lambda) normalized by the number of
// energy-expending cycles (cycles - 1); it returns 0 for traces shorter
// than two cycles.
func (m *Meter) CostPerCycle(lambda float64) float64 {
	if m.cycles < 2 {
		return 0
	}
	return m.Cost(lambda) / float64(m.cycles-1)
}

// State returns the current (most recently recorded) bus state.
func (m *Meter) State() Word { return m.prev }

// Reset clears all accumulated statistics and the initial-state latch.
func (m *Meter) Reset() {
	m.started = false
	m.prev = 0
	m.cycles = 0
	m.transitions = 0
	m.couplings = 0
	for i := range m.perWire {
		m.perWire[i] = 0
	}
	for i := range m.perPair {
		m.perPair[i] = 0
	}
}

// MeasureTrace runs a fresh meter over the given sequence of bus states
// and returns it. It is a convenience for one-shot accounting.
func MeasureTrace(width int, trace []Word) *Meter {
	m := NewMeter(width)
	m.RecordTrace(trace)
	return m
}
