package bus

import (
	"math/rand"
	"testing"
)

// referenceRecord is the pre-optimization bit-serial accounting, kept as
// the oracle the word-parallel fast path is differenced against.
type referenceMeter struct {
	width       int
	prev        Word
	started     bool
	cycles      uint64
	transitions uint64
	couplings   uint64
	perWire     []uint64
	perPair     []uint64
}

func newReferenceMeter(width int) *referenceMeter {
	return &referenceMeter{width: width, perWire: make([]uint64, width), perPair: make([]uint64, max(width-1, 0))}
}

func (m *referenceMeter) Record(w Word) {
	w &= Mask(m.width)
	if !m.started {
		m.started = true
		m.prev = w
		m.cycles++
		return
	}
	m.transitions += uint64(TransitionCount(m.prev, w, m.width))
	single, opposite := CouplingPairs(m.prev, w, m.width)
	m.couplings += uint64(Weight(single)) + 2*uint64(Weight(opposite))
	t := m.prev ^ w
	for n := 0; t != 0; n++ {
		if t&1 != 0 {
			m.perWire[n]++
		}
		t >>= 1
	}
	for n := 0; single != 0 || opposite != 0; n++ {
		if single&1 != 0 {
			m.perPair[n]++
		}
		if opposite&1 != 0 {
			m.perPair[n] += 2
		}
		single >>= 1
		opposite >>= 1
	}
	m.prev = w
	m.cycles++
}

func randomTrace(t *testing.T, n, width int, seed int64) []Word {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]Word, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			out[i] = Word(rng.Uint64()) & Mask(width)
		case 1:
			// sparse: one wire
			out[i] = 1 << rng.Intn(width)
		case 2:
			if i > 0 {
				out[i] = out[i-1] // quiet cycle
			}
		default:
			out[i] = Word(rng.Uint64()>>32) & Mask(width)
		}
	}
	return out
}

// TestMeterMatchesReference differences the optimized Record and the batch
// paths against the bit-serial oracle on every statistic, across widths.
func TestMeterMatchesReference(t *testing.T) {
	for _, width := range []int{1, 2, 7, 31, 32, 33, 63, 64} {
		trace := randomTrace(t, 2000, width, int64(width)*7919)
		ref := newReferenceMeter(width)
		rec := NewMeter(width)
		batch := NewMeter(width)
		lite := NewMeterLite(width)
		for _, w := range trace {
			ref.Record(w)
			rec.Record(w)
		}
		batch.RecordTrace(trace)
		lite.RecordTrace(trace)
		for name, m := range map[string]*Meter{"Record": rec, "RecordTrace": batch, "lite": lite} {
			if m.Cycles() != ref.cycles || m.Transitions() != ref.transitions || m.Couplings() != ref.couplings {
				t.Fatalf("width %d %s: got (%d, %d, %d), reference (%d, %d, %d)",
					width, name, m.Cycles(), m.Transitions(), m.Couplings(), ref.cycles, ref.transitions, ref.couplings)
			}
			if m.State() != ref.prev {
				t.Fatalf("width %d %s: state %#x != reference %#x", width, name, m.State(), ref.prev)
			}
		}
		for n := 0; n < width; n++ {
			if got := rec.WireTransitions(n); got != ref.perWire[n] {
				t.Fatalf("width %d wire %d: Record %d != reference %d", width, n, got, ref.perWire[n])
			}
			if got := batch.WireTransitions(n); got != ref.perWire[n] {
				t.Fatalf("width %d wire %d: RecordTrace %d != reference %d", width, n, got, ref.perWire[n])
			}
		}
		for n := 0; n < width-1; n++ {
			if got := rec.PairCouplings(n); got != ref.perPair[n] {
				t.Fatalf("width %d pair %d: Record %d != reference %d", width, n, got, ref.perPair[n])
			}
			if got := batch.PairCouplings(n); got != ref.perPair[n] {
				t.Fatalf("width %d pair %d: RecordTrace %d != reference %d", width, n, got, ref.perPair[n])
			}
		}
	}
}

// TestMeterRecordValuesMatchesRecordTrace covers the []uint64 alias path.
func TestMeterRecordValuesMatchesRecordTrace(t *testing.T) {
	trace := randomTrace(t, 500, 32, 99)
	vals := make([]uint64, len(trace))
	for i, w := range trace {
		vals[i] = uint64(w) | 0xFF00000000000000 // high bits must be masked off
	}
	a := NewMeter(32)
	b := NewMeter(32)
	a.RecordTrace(trace)
	b.RecordValues(vals)
	if a.Transitions() != b.Transitions() || a.Couplings() != b.Couplings() || a.Cycles() != b.Cycles() {
		t.Fatalf("RecordValues diverged: (%d,%d,%d) != (%d,%d,%d)",
			b.Cycles(), b.Transitions(), b.Couplings(), a.Cycles(), a.Transitions(), a.Couplings())
	}
}

// TestMeterLitePanics pins the contract that histogram accessors reject
// lite meters loudly instead of returning zeros.
func TestMeterLitePanics(t *testing.T) {
	m := NewMeterLite(8)
	m.Record(0)
	m.Record(3)
	for name, f := range map[string]func(){
		"WireTransitions": func() { m.WireTransitions(0) },
		"PairCouplings":   func() { m.PairCouplings(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on a lite meter did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestMeterRecordAllocs is the allocation regression guard for the
// per-cycle and batch hot paths: 0 allocs/op.
func TestMeterRecordAllocs(t *testing.T) {
	trace := randomTrace(t, 256, 32, 7)
	m := NewMeter(32)
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		m.Record(trace[i&255])
		i++
	}); allocs != 0 {
		t.Fatalf("Meter.Record allocates %v times per op, want 0", allocs)
	}
	lite := NewMeterLite(32)
	if allocs := testing.AllocsPerRun(100, func() {
		lite.RecordTrace(trace)
	}); allocs != 0 {
		t.Fatalf("Meter.RecordTrace allocates %v times per op, want 0", allocs)
	}
}

// TestMeterStreamMatchesBatch is the property test for the incremental
// recording front-end: streaming each word through MeterStream.Record
// (with flushes interleaved at arbitrary points) must equal the buffered
// Record(0)+RecordTrace(buf) path on every statistic, for lite and
// histogram meters across widths.
func TestMeterStreamMatchesBatch(t *testing.T) {
	for _, width := range []int{1, 2, 33, 64} {
		for _, detailed := range []bool{false, true} {
			trace := randomTrace(t, 3000, width, int64(width)*104729+boolSeed(detailed))
			mk := NewMeterLite
			if detailed {
				mk = NewMeter
			}
			batch := mk(width)
			batch.Record(0)
			batch.RecordTrace(trace)

			streamed := mk(width)
			st := streamed.Stream()
			st.Record(0)
			for i, w := range trace {
				st.Record(w)
				if i%997 == 0 {
					st.Flush() // the stream must survive interleaved flushes
				}
			}
			st.Flush()

			if streamed.Cycles() != batch.Cycles() ||
				streamed.Transitions() != batch.Transitions() ||
				streamed.Couplings() != batch.Couplings() ||
				streamed.State() != batch.State() {
				t.Fatalf("width %d detailed=%v: stream (%d,%d,%d,%#x) != batch (%d,%d,%d,%#x)",
					width, detailed,
					streamed.Cycles(), streamed.Transitions(), streamed.Couplings(), streamed.State(),
					batch.Cycles(), batch.Transitions(), batch.Couplings(), batch.State())
			}
			if detailed {
				for n := 0; n < width; n++ {
					if streamed.WireTransitions(n) != batch.WireTransitions(n) {
						t.Fatalf("width %d wire %d: stream %d != batch %d",
							width, n, streamed.WireTransitions(n), batch.WireTransitions(n))
					}
				}
				for n := 0; n < width-1; n++ {
					if streamed.PairCouplings(n) != batch.PairCouplings(n) {
						t.Fatalf("width %d pair %d: stream %d != batch %d",
							width, n, streamed.PairCouplings(n), batch.PairCouplings(n))
					}
				}
			}
		}
	}
}

func boolSeed(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestMeterStreamContinuesMeter pins that a stream picks up the meter's
// current bus state (no phantom transition at the splice point) and that
// the meter observes the streamed cycles only after Flush.
func TestMeterStreamContinuesMeter(t *testing.T) {
	m := NewMeterLite(8)
	m.Record(0)
	m.Record(0xFF)
	st := m.Stream()
	st.Record(0xFF) // quiet cycle across the splice: must cost nothing
	st.Record(0x00)
	if m.Cycles() != 2 {
		t.Fatalf("meter observed streamed cycles before Flush: %d cycles", m.Cycles())
	}
	st.Flush()
	want := NewMeterLite(8)
	for _, w := range []Word{0, 0xFF, 0xFF, 0} {
		want.Record(w)
	}
	if m.Cycles() != want.Cycles() || m.Transitions() != want.Transitions() || m.Couplings() != want.Couplings() {
		t.Fatalf("spliced stream (%d,%d,%d) != contiguous (%d,%d,%d)",
			m.Cycles(), m.Transitions(), m.Couplings(), want.Cycles(), want.Transitions(), want.Couplings())
	}
}

// TestMeterCloneDetaches verifies Clone copies every statistic and that
// mutating the original afterwards leaves the clone untouched.
func TestMeterCloneDetaches(t *testing.T) {
	m := NewMeter(8)
	m.RecordTrace(randomTrace(t, 200, 8, 11))
	c := m.Clone()
	wantCycles, wantTrans, wantCoup := m.Cycles(), m.Transitions(), m.Couplings()
	wantWire0, wantPair0 := m.WireTransitions(0), m.PairCouplings(0)
	m.RecordTrace(randomTrace(t, 200, 8, 13))
	if c.Cycles() != wantCycles || c.Transitions() != wantTrans || c.Couplings() != wantCoup {
		t.Fatalf("clone mutated by original: (%d,%d,%d) != (%d,%d,%d)",
			c.Cycles(), c.Transitions(), c.Couplings(), wantCycles, wantTrans, wantCoup)
	}
	if c.WireTransitions(0) != wantWire0 || c.PairCouplings(0) != wantPair0 {
		t.Fatalf("clone histograms share storage with original")
	}
}

// TestMeterStreamAllocs: the streaming front-end is a hot-loop citizen —
// 0 allocs/op for construction, Record and Flush.
func TestMeterStreamAllocs(t *testing.T) {
	trace := randomTrace(t, 256, 32, 17)
	m := NewMeterLite(32)
	if allocs := testing.AllocsPerRun(100, func() {
		st := m.Stream()
		for _, w := range trace {
			st.Record(w)
		}
		st.Flush()
	}); allocs != 0 {
		t.Fatalf("MeterStream path allocates %v times per op, want 0", allocs)
	}
}
