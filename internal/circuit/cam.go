package circuit

import "math/bits"

// CAM models the selective-precharge content-addressable match circuit of
// §5.3.3 (after Zukowski & Wang): each entry first compares only the
// low-order bits of the probe against its tag; only entries that pass this
// partial match precharge and compare the remaining bits. This avoids
// charging the full 32-bit comparators of every entry every cycle.
//
// The model counts the comparator bit-charges actually expended so the
// energy advantage over a naive full-width probe can be quantified (and is
// exercised by the ablation benchmarks).
type CAM struct {
	tags        []uint64
	valid       []bool
	partialBits int
	tagBits     int

	// PartialCharges and FullCharges accumulate the number of comparator
	// bit-charges spent in the partial and full phases respectively.
	PartialCharges uint64
	FullCharges    uint64
	// Probes counts match operations.
	Probes uint64
}

// NewCAM builds a CAM with the given number of entries and tag width;
// partialBits low-order bits are compared in the first phase (the paper's
// design uses 8 of 32).
func NewCAM(entries, tagBits, partialBits int) *CAM {
	if entries < 1 || tagBits < 1 || partialBits < 1 || partialBits > tagBits {
		panic("circuit: invalid CAM geometry")
	}
	return &CAM{
		tags:        make([]uint64, entries),
		valid:       make([]bool, entries),
		partialBits: partialBits,
		tagBits:     tagBits,
	}
}

// Write stores a tag into an entry.
func (c *CAM) Write(entry int, tag uint64) {
	c.tags[entry] = tag & c.mask(c.tagBits)
	c.valid[entry] = true
}

// Invalidate clears an entry.
func (c *CAM) Invalidate(entry int) { c.valid[entry] = false }

// Match probes all entries with the given tag and returns the matching
// entry index, or -1. Energy accounting: every valid entry charges its
// partialBits comparators; entries passing the partial phase charge the
// remaining tagBits-partialBits comparators.
func (c *CAM) Match(tag uint64) int {
	c.Probes++
	tag &= c.mask(c.tagBits)
	low := tag & c.mask(c.partialBits)
	found := -1
	for i, t := range c.tags {
		if !c.valid[i] {
			continue
		}
		c.PartialCharges += uint64(c.partialBits)
		if t&c.mask(c.partialBits) != low {
			continue
		}
		c.FullCharges += uint64(c.tagBits - c.partialBits)
		if t == tag && found < 0 {
			found = i
		}
	}
	return found
}

// NaiveMatchCharges returns the comparator bit-charges a full-width probe
// (no selective precharge) would have spent for the same number of probes:
// every valid entry charging all tag bits each probe. It is computed from
// the current entry count, so call it with a stable occupancy.
func (c *CAM) NaiveMatchCharges() uint64 {
	occupied := 0
	for _, v := range c.valid {
		if v {
			occupied++
		}
	}
	return c.Probes * uint64(occupied) * uint64(c.tagBits)
}

// Charges returns the total comparator bit-charges spent with selective
// precharge enabled.
func (c *CAM) Charges() uint64 { return c.PartialCharges + c.FullCharges }

func (c *CAM) mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// HammingDistance is a helper for comparator activity estimates.
func HammingDistance(a, b uint64) int { return bits.OnesCount64(a ^ b) }
