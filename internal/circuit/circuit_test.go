package circuit

import (
	"math"
	"testing"

	"buspower/internal/coding"
	"buspower/internal/stats"
	"buspower/internal/wire"
)

func TestJohnsonOneToggleWithinStage(t *testing.T) {
	j := NewJohnsonCounter(1)
	// Within a stage (no carries), every count toggles exactly one bit.
	for i := 0; i < 7; i++ {
		if got := j.Increment(); got != 1 {
			t.Fatalf("count %d toggled %d bits, want 1", i, got)
		}
	}
}

func TestJohnsonCountsAndSaturates(t *testing.T) {
	j := NewJohnsonCounter(2) // max 63
	if j.Max() != 63 {
		t.Fatalf("2-stage max = %d, want 63", j.Max())
	}
	for i := 0; i < 100; i++ {
		j.Increment()
	}
	if j.Value() != 63 || !j.Saturated() {
		t.Errorf("counter should saturate at 63, got %d", j.Value())
	}
	if j.Increment() != 0 {
		t.Error("saturated counter must not toggle bits")
	}
}

func TestJohnsonFourStagesMatchPaper(t *testing.T) {
	j := NewJohnsonCounter(4)
	if j.Max() != 4095 {
		t.Errorf("four 4-bit Johnson stages saturate at 4096 counts (max value 4095), got %d", j.Max())
	}
}

func TestJohnsonCarryCost(t *testing.T) {
	j := NewJohnsonCounter(2)
	for i := 0; i < 7; i++ {
		j.Increment()
	}
	// 8th increment carries into stage 2: exactly two toggles.
	if got := j.Increment(); got != 2 {
		t.Errorf("carry increment toggled %d bits, want 2", got)
	}
}

func TestJohnsonAverageTogglesNearOne(t *testing.T) {
	j := NewJohnsonCounter(4)
	const n = 4000
	for i := 0; i < n; i++ {
		j.Increment()
	}
	avg := float64(j.BitTransitions) / n
	// 1 + 1/8 + 1/64 + 1/512 ≈ 1.127 — far below a binary counter's ~2.
	if avg < 1.0 || avg > 1.2 {
		t.Errorf("average toggles per count = %v, want ≈1.13", avg)
	}
}

func TestJohnsonHalve(t *testing.T) {
	j := NewJohnsonCounter(4)
	for i := 0; i < 100; i++ {
		j.Increment()
	}
	j.Halve()
	if j.Value() != 50 {
		t.Errorf("Halve: value = %d, want 50", j.Value())
	}
	// Counting must continue correctly after a halve.
	j.Increment()
	if j.Value() != 51 {
		t.Errorf("post-halve increment: %d, want 51", j.Value())
	}
}

func TestJohnsonReset(t *testing.T) {
	j := NewJohnsonCounter(2)
	j.Increment()
	j.Reset()
	if j.Value() != 0 {
		t.Error("Reset failed")
	}
	if got := j.Increment(); got != 1 {
		t.Errorf("post-reset increment toggled %d", got)
	}
}

func TestJohnsonPatternConsistency(t *testing.T) {
	// The ring register reached by incrementing must equal the pattern
	// table used by Halve for every phase.
	j := NewJohnsonCounter(1)
	for phase := 1; phase <= 7; phase++ {
		j.Increment()
		if j.stages[0].bits != johnsonPattern(phase) {
			t.Errorf("phase %d: bits %04b, pattern %04b", phase, j.stages[0].bits, johnsonPattern(phase))
		}
	}
}

func TestCAMMatch(t *testing.T) {
	cam := NewCAM(8, 32, 8)
	cam.Write(3, 0xDEADBEEF)
	cam.Write(5, 0x12345678)
	if got := cam.Match(0xDEADBEEF); got != 3 {
		t.Errorf("Match = %d, want 3", got)
	}
	if got := cam.Match(0x11111111); got != -1 {
		t.Errorf("Match of absent tag = %d, want -1", got)
	}
	cam.Invalidate(3)
	if got := cam.Match(0xDEADBEEF); got != -1 {
		t.Error("invalidated entry still matches")
	}
}

func TestCAMSelectivePrechargeSavesCharges(t *testing.T) {
	cam := NewCAM(8, 32, 8)
	rng := stats.NewRNG(4)
	for i := 0; i < 8; i++ {
		cam.Write(i, rng.Uint64()&0xFFFFFFFF)
	}
	for i := 0; i < 1000; i++ {
		cam.Match(rng.Uint64() & 0xFFFFFFFF)
	}
	selective := cam.Charges()
	naive := cam.NaiveMatchCharges()
	if selective >= naive {
		t.Fatalf("selective precharge (%d) must beat naive probing (%d)", selective, naive)
	}
	// With random low bytes, only ~1/256 of entries pass the partial
	// phase: expect roughly a 4x saving (8 of 32 bits always charged).
	ratio := float64(selective) / float64(naive)
	if ratio > 0.35 {
		t.Errorf("selective precharge saving too small: ratio %.3f", ratio)
	}
}

func TestCAMDuplicateTagsReturnFirst(t *testing.T) {
	cam := NewCAM(4, 16, 8)
	cam.Write(1, 0xABCD)
	cam.Write(2, 0xABCD)
	if got := cam.Match(0xABCD); got != 1 {
		t.Errorf("Match = %d, want first matching entry 1", got)
	}
}

func TestCAMGeometryValidation(t *testing.T) {
	for _, bad := range [][3]int{{0, 32, 8}, {8, 0, 8}, {8, 32, 0}, {8, 8, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCAM%v should panic", bad)
				}
			}()
			NewCAM(bad[0], bad[1], bad[2])
		}()
	}
}

func TestOpEnergiesForTechnologies(t *testing.T) {
	e130, err := OpEnergiesFor(wire.Tech130)
	if err != nil {
		t.Fatal(err)
	}
	e100, err := OpEnergiesFor(wire.Tech100)
	if err != nil {
		t.Fatal(err)
	}
	e070, err := OpEnergiesFor(wire.Tech070)
	if err != nil {
		t.Fatal(err)
	}
	if !(e130.PerCycle > e100.PerCycle && e100.PerCycle > e070.PerCycle) {
		t.Error("op energies must shrink with technology")
	}
	if _, err := OpEnergiesFor(wire.Technology{Name: "bogus", FeatureNM: 45}); err == nil {
		t.Error("unknown technology must be rejected")
	}
}

// The calibration check: an 8-entry window encoder running SPEC-like
// register traffic must average close to Table 2's 1.39 pJ/cycle.
func TestWindowEncoderEnergyMatchesTable2(t *testing.T) {
	rng := stats.NewRNG(6)
	hot := make([]uint64, 10)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	trace := make([]uint64, 30000)
	last := uint64(0)
	for i := range trace {
		switch r := rng.Intn(10); {
		case r < 3:
			trace[i] = last // repeats
		case r < 8:
			trace[i] = hot[rng.Intn(len(hot))]
		default:
			trace[i] = rng.Uint64() & 0xFFFFFFFF
		}
		last = trace[i]
	}
	win, err := coding.NewWindow(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := coding.MustEvaluate(win, trace, 1)
	e, _ := OpEnergiesFor(wire.Tech130)
	perCycle := e.EncoderEnergyPJ(res.Ops) / float64(res.Ops.Cycles)
	if perCycle < 1.0 || perCycle > 1.8 {
		t.Errorf("8-entry window encoder energy %.3f pJ/cycle, Table 2 anchor is 1.39", perCycle)
	}
	// The decoder (no CAM probes) must be cheaper than the encoder.
	if dec := e.DecoderEnergyPJ(res.Ops); dec >= e.EncoderEnergyPJ(res.Ops) {
		t.Error("decoder estimate should be below encoder energy")
	}
	if pair := e.PairEnergyPJ(res.Ops); math.Abs(pair-e.EncoderEnergyPJ(res.Ops)-e.DecoderEnergyPJ(res.Ops)) > 1e-9 {
		t.Error("pair energy must be the sum of encoder and decoder")
	}
}

func TestCharacterizeWindowMatchesTable2(t *testing.T) {
	cases := []struct {
		tech  wire.Technology
		area  float64
		op    float64
		leak  float64
		delay float64
		cycle float64
	}{
		{wire.Tech130, 12400, 1.39, 0.00088, 3.1, 4.0},
		{wire.Tech100, 7340, 1.07, 0.00338, 2.4, 3.2},
		{wire.Tech070, 3600, 0.55, 0.00787, 2.0, 2.7},
	}
	for _, c := range cases {
		ch, err := Characterize(c.tech, WindowDesign, 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ch.AreaUM2-c.area) > 1e-9 || math.Abs(ch.OpEnergyPJ-c.op) > 1e-9 ||
			math.Abs(ch.LeakagePJ-c.leak) > 1e-9 || math.Abs(ch.DelayNS-c.delay) > 1e-9 ||
			math.Abs(ch.CycleTimeNS-c.cycle) > 1e-9 {
			t.Errorf("%s: Characterize = %+v, want Table 2 row %+v", c.tech.Name, ch, c)
		}
		if ch.VoltageV != c.tech.Vdd {
			t.Errorf("%s: voltage %v", c.tech.Name, ch.VoltageV)
		}
	}
}

func TestCharacterizeInversionMatchesTable2(t *testing.T) {
	ch, err := Characterize(wire.Tech130, InversionDesign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ch.AreaUM2 != 4700 || ch.OpEnergyPJ != 1.76 || ch.LeakagePJ != 0.00055 ||
		ch.DelayNS != 2.2 || ch.CycleTimeNS != 2.2 {
		t.Errorf("inversion characteristics = %+v", ch)
	}
	if _, err := Characterize(wire.Tech070, InversionDesign, 0); err == nil {
		t.Error("inversion coder characterization exists only at 0.13um")
	}
	if InversionCoderEnergyPJ() != 1.76 {
		t.Error("InversionCoderEnergyPJ anchor drifted")
	}
}

func TestCharacterizeScaling(t *testing.T) {
	w8, _ := Characterize(wire.Tech130, WindowDesign, 8)
	w16, _ := Characterize(wire.Tech130, WindowDesign, 16)
	if w16.AreaUM2 <= w8.AreaUM2 || w16.OpEnergyPJ <= w8.OpEnergyPJ {
		t.Error("16-entry design must cost more than 8-entry")
	}
	if w16.AreaUM2 >= 2*w8.AreaUM2 {
		t.Error("fixed overhead should make 16 entries less than twice the area")
	}
	ctx, _ := Characterize(wire.Tech130, ContextDesign, 8)
	if ctx.AreaUM2 <= w8.AreaUM2 {
		t.Error("context design must exceed window design area (§5.3.4)")
	}
	if _, err := Characterize(wire.Tech130, WindowDesign, 0); err == nil {
		t.Error("zero entries must be rejected")
	}
	if _, err := Characterize(wire.Technology{Name: "x", FeatureNM: 1}, WindowDesign, 8); err == nil {
		t.Error("unknown tech must be rejected")
	}
}

func TestLeakageOrdersOfMagnitudeBelowDynamic(t *testing.T) {
	// §5.4.3: leakage is orders of magnitude below dynamic energy even as
	// it grows with shrinking technology.
	for _, tech := range wire.Technologies() {
		ch, err := Characterize(tech, WindowDesign, 8)
		if err != nil {
			t.Fatal(err)
		}
		if ch.LeakagePJ*50 > ch.OpEnergyPJ {
			t.Errorf("%s: leakage %.5f too close to dynamic %.2f", tech.Name, ch.LeakagePJ, ch.OpEnergyPJ)
		}
	}
	// And it grows as technology shrinks.
	l130, _ := Characterize(wire.Tech130, WindowDesign, 8)
	l070, _ := Characterize(wire.Tech070, WindowDesign, 8)
	if l070.LeakagePJ <= l130.LeakagePJ {
		t.Error("leakage must grow with shrinking technology")
	}
}
