package circuit

import (
	"fmt"
	"math"

	"buspower/internal/coding"
	"buspower/internal/wire"
)

// DesignKind identifies which of the paper's three laid-out designs a
// characteristic set describes.
type DesignKind int

const (
	// WindowDesign is the 8-entry Window-based transcoder carried to
	// layout in ST Micro 0.13µm (Figure 33) and scaled to other nodes.
	WindowDesign DesignKind = iota
	// ContextDesign is the Context-based transcoder laid out in 0.18µm
	// (Figure 32); per §5.3.4 its counter and counter-match circuitry add
	// roughly a third on top of the window design.
	ContextDesign
	// InversionDesign is the standard-cell inversion coder with a
	// carry-save-adder majority voter (§5.4.1).
	InversionDesign
	// EnumerativeDesign is the binomial-coefficient rank/unrank datapath
	// of the optimal-codebook coders (optmem/vc/lowweight/dvs): a chain
	// of conditional adders, no CAM array, no shift registers. Its
	// entries parameter is the datapath size in normalized 32-bit adder
	// stages (Transcoder.Stages()), not a dictionary size.
	EnumerativeDesign
)

// String returns the design's display name.
func (k DesignKind) String() string {
	switch k {
	case WindowDesign:
		return "window"
	case ContextDesign:
		return "context"
	case EnumerativeDesign:
		return "enumerative"
	default:
		return "inversion"
	}
}

// OpEnergies decomposes the transcoder's dynamic energy into the
// per-operation costs of §5.3.2, in pJ. The values for each technology are
// calibrated so that the 8-entry window encoder's *average* per-cycle
// energy on SPEC-like traffic reproduces Table 2's "Op energy" column
// (1.39 pJ at 0.13µm, 1.07 at 0.10µm, 0.55 at 0.07µm).
type OpEnergies struct {
	// PerCycle covers the always-on costs of a cycle: input latch, clock
	// distribution, control FSM, and the transition-coding MuxXorLatch.
	PerCycle float64
	// PartialMatch is one entry's selective-precharge low-byte compare.
	PartialMatch float64
	// FullMatch is the remaining-bit compare of an entry that passed the
	// partial phase.
	FullMatch float64
	// Shift is one pointer-based shift-register insertion (one entry's
	// bits rewritten plus tail-pointer update).
	Shift float64
	// CounterIncrement is one Johnson counter count (one bit toggle per
	// stage touched).
	CounterIncrement float64
	// CounterCompare is one adjacent-entry counter XOR-equality compare.
	CounterCompare float64
	// Swap is one neighbour entry swap through the paper's two-transistor
	// cross-coupled CAM cell linkage (Figure 31).
	Swap float64
	// RawDrive is the extra output-mux work of a raw (miss) cycle.
	RawDrive float64
}

// opEnergies130 is the calibrated decomposition at 0.13µm. With the
// 8-entry window encoder's typical operation mix on the SPEC-analog
// register-bus traces — 8 partial probes, ≈0.5 full probes, ≈0.5 shifts
// and raw drives per cycle — the average encoder energy lands on Table 2's
// 1.39 pJ/cycle (the table2 experiment reports the measured value next to
// the anchor).
var opEnergies130 = OpEnergies{
	PerCycle:         0.61,
	PartialMatch:     0.048,
	FullMatch:        0.148,
	Shift:            0.26,
	CounterIncrement: 0.045,
	CounterCompare:   0.060,
	Swap:             0.22,
	RawDrive:         0.245,
}

// techEnergyScale maps a technology to the dynamic-energy scale factor
// relative to 0.13µm, taken from Table 2's op-energy column
// (1.07/1.39 and 0.55/1.39); intermediate nodes interpolate log-linearly,
// matching wire.Interpolate.
func techEnergyScale(t wire.Technology) (float64, error) {
	row, err := table2RowFor(t.FeatureNM)
	if err != nil {
		return 0, err
	}
	return row.op / windowTable2[130].op, nil
}

// OpEnergiesFor returns the per-operation energy set for a technology.
func OpEnergiesFor(t wire.Technology) (OpEnergies, error) {
	s, err := techEnergyScale(t)
	if err != nil {
		return OpEnergies{}, err
	}
	e := opEnergies130
	e.PerCycle *= s
	e.PartialMatch *= s
	e.FullMatch *= s
	e.Shift *= s
	e.CounterIncrement *= s
	e.CounterCompare *= s
	e.Swap *= s
	e.RawDrive *= s
	return e, nil
}

// EncoderEnergyPJ converts an encoder's operation counts into total
// dynamic energy (the paper's statistical methodology, Figure 34).
func (e OpEnergies) EncoderEnergyPJ(ops coding.OpStats) float64 {
	return e.PerCycle*float64(ops.Cycles) +
		e.PartialMatch*float64(ops.PartialMatches) +
		e.FullMatch*float64(ops.FullMatches) +
		e.Shift*float64(ops.Shifts) +
		e.CounterIncrement*float64(ops.CounterIncrements) +
		e.CounterCompare*float64(ops.CounterCompares) +
		e.Swap*float64(ops.Swaps+ops.TableWrites) +
		e.RawDrive*float64(ops.RawSends)
}

// DecoderEnergyPJ estimates the matching decoder's dynamic energy from the
// encoder's operation counts. The decoder shares the per-cycle
// infrastructure, shift-register updates and (for the context design)
// sorting machinery, but performs no CAM probes: received codes index
// entries directly.
func (e OpEnergies) DecoderEnergyPJ(ops coding.OpStats) float64 {
	return e.PerCycle*float64(ops.Cycles) +
		e.Shift*float64(ops.Shifts) +
		e.CounterIncrement*float64(ops.CounterIncrements) +
		e.CounterCompare*float64(ops.CounterCompares) +
		e.Swap*float64(ops.Swaps+ops.TableWrites) +
		e.RawDrive*float64(ops.RawSends)
}

// PairEnergyPJ returns encoder plus decoder dynamic energy.
func (e OpEnergies) PairEnergyPJ(ops coding.OpStats) float64 {
	return e.EncoderEnergyPJ(ops) + e.DecoderEnergyPJ(ops)
}

// Characteristics reports a design's physical figures of merit, Table 2.
type Characteristics struct {
	Tech        wire.Technology
	Kind        DesignKind
	Entries     int
	VoltageV    float64
	AreaUM2     float64
	OpEnergyPJ  float64 // nominal average per-cycle encoder energy
	LeakagePJ   float64 // leakage energy per cycle
	DelayNS     float64 // data-ready to bus-out
	CycleTimeNS float64
}

// table2 anchors: the 8-entry window design per technology, and the
// 0.13µm inversion coder, exactly as published.
type table2Row struct {
	area, op, leak, delay, cycle float64
}

var windowTable2 = map[int]table2Row{
	130: {12400, 1.39, 0.00088, 3.1, 4.0},
	100: {7340, 1.07, 0.00338, 2.4, 3.2},
	70:  {3600, 0.55, 0.00787, 2.0, 2.7},
}

var inversionTable2 = table2Row{4700, 1.76, 0.00055, 2.2, 2.2}

// table2RowFor returns the 8-entry window anchors for a feature size,
// interpolating log-linearly between published nodes (the same rule
// wire.Interpolate uses) so the scaling studies can sweep feature size.
func table2RowFor(nm int) (table2Row, error) {
	if row, ok := windowTable2[nm]; ok {
		return row, nil
	}
	anchors := []int{130, 100, 70}
	for i := 0; i+1 < len(anchors); i++ {
		hiNM, loNM := anchors[i], anchors[i+1]
		if nm < hiNM && nm > loNM {
			hi, lo := windowTable2[hiNM], windowTable2[loNM]
			f := (math.Log(float64(hiNM)) - math.Log(float64(nm))) /
				(math.Log(float64(hiNM)) - math.Log(float64(loNM)))
			lerp := func(a, b float64) float64 { return a * math.Pow(b/a, f) }
			return table2Row{
				area:  lerp(hi.area, lo.area),
				op:    lerp(hi.op, lo.op),
				leak:  lerp(hi.leak, lo.leak),
				delay: lerp(hi.delay, lo.delay),
				cycle: lerp(hi.cycle, lo.cycle),
			}, nil
		}
	}
	return table2Row{}, fmt.Errorf("circuit: feature size %dnm outside the anchored range [70, 130]", nm)
}

// entryScale models how area and energy grow with dictionary size: the
// input buffers, control and MuxXorLatch are fixed (~35% of the 8-entry
// design); the ShiftTag array grows linearly.
func entryScale(entries int) float64 {
	return 0.35 + 0.65*float64(entries)/8.0
}

// enumScale models the enumerative datapath against the same anchors:
// fixed input/output latching and control (~25% of the 8-entry window
// design — no CAM array to precharge) plus adder stages that grow
// linearly. A monolithic 34-wire rank datapath (~36 stages) lands near
// the window design's cost; the grouped low-weight codes come in well
// under it — the hardware argument of PAPERS.md #3.
func enumScale(stages int) float64 {
	return 0.25 + 0.65*float64(stages)/32.0
}

// contextOverhead reflects §5.3.4: counters and counter-match circuitry
// occupy about a third of the context design's area on top of the
// window machinery, with commensurate clocking energy.
const contextOverhead = 1.5

// Characterize returns the Table 2 characteristics of a design at a
// technology, scaling the published 8-entry window anchors for entry count
// and design kind. Feature sizes between the published nodes interpolate.
func Characterize(tech wire.Technology, kind DesignKind, entries int) (Characteristics, error) {
	row, err := table2RowFor(tech.FeatureNM)
	if err != nil {
		return Characteristics{}, err
	}
	c := Characteristics{
		Tech:        tech,
		Kind:        kind,
		Entries:     entries,
		VoltageV:    tech.Vdd,
		CycleTimeNS: row.cycle,
	}
	switch kind {
	case InversionDesign:
		if tech.FeatureNM != 130 {
			return Characteristics{}, fmt.Errorf("circuit: the inversion coder was only characterized at 0.13um")
		}
		c.AreaUM2 = inversionTable2.area
		c.OpEnergyPJ = inversionTable2.op
		c.LeakagePJ = inversionTable2.leak
		c.DelayNS = inversionTable2.delay
		c.CycleTimeNS = inversionTable2.cycle
		return c, nil
	case EnumerativeDesign:
		if entries < 1 {
			return Characteristics{}, fmt.Errorf("circuit: stages %d < 1", entries)
		}
		s := enumScale(entries)
		c.AreaUM2 = row.area * s
		c.OpEnergyPJ = row.op * s
		c.LeakagePJ = row.leak * s
		// The conditional-adder chain is a longer ripple path than the
		// window design's parallel CAM probe.
		c.DelayNS = row.delay * 1.2
		return c, nil
	case WindowDesign, ContextDesign:
		if entries < 1 {
			return Characteristics{}, fmt.Errorf("circuit: entries %d < 1", entries)
		}
		s := entryScale(entries)
		c.AreaUM2 = row.area * s
		c.OpEnergyPJ = row.op * s
		c.LeakagePJ = row.leak * s
		c.DelayNS = row.delay
		if kind == ContextDesign {
			c.AreaUM2 *= contextOverhead
			c.OpEnergyPJ *= contextOverhead
			c.LeakagePJ *= contextOverhead
			c.DelayNS *= 1.15 // extra swap/counter clocking in the critical path
		}
		return c, nil
	default:
		return Characteristics{}, fmt.Errorf("circuit: unknown design kind %d", kind)
	}
}

// InversionCoderEnergyPJ returns the inversion coder's per-cycle dynamic
// energy at 0.13µm — §5.4.3 reports 1.76 pJ on average: the carry-save
// adder majority voter charges on every cycle regardless of traffic.
func InversionCoderEnergyPJ() float64 { return inversionTable2.op }

// DVSOverheadPJ returns the per-cycle energy of the timing-error
// detection machinery a DVS-operated bus needs (Kaul et al., PAPERS.md
// #4): one Razor-style double-sampling latch per coded wire plus the
// retransmit handshake, priced at a fraction of a counter stage per wire
// and scaled with the node's dynamic-energy factor.
func DVSOverheadPJ(t wire.Technology, wires int) (float64, error) {
	if wires < 1 {
		return 0, fmt.Errorf("circuit: dvs overhead for %d wires", wires)
	}
	s, err := techEnergyScale(t)
	if err != nil {
		return 0, err
	}
	return 0.012 * float64(wires) * s, nil
}
