// Package circuit models the transcoder hardware of §5: the custom
// low-power circuits (Johnson counters, selective-precharge CAM matching,
// pointer-based shift cells, neighbour-swap cells) and the statistical
// energy methodology the paper validated against SPICE netlist simulation
// (within 6%, §5.4.2): per-operation energies extracted once from the
// layout, multiplied by operation counts gathered from the architectural
// simulation.
//
// The per-technology characteristics (area, average operation energy,
// leakage, delay, cycle time) are anchored to the paper's Table 2; the
// per-operation energy split is a calibrated decomposition consistent with
// that table's averages.
package circuit

// JohnsonCounter models the energy-efficient counter of §5.3.3: a ring of
// flip-flops through an inverted feedback tap, so exactly one bit toggles
// per count. The transcoder concatenates four 4-bit Johnson counters,
// counting to 4096 before saturating.
//
// The model tracks the actual register bits so tests can verify the
// one-transition-per-count property that makes the counter cheap.
type JohnsonCounter struct {
	stages []johnsonStage
	count  uint32
	max    uint32
	// BitTransitions accumulates the total number of flip-flop output
	// toggles — the counter's dynamic switching activity.
	BitTransitions uint64
}

type johnsonStage struct {
	bits uint8 // ring register, low `width` bits
	pos  int   // current phase within the 2*width state cycle
}

// johnsonStageWidth is the per-stage register width used by the paper's
// design (4 bits -> 8 states per stage).
const johnsonStageWidth = 4

// NewJohnsonCounter builds a counter of the given number of concatenated
// 4-bit stages. The paper's transcoder uses 4 stages (max count 4096).
func NewJohnsonCounter(stages int) *JohnsonCounter {
	if stages < 1 {
		panic("circuit: Johnson counter needs at least one stage")
	}
	max := uint32(1)
	for i := 0; i < stages; i++ {
		max *= 2 * johnsonStageWidth
	}
	return &JohnsonCounter{stages: make([]johnsonStage, stages), max: max - 1}
}

// Increment advances the counter by one, saturating at Max. It returns the
// number of register bits that toggled (0 when saturated, otherwise 1 for
// the incremented stage plus 1 per carry into the next stage).
func (j *JohnsonCounter) Increment() int {
	if j.count >= j.max {
		return 0
	}
	j.count++
	toggles := 0
	for s := range j.stages {
		st := &j.stages[s]
		// Shift the ring: new LSB is the complement of the old MSB.
		msb := (st.bits >> (johnsonStageWidth - 1)) & 1
		st.bits = ((st.bits << 1) | (msb ^ 1)) & (1<<johnsonStageWidth - 1)
		toggles++ // exactly one bit differs between consecutive ring states
		st.pos++
		if st.pos < 2*johnsonStageWidth {
			break // no carry
		}
		st.pos = 0 // carry into the next stage
	}
	j.BitTransitions += uint64(toggles)
	return toggles
}

// Value returns the current count.
func (j *JohnsonCounter) Value() uint32 { return j.count }

// Max returns the saturation value.
func (j *JohnsonCounter) Max() uint32 { return j.max }

// Saturated reports whether the counter has reached its maximum.
func (j *JohnsonCounter) Saturated() bool { return j.count >= j.max }

// Halve divides the count by two (the counter division operation). In
// hardware this reloads the rings; the model charges one toggle per stage.
func (j *JohnsonCounter) Halve() {
	j.count /= 2
	v := j.count
	for s := range j.stages {
		st := &j.stages[s]
		phase := int(v % uint32(2*johnsonStageWidth))
		v /= uint32(2 * johnsonStageWidth)
		st.pos = phase
		st.bits = johnsonPattern(phase)
		j.BitTransitions++
	}
}

// johnsonPattern returns the ring register contents at the given phase of
// the 2·width cycle: phases 0..width fill with ones from the LSB, phases
// width..2·width drain them.
func johnsonPattern(phase int) uint8 {
	if phase <= johnsonStageWidth {
		return uint8(1<<phase - 1)
	}
	drained := phase - johnsonStageWidth
	full := uint8(1<<johnsonStageWidth - 1)
	return full &^ uint8(1<<drained-1)
}

// Reset returns the counter to zero.
func (j *JohnsonCounter) Reset() {
	j.count = 0
	for s := range j.stages {
		j.stages[s] = johnsonStage{}
	}
}
