package circuit

import "math/bits"

// This file models the two shift-register organizations §5.3.3 compares.
// In a conventional shift register every insertion moves every entry's
// bits one slot over; in the paper's pointer-based design ("Pointer-based
// shift entries", Figure 30) entries stay put — only the oldest entry is
// overwritten and a one-hot tail pointer advances. The models count
// flip-flop bit transitions so the energy difference is measurable (see
// BenchmarkAblationShiftRegister).

// ShiftRegister is the common interface of both organizations.
type ShiftRegister interface {
	// Insert shifts v in, displacing the oldest value, and returns the
	// number of storage bit transitions the insertion caused.
	Insert(v uint64) int
	// Entries returns the logical contents, newest first.
	Entries() []uint64
	// BitTransitions returns the cumulative storage bit toggles.
	BitTransitions() uint64
}

// NaiveShiftRegister physically moves every entry on each insert.
type NaiveShiftRegister struct {
	slots   []uint64
	toggles uint64
}

// NewNaiveShiftRegister builds a conventional shift register of n entries.
func NewNaiveShiftRegister(n int) *NaiveShiftRegister {
	if n < 1 {
		panic("circuit: shift register needs at least one entry")
	}
	return &NaiveShiftRegister{slots: make([]uint64, n)}
}

// Insert implements ShiftRegister: slot i takes slot i-1's value, slot 0
// takes v; every slot whose contents change toggles its flip-flops.
func (s *NaiveShiftRegister) Insert(v uint64) int {
	flips := 0
	carry := v
	for i := range s.slots {
		flips += bits.OnesCount64(s.slots[i] ^ carry)
		s.slots[i], carry = carry, s.slots[i]
	}
	s.toggles += uint64(flips)
	return flips
}

// Entries implements ShiftRegister (newest first — slot order).
func (s *NaiveShiftRegister) Entries() []uint64 {
	out := make([]uint64, len(s.slots))
	copy(out, s.slots)
	return out
}

// BitTransitions implements ShiftRegister.
func (s *NaiveShiftRegister) BitTransitions() uint64 { return s.toggles }

// PointerShiftRegister keeps entries in place and advances a one-hot tail
// pointer, §5.3.3's energy-saving organization.
type PointerShiftRegister struct {
	slots   []uint64
	head    int // slot holding the newest value
	toggles uint64
}

// NewPointerShiftRegister builds a pointer-based shift register.
func NewPointerShiftRegister(n int) *PointerShiftRegister {
	if n < 1 {
		panic("circuit: shift register needs at least one entry")
	}
	return &PointerShiftRegister{slots: make([]uint64, n), head: -1}
}

// Insert implements ShiftRegister: only the oldest slot is rewritten and
// the one-hot tail pointer moves (two pointer-bit toggles).
func (s *PointerShiftRegister) Insert(v uint64) int {
	victim := (s.head + 1) % len(s.slots)
	flips := bits.OnesCount64(s.slots[victim] ^ v)
	if len(s.slots) > 1 {
		flips += 2 // one-hot pointer: old position falls, new rises
	}
	s.slots[victim] = v
	s.head = victim
	s.toggles += uint64(flips)
	return flips
}

// Entries implements ShiftRegister (newest first, walking back from the
// head).
func (s *PointerShiftRegister) Entries() []uint64 {
	n := len(s.slots)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.slots[((s.head-i)%n+n)%n]
	}
	return out
}

// BitTransitions implements ShiftRegister.
func (s *PointerShiftRegister) BitTransitions() uint64 { return s.toggles }
