package circuit

import (
	"testing"
	"testing/quick"

	"buspower/internal/stats"
)

func TestShiftRegistersAgreeOnContents(t *testing.T) {
	f := func(raw []uint32) bool {
		naive := NewNaiveShiftRegister(8)
		ptr := NewPointerShiftRegister(8)
		for _, v := range raw {
			naive.Insert(uint64(v))
			ptr.Insert(uint64(v))
		}
		a, b := naive.Entries(), ptr.Entries()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPointerShiftCheaperThanNaive(t *testing.T) {
	rng := stats.NewRNG(9)
	naive := NewNaiveShiftRegister(8)
	ptr := NewPointerShiftRegister(8)
	for i := 0; i < 2000; i++ {
		v := rng.Uint64() & 0xFFFFFFFF
		naive.Insert(v)
		ptr.Insert(v)
	}
	if ptr.BitTransitions() >= naive.BitTransitions() {
		t.Fatalf("pointer-based (%d toggles) should beat naive shifting (%d)",
			ptr.BitTransitions(), naive.BitTransitions())
	}
	// On random 32-bit data the naive register rewrites ~16 bits per slot
	// per insert; the pointer design rewrites one slot plus 2 pointer
	// bits: expect at least a 4x saving at 8 entries.
	if ratio := float64(ptr.BitTransitions()) / float64(naive.BitTransitions()); ratio > 0.25 {
		t.Errorf("saving too small: ratio %.3f", ratio)
	}
}

func TestNaiveShiftExactCount(t *testing.T) {
	s := NewNaiveShiftRegister(2)
	// Insert 0b11 into {0,0}: slot0 0->3 (2 flips), slot1 0->0 (0).
	if got := s.Insert(3); got != 2 {
		t.Errorf("first insert flipped %d bits, want 2", got)
	}
	// Insert 0b01: slot0 3->1 (1 flip), slot1 0->3 (2 flips).
	if got := s.Insert(1); got != 3 {
		t.Errorf("second insert flipped %d bits, want 3", got)
	}
	if s.BitTransitions() != 5 {
		t.Errorf("cumulative = %d, want 5", s.BitTransitions())
	}
}

func TestPointerShiftExactCount(t *testing.T) {
	s := NewPointerShiftRegister(4)
	// First insert: victim slot holds 0; 0b111 -> 3 bit flips + 2 pointer.
	if got := s.Insert(7); got != 5 {
		t.Errorf("insert flipped %d bits, want 5", got)
	}
	// Entries newest-first must start with 7.
	if e := s.Entries(); e[0] != 7 {
		t.Errorf("Entries()[0] = %d", e[0])
	}
}

func TestPointerShiftSingleEntryNoPointerCost(t *testing.T) {
	s := NewPointerShiftRegister(1)
	if got := s.Insert(1); got != 1 {
		t.Errorf("single-entry insert flipped %d bits, want 1 (no pointer)", got)
	}
}

func TestShiftRegisterValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewNaiveShiftRegister(0) },
		func() { NewPointerShiftRegister(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("zero-entry register accepted")
				}
			}()
			f()
		}()
	}
}

func TestSwapCellExchanges(t *testing.T) {
	s := NewSwapCell(0xAAAA, 0x5555)
	if err := s.Swap(); err != nil {
		t.Fatal(err)
	}
	a, b := s.Values()
	if a != 0x5555 || b != 0xAAAA {
		t.Errorf("Swap produced %x, %x", a, b)
	}
	if s.Swaps != 1 {
		t.Errorf("Swaps = %d", s.Swaps)
	}
	// A full swap costs six clock edges.
	if s.ClockEvents != 6 {
		t.Errorf("ClockEvents = %d, want 6", s.ClockEvents)
	}
	// Swapping back restores.
	if err := s.Swap(); err != nil {
		t.Fatal(err)
	}
	a, b = s.Values()
	if a != 0xAAAA || b != 0x5555 {
		t.Errorf("double swap produced %x, %x", a, b)
	}
}

func TestSwapCellPhaseDiscipline(t *testing.T) {
	s := NewSwapCell(1, 2)
	// φC with feedback enabled is a drive fight.
	if err := s.Couple(); err == nil {
		t.Error("Couple with feedback enabled must fail")
	}
	if err := s.BreakFeedback(); err != nil {
		t.Fatal(err)
	}
	if err := s.Couple(); err != nil {
		t.Fatal(err)
	}
	// Feedback restore while coupled is illegal.
	if err := s.RestoreFeedback(); err == nil {
		t.Error("RestoreFeedback while coupled must fail")
	}
	if err := s.BreakFeedback(); err == nil {
		t.Error("BreakFeedback while coupled must fail")
	}
	if err := s.Decouple(); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreFeedback(); err != nil {
		t.Fatal(err)
	}
	// Values exchanged exactly once despite the probing.
	a, b := s.Values()
	if a != 2 || b != 1 {
		t.Errorf("values = %d, %d", a, b)
	}
}

func TestSwapCellIdempotentPhases(t *testing.T) {
	s := NewSwapCell(1, 2)
	if err := s.BreakFeedback(); err != nil {
		t.Fatal(err)
	}
	ev := s.ClockEvents
	if err := s.BreakFeedback(); err != nil {
		t.Fatal(err)
	}
	if s.ClockEvents != ev {
		t.Error("repeated BreakFeedback should not burn clock events")
	}
	if err := s.Decouple(); err != nil {
		t.Fatal(err) // decouple when not coupled is a no-op
	}
}
