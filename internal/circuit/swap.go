package circuit

import "fmt"

// SwapCell models the paper's custom CAM cell pair of Figure 31: two
// cross-coupled inverter cells whose neighbouring linkage (two extra
// transistors, clock φC) lets the sorting network exchange adjacent
// frequency-table entries without a full read-modify-write.
//
// The swap protocol is a strict phase sequence:
//
//  1. break the φH/φN feedback loops of both cells (storage floats),
//  2. assert φC: each cell's inverter output writes the neighbour,
//  3. release φC and re-assert the feedback clocks.
//
// The model enforces the sequence — asserting φC while feedback is still
// enabled is the circuit bug the layout had to avoid, and the model
// reports it — and counts clock events for the energy accounting.
type SwapCell struct {
	a, b uint64 // stored values (one "cell" per table entry slice)

	feedbackOn bool
	coupled    bool

	// ClockEvents counts φH/φN/φC edges driven (the swap energy of
	// OpEnergies.Swap is calibrated per completed swap, which comprises
	// six edges: feedback off, φC on, φC off, feedback on).
	ClockEvents uint64
	// Swaps counts completed exchanges.
	Swaps uint64
}

// NewSwapCell builds a linked cell pair holding the given values.
func NewSwapCell(a, b uint64) *SwapCell {
	return &SwapCell{a: a, b: b, feedbackOn: true}
}

// Values returns the two stored values.
func (s *SwapCell) Values() (a, b uint64) { return s.a, s.b }

// BreakFeedback opens the φH/φN feedback paths; storage holds dynamically.
func (s *SwapCell) BreakFeedback() error {
	if s.coupled {
		return fmt.Errorf("circuit: cannot gate feedback while φC is asserted")
	}
	if s.feedbackOn {
		s.feedbackOn = false
		s.ClockEvents += 2 // φH and φN edges
	}
	return nil
}

// Couple asserts φC, letting each cell write its neighbour. Asserting it
// with feedback still enabled shorts the cross-coupled inverters — the
// model rejects it.
func (s *SwapCell) Couple() error {
	if s.feedbackOn {
		return fmt.Errorf("circuit: φC asserted while feedback enabled (drive fight)")
	}
	if s.coupled {
		return nil
	}
	s.coupled = true
	s.ClockEvents++
	// With the loops open and the cross connection closed, the values
	// exchange: each inverter output writes the opposite cell.
	s.a, s.b = s.b, s.a
	return nil
}

// Decouple releases φC.
func (s *SwapCell) Decouple() error {
	if !s.coupled {
		return nil
	}
	s.coupled = false
	s.ClockEvents++
	return nil
}

// RestoreFeedback re-asserts φH/φN, latching the (possibly exchanged)
// values statically.
func (s *SwapCell) RestoreFeedback() error {
	if s.coupled {
		return fmt.Errorf("circuit: cannot restore feedback while φC is asserted")
	}
	if !s.feedbackOn {
		s.feedbackOn = true
		s.ClockEvents += 2
	}
	return nil
}

// Swap runs the complete legal phase sequence.
func (s *SwapCell) Swap() error {
	if err := s.BreakFeedback(); err != nil {
		return err
	}
	if err := s.Couple(); err != nil {
		return err
	}
	if err := s.Decouple(); err != nil {
		return err
	}
	if err := s.RestoreFeedback(); err != nil {
		return err
	}
	s.Swaps++
	return nil
}
