package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// PeerHeader marks a request as replica-internal: the peer handlers
// require it, and the eval router never peer-routes a request carrying
// it, so a fetch can never loop back through the ring.
const PeerHeader = "X-Buspower-Peer"

// ChecksumHeader carries the FNV-1a 64 checksum (hex) of a peer
// response body, the same hash discipline the BUSTRC containers and the
// job journal use. The fetching side recomputes it before trusting the
// payload, so a truncated or proxied-and-mangled transfer degrades to a
// local recompute instead of a wrong answer.
const ChecksumHeader = "X-Buspower-Checksum"

// BodyChecksum computes the peer-transfer checksum of body.
func BodyChecksum(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return strconv.FormatUint(h.Sum64(), 16)
}

// ErrPeerMiss reports that the owner answered authoritatively but has
// no copy (trace fetches: the owner's disk cache lacks the key).
var ErrPeerMiss = errors.New("cluster: peer does not hold the key")

// PeerStats is a point-in-time snapshot of the fetch counters, split by
// transfer kind. Hits are completed validated transfers; misses are
// authoritative "not here" answers; timeouts are fetches that ran out
// of PeerTimeout; errors cover everything else (connection refused,
// non-2xx, checksum mismatch, oversize). Every non-hit outcome
// degrades to local recomputation at the caller.
type PeerStats struct {
	EvalHits, EvalMisses, EvalTimeouts, EvalErrors     uint64
	TraceHits, TraceMisses, TraceTimeouts, TraceErrors uint64
	Coalesced                                          uint64
}

// PeerClient fetches owned state from ring peers. Concurrent fetches
// for the same key coalesce into one HTTP round trip (single-flight),
// mirroring the in-process memos: under a thundering herd the owner
// sees one request per key per replica, not one per caller.
type PeerClient struct {
	httpc   *http.Client
	selfID  string
	timeout time.Duration
	maxBody int64

	mu       sync.Mutex
	inflight map[string]*peerCall

	evalHits, evalMisses, evalTimeouts, evalErrors     atomic.Uint64
	traceHits, traceMisses, traceTimeouts, traceErrors atomic.Uint64
	coalesced                                          atomic.Uint64
}

type peerCall struct {
	done chan struct{}
	data []byte
	err  error
}

// DefaultPeerTimeout bounds one peer fetch; anything slower than this
// is slower than recomputing a warm result locally.
const DefaultPeerTimeout = 2 * time.Second

// DefaultPeerMaxBody caps a peer transfer. Trace containers are the
// large case: three 120k-value sections ≈ 3 MiB; 32 MiB leaves head
// room for full-mode captures without letting a confused peer stream
// unbounded data.
const DefaultPeerMaxBody = 32 << 20

// NewPeerClient builds a fetch client identifying itself as selfID.
// timeout and maxBody default when <= 0.
func NewPeerClient(selfID string, timeout time.Duration, maxBody int64) *PeerClient {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	if maxBody <= 0 {
		maxBody = DefaultPeerMaxBody
	}
	return &PeerClient{
		httpc: &http.Client{
			// The per-fetch context carries the deadline; the client-level
			// timeout is a backstop against leaked body reads.
			Timeout: timeout + time.Second,
		},
		selfID:   selfID,
		timeout:  timeout,
		maxBody:  maxBody,
		inflight: map[string]*peerCall{},
	}
}

// FetchEval asks owner for the evaluation response of the canonical
// request body keyed by key. The returned bytes are the owner's
// marshalled EvalResponse, checksum-verified.
func (c *PeerClient) FetchEval(ctx context.Context, owner Node, key string, body []byte) ([]byte, error) {
	data, err := c.single("eval/"+owner.ID+"/"+key, func() ([]byte, error) {
		return c.roundTrip(ctx, http.MethodPost, owner.URL+"/v1/peer/eval", body)
	})
	c.count(err, &c.evalHits, &c.evalMisses, &c.evalTimeouts, &c.evalErrors)
	return data, err
}

// FetchTrace asks owner for the BUSTRC container stored under the
// trace-cache content address key. The container carries its own
// trailing FNV checksum, which the storing side verifies by parsing;
// the transfer-level checksum header is still enforced here so a torn
// body is rejected before it is ever written to disk.
func (c *PeerClient) FetchTrace(ctx context.Context, owner Node, key string) ([]byte, error) {
	data, err := c.single("trace/"+owner.ID+"/"+key, func() ([]byte, error) {
		return c.roundTrip(ctx, http.MethodGet, owner.URL+"/v1/peer/trace/"+key, nil)
	})
	c.count(err, &c.traceHits, &c.traceMisses, &c.traceTimeouts, &c.traceErrors)
	return data, err
}

// single coalesces concurrent fetches for the same key. Followers share
// the leader's result; the leader's context governs the round trip
// (followers arriving during the flight accepted that when they
// coalesced — exactly the trade the eval memo makes).
func (c *PeerClient) single(key string, fn func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-call.done
		return call.data, call.err
	}
	call := &peerCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.data, call.err = fn()
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.done)
	return call.data, call.err
}

// roundTrip performs one checksum-verified, size-capped transfer.
func (c *PeerClient) roundTrip(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(PeerHeader, c.selfID)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, ErrPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: peer %s answered %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > c.maxBody {
		return nil, fmt.Errorf("cluster: peer response exceeds %d bytes", c.maxBody)
	}
	if want := resp.Header.Get(ChecksumHeader); want != "" && want != BodyChecksum(data) {
		return nil, fmt.Errorf("cluster: peer response checksum mismatch")
	}
	return data, nil
}

// count classifies one fetch outcome into the right counter family.
func (c *PeerClient) count(err error, hits, misses, timeouts, errs *atomic.Uint64) {
	switch {
	case err == nil:
		hits.Add(1)
	case errors.Is(err, ErrPeerMiss):
		misses.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		timeouts.Add(1)
	default:
		errs.Add(1)
	}
}

// Stats snapshots the fetch counters (wait-free).
func (c *PeerClient) Stats() PeerStats {
	return PeerStats{
		EvalHits:      c.evalHits.Load(),
		EvalMisses:    c.evalMisses.Load(),
		EvalTimeouts:  c.evalTimeouts.Load(),
		EvalErrors:    c.evalErrors.Load(),
		TraceHits:     c.traceHits.Load(),
		TraceMisses:   c.traceMisses.Load(),
		TraceTimeouts: c.traceTimeouts.Load(),
		TraceErrors:   c.traceErrors.Load(),
		Coalesced:     c.coalesced.Load(),
	}
}
