package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPeerFetchEvalChecksum(t *testing.T) {
	body := []byte(`{"energy_removed_pct":42}`)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(PeerHeader) != "me" {
			t.Errorf("peer header = %q", r.Header.Get(PeerHeader))
		}
		w.Header().Set(ChecksumHeader, BodyChecksum(body))
		w.Write(body)
	}))
	defer srv.Close()
	c := NewPeerClient("me", time.Second, 0)
	got, err := c.FetchEval(context.Background(), Node{ID: "peer", URL: srv.URL}, "k1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Fatalf("got %q", got)
	}
	if s := c.Stats(); s.EvalHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeerFetchChecksumMismatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ChecksumHeader, "deadbeef")
		w.Write([]byte("torn payload"))
	}))
	defer srv.Close()
	c := NewPeerClient("me", time.Second, 0)
	if _, err := c.FetchEval(context.Background(), Node{ID: "p", URL: srv.URL}, "k", nil); err == nil {
		t.Fatal("mismatched checksum accepted")
	}
	if s := c.Stats(); s.EvalErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeerFetchMissAndSizeCap(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/peer/trace/absent" {
			http.NotFound(w, r)
			return
		}
		w.Write(make([]byte, 2048))
	}))
	defer srv.Close()
	c := NewPeerClient("me", time.Second, 1024)
	n := Node{ID: "p", URL: srv.URL}
	if _, err := c.FetchTrace(context.Background(), n, "absent"); !errors.Is(err, ErrPeerMiss) {
		t.Fatalf("want ErrPeerMiss, got %v", err)
	}
	if _, err := c.FetchTrace(context.Background(), n, "huge"); err == nil {
		t.Fatal("oversize body accepted")
	}
	if s := c.Stats(); s.TraceMisses != 1 || s.TraceErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeerFetchTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)
	c := NewPeerClient("me", 30*time.Millisecond, 0)
	_, err := c.FetchEval(context.Background(), Node{ID: "p", URL: srv.URL}, "k", nil)
	if err == nil {
		t.Fatal("timeout produced no error")
	}
	if s := c.Stats(); s.EvalTimeouts != 1 {
		t.Fatalf("stats = %+v (err %v)", s, err)
	}
}

func TestPeerFetchDeadPeer(t *testing.T) {
	// A peer that is simply down must fail fast as an error, the state
	// the router degrades to local recomputation on.
	c := NewPeerClient("me", 200*time.Millisecond, 0)
	_, err := c.FetchEval(context.Background(), Node{ID: "p", URL: "http://127.0.0.1:1"}, "k", nil)
	if err == nil {
		t.Fatal("dead peer produced no error")
	}
	if s := c.Stats(); s.EvalErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeerFetchSingleFlight(t *testing.T) {
	var served atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		<-release
		w.Write([]byte("shared"))
	}))
	defer srv.Close()
	c := NewPeerClient("me", time.Second, 0)
	n := Node{ID: "p", URL: srv.URL}
	const callers = 16
	var wg sync.WaitGroup
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := c.FetchEval(context.Background(), n, "same-key", nil)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = string(data)
		}(i)
	}
	// Wait until the leader is inside the handler, then release it.
	for served.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let followers coalesce
	close(release)
	wg.Wait()
	if got := served.Load(); got != 1 {
		t.Fatalf("owner served %d requests, want 1", got)
	}
	for i, r := range results {
		if r != "shared" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
	if s := c.Stats(); s.Coalesced == 0 {
		t.Fatalf("no coalesced fetches recorded: %+v", s)
	}
}
