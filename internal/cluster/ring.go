// Package cluster is the static-topology sharding layer behind
// multi-replica serving: a consistent-hash ring with virtual nodes maps
// every canonical request key (eval-request SHA-256, trace-cache
// content address) to the replica that owns it, and a peer-fetch client
// transfers the owner's memoized eval results and cached trace
// containers to replicas that miss locally — spread the expensive
// state, fetch the owned copy instead of recomputing. The topology is
// static (every replica is configured with the full member list); a
// dead peer degrades each fetch to local recomputation, never to an
// error.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Node is one ring member.
type Node struct {
	// ID is the replica's stable name in the topology (the ring hashes
	// it, so renaming a replica moves its shard slice).
	ID string
	// URL is the replica's base HTTP URL, e.g. "http://replica1:8080".
	URL string
}

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring: n nodes × vnodes virtual
// points, each key owned by the first rf distinct nodes clockwise from
// the key's hash. Immutability makes lookups lock-free; topology
// changes build a new Ring.
type Ring struct {
	nodes  []Node
	points []point
	vnodes int
	rf     int
}

// DefaultVNodes balances ownership evenness (±a few percent at 3
// replicas) against ring-build cost.
const DefaultVNodes = 128

// NewRing builds a ring over nodes with the given virtual-node count
// and replication factor. rf is clamped to the node count; vnodes and
// rf default when <= 0.
func NewRing(nodes []Node, vnodes, rf int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if rf <= 0 {
		rf = 1
	}
	if rf > len(nodes) {
		rf = len(nodes)
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: ring node with empty id")
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("cluster: duplicate ring node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	r := &Ring{nodes: append([]Node(nil), nodes...), vnodes: vnodes, rf: rf}
	r.points = make([]point, 0, len(nodes)*vnodes)
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashString(n.ID + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit hash collision between virtual nodes is
		// vanishingly rare; break it by node index so the order (and
		// therefore ownership) is still deterministic.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// hashString is FNV-1a 64 — the repo's checksum discipline, fast and
// deterministic across replicas and restarts.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// KeyHash exposes the ring's key hash (for tests and diagnostics).
func KeyHash(key string) uint64 { return hashString(key) }

// Owner returns the primary owner of key.
func (r *Ring) Owner(key string) Node { return r.Owners(key)[0] }

// Owners returns the key's replica set: the first ReplicationFactor
// distinct nodes clockwise from the key's hash, primary first.
func (r *Ring) Owners(key string) []Node {
	h := hashString(key)
	// First point with hash >= h, wrapping at the top of the ring.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]Node, 0, r.rf)
	for n := 0; n < len(r.points) && len(out) < r.rf; n++ {
		p := r.points[(i+n)%len(r.points)]
		dup := false
		for _, o := range out {
			if o.ID == r.nodes[p.node].ID {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// Owns reports whether id is in key's replica set.
func (r *Ring) Owns(id, key string) bool {
	for _, n := range r.Owners(key) {
		if n.ID == id {
			return true
		}
	}
	return false
}

// Nodes returns the ring members in configuration order.
func (r *Ring) Nodes() []Node { return append([]Node(nil), r.nodes...) }

// VNodes returns the per-node virtual point count.
func (r *Ring) VNodes() int { return r.vnodes }

// ReplicationFactor returns the effective replication factor.
func (r *Ring) ReplicationFactor() int { return r.rf }

// Ownership returns each node's owned fraction of the key space under
// primary ownership: the summed arc lengths of the hash intervals that
// resolve to the node, normalized to 1. The fractions feed the
// per-replica shard-ownership gauges on /metrics.
func (r *Ring) Ownership() map[string]float64 {
	out := make(map[string]float64, len(r.nodes))
	for _, n := range r.nodes {
		out[n.ID] = 0
	}
	if len(r.points) == 0 {
		return out
	}
	const space = float64(1 << 63) * 2 // 2^64
	prev := r.points[len(r.points)-1].hash
	for i, p := range r.points {
		// Keys hashing into (prev, p.hash] land on p's node; the first
		// interval wraps around the top of the ring.
		var arc uint64
		if i == 0 {
			arc = p.hash + (^prev + 1) // p.hash - prev mod 2^64
		} else {
			arc = p.hash - prev
		}
		out[r.nodes[p.node].ID] += float64(arc) / space
		prev = p.hash
	}
	return out
}
