package cluster

import (
	"fmt"
	"math"
	"testing"
)

func testNodes(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{ID: fmt.Sprintf("replica%d", i+1), URL: fmt.Sprintf("http://replica%d:8080", i+1)}
	}
	return out
}

func testKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		// Hex-ish strings shaped like the canonical request keys the
		// serving layer feeds the ring.
		keys[i] = fmt.Sprintf("sha256:%064x", i*2654435761)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]Node{{ID: "a"}, {ID: "a"}}, 8, 1); err == nil {
		t.Fatal("duplicate node id accepted")
	}
	if _, err := NewRing([]Node{{ID: ""}}, 8, 1); err == nil {
		t.Fatal("empty node id accepted")
	}
	// rf clamps to the node count instead of failing.
	r, err := NewRing(testNodes(2), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReplicationFactor(); got != 2 {
		t.Fatalf("rf = %d, want clamped 2", got)
	}
}

func TestRingDeterministicAcrossOrder(t *testing.T) {
	// Every replica must derive identical ownership regardless of flag
	// spelling; ParseTopology sorts, but the ring itself must also be a
	// pure function of the node set.
	nodes := testNodes(5)
	r1, _ := NewRing(nodes, 64, 2)
	rev := make([]Node, len(nodes))
	for i, n := range nodes {
		rev[len(nodes)-1-i] = n
	}
	r2, _ := NewRing(rev, 64, 2)
	for _, key := range testKeys(500) {
		a, b := r1.Owners(key), r2.Owners(key)
		if len(a) != len(b) {
			t.Fatalf("owner count differs for %s", key)
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("owners differ for %s: %v vs %v", key, a, b)
			}
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r, _ := NewRing(testNodes(4), 32, 3)
	for _, key := range testKeys(200) {
		owners := r.Owners(key)
		if len(owners) != 3 {
			t.Fatalf("got %d owners, want 3", len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o.ID] {
				t.Fatalf("duplicate owner %s for %s", o.ID, key)
			}
			seen[o.ID] = true
		}
		if !r.Owns(owners[0].ID, key) {
			t.Fatalf("Owns disagrees with Owners for %s", key)
		}
	}
}

func TestRingOwnershipSumsToOne(t *testing.T) {
	r, _ := NewRing(testNodes(3), DefaultVNodes, 1)
	own := r.Ownership()
	sum := 0.0
	for id, frac := range own {
		if frac <= 0 || frac >= 1 {
			t.Fatalf("node %s owns %v of the key space", id, frac)
		}
		sum += frac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ownership sums to %v, want 1", sum)
	}
	// With DefaultVNodes the spread should be reasonably even: no node
	// owns less than half or more than double its fair share.
	fair := 1.0 / 3
	for id, frac := range own {
		if frac < fair/2 || frac > fair*2 {
			t.Fatalf("node %s owns %.3f, outside [%.3f, %.3f]", id, frac, fair/2, fair*2)
		}
	}
}

// TestRingRebalanceProperty is the consistent-hashing contract: removing
// one replica moves only the keys that replica owned — every other key
// keeps its primary owner, so a topology change invalidates ≤ K/N of a
// warm fleet's cache instead of all of it.
func TestRingRebalanceProperty(t *testing.T) {
	const n, k = 5, 4000
	nodes := testNodes(n)
	full, err := NewRing(nodes, DefaultVNodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	removed := nodes[2].ID
	rest := make([]Node, 0, n-1)
	for _, node := range nodes {
		if node.ID != removed {
			rest = append(rest, node)
		}
	}
	smaller, err := NewRing(rest, DefaultVNodes, 1)
	if err != nil {
		t.Fatal(err)
	}

	keys := testKeys(k)
	moved, wasRemoved := 0, 0
	for _, key := range keys {
		before, after := full.Owner(key), smaller.Owner(key)
		if before.ID == removed {
			wasRemoved++
			continue
		}
		if before.ID != after.ID {
			moved++
			t.Errorf("key %s moved %s -> %s though %s was the node removed", key, before.ID, after.ID, removed)
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed node changed owner", moved)
	}
	// The removed node's share should be in the neighbourhood of K/N —
	// generous bounds, since vnode placement is hash-derived.
	if wasRemoved == 0 || wasRemoved > 2*k/n {
		t.Fatalf("removed node owned %d of %d keys, want ~%d (≤ %d)", wasRemoved, k, k/n, 2*k/n)
	}
}

// TestRingRebalanceReplicaSets extends the property to rf > 1: removing
// a node only changes replica sets that contained it.
func TestRingRebalanceReplicaSets(t *testing.T) {
	const n, k = 5, 2000
	nodes := testNodes(n)
	full, _ := NewRing(nodes, DefaultVNodes, 2)
	removed := nodes[0].ID
	smaller, _ := NewRing(nodes[1:], DefaultVNodes, 2)
	changed := 0
	for _, key := range testKeys(k) {
		before := full.Owners(key)
		had := false
		for _, o := range before {
			if o.ID == removed {
				had = true
			}
		}
		after := smaller.Owners(key)
		same := len(before) == len(after)
		if same {
			for i := range before {
				if before[i].ID != after[i].ID {
					same = false
					break
				}
			}
		}
		if !had && !same {
			t.Fatalf("replica set for %s changed without containing the removed node: %v -> %v", key, before, after)
		}
		if had {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("removed node appeared in no replica sets")
	}
}

func TestParseTopology(t *testing.T) {
	peers := []string{"r2=http://b:8080", "r1=http://a:8080/", "r3=http://c:8080"}
	topo, err := ParseTopology("r2", peers, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Self.ID != "r2" || topo.Self.URL != "http://b:8080" {
		t.Fatalf("self = %+v", topo.Self)
	}
	if got := len(topo.Ring.Nodes()); got != 3 {
		t.Fatalf("ring has %d nodes, want 3", got)
	}
	if topo.Ring.ReplicationFactor() != 2 {
		t.Fatalf("rf = %d", topo.Ring.ReplicationFactor())
	}

	if topo, err := ParseTopology("", nil, 0, 0); err != nil || topo != nil {
		t.Fatalf("empty topology: %v %v", topo, err)
	}
	for _, bad := range [][2]interface{}{
		{"r1", []string{"r1-http://a:8080"}},     // not id=url
		{"r1", []string{"r1=not a url"}},         // unparseable
		{"r9", []string{"r1=http://a:8080"}},     // self not a member
		{"", []string{"r1=http://a:8080"}},       // peers without self
		{"r1", []string{"r1=/relative/only"}},    // no host
	} {
		if _, err := ParseTopology(bad[0].(string), bad[1].([]string), 0, 0); err == nil {
			t.Fatalf("ParseTopology(%v, %v) accepted", bad[0], bad[1])
		}
	}
	if _, err := ParseTopology("r1", nil, 0, 0); err == nil {
		t.Fatal("self without peers accepted")
	}
}

func TestSplitPeerList(t *testing.T) {
	got := SplitPeerList(" r1=http://a:1 , r2=http://b:2 ,")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if SplitPeerList("  ") != nil {
		t.Fatal("blank list should be nil")
	}
}
