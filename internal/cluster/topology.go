package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Topology is one replica's view of the static cluster: who it is, and
// the ring every member agrees on. All replicas are configured with the
// same member list (order-insensitive — the ring is built over a sorted
// copy), so they derive identical ownership without any coordination.
type Topology struct {
	// Self is this replica's node (present in the ring).
	Self Node
	// Ring is the shared consistent-hash ring.
	Ring *Ring
}

// ParseTopology builds a Topology from the CLI's flat flags: self is
// this replica's id, peers the full member list as "id=url" entries
// (self included). An empty peer list yields a nil Topology — the
// single-replica mode every existing deployment runs in.
func ParseTopology(self string, peers []string, vnodes, rf int) (*Topology, error) {
	if len(peers) == 0 {
		if self != "" {
			return nil, fmt.Errorf("cluster: -self %q given without -peers", self)
		}
		return nil, nil
	}
	if self == "" {
		return nil, fmt.Errorf("cluster: -peers given without -self")
	}
	nodes := make([]Node, 0, len(peers))
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: peer %q is not id=url", p)
		}
		id, rawURL = strings.TrimSpace(id), strings.TrimSpace(rawURL)
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q has no absolute url", p)
		}
		nodes = append(nodes, Node{ID: id, URL: strings.TrimRight(rawURL, "/")})
	}
	// Sort by id so every replica builds the ring from the same sequence
	// regardless of how its flag was spelled.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	ring, err := NewRing(nodes, vnodes, rf)
	if err != nil {
		return nil, err
	}
	for _, n := range ring.Nodes() {
		if n.ID == self {
			return &Topology{Self: n, Ring: ring}, nil
		}
	}
	return nil, fmt.Errorf("cluster: -self %q is not in the peer list", self)
}

// SplitPeerList parses the comma-separated -peers flag value.
func SplitPeerList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}
