package coding

import (
	"testing"

	"buspower/internal/bus"
)

// The map indexes, byte histograms and pending bitset added to the Window
// and Context transcoders are pure accelerations: every observable —
// encoded words, decoded values, OpStats — must match the linear
// reference probe exactly. These tests force both paths via the package
// threshold variables and difference them.

// withThresholds runs f with the index thresholds overridden, restoring
// them afterwards. forceOn (threshold 1) builds every dictionary with the
// accelerated structures; forceOff (a huge threshold) keeps them all on
// the linear reference path.
func withThresholds(threshold int, f func()) {
	ow, oc := windowIndexMinEntries, contextIndexMinEntries
	windowIndexMinEntries, contextIndexMinEntries = threshold, threshold
	defer func() { windowIndexMinEntries, contextIndexMinEntries = ow, oc }()
	f()
}

// fuzzValues derives a value stream with a deliberately small alphabet
// from raw fuzz bytes, so dictionary hits, evictions, swaps and counter
// traffic all occur within a short trace.
func fuzzValues(data []byte) []uint64 {
	if len(data) > 600 {
		data = data[:600]
	}
	vals := make([]uint64, 0, len(data))
	for i, b := range data {
		v := uint64(b) | uint64(data[(i*7+3)%len(data)])<<8
		if b&3 == 0 && i > 0 {
			v = vals[i-1] // LAST-value repeats
		}
		vals = append(vals, v)
	}
	return vals
}

// accelConfigs returns the transcoder builders the differential tests
// cover: window and context (both flavours), including a table crossing
// the 64-entry pending-bitset word boundary and a short divide period.
func accelConfigs() map[string]func() (Transcoder, error) {
	return map[string]func() (Transcoder, error){
		"window-3":  func() (Transcoder, error) { return NewWindow(16, 3, 1) },
		"window-20": func() (Transcoder, error) { return NewWindow(16, 20, 1) },
		"context-value-t8-s4": func() (Transcoder, error) {
			return NewContext(ContextConfig{Width: 16, TableSize: 8, ShiftEntries: 4, DividePeriod: 64, Lambda: 1})
		},
		"context-transition-t6-s3": func() (Transcoder, error) {
			return NewContext(ContextConfig{Width: 16, TableSize: 6, ShiftEntries: 3, DividePeriod: 32, TransitionBased: true, Lambda: 1})
		},
		"context-value-t70-s8": func() (Transcoder, error) {
			return NewContext(ContextConfig{Width: 16, TableSize: 70, ShiftEntries: 8, DividePeriod: 128, Lambda: 1})
		},
	}
}

// diffPaths drives the accelerated and reference implementations of one
// transcoder in lockstep over vals, halting on any observable divergence.
// Both pairs are Reset mid-stream to cover the acceleration structures'
// reset paths.
func diffPaths(t *testing.T, name string, build func() (Transcoder, error), vals []uint64) {
	t.Helper()
	var refT, accT Transcoder
	var err error
	withThresholds(1<<30, func() { refT, err = build() })
	if err != nil {
		t.Fatalf("%s: reference build: %v", name, err)
	}
	var err2 error
	withThresholds(1, func() { accT, err2 = build() })
	if err2 != nil {
		t.Fatalf("%s: accelerated build: %v", name, err2)
	}
	refEnc, refDec := refT.NewEncoder(), refT.NewDecoder()
	accEnc, accDec := accT.NewEncoder(), accT.NewDecoder()
	mask := uint64(bus.Mask(refT.DataWidth()))
	for i, v := range vals {
		if i == len(vals)/2 {
			refEnc.Reset()
			refDec.Reset()
			accEnc.Reset()
			accDec.Reset()
		}
		v &= mask
		rw := refEnc.Encode(v)
		aw := accEnc.Encode(v)
		if rw != aw {
			t.Fatalf("%s: encoded words diverged at cycle %d: reference %#x, accelerated %#x", name, i, rw, aw)
		}
		if got := refDec.Decode(rw); got != v {
			t.Fatalf("%s: reference round-trip broke at cycle %d: %#x != %#x", name, i, got, v)
		}
		if got := accDec.Decode(aw); got != v {
			t.Fatalf("%s: accelerated round-trip broke at cycle %d: %#x != %#x", name, i, got, v)
		}
	}
	refOps := refEnc.(OpReporter).Ops()
	accOps := accEnc.(OpReporter).Ops()
	if refOps != accOps {
		t.Fatalf("%s: OpStats diverged:\nreference   %+v\naccelerated %+v", name, refOps, accOps)
	}
	if ce, ok := accEnc.(*contextEncoder); ok {
		if err := ce.st.checkInvariants(); err != nil {
			t.Fatalf("%s: accelerated encoder state: %v", name, err)
		}
	}
	if cd, ok := accDec.(*contextDecoder); ok {
		if err := cd.st.checkInvariants(); err != nil {
			t.Fatalf("%s: accelerated decoder state: %v", name, err)
		}
	}
}

// TestAccelMatchesReference is the deterministic differential check on a
// mixed trace; FuzzRoundTrip explores the same property under fuzzing.
func TestAccelMatchesReference(t *testing.T) {
	data := make([]byte, 600)
	for i := range data {
		data[i] = byte(i*131 + i*i*17)
	}
	vals := fuzzValues(data)
	for name, build := range accelConfigs() {
		diffPaths(t, name, build, vals)
	}
}

// FuzzRoundTrip asserts, for fuzz-chosen traces, that the accelerated and
// reference probe paths produce identical coded words, exact round-trips
// and identical OpStats for every scheme.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("buspower"))
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144})
	seed := make([]byte, 300)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		vals := fuzzValues(data)
		for name, build := range accelConfigs() {
			diffPaths(t, name, build, vals)
		}
	})
}

// TestEncodeAllocs is the allocation regression guard for the encoder hot
// paths: a warmed Window or Context encoder allocates nothing per cycle.
func TestEncodeAllocs(t *testing.T) {
	trace := fuzzValues(func() []byte {
		data := make([]byte, 600)
		for i := range data {
			data[i] = byte(i * 53)
		}
		return data
	}())
	for name, build := range map[string]func() (Transcoder, error){
		"window-128": func() (Transcoder, error) { return NewWindow(32, 128, 1) },
		"context-128": func() (Transcoder, error) {
			return NewContext(ContextConfig{Width: 32, TableSize: 128, ShiftEntries: 8, DividePeriod: 4096, Lambda: 1})
		},
	} {
		tc, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		enc := tc.NewEncoder()
		for _, v := range trace {
			enc.Encode(v)
		}
		i := 0
		if allocs := testing.AllocsPerRun(1000, func() {
			enc.Encode(trace[i%len(trace)])
			i++
		}); allocs != 0 {
			t.Errorf("%s: Encode allocates %v times per op, want 0", name, allocs)
		}
	}
}

// TestEvaluatorReuseMatchesEvaluate pins that the scratch-reusing
// Evaluator path and a shared raw meter produce results identical to the
// one-shot Evaluate path.
func TestEvaluatorReuseMatchesEvaluate(t *testing.T) {
	vals := fuzzValues(func() []byte {
		data := make([]byte, 400)
		for i := range data {
			data[i] = byte(i*29 + 7)
		}
		return data
	}())
	raw := MeasureRawValues(16, vals)
	var ev Evaluator
	for name, build := range accelConfigs() {
		tc, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := Evaluate(tc, vals, 1.5)
		if err != nil {
			t.Fatalf("%s: Evaluate: %v", name, err)
		}
		ev.Use(tc)
		for run := 0; run < 2; run++ { // second run exercises Reset + scratch reuse
			got, err := ev.Evaluate(vals, 1.5, raw)
			if err != nil {
				t.Fatalf("%s: Evaluator run %d: %v", name, run, err)
			}
			if got.CodedCost() != want.CodedCost() || got.RawCost() != want.RawCost() || got.Ops != want.Ops {
				t.Fatalf("%s run %d: Evaluator result diverged: coded %v/%v raw %v/%v ops %+v/%+v",
					name, run, got.CodedCost(), want.CodedCost(), got.RawCost(), want.RawCost(), got.Ops, want.Ops)
			}
		}
	}
}
