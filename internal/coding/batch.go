package coding

import (
	"fmt"
	"sort"

	"buspower/internal/bus"
)

// Batch evaluation: families of Window transcoders that differ only in
// register size are encoded in ONE pass over the trace, and whole
// workload suites stream through a shared scratch via EvaluateBatch.
//
// The naive "probe the largest dictionary once and read every smaller
// size's answer off the hit depth" — the stride-tape trick — is UNSOUND
// for insert-on-miss FIFO dictionaries: they lack the inclusion
// property. Counterexample (any width): feed a b c d a b e a b c d e to
// 3- and 4-entry registers; by the final e the 3-entry ring holds
// {c d e}… and has evicted and re-admitted values the 4-entry ring
// still holds, so a value can hit the SMALLER register while missing
// the larger one. No per-cycle record of the big register's state can
// reconstruct the small register's contents.
//
// Instead the family pass is exact by construction: every size keeps
// its own ring (precisely the windowState semantics), and only the
// genuinely size-independent work is shared — the per-cycle hash probe
// (one lookup against a merged value→slots index instead of one per
// size), the LAST-value test, the masked input stream, and the
// selective-precharge accounting, which drops from a per-size byte
// histogram read per cycle to an O(1)-per-insert residency credit (see
// cum / births below). Outputs, meters and OpStats are bit-identical to
// the scalar path (batch_test.go differentials + fuzz).
//
// Context families are NOT batched: the sorted frequency table and SR
// front-end evolve differently at every table size from the first
// divergence on, and unlike the window ring there is no shared probe to
// hoist (the table order itself is the state). Those cells take the
// scalar path, as does everything under VerifyFull (a live decoder must
// see every coded word, which is exactly one full scalar run per cell).

// famResult is one family member's share of a batch pass.
type famResult struct {
	coded *bus.Meter
	ops   OpStats
}

// windowFamily is the reusable scratch for one (width, lambda) family
// of Window transcoders, sorted ascending by register size.
//
// FullMatches accounting: the scalar encoder adds byteCount[b(v)] every
// cycle — the number of resident entries sharing the probe byte. Summed
// over the run, each residency interval (t_ins, t_evict] of an entry u
// contributes the number of cycles in that interval whose input shares
// u's byte. With cum[x] = cycles seen so far with low byte x
// (incremented at the top of each cycle), that is
// cum@evict[b(u)] − cum@insert[b(u)]: record births[slot] = cum[b(u)]
// at insert, credit the difference at evict, and flush still-resident
// entries (including the initial zero fill, whose births are 0) against
// the final cum. This removes all per-cycle per-size histogram reads.
type windowFamily struct {
	width  int
	lambda float64
	ts     []*WindowTranscoder
	m      int

	codes [][]bus.Word // per member: codebook codes, index 1+slot

	// Per-size rings, exact replicas of windowState. rowAt shadows each
	// ring with the arena row of the resident value, so evictions release
	// their row without re-probing the shared index.
	rings  [][]uint64
	births [][]uint64
	rowAt  [][]int32
	heads  []int
	fresh  []int

	// Shared probe index: resident value → row in the slot arena.
	// slots[row*m+k] is the value's physical slot in ring k, −1 absent.
	// Live rows never exceed Σ sizes + 1 (one transient row for the
	// incoming value before evictions release theirs).
	idx      *ctxIndex
	slots    []int16
	rowCount []int16
	freeRows []int32
	rowCap   int

	cum [256]uint64

	chs       []channel
	streams   []bus.MeterStream
	outs      []bus.Word
	fm        []uint64
	codeSends []uint64
	rawSends  []uint64
}

// famSizes returns the ascending distinct register sizes of ts, or nil
// if ts has duplicate sizes (cannot happen for ConfigKey-deduped grid
// groups, but the constructor refuses rather than assumes).
func famSizes(ts []*WindowTranscoder) []int {
	sizes := make([]int, len(ts))
	for i, t := range ts {
		sizes[i] = t.entries
	}
	sort.Ints(sizes)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] == sizes[i-1] {
			return nil
		}
	}
	return sizes
}

func newWindowFamily(ts []*WindowTranscoder) *windowFamily {
	sorted := make([]*WindowTranscoder, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].entries < sorted[j].entries })
	m := len(sorted)
	f := &windowFamily{
		width:     sorted[0].width,
		lambda:    sorted[0].lambda,
		ts:        sorted,
		m:         m,
		codes:     make([][]bus.Word, m),
		rings:     make([][]uint64, m),
		births:    make([][]uint64, m),
		rowAt:     make([][]int32, m),
		heads:     make([]int, m),
		fresh:     make([]int, m),
		chs:       make([]channel, m),
		streams:   make([]bus.MeterStream, m),
		outs:      make([]bus.Word, m),
		fm:        make([]uint64, m),
		codeSends: make([]uint64, m),
		rawSends:  make([]uint64, m),
	}
	total := 0
	for k, t := range sorted {
		n := t.entries
		total += n
		f.rings[k] = make([]uint64, n)
		f.births[k] = make([]uint64, n)
		f.rowAt[k] = make([]int32, n)
		f.chs[k] = newChannel(t.width, t.lambda)
		codes := make([]bus.Word, 1+n)
		for i := range codes {
			codes[i] = t.cb.Code(i)
		}
		f.codes[k] = codes
	}
	rows := total + m
	f.idx = newCtxIndex(rows)
	f.slots = make([]int16, rows*m)
	f.rowCount = make([]int16, rows)
	f.reset()
	return f
}

func (f *windowFamily) reset() {
	for k := range f.rings {
		ring := f.rings[k]
		for s := range ring {
			ring[s] = 0
			f.births[k][s] = 0
		}
		f.heads[k] = 0
		f.fresh[k] = len(ring)
		f.chs[k].reset()
		f.fm[k] = 0
		f.codeSends[k] = 0
		f.rawSends[k] = 0
	}
	f.cum = [256]uint64{}
	f.idx.clear()
	for i := range f.slots {
		f.slots[i] = -1
	}
	for i := range f.rowCount {
		f.rowCount[i] = 0
	}
	f.freeRows = f.freeRows[:0]
	f.rowCap = 0
}

func (f *windowFamily) addRow(v uint64) int {
	var row int32
	if ln := len(f.freeRows); ln > 0 {
		row = f.freeRows[ln-1]
		f.freeRows = f.freeRows[:ln-1]
	} else {
		row = int32(f.rowCap)
		f.rowCap++
	}
	f.idx.put(ctxKey{cur: v}, int(row))
	return int(row)
}

// removeResident clears v's slot in ring k; the row (and its index key)
// is released once no ring holds v. The caller reads row from the rowAt
// arena, where every non-fresh ring entry recorded it at insert.
func (f *windowFamily) removeResident(v uint64, row int32, k int) {
	f.slots[int(row)*f.m+k] = -1
	if f.rowCount[row]--; f.rowCount[row] == 0 {
		f.idx.del(ctxKey{cur: v})
		f.freeRows = append(f.freeRows, row)
	}
}

// run streams one trace through every family member at once. Results
// are aligned with f.ts (ascending register size). verify must not be
// VerifyFull (the grid router never sends it here).
func (f *windowFamily) run(trace []uint64, verify VerifyPolicy) ([]famResult, error) {
	f.reset()
	m := f.m
	res := make([]famResult, m)
	for k := 0; k < m; k++ {
		res[k].coded = bus.NewMeterLite(f.width + 2)
		res[k].coded.StreamInto(&f.streams[k])
		f.streams[k].Record(0)
	}
	mask := uint64(bus.Mask(f.width))
	n := len(trace)
	head := 0
	var decs []Decoder
	if verify.mode == verifySampled {
		head = min(VerifyWindow, n)
		decs = make([]Decoder, m)
		for k := range decs {
			decs[k] = f.ts[k].NewDecoder()
		}
	}
	var last uint64
	var lastHits uint64
	for i, v := range trace {
		v &= mask
		f.cum[v&0xFF]++
		if v == last {
			lastHits++
			// sendCode(0) for every member: no state change, no activity.
			if i < head {
				for k := 0; k < m; k++ {
					f.outs[k] = f.chs[k].state
				}
			}
		} else {
			row := f.idx.get(ctxKey{cur: v})
			for k := 0; k < m; k++ {
				slot := -1
				if v == 0 && f.fresh[k] > 0 {
					slot = f.heads[k]
				} else if row >= 0 {
					slot = int(f.slots[row*m+k])
				}
				var out bus.Word
				if slot >= 0 {
					f.codeSends[k]++
					out = f.chs[k].sendCode(f.codes[k][1+slot])
				} else {
					f.rawSends[k]++
					h := f.heads[k]
					ring := f.rings[k]
					evicted := ring[h]
					f.fm[k] += f.cum[evicted&0xFF] - f.births[k][h]
					if f.fresh[k] > 0 {
						f.fresh[k]--
					} else {
						f.removeResident(evicted, f.rowAt[k][h], k)
					}
					ring[h] = v
					f.births[k][h] = f.cum[v&0xFF]
					if row < 0 {
						row = f.addRow(v)
					}
					f.slots[row*m+k] = int16(h)
					f.rowAt[k][h] = int32(row)
					f.rowCount[row]++
					if h++; h == len(ring) {
						h = 0
					}
					f.heads[k] = h
					out, _ = f.chs[k].sendRaw(v)
				}
				if i < head {
					f.outs[k] = out
				}
			}
		}
		if i < head {
			for k := 0; k < m; k++ {
				if got := decs[k].Decode(f.outs[k]); got != v {
					return nil, fmt.Errorf("coding: %s decoder diverged at cycle %d: sent %#x, decoded %#x", f.ts[k].Name(), i, v, got)
				}
			}
		}
		last = v
	}
	un := uint64(n)
	for k := 0; k < m; k++ {
		ch := &f.chs[k]
		f.streams[k].AddBlock(un, ch.accT, ch.accC, ch.state)
		f.streams[k].Flush()
	}
	if verify.mode == verifySampled {
		for k := 0; k < m; k++ {
			if err := replaySampledFresh(f.ts[k], trace, verify); err != nil {
				return nil, err
			}
		}
	}
	for k := 0; k < m; k++ {
		full := f.fm[k]
		for s, u := range f.rings[k] {
			full += f.cum[u&0xFF] - f.births[k][s]
		}
		res[k].ops = OpStats{
			Cycles:         un,
			LastHits:       lastHits,
			CodeSends:      f.codeSends[k],
			RawSends:       f.rawSends[k],
			Shifts:         f.rawSends[k],
			PartialMatches: un * uint64(len(f.rings[k])),
			FullMatches:    full,
		}
	}
	return res, nil
}

// gridScratch carries the state EvaluateBatch pins across traces: the
// scalar Evaluator's encoder scratch and the window-family arenas,
// keyed by family signature so repeated grids rebuild nothing.
type gridScratch struct {
	ev   Evaluator
	fams map[string]*windowFamily
}

// family returns scratch for the given members, reusing a previous
// trace's arenas when the signature matches. Transcoders with equal
// configurations are interchangeable (codebooks are deterministic), so
// only the current call's ts are retained for naming and verification.
func (sc *gridScratch) family(sig string, ts []*WindowTranscoder) *windowFamily {
	if f := sc.fams[sig]; f != nil {
		sorted := make([]*WindowTranscoder, len(ts))
		copy(sorted, ts)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].entries < sorted[j].entries })
		f.ts = sorted
		return f
	}
	f := newWindowFamily(ts)
	if sc.fams == nil {
		sc.fams = make(map[string]*windowFamily, 2)
	}
	sc.fams[sig] = f
	return f
}

// BatchTrace is one trace of an EvaluateBatch suite, with its optional
// pre-measured raw meter (at the cells' data width) and sliced-plane
// provider (as GridOptions.Sliced).
type BatchTrace struct {
	Values []uint64
	Raw    *bus.Meter
	Sliced func(width int) *bus.SlicedTrace
}

// EvaluateBatch evaluates the same cell grid against every trace,
// pinning one set of transcoder scratch state — encoder dictionaries,
// family arenas, meter streams — and streaming all traces through it,
// so per-trace setup is amortized across the suite. Each call is one
// worker's unit: callers that shard (the experiment runner's parFor,
// the serve pool) put disjoint suites on different workers; sharing a
// batch between goroutines is not supported.
//
// Results are trace-major: out[i][j] is cell j evaluated on traces[i],
// bit-identical to EvaluateGrid(cells, traces[i].Values, …).
func EvaluateBatch(cells []GridCell, traces []BatchTrace, verify VerifyPolicy) ([][]Result, error) {
	var sc gridScratch
	out := make([][]Result, len(traces))
	for i := range traces {
		res, err := sc.evaluate(cells, traces[i].Values, traces[i].Raw, verify, GridOptions{Sliced: traces[i].Sliced})
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}
