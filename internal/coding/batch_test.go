package coding

import (
	"fmt"
	"testing"

	"buspower/internal/bus"
)

// windowFamilyCells builds one window family (shared width and assumed
// Λ, varying register size), one cell per size.
func windowFamilyCells(t testing.TB, width int, sizes []int, lambda float64) []GridCell {
	t.Helper()
	cells := make([]GridCell, 0, len(sizes))
	for _, n := range sizes {
		w, err := NewWindow(width, n, lambda)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, GridCell{T: w, Lambda: lambda})
	}
	return cells
}

// TestWindowNonInclusion documents why the family pass keeps exact
// per-size rings instead of deriving small registers from the largest
// one's probe record: FIFO insert-on-miss dictionaries lack the
// inclusion property. After a b c d a b e a b c d, the value e HITS the
// 3-entry register while MISSING the 4-entry one — so no per-cycle
// record of the superset register can reconstruct a subset's answers.
func TestWindowNonInclusion(t *testing.T) {
	const width = 8
	seq := []uint64{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4}
	enc3 := mustWindowEncoder(t, width, 3)
	enc4 := mustWindowEncoder(t, width, 4)
	for _, v := range seq {
		enc3.Encode(v)
		enc4.Encode(v)
	}
	b3, b4 := enc3.ops, enc4.ops
	enc3.Encode(5)
	enc4.Encode(5)
	if enc3.ops.CodeSends != b3.CodeSends+1 {
		t.Fatalf("3-entry register should hit on the final value (ops %+v → %+v)", b3, enc3.ops)
	}
	if enc4.ops.RawSends != b4.RawSends+1 {
		t.Fatalf("4-entry register should miss on the final value (ops %+v → %+v)", b4, enc4.ops)
	}
}

func mustWindowEncoder(t testing.TB, width, entries int) *windowEncoder {
	t.Helper()
	w, err := NewWindow(width, entries, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w.NewEncoder().(*windowEncoder)
}

// TestWindowFamilyMatchesScalar is the batch-engine differential: every
// family member's meter and OpStats must be bit-identical to a scalar
// Evaluate of that member alone, across widths, register-size sets,
// integral and fractional assumed Λ, verify policies, and traces that
// hit the fresh-zero, all-miss and all-hit regimes.
func TestWindowFamilyMatchesScalar(t *testing.T) {
	traces := map[string][]uint64{
		"mixed": gridTestTrace(16, 3000, 7),
		"short": gridTestTrace(16, 97, 3), // shorter than the verify head window
		"zeros": make([]uint64, 500),      // fresh-zero LAST hits throughout
		"stride": func() []uint64 {
			v := make([]uint64, 600)
			for i := range v {
				v[i] = uint64(i * 3)
			}
			return v
		}(),
		"reuse": func() []uint64 {
			v := make([]uint64, 800)
			for i := range v {
				v[i] = uint64(i % 7 * 1000)
			}
			return v
		}(),
	}
	families := []struct {
		width  int
		sizes  []int
		lambda float64
	}{
		{16, []int{2, 3}, 1},
		{16, []int{2, 4, 8, 12, 16, 24, 32, 48, 64}, 1},
		{16, []int{4, 8, 32}, 3},
		{8, []int{3, 5, 9}, 0},
		{16, []int{8, 16}, 2.5}, // fractional Λ: float raw-cost path
		{32, []int{2, 8, 64, 128}, 1},
	}
	for tname, trace := range traces {
		for _, fam := range families {
			for _, verify := range []VerifyPolicy{VerifySampled(64), VerifyOff} {
				label := fmt.Sprintf("%s/w%d%v/l%g/%s", tname, fam.width, fam.sizes, fam.lambda, verify)
				cells := windowFamilyCells(t, fam.width, fam.sizes, fam.lambda)
				got, err := EvaluateGrid(cells, trace, nil, verify)
				if err != nil {
					t.Fatal(err)
				}
				for i, c := range cells {
					var ev Evaluator
					ev.Verify = verify
					ev.Use(c.T)
					want, err := ev.Evaluate(trace, c.Lambda, nil)
					if err != nil {
						t.Fatal(err)
					}
					compareGridResult(t, label+"/"+c.T.Name(), want, got[i])
				}
			}
		}
	}
}

// TestWindowFamilyFullVerifyFallsBack pins the scalar-fallback trigger:
// under VerifyFull the family pass must step aside (a live decoder must
// observe every coded word) and results still match scalar evaluation.
func TestWindowFamilyFullVerifyFallsBack(t *testing.T) {
	trace := gridTestTrace(16, 1500, 21)
	cells := windowFamilyCells(t, 16, []int{2, 8, 32}, 1)
	got, err := EvaluateGrid(cells, trace, nil, VerifyFull)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		var ev Evaluator
		ev.Verify = VerifyFull
		ev.Use(c.T)
		want, err := ev.Evaluate(trace, c.Lambda, nil)
		if err != nil {
			t.Fatal(err)
		}
		compareGridResult(t, c.T.Name(), want, got[i])
	}
}

// TestWindowFamilyInMixedGrid runs the family inside a grid that also
// carries stride, stateless, inversion and context cells, so the router
// proves it only intercepts family members.
func TestWindowFamilyInMixedGrid(t *testing.T) {
	const width = 16
	trace := gridTestTrace(width, 2000, 13)
	cells := gridTestCells(t, width)
	cells = append(cells, windowFamilyCells(t, width, []int{4, 16, 64}, 1)...)
	for _, verify := range []VerifyPolicy{VerifySampled(64), VerifyOff} {
		got, err := EvaluateGrid(cells, trace, nil, verify)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cells {
			var ev Evaluator
			ev.Verify = verify
			ev.Use(c.T)
			want, err := ev.Evaluate(trace, c.Lambda, nil)
			if err != nil {
				t.Fatal(err)
			}
			compareGridResult(t, c.T.Name(), want, got[i])
		}
	}
}

// TestEvaluateBatchMatchesGrid: the multi-trace fan-out must be
// trace-major and bit-identical to independent EvaluateGrid calls, with
// shared scratch never leaking state between traces.
func TestEvaluateBatchMatchesGrid(t *testing.T) {
	const width = 16
	cells := gridTestCells(t, width)
	cells = append(cells, windowFamilyCells(t, width, []int{4, 8, 32}, 1)...)
	traces := []BatchTrace{
		{Values: gridTestTrace(width, 2000, 1)},
		{Values: gridTestTrace(width, 1500, 2)},
		{Values: make([]uint64, 300)},
		{Values: gridTestTrace(width, 2000, 1)}, // repeat of trace 0: same answers
	}
	traces[1].Raw = MeasureRawValues(width, traces[1].Values)
	verify := VerifySampled(64)
	got, err := EvaluateBatch(cells, traces, verify)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(traces) {
		t.Fatalf("got %d trace results for %d traces", len(got), len(traces))
	}
	for ti, tr := range traces {
		want, err := EvaluateGrid(cells, tr.Values, tr.Raw, verify)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cells {
			compareGridResult(t, fmt.Sprintf("trace%d/%s", ti, c.T.Name()), want[i], got[ti][i])
		}
	}
	if got[1][0].Raw != traces[1].Raw {
		t.Error("pre-measured raw meter was not adopted")
	}
}

// TestGridSlicedProvider: a caller-supplied transposition is used as-is
// (no rebuild), and a provider returning nil falls back to building one.
func TestGridSlicedProvider(t *testing.T) {
	const width = 12
	trace := gridTestTrace(width, 700, 5)
	g, err := NewGray(width)
	if err != nil {
		t.Fatal(err)
	}
	cells := []GridCell{{T: NewRaw(width), Lambda: 1}, {T: g, Lambda: 1}}
	want, err := EvaluateGrid(cells, trace, nil, VerifyOff)
	if err != nil {
		t.Fatal(err)
	}
	pre := bus.NewSlicedTrace(width, trace)
	calls := 0
	got, err := EvaluateGridOpts(cells, trace, nil, VerifyOff, GridOptions{
		Sliced: func(w int) *bus.SlicedTrace {
			calls++
			if w != width {
				t.Fatalf("provider asked for width %d, want %d", w, width)
			}
			return pre
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("provider called %d times, want 1 (raw and gray share the transposition)", calls)
	}
	for i, c := range cells {
		compareGridResult(t, c.T.Name(), want[i], got[i])
	}
	got, err = EvaluateGridOpts(cells, trace, nil, VerifyOff, GridOptions{
		Sliced: func(int) *bus.SlicedTrace { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		compareGridResult(t, "nil-provider/"+c.T.Name(), want[i], got[i])
	}
}

// FuzzWindowFamilyMatchesScalar fuzzes (trace, family-spec) pairs
// through the batch pass and pins every member to scalar Evaluate.
func FuzzWindowFamilyMatchesScalar(f *testing.F) {
	f.Add(uint16(0), []byte{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5})
	f.Add(uint16(0xFFFF), []byte{0, 0, 0, 7, 7, 9})
	f.Add(uint16(0x1234), []byte{250, 250, 1, 250, 2, 250, 3, 250})
	f.Fuzz(func(t *testing.T, spec uint16, data []byte) {
		if len(data) > 1024 {
			data = data[:1024]
		}
		width := 4 + int(spec&7)                       // 4..11
		lambda := []float64{0, 1, 2, 1.5}[(spec>>3)&3] // incl. fractional
		allSizes := []int{2, 3, 4, 6, 8, 12, 16, 24}
		var sizes []int
		for i, n := range allSizes {
			if spec>>(5+uint(i))&1 == 1 {
				sizes = append(sizes, n)
			}
		}
		if len(sizes) < 2 {
			sizes = []int{2, 8}
		}
		trace := make([]uint64, len(data))
		for i, b := range data {
			trace[i] = uint64(b) * 0x0101
		}
		verify := VerifySampled(16)
		if spec&0x8000 != 0 {
			verify = VerifyOff
		}
		// Keep only sizes whose codebook exists at this width; narrow
		// widths cannot host the larger registers.
		var cells []GridCell
		for _, n := range sizes {
			w, err := NewWindow(width, n, lambda)
			if err != nil {
				continue
			}
			cells = append(cells, GridCell{T: w, Lambda: lambda})
		}
		if len(cells) < 2 {
			t.Skip("family too small at this width")
		}
		got, err := EvaluateGrid(cells, trace, nil, verify)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cells {
			var ev Evaluator
			ev.Verify = verify
			ev.Use(c.T)
			want, err := ev.Evaluate(trace, c.Lambda, nil)
			if err != nil {
				t.Fatal(err)
			}
			compareGridResult(t, c.T.Name(), want, got[i])
		}
	})
}
