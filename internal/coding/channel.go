package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// The prediction-based transcoders (window, context, stride) share one
// physical bus protocol, the W_B+2 wire arrangement of the paper's
// Figure 2: W data wires plus two control wires. The control wires are
// transition-coded so that holding them steady costs nothing:
//
//	control transition 00 — "code" cycle: the data-wire transition vector
//	                        is a codeword from the shared codebook
//	                        (all-zero = LAST-value prediction).
//	control transition 01 — "raw" cycle: the data wires carry the value
//	                        itself (absolute).
//	control transition 10 — "raw inverted" cycle: the data wires carry the
//	                        bitwise complement of the value.
//
// On raw cycles the encoder picks plain or inverted form, whichever moves
// the bus more cheaply under its assumed Λ (inversion coding folded into
// the miss path, §5.2).

type txMode int

const (
	modeCode txMode = iota
	modeRaw
	modeRawInverted
)

// channel is the encoder-side bus driver. The data and pair masks are
// hoisted into the struct at construction: sendRaw ranks two candidate
// bus states every raw cycle, and recomputing masks per candidate
// dominated the encode profile.
type channel struct {
	width    int     // data wires
	lambda   float64 // assumed Λ for the raw-vs-inverted choice
	state    bus.Word
	dataMask bus.Word // Mask(width)
	pairMask bus.Word // Mask(busWidth-1): adjacent pairs incl. control wires
}

func newChannel(width int, lambda float64) channel {
	checkWidth(width)
	return channel{
		width:    width,
		lambda:   lambda,
		dataMask: bus.Mask(width),
		pairMask: bus.Mask(width + 1),
	}
}

func (c *channel) busWidth() int { return c.width + 2 }

func (c *channel) ctrlRaw() bus.Word { return bus.Word(1) << uint(c.width) }
func (c *channel) ctrlInv() bus.Word { return bus.Word(1) << uint(c.width+1) }

// sendCode applies the codeword as a transition vector to the data wires.
func (c *channel) sendCode(code bus.Word) bus.Word {
	c.state ^= code & c.dataMask
	return c.state
}

// sendRaw drives the value (or its complement) onto the data wires and
// toggles the corresponding control wire. It reports whether the inverted
// form was chosen.
func (c *channel) sendRaw(v uint64) (bus.Word, bool) {
	keep := c.state &^ c.dataMask
	candRaw := (keep | bus.Word(v)&c.dataMask) ^ c.ctrlRaw()
	candInv := (keep | ^bus.Word(v)&c.dataMask) ^ c.ctrlInv()
	costRaw := bus.CostMasked(c.state, candRaw, c.pairMask, c.lambda)
	costInv := bus.CostMasked(c.state, candInv, c.pairMask, c.lambda)
	if costInv < costRaw {
		c.state = candInv
		return c.state, true
	}
	c.state = candRaw
	return c.state, false
}

func (c *channel) reset() { c.state = 0 }

// decodeChannel is the decoder-side bus observer.
type decodeChannel struct {
	width int
	state bus.Word
}

func newDecodeChannel(width int) decodeChannel {
	checkWidth(width)
	return decodeChannel{width: width}
}

// observe classifies one received bus state. For modeCode the payload is
// the data-wire transition vector; for raw modes it is the recovered value.
func (c *decodeChannel) observe(w bus.Word) (txMode, bus.Word) {
	t := c.state ^ w
	c.state = w
	dataMask := bus.Mask(c.width)
	rawToggled := t&(bus.Word(1)<<uint(c.width)) != 0
	invToggled := t&(bus.Word(1)<<uint(c.width+1)) != 0
	switch {
	case !rawToggled && !invToggled:
		return modeCode, t & dataMask
	case rawToggled && !invToggled:
		return modeRaw, w & dataMask
	case invToggled && !rawToggled:
		return modeRawInverted, ^w & dataMask
	default:
		panic(fmt.Sprintf("coding: both control wires toggled in one cycle (transition %#x); encoder/decoder desync", t))
	}
}

func (c *decodeChannel) reset() { c.state = 0 }
