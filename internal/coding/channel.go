package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// The prediction-based transcoders (window, context, stride) share one
// physical bus protocol, the W_B+2 wire arrangement of the paper's
// Figure 2: W data wires plus two control wires. The control wires are
// transition-coded so that holding them steady costs nothing:
//
//	control transition 00 — "code" cycle: the data-wire transition vector
//	                        is a codeword from the shared codebook
//	                        (all-zero = LAST-value prediction).
//	control transition 01 — "raw" cycle: the data wires carry the value
//	                        itself (absolute).
//	control transition 10 — "raw inverted" cycle: the data wires carry the
//	                        bitwise complement of the value.
//
// On raw cycles the encoder picks plain or inverted form, whichever moves
// the bus more cheaply under its assumed Λ (inversion coding folded into
// the miss path, §5.2).

type txMode int

const (
	modeCode txMode = iota
	modeRaw
	modeRawInverted
)

// channel is the encoder-side bus driver. The data and pair masks are
// hoisted into the struct at construction: sendRaw ranks two candidate
// bus states every raw cycle, and recomputing masks per candidate
// dominated the encode profile. When the assumed Λ is integral (as in
// every experiment except Figure 15's fractional λN points) the
// raw-vs-inverted choice runs on bus.CostMaskedInt — the exact-ordering
// equivalence is documented there.
type channel struct {
	width       int     // data wires
	lambda      float64 // assumed Λ for the raw-vs-inverted choice
	state       bus.Word
	dataMask    bus.Word // Mask(width)
	pairMask    bus.Word // Mask(busWidth-1): adjacent pairs incl. control wires
	lambdaInt   uint64   // integral Λ when lambdaIsInt
	lambdaIsInt bool

	// accT/accC accumulate the Σ transition and coupling counts of every
	// send since the last beginBlock, with exactly the arithmetic
	// MeterStream.drain applies to consecutive bus states (sendRaw's cost
	// evaluation computes both for the chosen candidate anyway). Bulk
	// encode paths zero them with beginBlock, skip per-cycle stream
	// records, and fold the run into their meter with one
	// MeterStream.AddBlock; single-step paths that still record each
	// word into a stream simply leave the accumulators stale.
	accT, accC uint64
}

// beginBlock starts a self-accounted run: the counts accumulated by
// subsequent sends belong to the caller's block.
func (c *channel) beginBlock() { c.accT, c.accC = 0, 0 }

// intLambda reports whether lambda is usable by bus.CostMaskedInt:
// a non-negative integer small enough that every cost stays exactly
// representable (see CostMaskedInt's bound).
func intLambda(lambda float64) (uint64, bool) {
	if lambda >= 0 && lambda < 1<<40 && lambda == float64(uint64(lambda)) {
		return uint64(lambda), true
	}
	return 0, false
}

func newChannel(width int, lambda float64) channel {
	checkWidth(width)
	li, ok := intLambda(lambda)
	return channel{
		width:       width,
		lambda:      lambda,
		dataMask:    bus.Mask(width),
		pairMask:    bus.Mask(width + 1),
		lambdaInt:   li,
		lambdaIsInt: ok,
	}
}

func (c *channel) busWidth() int { return c.width + 2 }

func (c *channel) ctrlRaw() bus.Word { return bus.Word(1) << uint(c.width) }
func (c *channel) ctrlInv() bus.Word { return bus.Word(1) << uint(c.width+1) }

// sendCode applies the codeword as a transition vector to the data wires.
func (c *channel) sendCode(code bus.Word) bus.Word {
	t := code & c.dataMask
	if t != 0 {
		old := c.state
		rising := t &^ old
		falling := t & old
		single := (t ^ (t >> 1)) & c.pairMask
		opposite := ((rising & (falling >> 1)) | (falling & (rising >> 1))) & c.pairMask
		c.accT += uint64(bus.Weight(t))
		c.accC += uint64(bus.Weight(single)) + 2*uint64(bus.Weight(opposite))
	}
	c.state ^= t
	return c.state
}

// sendRaw drives the value (or its complement) onto the data wires and
// toggles the corresponding control wire. It reports whether the inverted
// form was chosen.
func (c *channel) sendRaw(v uint64) (bus.Word, bool) {
	if c.lambdaIsInt {
		return c.sendRawInt(bus.Word(v) & c.dataMask)
	}
	keep := c.state &^ c.dataMask
	candRaw := (keep | bus.Word(v)&c.dataMask) ^ c.ctrlRaw()
	candInv := (keep | ^bus.Word(v)&c.dataMask) ^ c.ctrlInv()
	costRaw := bus.CostMasked(c.state, candRaw, c.pairMask, c.lambda)
	costInv := bus.CostMasked(c.state, candInv, c.pairMask, c.lambda)
	chosen, inverted := candRaw, false
	if costInv < costRaw {
		chosen, inverted = candInv, true
	}
	old := c.state
	t := old ^ chosen
	rising := chosen &^ old
	falling := old &^ chosen
	single := (t ^ (t >> 1)) & c.pairMask
	opposite := ((rising & (falling >> 1)) | (falling & (rising >> 1))) & c.pairMask
	c.accT += uint64(bus.Weight(t))
	c.accC += uint64(bus.Weight(single)) + 2*uint64(bus.Weight(opposite))
	c.state = chosen
	return chosen, inverted
}

// sendRawInt is sendRaw's integral-Λ fast path: one fused eq. (3)
// evaluation ranks both candidates instead of two independent
// bus.CostMaskedInt calls. The candidates' transition vectors are
// complements on the data wires, so their shared subexpressions are
// computed once: with p the current data state and d = p^v,
//
//	raw:      transitions d|R, rising v&^p,      falling p&^v,  plus R
//	inverted: transitions d^D|I, rising D&^(v|p), falling p&v,  plus I
//
// and the self-transition weights are pd+1 and width-pd+1 for
// pd = weight(d). TestChannelIntCostMatchesFloat pins every decision to
// the float path's.
func (c *channel) sendRawInt(v bus.Word) (bus.Word, bool) {
	s := c.state
	d := c.dataMask
	ctlR := c.ctrlRaw()
	ctlI := c.ctrlInv()
	p := s & d
	t := p ^ v
	pd := uint64(bus.Weight(t))
	rUp := (v &^ p) | (ctlR &^ s)
	rDn := (p &^ v) | (ctlR & s)
	iUp := (d &^ (v | p)) | (ctlI &^ s)
	iDn := (p & v) | (ctlI & s)
	pm := c.pairMask
	cplR := couplingEvents((t|ctlR), rUp, rDn, pm)
	cplI := couplingEvents((t^d)|ctlI, iUp, iDn, pm)
	costRaw := pd + 1 + c.lambdaInt*cplR
	costInv := uint64(c.width) - pd + 1 + c.lambdaInt*cplI
	keep := s &^ d
	if costInv < costRaw {
		c.accT += uint64(c.width) - pd + 1
		c.accC += cplI
		c.state = (keep | (v ^ d)) ^ ctlI
		return c.state, true
	}
	c.accT += pd + 1
	c.accC += cplR
	c.state = (keep | v) ^ ctlR
	return c.state, false
}

// couplingEvents counts eq. (3) coupling events for one candidate from
// its transition vector and rising/falling wire sets: single-toggle
// pairs cost 1, opposite-toggle pairs 2.
func couplingEvents(t, up, dn, pm bus.Word) uint64 {
	single := (t ^ t>>1) & pm
	opposite := ((up & (dn >> 1)) | (dn & (up >> 1))) & pm
	return uint64(bus.Weight(single)) + 2*uint64(bus.Weight(opposite))
}

func (c *channel) reset() { c.state, c.accT, c.accC = 0, 0, 0 }

// decodeChannel is the decoder-side bus observer.
type decodeChannel struct {
	width int
	state bus.Word
}

func newDecodeChannel(width int) decodeChannel {
	checkWidth(width)
	return decodeChannel{width: width}
}

// observe classifies one received bus state. For modeCode the payload is
// the data-wire transition vector; for raw modes it is the recovered value.
func (c *decodeChannel) observe(w bus.Word) (txMode, bus.Word) {
	t := c.state ^ w
	c.state = w
	dataMask := bus.Mask(c.width)
	rawToggled := t&(bus.Word(1)<<uint(c.width)) != 0
	invToggled := t&(bus.Word(1)<<uint(c.width+1)) != 0
	switch {
	case !rawToggled && !invToggled:
		return modeCode, t & dataMask
	case rawToggled && !invToggled:
		return modeRaw, w & dataMask
	case invToggled && !rawToggled:
		return modeRawInverted, ^w & dataMask
	default:
		panic(fmt.Sprintf("coding: both control wires toggled in one cycle (transition %#x); encoder/decoder desync", t))
	}
}

func (c *decodeChannel) reset() { c.state = 0 }
