package coding

import (
	"fmt"
	"sort"

	"buspower/internal/bus"
)

// Codebook assigns transition-vector codewords to prediction indices in
// order of increasing energy cost, implementing the assignment policy of
// the paper's Figure 2: the highest-confidence prediction gets the all-zero
// vector (no transitions), the next W predictions get the Hamming-weight-1
// vectors, and further indices get weight-2 (and, if needed, weight-3)
// vectors — each weight class ordered by expected cross-coupling cost so
// that, for Λ > 0, cheaper vectors are handed out first.
type Codebook struct {
	width int
	codes []bus.Word
	index map[bus.Word]int
}

// NewCodebook enumerates the n cheapest transition-vector codewords for a
// data bus of the given width, ranking by weight first and expected
// self-coupling (weighted by lambda) second. It returns an error if n
// exceeds the number of codewords of weight ≤ 3 (more would make for a
// poor transcoder anyway: heavy codes save no energy).
func NewCodebook(width, n int, lambda float64) (*Codebook, error) {
	checkWidth(width)
	if n < 1 {
		return nil, fmt.Errorf("coding: codebook size %d < 1", n)
	}
	max := 1 + width + choose2(width) + choose3(width)
	if n > max {
		return nil, fmt.Errorf("coding: codebook size %d exceeds %d codewords of weight ≤ 3 for width %d", n, max, width)
	}

	type cand struct {
		w    bus.Word
		cost float64
	}
	var cands []cand
	add := func(w bus.Word) {
		weight := float64(bus.Weight(w))
		coupling := float64(bus.ExpectedSelfCoupling(w, width)) / 2
		cands = append(cands, cand{w, weight + lambda*coupling})
	}
	// Weight 1.
	for i := 0; i < width; i++ {
		add(bus.Word(1) << uint(i))
	}
	// Weight 2 (only if needed).
	if n > 1+width {
		for i := 0; i < width; i++ {
			for j := i + 1; j < width; j++ {
				add(bus.Word(1)<<uint(i) | bus.Word(1)<<uint(j))
			}
		}
	}
	// Weight 3 (only if needed).
	if n > 1+width+choose2(width) {
		for i := 0; i < width; i++ {
			for j := i + 1; j < width; j++ {
				for k := j + 1; k < width; k++ {
					add(bus.Word(1)<<uint(i) | bus.Word(1)<<uint(j) | bus.Word(1)<<uint(k))
				}
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		return cands[a].w < cands[b].w
	})

	cb := &Codebook{
		width: width,
		codes: make([]bus.Word, n),
		index: make(map[bus.Word]int, n),
	}
	cb.codes[0] = 0 // index 0: the zero vector, reserved for LAST-value.
	cb.index[0] = 0
	for i := 1; i < n; i++ {
		cb.codes[i] = cands[i-1].w
		cb.index[cands[i-1].w] = i
	}
	return cb, nil
}

// mustCodebook is for construction sites where the size is statically
// known to be valid.
func mustCodebook(width, n int, lambda float64) *Codebook {
	cb, err := NewCodebook(width, n, lambda)
	if err != nil {
		panic(err)
	}
	return cb
}

// Size returns the number of codewords.
func (c *Codebook) Size() int { return len(c.codes) }

// Width returns the data-bus width the codebook was built for.
func (c *Codebook) Width() int { return c.width }

// Code returns the transition vector for prediction index i.
func (c *Codebook) Code(i int) bus.Word { return c.codes[i] }

// Index returns the prediction index of a received transition vector and
// whether the vector is a codeword at all.
func (c *Codebook) Index(w bus.Word) (int, bool) {
	i, ok := c.index[w]
	return i, ok
}

func choose2(n int) int { return n * (n - 1) / 2 }
func choose3(n int) int { return n * (n - 1) * (n - 2) / 6 }
