// Package coding implements the paper's bus transcoding schemes: circuits
// at either end of a long bus that re-code traffic to minimize wire
// transitions and cross-coupling events.
//
// An Encoder consumes the stream of data values that would have been sent
// on the bus and produces the absolute wire state of the (possibly wider)
// coded bus each cycle; a Decoder observes only that wire state and
// reconstructs the original values. Encoder and decoder run synchronously
// and deterministically, so arbitrarily complicated shared state stays
// consistent — the encoder FSM keys its transitions off the input stream,
// the decoder FSM off the (decoded) output stream, exactly as in Figure 1
// of the paper.
//
// Implemented schemes (paper §4.3):
//
//   - Raw: the identity baseline (un-encoded bus).
//   - Spatial: one-hot transition coding on a 2^W-wire bus.
//   - Inversion: generalized inversion coding with a configurable pattern
//     set and a cost function parameterized by the assumed Λ (λ0, λ1, λN
//     of Figure 15); classic Bus-Invert is the 2-pattern special case.
//   - Stride: a bank of stride predictors with confidence-ordered codes.
//   - Window: a shift-register dictionary of recent unique values.
//   - Context: a frequency table + window front-end, in value-based and
//     transition-based flavours, kept sorted by the paper's pending-bit
//     neighbour-swap algorithm with periodic counter division.
//
// All stateful schemes fold in LAST-value prediction: the all-zero
// codeword (which expends no energy under transition coding) means "same
// value as the previous cycle".
package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// Encoder turns input data values into absolute coded-bus wire states.
type Encoder interface {
	// Encode accepts the next data value and returns the wire state the
	// coded bus settles to this cycle.
	Encode(value uint64) bus.Word
	// BusWidth returns the total number of wires of the coded bus,
	// including control wires.
	BusWidth() int
	// Reset returns the encoder to its initial state.
	Reset()
}

// Decoder reconstructs data values from observed coded-bus wire states.
type Decoder interface {
	// Decode accepts the bus wire state for one cycle and returns the data
	// value the encoder was given.
	Decode(w bus.Word) uint64
	// Reset returns the decoder to its initial state.
	Reset()
}

// streamEncoder is implemented by encoders that can run their per-cycle
// loop in bulk, recording each coded word straight into a MeterStream.
// Evaluate uses it for the unverified stretches of a trace, eliminating
// the per-cycle interface dispatch there; encodeStream must mutate the
// encoder exactly as the equivalent sequence of Encode calls would
// (differential tests compare the two paths cycle-for-cycle).
type streamEncoder interface {
	encodeStream(vals []uint64, st *bus.MeterStream)
}

// OpReporter is implemented by encoders that track the hardware operations
// (match probes, shifts, counter activity, ...) they would perform, for
// the circuit-level energy model of §5.
type OpReporter interface {
	Ops() OpStats
}

// Transcoder constructs matched encoder/decoder pairs.
type Transcoder interface {
	// Name identifies the scheme, e.g. "window-8".
	Name() string
	// DataWidth returns the width in bits of the data values transported.
	DataWidth() int
	// NewEncoder returns a fresh encoder in its initial state.
	NewEncoder() Encoder
	// NewDecoder returns a fresh decoder in its initial state.
	NewDecoder() Decoder
}

// OpStats counts the energy-consuming hardware operations of §5.3.2
// performed by an encoder over a run. The circuit package converts these
// to pJ using per-technology operation energies.
type OpStats struct {
	// Cycles is the number of values encoded.
	Cycles uint64
	// PartialMatches counts selective-precharge probes that compared only
	// the low-order bits of an entry before mismatching.
	PartialMatches uint64
	// FullMatches counts probes that went on to compare the full entry.
	FullMatches uint64
	// Shifts counts shift-register insertions (pointer-based: one entry
	// rewritten per shift).
	Shifts uint64
	// CounterIncrements counts Johnson-counter increments.
	CounterIncrements uint64
	// CounterCompares counts adjacent-entry counter equality comparisons.
	CounterCompares uint64
	// Swaps counts neighbour entry swaps in the sorted frequency table.
	Swaps uint64
	// TableWrites counts frequency-table entry replacements.
	TableWrites uint64
	// CodeSends counts cycles resolved by a dictionary/predictor code.
	CodeSends uint64
	// RawSends counts cycles that fell back to raw (or inverted raw) data.
	RawSends uint64
	// LastHits counts cycles resolved by LAST-value prediction (code 0).
	LastHits uint64
}

// Add accumulates other into s.
func (s *OpStats) Add(other OpStats) {
	s.Cycles += other.Cycles
	s.PartialMatches += other.PartialMatches
	s.FullMatches += other.FullMatches
	s.Shifts += other.Shifts
	s.CounterIncrements += other.CounterIncrements
	s.CounterCompares += other.CounterCompares
	s.Swaps += other.Swaps
	s.TableWrites += other.TableWrites
	s.CodeSends += other.CodeSends
	s.RawSends += other.RawSends
	s.LastHits += other.LastHits
}

// Result summarizes the effect of transcoding a trace.
type Result struct {
	// Scheme is the transcoder name.
	Scheme string
	// DataWidth and CodedWidth are the raw and coded bus widths in wires.
	DataWidth, CodedWidth int
	// Raw and Coded hold the activity meters of the un-encoded and coded
	// buses respectively.
	Raw, Coded *bus.Meter
	// Lambda is the coupling ratio the meters were evaluated with.
	Lambda float64
	// Ops holds the encoder's hardware operation counts, if reported.
	Ops OpStats
}

// RawCost returns the Λ-weighted activity of the un-encoded bus.
func (r Result) RawCost() float64 { return r.Raw.Cost(r.Lambda) }

// CodedCost returns the Λ-weighted activity of the coded bus.
func (r Result) CodedCost() float64 { return r.Coded.Cost(r.Lambda) }

// EnergyRemoved returns the fraction of Λ-weighted bus activity the
// transcoder eliminated (the paper's "normalized energy removed", in
// [ -inf, 1 ]; negative values mean the coding added activity). It
// returns 0 when the raw trace had no activity.
func (r Result) EnergyRemoved() float64 {
	raw := r.RawCost()
	if raw == 0 {
		return 0
	}
	return 1 - r.CodedCost()/raw
}

// EnergyRemaining returns CodedCost/RawCost (the paper's "normalized
// energy percentage remaining" of Figure 15), or 1 when the raw trace had
// no activity.
func (r Result) EnergyRemaining() float64 {
	raw := r.RawCost()
	if raw == 0 {
		return 1
	}
	return r.CodedCost() / raw
}

// MeasureRawValues meters the un-encoded bus carrying the given data
// values: power-up in the all-zero state, then one beat per value (masked
// to the bus width). This is exactly the Raw meter Evaluate computes. The
// raw measurement is Λ-independent (Λ enters only in Cost), so sweeps can
// measure each (trace, width) once and share the meter across every
// scheme and Λ via EvaluateShared.
func MeasureRawValues(width int, trace []uint64) *bus.Meter {
	m := bus.NewMeterLite(width)
	m.Record(0)
	m.RecordValues(trace)
	return m
}

// Evaluate runs the transcoder over the trace, verifies that the decoder
// reconstructs every value exactly, and returns activity meters for the
// raw and coded buses computed with coupling ratio lambda.
//
// It returns an error (never a silent wrong answer) if the decoder output
// diverges from the encoder input at any cycle.
func Evaluate(t Transcoder, trace []uint64, lambda float64) (Result, error) {
	return EvaluateShared(t, trace, lambda, nil)
}

// EvaluateShared is Evaluate with an optional pre-measured raw-bus meter
// (as from MeasureRawValues at t.DataWidth()), so sweeps that evaluate
// many schemes over one trace measure the raw bus once instead of once
// per scheme. Passing nil measures it here.
func EvaluateShared(t Transcoder, trace []uint64, lambda float64, raw *bus.Meter) (Result, error) {
	var ev Evaluator
	ev.Use(t)
	return ev.Evaluate(trace, lambda, raw)
}

// MustEvaluateShared is EvaluateShared but panics on error; for use in
// experiments where divergence is a programming error.
func MustEvaluateShared(t Transcoder, trace []uint64, lambda float64, raw *bus.Meter) Result {
	res, err := EvaluateShared(t, trace, lambda, raw)
	if err != nil {
		panic(err)
	}
	return res
}

// Evaluator runs transcoder evaluations while reusing encoder/decoder
// state (via Reset), its coded-bus meter and its verification scratch
// across calls, so a sweep's inner loop allocates nothing per evaluation
// beyond what a freshly built transcoder itself requires.
//
// Verify selects the decoder round-trip policy for Evaluate; the zero
// value is VerifyFull (see VerifyPolicy).
type Evaluator struct {
	// Verify is the decoder round-trip policy applied by Evaluate.
	Verify VerifyPolicy

	t       Transcoder
	key     string // ConfigKey(t)
	enc     Encoder
	dec     Decoder
	width   int
	mask    uint64
	scratch []bus.Word      // coded-trace buffer, used only by EvaluateBuffered
	coded   *bus.Meter      // reused coded-bus meter; see Evaluate's ownership note
	stream  bus.MeterStream // reused chunked recorder over coded (large value; kept
	// here so passing its address to a streamEncoder never forces a heap copy)
	sample []uint64 // sampled-verification value collection
	venc   Encoder  // fresh-pair replay codec for sampled verification,
	vdec   Decoder  // built lazily on the first sampled Evaluate
}

// Use selects the transcoder for subsequent Evaluate calls. A fresh
// encoder/decoder pair is constructed only when t's configuration
// (ConfigKey) differs from the one already in use — semantically
// identical transcoders rebuilt by a sweep's inner loop reuse the
// existing scratch instead of reallocating.
func (ev *Evaluator) Use(t Transcoder) {
	if ev.enc != nil && ev.t == t {
		return
	}
	key := ConfigKey(t)
	if ev.enc != nil && key == ev.key {
		ev.t = t // equal keys encode identically; adopt the new instance
		return
	}
	ev.t = t
	ev.key = key
	ev.enc = t.NewEncoder()
	ev.dec = t.NewDecoder()
	ev.venc, ev.vdec = nil, nil
	ev.coded = nil
	ev.width = t.DataWidth()
	ev.mask = uint64(bus.Mask(ev.width))
}

// codedMeter returns the evaluator's reused Σ-only coded-bus meter, reset
// and sized to the current encoder's bus width.
func (ev *Evaluator) codedMeter() *bus.Meter {
	w := ev.enc.BusWidth()
	if ev.coded == nil || ev.coded.Width() != w {
		ev.coded = bus.NewMeterLite(w)
	} else {
		ev.coded.Reset()
	}
	return ev.coded
}

func (ev *Evaluator) checkRaw(trace []uint64, raw *bus.Meter) (*bus.Meter, error) {
	if raw == nil {
		return MeasureRawValues(ev.width, trace), nil
	}
	if raw.Width() != ev.width {
		return nil, fmt.Errorf("coding: shared raw meter width %d != %s data width %d", raw.Width(), ev.t.Name(), ev.width)
	}
	return raw, nil
}

func (ev *Evaluator) result(raw, coded *bus.Meter, lambda float64) Result {
	res := Result{
		Scheme:     ev.t.Name(),
		DataWidth:  ev.width,
		CodedWidth: ev.enc.BusWidth(),
		Raw:        raw,
		Coded:      coded,
		Lambda:     lambda,
	}
	if or, ok := ev.enc.(OpReporter); ok {
		res.Ops = or.Ops()
	}
	return res
}

func (ev *Evaluator) divergence(i int, sent, got uint64) error {
	return fmt.Errorf("coding: %s decoder diverged at cycle %d: sent %#x, decoded %#x", ev.t.Name(), i, sent, got)
}

// Evaluate runs the selected transcoder over the trace from its initial
// state (the encoder/decoder are Reset, not reallocated), metering each
// coded word as the encoder produces it — the coded trace is never
// buffered. The decoder round-trip self-check follows ev.Verify; every
// policy yields a bit-identical Result (see VerifyPolicy, and
// EvaluateBuffered for the retained two-pass reference).
//
// raw, when non-nil, is a pre-measured raw-bus meter for this trace at
// the transcoder's data width; nil measures it here.
//
// Ownership: the returned Result's Coded meter belongs to the Evaluator
// and is overwritten by the next Evaluate call. Callers that retain
// Results past that point must detach it with Result.Coded.Clone() (or
// use EvaluateShared, whose throwaway Evaluator never reuses it).
func (ev *Evaluator) Evaluate(trace []uint64, lambda float64, raw *bus.Meter) (Result, error) {
	if ev.t == nil {
		return Result{}, fmt.Errorf("coding: Evaluator has no transcoder (call Use first)")
	}
	ev.enc.Reset()
	raw, err := ev.checkRaw(trace, raw)
	if err != nil {
		return Result{}, err
	}
	coded := ev.codedMeter()
	// The coded bus powers up in the all-zero state (the encoder's initial
	// channel state), so the first word sent is charged like any other.
	st := &ev.stream
	coded.StreamInto(st)
	st.Record(0)
	switch ev.Verify.mode {
	case verifyFull:
		ev.dec.Reset()
		for i, v := range trace {
			v &= ev.mask
			w := ev.enc.Encode(v)
			if got := ev.dec.Decode(w); got != v {
				return Result{}, ev.divergence(i, v, got)
			}
			st.Record(w)
		}
	case verifySampled:
		ev.dec.Reset()
		n := len(trace)
		every := ev.Verify.every
		ev.sample = ev.sample[:0]
		// The loop is split at the window boundaries so the long middle
		// stretch carries no per-cycle verification branches (and no i%every
		// division — the next sample index is tracked by a counter).
		head := min(VerifyWindow, n)
		tail := max(n-VerifyWindow, head)
		for i := 0; i < head; i++ {
			v := trace[i] & ev.mask
			w := ev.enc.Encode(v)
			if got := ev.dec.Decode(w); got != v {
				return Result{}, ev.divergence(i, v, got)
			}
			st.Record(w)
		}
		next := (head + every - 1) / every * every
		if se, ok := ev.enc.(streamEncoder); ok {
			// Bulk-encode the unsampled runs between consecutive sample
			// indices; the sampled cycle itself goes through Encode so the
			// value lands in ev.sample.
			for i := head; i < tail; {
				stop := tail
				if next < tail {
					stop = next
				}
				se.encodeStream(trace[i:stop], st)
				i = stop
				if i < tail {
					v := trace[i] & ev.mask
					st.Record(ev.enc.Encode(v))
					ev.sample = append(ev.sample, v)
					next += every
					i++
				}
			}
		} else {
			for i := head; i < tail; i++ {
				v := trace[i] & ev.mask
				w := ev.enc.Encode(v)
				if i == next {
					ev.sample = append(ev.sample, v)
					next += every
				}
				st.Record(w)
			}
		}
		for i := tail; i < n; i++ {
			v := trace[i] & ev.mask
			w := ev.enc.Encode(v)
			ev.sample = append(ev.sample, v)
			st.Record(w)
		}
		if err := ev.replaySample(); err != nil {
			return Result{}, err
		}
	case verifyOff:
		if se, ok := ev.enc.(streamEncoder); ok {
			se.encodeStream(trace, st)
		} else {
			for _, v := range trace {
				w := ev.enc.Encode(v & ev.mask)
				st.Record(w)
			}
		}
	}
	st.Flush()
	evaluatedCycles.Add(uint64(len(trace)))
	return ev.result(raw, coded, lambda), nil
}

// replaySample round-trips the collected sample values through a fresh
// encoder/decoder pair (see VerifyPolicy: any value sequence must
// round-trip from reset, so a mismatch here is a real codec bug).
func (ev *Evaluator) replaySample() error {
	if len(ev.sample) == 0 {
		return nil
	}
	if ev.venc == nil {
		ev.venc = ev.t.NewEncoder()
		ev.vdec = ev.t.NewDecoder()
	} else {
		ev.venc.Reset()
		ev.vdec.Reset()
	}
	for j, v := range ev.sample {
		w := ev.venc.Encode(v)
		if got := ev.vdec.Decode(w); got != v {
			return fmt.Errorf("coding: %s sampled-verification replay diverged at sample %d: sent %#x, decoded %#x", ev.t.Name(), j, v, got)
		}
	}
	return nil
}

// EvaluateBuffered is the two-pass reference implementation of Evaluate:
// it buffers the whole coded trace, verifies the decoder on every cycle
// regardless of ev.Verify, and meters the buffer afterwards. It is
// retained as the differential-testing and benchmarking baseline for the
// fused streaming path; the two must produce bit-identical Results.
// Unlike Evaluate it allocates a fresh coded meter per call, so its
// Results are caller-owned.
func (ev *Evaluator) EvaluateBuffered(trace []uint64, lambda float64, raw *bus.Meter) (Result, error) {
	if ev.t == nil {
		return Result{}, fmt.Errorf("coding: Evaluator has no transcoder (call Use first)")
	}
	ev.enc.Reset()
	ev.dec.Reset()
	raw, err := ev.checkRaw(trace, raw)
	if err != nil {
		return Result{}, err
	}
	buf := ev.scratch[:0]
	if cap(buf) < len(trace) {
		buf = make([]bus.Word, 0, len(trace))
	}
	for i, v := range trace {
		v &= ev.mask
		w := ev.enc.Encode(v)
		if got := ev.dec.Decode(w); got != v {
			return Result{}, ev.divergence(i, v, got)
		}
		buf = append(buf, w)
	}
	ev.scratch = buf
	coded := bus.NewMeterLite(ev.enc.BusWidth())
	coded.Record(0)
	coded.RecordTrace(buf)
	evaluatedCycles.Add(uint64(len(trace)))
	return ev.result(raw, coded, lambda), nil
}

// MustEvaluate is Evaluate but panics on decoder divergence; for use in
// experiments where divergence is a programming error.
func MustEvaluate(t Transcoder, trace []uint64, lambda float64) Result {
	res, err := Evaluate(t, trace, lambda)
	if err != nil {
		panic(err)
	}
	return res
}

func checkWidth(width int) {
	if width < 1 || width > 62 {
		panic(fmt.Sprintf("coding: data width %d outside [1, 62] (need 2 control wires within a 64-bit bus word)", width))
	}
}
