package coding

import (
	"testing"
	"testing/quick"

	"buspower/internal/bus"
	"buspower/internal/stats"
)

// allTranscoders returns one representative instance of every scheme at
// the given data width, for table-driven round-trip testing.
func allTranscoders(t *testing.T, width int) []Transcoder {
	t.Helper()
	var ts []Transcoder
	ts = append(ts, NewRaw(width))
	if inv, err := NewBusInvert(width, 0); err == nil {
		ts = append(ts, inv)
	} else {
		t.Fatal(err)
	}
	pats, err := DefaultInversionPatterns(width, 4)
	if err != nil {
		t.Fatal(err)
	}
	inv4, err := NewInversion(width, pats, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts = append(ts, inv4)
	st, err := NewStride(width, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts = append(ts, st)
	win, err := NewWindow(width, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts = append(ts, win)
	ctxV, err := NewContext(ContextConfig{Width: width, TableSize: 12, ShiftEntries: 4, DividePeriod: 64, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts = append(ts, ctxV)
	ctxT, err := NewContext(ContextConfig{Width: width, TableSize: 12, ShiftEntries: 4, DividePeriod: 64, TransitionBased: true, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts = append(ts, ctxT)
	return ts
}

// traceKinds generates the value-stream shapes the coders must survive.
func traceKinds(width int, n int) map[string][]uint64 {
	mask := uint64(bus.Mask(width))
	rng := stats.NewRNG(17)
	random := make([]uint64, n)
	for i := range random {
		random[i] = rng.Uint64() & mask
	}
	repeated := make([]uint64, n)
	v := uint64(0xDEADBEEF) & mask
	for i := range repeated {
		if i%7 == 0 {
			v = rng.Uint64() & mask
		}
		repeated[i] = v
	}
	strided := make([]uint64, n)
	for i := range strided {
		strided[i] = (uint64(i) * 4) & mask
	}
	hotset := make([]uint64, n)
	hot := []uint64{1 & mask, 0x42 & mask, 0x1000 & mask, 0xFFFF & mask, 7, 9, 100, 200}
	for i := range hotset {
		if rng.Intn(10) == 0 {
			hotset[i] = rng.Uint64() & mask
		} else {
			hotset[i] = hot[rng.Intn(len(hot))]
		}
	}
	zeros := make([]uint64, n)
	interleaved := make([]uint64, n)
	for i := range interleaved {
		switch i % 3 {
		case 0:
			interleaved[i] = uint64(i) & mask
		case 1:
			interleaved[i] = hot[i%len(hot)]
		default:
			interleaved[i] = rng.Uint64() & mask
		}
	}
	return map[string][]uint64{
		"random":      random,
		"repeated":    repeated,
		"strided":     strided,
		"hotset":      hotset,
		"zeros":       zeros,
		"interleaved": interleaved,
	}
}

// The central correctness property: for every scheme and every traffic
// shape, the decoder reconstructs the exact input stream from wire states
// alone.
func TestRoundTripAllSchemes(t *testing.T) {
	for _, width := range []int{8, 32} {
		for name, trace := range traceKinds(width, 400) {
			for _, tc := range allTranscoders(t, width) {
				if _, err := Evaluate(tc, trace, 1); err != nil {
					t.Errorf("width %d, trace %s: %v", width, name, err)
				}
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	win, _ := NewWindow(16, 8, 1)
	ctx, _ := NewContext(ContextConfig{Width: 16, TableSize: 10, ShiftEntries: 4, DividePeriod: 32, Lambda: 1})
	str, _ := NewStride(16, 4, 1)
	schemes := []Transcoder{win, ctx, str}
	f := func(raw []uint16) bool {
		trace := make([]uint64, len(raw))
		for i, v := range raw {
			trace[i] = uint64(v)
		}
		for _, s := range schemes {
			if _, err := Evaluate(s, trace, 1); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRawIsIdentity(t *testing.T) {
	r := NewRaw(32)
	enc := r.NewEncoder()
	if enc.BusWidth() != 32 {
		t.Errorf("raw bus width = %d, want 32", enc.BusWidth())
	}
	res := MustEvaluate(r, []uint64{1, 2, 3, 2, 1}, 1)
	if res.EnergyRemoved() != 0 {
		t.Errorf("raw coder must remove nothing, got %v", res.EnergyRemoved())
	}
	if res.Raw.Transitions() != res.Coded.Transitions() {
		t.Error("raw coder changed the transition count")
	}
}

func TestCodebookProperties(t *testing.T) {
	cb, err := NewCodebook(32, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Size() != 40 {
		t.Fatalf("Size = %d", cb.Size())
	}
	if cb.Code(0) != 0 {
		t.Error("code 0 must be the zero vector (LAST)")
	}
	seen := map[bus.Word]bool{}
	prevCost := -1.0
	for i := 0; i < cb.Size(); i++ {
		c := cb.Code(i)
		if seen[c] {
			t.Fatalf("duplicate codeword %#x", c)
		}
		seen[c] = true
		if idx, ok := cb.Index(c); !ok || idx != i {
			t.Fatalf("Index(Code(%d)) = %d, %v", i, idx, ok)
		}
		if i == 0 {
			continue
		}
		cost := float64(bus.Weight(c)) + float64(bus.ExpectedSelfCoupling(c, 32))/2
		if cost < prevCost {
			t.Errorf("codeword %d (%#x) cost %v cheaper than predecessor %v", i, c, cost, prevCost)
		}
		prevCost = cost
	}
	// First 1+32 codes must be weight <= 1.
	for i := 1; i <= 32; i++ {
		if bus.Weight(cb.Code(i)) != 1 {
			t.Errorf("code %d has weight %d, want 1", i, bus.Weight(cb.Code(i)))
		}
	}
}

func TestCodebookEdgeBitsFirst(t *testing.T) {
	// With Λ > 0, the weight-1 codes on edge wires (one coupling pair)
	// must precede interior wires (two coupling pairs).
	cb, err := NewCodebook(8, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := cb.Code(1)
	second := cb.Code(2)
	edges := map[bus.Word]bool{1 << 0: true, 1 << 7: true}
	if !edges[first] || !edges[second] {
		t.Errorf("first weight-1 codes should use edge wires, got %#x, %#x", first, second)
	}
}

func TestCodebookSizeLimits(t *testing.T) {
	if _, err := NewCodebook(8, 0, 1); err == nil {
		t.Error("size 0 should fail")
	}
	// width 8: 1 + 8 + 28 + 56 = 93 max.
	if _, err := NewCodebook(8, 93, 1); err != nil {
		t.Errorf("size 93 should succeed: %v", err)
	}
	if _, err := NewCodebook(8, 94, 1); err == nil {
		t.Error("size 94 should exceed weight-3 capacity for width 8")
	}
}

func TestChannelProtocol(t *testing.T) {
	ch := newChannel(8, 1)
	dch := newDecodeChannel(8)
	// Code path: control wires stay put.
	w := ch.sendCode(0b101)
	mode, payload := dch.observe(w)
	if mode != modeCode || payload != 0b101 {
		t.Errorf("code path: mode %v payload %#x", mode, payload)
	}
	// Raw path: value recovered regardless of inversion choice.
	w, _ = ch.sendRaw(0xA5)
	mode, payload = dch.observe(w)
	if mode == modeCode || uint64(payload) != 0xA5 {
		t.Errorf("raw path: mode %v payload %#x", mode, payload)
	}
	// Inverted form is chosen when cheaper: from state with data 0xA5,
	// sending 0x5A raw would flip all 8 data wires; inverted flips none.
	w, inverted := ch.sendRaw(0x5A)
	if !inverted {
		t.Error("expected inverted form for complement value")
	}
	mode, payload = dch.observe(w)
	if mode != modeRawInverted || uint64(payload) != 0x5A {
		t.Errorf("inverted path: mode %v payload %#x", mode, payload)
	}
}

func TestChannelDesyncPanics(t *testing.T) {
	dch := newDecodeChannel(8)
	dch.observe(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic when both control wires toggle")
		}
	}()
	dch.observe(bus.Word(0b11) << 8)
}

func TestLastValueCodeZeroCostsNothing(t *testing.T) {
	// A constant stream must cost zero transitions under every stateful
	// scheme (LAST-value folded in with code 0).
	trace := make([]uint64, 100)
	for i := range trace {
		trace[i] = 0x1234
	}
	win, _ := NewWindow(16, 8, 1)
	str, _ := NewStride(16, 4, 1)
	ctx, _ := NewContext(ContextConfig{Width: 16, TableSize: 8, ShiftEntries: 4, DividePeriod: 0, Lambda: 1})
	for _, tc := range []Transcoder{win, str, ctx} {
		res := MustEvaluate(tc, trace, 1)
		// Only the initial raw send of 0x1234 may cost anything.
		enc := tc.NewEncoder()
		first := enc.Encode(0x1234)
		firstCost := bus.Cost(0, first, enc.BusWidth(), 1)
		if firstCost == 0 {
			t.Fatalf("%s: initial raw send unexpectedly free", tc.Name())
		}
		if got := res.CodedCost(); got != firstCost {
			t.Errorf("%s: constant stream cost %v, want only the initial send %v", tc.Name(), got, firstCost)
		}
	}
}

func TestWindowHitUsesWeightOneCode(t *testing.T) {
	win, _ := NewWindow(32, 8, 1)
	enc := win.NewEncoder()
	vals := []uint64{10, 20, 30, 40}
	var prev bus.Word
	for _, v := range vals {
		prev = enc.Encode(v)
	}
	// Revisiting value 10 (in the register, not the last value) must
	// toggle exactly one data wire and no control wires.
	w := enc.Encode(10)
	if got := bus.Weight(prev ^ w); got != 1 {
		t.Errorf("window hit toggled %d wires, want 1", got)
	}
}

func TestWindowEviction(t *testing.T) {
	win, _ := NewWindow(32, 2, 1)
	enc := win.NewEncoder().(*windowEncoder)
	enc.Encode(1)
	enc.Encode(2)
	enc.Encode(3) // evicts 1 (the register also held initial zeros; slots cycle)
	// Register of size 2 now holds {2, 3} at some slots.
	if enc.st.find(2) < 0 || enc.st.find(3) < 0 {
		t.Error("window should retain the two most recent unique values")
	}
	if enc.st.find(1) >= 0 {
		t.Error("window failed to evict the oldest value")
	}
}

func TestWindowOpsAccounting(t *testing.T) {
	win, _ := NewWindow(32, 8, 1)
	enc := win.NewEncoder()
	enc.Encode(5) // miss -> raw + shift
	enc.Encode(5) // last hit
	enc.Encode(9) // miss
	enc.Encode(5) // dictionary hit
	ops := enc.(OpReporter).Ops()
	if ops.Cycles != 4 {
		t.Errorf("Cycles = %d", ops.Cycles)
	}
	if ops.RawSends != 2 || ops.LastHits != 1 || ops.CodeSends != 1 {
		t.Errorf("ops breakdown wrong: %+v", ops)
	}
	if ops.Shifts != 2 {
		t.Errorf("Shifts = %d, want 2", ops.Shifts)
	}
	if ops.PartialMatches != 4*8 {
		t.Errorf("PartialMatches = %d, want 32", ops.PartialMatches)
	}
}

func TestStridePrediction(t *testing.T) {
	str, _ := NewStride(32, 4, 1)
	enc := str.NewEncoder()
	// Arithmetic sequence with stride 3: after warm-up, stride-1 predictor
	// hits every time, producing weight<=1 transitions.
	var prev bus.Word
	misses := 0
	for i := 0; i < 50; i++ {
		w := enc.Encode(uint64(100 + 3*i))
		if i >= 2 && bus.Weight(prev^w) > 1 {
			misses++
		}
		prev = w
	}
	if misses != 0 {
		t.Errorf("stride predictor missed %d times on a pure stride-3 sequence", misses)
	}
}

func TestStrideInterleavedStreams(t *testing.T) {
	// Two interleaved arithmetic streams: stride-2 predictors catch both.
	str, _ := NewStride(32, 4, 1)
	enc := str.NewEncoder()
	var prev bus.Word
	misses := 0
	for i := 0; i < 60; i++ {
		var v uint64
		if i%2 == 0 {
			v = uint64(1000 + 5*(i/2))
		} else {
			v = uint64(70000 + 11*(i/2))
		}
		w := enc.Encode(v)
		if i >= 4 && bus.Weight(prev^w) > 1 {
			misses++
		}
		prev = w
	}
	if misses != 0 {
		t.Errorf("stride-2 interleaved streams missed %d times", misses)
	}
}

func TestStrideWrapsModuloWidth(t *testing.T) {
	// Strides that overflow the data width must wrap consistently on both
	// ends rather than diverge.
	str, _ := NewStride(8, 3, 1)
	trace := make([]uint64, 100)
	for i := range trace {
		trace[i] = uint64(i*37) & 0xFF
	}
	if _, err := Evaluate(str, trace, 1); err != nil {
		t.Error(err)
	}
}

func TestBusInvertBoundsTransitions(t *testing.T) {
	// Classic bus-invert guarantees at most ceil((W+1)/2) transitions per
	// cycle under the λ0 (transition count) criterion, including the
	// invert wire.
	inv, _ := NewBusInvert(32, 0)
	enc := inv.NewEncoder()
	rng := stats.NewRNG(3)
	prev := enc.Encode(0)
	for i := 0; i < 500; i++ {
		w := enc.Encode(rng.Uint64())
		if d := bus.Weight(prev ^ w); d > 17 {
			t.Fatalf("bus-invert produced %d transitions, bound is 17", d)
		}
		prev = w
	}
}

func TestBusInvertBeatsRawOnAntagonisticTraffic(t *testing.T) {
	// Alternating complement values: raw costs W transitions per cycle,
	// bus-invert costs ~1 (just the invert wire).
	trace := make([]uint64, 200)
	for i := range trace {
		if i%2 == 0 {
			trace[i] = 0
		} else {
			trace[i] = 0xFFFFFFFF
		}
	}
	inv, _ := NewBusInvert(32, 0)
	res := MustEvaluate(inv, trace, 0)
	if res.EnergyRemoved() < 0.9 {
		t.Errorf("bus-invert removed only %.2f of antagonistic traffic energy", res.EnergyRemoved())
	}
}

func TestInversionLambdaAwareCoding(t *testing.T) {
	// The λN coder must never do worse than λ0 when evaluated at high
	// actual Λ on coupling-antagonistic traffic.
	const actualLambda = 8.0
	rng := stats.NewRNG(41)
	trace := make([]uint64, 2000)
	for i := range trace {
		trace[i] = rng.Uint64()
	}
	pats, _ := DefaultInversionPatterns(32, 4)
	l0, _ := NewInversion(32, pats, 0)
	lN, _ := NewInversion(32, pats, actualLambda)
	res0 := MustEvaluate(l0, trace, actualLambda)
	resN := MustEvaluate(lN, trace, actualLambda)
	if resN.CodedCost() > res0.CodedCost()*1.001 {
		t.Errorf("λN coder (%.0f) worse than λ0 coder (%.0f) at Λ=%v",
			resN.CodedCost(), res0.CodedCost(), actualLambda)
	}
}

func TestInversionValidation(t *testing.T) {
	if _, err := NewInversion(32, []uint64{1, 2}, 0); err == nil {
		t.Error("pattern set without zero must be rejected")
	}
	if _, err := NewInversion(32, []uint64{0, 0xFF, 0xFF}, 0); err == nil {
		t.Error("duplicate patterns must be rejected")
	}
	if _, err := NewInversion(32, nil, 0); err == nil {
		t.Error("empty pattern set must be rejected")
	}
	if _, err := DefaultInversionPatterns(32, 9); err == nil {
		t.Error("oversized default pattern request must be rejected")
	}
}

func TestSpatialOneTransitionPerValue(t *testing.T) {
	sp, err := NewSpatial(4)
	if err != nil {
		t.Fatal(err)
	}
	enc := sp.NewEncoder()
	if enc.BusWidth() != 16 {
		t.Fatalf("spatial bus width = %d, want 16", enc.BusWidth())
	}
	rng := stats.NewRNG(9)
	prev := bus.Word(0)
	for i := 0; i < 200; i++ {
		w := enc.Encode(rng.Uint64() & 0xF)
		if got := bus.Weight(prev ^ w); got != 1 {
			t.Fatalf("spatial coder made %d transitions, want exactly 1", got)
		}
		prev = w
	}
}

func TestSpatialRoundTrip(t *testing.T) {
	sp, _ := NewSpatial(5)
	rng := stats.NewRNG(2)
	trace := make([]uint64, 300)
	for i := range trace {
		trace[i] = rng.Uint64() & 0x1F
	}
	if _, err := Evaluate(sp, trace, 1); err != nil {
		t.Error(err)
	}
}

func TestSpatialRejectsWideBuses(t *testing.T) {
	if _, err := NewSpatial(7); err == nil {
		t.Error("spatial coder must reject widths beyond 6")
	}
	if _, err := NewSpatial(0); err == nil {
		t.Error("spatial coder must reject width 0")
	}
}

func TestContextInvariantsHeldThroughout(t *testing.T) {
	cfg := ContextConfig{Width: 16, TableSize: 8, ShiftEntries: 4, DividePeriod: 32, Lambda: 1}
	ctx, _ := NewContext(cfg)
	enc := ctx.NewEncoder().(*contextEncoder)
	rng := stats.NewRNG(8)
	for i := 0; i < 5000; i++ {
		var v uint64
		if rng.Intn(3) == 0 {
			v = rng.Uint64() & 0xFFFF
		} else {
			v = uint64(rng.Intn(12)) * 3
		}
		enc.Encode(v)
		if err := enc.st.checkInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
}

func TestContextSortPromotesFrequentValues(t *testing.T) {
	// Feed a heavily skewed distribution; the hottest value must end up in
	// the frequency table's top slot.
	cfg := ContextConfig{Width: 16, TableSize: 6, ShiftEntries: 3, DividePeriod: 0, Lambda: 1}
	ctx, _ := NewContext(cfg)
	enc := ctx.NewEncoder().(*contextEncoder)
	rng := stats.NewRNG(12)
	for i := 0; i < 4000; i++ {
		var v uint64
		switch r := rng.Intn(10); {
		case r < 5:
			v = 0xAAAA // hottest
		case r < 8:
			v = 0xBBBB
		default:
			v = uint64(rng.Intn(50)) + 1
		}
		enc.Encode(v)
	}
	top := enc.st.table[0]
	if !top.valid || top.key.cur != 0xAAAA {
		t.Errorf("top table entry = %+v, want value 0xAAAA", top)
	}
	if err := enc.st.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestContextCounterDivision(t *testing.T) {
	cfg := ContextConfig{Width: 16, TableSize: 4, ShiftEntries: 2, DividePeriod: 8, Lambda: 1}
	ctx, _ := NewContext(cfg)
	enc := ctx.NewEncoder().(*contextEncoder)
	// Accumulate frequency on a hot value, then watch division shrink it
	// while a different value runs.
	for i := 0; i < 100; i++ {
		enc.Encode(0x7)
	}
	countAt100 := countFor(enc, 0x7)
	if countAt100 == 0 {
		t.Fatal("hot value earned no count")
	}
	for i := 0; i < 16; i++ { // two division periods with a different value
		enc.Encode(0x9)
	}
	if got := countFor(enc, 0x7); got >= countAt100 {
		t.Errorf("counter division did not shrink hot counter: %d -> %d", countAt100, got)
	}
}

// countFor returns the frequency count the state holds for value v, in the
// table or the shift register.
func countFor(e *contextEncoder, v uint64) uint32 {
	for _, ent := range e.st.table {
		if ent.valid && ent.key.cur == v {
			return ent.count
		}
	}
	for _, ent := range e.st.sr {
		if ent.valid && ent.key.cur == v {
			return ent.count
		}
	}
	return 0
}

func TestContextCounterSaturation(t *testing.T) {
	cfg := ContextConfig{Width: 16, TableSize: 2, ShiftEntries: 2, DividePeriod: 0, Lambda: 1}
	ctx, _ := NewContext(cfg)
	enc := ctx.NewEncoder().(*contextEncoder)
	for i := 0; i < 3*counterMax; i++ {
		enc.Encode(0x5)
	}
	for _, e := range enc.st.table {
		if e.count > counterMax {
			t.Errorf("counter exceeded Johnson saturation: %d", e.count)
		}
	}
	for _, e := range enc.st.sr {
		if e.count > counterMax {
			t.Errorf("SR counter exceeded saturation: %d", e.count)
		}
	}
}

func TestContextValueBeatsTransitionBased(t *testing.T) {
	// Reproduce the paper's §4.4 observation: for equal hardware, the
	// value-based design removes at least as much energy as the
	// transition-based one on hot-value traffic (there are many more arcs
	// than states).
	rng := stats.NewRNG(77)
	hot := make([]uint64, 16)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	trace := make([]uint64, 20000)
	for i := range trace {
		if rng.Intn(5) == 0 {
			trace[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			trace[i] = hot[rng.Intn(len(hot))]
		}
	}
	mk := func(transition bool) Result {
		ctx, err := NewContext(ContextConfig{
			Width: 32, TableSize: 16, ShiftEntries: 8,
			DividePeriod: 4096, TransitionBased: transition, Lambda: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return MustEvaluate(ctx, trace, 1)
	}
	value := mk(false)
	transition := mk(true)
	if value.EnergyRemoved() < transition.EnergyRemoved() {
		t.Errorf("value-based removed %.3f < transition-based %.3f",
			value.EnergyRemoved(), transition.EnergyRemoved())
	}
}

func TestContextConfigValidation(t *testing.T) {
	bad := []ContextConfig{
		{Width: 16, TableSize: 0, ShiftEntries: 4},
		{Width: 16, TableSize: 4, ShiftEntries: 0},
		{Width: 16, TableSize: 4, ShiftEntries: 4, DividePeriod: -1},
	}
	for _, cfg := range bad {
		if _, err := NewContext(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	// Out-of-range widths panic (programming error, like bus.Mask).
	defer func() {
		if recover() == nil {
			t.Error("width 0 should panic")
		}
	}()
	NewContext(ContextConfig{Width: 0, TableSize: 4, ShiftEntries: 4})
}

func TestEvaluateDetectsDivergence(t *testing.T) {
	// A deliberately broken transcoder must be caught by Evaluate.
	b := brokenTranscoder{}
	if _, err := Evaluate(b, []uint64{1, 2, 3}, 1); err == nil {
		t.Error("Evaluate must report decoder divergence")
	}
}

type brokenTranscoder struct{}

func (brokenTranscoder) Name() string        { return "broken" }
func (brokenTranscoder) DataWidth() int      { return 8 }
func (brokenTranscoder) NewEncoder() Encoder { return &rawEncoder{width: 8} }
func (brokenTranscoder) NewDecoder() Decoder { return brokenDecoder{} }

type brokenDecoder struct{}

func (brokenDecoder) Decode(w bus.Word) uint64 { return uint64(w) + 1 }
func (brokenDecoder) Reset()                   {}

func TestResetRestoresInitialState(t *testing.T) {
	win, _ := NewWindow(16, 4, 1)
	rng := stats.NewRNG(5)
	trace := make([]uint64, 100)
	for i := range trace {
		trace[i] = rng.Uint64() & 0xFFFF
	}
	enc := win.NewEncoder()
	first := make([]bus.Word, len(trace))
	for i, v := range trace {
		first[i] = enc.Encode(v)
	}
	enc.Reset()
	for i, v := range trace {
		if got := enc.Encode(v); got != first[i] {
			t.Fatalf("after Reset, output %d differs: %#x vs %#x", i, got, first[i])
		}
	}
}

func TestEnergyRemovedSigns(t *testing.T) {
	// Window coding of pure random data may add energy (extra wires,
	// misses) — EnergyRemoved can be negative but EnergyRemaining must be
	// its complement.
	rng := stats.NewRNG(1)
	trace := make([]uint64, 3000)
	for i := range trace {
		trace[i] = rng.Uint64()
	}
	win, _ := NewWindow(32, 8, 1)
	res := MustEvaluate(win, trace, 1)
	if diff := res.EnergyRemoved() + res.EnergyRemaining() - 1; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("EnergyRemoved + EnergyRemaining != 1 (diff %v)", diff)
	}
}

func TestHotSetSavingsOrdering(t *testing.T) {
	// On hot-set traffic the dictionary coders must beat the stride coder,
	// mirroring the paper's §4.4 ranking.
	rng := stats.NewRNG(23)
	hot := make([]uint64, 6)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	trace := make([]uint64, 10000)
	for i := range trace {
		if rng.Intn(8) == 0 {
			trace[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			trace[i] = hot[rng.Intn(len(hot))]
		}
	}
	win, _ := NewWindow(32, 8, 1)
	str, _ := NewStride(32, 8, 1)
	winRes := MustEvaluate(win, trace, 1)
	strRes := MustEvaluate(str, trace, 1)
	if winRes.EnergyRemoved() <= strRes.EnergyRemoved() {
		t.Errorf("window (%.3f) should beat stride (%.3f) on hot-set traffic",
			winRes.EnergyRemoved(), strRes.EnergyRemoved())
	}
	if winRes.EnergyRemoved() < 0.3 {
		t.Errorf("window savings on hot-set traffic suspiciously low: %.3f", winRes.EnergyRemoved())
	}
}

func TestOpStatsAdd(t *testing.T) {
	a := OpStats{Cycles: 1, Shifts: 2, Swaps: 3, LastHits: 4}
	b := OpStats{Cycles: 10, Shifts: 20, Swaps: 30, LastHits: 40, RawSends: 5}
	a.Add(b)
	if a.Cycles != 11 || a.Shifts != 22 || a.Swaps != 33 || a.LastHits != 44 || a.RawSends != 5 {
		t.Errorf("Add produced %+v", a)
	}
}
