package coding

import (
	"fmt"
	"math/bits"

	"buspower/internal/bus"
)

// ContextTranscoder implements the Context-based transcoder of §4.3
// (Figures 12-14) and §5.3: a frequency table of the most common bus
// values (or value transitions), kept sorted by frequency so that an
// entry's *position* is its codeword (Invariant 1: unique tags; Invariant
// 2: counters non-increasing down the table), fed by a shift-register
// front-end that lets new values accumulate counts before competing for a
// table slot.
//
// Sorting uses the paper's low-overhead pending-bit neighbour-swap
// algorithm (§5.3.1, Figure 27): hits set a pending bit rather than
// incrementing immediately; each cycle the top entry with a pending bit
// increments, and an entry whose counter *equals* its upper neighbour's
// swaps upward, so entries rise one position per cycle using only XOR
// equality comparators and O(n) neighbour wiring. Counters saturate like
// the paper's four concatenated 4-bit Johnson counters (max 4096) and are
// periodically halved (the "counter division time") to track phase
// changes.
//
// Two flavours exist (Figures 13-14): value-based keys entries on bus
// values; transition-based keys them on (previous, current) value pairs.
// The paper finds value-based strictly better for equal hardware — there
// are far more arcs than states — and carries value-based forward.
type ContextTranscoder struct {
	cfg  ContextConfig
	cb   *Codebook
	name string
}

// ContextConfig parameterizes a Context-based transcoder.
type ContextConfig struct {
	// Width is the data width in bits.
	Width int
	// TableSize is the number of frequency table entries.
	TableSize int
	// ShiftEntries is the shift-register (window) size; the paper settles
	// on 8.
	ShiftEntries int
	// DividePeriod is the counter division time in cycles (0 disables);
	// the paper settles on 4096.
	DividePeriod int
	// TransitionBased selects the transition-frequency flavour
	// (Figure 14) instead of value-frequency (Figure 13).
	TransitionBased bool
	// Lambda is the assumed Λ used to order codewords and to choose
	// raw-vs-inverted fallbacks.
	Lambda float64
}

// counterMax mirrors the saturation point of four concatenated 4-bit
// Johnson counters (§5.3.3).
const counterMax = 4096

// NewContext builds a Context-based transcoder.
func NewContext(cfg ContextConfig) (*ContextTranscoder, error) {
	checkWidth(cfg.Width)
	if cfg.TableSize < 1 {
		return nil, fmt.Errorf("coding: context table size %d < 1", cfg.TableSize)
	}
	if cfg.ShiftEntries < 1 {
		return nil, fmt.Errorf("coding: context shift register size %d < 1", cfg.ShiftEntries)
	}
	if cfg.DividePeriod < 0 {
		return nil, fmt.Errorf("coding: negative divide period %d", cfg.DividePeriod)
	}
	cb, err := NewCodebook(cfg.Width, 1+cfg.TableSize+cfg.ShiftEntries, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	flavour := "value"
	if cfg.TransitionBased {
		flavour = "transition"
	}
	name := fmt.Sprintf("context-%s-t%d-s%d", flavour, cfg.TableSize, cfg.ShiftEntries)
	return &ContextTranscoder{cfg: cfg, cb: cb, name: name}, nil
}

// Name implements Transcoder.
func (t *ContextTranscoder) Name() string { return t.name }

// ConfigKey implements ConfigKeyer: the name omits the width, divide
// period and assumed Λ, all of which change the coded stream.
func (t *ContextTranscoder) ConfigKey() string {
	return fmt.Sprintf("%s-d%d/w%d/l%g", t.name, t.cfg.DividePeriod, t.cfg.Width, t.cfg.Lambda)
}

// DataWidth implements Transcoder.
func (t *ContextTranscoder) DataWidth() int { return t.cfg.Width }

// Config returns the transcoder's configuration.
func (t *ContextTranscoder) Config() ContextConfig { return t.cfg }

// NewEncoder implements Transcoder.
func (t *ContextTranscoder) NewEncoder() Encoder {
	return &contextEncoder{t: t, st: newContextState(t.cfg), ch: newChannel(t.cfg.Width, t.cfg.Lambda)}
}

// NewDecoder implements Transcoder.
func (t *ContextTranscoder) NewDecoder() Decoder {
	return &contextDecoder{t: t, st: newContextState(t.cfg), ch: newDecodeChannel(t.cfg.Width)}
}

// ctxKey identifies a dictionary entry: the value itself for value-based
// operation, or the (previous, current) pair for transition-based.
type ctxKey struct {
	prev, cur uint64
}

type tableEntry struct {
	key     ctxKey
	count   uint32
	pending bool
	valid   bool
}

type srEntry struct {
	key   ctxKey
	count uint32
	valid bool
}

// contextIndexMinEntries is the table (or shift register) size at which
// the map-based reverse index starts beating the valid-and-compare linear
// scan. It is a variable, not a constant, so tests can force either path
// and compare them.
var contextIndexMinEntries = 16

// contextState is the complete shared FSM state; encoder and decoder each
// own one and keep them identical by construction.
//
// Three acceleration structures shadow the arrays without changing
// observable behavior. tableIndex/srIndex map key → slot for O(1) probes
// (nil below contextIndexMinEntries); they hold exactly the valid
// entries' keys, which Invariant 1 keeps unique. tableBytes/srBytes count
// valid entries per low key byte so the modeled selective-precharge
// full-match counts are O(1) per probe. pendingBits mirrors the table's
// pending flags as a bitset so the per-cycle sort pass skips over
// pending-free regions 64 entries at a time — on a converged dictionary
// most cycles carry at most a bit or two.
type contextState struct {
	cfg    ContextConfig
	table  []tableEntry
	sr     []srEntry
	srHead int
	last   uint64
	// untilDivide counts down to the next counter division (0 when
	// DividePeriod is disabled) — a decrement per cycle instead of the
	// modulo the period check would otherwise cost on every value.
	untilDivide int

	tableIndex  *ctxIndex
	srIndex     *ctxIndex
	tableBytes  [256]uint32
	srBytes     [256]uint32
	pendingBits []uint64
	// pendingCount tracks the number of set pendingBits so the per-cycle
	// step can skip the sort pass without touching the bitset words.
	pendingCount int

	ops *OpStats // optional, set by the encoder
}

func newContextState(cfg ContextConfig) contextState {
	s := contextState{
		cfg:         cfg,
		table:       make([]tableEntry, cfg.TableSize),
		sr:          make([]srEntry, cfg.ShiftEntries),
		pendingBits: make([]uint64, (cfg.TableSize+63)/64),
		untilDivide: cfg.DividePeriod,
	}
	if cfg.TableSize >= contextIndexMinEntries {
		s.tableIndex = newCtxIndex(cfg.TableSize)
	}
	if cfg.ShiftEntries >= contextIndexMinEntries {
		s.srIndex = newCtxIndex(cfg.ShiftEntries)
	}
	return s
}

func (s *contextState) makeKey(v uint64) ctxKey {
	if s.cfg.TransitionBased {
		return ctxKey{prev: s.last, cur: v}
	}
	return ctxKey{cur: v}
}

// setPendingBit keeps the bitset (and its population count) in lockstep
// with table[i].pending.
func (s *contextState) setPendingBit(i int, pending bool) {
	w := &s.pendingBits[i>>6]
	bit := uint64(1) << (i & 63)
	if pending {
		if *w&bit == 0 {
			s.pendingCount++
		}
		*w |= bit
	} else {
		if *w&bit != 0 {
			s.pendingCount--
		}
		*w &^= bit
	}
}

// step advances the per-cycle machinery: counter division and one pass of
// the pending-bit sort. Both ends call it at the top of every cycle,
// before classifying the new value, so positional codes stay consistent.
func (s *contextState) step() {
	// Inlineable fast path: with no pending bits the sort pass is a no-op
	// (it iterates set bits only and counts no compares), and away from a
	// division boundary the countdown is a plain decrement. Converged
	// dictionaries and miss-heavy traces take this on most cycles.
	if s.pendingCount == 0 && s.untilDivide != 1 {
		if s.untilDivide > 0 {
			s.untilDivide--
		}
		return
	}
	s.stepSlow()
}

func (s *contextState) stepSlow() {
	if s.untilDivide > 0 {
		s.untilDivide--
		if s.untilDivide == 0 {
			for i := range s.table {
				s.table[i].count /= 2
			}
			for i := range s.sr {
				s.sr[i].count /= 2
			}
			s.untilDivide = s.cfg.DividePeriod
		}
	}
	// One top-to-bottom pass of the neighbour-swap sort: each pending
	// entry either increments (safe: its upper neighbour's counter is
	// strictly greater, or it is the top) or swaps one position upward
	// (its upper neighbour's counter is equal, so order is preserved).
	//
	// The pass iterates the pending bitset sparsely. This visits exactly
	// the entries an ascending flag-checking scan would: processing entry
	// e only mutates pending state at positions e-1 and e, never at a
	// position the scan has yet to reach, so each position's pending flag
	// at reach-time equals its value when the pass started.
	for wi, word := range s.pendingBits {
		for word != 0 {
			e := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if s.ops != nil {
				s.ops.CounterCompares++
			}
			switch {
			case e == 0:
				s.increment(e)
			case !s.table[e-1].valid:
				// Unoccupied slot above: rise past it unconditionally (real
				// hardware has no empty slots; zero-count entries there would
				// compare equal and be swapped through just the same).
				s.swap(e)
			case s.table[e].count < s.table[e-1].count:
				s.increment(e)
			case s.table[e].count > s.table[e-1].count:
				// Ordering disturbed (can only arise transiently around
				// unoccupied slots): restore it by rising.
				s.swap(e)
			case !s.table[e-1].pending:
				s.swap(e)
			default:
				// Upper neighbour is pending with an equal counter: both will
				// rise by increment; no swap needed to preserve the invariant.
				s.increment(e)
			}
		}
	}
}

// swap exchanges entry e with its upper neighbour.
func (s *contextState) swap(e int) {
	s.table[e], s.table[e-1] = s.table[e-1], s.table[e]
	s.setPendingBit(e, s.table[e].pending)
	s.setPendingBit(e-1, s.table[e-1].pending)
	if s.tableIndex != nil {
		if s.table[e].valid {
			s.tableIndex.put(s.table[e].key, e)
		}
		if s.table[e-1].valid {
			s.tableIndex.put(s.table[e-1].key, e-1)
		}
	}
	if s.ops != nil {
		s.ops.Swaps++
	}
}

func (s *contextState) increment(e int) {
	if s.table[e].count < counterMax {
		s.table[e].count++
	}
	s.table[e].pending = false
	s.setPendingBit(e, false)
	if s.ops != nil {
		s.ops.CounterIncrements++
	}
}

// findTable returns the table slot holding key, or -1. The map and the
// linear scan agree because the map holds exactly the valid entries, and
// Invariant 1 makes valid keys unique.
func (s *contextState) findTable(key ctxKey) int {
	// The byte histogram kept for probe modeling doubles as a negative
	// filter: no valid entry shares the key's low byte, so the key
	// cannot be present and neither the scan nor the hash probe runs.
	if s.tableBytes[byte(key.cur)] == 0 {
		return -1
	}
	if s.tableIndex != nil {
		return s.tableIndex.get(key)
	}
	for i := range s.table {
		// cur differs on almost every miss; test it before the flags.
		if e := &s.table[i]; e.key.cur == key.cur && e.valid && e.key.prev == key.prev {
			return i
		}
	}
	return -1
}

// findSR returns the shift-register slot holding key, or -1.
func (s *contextState) findSR(key ctxKey) int {
	if s.srBytes[byte(key.cur)] == 0 {
		return -1 // same negative filter as findTable
	}
	if s.srIndex != nil {
		return s.srIndex.get(key)
	}
	for i := range s.sr {
		if e := &s.sr[i]; e.key.cur == key.cur && e.valid && e.key.prev == key.prev {
			return i
		}
	}
	return -1
}

// update applies the frequency bookkeeping for input value v. It must be
// called after classification, and identically on both ends.
func (s *contextState) update(v uint64) {
	key := s.makeKey(v)
	tableSlot := s.findTable(key)
	srSlot := -1
	if tableSlot < 0 {
		srSlot = s.findSR(key)
	}
	s.updateAt(v, key, tableSlot, srSlot)
}

// updateAt is update for callers that already probed both structures
// while classifying v (the encoder): tableSlot is findTable(key), and
// srSlot is findSR(key) when tableSlot is -1 (unused otherwise). Nothing
// between classification and update mutates the dictionaries, so reusing
// the classification's probe results here halves the per-cycle lookups
// without changing a single count.
func (s *contextState) updateAt(v uint64, key ctxKey, tableSlot, srSlot int) {
	if tableSlot >= 0 {
		// A hit to an entry whose pending bit is already set is lost
		// (§5.3.1 footnote) — correctness is unaffected, some counts are.
		s.table[tableSlot].pending = true
		s.setPendingBit(tableSlot, true)
	} else if srSlot >= 0 {
		if s.sr[srSlot].count < counterMax {
			s.sr[srSlot].count++
		}
		if s.ops != nil {
			s.ops.CounterIncrements++
		}
	} else {
		s.insertSR(key)
	}
	s.last = v
}

// insertSR shifts key into the register (pointer-based: one entry
// rewritten); the evicted entry competes for the frequency table's bottom
// slot if it out-counts the current least-frequent entry.
func (s *contextState) insertSR(key ctxKey) {
	evicted := s.sr[s.srHead]
	s.sr[s.srHead] = srEntry{key: key, count: 1, valid: true}
	if evicted.valid {
		s.srBytes[byte(evicted.key.cur)]--
		if s.srIndex != nil {
			s.srIndex.del(evicted.key)
		}
	}
	s.srBytes[byte(key.cur)]++
	if s.srIndex != nil {
		s.srIndex.put(key, s.srHead)
	}
	s.srHead++
	if s.srHead == len(s.sr) {
		s.srHead = 0
	}
	if s.ops != nil {
		s.ops.Shifts++
	}
	if !evicted.valid {
		return
	}
	bottom := len(s.table) - 1
	if !s.table[bottom].valid || evicted.count > s.table[bottom].count {
		count := evicted.count
		// Preserve Invariant 2 on insertion: the new bottom entry may not
		// out-count the lowest occupied entry above it (the real hardware
		// achieves this implicitly by re-earning counts; we clamp, which
		// keeps strictly more of the earned frequency). Scan past any
		// still-unoccupied slots.
		for above := bottom - 1; above >= 0; above-- {
			if s.table[above].valid {
				if count > s.table[above].count {
					count = s.table[above].count
				}
				break
			}
		}
		old := s.table[bottom]
		if old.valid {
			s.tableBytes[byte(old.key.cur)]--
			if s.tableIndex != nil {
				s.tableIndex.del(old.key)
			}
		}
		s.table[bottom] = tableEntry{key: evicted.key, count: count, valid: true}
		s.setPendingBit(bottom, false)
		s.tableBytes[byte(evicted.key.cur)]++
		if s.tableIndex != nil {
			s.tableIndex.put(evicted.key, bottom)
		}
		if s.ops != nil {
			s.ops.TableWrites++
		}
	}
}

func (s *contextState) reset() {
	for i := range s.table {
		s.table[i] = tableEntry{}
	}
	for i := range s.sr {
		s.sr[i] = srEntry{}
	}
	s.srHead = 0
	s.last = 0
	s.untilDivide = s.cfg.DividePeriod
	if s.tableIndex != nil {
		s.tableIndex.clear()
	}
	if s.srIndex != nil {
		s.srIndex.clear()
	}
	s.tableBytes = [256]uint32{}
	s.srBytes = [256]uint32{}
	for i := range s.pendingBits {
		s.pendingBits[i] = 0
	}
	s.pendingCount = 0
}

// checkInvariants verifies Invariants 1 and 2 plus the consistency of the
// acceleration structures with the arrays they shadow; used by tests.
func (s *contextState) checkInvariants() error {
	seen := make(map[ctxKey]bool)
	var tb, sb [256]uint32
	for i, e := range s.table {
		if e.pending != (s.pendingBits[i>>6]&(1<<(i&63)) != 0) {
			return fmt.Errorf("pending bitset out of sync at slot %d", i)
		}
		if !e.valid {
			continue
		}
		tb[byte(e.key.cur)]++
		if seen[e.key] {
			return fmt.Errorf("invariant 1 violated: duplicate table key %+v", e.key)
		}
		seen[e.key] = true
		if s.tableIndex != nil {
			if got := s.tableIndex.get(e.key); got != i {
				return fmt.Errorf("table index out of sync for key %+v: got %d want %d", e.key, got, i)
			}
		}
		if i > 0 && s.table[i-1].valid && e.count > s.table[i-1].count {
			return fmt.Errorf("invariant 2 violated at slot %d: %d > %d", i, e.count, s.table[i-1].count)
		}
	}
	for i, e := range s.sr {
		if !e.valid {
			continue
		}
		sb[byte(e.key.cur)]++
		if seen[e.key] {
			return fmt.Errorf("invariant 1 violated: key %+v in both table and shift register", e.key)
		}
		if s.srIndex != nil {
			if got := s.srIndex.get(e.key); got != i {
				return fmt.Errorf("sr index out of sync for key %+v: got %d want %d", e.key, got, i)
			}
		}
	}
	if tb != s.tableBytes {
		return fmt.Errorf("table byte histogram out of sync")
	}
	if sb != s.srBytes {
		return fmt.Errorf("sr byte histogram out of sync")
	}
	if s.tableIndex != nil {
		valid := 0
		for _, e := range s.table {
			if e.valid {
				valid++
			}
		}
		if s.tableIndex.len() != valid {
			return fmt.Errorf("table index holds %d keys, want %d", s.tableIndex.len(), valid)
		}
	}
	if s.srIndex != nil {
		valid := 0
		for _, e := range s.sr {
			if e.valid {
				valid++
			}
		}
		if s.srIndex.len() != valid {
			return fmt.Errorf("sr index holds %d keys, want %d", s.srIndex.len(), valid)
		}
	}
	pop := 0
	for _, w := range s.pendingBits {
		pop += bits.OnesCount64(w)
	}
	if pop != s.pendingCount {
		return fmt.Errorf("pending count %d out of sync with bitset population %d", s.pendingCount, pop)
	}
	return nil
}

type contextEncoder struct {
	t   *ContextTranscoder
	st  contextState
	ch  channel
	ops OpStats
}

func (e *contextEncoder) Encode(v uint64) bus.Word {
	t := e.t
	v &= uint64(e.ch.dataMask)
	e.st.ops = &e.ops
	e.ops.Cycles++
	e.st.step()
	key := e.st.makeKey(v)
	e.countProbes(key)

	// Classification and update share one round of dictionary probes
	// (updateAt); the LAST-hit path never probes during classification,
	// so it resolves the slots here for the update.
	var out bus.Word
	tableSlot, srSlot := -1, -1
	switch {
	case v == e.st.last:
		e.ops.LastHits++
		out = e.ch.sendCode(0)
		if tableSlot = e.st.findTable(key); tableSlot < 0 {
			srSlot = e.st.findSR(key)
		}
	default:
		if tableSlot = e.st.findTable(key); tableSlot >= 0 {
			e.ops.CodeSends++
			out = e.ch.sendCode(t.cb.Code(1 + tableSlot))
		} else if srSlot = e.st.findSR(key); srSlot >= 0 {
			e.ops.CodeSends++
			out = e.ch.sendCode(t.cb.Code(1 + t.cfg.TableSize + srSlot))
		} else {
			e.ops.RawSends++
			out, _ = e.ch.sendRaw(v)
		}
	}
	e.st.updateAt(v, key, tableSlot, srSlot)
	return out
}

// encodeStream implements streamEncoder: Encode's per-cycle algorithm
// with the mask, table size and hot counters hoisted into locals. The
// channel self-accounts the run's Σ activity (see beginBlock), folded
// into the meter stream with one AddBlock instead of a per-cycle record.
// TestContextEncodeStreamMatchesEncode pins it cycle-for-cycle (outputs,
// ops and dictionary state) to Encode.
func (e *contextEncoder) encodeStream(vals []uint64, st *bus.MeterStream) {
	t := e.t
	mask := uint64(e.ch.dataMask)
	tableSize := t.cfg.TableSize
	probes := uint64(len(e.st.table) + len(e.st.sr))
	e.st.ops = &e.ops
	e.ch.beginBlock()
	var lastHits, codeSends, rawSends, partial, full uint64
	for _, v := range vals {
		v &= mask
		e.st.step()
		key := e.st.makeKey(v)
		partial += probes
		b := byte(key.cur)
		full += uint64(e.st.tableBytes[b]) + uint64(e.st.srBytes[b])
		tableSlot, srSlot := -1, -1
		switch {
		case v == e.st.last:
			lastHits++
			if tableSlot = e.st.findTable(key); tableSlot < 0 {
				srSlot = e.st.findSR(key)
			}
		default:
			if tableSlot = e.st.findTable(key); tableSlot >= 0 {
				codeSends++
				e.ch.sendCode(t.cb.Code(1 + tableSlot))
			} else if srSlot = e.st.findSR(key); srSlot >= 0 {
				codeSends++
				e.ch.sendCode(t.cb.Code(1 + tableSize + srSlot))
			} else {
				rawSends++
				e.ch.sendRaw(v)
			}
		}
		e.st.updateAt(v, key, tableSlot, srSlot)
	}
	st.AddBlock(uint64(len(vals)), e.ch.accT, e.ch.accC, e.ch.state)
	e.ops.Cycles += uint64(len(vals))
	e.ops.LastHits += lastHits
	e.ops.CodeSends += codeSends
	e.ops.RawSends += rawSends
	e.ops.PartialMatches += partial
	e.ops.FullMatches += full
}

// countProbes models the selective-precharge CAM probe across the
// frequency table and shift register. The byte histograms keep the
// modeled counts identical to scanning both arrays.
func (e *contextEncoder) countProbes(key ctxKey) {
	e.ops.PartialMatches += uint64(len(e.st.table) + len(e.st.sr))
	b := byte(key.cur)
	e.ops.FullMatches += uint64(e.st.tableBytes[b]) + uint64(e.st.srBytes[b])
}

func (e *contextEncoder) BusWidth() int { return e.ch.busWidth() }
func (e *contextEncoder) Reset() {
	e.st.reset()
	e.ch.reset()
	e.ops = OpStats{}
}
func (e *contextEncoder) Ops() OpStats { return e.ops }

type contextDecoder struct {
	t  *ContextTranscoder
	st contextState
	ch decodeChannel
}

func (d *contextDecoder) Decode(w bus.Word) uint64 {
	t := d.t
	d.st.step()
	mode, payload := d.ch.observe(w)
	var v uint64
	switch mode {
	case modeCode:
		idx, ok := t.cb.Index(payload)
		if !ok {
			panic(fmt.Sprintf("coding: context decoder received non-codeword transition %#x", payload))
		}
		switch {
		case idx == 0:
			v = d.st.last
		case idx <= t.cfg.TableSize:
			v = d.st.table[idx-1].key.cur
		default:
			v = d.st.sr[idx-1-t.cfg.TableSize].key.cur
		}
	default:
		v = uint64(payload)
	}
	d.st.update(v)
	return v
}

func (d *contextDecoder) Reset() {
	d.st.reset()
	d.ch.reset()
}
