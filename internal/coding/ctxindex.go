package coding

import "math/bits"

// ctxIndex is a small open-addressing hash index from ctxKey to a slot
// number, replacing map[ctxKey]int in the per-cycle encode/decode paths.
// The dictionary FSMs probe it several times per bus cycle (classification,
// frequency update, and two reassignments per sort swap), where the
// runtime map's generic machinery — 128-bit key hashing and bucket
// group probing — dominated the encode profile. This index is linear
// probing over three parallel arrays at ≤¼ load, with the classical
// backward-shift deletion so probe chains never accumulate tombstones.
//
// Capacity is fixed at construction: the callers index fixed-size
// hardware tables whose entry count never grows past the size they were
// built with (Invariant 1 keeps live keys unique).
type ctxIndex struct {
	keys  []ctxKey
	slots []int32
	used  []bool
	mask  uint32
	n     int
}

// newCtxIndex returns an index able to hold capacity keys at ≤¼ load.
func newCtxIndex(capacity int) *ctxIndex {
	size := 16
	for size < 4*capacity {
		size <<= 1
	}
	return &ctxIndex{
		keys:  make([]ctxKey, size),
		slots: make([]int32, size),
		used:  make([]bool, size),
		mask:  uint32(size - 1),
	}
}

// hashCtxKey mixes both words of the key (splitmix64-style finalizer);
// value-based keys leave prev zero, which costs one dead multiply.
func hashCtxKey(k ctxKey) uint64 {
	h := k.cur*0x9E3779B97F4A7C15 ^ bits.RotateLeft64(k.prev*0xBF58476D1CE4E5B9, 31)
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// get returns the slot stored for k, or -1.
func (ix *ctxIndex) get(k ctxKey) int {
	i := uint32(hashCtxKey(k)) & ix.mask
	for ix.used[i] {
		if ix.keys[i] == k {
			return int(ix.slots[i])
		}
		i = (i + 1) & ix.mask
	}
	return -1
}

// put stores slot for k, overwriting any previous entry for the same key.
func (ix *ctxIndex) put(k ctxKey, slot int) {
	i := uint32(hashCtxKey(k)) & ix.mask
	for ix.used[i] {
		if ix.keys[i] == k {
			ix.slots[i] = int32(slot)
			return
		}
		i = (i + 1) & ix.mask
	}
	ix.keys[i] = k
	ix.slots[i] = int32(slot)
	ix.used[i] = true
	ix.n++
}

// del removes k if present, backward-shifting the probe chain so that
// every remaining key stays reachable from its home position.
func (ix *ctxIndex) del(k ctxKey) {
	mask := ix.mask
	i := uint32(hashCtxKey(k)) & mask
	for {
		if !ix.used[i] {
			return
		}
		if ix.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	ix.n--
	j := i
	for {
		ix.used[i] = false
		for {
			j = (j + 1) & mask
			if !ix.used[j] {
				return
			}
			home := uint32(hashCtxKey(ix.keys[j])) & mask
			// keys[j] may fill the gap at i iff its home position does not
			// lie cyclically within (i, j] — otherwise moving it would break
			// its own probe chain.
			if (j-home)&mask >= (j-i)&mask {
				break
			}
		}
		ix.keys[i] = ix.keys[j]
		ix.slots[i] = ix.slots[j]
		ix.used[i] = true
		i = j
	}
}

// len returns the number of stored keys.
func (ix *ctxIndex) len() int { return ix.n }

// clear removes every key.
func (ix *ctxIndex) clear() {
	for i := range ix.used {
		ix.used[i] = false
	}
	ix.n = 0
}
