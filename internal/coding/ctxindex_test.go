package coding

import (
	"math/rand"
	"testing"
)

// TestCtxIndexMatchesMap drives a ctxIndex and a reference map through the
// same randomized put/del/get workload, including the churn pattern the
// dictionary FSMs produce (delete-then-reinsert at full load), and checks
// every lookup and the size after every operation.
func TestCtxIndexMatchesMap(t *testing.T) {
	const capacity = 64
	rng := rand.New(rand.NewSource(1))
	ix := newCtxIndex(capacity)
	ref := make(map[ctxKey]int)

	// A small key universe forces frequent re-put/del collisions; keys
	// cluster on the low byte to stress probe chains.
	randKey := func() ctxKey {
		return ctxKey{prev: uint64(rng.Intn(4)), cur: uint64(rng.Intn(96))}
	}
	check := func(step int) {
		t.Helper()
		if ix.len() != len(ref) {
			t.Fatalf("step %d: len %d, want %d", step, ix.len(), len(ref))
		}
		for k, slot := range ref {
			if got := ix.get(k); got != slot {
				t.Fatalf("step %d: get(%+v) = %d, want %d", step, k, got, slot)
			}
		}
	}

	for step := 0; step < 20000; step++ {
		k := randKey()
		switch {
		case rng.Intn(3) == 0 || len(ref) >= capacity:
			ix.del(k)
			delete(ref, k)
		default:
			slot := rng.Intn(capacity)
			ix.put(k, slot)
			ref[k] = slot
		}
		if want, ok := ref[k]; ok != (ix.get(k) >= 0) || (ok && ix.get(k) != want) {
			t.Fatalf("step %d: get(%+v) = %d, ref %d (present %v)", step, k, ix.get(k), want, ok)
		}
		if step%500 == 0 {
			check(step)
		}
	}
	check(-1)

	ix.clear()
	if ix.len() != 0 {
		t.Fatalf("len after clear = %d", ix.len())
	}
	for k := range ref {
		if got := ix.get(k); got != -1 {
			t.Fatalf("get(%+v) after clear = %d", k, got)
		}
	}
}

// TestCtxIndexAbsentKey exercises misses on an index with long probe
// chains (every key hashed into a quarter-full table).
func TestCtxIndexAbsentKey(t *testing.T) {
	ix := newCtxIndex(16)
	for i := 0; i < 16; i++ {
		ix.put(ctxKey{cur: uint64(i)}, i)
	}
	for i := 16; i < 64; i++ {
		if got := ix.get(ctxKey{cur: uint64(i)}); got != -1 {
			t.Fatalf("get(absent %d) = %d", i, got)
		}
	}
	for i := 0; i < 16; i++ {
		ix.del(ctxKey{cur: uint64(i)})
	}
	if ix.len() != 0 {
		t.Fatalf("len after deleting all = %d", ix.len())
	}
}
