package coding

import (
	"testing"

	"buspower/internal/bus"
	"buspower/internal/stats"
)

// The transcoder FSMs stay synchronized only because the wire is assumed
// reliable (the paper's drop-in-cell model inherits the bus's existing
// signal integrity). These tests document what a single-event upset does:
// a flipped wire either trips the decoder's codeword validation or aliases
// to a *valid* codeword and silently corrupts the shared dictionary —
// after which the streams diverge persistently. Deployments needing upset
// tolerance must add external protection (parity, periodic resync).

// driveWithUpset encodes a trace, flips the given wire of the given beat,
// and decodes, reporting at which value index the decode first diverged
// (-1 if never) and whether the decoder panicked.
func driveWithUpset(t *testing.T, tc Transcoder, trace []uint64, beat int, wireIdx int) (firstDiverged int, panicked bool) {
	t.Helper()
	enc := tc.NewEncoder()
	dec := tc.NewDecoder()
	firstDiverged = -1
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	for i, v := range trace {
		w := enc.Encode(v)
		if i == beat {
			w ^= bus.Word(1) << uint(wireIdx)
		}
		if got := dec.Decode(w); got != v && firstDiverged < 0 {
			firstDiverged = i
		}
	}
	return firstDiverged, panicked
}

func TestUpsetOnCodeCycleSilentlyAliases(t *testing.T) {
	// Window coder, rotating hot values so every beat (after warm-up) is a
	// dictionary hit with a weight-1 codeword. Flipping the one wire that
	// toggled (a receiver-latch upset) suppresses the codeword — it aliases
	// to the valid all-zero LAST code, so the decoder silently emits the
	// previous value at the upset beat. One beat later the decoder diffs
	// the healthy wire against its corrupted memory, sees the flipped bit
	// as a second toggle, and the now-weight-2 vector trips validation:
	// transition coding gives next-beat detection of latch upsets.
	win, _ := NewWindow(32, 8, 1)
	trace := make([]uint64, 200)
	hot := []uint64{10, 20, 30, 40}
	for i := range trace {
		trace[i] = hot[i%len(hot)] // consecutive values always differ
	}
	// Find a hit beat and the wire it toggles by probing the encoder.
	enc := win.NewEncoder()
	prev := bus.Word(0)
	codeBeat, codeWire := -1, -1
	for i, v := range trace {
		w := enc.Encode(v)
		d := prev ^ w
		if i > 10 && bus.Weight(d) == 1 && d&bus.Mask(32) == d {
			codeBeat = i
			for b := 0; b < 32; b++ {
				if d&(1<<uint(b)) != 0 {
					codeWire = b
					break
				}
			}
			break
		}
		prev = w
	}
	if codeBeat < 0 {
		t.Fatal("no code cycle found in hot-set traffic")
	}
	diverged, panicked := driveWithUpset(t, win, trace, codeBeat, codeWire)
	if diverged != codeBeat {
		t.Fatalf("expected silent divergence at the upset beat %d, got %d", codeBeat, diverged)
	}
	if !panicked {
		t.Error("the beat after the upset should trip codeword validation")
	}

	// The complementary case: flipping an *untouched* data wire makes the
	// codeword weight 2, which is not in the window codebook — detected.
	var quietWire int
	for b := 0; b < 32; b++ {
		if b != codeWire {
			quietWire = b
			break
		}
	}
	if _, panicked := driveWithUpset(t, win, trace, codeBeat, quietWire); !panicked {
		t.Error("weight-2 corruption of a weight-1 codeword should be detected")
	}
}

func TestUpsetCorruptionPersists(t *testing.T) {
	// After an upset corrupts a dictionary insert (raw cycle), encoder and
	// decoder dictionaries disagree; later hits to the corrupted entry
	// decode wrongly even though the wires are clean again.
	win, _ := NewWindow(32, 4, 1)
	// Value 77 is inserted early (raw), then revisited much later.
	trace := make([]uint64, 0, 300)
	trace = append(trace, 77)
	for i := 0; i < 100; i++ {
		trace = append(trace, 77) // LAST hits; dictionary untouched
	}
	filler := []uint64{1, 2} // stays within 4 entries: 77 survives
	for i := 0; i < 50; i++ {
		trace = append(trace, filler[i%2])
	}
	trace = append(trace, 77) // dictionary hit on the (corrupted) entry
	// Upset beat 0: the raw insert of 77 — flip data wire 0 so the decoder
	// inserts 76.
	enc := win.NewEncoder()
	dec := win.NewDecoder()
	divergedAt := -1
	for i, v := range trace {
		w := enc.Encode(v)
		if i == 0 {
			w ^= 1
		}
		if got := dec.Decode(w); got != v && divergedAt < 0 {
			divergedAt = i
		}
	}
	if divergedAt != 0 {
		t.Fatalf("raw-cycle upset should corrupt immediately, diverged at %d", divergedAt)
	}
	// The final dictionary hit must ALSO decode wrongly: persistence.
	encB := win.NewEncoder()
	decB := win.NewDecoder()
	var lastGot, lastWant uint64
	for i, v := range trace {
		w := encB.Encode(v)
		if i == 0 {
			w ^= 1
		}
		lastGot, lastWant = decB.Decode(w), v
	}
	if lastGot == lastWant {
		t.Error("dictionary corruption healed itself — the shared-state model forbids that")
	}
}

func TestUpsetOnControlWireIsDetectable(t *testing.T) {
	// Flipping a control wire during a raw cycle can produce the illegal
	// both-control-toggled pattern, which the channel protocol detects.
	win, _ := NewWindow(32, 8, 1)
	rng := stats.NewRNG(9)
	trace := make([]uint64, 50)
	for i := range trace {
		trace[i] = rng.Uint64() & 0xFFFFFFFF // all misses: raw cycles
	}
	// Raw cycles toggle control wire 32; flipping wire 33 on the same beat
	// yields the illegal pattern.
	_, panicked := driveWithUpset(t, win, trace, 5, 33)
	if !panicked {
		t.Error("double-control-toggle upset should be detected (decoder panic)")
	}
}
