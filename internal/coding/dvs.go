package coding

import (
	"fmt"
	"math/bits"

	"buspower/internal/bus"
)

// DVSTranscoder is the DVS-style variant of the transition-ball code,
// after Kaul et al.'s "DVS for On-Chip Bus Designs Based on Timing Error
// Correction" (arXiv:0710.4679; PAPERS.md #4): the coding headroom a
// bounded-transition code buys (fewer wires switching → faster, more
// predictable settling) is spent on supply-voltage scaling instead of
// being banked as energy directly, with Razor-style double-sampling
// latches detecting the occasional timing violation and triggering a
// retransmission. The wire protocol here is the vc transition code plus
// one detection wire that carries the running parity of the data stream:
// the receiver recomputes the decoded value's parity and compares, so any
// single-wire timing error in a cycle is caught without a side channel.
//
// Voltage scaling itself never touches the coded stream — at lower Vdd
// the same bits travel, just slower and cheaper — so the transcoder is
// fully deterministic and Vdd enters only the net-energy analysis
// (energy.Analysis.WithVoltageScale), which derates wire and circuit
// energy by s² and charges the detection latches plus the analytic
// retransmission rate. For the same reason VddPct is deliberately NOT
// part of the ConfigKey: two dvs schemes differing only in Vdd produce
// identical wire streams and must share one evaluation.
type DVSTranscoder struct {
	width  int // data bits
	extra  int // redundant wires (excluding the parity wire)
	wires  int // transition-coded wires = width + extra
	radius int // per-cycle transition bound on the coded wires
	stages int // normalized adder stages (rank/unrank + parity tree)
	vddPct int // operating supply, percent of nominal (analysis-side only)
	name   string
}

// NewDVS builds a DVS-style transcoder: a vc transition code with a
// parity detection wire, operated at vddPct percent of nominal supply.
func NewDVS(width, extra, vddPct int) (*DVSTranscoder, error) {
	if extra < 1 || extra > 8 {
		return nil, fmt.Errorf("coding: dvs extra wires %d outside [1, 8]", extra)
	}
	if vddPct < 50 || vddPct > 100 {
		return nil, fmt.Errorf("coding: dvs vdd %d%% outside [50, 100]", vddPct)
	}
	wires := width + extra
	// One parity wire rides above the coded wires.
	if err := enumCheck("dvs", width, wires+1); err != nil {
		return nil, err
	}
	r, err := ballRadius(wires, 1<<uint(width))
	if err != nil {
		return nil, err
	}
	return &DVSTranscoder{
		width:  width,
		extra:  extra,
		wires:  wires,
		radius: r,
		stages: enumStages(wires) + 1,
		vddPct: vddPct,
		name:   fmt.Sprintf("dvs-%d+%d", width, extra),
	}, nil
}

// Name implements Transcoder. Vdd is analysis-side only and excluded.
func (t *DVSTranscoder) Name() string { return t.name }

// DataWidth implements Transcoder.
func (t *DVSTranscoder) DataWidth() int { return t.width }

// BusWidth returns the coded bus width including the parity wire.
func (t *DVSTranscoder) BusWidth() int { return t.wires + 1 }

// Radius returns the per-cycle transition bound on the transition-coded
// wires; the parity wire may add one more toggle (property-tested as
// radius+1 over the whole bus).
func (t *DVSTranscoder) Radius() int { return t.radius }

// Stages returns the datapath size in normalized 32-bit adder stages.
func (t *DVSTranscoder) Stages() int { return t.stages }

// VoltageScale returns the operating supply as a fraction of nominal.
func (t *DVSTranscoder) VoltageScale() float64 { return float64(t.vddPct) / 100 }

// ConfigKey implements ConfigKeyer; Vdd is excluded because it does not
// change the wire stream (see the type comment).
func (t *DVSTranscoder) ConfigKey() string {
	return fmt.Sprintf("dvs+%d/w%d", t.extra, t.width)
}

// NewEncoder implements Transcoder.
func (t *DVSTranscoder) NewEncoder() Encoder { return &dvsEncoder{t: t} }

// NewDecoder implements Transcoder.
func (t *DVSTranscoder) NewDecoder() Decoder { return &dvsDecoder{t: t} }

// gridOps mirrors the other enumerative coders.
func (t *DVSTranscoder) gridOps(cycles uint64) OpStats {
	return OpStats{
		Cycles:            cycles,
		CodeSends:         cycles,
		CounterIncrements: cycles * uint64(t.stages),
	}
}

// encodeWord maps (previous state, value) to the next full-bus state:
// the transition vector XORed onto the coded wires, and the parity wire
// (bit t.wires) set to the running parity of the data stream.
func (t *DVSTranscoder) encodeWord(state, v uint64) uint64 {
	state ^= ballUnrank(t.wires, v)
	state ^= uint64(bits.OnesCount64(v)&1) << uint(t.wires)
	return state
}

type dvsEncoder struct {
	t      *DVSTranscoder
	state  uint64
	cycles uint64
}

func (e *dvsEncoder) Encode(v uint64) bus.Word {
	e.cycles++
	e.state = e.t.encodeWord(e.state, v&uint64(bus.Mask(e.t.width)))
	return bus.Word(e.state)
}

func (e *dvsEncoder) BusWidth() int { return e.t.wires + 1 }
func (e *dvsEncoder) Reset()        { e.state, e.cycles = 0, 0 }
func (e *dvsEncoder) Ops() OpStats  { return e.t.gridOps(e.cycles) }

type dvsDecoder struct {
	t    *DVSTranscoder
	prev uint64
}

func (d *dvsDecoder) Decode(w bus.Word) uint64 {
	cur := uint64(w) & uint64(bus.Mask(d.t.wires+1))
	diff := d.prev ^ cur
	d.prev = cur
	v := ballRank(d.t.wires, diff&uint64(bus.Mask(d.t.wires)))
	// Timing-error check: the parity wire toggles exactly when the decoded
	// value has odd weight. A mismatch means a wire sampled a stale value;
	// in hardware this raises the retransmit line — here (a deterministic
	// simulation) it can only mean encoder/decoder desync, so return a
	// value outside the data range to make verification fail loudly.
	if uint64(bits.OnesCount64(v)&1) != diff>>uint(d.t.wires) {
		return ^uint64(0)
	}
	return v
}

func (d *dvsDecoder) Reset() { d.prev = 0 }

// dvsCodedMeter materializes the state stream (transition code + parity
// wire) and meters it lane-parallel — the grid fast path.
func dvsCodedMeter(t *DVSTranscoder, trace []uint64) *bus.Meter {
	mask := uint64(bus.Mask(t.width))
	coded := make([]uint64, len(trace))
	var state uint64
	for i, v := range trace {
		state = t.encodeWord(state, v&mask)
		coded[i] = state
	}
	return bus.NewSlicedTrace(t.wires+1, coded).MeterLite()
}
