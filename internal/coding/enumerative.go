package coding

import (
	"fmt"
	"math/bits"
)

// Enumerative (combinatorial-number-system) machinery shared by the
// optimal-codebook scheme families: optmem (Chee/Colbourn's optimal
// memoryless encoding), vc (the Valentini–Chiani optimal scheme),
// lowweight (their practical low-weight codes) and dvs (the Kaul-style
// voltage-scaled variant).
//
// All four map a k-bit data value to the value-th element of the Hamming
// ball around 0 on n = k + r wires, enumerated by weight and then by
// numeric value. Enumerating by weight first is what makes the codebooks
// optimal for their respective channels: low indices — and, for uniform
// data, most indices — land on low-weight words. The codebooks have 2^k
// entries, far too many to tabulate for 32-bit buses, so both directions
// run as O(n) binomial-coefficient rank/unrank arithmetic — exactly the
// adder-chain hardware the source constructions propose.

// enumMaxWires bounds the coded bus width the enumerative coders accept.
// Every ball size is at most 2^n, so n ≤ 62 keeps all rank arithmetic
// comfortably inside uint64 (and inside a bus.Word).
const enumMaxWires = 62

// binomTab[n][k] = C(n, k) for 0 ≤ k ≤ n ≤ enumMaxWires.
var binomTab = func() [][]uint64 {
	t := make([][]uint64, enumMaxWires+1)
	for n := range t {
		t[n] = make([]uint64, n+1)
		t[n][0] = 1
		for k := 1; k <= n; k++ {
			if k == n {
				t[n][k] = 1
				continue
			}
			t[n][k] = t[n-1][k-1] + t[n-1][k]
		}
	}
	return t
}()

// binom returns C(n, k), and 0 outside the triangle.
func binom(n, k int) uint64 {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	return binomTab[n][k]
}

// ballSize returns |B(n, t)| = Σ_{i=0..t} C(n, i), the number of n-bit
// words of weight at most t.
func ballSize(n, t int) uint64 {
	if t >= n {
		return 1 << uint(n)
	}
	var s uint64
	for i := 0; i <= t; i++ {
		s += binom(n, i)
	}
	return s
}

// ballRadius returns the minimal t with |B(n, t)| ≥ count — the weight
// bound of a codebook holding count words on n wires.
func ballRadius(n int, count uint64) (int, error) {
	for t := 0; t <= n; t++ {
		if ballSize(n, t) >= count {
			return t, nil
		}
	}
	return 0, fmt.Errorf("coding: %d wires cannot address %d codewords", n, count)
}

// cwUnrank returns the m-th (0-based) n-bit word of weight w in
// increasing numeric order.
func cwUnrank(n, w int, m uint64) uint64 {
	var word uint64
	for p := n - 1; p >= 0 && w > 0; p-- {
		// C(p, w) words of weight w keep bit p clear.
		if c := binom(p, w); m >= c {
			word |= 1 << uint(p)
			m -= c
			w--
		}
	}
	return word
}

// cwRank inverts cwUnrank for an n-bit word.
func cwRank(n int, word uint64) uint64 {
	var m uint64
	w := bits.OnesCount64(word)
	for p := n - 1; p >= 0 && w > 0; p-- {
		if word&(1<<uint(p)) != 0 {
			m += binom(p, w)
			w--
		}
	}
	return m
}

// ballUnrank returns the idx-th n-bit word in (weight, then numeric
// value) order: index 0 is the zero word, indices 1..C(n,1) the weight-1
// words, and so on.
func ballUnrank(n int, idx uint64) uint64 {
	w := 0
	for {
		c := binom(n, w)
		if idx < c {
			return cwUnrank(n, w, idx)
		}
		idx -= c
		w++
	}
}

// ballRank inverts ballUnrank.
func ballRank(n int, word uint64) uint64 {
	w := bits.OnesCount64(word)
	return ballSize(n, w-1) + cwRank(n, word)
}

// enumStages is the shared circuit-size model for the enumerative
// coders: an n-wire rank/unrank datapath is a chain of n conditional
// binomial-coefficient adders whose operands are up to n bits wide, so
// its switched capacitance grows ~n² — normalized here to 32-bit adder
// stages (the unit the circuit model prices as one counter increment).
// This is exactly the hardware-cost argument behind the practical
// low-weight construction: splitting the bus into g groups of n/g wires
// cuts the stage count by ~g.
func enumStages(wires int) int {
	return max(1, (wires*wires+31)/32)
}

// enumCheck validates a (data width, coded wires) pair for the
// enumerative coders.
func enumCheck(kind string, width, wires int) error {
	checkWidth(width)
	if wires > enumMaxWires {
		return fmt.Errorf("coding: %s needs %d wires, above the %d-wire bus limit", kind, wires, enumMaxWires)
	}
	if wires <= width {
		return fmt.Errorf("coding: %s with %d wires adds no redundancy over %d data bits", kind, wires, width)
	}
	return nil
}
