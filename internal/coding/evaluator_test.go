package coding

import (
	"strings"
	"testing"

	"buspower/internal/bus"
)

// evalTrace builds a deterministic value trace long enough to push sampled
// verification well past its live-checked prefix window.
func evalTrace(n int) []uint64 {
	vals := make([]uint64, n)
	v := uint64(0x9E3779B97F4A7C15)
	for i := range vals {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		switch i % 5 {
		case 0:
			vals[i] = v
		case 1:
			vals[i] = vals[max(i-1, 0)] // repeat: exercise LAST hits
		case 2:
			vals[i] = uint64(i) // low-entropy ramp
		default:
			vals[i] = v >> 32
		}
	}
	return vals
}

func evalPolicies() map[string]VerifyPolicy {
	return map[string]VerifyPolicy{
		"full":      VerifyFull,
		"sampled":   VerifySampled(0),
		"sampled:7": VerifySampled(7),
		"off":       VerifyOff,
	}
}

// TestEvaluateMatchesBuffered is the differential test for the fused
// streaming path: under every verification policy, Evaluate must produce
// a Result bit-identical to the retained two-pass EvaluateBuffered
// reference (which buffers the coded trace and always fully verifies).
func TestEvaluateMatchesBuffered(t *testing.T) {
	vals := evalTrace(3 * VerifyWindow)
	raw := MeasureRawValues(16, vals)
	for name, build := range accelConfigs() {
		tc, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var ev Evaluator
		ev.Use(tc)
		want, err := ev.EvaluateBuffered(vals, 1.5, raw)
		if err != nil {
			t.Fatalf("%s: EvaluateBuffered: %v", name, err)
		}
		for pname, policy := range evalPolicies() {
			ev.Verify = policy
			got, err := ev.Evaluate(vals, 1.5, raw)
			if err != nil {
				t.Fatalf("%s/%s: Evaluate: %v", name, pname, err)
			}
			if got.Coded.Cycles() != want.Coded.Cycles() ||
				got.Coded.Transitions() != want.Coded.Transitions() ||
				got.Coded.Couplings() != want.Coded.Couplings() ||
				got.Coded.State() != want.Coded.State() {
				t.Fatalf("%s/%s: coded meter diverged: (%d,%d,%d,%#x) != (%d,%d,%d,%#x)",
					name, pname,
					got.Coded.Cycles(), got.Coded.Transitions(), got.Coded.Couplings(), got.Coded.State(),
					want.Coded.Cycles(), want.Coded.Transitions(), want.Coded.Couplings(), want.Coded.State())
			}
			if got.RawCost() != want.RawCost() || got.CodedCost() != want.CodedCost() ||
				got.Ops != want.Ops || got.DataWidth != want.DataWidth ||
				got.CodedWidth != want.CodedWidth || got.Scheme != want.Scheme {
				t.Fatalf("%s/%s: Result diverged: %+v vs %+v", name, pname, got, want)
			}
		}
	}
}

// corruptAtTranscoder wraps a working transcoder with a decoder that corrupts
// its output at one chosen cycle, to prove each verification policy
// catches (or, for VerifyOff, deliberately ignores) real divergence.
type corruptAtTranscoder struct {
	Transcoder
	badCycle int
}

func (b *corruptAtTranscoder) NewDecoder() Decoder {
	return &corruptAtDecoder{inner: b.Transcoder.NewDecoder(), badCycle: b.badCycle}
}

type corruptAtDecoder struct {
	inner    Decoder
	badCycle int
	cycle    int
}

func (d *corruptAtDecoder) Decode(w bus.Word) uint64 {
	v := d.inner.Decode(w)
	if d.cycle == d.badCycle {
		v ^= 1
	}
	d.cycle++
	return v
}

func (d *corruptAtDecoder) Reset() {
	d.inner.Reset()
	d.cycle = 0
}

func TestVerifyPoliciesCatchDivergence(t *testing.T) {
	vals := evalTrace(4 * VerifyWindow)
	inner, err := NewWindow(16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		policy   VerifyPolicy
		badCycle int
		caught   bool
		errPart  string
	}{
		{"full-early", VerifyFull, 3, true, "cycle 3"},
		{"full-deep", VerifyFull, 3 * VerifyWindow, true, "cycle 768"},
		{"sampled-window", VerifySampled(8), 3, true, "cycle 3"},
		// Deep corruption: the live decoder is detached past the window,
		// but the end-of-trace replay drives a fresh decoder over enough
		// sampled values to reach the broken cycle again.
		{"sampled-replay", VerifySampled(8), VerifyWindow + 10, true, "replay diverged"},
		{"off-ignores", VerifyOff, 3, false, ""},
	}
	for _, c := range cases {
		var ev Evaluator
		ev.Use(&corruptAtTranscoder{Transcoder: inner, badCycle: c.badCycle})
		ev.Verify = c.policy
		_, err := ev.Evaluate(vals, 1, nil)
		if c.caught {
			if err == nil {
				t.Fatalf("%s: corrupted decoder not detected", c.name)
			}
			if !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("%s: error %q does not mention %q", c.name, err, c.errPart)
			}
		} else if err != nil {
			t.Fatalf("%s: VerifyOff ran the decoder: %v", c.name, err)
		}
	}
}

// TestEvaluatorUseReusesOnEqualConfig pins the identity rule: Use keys on
// the canonical configuration, so a semantically identical transcoder
// rebuilt by a sweep's inner loop adopts the existing encoder/decoder and
// scratch instead of reallocating, while any config change rebuilds.
func TestEvaluatorUseReusesOnEqualConfig(t *testing.T) {
	build := func(divide int) Transcoder {
		tc, err := NewContext(ContextConfig{Width: 16, TableSize: 8, ShiftEntries: 4, DividePeriod: divide, Lambda: 1})
		if err != nil {
			t.Fatal(err)
		}
		return tc
	}
	var ev Evaluator
	ev.Use(build(64))
	enc := ev.enc
	ev.Use(build(64)) // distinct instance, identical config
	if ev.enc != enc {
		t.Fatalf("Use rebuilt the encoder for an identical config")
	}
	// Same Name() but different divide period: must rebuild (the context
	// coder's name omits the divide period — the original motivation for
	// ConfigKey over Name).
	a, b := build(64), build(32)
	if a.Name() != b.Name() {
		t.Fatalf("test premise broken: names differ (%q vs %q)", a.Name(), b.Name())
	}
	ev.Use(b)
	if ev.enc == enc {
		t.Fatalf("Use kept the encoder across a divide-period change")
	}
}

func TestConfigKeySeparatesConfigs(t *testing.T) {
	mk := func(f func() (Transcoder, error)) Transcoder {
		tc, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return tc
	}
	pairsDistinct := [][2]Transcoder{
		{mk(func() (Transcoder, error) { return NewWindow(16, 8, 1) }),
			mk(func() (Transcoder, error) { return NewWindow(16, 8, 2) })}, // λ differs
		{mk(func() (Transcoder, error) { return NewWindow(16, 8, 1) }),
			mk(func() (Transcoder, error) { return NewWindow(32, 8, 1) })}, // width differs
		{mk(func() (Transcoder, error) { return NewStride(16, 2, 1) }),
			mk(func() (Transcoder, error) { return NewStride(16, 2, 3) })}, // assumed λ differs
		{mk(func() (Transcoder, error) { return NewBusInvert(16, 0) }),
			mk(func() (Transcoder, error) { return NewBusInvert(32, 0) })},
	}
	for i, p := range pairsDistinct {
		if ConfigKey(p[0]) == ConfigKey(p[1]) {
			t.Fatalf("pair %d: distinct configs share key %q", i, ConfigKey(p[0]))
		}
	}
	for name, build := range accelConfigs() {
		a, b := mk(build), mk(build)
		if ConfigKey(a) != ConfigKey(b) {
			t.Fatalf("%s: rebuilt identical transcoder changed key: %q vs %q", name, ConfigKey(a), ConfigKey(b))
		}
	}
}

func TestParseVerifyPolicyRoundTrip(t *testing.T) {
	for _, s := range []string{"full", "off", "sampled:64", "sampled:7"} {
		p, err := ParseVerifyPolicy(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if p.String() != s {
			t.Fatalf("%q round-tripped to %q", s, p.String())
		}
	}
	if p, err := ParseVerifyPolicy("sampled"); err != nil || p != VerifySampled(DefaultVerifyEvery) {
		t.Fatalf("bare \"sampled\" parsed to %v, %v", p, err)
	}
	for _, s := range []string{"", "sometimes", "sampled:0", "sampled:-3", "sampled:x"} {
		if _, err := ParseVerifyPolicy(s); err == nil {
			t.Fatalf("%q: expected parse error", s)
		}
	}
}

// TestWindowEncodeStreamMatchesEncode pins the window encoder's bulk
// encodeStream loop to the per-cycle Encode path: identical coded-bus
// metering, identical OpStats, and identical dictionary state afterwards
// (proven by interleaving bulk segments with single Encode calls). Covers
// both find paths (linear scan and hash index) via the register size.
func TestWindowEncodeStreamMatchesEncode(t *testing.T) {
	vals := evalTrace(2000)
	for _, entries := range []int{3, 8, windowIndexMinEntries + 8} {
		tc, err := NewWindow(16, entries, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref := tc.NewEncoder().(*windowEncoder)
		blk := tc.NewEncoder().(*windowEncoder)
		refM := bus.NewMeterLite(ref.BusWidth())
		blkM := bus.NewMeterLite(blk.BusWidth())
		refSt := refM.Stream()
		blkSt := blkM.Stream()
		// Mixed segment lengths, including empty ones and single-value
		// stretches handled by Encode, to cross every boundary case.
		for i, seg := 0, 0; i < len(vals); seg++ {
			n := seg % 7 // 0..6
			if i+n > len(vals) {
				n = len(vals) - i
			}
			blk.encodeStream(vals[i:i+n], &blkSt)
			for _, v := range vals[i : i+n] {
				refSt.Record(ref.Encode(v))
			}
			i += n
			if i < len(vals) && seg%3 == 0 { // interleave a per-cycle call
				blkSt.Record(blk.Encode(vals[i]))
				refSt.Record(ref.Encode(vals[i]))
				i++
			}
		}
		refSt.Flush()
		blkSt.Flush()
		if refM.Cycles() != blkM.Cycles() || refM.Transitions() != blkM.Transitions() ||
			refM.Couplings() != blkM.Couplings() || refM.State() != blkM.State() {
			t.Fatalf("entries=%d: bulk metering diverged from per-cycle", entries)
		}
		if ref.Ops() != blk.Ops() {
			t.Fatalf("entries=%d: OpStats diverged: %+v vs %+v", entries, blk.Ops(), ref.Ops())
		}
	}
}

// TestEvaluateStreamingAllocs is the allocation regression guard for the
// fused streaming path: after the first (warming) call, Evaluate must not
// allocate under any verification policy — the coded meter, the sample
// buffer and the replay codec pair are all reused.
func TestEvaluateStreamingAllocs(t *testing.T) {
	vals := evalTrace(3 * VerifyWindow)
	raw := MeasureRawValues(16, vals)
	for name, build := range accelConfigs() {
		tc, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for pname, policy := range evalPolicies() {
			var ev Evaluator
			ev.Use(tc)
			ev.Verify = policy
			if _, err := ev.Evaluate(vals, 1, raw); err != nil { // warm scratch
				t.Fatalf("%s/%s: %v", name, pname, err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := ev.Evaluate(vals, 1, raw); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s/%s: Evaluate allocates %v times per run, want 0", name, pname, allocs)
			}
		}
	}
}
