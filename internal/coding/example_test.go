package coding_test

import (
	"fmt"

	"buspower/internal/coding"
)

// Transcoding a bus trace: build a scheme, evaluate it against the
// un-encoded baseline, and read off the activity it removed. Evaluate
// also proves the decoder reconstructs every value exactly.
func ExampleEvaluate() {
	trace := []uint64{100, 100, 200, 100, 300, 200, 100, 100, 200, 300}
	win, err := coding.NewWindow(32, 8, 1)
	if err != nil {
		panic(err)
	}
	res, err := coding.Evaluate(win, trace, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scheme: %s\n", res.Scheme)
	fmt.Printf("bus: %d -> %d wires\n", res.DataWidth, res.CodedWidth)
	fmt.Printf("coded beats cheaper: %v\n", res.Coded.Transitions() < res.Raw.Transitions())
	// Output:
	// scheme: window-8
	// bus: 32 -> 34 wires
	// coded beats cheaper: true
}

// A LAST-value streak costs nothing: the all-zero codeword holds every
// wire still.
func ExampleNewWindow() {
	win, _ := coding.NewWindow(16, 4, 1)
	enc := win.NewEncoder()
	first := enc.Encode(0xBEEF) // miss: raw send
	second := enc.Encode(0xBEEF)
	third := enc.Encode(0xBEEF)
	fmt.Println("repeat beats move the bus:", first != second || second != third)
	// Output:
	// repeat beats move the bus: false
}
