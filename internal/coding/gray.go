package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// GrayTranscoder applies reflected binary (Gray) coding to the bus — the
// classic technique for instruction/address buses, where consecutive
// values usually differ by small increments: a +1 step in Gray code
// toggles exactly one wire, and a +2^k step toggles two. It is stateless
// and adds no wires, making it the cheapest possible encoder, but it does
// nothing for value (data) traffic — which is why this repository includes
// it as an address-bus baseline alongside the workzone coder.
type GrayTranscoder struct {
	width int
	name  string
}

// NewGray builds a Gray-code transcoder.
func NewGray(width int) (*GrayTranscoder, error) {
	checkWidth(width)
	return &GrayTranscoder{width: width, name: fmt.Sprintf("gray-%d", width)}, nil
}

// Name implements Transcoder.
func (t *GrayTranscoder) Name() string { return t.name }

// DataWidth implements Transcoder.
func (t *GrayTranscoder) DataWidth() int { return t.width }

// NewEncoder implements Transcoder.
func (t *GrayTranscoder) NewEncoder() Encoder { return &grayEncoder{width: t.width} }

// NewDecoder implements Transcoder.
func (t *GrayTranscoder) NewDecoder() Decoder { return &grayDecoder{width: t.width} }

// GrayEncode returns the reflected-binary code of v.
func GrayEncode(v uint64) uint64 { return v ^ (v >> 1) }

// GrayDecode inverts GrayEncode.
func GrayDecode(g uint64) uint64 {
	v := g
	for shift := uint(1); shift < 64; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}

type grayEncoder struct {
	width int
}

func (e *grayEncoder) Encode(v uint64) bus.Word {
	return bus.Word(GrayEncode(v)) & bus.Mask(e.width)
}
func (e *grayEncoder) BusWidth() int { return e.width }
func (e *grayEncoder) Reset()        {}

type grayDecoder struct {
	width int
}

func (d *grayDecoder) Decode(w bus.Word) uint64 {
	return GrayDecode(uint64(w)) & uint64(bus.Mask(d.width))
}
func (d *grayDecoder) Reset() {}
