package coding

import (
	"testing"
	"testing/quick"

	"buspower/internal/bus"
	"buspower/internal/stats"
)

func TestGrayRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		return GrayDecode(GrayEncode(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraySingleToggleOnIncrement(t *testing.T) {
	for v := uint64(0); v < 10000; v++ {
		g1, g2 := GrayEncode(v), GrayEncode(v+1)
		if bus.Weight(bus.Word(g1^g2)) != 1 {
			t.Fatalf("gray(%d) -> gray(%d) toggles %d bits", v, v+1, bus.Weight(bus.Word(g1^g2)))
		}
	}
}

func TestGrayTranscoderRoundTrip(t *testing.T) {
	g, err := NewGray(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	trace := make([]uint64, 3000)
	for i := range trace {
		trace[i] = rng.Uint64() & 0xFFFFFFFF
	}
	if _, err := Evaluate(g, trace, 1); err != nil {
		t.Error(err)
	}
}

func TestGrayBeatsRawOnSequentialAddresses(t *testing.T) {
	trace := make([]uint64, 4096)
	for i := range trace {
		trace[i] = uint64(0x8000 + i) // +1 stride: gray's best case
	}
	g, _ := NewGray(32)
	res := MustEvaluate(g, trace, 1)
	if res.EnergyRemoved() <= 0.3 {
		t.Errorf("gray coding removed only %.3f on a +1 sweep", res.EnergyRemoved())
	}
	// Binary counting costs ~2 transitions per increment on average
	// (carries); gray costs exactly 1, so transitions should halve.
	if ratio := float64(res.Coded.Transitions()) / float64(res.Raw.Transitions()); ratio > 0.6 {
		t.Errorf("gray transitions ratio %.3f, want ~0.5", ratio)
	}
}

func TestGrayNeutralOnRandom(t *testing.T) {
	// On random data gray coding is a permutation of values: expected
	// transition counts are unchanged (within noise).
	rng := stats.NewRNG(3)
	trace := make([]uint64, 20000)
	for i := range trace {
		trace[i] = rng.Uint64() & 0xFFFFFFFF
	}
	g, _ := NewGray(32)
	res := MustEvaluate(g, trace, 1)
	if r := res.EnergyRemoved(); r > 0.02 || r < -0.02 {
		t.Errorf("gray coding should be neutral on random traffic, removed %.4f", r)
	}
}

func TestGrayAddsNoWires(t *testing.T) {
	g, _ := NewGray(24)
	if g.NewEncoder().BusWidth() != 24 {
		t.Error("gray coding must not widen the bus")
	}
}
