package coding

import (
	"fmt"
	"sync"
	"sync/atomic"

	"buspower/internal/bus"
)

// Grid evaluation: one trace against a whole scheme/λ grid in a single
// grouped pass. The savings stack in three layers:
//
//   - λ fan-out: activity meters are Λ-independent (Λ enters only when a
//     Result's Cost is read), so grid cells that share a transcoder
//     configuration (ConfigKey) are encoded once and read at every
//     requested Λ. Figure 15's λ0/λ1 families collapse from one encode
//     per (assumed, actual) pair to one per assumed Λ.
//   - shared stride tape: every stride bank size replays one prediction
//     tape computed in a single pass (see strideTape).
//   - bit-sliced stateless coders: raw, Gray and spatial cells are
//     metered lane-parallel on a transposed trace (bus.SlicedTrace) —
//     64 cycles per machine word — instead of cycle-by-cycle.
//
// Everything else runs through the scalar Evaluator, still profiting
// from the ConfigKey dedupe. Results are bit-identical to evaluating
// each cell individually (differential-tested by grid_test.go).

// GridCell is one evaluation request: a transcoder read at coupling
// ratio Lambda.
type GridCell struct {
	T      Transcoder
	Lambda float64
}

// evaluatedCycles counts (trace cycle × grid cell) units delivered by
// Evaluate/EvaluateGrid process-wide. Grouped passes deliver more cycles
// than they execute — that efficiency is exactly what the bench suite's
// throughput line measures.
var evaluatedCycles atomic.Uint64

// EvaluatedCycles returns the process-wide count of evaluation cycles
// delivered: one unit per trace cycle per evaluated grid cell (a plain
// Evaluate counts as a one-cell grid). The bench harness differences
// this around a suite pass to report suite-level throughput.
func EvaluatedCycles() uint64 { return evaluatedCycles.Load() }

// GridOptions customizes a grid evaluation's shared inputs.
type GridOptions struct {
	// Sliced, when non-nil, supplies the bit-sliced transposition of
	// the trace at the given width — exactly what
	// bus.NewSlicedTrace(width, trace) would build. Callers holding a
	// transposition cache (the experiments layer's sliced-plane memo)
	// plug it in here so repeated grids over the same named trace stop
	// re-transposing it; a nil return falls back to building one.
	Sliced func(width int) *bus.SlicedTrace
}

// EvaluateGrid evaluates every cell against one trace. raw, when
// non-nil, is a pre-measured raw-bus meter (as from MeasureRawValues)
// for cells whose data width matches; other widths are measured here
// once each. verify applies to every cell exactly as in
// Evaluator.Evaluate; under VerifyFull the fast paths (which cannot run
// a live decoder over the whole stream) step aside and every unique
// configuration runs the scalar full-verify path, still deduplicated.
//
// Results are cell-aligned. Cells sharing a configuration share Raw and
// Coded meter instances; callers that mutate or Reset a meter must
// Clone it first.
func EvaluateGrid(cells []GridCell, trace []uint64, raw *bus.Meter, verify VerifyPolicy) ([]Result, error) {
	return EvaluateGridOpts(cells, trace, raw, verify, GridOptions{})
}

// EvaluateGridOpts is EvaluateGrid with options.
func EvaluateGridOpts(cells []GridCell, trace []uint64, raw *bus.Meter, verify VerifyPolicy, opts GridOptions) ([]Result, error) {
	var sc gridScratch
	return sc.evaluate(cells, trace, raw, verify, opts)
}

// evaluate is the grid engine body. sc persists Evaluator scratch and
// window-family arenas between calls (EvaluateBatch streams a whole
// suite through one scratch); a zero gridScratch is ready to use.
func (sc *gridScratch) evaluate(cells []GridCell, trace []uint64, raw *bus.Meter, verify VerifyPolicy, opts GridOptions) ([]Result, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	results := make([]Result, len(cells))
	type group struct {
		key   string
		t     Transcoder
		cells []int
	}
	groups := make(map[string]*group, len(cells))
	order := make([]*group, 0, len(cells))
	for i := range cells {
		t := cells[i].T
		if t == nil {
			return nil, fmt.Errorf("coding: grid cell %d has no transcoder", i)
		}
		key := ConfigKey(t)
		g := groups[key]
		if g == nil {
			g = &group{key: key, t: t}
			groups[key] = g
			order = append(order, g)
		}
		g.cells = append(g.cells, i)
	}

	rawMeters := make(map[int]*bus.Meter, 1)
	if raw != nil {
		rawMeters[raw.Width()] = raw
	}
	rawFor := func(width int) *bus.Meter {
		if m := rawMeters[width]; m != nil {
			return m
		}
		m := MeasureRawValues(width, trace)
		rawMeters[width] = m
		return m
	}

	var sliced map[int]*bus.SlicedTrace
	slicedFor := func(width int) *bus.SlicedTrace {
		if s := sliced[width]; s != nil {
			return s
		}
		if sliced == nil {
			sliced = make(map[int]*bus.SlicedTrace, 1)
		}
		var s *bus.SlicedTrace
		if opts.Sliced != nil {
			s = opts.Sliced(width)
		}
		if s == nil {
			s = bus.NewSlicedTrace(width, trace)
		}
		sliced[width] = s
		return s
	}

	// Window families: configurations differing only in register size
	// share one encode pass (see batch.go). Results land keyed by the
	// member's ConfigKey and are picked up by the per-group loop below.
	var famRes map[string]famResult
	if verify.mode != verifyFull {
		type famGroup struct {
			ts   []*WindowTranscoder
			keys []string
		}
		var byFam map[string]*famGroup
		var famOrder []string
		for _, g := range order {
			wt, ok := g.t.(*WindowTranscoder)
			if !ok {
				continue
			}
			fk := fmt.Sprintf("w%d/l%g", wt.width, wt.lambda)
			if byFam == nil {
				byFam = make(map[string]*famGroup, 1)
			}
			fg := byFam[fk]
			if fg == nil {
				fg = &famGroup{}
				byFam[fk] = fg
				famOrder = append(famOrder, fk)
			}
			fg.ts = append(fg.ts, wt)
			fg.keys = append(fg.keys, g.key)
		}
		for _, fk := range famOrder {
			fg := byFam[fk]
			sizes := famSizes(fg.ts)
			if len(fg.ts) < 2 || sizes == nil {
				continue // singleton (or aliased sizes): scalar path is as good
			}
			sig := fk + fmt.Sprint(sizes)
			fam := sc.family(sig, fg.ts)
			rs, err := fam.run(trace, verify)
			if err != nil {
				return nil, err
			}
			if famRes == nil {
				famRes = make(map[string]famResult, len(fam.ts))
			}
			for j, t := range fam.ts {
				famRes[ConfigKey(t)] = rs[j]
			}
		}
	}

	// One shared stride tape per data width, deep enough for the largest
	// bank in the grid.
	var tapes map[int]*strideTape
	if verify.mode != verifyFull {
		var maxK map[int]int
		for _, g := range order {
			if st, ok := g.t.(*StrideTranscoder); ok && st.strides <= tapeMaxStrides && st.strides > maxK[st.width] {
				if maxK == nil {
					maxK = make(map[int]int, 1)
				}
				maxK[st.width] = st.strides
			}
		}
		if maxK != nil {
			tapes = make(map[int]*strideTape, len(maxK))
			for w, k := range maxK {
				tapes[w] = sharedStrideTape(w, k, trace)
			}
		}
	}

	ev := &sc.ev
	ev.Verify = verify
	n := uint64(len(trace))
	for _, g := range order {
		width := g.t.DataWidth()
		rawM := rawFor(width)
		var coded *bus.Meter
		var ops OpStats
		var codedWidth int
		fast := false
		if fr, ok := famRes[g.key]; ok {
			coded, ops, codedWidth, fast = fr.coded, fr.ops, width+2, true
		}
		if !fast && verify.mode != verifyFull {
			switch t := g.t.(type) {
			case *StrideTranscoder:
				if tp := tapes[t.width]; tp != nil && t.strides <= tp.maxK {
					m, o, err := tp.evaluate(t, trace, verify)
					if err != nil {
						return nil, err
					}
					coded, ops, codedWidth, fast = m, o, t.width+2, true
				}
			case *RawTranscoder:
				if err := verifyStatelessSampled(t, trace, verify); err != nil {
					return nil, err
				}
				coded = slicedFor(width).MeterLite()
				codedWidth, fast = width, true
			case *GrayTranscoder:
				if err := verifyStatelessSampled(t, trace, verify); err != nil {
					return nil, err
				}
				coded = slicedFor(width).Gray().MeterLite()
				codedWidth, fast = width, true
			case *SpatialTranscoder:
				if err := verifyStatelessSampled(t, trace, verify); err != nil {
					return nil, err
				}
				coded = spatialCodedMeter(t, trace)
				codedWidth, fast = 1<<uint(t.width), true
			// The enumerative coders (optmem and the prefix-XOR transition
			// codes) materialize their coded streams and meter lane-parallel;
			// their op counts are formulaic (see gridOps), so the fast path
			// reproduces the scalar encoder's stats exactly.
			case *OptMemTranscoder:
				if err := verifyStatelessSampled(t, trace, verify); err != nil {
					return nil, err
				}
				coded, ops = optMemCodedMeter(t, trace), t.gridOps(n)
				codedWidth, fast = t.wires, true
			case *VCTranscoder:
				if err := verifyStatelessSampled(t, trace, verify); err != nil {
					return nil, err
				}
				coded, ops = vcCodedMeter(t, trace), t.gridOps(n)
				codedWidth, fast = t.wires, true
			case *LowWeightTranscoder:
				if err := verifyStatelessSampled(t, trace, verify); err != nil {
					return nil, err
				}
				coded, ops = lowWeightCodedMeter(t, trace), t.gridOps(n)
				codedWidth, fast = t.wires, true
			case *DVSTranscoder:
				if err := verifyStatelessSampled(t, trace, verify); err != nil {
					return nil, err
				}
				coded, ops = dvsCodedMeter(t, trace), t.gridOps(n)
				codedWidth, fast = t.wires+1, true
			}
		}
		if !fast {
			ev.Use(g.t)
			res, err := ev.Evaluate(trace, cells[g.cells[0]].Lambda, rawM)
			if err != nil {
				return nil, err
			}
			// Detach from the Evaluator's reused meter before the next group.
			coded = res.Coded.Clone()
			ops = res.Ops
			codedWidth = res.CodedWidth
			evaluatedCycles.Add(n * uint64(len(g.cells)-1)) // Evaluate counted one cell
		} else {
			evaluatedCycles.Add(n * uint64(len(g.cells)))
		}
		name := g.t.Name()
		for _, ci := range g.cells {
			results[ci] = Result{
				Scheme:     name,
				DataWidth:  width,
				CodedWidth: codedWidth,
				Raw:        rawM,
				Coded:      coded,
				Lambda:     cells[ci].Lambda,
				Ops:        ops,
			}
		}
	}
	return results, nil
}

// tapeMaxStrides bounds the bank depth a uint8 tape record can encode;
// deeper banks (which no experiment uses) fall back to the scalar path.
const tapeMaxStrides = 250

// tapeRawRec marks a cycle no stride predicted.
const tapeRawRec = 0xFF

// strideTape is the shared prediction record behind the grid's stride
// fan-out. The stride history ring is pushed unconditionally with every
// masked input value, so its contents — and therefore each stride-k
// prediction p_k(i) = (2·v[i-k] − v[i-2k]) mod 2^width, zero-padded
// before the trace starts — are identical across all bank sizes K. One
// pass records, per cycle, the minimal stride whose prediction matches
// (0 for a LAST-value hit, tapeRawRec for none); a size-K bank then
// replays the tape: record m = 0 sends code 0, 1 ≤ m ≤ K sends the
// bank's code for stride m (probing m predictors on the way), and
// anything deeper falls back to raw after probing all K.
type strideTape struct {
	width int
	maxK  int
	recs  []uint8
	hist  []uint64 // hist[0] = LAST hits, hist[m] = cycles with minimal stride m
	raws  uint64   // cycles with no match at any stride ≤ maxK
}

// tapeCache memoizes stride tapes across grid evaluations: the li-suite
// experiments replay the same handful of cached traces through many
// grids, and each rebuild costs a full prediction pass. An entry keyed
// on the trace's backing array is sound because the entry itself pins
// that array — no other trace can occupy its address while the key
// lives. A tape built deep enough serves every shallower bank (the same
// replay contract the in-grid sharing relies on), so lookups accept any
// entry with maxK at least the requested depth.
type tapeCacheEntry struct {
	width int
	trace []uint64 // pins the backing array; its address identifies the trace
	tape  *strideTape
}

var (
	tapeCacheMu sync.Mutex
	tapeCache   []tapeCacheEntry
)

// tapeCacheCap bounds the cache; on overflow the whole cache is dropped
// (entries are cheap to rebuild, and steady state holds one entry per
// cached trace × width).
const tapeCacheCap = 64

func sharedStrideTape(width, maxK int, trace []uint64) *strideTape {
	if len(trace) == 0 {
		return buildStrideTape(width, maxK, trace)
	}
	head := &trace[0]
	n := len(trace)
	tapeCacheMu.Lock()
	for i := range tapeCache {
		e := &tapeCache[i]
		if e.width == width && len(e.trace) == n && &e.trace[0] == head && e.tape.maxK >= maxK {
			tp := e.tape
			tapeCacheMu.Unlock()
			return tp
		}
	}
	tapeCacheMu.Unlock()
	tp := buildStrideTape(width, maxK, trace)
	tapeCacheMu.Lock()
	for i := range tapeCache {
		e := &tapeCache[i]
		if e.width == width && len(e.trace) == n && &e.trace[0] == head {
			// A deeper tape supersedes a shallower one for the same trace.
			if e.tape.maxK < maxK {
				e.tape = tp
			}
			tapeCacheMu.Unlock()
			return tp
		}
	}
	if len(tapeCache) >= tapeCacheCap {
		tapeCache = nil
	}
	tapeCache = append(tapeCache, tapeCacheEntry{width: width, trace: trace, tape: tp})
	tapeCacheMu.Unlock()
	return tp
}

// ClearStrideTapeCache drops every memoized stride tape (the bench
// harness's memo-cold phases, via experiments.ClearEvalMemo).
func ClearStrideTapeCache() {
	tapeCacheMu.Lock()
	tapeCache = nil
	tapeCacheMu.Unlock()
}

func buildStrideTape(width, maxK int, trace []uint64) *strideTape {
	tp := &strideTape{
		width: width,
		maxK:  maxK,
		recs:  make([]uint8, len(trace)),
		hist:  make([]uint64, maxK+1),
	}
	mask := uint64(bus.Mask(width))
	var prev uint64
	for i, v := range trace {
		v &= mask
		if v == prev {
			tp.hist[0]++
			prev = v
			continue // recs[i] already 0
		}
		rec := uint8(tapeRawRec)
		for k := 1; k <= maxK; k++ {
			var a, b uint64
			if j := i - k; j >= 0 {
				a = trace[j] & mask
			}
			if j := i - 2*k; j >= 0 {
				b = trace[j] & mask
			}
			if (a+(a-b))&mask == v {
				rec = uint8(k)
				break
			}
		}
		if rec == tapeRawRec {
			tp.raws++
		} else {
			tp.hist[rec]++
		}
		tp.recs[i] = rec
		prev = v
	}
	return tp
}

// evaluate replays the tape as a size-t.strides bank, producing the
// coded-bus meter and OpStats bit-identical to the scalar
// strideEncoder run (grid_test.go differentials).
func (tp *strideTape) evaluate(t *StrideTranscoder, trace []uint64, verify VerifyPolicy) (*bus.Meter, OpStats, error) {
	ch := newChannel(t.width, t.lambda)
	coded := bus.NewMeterLite(ch.busWidth())
	stream := coded.Stream()
	st := &stream
	st.Record(0)
	mask := uint64(ch.dataMask)
	K := uint8(t.strides)
	codes := make([]bus.Word, t.strides+1)
	for m := 1; m <= t.strides; m++ {
		codes[m] = t.cb.Code(m)
	}
	recs := tp.recs
	n := len(trace)
	replay := func(i int) bus.Word {
		rec := recs[i]
		switch {
		case rec == 0:
			return ch.sendCode(0)
		case rec <= K:
			return ch.sendCode(codes[rec])
		default:
			w, _ := ch.sendRaw(trace[i] & mask)
			return w
		}
	}
	head := 0
	if verify.mode == verifySampled {
		head = min(VerifyWindow, n)
		dec := t.NewDecoder()
		for i := 0; i < head; i++ {
			w := replay(i)
			v := trace[i] & mask
			if got := dec.Decode(w); got != v {
				return nil, OpStats{}, fmt.Errorf("coding: %s decoder diverged at cycle %d: sent %#x, decoded %#x", t.Name(), i, v, got)
			}
			st.Record(w)
		}
	}
	ch.beginBlock()
	for i := head; i < n; i++ {
		rec := recs[i]
		switch {
		case rec == 0:
			// LAST hit: the all-zero code moves nothing.
		case rec <= K:
			ch.sendCode(codes[rec])
		default:
			ch.sendRaw(trace[i] & mask)
		}
	}
	st.AddBlock(uint64(n-head), ch.accT, ch.accC, ch.state)
	st.Flush()
	if verify.mode == verifySampled {
		if err := replaySampledFresh(t, trace, verify); err != nil {
			return nil, OpStats{}, err
		}
	}
	// OpStats from the tape's minimal-stride histogram: a size-K bank
	// code-sends every minimal stride ≤ K (probing m predictors), raw-sends
	// the rest (probing all K), and LAST hits probe nothing.
	ops := OpStats{Cycles: uint64(n), LastHits: tp.hist[0]}
	var codeSends, probes uint64
	for m := 1; m <= t.strides; m++ {
		codeSends += tp.hist[m]
		probes += tp.hist[m] * uint64(m)
	}
	rawSends := tp.raws
	for m := t.strides + 1; m <= tp.maxK; m++ {
		rawSends += tp.hist[m]
	}
	ops.CodeSends = codeSends
	ops.RawSends = rawSends
	ops.PartialMatches = probes + rawSends*uint64(t.strides)
	return coded, ops, nil
}

// spatialCodedMeter produces the spatial coder's coded-bus meter by
// materializing its one-toggle-per-cycle wire states (a trivial prefix
// XOR) and metering them lane-parallel on the 2^width-wire sliced bus.
func spatialCodedMeter(t *SpatialTranscoder, trace []uint64) *bus.Meter {
	mask := uint64(bus.Mask(t.width))
	coded := make([]uint64, len(trace))
	var state uint64
	for i, v := range trace {
		state ^= 1 << uint(v&mask)
		coded[i] = state
	}
	return bus.NewSlicedTrace(1<<uint(t.width), coded).MeterLite()
}

// verifyStatelessSampled replicates Evaluate's sampled-verification
// ritual for the stateless fast paths: the first VerifyWindow cycles
// round-trip through a live encoder/decoder pair (fresh from reset —
// which for these coders sees exactly the words the evaluation
// produces), then every every-th value plus the trailing window replays
// through a second fresh pair.
func verifyStatelessSampled(t Transcoder, trace []uint64, verify VerifyPolicy) error {
	if verify.mode != verifySampled {
		return nil
	}
	mask := uint64(bus.Mask(t.DataWidth()))
	enc, dec := t.NewEncoder(), t.NewDecoder()
	head := min(VerifyWindow, len(trace))
	for i := 0; i < head; i++ {
		v := trace[i] & mask
		w := enc.Encode(v)
		if got := dec.Decode(w); got != v {
			return fmt.Errorf("coding: %s decoder diverged at cycle %d: sent %#x, decoded %#x", t.Name(), i, v, got)
		}
	}
	return replaySampledFresh(t, trace, verify)
}

// replaySampledFresh collects the sampled-verification value set —
// every every-th value past the head window plus the trace's last
// VerifyWindow values — and round-trips it through a fresh
// encoder/decoder pair, exactly as Evaluator.replaySample does.
func replaySampledFresh(t Transcoder, trace []uint64, verify VerifyPolicy) error {
	mask := uint64(bus.Mask(t.DataWidth()))
	n := len(trace)
	every := verify.every
	head := min(VerifyWindow, n)
	tail := max(n-VerifyWindow, head)
	var sample []uint64
	for i := (head + every - 1) / every * every; i < tail; i += every {
		sample = append(sample, trace[i]&mask)
	}
	for i := tail; i < n; i++ {
		sample = append(sample, trace[i]&mask)
	}
	if len(sample) == 0 {
		return nil
	}
	venc, vdec := t.NewEncoder(), t.NewDecoder()
	for j, v := range sample {
		w := venc.Encode(v)
		if got := vdec.Decode(w); got != v {
			return fmt.Errorf("coding: %s sampled-verification replay diverged at sample %d: sent %#x, decoded %#x", t.Name(), j, v, got)
		}
	}
	return nil
}
