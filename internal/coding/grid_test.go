package coding

import (
	"math/rand"
	"testing"

	"buspower/internal/bus"
)

// gridTestTrace mixes the regimes the schemes care about: strided runs,
// repeats, dictionary-friendly reuse and noise.
func gridTestTrace(width, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(bus.Mask(width))
	vals := make([]uint64, n)
	v := uint64(0)
	stride := uint64(1)
	for i := range vals {
		switch rng.Intn(10) {
		case 0, 1, 2: // strided run
			v += stride
		case 3: // new stride
			stride = uint64(rng.Intn(9) + 1)
			v += stride
		case 4, 5: // repeat
		case 6, 7: // recent value (dictionary hit)
			if i > 4 {
				v = vals[i-1-rng.Intn(4)]
			}
		default: // noise
			v = rng.Uint64()
		}
		vals[i] = v & mask
	}
	return vals
}

// gridTestCells builds a representative scheme/λ grid: stride banks of
// several depths, stateless coders, inversion families with λ fan-out,
// and dictionary schemes that exercise the scalar fallback.
func gridTestCells(t *testing.T, width int) []GridCell {
	t.Helper()
	var cells []GridCell
	mk := func(tc Transcoder, err error, lambdas ...float64) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lambdas {
			cells = append(cells, GridCell{T: tc, Lambda: l})
		}
	}
	for _, k := range []int{1, 2, 3, 5, 8} {
		st, err := NewStride(width, k, 1)
		mk(st, err, 1)
	}
	st25, err := NewStride(width, 2, 2.5) // fractional assumed Λ: float cost path
	mk(st25, err, 2.5)
	mk(NewRaw(width), nil, 1, 2) // λ fan-out over one config
	g, err := NewGray(width)
	mk(g, err, 1)
	sp, err := NewSpatial(4)
	mk(sp, err, 1)
	pats, err := DefaultInversionPatterns(width, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, assumed := range []float64{0, 1} {
		inv, err := NewInversion(width, pats, assumed)
		mk(inv, err, 0.5, 1, 2) // shared config read at three Λ
	}
	w, err := NewWindow(width, 8, 1)
	mk(w, err, 1)
	ctx, err := NewContext(ContextConfig{Width: width, TableSize: 16, ShiftEntries: 4, DividePeriod: 64, Lambda: 1})
	mk(ctx, err, 1)
	// The optimal-codebook families: materialized fast paths with
	// formulaic ops, λ fan-out over one config for vc.
	om, err := NewOptMem(width, 2)
	mk(om, err, 1)
	vc, err := NewVC(width, 2)
	mk(vc, err, 1, 2)
	lw, err := NewLowWeight(width, 4, 1)
	mk(lw, err, 1)
	dvs, err := NewDVS(width, 2, 80)
	mk(dvs, err, 1)
	return cells
}

func compareGridResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if got.Scheme != want.Scheme || got.DataWidth != want.DataWidth || got.CodedWidth != want.CodedWidth || got.Lambda != want.Lambda {
		t.Fatalf("%s: header mismatch: got %q/%d/%d/λ%g want %q/%d/%d/λ%g",
			label, got.Scheme, got.DataWidth, got.CodedWidth, got.Lambda,
			want.Scheme, want.DataWidth, want.CodedWidth, want.Lambda)
	}
	cmp := func(part string, a, b *bus.Meter) {
		t.Helper()
		if a.Cycles() != b.Cycles() || a.Transitions() != b.Transitions() || a.Couplings() != b.Couplings() || a.State() != b.State() {
			t.Errorf("%s %s meter: got cycles/trans/coup/state %d/%d/%d/%#x want %d/%d/%d/%#x",
				label, part, b.Cycles(), b.Transitions(), b.Couplings(), b.State(),
				a.Cycles(), a.Transitions(), a.Couplings(), a.State())
		}
	}
	cmp("raw", want.Raw, got.Raw)
	cmp("coded", want.Coded, got.Coded)
	if got.Ops != want.Ops {
		t.Errorf("%s ops mismatch:\n got %+v\nwant %+v", label, got.Ops, want.Ops)
	}
}

// TestEvaluateGridMatchesScalar is the tentpole differential: every grid
// cell must be bit-identical to an individual scalar Evaluate of the same
// (transcoder, λ), under every verification policy.
func TestEvaluateGridMatchesScalar(t *testing.T) {
	const width = 16
	trace := gridTestTrace(width, 3000, 7)
	cells := gridTestCells(t, width)
	for _, verify := range []VerifyPolicy{VerifySampled(64), VerifyOff, VerifyFull} {
		t.Run(verify.String(), func(t *testing.T) {
			got, err := EvaluateGrid(cells, trace, nil, verify)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(cells) {
				t.Fatalf("got %d results for %d cells", len(got), len(cells))
			}
			for i, c := range cells {
				var ev Evaluator
				ev.Verify = verify
				ev.Use(c.T)
				want, err := ev.Evaluate(trace, c.Lambda, nil)
				if err != nil {
					t.Fatal(err)
				}
				compareGridResult(t, c.T.Name(), want, got[i])
			}
		})
	}
}

// TestEvaluateGridSharesRawMeter checks that a caller-provided raw meter
// is adopted for matching widths and other widths are measured once.
func TestEvaluateGridSharesRawMeter(t *testing.T) {
	const width = 16
	trace := gridTestTrace(width, 500, 11)
	raw := MeasureRawValues(width, trace)
	st, err := NewStride(width, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpatial(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateGrid([]GridCell{{T: st, Lambda: 1}, {T: sp, Lambda: 1}}, trace, raw, VerifyOff)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Raw != raw {
		t.Error("width-matched cell did not adopt the shared raw meter")
	}
	if res[1].Raw == raw || res[1].Raw.Width() != 3 {
		t.Error("width-3 cell should get its own raw meter")
	}
}

func TestEvaluatedCyclesCountsCells(t *testing.T) {
	const width = 8
	trace := gridTestTrace(width, 300, 3)
	st, err := NewStride(width, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cells := []GridCell{{T: st, Lambda: 1}, {T: st, Lambda: 2}, {T: NewRaw(width), Lambda: 1}}
	before := EvaluatedCycles()
	if _, err := EvaluateGrid(cells, trace, nil, VerifyOff); err != nil {
		t.Fatal(err)
	}
	if got, want := EvaluatedCycles()-before, uint64(len(trace)*len(cells)); got != want {
		t.Errorf("EvaluatedCycles delta: got %d want %d", got, want)
	}
}

// testStreamMatchesEncode drives one encoder with per-cycle Encode and a
// second with encodeStream over uneven chunks (with interleaved Encode
// calls to prove state stays exchangeable), comparing meters and ops.
func testStreamMatchesEncode(t *testing.T, mk func() Transcoder, trace []uint64) {
	t.Helper()
	tc := mk()
	mask := uint64(bus.Mask(tc.DataWidth()))

	ref := tc.NewEncoder()
	mRef := bus.NewMeterLite(ref.BusWidth())
	mRef.Record(0)
	stRef := mRef.Stream()
	for _, v := range trace {
		stRef.Record(ref.Encode(v & mask))
	}
	stRef.Flush()

	enc := mk().NewEncoder()
	se, ok := enc.(streamEncoder)
	if !ok {
		t.Fatalf("%s encoder does not implement streamEncoder", tc.Name())
	}
	m := bus.NewMeterLite(enc.BusWidth())
	m.Record(0)
	st := m.Stream()
	chunks := []int{1, 7, 64, 256, 3}
	i, ci := 0, 0
	for i < len(trace) {
		n := min(chunks[ci%len(chunks)], len(trace)-i)
		ci++
		se.encodeStream(trace[i:i+n], &st)
		i += n
		if i < len(trace) { // interleave one scalar Encode between chunks
			st.Record(enc.Encode(trace[i] & mask))
			i++
		}
	}
	st.Flush()

	if m.Cycles() != mRef.Cycles() || m.Transitions() != mRef.Transitions() || m.Couplings() != mRef.Couplings() || m.State() != mRef.State() {
		t.Errorf("%s: stream meter diverged: got %d/%d/%d/%#x want %d/%d/%d/%#x", tc.Name(),
			m.Cycles(), m.Transitions(), m.Couplings(), m.State(),
			mRef.Cycles(), mRef.Transitions(), mRef.Couplings(), mRef.State())
	}
	opsOf := func(e Encoder) OpStats {
		if r, ok := e.(OpReporter); ok {
			return r.Ops()
		}
		return OpStats{}
	}
	if got, want := opsOf(enc), opsOf(ref); got != want {
		t.Errorf("%s: stream ops diverged:\n got %+v\nwant %+v", tc.Name(), got, want)
	}
}

func TestStrideEncodeStreamMatchesEncode(t *testing.T) {
	trace := gridTestTrace(16, 2500, 21)
	testStreamMatchesEncode(t, func() Transcoder {
		st, err := NewStride(16, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}, trace)
}

func TestInversionEncodeStreamMatchesEncode(t *testing.T) {
	trace := gridTestTrace(16, 2500, 22)
	for _, lambda := range []float64{0, 1, 2.5} { // int and float cost paths
		testStreamMatchesEncode(t, func() Transcoder {
			pats, err := DefaultInversionPatterns(16, 4)
			if err != nil {
				t.Fatal(err)
			}
			inv, err := NewInversion(16, pats, lambda)
			if err != nil {
				t.Fatal(err)
			}
			return inv
		}, trace)
	}
}

func TestContextEncodeStreamMatchesEncode(t *testing.T) {
	trace := gridTestTrace(16, 2500, 23)
	for _, cfg := range []ContextConfig{
		{Width: 16, TableSize: 8, ShiftEntries: 4, DividePeriod: 128, Lambda: 1},
		{Width: 16, TableSize: 32, ShiftEntries: 16, DividePeriod: 4096, Lambda: 1},
		{Width: 16, TableSize: 8, ShiftEntries: 4, DividePeriod: 64, TransitionBased: true, Lambda: 1},
	} {
		testStreamMatchesEncode(t, func() Transcoder {
			ctx, err := NewContext(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return ctx
		}, trace)
	}
}

// TestChannelIntCostMatchesFloat pins the uint64 cost fast path to the
// float path decision-for-decision across random raw sends.
func TestChannelIntCostMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lambda := range []float64{0, 1, 2, 7, 100} {
		ci := newChannel(14, lambda)
		cf := newChannel(14, lambda)
		if !ci.lambdaIsInt {
			t.Fatalf("λ=%g should take the integer path", lambda)
		}
		cf.lambdaIsInt = false // force the float path
		for i := 0; i < 5000; i++ {
			v := rng.Uint64()
			wi, invI := ci.sendRaw(v)
			wf, invF := cf.sendRaw(v)
			if wi != wf || invI != invF {
				t.Fatalf("λ=%g cycle %d: int path (%#x,%v) != float path (%#x,%v)", lambda, i, wi, invI, wf, invF)
			}
		}
	}
}

// FuzzGridMatchesScalar cross-checks the grid fast paths against the
// scalar evaluator on fuzzer-shaped traces.
func FuzzGridMatchesScalar(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 250, 0, 0, 9})
	f.Add([]byte{0xFF, 0xFE, 0xFD})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		trace := make([]uint64, len(data))
		for i, b := range data {
			trace[i] = uint64(b) * 0x0101
		}
		const width = 10
		var cells []GridCell
		for _, k := range []int{1, 3} {
			st, err := NewStride(width, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, GridCell{T: st, Lambda: 1})
		}
		g, err := NewGray(width)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, GridCell{T: NewRaw(width), Lambda: 1}, GridCell{T: g, Lambda: 1})
		vc, err := NewVC(width, 2)
		if err != nil {
			t.Fatal(err)
		}
		lw, err := NewLowWeight(width, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, GridCell{T: vc, Lambda: 1}, GridCell{T: lw, Lambda: 1})
		got, err := EvaluateGrid(cells, trace, nil, VerifySampled(32))
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cells {
			var ev Evaluator
			ev.Verify = VerifySampled(32)
			ev.Use(c.T)
			want, err := ev.Evaluate(trace, c.Lambda, nil)
			if err != nil {
				t.Fatal(err)
			}
			compareGridResult(t, c.T.Name(), want, got[i])
		}
	})
}
