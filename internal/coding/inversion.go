package coding

import (
	"fmt"
	"math/bits"
	"strings"

	"buspower/internal/bus"
)

// InversionTranscoder is the generalized inversion coder of §4.3
// (Figure 10): a stateless scheme that sends the input XORed with one of a
// small set of constant bit patterns, choosing the pattern that moves the
// bus most cheaply from its current state, and identifies the chosen
// pattern on log2(#patterns) extra control wires.
//
// The cost function is parameterized by the Λ the encoder *assumes*
// (Figure 15's λ0 / λ1 / λN families): λ0 counts transitions only — the
// classic Bus-Invert criterion of Stan & Burleson — while λ1 and λN also
// weigh coupling events at Λ=1 or the true wire Λ respectively.
//
// Following §5.2, the coder minimizes the cost of the XOR of the candidate
// with the *current bus value* (not the raw Hamming weight of the input),
// so strings of repeated values cost nothing.
type InversionTranscoder struct {
	width         int
	patterns      []uint64
	assumedLambda float64
	ctrlBits      int
	name          string
}

// NewInversion builds a generalized inversion coder. patterns must contain
// 1..16 constant patterns and include the all-zero pattern so the identity
// encoding is always available; assumedLambda is the Λ used inside the
// pattern-selection cost function.
func NewInversion(width int, patterns []uint64, assumedLambda float64) (*InversionTranscoder, error) {
	checkWidth(width)
	if len(patterns) < 1 || len(patterns) > 16 {
		return nil, fmt.Errorf("coding: inversion coder needs 1..16 patterns, got %d", len(patterns))
	}
	hasZero := false
	seen := make(map[uint64]bool, len(patterns))
	mask := uint64(bus.Mask(width))
	ps := make([]uint64, len(patterns))
	for i, p := range patterns {
		p &= mask
		if seen[p] {
			return nil, fmt.Errorf("coding: duplicate inversion pattern %#x", p)
		}
		seen[p] = true
		if p == 0 {
			hasZero = true
		}
		ps[i] = p
	}
	if !hasZero {
		return nil, fmt.Errorf("coding: inversion pattern set must include the zero pattern")
	}
	ctrl := bits.Len(uint(len(ps) - 1))
	if ctrl == 0 {
		ctrl = 1 // degenerate single-pattern coder still reserves an id wire
	}
	if width+ctrl > bus.MaxWidth {
		return nil, fmt.Errorf("coding: width %d + %d id wires exceeds %d", width, ctrl, bus.MaxWidth)
	}
	return &InversionTranscoder{
		width:         width,
		patterns:      ps,
		assumedLambda: assumedLambda,
		ctrlBits:      ctrl,
		name:          fmt.Sprintf("inversion-%dpat-l%g", len(ps), assumedLambda),
	}, nil
}

// NewBusInvert returns the classic two-pattern Bus-Invert coder
// (send value or complement, one invert wire) with the given assumed Λ.
func NewBusInvert(width int, assumedLambda float64) (*InversionTranscoder, error) {
	return NewInversion(width, []uint64{0, ^uint64(0)}, assumedLambda)
}

// DefaultInversionPatterns returns a standard pattern set of the given
// size (a power of two up to 8): zero, all-ones, the two alternating
// checkerboards, and half-word inversions — the constant vectors the
// paper's generalized coder draws from.
func DefaultInversionPatterns(width, n int) ([]uint64, error) {
	checkWidth(width)
	mask := uint64(bus.Mask(width))
	alt := uint64(0x5555555555555555) & mask
	lower := uint64(bus.Mask((width + 1) / 2))
	upper := mask &^ lower
	all := []uint64{
		0,
		^uint64(0) & mask,
		alt,
		^alt & mask,
		lower,
		upper,
		uint64(0x3333333333333333) & mask,
		^uint64(0x3333333333333333) & mask,
	}
	if n < 1 || n > len(all) {
		return nil, fmt.Errorf("coding: supported inversion pattern-set sizes are 1..%d, got %d", len(all), n)
	}
	return all[:n], nil
}

// Name implements Transcoder.
func (t *InversionTranscoder) Name() string { return t.name }

// ConfigKey implements ConfigKeyer: the name carries the pattern count
// and assumed Λ but not the patterns themselves or the width.
func (t *InversionTranscoder) ConfigKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/w%d/p", t.name, t.width)
	for _, p := range t.patterns {
		fmt.Fprintf(&b, "%x.", p)
	}
	return b.String()
}

// DataWidth implements Transcoder.
func (t *InversionTranscoder) DataWidth() int { return t.width }

// NewEncoder implements Transcoder.
func (t *InversionTranscoder) NewEncoder() Encoder {
	return &inversionEncoder{t: t}
}

// NewDecoder implements Transcoder.
func (t *InversionTranscoder) NewDecoder() Decoder {
	return &inversionDecoder{t: t}
}

type inversionEncoder struct {
	t     *InversionTranscoder
	state bus.Word
	ops   OpStats
}

func (e *inversionEncoder) Encode(v uint64) bus.Word {
	t := e.t
	v &= uint64(bus.Mask(t.width))
	w := e.BusWidth()
	best := bus.Word(0)
	bestCost := 0.0
	for k, p := range t.patterns {
		cand := bus.Word(v^p) | bus.Word(k)<<uint(t.width)
		cost := bus.Cost(e.state, cand, w, t.assumedLambda)
		if k == 0 || cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	e.ops.Cycles++
	e.ops.RawSends++
	e.state = best
	return best
}

// encodeStream implements streamEncoder: the same candidate ranking as
// Encode with the width masks hoisted out of the loop and, for integral
// assumed Λ, the cost comparison run in uint64 (bus.CostMaskedInt) —
// both preserve every first-strictly-cheaper pattern choice exactly.
// TestInversionEncodeStreamMatchesEncode pins it cycle-for-cycle.
func (e *inversionEncoder) encodeStream(vals []uint64, st *bus.MeterStream) {
	t := e.t
	mask := uint64(bus.Mask(t.width))
	pairMask := bus.Mask(t.width + t.ctrlBits - 1)
	shift := uint(t.width)
	patterns := t.patterns
	state := e.state
	var accT, accC uint64
	if li, ok := intLambda(t.assumedLambda); ok {
		for _, v := range vals {
			v &= mask
			var best bus.Word
			var bestCost uint64
			for k, p := range patterns {
				cand := bus.Word(v^p) | bus.Word(k)<<shift
				cost := bus.CostMaskedInt(state, cand, pairMask, li)
				if k == 0 || cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			tv := state ^ best
			accT += uint64(bus.Weight(tv))
			accC += couplingEvents(tv, best&^state, state&^best, pairMask)
			state = best
		}
	} else {
		lambda := t.assumedLambda
		for _, v := range vals {
			v &= mask
			var best bus.Word
			var bestCost float64
			for k, p := range patterns {
				cand := bus.Word(v^p) | bus.Word(k)<<shift
				cost := bus.CostMasked(state, cand, pairMask, lambda)
				if k == 0 || cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			tv := state ^ best
			accT += uint64(bus.Weight(tv))
			accC += couplingEvents(tv, best&^state, state&^best, pairMask)
			state = best
		}
	}
	st.AddBlock(uint64(len(vals)), accT, accC, state)
	e.state = state
	e.ops.Cycles += uint64(len(vals))
	e.ops.RawSends += uint64(len(vals))
}

func (e *inversionEncoder) BusWidth() int { return e.t.width + e.t.ctrlBits }
func (e *inversionEncoder) Reset()        { e.state = 0; e.ops = OpStats{} }
func (e *inversionEncoder) Ops() OpStats  { return e.ops }

type inversionDecoder struct {
	t *InversionTranscoder
}

func (d *inversionDecoder) Decode(w bus.Word) uint64 {
	t := d.t
	k := int(w >> uint(t.width))
	if k >= len(t.patterns) {
		panic(fmt.Sprintf("coding: inversion decoder received invalid pattern id %d", k))
	}
	return uint64(w&bus.Mask(t.width)) ^ t.patterns[k]
}
func (d *inversionDecoder) Reset() {}
