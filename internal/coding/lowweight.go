package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// LowWeightTranscoder implements Valentini–Chiani's practical low-weight
// codes (arXiv:2606.14203; PAPERS.md #3): the data bus is partitioned
// into groups and each group runs its own small transition-ball code
// (exactly the vc construction) on its bits plus its own extra wires.
// Splitting sacrifices a little of the monolithic code's weight bound —
// the per-cycle budget becomes the *sum* of the per-group radii — but
// shrinks the enumerative datapath from one n-wide adder chain to g
// short ones, which is where the "practical" in the title comes from:
// hardware cost drops ~g-fold while most of the switching savings
// survive. groups=1 degenerates to the monolithic vc code.
type LowWeightTranscoder struct {
	width  int // data bits
	groups int
	extra  int // redundant wires per group
	wires  int // coded bus width = width + groups*extra
	budget int // per-cycle transition budget = Σ group radii
	stages int // Σ normalized adder stages over the group datapaths
	grp    []lwGroup
	name   string
}

// lwGroup is one contiguous block of the coded bus: bits of the data
// value [shift, shift+bits) coded on wires [off, off+wires).
type lwGroup struct {
	bits   int
	shift  uint
	wires  int
	off    uint
	radius int
}

// NewLowWeight builds a practical low-weight transcoder: width data bits
// split into groups contiguous blocks, each with extra redundant wires.
func NewLowWeight(width, groups, extra int) (*LowWeightTranscoder, error) {
	if groups < 1 || groups > 8 {
		return nil, fmt.Errorf("coding: lowweight groups %d outside [1, 8]", groups)
	}
	if extra < 1 || extra > 4 {
		return nil, fmt.Errorf("coding: lowweight extra wires %d outside [1, 4]", extra)
	}
	if groups > width {
		return nil, fmt.Errorf("coding: lowweight cannot split %d bits into %d groups", width, groups)
	}
	wires := width + groups*extra
	if err := enumCheck("lowweight", width, wires); err != nil {
		return nil, err
	}
	t := &LowWeightTranscoder{
		width:  width,
		groups: groups,
		extra:  extra,
		wires:  wires,
		name:   fmt.Sprintf("lowweight-%dg%d+%d", width, groups, extra),
	}
	// The first width%groups groups carry one extra data bit.
	base, rem := width/groups, width%groups
	var shift, off uint
	for i := 0; i < groups; i++ {
		bits := base
		if i < rem {
			bits++
		}
		gw := bits + extra
		r, err := ballRadius(gw, 1<<uint(bits))
		if err != nil {
			return nil, err
		}
		t.grp = append(t.grp, lwGroup{bits: bits, shift: shift, wires: gw, off: off, radius: r})
		t.budget += r
		t.stages += enumStages(gw)
		shift += uint(bits)
		off += uint(gw)
	}
	return t, nil
}

// Name implements Transcoder.
func (t *LowWeightTranscoder) Name() string { return t.name }

// DataWidth implements Transcoder.
func (t *LowWeightTranscoder) DataWidth() int { return t.width }

// BusWidth returns the coded bus width.
func (t *LowWeightTranscoder) BusWidth() int { return t.wires }

// WeightBudget returns the per-cycle transition budget — the sum of the
// group radii; no cycle toggles more wires than this (property-tested).
func (t *LowWeightTranscoder) WeightBudget() int { return t.budget }

// Stages returns the total datapath size over all groups in normalized
// 32-bit adder stages — the circuit model's entries parameter.
func (t *LowWeightTranscoder) Stages() int { return t.stages }

// ConfigKey implements ConfigKeyer.
func (t *LowWeightTranscoder) ConfigKey() string {
	return fmt.Sprintf("lowweight-g%d+%d/w%d", t.groups, t.extra, t.width)
}

// NewEncoder implements Transcoder.
func (t *LowWeightTranscoder) NewEncoder() Encoder { return &lowWeightEncoder{t: t} }

// NewDecoder implements Transcoder.
func (t *LowWeightTranscoder) NewDecoder() Decoder { return &lowWeightDecoder{t: t} }

// gridOps mirrors the other enumerative coders: every group datapath
// switches every cycle.
func (t *LowWeightTranscoder) gridOps(cycles uint64) OpStats {
	return OpStats{
		Cycles:            cycles,
		CodeSends:         cycles,
		CounterIncrements: cycles * uint64(t.stages),
	}
}

// transition maps a data value to the full-bus transition vector: each
// group's sub-value unranked into its transition ball, placed at the
// group's wire offset.
func (t *LowWeightTranscoder) transition(v uint64) uint64 {
	var tv uint64
	for i := range t.grp {
		g := &t.grp[i]
		sub := (v >> g.shift) & uint64(bus.Mask(g.bits))
		tv |= ballUnrank(g.wires, sub) << g.off
	}
	return tv
}

type lowWeightEncoder struct {
	t      *LowWeightTranscoder
	state  uint64
	cycles uint64
}

func (e *lowWeightEncoder) Encode(v uint64) bus.Word {
	e.cycles++
	e.state ^= e.t.transition(v & uint64(bus.Mask(e.t.width)))
	return bus.Word(e.state)
}

func (e *lowWeightEncoder) BusWidth() int { return e.t.wires }
func (e *lowWeightEncoder) Reset()        { e.state, e.cycles = 0, 0 }
func (e *lowWeightEncoder) Ops() OpStats  { return e.t.gridOps(e.cycles) }

type lowWeightDecoder struct {
	t    *LowWeightTranscoder
	prev uint64
}

func (d *lowWeightDecoder) Decode(w bus.Word) uint64 {
	cur := uint64(w) & uint64(bus.Mask(d.t.wires))
	tv := d.prev ^ cur
	d.prev = cur
	var v uint64
	for i := range d.t.grp {
		g := &d.t.grp[i]
		gtv := (tv >> g.off) & uint64(bus.Mask(g.wires))
		v |= ballRank(g.wires, gtv) << g.shift
	}
	return v
}

func (d *lowWeightDecoder) Reset() { d.prev = 0 }

// lowWeightCodedMeter materializes the prefix-XOR state stream and meters
// it lane-parallel — the grid fast path.
func lowWeightCodedMeter(t *LowWeightTranscoder, trace []uint64) *bus.Meter {
	mask := uint64(bus.Mask(t.width))
	coded := make([]uint64, len(trace))
	var state uint64
	for i, v := range trace {
		state ^= t.transition(v & mask)
		coded[i] = state
	}
	return bus.NewSlicedTrace(t.wires, coded).MeterLite()
}
