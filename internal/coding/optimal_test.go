package coding

import (
	"math/bits"
	"testing"

	"buspower/internal/bus"
)

// Property tests for the optimal-codebook scheme families (optmem, vc,
// lowweight, dvs): the enumerative rank/unrank bijection, exact
// decode(encode(x)) round-trips, and the weight/transition bounds the
// source constructions guarantee.

// TestBallRankUnrankBijection enumerates every n-bit word through the
// ball ordering and checks it is a weight-monotone bijection: ranks are
// exhaustive, unrank inverts rank, and weight never decreases with index.
func TestBallRankUnrankBijection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 11} {
		seen := make([]bool, 1<<uint(n))
		prevWeight := 0
		for idx := uint64(0); idx < 1<<uint(n); idx++ {
			word := ballUnrank(n, idx)
			if word >= 1<<uint(n) {
				t.Fatalf("n=%d idx=%d: unrank produced out-of-range word %#x", n, idx, word)
			}
			if seen[word] {
				t.Fatalf("n=%d idx=%d: unrank repeated word %#x", n, idx, word)
			}
			seen[word] = true
			if got := ballRank(n, word); got != idx {
				t.Fatalf("n=%d: rank(unrank(%d)) = %d", n, idx, got)
			}
			if w := bits.OnesCount64(word); w < prevWeight {
				t.Fatalf("n=%d idx=%d: weight %d below previous %d — not weight-ordered", n, idx, w, prevWeight)
			} else {
				prevWeight = w
			}
		}
	}
}

// TestBallRadius pins the radius arithmetic to hand-checked points.
func TestBallRadius(t *testing.T) {
	cases := []struct {
		n     int
		count uint64
		want  int
	}{
		{3, 4, 1},        // 1 + 3 ≥ 4
		{3, 5, 2},        // needs weight-2 words
		{8, 256, 8},      // full space: radius = n
		{34, 1 << 32, 15}, // 32-bit bus + 2 wires: Σ C(34,i), i≤15 ≥ 2^32
	}
	for _, c := range cases {
		got, err := ballRadius(c.n, c.count)
		if err != nil {
			t.Fatalf("ballRadius(%d, %d): %v", c.n, c.count, err)
		}
		if got != c.want {
			t.Errorf("ballRadius(%d, %d) = %d, want %d", c.n, c.count, got, c.want)
		}
		if ballSize(c.n, got) < c.count || (got > 0 && ballSize(c.n, got-1) >= c.count) {
			t.Errorf("ballRadius(%d, %d) = %d is not minimal-sufficient", c.n, c.count, got)
		}
	}
	if _, err := ballRadius(3, 9); err == nil {
		t.Error("ballRadius(3, 9) should fail: 3 wires address at most 8 words")
	}
}

// optimalConfigs returns the builders the round-trip, bound and
// differential suites share, with the per-cycle toggle bound each
// construction guarantees over the whole coded bus.
func optimalConfigs(tb testing.TB, width int) map[string]struct {
	build func() (Transcoder, error)
	bound func(Transcoder) int
} {
	tb.Helper()
	type cfg = struct {
		build func() (Transcoder, error)
		bound func(Transcoder) int
	}
	return map[string]cfg{
		"optmem+2": {
			func() (Transcoder, error) { return NewOptMem(width, 2) },
			// Memoryless codewords are weight-bounded, so a transition flips
			// at most the union of two codewords' high wires.
			func(t Transcoder) int { return 2 * t.(*OptMemTranscoder).MaxWeight() },
		},
		"optmem+4": {
			func() (Transcoder, error) { return NewOptMem(width, 4) },
			func(t Transcoder) int { return 2 * t.(*OptMemTranscoder).MaxWeight() },
		},
		"vc+1": {
			func() (Transcoder, error) { return NewVC(width, 1) },
			func(t Transcoder) int { return t.(*VCTranscoder).Radius() },
		},
		"vc+3": {
			func() (Transcoder, error) { return NewVC(width, 3) },
			func(t Transcoder) int { return t.(*VCTranscoder).Radius() },
		},
		"lowweight-g1+2": { // single group: degenerates to vc
			func() (Transcoder, error) { return NewLowWeight(width, 1, 2) },
			func(t Transcoder) int { return t.(*LowWeightTranscoder).WeightBudget() },
		},
		"lowweight-g4+1": {
			func() (Transcoder, error) { return NewLowWeight(width, 4, 1) },
			func(t Transcoder) int { return t.(*LowWeightTranscoder).WeightBudget() },
		},
		"dvs+2": {
			func() (Transcoder, error) { return NewDVS(width, 2, 80) },
			// The parity wire may toggle on top of the transition code.
			func(t Transcoder) int { return t.(*DVSTranscoder).Radius() + 1 },
		},
	}
}

// checkOptimalStream drives one coder over vals checking exact
// round-trips, codeword range and the per-cycle toggle bound.
func checkOptimalStream(t *testing.T, name string, tc Transcoder, bound int, vals []uint64) {
	t.Helper()
	enc, dec := tc.NewEncoder(), tc.NewDecoder()
	busMask := uint64(bus.Mask(enc.BusWidth()))
	mask := uint64(bus.Mask(tc.DataWidth()))
	var prev uint64
	for i, v := range vals {
		v &= mask
		w := uint64(enc.Encode(v))
		if w&^busMask != 0 {
			t.Fatalf("%s cycle %d: codeword %#x exceeds the %d-wire bus", name, i, w, enc.BusWidth())
		}
		if got := dec.Decode(bus.Word(w)); got != v {
			t.Fatalf("%s cycle %d: decode(encode(%#x)) = %#x", name, i, v, got)
		}
		if toggles := bits.OnesCount64(prev ^ w); toggles > bound {
			t.Fatalf("%s cycle %d: %d wires toggled, bound is %d", name, i, toggles, bound)
		}
		prev = w
	}
}

// TestOptimalRoundTripAndBounds is the deterministic form of
// FuzzOptimalRoundTrip over the mixed grid trace, at two widths.
func TestOptimalRoundTripAndBounds(t *testing.T) {
	for _, width := range []int{8, 32} {
		vals := gridTestTrace(width, 4000, int64(width))
		for name, c := range optimalConfigs(t, width) {
			tc, err := c.build()
			if err != nil {
				t.Fatalf("%s(w%d): %v", name, width, err)
			}
			checkOptimalStream(t, tc.Name(), tc, c.bound(tc), vals)
		}
	}
}

// TestOptMemWeightBound checks the memoryless codebook's defining
// property directly: every codeword's weight stays within the ball
// radius, and the all-zero value maps to the all-zero codeword.
func TestOptMemWeightBound(t *testing.T) {
	tc, err := NewOptMem(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := tc.NewEncoder()
	for v := uint64(0); v < 1<<12; v++ {
		w := uint64(enc.Encode(v))
		if got := bits.OnesCount64(w); got > tc.MaxWeight() {
			t.Fatalf("codeword for %#x has weight %d > bound %d", v, got, tc.MaxWeight())
		}
	}
	if w := enc.Encode(0); w != 0 {
		t.Errorf("value 0 should map to the zero codeword, got %#x", w)
	}
}

// TestOptimalOpsFormulaic pins the enumerative coders' op counts to the
// documented formula — what lets the grid fast path reproduce them.
func TestOptimalOpsFormulaic(t *testing.T) {
	vals := gridTestTrace(16, 777, 5)
	for name, c := range optimalConfigs(t, 16) {
		tc, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		enc := tc.NewEncoder()
		for _, v := range vals {
			enc.Encode(v)
		}
		ops := enc.(OpReporter).Ops()
		n := uint64(len(vals))
		var stages uint64
		switch tt := tc.(type) {
		case *OptMemTranscoder:
			stages = uint64(tt.Stages())
		case *VCTranscoder:
			stages = uint64(tt.Stages())
		case *LowWeightTranscoder:
			stages = uint64(tt.Stages())
		case *DVSTranscoder:
			stages = uint64(tt.Stages())
		}
		want := OpStats{Cycles: n, CodeSends: n, CounterIncrements: n * stages}
		if ops != want {
			t.Errorf("%s ops: got %+v want %+v", name, ops, want)
		}
		enc.Reset()
		if got := enc.(OpReporter).Ops(); got != (OpStats{}) {
			t.Errorf("%s: Reset did not clear ops: %+v", name, got)
		}
	}
}

// TestLowWeightCheaperThanVC pins the construction's point: splitting
// into groups shrinks the enumerative datapath (circuit cost) while the
// transition budget grows only additively.
func TestLowWeightCheaperThanVC(t *testing.T) {
	vc, err := NewVC(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := NewLowWeight(32, 4, 1) // same 36-wire bus
	if err != nil {
		t.Fatal(err)
	}
	if lw.BusWidth() != vc.BusWidth() {
		t.Fatalf("bus widths diverge: lowweight %d, vc %d", lw.BusWidth(), vc.BusWidth())
	}
	if lw.Stages() >= vc.Stages() {
		t.Errorf("lowweight datapath (%d stages) should be smaller than vc's (%d)", lw.Stages(), vc.Stages())
	}
	if lw.WeightBudget() < vc.Radius() {
		t.Errorf("lowweight budget %d below the monolithic radius %d — too good to be true", lw.WeightBudget(), vc.Radius())
	}
}

// TestOptimalConstructorBounds exercises the parameter validation.
func TestOptimalConstructorBounds(t *testing.T) {
	bad := []func() (Transcoder, error){
		func() (Transcoder, error) { return NewOptMem(32, 0) },
		func() (Transcoder, error) { return NewOptMem(32, 9) },
		func() (Transcoder, error) { return NewOptMem(61, 2) }, // 63 wires
		func() (Transcoder, error) { return NewVC(32, 0) },
		func() (Transcoder, error) { return NewVC(62, 1) }, // 63 wires
		func() (Transcoder, error) { return NewLowWeight(32, 0, 1) },
		func() (Transcoder, error) { return NewLowWeight(32, 9, 1) },
		func() (Transcoder, error) { return NewLowWeight(2, 4, 1) }, // groups > width
		func() (Transcoder, error) { return NewLowWeight(32, 8, 4) }, // 64 wires
		func() (Transcoder, error) { return NewDVS(32, 2, 40) },
		func() (Transcoder, error) { return NewDVS(32, 2, 101) },
		func() (Transcoder, error) { return NewDVS(60, 2, 80) }, // 63 wires
	}
	for i, build := range bad {
		if tc, err := build(); err == nil {
			t.Errorf("case %d: expected a constructor error, got %s", i, tc.Name())
		}
	}
}

// FuzzOptimalRoundTrip explores the round-trip and toggle-bound
// properties of all four optimal-codebook families on fuzzer-shaped
// traces, and cross-checks each family's grid materialization against
// its scalar encoder meter.
func FuzzOptimalRoundTrip(f *testing.F) {
	f.Add([]byte("buspower"))
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144})
	seed := make([]byte, 300)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		vals := fuzzValues(data)
		for name, c := range optimalConfigs(t, 16) {
			tc, err := c.build()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkOptimalStream(t, name, tc, c.bound(tc), vals)
			diffOptimalMeter(t, name, tc, vals)
		}
	})
}

// diffOptimalMeter compares the grid fast path's materialized meter with
// a scalar per-cycle encode of the same trace.
func diffOptimalMeter(t *testing.T, name string, tc Transcoder, vals []uint64) {
	t.Helper()
	var fast *bus.Meter
	switch tt := tc.(type) {
	case *OptMemTranscoder:
		fast = optMemCodedMeter(tt, vals)
	case *VCTranscoder:
		fast = vcCodedMeter(tt, vals)
	case *LowWeightTranscoder:
		fast = lowWeightCodedMeter(tt, vals)
	case *DVSTranscoder:
		fast = dvsCodedMeter(tt, vals)
	default:
		t.Fatalf("%s: no materializer", name)
	}
	enc := tc.NewEncoder()
	ref := bus.NewMeterLite(enc.BusWidth())
	ref.Record(0)
	mask := uint64(bus.Mask(tc.DataWidth()))
	for _, v := range vals {
		ref.Record(enc.Encode(v & mask))
	}
	if fast.Cycles() != ref.Cycles() || fast.Transitions() != ref.Transitions() ||
		fast.Couplings() != ref.Couplings() || fast.State() != ref.State() {
		t.Fatalf("%s: materialized meter diverged: got %d/%d/%d/%#x want %d/%d/%d/%#x", name,
			fast.Cycles(), fast.Transitions(), fast.Couplings(), fast.State(),
			ref.Cycles(), ref.Transitions(), ref.Couplings(), ref.State())
	}
}
