package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// OptMemTranscoder implements optimal memoryless encoding for low-power
// buses (Chee & Colbourn, arXiv:0712.2640; PAPERS.md #1): each k-bit data
// value maps to a fixed codeword on n = k + extra wires, chosen as the
// value-th word in weight-then-value order. The codebook is therefore the
// 2^k minimum-weight words on n wires — the assignment that minimizes the
// expected number of high wires (and, for independent uniform values, the
// expected transitions between consecutive codewords) among all
// memoryless codes of that redundancy. Unlike the paper's prediction
// transcoders it keeps no state at all: the same value always produces
// the same wire pattern, so repeated values cost zero transitions and the
// decoder is a pure combinational rank circuit.
type OptMemTranscoder struct {
	width     int // data bits
	extra     int // redundant wires
	wires     int // coded bus width = width + extra
	maxWeight int // weight bound of the codebook (ball radius)
	stages    int // normalized adder stages of the rank/unrank datapath
	name      string
}

// NewOptMem builds an optimal-memoryless transcoder with the given data
// width and number of extra (redundant) wires.
func NewOptMem(width, extra int) (*OptMemTranscoder, error) {
	if extra < 1 || extra > 8 {
		return nil, fmt.Errorf("coding: optmem extra wires %d outside [1, 8]", extra)
	}
	wires := width + extra
	if err := enumCheck("optmem", width, wires); err != nil {
		return nil, err
	}
	r, err := ballRadius(wires, 1<<uint(width))
	if err != nil {
		return nil, err
	}
	return &OptMemTranscoder{
		width:     width,
		extra:     extra,
		wires:     wires,
		maxWeight: r,
		stages:    enumStages(wires),
		name:      fmt.Sprintf("optmem-%d+%d", width, extra),
	}, nil
}

// Name implements Transcoder.
func (t *OptMemTranscoder) Name() string { return t.name }

// DataWidth implements Transcoder.
func (t *OptMemTranscoder) DataWidth() int { return t.width }

// BusWidth returns the coded bus width (data plus redundant wires).
func (t *OptMemTranscoder) BusWidth() int { return t.wires }

// MaxWeight returns the codebook's weight bound: no codeword carries more
// high wires than this (property-tested).
func (t *OptMemTranscoder) MaxWeight() int { return t.maxWeight }

// Stages returns the size of the rank/unrank datapath in normalized
// 32-bit adder stages — the circuit model's entries parameter.
func (t *OptMemTranscoder) Stages() int { return t.stages }

// ConfigKey implements ConfigKeyer.
func (t *OptMemTranscoder) ConfigKey() string {
	return fmt.Sprintf("optmem+%d/w%d", t.extra, t.width)
}

// NewEncoder implements Transcoder.
func (t *OptMemTranscoder) NewEncoder() Encoder { return &optMemEncoder{t: t} }

// NewDecoder implements Transcoder.
func (t *OptMemTranscoder) NewDecoder() Decoder { return &optMemDecoder{t: t} }

// gridOps returns the encoder's operation counts for a run of the given
// length. The enumerative coders' activity is purely formulaic — the
// adder chain switches on every cycle regardless of data (like the
// inversion coder's majority voter) — which is what lets the grid fast
// path reproduce the scalar encoder's counts exactly.
func (t *OptMemTranscoder) gridOps(cycles uint64) OpStats {
	return OpStats{
		Cycles:            cycles,
		CodeSends:         cycles,
		CounterIncrements: cycles * uint64(t.stages),
	}
}

type optMemEncoder struct {
	t      *OptMemTranscoder
	cycles uint64
}

func (e *optMemEncoder) Encode(v uint64) bus.Word {
	e.cycles++
	return bus.Word(ballUnrank(e.t.wires, v&uint64(bus.Mask(e.t.width))))
}

func (e *optMemEncoder) BusWidth() int { return e.t.wires }
func (e *optMemEncoder) Reset()        { e.cycles = 0 }
func (e *optMemEncoder) Ops() OpStats  { return e.t.gridOps(e.cycles) }

type optMemDecoder struct {
	t *OptMemTranscoder
}

func (d *optMemDecoder) Decode(w bus.Word) uint64 {
	return ballRank(d.t.wires, uint64(w)&uint64(bus.Mask(d.t.wires)))
}

func (d *optMemDecoder) Reset() {}

// optMemCodedMeter materializes the memoryless codeword stream and meters
// it lane-parallel — the grid fast path.
func optMemCodedMeter(t *OptMemTranscoder, trace []uint64) *bus.Meter {
	mask := uint64(bus.Mask(t.width))
	coded := make([]uint64, len(trace))
	for i, v := range trace {
		coded[i] = ballUnrank(t.wires, v&mask)
	}
	return bus.NewSlicedTrace(t.wires, coded).MeterLite()
}
