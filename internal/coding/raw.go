package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// RawTranscoder is the identity baseline: values travel un-encoded on a
// bus of exactly DataWidth wires. Every experiment normalizes against it.
type RawTranscoder struct {
	width int
	name  string
}

// NewRaw returns the identity transcoder for the given data width.
func NewRaw(width int) *RawTranscoder {
	checkWidth(width)
	return &RawTranscoder{width: width, name: fmt.Sprintf("raw-%d", width)}
}

// Name implements Transcoder.
func (r *RawTranscoder) Name() string { return r.name }

// DataWidth implements Transcoder.
func (r *RawTranscoder) DataWidth() int { return r.width }

// NewEncoder implements Transcoder.
func (r *RawTranscoder) NewEncoder() Encoder { return &rawEncoder{width: r.width} }

// NewDecoder implements Transcoder.
func (r *RawTranscoder) NewDecoder() Decoder { return &rawDecoder{width: r.width} }

type rawEncoder struct{ width int }

func (e *rawEncoder) Encode(v uint64) bus.Word {
	return bus.Word(v) & bus.Mask(e.width)
}
func (e *rawEncoder) BusWidth() int { return e.width }
func (e *rawEncoder) Reset()        {}

type rawDecoder struct{ width int }

func (d *rawDecoder) Decode(w bus.Word) uint64 {
	return uint64(w & bus.Mask(d.width))
}
func (d *rawDecoder) Reset() {}
