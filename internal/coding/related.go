package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// This file implements the related-work baselines the paper positions
// itself against (§2): partial bus-invert coding (Shin, Chae & Choi) and a
// workzone-style address-bus coder (Musoll, Lang & Cortadella; extended by
// Aghaghiri et al.'s sector-based encoding). They let the repository
// compare the paper's prediction-based transcoders against the classic
// low-power coding literature on the same traces.

// PartialBusInvert splits the bus into groups, each with its own invert
// wire, and independently complements any group whose flip lowers the
// Λ-weighted cost — the generalization of bus-invert that recovers
// fine-grained savings a single invert decision misses on wide buses.
//
// Wire layout: data wires 0..W-1, then one invert wire per group. Invert
// wires carry absolute polarity (1 = group currently complemented).
type PartialBusInvert struct {
	width         int
	groups        int
	assumedLambda float64
	bounds        []int // group g spans data bits [bounds[g], bounds[g+1])
	name          string
}

// NewPartialBusInvert builds a partial bus-invert coder with the given
// number of groups (1 group degenerates to classic bus-invert).
func NewPartialBusInvert(width, groups int, assumedLambda float64) (*PartialBusInvert, error) {
	checkWidth(width)
	if groups < 1 || groups > width {
		return nil, fmt.Errorf("coding: partial bus-invert groups %d outside [1, %d]", groups, width)
	}
	if width+groups > bus.MaxWidth {
		return nil, fmt.Errorf("coding: width %d + %d invert wires exceeds %d", width, groups, bus.MaxWidth)
	}
	bounds := make([]int, groups+1)
	for g := 0; g <= groups; g++ {
		bounds[g] = g * width / groups
	}
	return &PartialBusInvert{
		width:         width,
		groups:        groups,
		assumedLambda: assumedLambda,
		bounds:        bounds,
		name:          fmt.Sprintf("partial-businvert-%dg", groups),
	}, nil
}

// Name implements Transcoder.
func (t *PartialBusInvert) Name() string { return t.name }

// ConfigKey implements ConfigKeyer: the name omits the width and the
// assumed Λ.
func (t *PartialBusInvert) ConfigKey() string {
	return fmt.Sprintf("%s/w%d/l%g", t.name, t.width, t.assumedLambda)
}

// DataWidth implements Transcoder.
func (t *PartialBusInvert) DataWidth() int { return t.width }

// NewEncoder implements Transcoder.
func (t *PartialBusInvert) NewEncoder() Encoder { return &pbiEncoder{t: t} }

// NewDecoder implements Transcoder.
func (t *PartialBusInvert) NewDecoder() Decoder { return &pbiDecoder{t: t} }

func (t *PartialBusInvert) groupMask(g int) bus.Word {
	lo, hi := t.bounds[g], t.bounds[g+1]
	return bus.Mask(hi) &^ bus.Mask(lo)
}

type pbiEncoder struct {
	t     *PartialBusInvert
	state bus.Word
	ops   OpStats
}

func (e *pbiEncoder) BusWidth() int { return e.t.width + e.t.groups }

func (e *pbiEncoder) Encode(v uint64) bus.Word {
	t := e.t
	e.ops.Cycles++
	e.ops.RawSends++
	w := e.BusWidth()
	// Greedy per-group choice, left to right; each group's decision sees
	// the bus as settled so far, so boundary coupling is accounted.
	cand := e.state
	for g := 0; g < t.groups; g++ {
		gm := t.groupMask(g)
		iw := bus.Word(1) << uint(t.width+g)
		plain := (cand &^ gm) | (bus.Word(v) & gm)
		plain &^= iw
		flipped := (cand &^ gm) | (^bus.Word(v) & gm)
		flipped |= iw
		if bus.Cost(e.state, flipped, w, t.assumedLambda) < bus.Cost(e.state, plain, w, t.assumedLambda) {
			cand = flipped
		} else {
			cand = plain
		}
	}
	e.state = cand
	return cand
}

func (e *pbiEncoder) Reset()       { e.state = 0; e.ops = OpStats{} }
func (e *pbiEncoder) Ops() OpStats { return e.ops }

type pbiDecoder struct {
	t *PartialBusInvert
}

func (d *pbiDecoder) Decode(w bus.Word) uint64 {
	t := d.t
	v := uint64(w & bus.Mask(t.width))
	for g := 0; g < t.groups; g++ {
		if w&(bus.Word(1)<<uint(t.width+g)) != 0 {
			v ^= uint64(t.groupMask(g))
		}
	}
	return v
}

func (d *pbiDecoder) Reset() {}

// WorkzoneConfig parameterizes the address-bus coder.
type WorkzoneConfig struct {
	// Width is the address width in bits.
	Width int
	// Zones is the number of workzone base registers.
	Zones int
	// MaxDelta bounds the offset reach of a zone hit: addresses within
	// ±MaxDelta of a zone base are sent as low-weight delta codes.
	MaxDelta int
	// Lambda is the assumed Λ for codeword ordering and raw fallbacks.
	Lambda float64
}

// WorkzoneTranscoder exploits the locality of address streams: programs
// touch a few "working zones" (stack, several data structures, code), and
// successive addresses within a zone differ by small deltas. A hit sends a
// low-weight code for the delta; when the hit switches zones, the new
// zone's dedicated wire toggles (staying in the same zone costs no zone
// wire activity — the sector-based refinement of Aghaghiri et al.). A miss
// sends the address raw and installs it over the least recently used zone.
//
// Wire layout: W data wires, the shared 2 control wires of the channel
// protocol for raw escapes, then Z transition-coded zone wires.
type WorkzoneTranscoder struct {
	cfg  WorkzoneConfig
	cb   *Codebook
	name string
}

// NewWorkzone builds a workzone address coder.
func NewWorkzone(cfg WorkzoneConfig) (*WorkzoneTranscoder, error) {
	checkWidth(cfg.Width)
	if cfg.Zones < 1 || cfg.Zones > 8 {
		return nil, fmt.Errorf("coding: workzone zones %d outside [1, 8]", cfg.Zones)
	}
	if cfg.MaxDelta < 1 {
		return nil, fmt.Errorf("coding: workzone max delta %d < 1", cfg.MaxDelta)
	}
	if cfg.Width+2+cfg.Zones > bus.MaxWidth {
		return nil, fmt.Errorf("coding: workzone wires exceed %d", bus.MaxWidth)
	}
	// Codebook indices: 0 = delta 0, then +1, -1, +2, -2, ...
	cb, err := NewCodebook(cfg.Width, 1+2*cfg.MaxDelta, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	return &WorkzoneTranscoder{cfg: cfg, cb: cb, name: fmt.Sprintf("workzone-%dz", cfg.Zones)}, nil
}

// Name implements Transcoder.
func (t *WorkzoneTranscoder) Name() string { return t.name }

// ConfigKey implements ConfigKeyer: the name omits the width, max delta
// and assumed Λ.
func (t *WorkzoneTranscoder) ConfigKey() string {
	return fmt.Sprintf("%s-d%d/w%d/l%g", t.name, t.cfg.MaxDelta, t.cfg.Width, t.cfg.Lambda)
}

// DataWidth implements Transcoder.
func (t *WorkzoneTranscoder) DataWidth() int { return t.cfg.Width }

// NewEncoder implements Transcoder.
func (t *WorkzoneTranscoder) NewEncoder() Encoder {
	return &workzoneEncoder{t: t, st: newWorkzoneState(t.cfg), ch: newChannel(t.cfg.Width, t.cfg.Lambda)}
}

// NewDecoder implements Transcoder.
func (t *WorkzoneTranscoder) NewDecoder() Decoder {
	return &workzoneDecoder{t: t, st: newWorkzoneState(t.cfg), ch: newDecodeChannel(t.cfg.Width)}
}

// deltaIndex maps a signed delta to a codebook index (0 for 0, 1 for +1,
// 2 for -1, ...).
func deltaIndex(d int64) int {
	if d == 0 {
		return 0
	}
	if d > 0 {
		return int(2*d - 1)
	}
	return int(-2 * d)
}

// indexDelta inverts deltaIndex.
func indexDelta(i int) int64 {
	if i == 0 {
		return 0
	}
	if i%2 == 1 {
		return int64(i+1) / 2
	}
	return -int64(i) / 2
}

type workzoneState struct {
	cfg      WorkzoneConfig
	bases    []uint64
	used     []uint64 // LRU stamps
	clock    uint64
	lastZone int // zone of the previous hit (-1 initially / after a miss installs)
}

func newWorkzoneState(cfg WorkzoneConfig) workzoneState {
	return workzoneState{
		cfg:      cfg,
		bases:    make([]uint64, cfg.Zones),
		used:     make([]uint64, cfg.Zones),
		lastZone: -1,
	}
}

// match returns the zone whose base is within MaxDelta of v (smallest
// |delta| wins; ties to the lower zone), or -1.
func (s *workzoneState) match(v uint64) (zone int, delta int64) {
	mask := uint64(bus.Mask(s.cfg.Width))
	best := -1
	var bestAbs int64
	for z := range s.bases {
		d := int64((v - s.bases[z]) & mask)
		// Interpret modularly as signed.
		half := int64(1) << uint(s.cfg.Width-1)
		if d >= half {
			d -= int64(1) << uint(s.cfg.Width)
		}
		abs := d
		if abs < 0 {
			abs = -abs
		}
		if abs <= int64(s.cfg.MaxDelta) && (best < 0 || abs < bestAbs) {
			best, bestAbs, delta = z, abs, d
		}
	}
	return best, delta
}

// hit updates the matched zone's base and recency.
func (s *workzoneState) hit(zone int, v uint64) {
	s.clock++
	s.bases[zone] = v
	s.used[zone] = s.clock
	s.lastZone = zone
}

// miss installs v into the least recently used zone, which becomes the
// current zone (both ends compute the same victim).
func (s *workzoneState) miss(v uint64) {
	s.clock++
	lru := 0
	for z := 1; z < len(s.bases); z++ {
		if s.used[z] < s.used[lru] {
			lru = z
		}
	}
	s.bases[lru] = v
	s.used[lru] = s.clock
	s.lastZone = lru
}

func (s *workzoneState) reset() {
	for i := range s.bases {
		s.bases[i] = 0
		s.used[i] = 0
	}
	s.clock = 0
	s.lastZone = -1
}

type workzoneEncoder struct {
	t   *WorkzoneTranscoder
	st  workzoneState
	ch  channel
	ops OpStats

	// zoneState is the absolute state of the zone wires, which live above
	// the channel's data+control wires; toggling zone wire z flags a hit
	// in zone z.
	zoneState bus.Word
}

// BusWidth: data + 2 control + zone wires.
func (e *workzoneEncoder) BusWidth() int { return e.ch.busWidth() + e.t.cfg.Zones }

func (e *workzoneEncoder) Encode(v uint64) bus.Word {
	t := e.t
	v &= uint64(e.ch.dataMask)
	e.ops.Cycles++
	e.ops.PartialMatches += uint64(t.cfg.Zones)
	zone, delta := e.st.match(v)
	var out bus.Word
	if zone >= 0 {
		e.ops.CodeSends++
		out = e.ch.sendCode(t.cb.Code(deltaIndex(delta)))
		if zone != e.st.lastZone {
			e.zoneState ^= e.zoneWire(zone)
		}
		e.st.hit(zone, v)
	} else {
		e.ops.RawSends++
		e.ops.Shifts++
		out, _ = e.ch.sendRaw(v)
		e.st.miss(v)
	}
	return out | e.zoneState
}

func (e *workzoneEncoder) zoneWire(z int) bus.Word {
	return bus.Word(1) << uint(e.t.cfg.Width+2+z)
}

func (e *workzoneEncoder) Reset() {
	e.st.reset()
	e.ch.reset()
	e.zoneState = 0
	e.ops = OpStats{}
}
func (e *workzoneEncoder) Ops() OpStats { return e.ops }

type workzoneDecoder struct {
	t  *WorkzoneTranscoder
	st workzoneState
	ch decodeChannel

	zoneState bus.Word
}

func (d *workzoneDecoder) Decode(w bus.Word) uint64 {
	t := d.t
	zonesMask := (bus.Mask(t.cfg.Zones)) << uint(t.cfg.Width+2)
	zoneT := (d.zoneState ^ w) & zonesMask
	d.zoneState = w & zonesMask
	mode, payload := d.ch.observe(w &^ zonesMask)
	var v uint64
	switch mode {
	case modeCode:
		zone := d.st.lastZone
		if zoneT != 0 {
			zone = 0
			for zt := zoneT >> uint(t.cfg.Width+2); zt != 1; zt >>= 1 {
				zone++
			}
		}
		if zone < 0 {
			panic("coding: workzone decoder saw a zone hit before any zone was established")
		}
		idx, ok := t.cb.Index(payload)
		if !ok {
			panic(fmt.Sprintf("coding: workzone decoder received non-codeword %#x", payload))
		}
		v = (d.st.bases[zone] + uint64(indexDelta(idx))) & uint64(bus.Mask(t.cfg.Width))
		d.st.hit(zone, v)
	default:
		v = uint64(payload)
		d.st.miss(v)
	}
	return v
}

func (d *workzoneDecoder) Reset() {
	d.st.reset()
	d.ch.reset()
	d.zoneState = 0
}
