package coding

import (
	"testing"
	"testing/quick"

	"buspower/internal/bus"
	"buspower/internal/stats"
)

func TestPartialBusInvertRoundTrip(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, groups := range []int{1, 2, 4, 8} {
		pbi, err := NewPartialBusInvert(32, groups, 1)
		if err != nil {
			t.Fatal(err)
		}
		trace := make([]uint64, 2000)
		for i := range trace {
			trace[i] = rng.Uint64() & 0xFFFFFFFF
		}
		if _, err := Evaluate(pbi, trace, 1); err != nil {
			t.Errorf("groups=%d: %v", groups, err)
		}
	}
}

func TestPartialBusInvertQuick(t *testing.T) {
	pbi, err := NewPartialBusInvert(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint16) bool {
		trace := make([]uint64, len(raw))
		for i, v := range raw {
			trace[i] = uint64(v)
		}
		_, err := Evaluate(pbi, trace, 1)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPartialBusInvertOneGroupMatchesBusInvert(t *testing.T) {
	// With one group and λ0, per-cycle transitions must respect the
	// classic bus-invert bound: at most ceil((W+1)/2).
	pbi, err := NewPartialBusInvert(32, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := pbi.NewEncoder()
	rng := stats.NewRNG(4)
	prev := enc.Encode(0)
	for i := 0; i < 500; i++ {
		w := enc.Encode(rng.Uint64())
		if d := bus.Weight(prev ^ w); d > 17 {
			t.Fatalf("one-group partial bus-invert produced %d transitions", d)
		}
		prev = w
	}
}

func TestPartialBusInvertBeatsClassicOnMixedTraffic(t *testing.T) {
	// Traffic where the low half repeats and the high half flips: a
	// per-group decision saves what a global decision cannot.
	trace := make([]uint64, 2000)
	for i := range trace {
		lo := uint64(0x0000ABCD)
		hi := uint64(0)
		if i%2 == 0 {
			hi = 0xFFFF0000
		}
		trace[i] = hi | lo
	}
	classic, _ := NewPartialBusInvert(32, 1, 0)
	grouped, _ := NewPartialBusInvert(32, 2, 0)
	rc := MustEvaluate(classic, trace, 0)
	rg := MustEvaluate(grouped, trace, 0)
	if rg.CodedCost() >= rc.CodedCost() {
		t.Errorf("2-group invert (%v) should beat classic (%v) on split traffic", rg.CodedCost(), rc.CodedCost())
	}
}

func TestPartialBusInvertValidation(t *testing.T) {
	if _, err := NewPartialBusInvert(32, 0, 0); err == nil {
		t.Error("0 groups accepted")
	}
	if _, err := NewPartialBusInvert(32, 33, 0); err == nil {
		t.Error("more groups than wires accepted")
	}
	if _, err := NewPartialBusInvert(62, 4, 0); err == nil {
		t.Error("wire budget overflow accepted")
	}
}

func TestWorkzoneRoundTrip(t *testing.T) {
	wz, err := NewWorkzone(WorkzoneConfig{Width: 32, Zones: 4, MaxDelta: 8, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	// Address-like traffic: three strided streams plus noise.
	bases := []uint64{0x1000, 0x80000, 0xFFF00}
	offs := make([]uint64, len(bases))
	trace := make([]uint64, 4000)
	for i := range trace {
		if rng.Intn(12) == 0 {
			trace[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			s := rng.Intn(len(bases))
			offs[s] += uint64(rng.Intn(3)) // deltas 0..2
			trace[i] = bases[s] + offs[s]
		}
	}
	if _, err := Evaluate(wz, trace, 1); err != nil {
		t.Error(err)
	}
}

func TestWorkzoneQuick(t *testing.T) {
	wz, err := NewWorkzone(WorkzoneConfig{Width: 16, Zones: 2, MaxDelta: 4, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint16) bool {
		trace := make([]uint64, len(raw))
		for i, v := range raw {
			trace[i] = uint64(v)
		}
		_, err := Evaluate(wz, trace, 1)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkzoneSequentialAddressesNearFree(t *testing.T) {
	// A sequential address sweep (the best case for workzone coding):
	// after the first miss every beat is a delta-1 hit, costing at most
	// the zone wire plus one data wire per cycle.
	wz, _ := NewWorkzone(WorkzoneConfig{Width: 32, Zones: 2, MaxDelta: 4, Lambda: 1})
	enc := wz.NewEncoder()
	prev := enc.Encode(0x4000)
	for i := 1; i <= 200; i++ {
		w := enc.Encode(uint64(0x4000 + i))
		if d := bus.Weight(prev ^ w); d > 2 {
			t.Fatalf("step %d: sequential address cost %d transitions, want <= 2", i, d)
		}
		prev = w
	}
}

func TestWorkzoneBeatsBusInvertOnAddresses(t *testing.T) {
	// Interleaved strided streams — the traffic pattern zone coding was
	// invented for.
	rng := stats.NewRNG(7)
	trace := make([]uint64, 6000)
	a, b := uint64(0x10000), uint64(0x900000)
	for i := range trace {
		if i%2 == 0 {
			a += 4
			trace[i] = a
		} else {
			b += uint64(rng.Intn(2)) * 4
			trace[i] = b
		}
	}
	wz, _ := NewWorkzone(WorkzoneConfig{Width: 32, Zones: 4, MaxDelta: 8, Lambda: 1})
	bi, _ := NewBusInvert(32, 1)
	rw := MustEvaluate(wz, trace, 1)
	rb := MustEvaluate(bi, trace, 1)
	if rw.EnergyRemoved() <= rb.EnergyRemoved() {
		t.Errorf("workzone (%.3f) should beat bus-invert (%.3f) on strided addresses",
			rw.EnergyRemoved(), rb.EnergyRemoved())
	}
	if rw.EnergyRemoved() < 0.5 {
		t.Errorf("workzone savings on strided addresses suspiciously low: %.3f", rw.EnergyRemoved())
	}
}

func TestWorkzoneLRUReplacement(t *testing.T) {
	wz, _ := NewWorkzone(WorkzoneConfig{Width: 32, Zones: 2, MaxDelta: 2, Lambda: 1})
	enc := wz.NewEncoder().(*workzoneEncoder)
	enc.Encode(0x1000) // miss -> zone
	enc.Encode(0x2000) // miss -> other zone
	enc.Encode(0x1001) // hit zone 0 (refreshes it)
	enc.Encode(0x3000) // miss -> must evict 0x2000's zone (LRU)
	if z, _ := enc.st.match(0x1002); z < 0 {
		t.Error("recently used zone was evicted")
	}
	if z, _ := enc.st.match(0x2001); z >= 0 {
		t.Error("LRU zone survived replacement")
	}
}

func TestDeltaIndexRoundTrip(t *testing.T) {
	for d := int64(-20); d <= 20; d++ {
		if got := indexDelta(deltaIndex(d)); got != d {
			t.Errorf("delta %d -> index %d -> %d", d, deltaIndex(d), got)
		}
	}
	// Indices must be compact: 0..2*max.
	seen := map[int]bool{}
	for d := int64(-5); d <= 5; d++ {
		i := deltaIndex(d)
		if i < 0 || i > 10 || seen[i] {
			t.Errorf("delta %d: bad or duplicate index %d", d, i)
		}
		seen[i] = true
	}
}

func TestWorkzoneValidation(t *testing.T) {
	bad := []WorkzoneConfig{
		{Width: 32, Zones: 0, MaxDelta: 4},
		{Width: 32, Zones: 9, MaxDelta: 4},
		{Width: 32, Zones: 4, MaxDelta: 0},
		{Width: 61, Zones: 4, MaxDelta: 4},
	}
	for _, cfg := range bad {
		cfg.Lambda = 1
		if _, err := NewWorkzone(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
