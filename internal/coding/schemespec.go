package coding

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SchemeSpec is the parsed, canonical form of a textual transcoder
// configuration — the grammar the serving API and tools accept:
//
//	kind[:key=value[,key=value...]]
//
// Common keys (valid for every kind):
//
//	width=N   data width in bits, 1..62 (default 32; spatial allows 1..6)
//	lambda=F  assumed Λ for cost functions, finite and >= 0 (default 1)
//
// Kinds and their specific keys:
//
//	raw                                 identity baseline
//	gray                                Gray-code address baseline
//	spatial                             one-hot transition coding (width <= 6)
//	businvert                           classic bus-invert
//	inversion   patterns=N (1..8)       generalized inversion coding
//	pbi         groups=N   (1..width)   partial bus-invert
//	stride      strides=N  (1..4096)    strided predictor bank
//	window      entries=N  (1..4096)    shift-register dictionary
//	context     table=N (1..4096), sr=N (1..4096),
//	            divide=N (0..2^30), transition=BOOL
//	                                    frequency-table transcoder
//	optmem      extra=N (1..8)          optimal memoryless codebook
//	vc          extra=N (1..8)          Valentini–Chiani transition code
//	lowweight   groups=N (1..8), extra=N (1..4)
//	                                    practical low-weight code
//	dvs         extra=N (1..8), vdd=N (50..100)
//	                                    voltage-scaled transition code
//
// Parsing is strict: unknown kinds or keys, duplicate keys, out-of-range
// values and malformed numbers are all errors, so a typo can never
// silently select a different experiment than intended. ParseSchemeSpec
// and String round-trip: for any accepted input, String returns a
// canonical form that re-parses to an identical SchemeSpec.
type SchemeSpec struct {
	// Kind is the scheme family, e.g. "window".
	Kind string
	// Width is the data width in bits.
	Width int
	// Lambda is the assumed Λ of the scheme's cost function.
	Lambda float64
	// Entries holds the kind's primary size parameter: window entries,
	// stride count, inversion pattern-set size, partial bus-invert or
	// low-weight groups, or context table size. Zero for kinds without one.
	Entries int
	// SR is the context coder's shift-register size.
	SR int
	// Extra is the enumerative coders' redundant-wire count (per group
	// for lowweight). Zero for other kinds.
	Extra int
	// Vdd is the dvs coder's operating supply in percent of nominal.
	Vdd int
	// Divide is the context coder's counter division period.
	Divide int
	// Transition selects the context coder's transition-based flavour.
	Transition bool
}

// Parameter bounds. These are tighter than what the constructors
// technically admit: the spec grammar fronts a network API, so sizes are
// capped at values that cannot be abused to provoke huge allocations.
const (
	maxSchemeEntries = 4096
	maxSchemeDivide  = 1 << 30
)

// schemeKind describes one accepted kind: which specific keys it takes
// (in canonical print order) and the defaults Parse fills in.
type schemeKind struct {
	keys     []string
	defaults SchemeSpec
}

var schemeKinds = map[string]schemeKind{
	"raw":       {},
	"gray":      {},
	"spatial":   {},
	"businvert": {},
	"inversion": {keys: []string{"patterns"}, defaults: SchemeSpec{Entries: 4}},
	"pbi":       {keys: []string{"groups"}, defaults: SchemeSpec{Entries: 4}},
	"stride":    {keys: []string{"strides"}, defaults: SchemeSpec{Entries: 4}},
	"window":    {keys: []string{"entries"}, defaults: SchemeSpec{Entries: 8}},
	"context":   {keys: []string{"table", "sr", "divide", "transition"}, defaults: SchemeSpec{Entries: 16, SR: 8, Divide: 4096}},
	"optmem":    {keys: []string{"extra"}, defaults: SchemeSpec{Extra: 2}},
	"vc":        {keys: []string{"extra"}, defaults: SchemeSpec{Extra: 2}},
	"lowweight": {keys: []string{"groups", "extra"}, defaults: SchemeSpec{Entries: 4, Extra: 1}},
	"dvs":       {keys: []string{"extra", "vdd"}, defaults: SchemeSpec{Extra: 2, Vdd: 80}},
}

// SchemeKinds lists the accepted scheme kinds in sorted order.
func SchemeKinds() []string {
	out := make([]string, 0, len(schemeKinds))
	for k := range schemeKinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseSchemeSpec parses and validates a scheme configuration string.
// The returned spec always has every field populated (defaults applied),
// and Build on it succeeds unless the width/parameter *combination* is
// invalid (e.g. spatial at width 32, a codebook larger than the width
// admits) — those combination errors surface from Build with the
// constructor's message.
func ParseSchemeSpec(s string) (SchemeSpec, error) {
	kindName, rest, hasParams := strings.Cut(s, ":")
	kindName = strings.TrimSpace(kindName)
	kind, ok := schemeKinds[kindName]
	if !ok {
		return SchemeSpec{}, fmt.Errorf("coding: unknown scheme kind %q (want one of %s)", kindName, strings.Join(SchemeKinds(), ", "))
	}
	spec := kind.defaults
	spec.Kind = kindName
	spec.Width = 32
	spec.Lambda = 1

	if !hasParams {
		return spec, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return SchemeSpec{}, fmt.Errorf("coding: scheme parameter %q is not key=value", part)
		}
		if seen[key] {
			return SchemeSpec{}, fmt.Errorf("coding: duplicate scheme parameter %q", key)
		}
		seen[key] = true
		if err := spec.setParam(kind, key, val); err != nil {
			return SchemeSpec{}, err
		}
	}
	return spec, nil
}

func (spec *SchemeSpec) setParam(kind schemeKind, key, val string) error {
	intParam := func(lo, hi int) (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("coding: scheme parameter %s=%q is not an integer", key, val)
		}
		if n < lo || n > hi {
			return 0, fmt.Errorf("coding: scheme parameter %s=%d outside [%d, %d]", key, n, lo, hi)
		}
		return n, nil
	}
	switch key {
	case "width":
		n, err := intParam(1, 62)
		if err != nil {
			return err
		}
		spec.Width = n
		return nil
	case "lambda":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return fmt.Errorf("coding: scheme parameter lambda=%q is not a finite non-negative number", val)
		}
		spec.Lambda = f
		return nil
	}
	for _, k := range kind.keys {
		if k != key {
			continue
		}
		switch key {
		case "patterns":
			n, err := intParam(1, 8)
			if err != nil {
				return err
			}
			spec.Entries = n
		case "groups", "strides", "entries", "table":
			hi := maxSchemeEntries
			if spec.Kind == "lowweight" {
				hi = 8 // groups: one enumerative datapath each
			}
			n, err := intParam(1, hi)
			if err != nil {
				return err
			}
			spec.Entries = n
		case "extra":
			hi := 8
			if spec.Kind == "lowweight" {
				hi = 4 // per group
			}
			n, err := intParam(1, hi)
			if err != nil {
				return err
			}
			spec.Extra = n
		case "vdd":
			n, err := intParam(50, 100)
			if err != nil {
				return err
			}
			spec.Vdd = n
		case "sr":
			n, err := intParam(1, maxSchemeEntries)
			if err != nil {
				return err
			}
			spec.SR = n
		case "divide":
			n, err := intParam(0, maxSchemeDivide)
			if err != nil {
				return err
			}
			spec.Divide = n
		case "transition":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return fmt.Errorf("coding: scheme parameter transition=%q is not a boolean", val)
			}
			spec.Transition = b
		}
		return nil
	}
	return fmt.Errorf("coding: scheme kind %s does not take parameter %q", spec.Kind, key)
}

// String returns the canonical form of the spec: the kind followed by
// every parameter the kind takes, in fixed order, with width and lambda
// printed only when they differ from their defaults. The output re-parses
// to an identical SchemeSpec.
func (spec SchemeSpec) String() string {
	var b strings.Builder
	b.WriteString(spec.Kind)
	sep := byte(':')
	put := func(key, val string) {
		b.WriteByte(sep)
		sep = ','
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	for _, key := range schemeKinds[spec.Kind].keys {
		switch key {
		case "patterns", "groups", "strides", "entries", "table":
			put(key, strconv.Itoa(spec.Entries))
		case "sr":
			put(key, strconv.Itoa(spec.SR))
		case "extra":
			put(key, strconv.Itoa(spec.Extra))
		case "vdd":
			put(key, strconv.Itoa(spec.Vdd))
		case "divide":
			put(key, strconv.Itoa(spec.Divide))
		case "transition":
			put(key, strconv.FormatBool(spec.Transition))
		}
	}
	if spec.Width != 32 {
		put("width", strconv.Itoa(spec.Width))
	}
	if spec.Lambda != 1 {
		put("lambda", strconv.FormatFloat(spec.Lambda, 'g', -1, 64))
	}
	return b.String()
}

// Build constructs the transcoder the spec describes.
func (spec SchemeSpec) Build() (Transcoder, error) {
	if spec.Width < 1 || spec.Width > 62 {
		return nil, fmt.Errorf("coding: scheme width %d outside [1, 62]", spec.Width)
	}
	switch spec.Kind {
	case "raw":
		return NewRaw(spec.Width), nil
	case "gray":
		return NewGray(spec.Width)
	case "spatial":
		return NewSpatial(spec.Width)
	case "businvert":
		return NewBusInvert(spec.Width, spec.Lambda)
	case "inversion":
		pats, err := DefaultInversionPatterns(spec.Width, spec.Entries)
		if err != nil {
			return nil, err
		}
		return NewInversion(spec.Width, pats, spec.Lambda)
	case "pbi":
		return NewPartialBusInvert(spec.Width, spec.Entries, spec.Lambda)
	case "stride":
		return NewStride(spec.Width, spec.Entries, spec.Lambda)
	case "window":
		return NewWindow(spec.Width, spec.Entries, spec.Lambda)
	case "optmem":
		return NewOptMem(spec.Width, spec.Extra)
	case "vc":
		return NewVC(spec.Width, spec.Extra)
	case "lowweight":
		return NewLowWeight(spec.Width, spec.Entries, spec.Extra)
	case "dvs":
		return NewDVS(spec.Width, spec.Extra, spec.Vdd)
	case "context":
		return NewContext(ContextConfig{
			Width:           spec.Width,
			TableSize:       spec.Entries,
			ShiftEntries:    spec.SR,
			DividePeriod:    spec.Divide,
			TransitionBased: spec.Transition,
			Lambda:          spec.Lambda,
		})
	}
	return nil, fmt.Errorf("coding: unknown scheme kind %q", spec.Kind)
}

// BuildScheme parses and builds in one step.
func BuildScheme(s string) (Transcoder, error) {
	spec, err := ParseSchemeSpec(s)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}
