package coding

import (
	"strings"
	"testing"
)

func TestParseSchemeSpec(t *testing.T) {
	cases := []struct {
		in        string
		want      SchemeSpec
		canonical string
	}{
		{"raw", SchemeSpec{Kind: "raw", Width: 32, Lambda: 1}, "raw"},
		{"gray", SchemeSpec{Kind: "gray", Width: 32, Lambda: 1}, "gray"},
		{"spatial:width=4", SchemeSpec{Kind: "spatial", Width: 4, Lambda: 1}, "spatial:width=4"},
		{"businvert", SchemeSpec{Kind: "businvert", Width: 32, Lambda: 1}, "businvert"},
		{"businvert:lambda=2.5", SchemeSpec{Kind: "businvert", Width: 32, Lambda: 2.5}, "businvert:lambda=2.5"},
		{"inversion", SchemeSpec{Kind: "inversion", Width: 32, Lambda: 1, Entries: 4}, "inversion:patterns=4"},
		{"inversion:patterns=8", SchemeSpec{Kind: "inversion", Width: 32, Lambda: 1, Entries: 8}, "inversion:patterns=8"},
		{"pbi:groups=2", SchemeSpec{Kind: "pbi", Width: 32, Lambda: 1, Entries: 2}, "pbi:groups=2"},
		{"stride:strides=15", SchemeSpec{Kind: "stride", Width: 32, Lambda: 1, Entries: 15}, "stride:strides=15"},
		{"window", SchemeSpec{Kind: "window", Width: 32, Lambda: 1, Entries: 8}, "window:entries=8"},
		{"window:entries=32,width=16", SchemeSpec{Kind: "window", Width: 16, Lambda: 1, Entries: 32}, "window:entries=32,width=16"},
		// Key order and spacing are normalized by the canonical form.
		{" window : width=16 , entries=32 ", SchemeSpec{Kind: "window", Width: 16, Lambda: 1, Entries: 32}, "window:entries=32,width=16"},
		{"context", SchemeSpec{Kind: "context", Width: 32, Lambda: 1, Entries: 16, SR: 8, Divide: 4096}, "context:table=16,sr=8,divide=4096,transition=false"},
		{"context:table=64,sr=4,divide=1024,transition=true",
			SchemeSpec{Kind: "context", Width: 32, Lambda: 1, Entries: 64, SR: 4, Divide: 1024, Transition: true},
			"context:table=64,sr=4,divide=1024,transition=true"},
		{"optmem", SchemeSpec{Kind: "optmem", Width: 32, Lambda: 1, Extra: 2}, "optmem:extra=2"},
		{"optmem:extra=4,width=16", SchemeSpec{Kind: "optmem", Width: 16, Lambda: 1, Extra: 4}, "optmem:extra=4,width=16"},
		{"vc", SchemeSpec{Kind: "vc", Width: 32, Lambda: 1, Extra: 2}, "vc:extra=2"},
		{"vc:extra=1", SchemeSpec{Kind: "vc", Width: 32, Lambda: 1, Extra: 1}, "vc:extra=1"},
		{"lowweight", SchemeSpec{Kind: "lowweight", Width: 32, Lambda: 1, Entries: 4, Extra: 1}, "lowweight:groups=4,extra=1"},
		{"lowweight:extra=2,groups=8", SchemeSpec{Kind: "lowweight", Width: 32, Lambda: 1, Entries: 8, Extra: 2}, "lowweight:groups=8,extra=2"},
		{"dvs", SchemeSpec{Kind: "dvs", Width: 32, Lambda: 1, Extra: 2, Vdd: 80}, "dvs:extra=2,vdd=80"},
		{"dvs:vdd=65,extra=3", SchemeSpec{Kind: "dvs", Width: 32, Lambda: 1, Extra: 3, Vdd: 65}, "dvs:extra=3,vdd=65"},
	}
	for _, c := range cases {
		spec, err := ParseSchemeSpec(c.in)
		if err != nil {
			t.Errorf("ParseSchemeSpec(%q): %v", c.in, err)
			continue
		}
		if spec != c.want {
			t.Errorf("ParseSchemeSpec(%q) = %+v, want %+v", c.in, spec, c.want)
		}
		if got := spec.String(); got != c.canonical {
			t.Errorf("ParseSchemeSpec(%q).String() = %q, want %q", c.in, got, c.canonical)
		}
		// The canonical form must re-parse to the identical spec.
		back, err := ParseSchemeSpec(spec.String())
		if err != nil {
			t.Errorf("reparse %q: %v", spec.String(), err)
		} else if back != spec {
			t.Errorf("reparse %q = %+v, want %+v", spec.String(), back, spec)
		}
	}
}

func TestParseSchemeSpecRejects(t *testing.T) {
	cases := []struct {
		in      string
		errLike string
	}{
		{"", "unknown scheme kind"},
		{"windo", "unknown scheme kind"},
		{"window:entries", "not key=value"},
		{"window:entries=", "not key=value"},
		{"window:entries=two", "not an integer"},
		{"window:entries=0", "outside"},
		{"window:entries=5000", "outside"},
		{"window:entries=4,entries=8", "duplicate"},
		{"window:table=4", "does not take parameter"},
		{"raw:entries=4", "does not take parameter"},
		{"window:width=0", "outside"},
		{"window:width=63", "outside"},
		{"window:lambda=-1", "finite non-negative"},
		{"window:lambda=NaN", "finite non-negative"},
		{"window:lambda=+Inf", "finite non-negative"},
		{"context:transition=maybe", "not a boolean"},
		{"context:divide=-1", "outside"},
		{"inversion:patterns=9", "outside"},
		{"optmem:extra=0", "outside"},
		{"optmem:extra=9", "outside"},
		{"optmem:entries=4", "does not take parameter"},
		{"vc:vdd=80", "does not take parameter"},
		{"vc:extra=9", "outside"},
		{"lowweight:groups=9", "outside"},
		{"lowweight:extra=5", "outside"},
		{"lowweight:patterns=2", "does not take parameter"},
		{"dvs:vdd=49", "outside"},
		{"dvs:vdd=101", "outside"},
		{"dvs:groups=2", "does not take parameter"},
	}
	for _, c := range cases {
		if _, err := ParseSchemeSpec(c.in); err == nil {
			t.Errorf("ParseSchemeSpec(%q) succeeded, want error containing %q", c.in, c.errLike)
		} else if !strings.Contains(err.Error(), c.errLike) {
			t.Errorf("ParseSchemeSpec(%q) error %q does not contain %q", c.in, err, c.errLike)
		}
	}
}

// TestBuildSchemeRoundTrips proves each buildable spec produces a working
// transcoder whose ConfigKey is stable, and that building twice from the
// same canonical string yields transcoders with equal ConfigKeys (the
// identity the eval memo and Evaluator scratch reuse key on).
func TestBuildSchemeRoundTrips(t *testing.T) {
	specs := []string{
		"raw", "gray", "spatial:width=4", "businvert", "inversion:patterns=8",
		"pbi:groups=4", "stride:strides=4", "window:entries=8",
		"context:table=16,sr=8,divide=1024,transition=true",
		"context:table=16,sr=8,divide=1024",
		"optmem:extra=2", "vc:extra=3", "lowweight:groups=4,extra=1",
		"dvs:extra=2,vdd=70",
	}
	trace := []uint64{0, 1, 2, 3, 0xdeadbeef, 42, 42, 42, 7, 0}
	for _, s := range specs {
		tc, err := BuildScheme(s)
		if err != nil {
			t.Fatalf("BuildScheme(%q): %v", s, err)
		}
		tc2, err := BuildScheme(s)
		if err != nil {
			t.Fatalf("BuildScheme(%q) second build: %v", s, err)
		}
		if ConfigKey(tc) != ConfigKey(tc2) {
			t.Errorf("BuildScheme(%q): unstable ConfigKey %q vs %q", s, ConfigKey(tc), ConfigKey(tc2))
		}
		if _, err := Evaluate(tc, trace, 1); err != nil {
			t.Errorf("BuildScheme(%q): evaluation failed: %v", s, err)
		}
	}
}

// TestBuildSchemeCombinationErrors: specs that parse but whose parameter
// combination no constructor admits must fail in Build, not panic.
func TestBuildSchemeCombinationErrors(t *testing.T) {
	for _, s := range []string{
		"spatial",                        // spatial needs width <= 6
		"window:entries=100,width=8",     // codebook larger than width 8 admits
		"context:table=90,sr=90,width=8", // ditto
		"optmem:extra=2,width=61",        // 63 coded wires
		"vc:extra=8,width=55",            // ditto
		"lowweight:groups=8,width=4",     // more groups than bits
		"dvs:extra=2,width=60",           // 63 wires with the parity line
	} {
		if _, err := BuildScheme(s); err == nil {
			t.Errorf("BuildScheme(%q) succeeded, want error", s)
		}
	}
}
