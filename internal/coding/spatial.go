package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// SpatialTranscoder implements the stateless "spatial encoder" of §4.3
// (Figure 9): the W_B-bit input value is converted to a toggle of the
// single wire whose index equals the value, on a bus of 2^W_B wires. Every
// input therefore causes exactly one transition, at the cost of an
// exponential number of wires — the paper includes it as the
// minimum-communication-energy extreme, impractical for real widths.
//
// Because the coded bus must fit a 64-bit bus word for metering, data
// widths up to 6 bits are supported; that is enough to demonstrate and
// test the scheme.
type SpatialTranscoder struct {
	width int
	name  string
}

// NewSpatial returns a spatial transcoder for data widths 1..6.
func NewSpatial(width int) (*SpatialTranscoder, error) {
	if width < 1 || width > 6 {
		return nil, fmt.Errorf("coding: spatial coder width %d outside [1, 6] (needs 2^width wires)", width)
	}
	return &SpatialTranscoder{width: width, name: fmt.Sprintf("spatial-%d", width)}, nil
}

// Name implements Transcoder.
func (s *SpatialTranscoder) Name() string { return s.name }

// DataWidth implements Transcoder.
func (s *SpatialTranscoder) DataWidth() int { return s.width }

// NewEncoder implements Transcoder.
func (s *SpatialTranscoder) NewEncoder() Encoder { return &spatialEncoder{width: s.width} }

// NewDecoder implements Transcoder.
func (s *SpatialTranscoder) NewDecoder() Decoder { return &spatialDecoder{width: s.width} }

type spatialEncoder struct {
	width int
	state bus.Word
}

func (e *spatialEncoder) Encode(v uint64) bus.Word {
	v &= uint64(bus.Mask(e.width))
	e.state ^= bus.Word(1) << uint(v)
	return e.state
}
func (e *spatialEncoder) BusWidth() int { return 1 << uint(e.width) }
func (e *spatialEncoder) Reset()        { e.state = 0 }

type spatialDecoder struct {
	width int
	state bus.Word
	last  uint64
}

func (d *spatialDecoder) Decode(w bus.Word) uint64 {
	t := d.state ^ w
	d.state = w
	if bus.Weight(t) != 1 {
		panic(fmt.Sprintf("coding: spatial decoder saw %d toggles, want exactly 1", bus.Weight(t)))
	}
	v := uint64(0)
	for t != 1 {
		t >>= 1
		v++
	}
	d.last = v
	return v
}
func (d *spatialDecoder) Reset() { d.state = 0; d.last = 0 }
