package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// StrideTranscoder implements the strided predictor of §4.3 (Figure 11):
// a shift register of previous bus values feeds a bank of stride
// predictors — stride over every data-word, every other data-word, every
// third, and so on. Lower-order strides are assumed more probable (higher
// confidence) and receive lower-weight codes; the lowest interval whose
// prediction matches the input is sent. LAST-value prediction is folded in
// as code 0, per the paper.
//
// Stride k predicts  h[k-1] + (h[k-1] − h[2k-1])  where h[0] is the most
// recent value, i.e. it extrapolates the difference between the last two
// values observed at interval k.
type StrideTranscoder struct {
	width   int
	strides int
	lambda  float64
	cb      *Codebook
	name    string
}

// NewStride builds a stride transcoder with predictors for intervals
// 1..strides; lambda is the assumed Λ used to order codewords and choose
// raw-vs-inverted fallbacks.
func NewStride(width, strides int, lambda float64) (*StrideTranscoder, error) {
	checkWidth(width)
	if strides < 1 {
		return nil, fmt.Errorf("coding: stride count %d < 1", strides)
	}
	cb, err := NewCodebook(width, 1+strides, lambda)
	if err != nil {
		return nil, err
	}
	return &StrideTranscoder{
		width:   width,
		strides: strides,
		lambda:  lambda,
		cb:      cb,
		name:    fmt.Sprintf("stride-%d", strides),
	}, nil
}

// Name implements Transcoder.
func (t *StrideTranscoder) Name() string { return t.name }

// ConfigKey implements ConfigKeyer: the name omits the width and the
// assumed Λ.
func (t *StrideTranscoder) ConfigKey() string {
	return fmt.Sprintf("%s/w%d/l%g", t.name, t.width, t.lambda)
}

// DataWidth implements Transcoder.
func (t *StrideTranscoder) DataWidth() int { return t.width }

// NewEncoder implements Transcoder.
func (t *StrideTranscoder) NewEncoder() Encoder {
	return &strideEncoder{t: t, hist: newStrideHistory(t.strides), ch: newChannel(t.width, t.lambda)}
}

// NewDecoder implements Transcoder.
func (t *StrideTranscoder) NewDecoder() Decoder {
	return &strideDecoder{t: t, hist: newStrideHistory(t.strides), ch: newDecodeChannel(t.width)}
}

// strideHistory is a ring of the last 2·K values; index 0 is most recent.
type strideHistory struct {
	vals []uint64
	pos  int
}

func newStrideHistory(strides int) strideHistory {
	return strideHistory{vals: make([]uint64, 2*strides)}
}

func (h *strideHistory) push(v uint64) {
	h.vals[h.pos] = v
	h.pos++
	if h.pos == len(h.vals) {
		h.pos = 0
	}
}

// at returns the i-th most recent value (0-based).
func (h *strideHistory) at(i int) uint64 {
	idx := h.pos - 1 - i
	for idx < 0 {
		idx += len(h.vals)
	}
	return h.vals[idx]
}

// predict returns the stride-k prediction (wrapping arithmetic, masked).
func (h *strideHistory) predict(k, width int) uint64 {
	a := h.at(k - 1)
	b := h.at(2*k - 1)
	return (a + (a - b)) & uint64(bus.Mask(width))
}

func (h *strideHistory) reset() {
	for i := range h.vals {
		h.vals[i] = 0
	}
	h.pos = 0
}

type strideEncoder struct {
	t    *StrideTranscoder
	hist strideHistory
	ch   channel
	ops  OpStats
}

func (e *strideEncoder) Encode(v uint64) bus.Word {
	t := e.t
	v &= uint64(e.ch.dataMask)
	e.ops.Cycles++
	var out bus.Word
	switch {
	case v == e.hist.at(0):
		e.ops.LastHits++
		out = e.ch.sendCode(0)
	default:
		matched := -1
		for k := 1; k <= t.strides; k++ {
			e.ops.PartialMatches++
			if e.hist.predict(k, t.width) == v {
				matched = k
				break
			}
		}
		if matched > 0 {
			e.ops.CodeSends++
			out = e.ch.sendCode(t.cb.Code(matched))
		} else {
			e.ops.RawSends++
			out, _ = e.ch.sendRaw(v)
		}
	}
	e.hist.push(v)
	return out
}

// encodeStream implements streamEncoder: the per-cycle algorithm of
// Encode with the op counters hoisted into locals; the channel
// self-accounts the run's Σ activity (see beginBlock), folded into the
// meter stream with one AddBlock at the end.
// TestStrideEncodeStreamMatchesEncode pins it cycle-for-cycle.
func (e *strideEncoder) encodeStream(vals []uint64, st *bus.MeterStream) {
	t := e.t
	mask := uint64(e.ch.dataMask)
	strides := t.strides
	width := t.width
	e.ch.beginBlock()
	var lastHits, codeSends, rawSends, partial uint64
	for _, v := range vals {
		v &= mask
		if v == e.hist.at(0) {
			lastHits++
		} else {
			matched := -1
			for k := 1; k <= strides; k++ {
				partial++
				if e.hist.predict(k, width) == v {
					matched = k
					break
				}
			}
			if matched > 0 {
				codeSends++
				e.ch.sendCode(t.cb.Code(matched))
			} else {
				rawSends++
				e.ch.sendRaw(v)
			}
		}
		e.hist.push(v)
	}
	st.AddBlock(uint64(len(vals)), e.ch.accT, e.ch.accC, e.ch.state)
	e.ops.Cycles += uint64(len(vals))
	e.ops.LastHits += lastHits
	e.ops.CodeSends += codeSends
	e.ops.RawSends += rawSends
	e.ops.PartialMatches += partial
}

func (e *strideEncoder) BusWidth() int { return e.ch.busWidth() }
func (e *strideEncoder) Reset() {
	e.hist.reset()
	e.ch.reset()
	e.ops = OpStats{}
}
func (e *strideEncoder) Ops() OpStats { return e.ops }

type strideDecoder struct {
	t    *StrideTranscoder
	hist strideHistory
	ch   decodeChannel
}

func (d *strideDecoder) Decode(w bus.Word) uint64 {
	t := d.t
	mode, payload := d.ch.observe(w)
	var v uint64
	switch mode {
	case modeCode:
		idx, ok := t.cb.Index(payload)
		if !ok {
			panic(fmt.Sprintf("coding: stride decoder received non-codeword transition %#x", payload))
		}
		if idx == 0 {
			v = d.hist.at(0)
		} else {
			v = d.hist.predict(idx, t.width)
		}
	default:
		v = uint64(payload)
	}
	d.hist.push(v)
	return v
}

func (d *strideDecoder) Reset() {
	d.hist.reset()
	d.ch.reset()
}
