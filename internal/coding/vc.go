package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// VCTranscoder implements the Valentini–Chiani optimal scheme for
// energy-efficient bus encoding (arXiv:2303.06409; PAPERS.md #2). Where
// optmem assigns fixed codewords, vc codes *transitions*: the k-bit value
// selects the value-th lowest-weight transition vector on n = k + extra
// wires, which is XORed onto the previous bus state. Every cycle
// therefore toggles at most radius wires — radius being the minimal t
// with |B(n,t)| ≥ 2^k — and value 0 toggles none; Valentini & Chiani
// prove this weight-ordered transition mapping minimizes expected
// switching among all fixed-rate codes with n wires. The encoder and
// decoder each hold one n-bit state register plus the same enumerative
// rank datapath as optmem.
type VCTranscoder struct {
	width  int // data bits
	extra  int // redundant wires
	wires  int // coded bus width = width + extra
	radius int // per-cycle transition bound (ball radius)
	stages int // normalized adder stages of the rank/unrank datapath
	name   string
}

// NewVC builds a Valentini–Chiani transition-coded transcoder.
func NewVC(width, extra int) (*VCTranscoder, error) {
	if extra < 1 || extra > 8 {
		return nil, fmt.Errorf("coding: vc extra wires %d outside [1, 8]", extra)
	}
	wires := width + extra
	if err := enumCheck("vc", width, wires); err != nil {
		return nil, err
	}
	r, err := ballRadius(wires, 1<<uint(width))
	if err != nil {
		return nil, err
	}
	return &VCTranscoder{
		width:  width,
		extra:  extra,
		wires:  wires,
		radius: r,
		stages: enumStages(wires),
		name:   fmt.Sprintf("vc-%d+%d", width, extra),
	}, nil
}

// Name implements Transcoder.
func (t *VCTranscoder) Name() string { return t.name }

// DataWidth implements Transcoder.
func (t *VCTranscoder) DataWidth() int { return t.width }

// BusWidth returns the coded bus width.
func (t *VCTranscoder) BusWidth() int { return t.wires }

// Radius returns the per-cycle transition bound: no cycle toggles more
// wires than this (property-tested).
func (t *VCTranscoder) Radius() int { return t.radius }

// Stages returns the rank/unrank datapath size in normalized 32-bit
// adder stages — the circuit model's entries parameter.
func (t *VCTranscoder) Stages() int { return t.stages }

// ConfigKey implements ConfigKeyer.
func (t *VCTranscoder) ConfigKey() string {
	return fmt.Sprintf("vc+%d/w%d", t.extra, t.width)
}

// NewEncoder implements Transcoder.
func (t *VCTranscoder) NewEncoder() Encoder { return &vcEncoder{t: t} }

// NewDecoder implements Transcoder.
func (t *VCTranscoder) NewDecoder() Decoder { return &vcDecoder{t: t} }

// gridOps mirrors optMemTranscoder.gridOps: the transition-vector unrank
// datapath switches every cycle, independent of data.
func (t *VCTranscoder) gridOps(cycles uint64) OpStats {
	return OpStats{
		Cycles:            cycles,
		CodeSends:         cycles,
		CounterIncrements: cycles * uint64(t.stages),
	}
}

type vcEncoder struct {
	t      *VCTranscoder
	state  uint64
	cycles uint64
}

func (e *vcEncoder) Encode(v uint64) bus.Word {
	e.cycles++
	e.state ^= ballUnrank(e.t.wires, v&uint64(bus.Mask(e.t.width)))
	return bus.Word(e.state)
}

func (e *vcEncoder) BusWidth() int { return e.t.wires }
func (e *vcEncoder) Reset()        { e.state, e.cycles = 0, 0 }
func (e *vcEncoder) Ops() OpStats  { return e.t.gridOps(e.cycles) }

type vcDecoder struct {
	t    *VCTranscoder
	prev uint64
}

func (d *vcDecoder) Decode(w bus.Word) uint64 {
	cur := uint64(w) & uint64(bus.Mask(d.t.wires))
	tv := d.prev ^ cur
	d.prev = cur
	return ballRank(d.t.wires, tv)
}

func (d *vcDecoder) Reset() { d.prev = 0 }

// vcCodedMeter materializes the prefix-XOR state stream and meters it
// lane-parallel — the grid fast path.
func vcCodedMeter(t *VCTranscoder, trace []uint64) *bus.Meter {
	mask := uint64(bus.Mask(t.width))
	coded := make([]uint64, len(trace))
	var state uint64
	for i, v := range trace {
		state ^= ballUnrank(t.wires, v&mask)
		coded[i] = state
	}
	return bus.NewSlicedTrace(t.wires, coded).MeterLite()
}
