package coding

import (
	"fmt"
	"strconv"
	"strings"
)

// Decoder round-trip verification policy.
//
// Evaluate's per-cycle decoder check is a self-check, not part of the
// measurement: the activity meters read only the encoder's output, and the
// decoder exists to prove the coded stream is invertible. Running the full
// decoder FSM doubles the work of every evaluation, so the check is a
// policy:
//
//   - VerifyFull (the zero value, and the default everywhere outside the
//     experiment runners): the decoder observes every coded word and every
//     decoded value is compared — any divergence is reported at the exact
//     cycle it happens. Tests and fuzzing always use this.
//
//   - VerifySampled(every): the decoder observes the coded stream and is
//     compared cycle-by-cycle over the first VerifyWindow cycles from
//     reset (catching initialization and protocol bugs on the real
//     stream). The decoder FSM cannot be re-attached mid-stream — its
//     state is a function of every coded word since reset — so past the
//     first window the main decoder is detached, and instead every
//     every-th input value plus the trace's last VerifyWindow values are
//     collected and round-tripped through a second, freshly reset
//     encoder/decoder pair at the end of the evaluation. Any value
//     sequence fed to a fresh pair must round-trip exactly, so this
//     replay can never raise a false alarm while still exercising the
//     codec on the trace's own data (catching data-dependent bugs). What
//     sampling cannot promise is catching a divergence that both only
//     manifests deep into one specific coded stream and never corrupts
//     the first window or the sampled replay; full verification in tests
//     and FuzzRoundTrip covers that class.
//
//   - VerifyOff: the decoder never runs. The measurement is unchanged —
//     only the self-check is forfeited.
//
// Every policy produces bit-identical Results: the coded stream and its
// meters depend only on the encoder.

// VerifyWindow is the number of cycles at the start of a trace that
// sampled verification always checks cycle-by-cycle against the live
// decoder, and the number of trailing values it always includes in the
// end-of-trace replay.
const VerifyWindow = 256

// DefaultVerifyEvery is the sampling period VerifySampled uses when given
// a non-positive period.
const DefaultVerifyEvery = 64

type verifyMode uint8

const (
	verifyFull verifyMode = iota
	verifySampled
	verifyOff
)

// VerifyPolicy selects how much decoder round-trip checking Evaluate
// performs. The zero value is VerifyFull.
type VerifyPolicy struct {
	mode  verifyMode
	every int
}

// VerifyFull checks every cycle against the live decoder (the default).
var VerifyFull = VerifyPolicy{}

// VerifyOff disables the decoder round-trip check entirely.
var VerifyOff = VerifyPolicy{mode: verifyOff}

// VerifySampled verifies the first VerifyWindow cycles live, then
// round-trips every every-th value plus the last VerifyWindow values
// through a fresh encoder/decoder pair. A non-positive every selects
// DefaultVerifyEvery.
func VerifySampled(every int) VerifyPolicy {
	if every <= 0 {
		every = DefaultVerifyEvery
	}
	return VerifyPolicy{mode: verifySampled, every: every}
}

// String returns the policy in the canonical form ParseVerifyPolicy
// accepts: "full", "off", or "sampled:N".
func (p VerifyPolicy) String() string {
	switch p.mode {
	case verifyOff:
		return "off"
	case verifySampled:
		return "sampled:" + strconv.Itoa(p.every)
	default:
		return "full"
	}
}

// ParseVerifyPolicy parses "full", "off", "sampled" (default period) or
// "sampled:N".
func ParseVerifyPolicy(s string) (VerifyPolicy, error) {
	switch {
	case s == "full":
		return VerifyFull, nil
	case s == "off":
		return VerifyOff, nil
	case s == "sampled":
		return VerifySampled(0), nil
	case strings.HasPrefix(s, "sampled:"):
		n, err := strconv.Atoi(s[len("sampled:"):])
		if err != nil || n < 1 {
			return VerifyPolicy{}, fmt.Errorf("coding: bad sampled verification period %q", s)
		}
		return VerifySampled(n), nil
	}
	return VerifyPolicy{}, fmt.Errorf("coding: unknown verification policy %q (want full, sampled[:N] or off)", s)
}

// ConfigKeyer is implemented by transcoders whose Name does not fully
// determine behavior (e.g. the context coder's divide period and assumed Λ
// are not in its name). ConfigKey must return a string that two
// transcoders share exactly when they encode every trace identically.
type ConfigKeyer interface {
	ConfigKey() string
}

// ConfigKey returns a canonical configuration string for the transcoder:
// semantically identical transcoders (possibly distinct rebuilt instances)
// map to equal keys. It is the identity Evaluator.Use reuses scratch on
// and the transcoder component of the experiments' result-memo key.
func ConfigKey(t Transcoder) string {
	if k, ok := t.(ConfigKeyer); ok {
		return k.ConfigKey()
	}
	return fmt.Sprintf("%s/w%d", t.Name(), t.DataWidth())
}
