package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// This file implements the paper's §6 future-work proposal: variable-length
// coding. The fixed-length transcoders never change bus timing — one value,
// one beat. A variable-length coder additionally compresses *in time*:
// prediction hits shrink to 4-bit symbols packed eight to a beat, so a
// predictable stream crosses the bus in a fraction of the beats, saving
// energy even though individual beats are denser. The cost is exactly what
// §6 warns about: the coder changes transmission timing (beats ≠ values),
// so it cannot be a drop-in cell — which is why the paper leaves it as
// future work and this repository evaluates it as an extension.
//
// Beat format on a W-data-wire bus plus one beat-type wire:
//
//	packed beat (type 0): W/4 four-bit symbols, consumed low nibble first:
//	    0        LAST-value repeat
//	    1..14    dictionary entry hit (window slot index + 1)
//	    15       literal escape: the value arrives in a following literal
//	             beat, and both ends shift it into the window dictionary
//	type-1 beat: one raw 32-bit literal.
//
// Literal beats follow their packed beat in symbol order. A trailing
// partial packed beat is padded with 0-symbols; the decoder stops at the
// agreed value count (framing is assumed from the surrounding protocol).

// VLCConfig parameterizes the variable-length coder.
type VLCConfig struct {
	// Width is the data width in bits; must be a multiple of 4.
	Width int
	// Entries is the window dictionary size, at most 14 (symbol values 1-14).
	Entries int
	// Lambda is the coupling ratio used when metering.
	Lambda float64
}

// maxVLCEntries is the dictionary capacity addressable by one symbol.
const maxVLCEntries = 14

// VLCResult reports a variable-length coding evaluation.
type VLCResult struct {
	// Values is the number of input values transported.
	Values int
	// Beats is the number of bus beats used (Beats <= Values for
	// compressible traffic; the ratio is the time compression).
	Beats int
	// Raw meters the un-encoded bus (one beat per value, Width wires).
	Raw *bus.Meter
	// Coded meters the variable-length bus (Width+1 wires).
	Coded *bus.Meter
	// Lambda is the coupling ratio used.
	Lambda float64
}

// BeatRatio returns Beats/Values — the fraction of bus-occupancy time the
// coder needs.
func (r VLCResult) BeatRatio() float64 {
	if r.Values == 0 {
		return 1
	}
	return float64(r.Beats) / float64(r.Values)
}

// EnergyRemoved returns the fraction of Λ-weighted activity removed.
func (r VLCResult) EnergyRemoved() float64 {
	raw := r.Raw.Cost(r.Lambda)
	if raw == 0 {
		return 0
	}
	return 1 - r.Coded.Cost(r.Lambda)/raw
}

// vlcSymbols returns symbols per packed beat.
func (c VLCConfig) vlcSymbols() int { return c.Width / 4 }

func (c VLCConfig) validate() error {
	checkWidth(c.Width)
	if c.Width%4 != 0 {
		return fmt.Errorf("coding: vlc width %d not a multiple of 4", c.Width)
	}
	if c.Entries < 1 || c.Entries > maxVLCEntries {
		return fmt.Errorf("coding: vlc entries %d outside [1, %d]", c.Entries, maxVLCEntries)
	}
	return nil
}

// EncodeVLC compresses the trace into bus beats. Exposed for tests and
// tools; EvaluateVLC wraps it with decode verification and metering.
func EncodeVLC(cfg VLCConfig, trace []uint64) ([]bus.Word, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mask := uint64(bus.Mask(cfg.Width))
	typeWire := bus.Word(1) << uint(cfg.Width)
	symbolsPerBeat := cfg.vlcSymbols()

	st := newWindowState(cfg.Entries)
	var beats []bus.Word
	var packed bus.Word
	var literals []bus.Word
	var prevBeat bus.Word
	nsym := 0

	flush := func() {
		if nsym == 0 {
			return
		}
		// Packed beats are transition-coded against the previous beat so
		// repeating symbol patterns (hit streaks) leave the wires still.
		out := (prevBeat ^ packed) & bus.Word(mask)
		beats = append(beats, out)
		prevBeat = out
		for _, l := range literals {
			beats = append(beats, l)
			prevBeat = l
		}
		packed, literals, nsym = 0, literals[:0], 0
	}

	for _, v := range trace {
		v &= mask
		var sym bus.Word
		switch {
		case v == st.last:
			sym = 0
		default:
			if slot := st.find(v); slot >= 0 {
				sym = bus.Word(slot + 1)
			} else {
				sym = 15
				literals = append(literals, bus.Word(v)|typeWire)
				st.insert(v)
			}
		}
		st.last = v
		packed |= sym << uint(4*nsym)
		nsym++
		if nsym == symbolsPerBeat {
			flush()
		}
	}
	flush()
	return beats, nil
}

// DecodeVLC reconstructs exactly values data values from beats.
func DecodeVLC(cfg VLCConfig, beats []bus.Word, values int) ([]uint64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	typeWire := bus.Word(1) << uint(cfg.Width)
	symbolsPerBeat := cfg.vlcSymbols()
	dataMask := bus.Mask(cfg.Width)

	st := newWindowState(cfg.Entries)
	out := make([]uint64, 0, values)
	i := 0
	var prevBeat bus.Word
	for i < len(beats) && len(out) < values {
		beat := beats[i]
		i++
		if beat&typeWire != 0 {
			return nil, fmt.Errorf("coding: vlc decoder expected a packed beat at %d", i-1)
		}
		symbols := (beat ^ prevBeat) & dataMask
		prevBeat = beat
		for s := 0; s < symbolsPerBeat && len(out) < values; s++ {
			sym := (symbols >> uint(4*s)) & 0xF
			var v uint64
			switch {
			case sym == 0:
				v = st.last
			case sym == 15:
				if i >= len(beats) || beats[i]&typeWire == 0 {
					return nil, fmt.Errorf("coding: vlc literal beat missing after symbol %d", s)
				}
				v = uint64(beats[i] & dataMask)
				prevBeat = beats[i]
				i++
				st.insert(v)
			default:
				slot := int(sym) - 1
				if slot >= cfg.Entries {
					return nil, fmt.Errorf("coding: vlc symbol %d exceeds dictionary size %d", sym, cfg.Entries)
				}
				v = st.entries[slot]
			}
			st.last = v
			out = append(out, v)
		}
	}
	if len(out) != values {
		return nil, fmt.Errorf("coding: vlc stream ended after %d of %d values", len(out), values)
	}
	return out, nil
}

// EvaluateVLC encodes the trace, verifies exact reconstruction, and meters
// both the raw bus and the variable-length bus.
func EvaluateVLC(cfg VLCConfig, trace []uint64, lambda float64) (VLCResult, error) {
	return EvaluateVLCShared(cfg, trace, lambda, nil)
}

// EvaluateVLCShared is EvaluateVLC with an optional pre-measured raw-bus
// meter (as from MeasureRawValues at cfg.Width), so sweeps that evaluate
// several coders over one trace measure the raw bus once. Passing nil
// measures it here.
func EvaluateVLCShared(cfg VLCConfig, trace []uint64, lambda float64, raw *bus.Meter) (VLCResult, error) {
	beats, err := EncodeVLC(cfg, trace)
	if err != nil {
		return VLCResult{}, err
	}
	decoded, err := DecodeVLC(cfg, beats, len(trace))
	if err != nil {
		return VLCResult{}, err
	}
	mask := uint64(bus.Mask(cfg.Width))
	for i := range trace {
		if decoded[i] != trace[i]&mask {
			return VLCResult{}, fmt.Errorf("coding: vlc diverged at value %d: %#x != %#x", i, decoded[i], trace[i]&mask)
		}
	}
	if raw == nil {
		raw = MeasureRawValues(cfg.Width, trace)
	} else if raw.Width() != cfg.Width {
		return VLCResult{}, fmt.Errorf("coding: shared raw meter width %d != vlc width %d", raw.Width(), cfg.Width)
	}
	coded := bus.NewMeterLite(cfg.Width + 1)
	coded.Record(0)
	coded.RecordTrace(beats)
	return VLCResult{
		Values: len(trace),
		Beats:  len(beats),
		Raw:    raw,
		Coded:  coded,
		Lambda: lambda,
	}, nil
}
