package coding

import (
	"testing"
	"testing/quick"

	"buspower/internal/stats"
)

func vlcCfg() VLCConfig { return VLCConfig{Width: 32, Entries: 14, Lambda: 1} }

func TestVLCRoundTripTraffic(t *testing.T) {
	rng := stats.NewRNG(11)
	traces := map[string][]uint64{}
	hot := make([]uint64, 10)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	mixed := make([]uint64, 5000)
	for i := range mixed {
		if rng.Intn(4) == 0 {
			mixed[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			mixed[i] = hot[rng.Intn(len(hot))]
		}
	}
	traces["mixed"] = mixed
	random := make([]uint64, 5000)
	for i := range random {
		random[i] = rng.Uint64() & 0xFFFFFFFF
	}
	traces["random"] = random
	traces["constant"] = make([]uint64, 100) // all zeros
	traces["empty"] = nil
	traces["one"] = []uint64{42}
	traces["seven"] = []uint64{1, 2, 3, 4, 5, 6, 7} // partial final beat
	for name, tr := range traces {
		if _, err := EvaluateVLC(vlcCfg(), tr, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVLCQuick(t *testing.T) {
	cfg := VLCConfig{Width: 16, Entries: 6, Lambda: 1}
	f := func(raw []uint16) bool {
		trace := make([]uint64, len(raw))
		for i, v := range raw {
			trace[i] = uint64(v)
		}
		_, err := EvaluateVLC(cfg, trace, 1)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestVLCCompressesHitsInTime(t *testing.T) {
	// A fully predictable stream (one constant) needs one packed beat per
	// 8 values: beat ratio 1/8.
	trace := make([]uint64, 8000)
	for i := range trace {
		trace[i] = 0xCAFE
	}
	res, err := EvaluateVLC(vlcCfg(), trace, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.BeatRatio(); r > 0.13 {
		t.Errorf("beat ratio %v, want ~0.125 for constant traffic", r)
	}
	// Only the initial literal costs anything; the packed hit beats leave
	// the wires still (both streams are nearly free, so compare absolute
	// activity rather than ratios).
	if got := res.Coded.Cost(1); got > 100 {
		t.Errorf("constant traffic cost %v weighted transitions, want a handful", got)
	}
}

func TestVLCExpandsRandomTraffic(t *testing.T) {
	// Every value escapes: one packed beat per 8 values plus 8 literals —
	// beat ratio 9/8, and energy gets worse, §6's trade-off on
	// incompressible traffic.
	rng := stats.NewRNG(13)
	trace := make([]uint64, 8000)
	for i := range trace {
		trace[i] = rng.Uint64() & 0xFFFFFFFF
	}
	res, err := EvaluateVLC(vlcCfg(), trace, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.BeatRatio(); r < 1.1 {
		t.Errorf("beat ratio %v, want ~1.125 for random traffic", r)
	}
}

func TestVLCTradeoffOnPredictableTraffic(t *testing.T) {
	// The §6 trade-off, measured: on hot-set traffic the VLC coder
	// compresses heavily in *time* (a property no fixed-length coder has)
	// while removing a substantial share of transition energy — but the
	// fixed-length window coder, whose hits cost a single wire toggle,
	// stays ahead on pure Λ-weighted activity. This is the quantitative
	// form of the paper's reason to prefer fixed-length codes for
	// drop-in transcoding.
	rng := stats.NewRNG(17)
	hot := make([]uint64, 8)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	trace := make([]uint64, 20000)
	for i := range trace {
		if rng.Intn(12) == 0 {
			trace[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			trace[i] = hot[rng.Intn(len(hot))]
		}
	}
	vlc, err := EvaluateVLC(VLCConfig{Width: 32, Entries: 14, Lambda: 1}, trace, 1)
	if err != nil {
		t.Fatal(err)
	}
	win, err := NewWindow(32, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixed := MustEvaluate(win, trace, 1)
	if vlc.EnergyRemoved() < 0.4 {
		t.Errorf("vlc removed only %.3f on predictable traffic", vlc.EnergyRemoved())
	}
	if vlc.BeatRatio() >= 0.5 {
		t.Errorf("vlc beat ratio %.3f, expected substantial time compression", vlc.BeatRatio())
	}
	if fixed.EnergyRemoved() <= vlc.EnergyRemoved()-0.05 {
		t.Errorf("fixed-length (%.3f) unexpectedly lost badly to vlc (%.3f) on transition energy",
			fixed.EnergyRemoved(), vlc.EnergyRemoved())
	}
}

func TestVLCValidation(t *testing.T) {
	bad := []VLCConfig{
		{Width: 30, Entries: 8},  // not a multiple of 4
		{Width: 32, Entries: 0},  // no dictionary
		{Width: 32, Entries: 15}, // symbol space exhausted (15 = escape)
	}
	for _, cfg := range bad {
		if _, err := EncodeVLC(cfg, []uint64{1}); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestVLCDecodeRejectsCorruptStreams(t *testing.T) {
	cfg := vlcCfg()
	trace := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3, 4}
	beats, err := EncodeVLC(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated stream.
	if _, err := DecodeVLC(cfg, beats[:1], len(trace)); err == nil {
		t.Error("truncated stream accepted")
	}
	// An out-of-range dictionary symbol (with a small dictionary).
	small := VLCConfig{Width: 32, Entries: 2, Lambda: 1}
	smallBeats, err := EncodeVLC(small, trace)
	if err != nil {
		t.Fatal(err)
	}
	smallBeats[0] = (smallBeats[0] &^ 0xF) | 0x7 // symbol 7 > dictionary size 2
	if _, err := DecodeVLC(small, smallBeats, len(trace)); err == nil {
		t.Error("out-of-range symbol accepted")
	}
}

func TestVLCDecodeDetectsBeatTypeCorruption(t *testing.T) {
	cfg := vlcCfg()
	trace := make([]uint64, 40)
	for i := range trace {
		trace[i] = uint64(i) // all literals
	}
	beats, err := EncodeVLC(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the type wire of the first beat: a literal where a packed beat
	// is required.
	beats[0] ^= 1 << 32
	if _, err := DecodeVLC(cfg, beats, len(trace)); err == nil {
		t.Error("type-wire corruption went undetected")
	}
}
