package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// WindowTranscoder implements the Window-based transcoder of §4.3: a
// pointer-based shift register holds the last N *unique* bus values; a hit
// sends the low-weight codeword of the matching physical entry, a repeat
// of the previous value sends the all-zero code (LAST-value folded in,
// §5.3.3 "pointer-based last value"), and a miss sends the value raw (or
// inverted, whichever is cheaper) while both ends shift it into the
// register, evicting the oldest entry.
//
// This is the scheme the paper carries through to layout (Figure 33) and
// crossover analysis, chosen over the Context-based design for its far
// simpler hardware (§5.4.3).
type WindowTranscoder struct {
	width   int
	entries int
	lambda  float64
	cb      *Codebook
	name    string
}

// NewWindow builds a window transcoder with the given number of shift
// register entries; lambda is the assumed Λ used to order codewords and
// choose raw-vs-inverted fallbacks.
func NewWindow(width, entries int, lambda float64) (*WindowTranscoder, error) {
	checkWidth(width)
	if entries < 1 {
		return nil, fmt.Errorf("coding: window entries %d < 1", entries)
	}
	cb, err := NewCodebook(width, 1+entries, lambda)
	if err != nil {
		return nil, err
	}
	return &WindowTranscoder{
		width:   width,
		entries: entries,
		lambda:  lambda,
		cb:      cb,
		name:    fmt.Sprintf("window-%d", entries),
	}, nil
}

// Name implements Transcoder.
func (t *WindowTranscoder) Name() string { return t.name }

// ConfigKey implements ConfigKeyer: the name omits the width and the
// assumed Λ (which steers codeword order and raw-vs-inverted fallbacks).
func (t *WindowTranscoder) ConfigKey() string {
	return fmt.Sprintf("%s/w%d/l%g", t.name, t.width, t.lambda)
}

// DataWidth implements Transcoder.
func (t *WindowTranscoder) DataWidth() int { return t.width }

// Entries returns the shift register size.
func (t *WindowTranscoder) Entries() int { return t.entries }

// NewEncoder implements Transcoder.
func (t *WindowTranscoder) NewEncoder() Encoder {
	return &windowEncoder{t: t, st: newWindowState(t.entries), ch: newChannel(t.width, t.lambda)}
}

// NewDecoder implements Transcoder.
func (t *WindowTranscoder) NewDecoder() Decoder {
	return &windowDecoder{t: t, st: newWindowState(t.entries), ch: newDecodeChannel(t.width)}
}

// windowIndexMinEntries is the register size at which the hash-based
// reverse index starts beating the linear scan. Small registers (and the
// VLC extension's ≤14-entry ones) stay on the scan, which is faster for a
// handful of words and allocates nothing. It is a variable, not a
// constant, so tests can force either path and compare them.
var windowIndexMinEntries = 24

// windowState is the dictionary shared (by construction) between encoder
// and decoder: a pointer-based ring of entries plus the last input value.
//
// Two acceleration structures ride along without changing observable
// behavior. index (a ctxIndex keyed on the bare value) maps value →
// physical slot for O(1) find on large registers (nil below
// windowIndexMinEntries). Its invariant relies on
// entries being unique: values are only inserted on a miss. The one
// duplicate case is the initial all-zero fill — while any of those fresh
// zeros remain (tracked by fresh), the slots [head, n) all hold zero and
// the lowest is head itself, so find(0) = head without consulting the map,
// and 0 can never be *inserted* during that phase (it would have hit).
//
// byteCount[b] counts entries whose low probe byte is b, so the modeled
// selective-precharge full-match count (§5.3.3) is O(1) per probe instead
// of a scan over the register.
type windowState struct {
	entries   []uint64
	head      int // next slot to overwrite (the oldest entry)
	last      uint64
	index     *ctxIndex
	fresh     int // initial zero-filled slots not yet overwritten
	byteCount [256]uint32
}

func newWindowState(n int) windowState {
	s := windowState{entries: make([]uint64, n), fresh: n}
	if n >= windowIndexMinEntries {
		s.index = newCtxIndex(n)
	}
	s.byteCount[0] = uint32(n)
	return s
}

// find returns the physical slot holding v, or -1. With the index it is
// O(1); the linear scan returns the first match, which the index
// reproduces because entries are unique (see windowState).
func (s *windowState) find(v uint64) int {
	if s.index == nil {
		for i, e := range s.entries {
			if e == v {
				return i
			}
		}
		return -1
	}
	if v == 0 && s.fresh > 0 {
		return s.head
	}
	return s.index.get(ctxKey{cur: v})
}

// insert overwrites the oldest entry with v (pointer-based shift: only one
// entry's bits change).
func (s *windowState) insert(v uint64) {
	evicted := s.entries[s.head]
	s.entries[s.head] = v
	s.byteCount[evicted&0xFF]--
	s.byteCount[v&0xFF]++
	if s.index != nil {
		if s.fresh > 0 {
			s.fresh-- // evicting one of the initial zeros, which the index never held
		} else {
			s.index.del(ctxKey{cur: evicted})
		}
		s.index.put(ctxKey{cur: v}, s.head)
	}
	s.head++
	if s.head == len(s.entries) {
		s.head = 0
	}
}

func (s *windowState) reset() {
	for i := range s.entries {
		s.entries[i] = 0
	}
	s.head = 0
	s.last = 0
	s.fresh = len(s.entries)
	if s.index != nil {
		s.index.clear()
	}
	s.byteCount = [256]uint32{}
	s.byteCount[0] = uint32(len(s.entries))
}

type windowEncoder struct {
	t   *WindowTranscoder
	st  windowState
	ch  channel
	ops OpStats
}

func (e *windowEncoder) Encode(v uint64) bus.Word {
	t := e.t
	v &= uint64(e.ch.dataMask)
	e.ops.Cycles++
	e.countProbes(v)
	var out bus.Word
	switch {
	case v == e.st.last:
		e.ops.LastHits++
		out = e.ch.sendCode(0)
	case e.st.byteCount[v&0xFF] == 0:
		// The selective-precharge partial match (the byte histogram) already
		// proves no entry can equal v: take the miss path without scanning.
		e.ops.RawSends++
		e.ops.Shifts++
		e.st.insert(v)
		out, _ = e.ch.sendRaw(v)
	default:
		if slot := e.st.find(v); slot >= 0 {
			e.ops.CodeSends++
			out = e.ch.sendCode(t.cb.Code(1 + slot))
		} else {
			e.ops.RawSends++
			e.ops.Shifts++
			e.st.insert(v)
			out, _ = e.ch.sendRaw(v)
		}
	}
	e.st.last = v
	return out
}

// encodeStream implements streamEncoder: the same per-cycle algorithm as
// Encode, with the OpStats counters and the LAST-value register hoisted
// into locals — no per-cycle interface dispatch, no counter write-backs.
// The channel self-accounts the run's Σ activity (see beginBlock),
// folded into the meter stream with one AddBlock at the end.
// TestWindowEncodeStreamMatchesEncode pins it cycle-for-cycle (outputs,
// ops and dictionary state) to Encode.
func (e *windowEncoder) encodeStream(vals []uint64, st *bus.MeterStream) {
	t := e.t
	mask := uint64(e.ch.dataMask)
	nEntries := uint64(len(e.st.entries))
	last := e.st.last
	e.ch.beginBlock()
	var cycles, lastHits, codeSends, rawSends, partial, full uint64
	for _, v := range vals {
		v &= mask
		cycles++
		partial += nEntries
		fm := e.st.byteCount[v&0xFF]
		full += uint64(fm)
		switch {
		case v == last:
			lastHits++
		case fm == 0:
			rawSends++
			e.st.insert(v)
			e.ch.sendRaw(v)
		default:
			if slot := e.st.find(v); slot >= 0 {
				codeSends++
				e.ch.sendCode(t.cb.Code(1 + slot))
			} else {
				rawSends++
				e.st.insert(v)
				e.ch.sendRaw(v)
			}
		}
		last = v
	}
	st.AddBlock(cycles, e.ch.accT, e.ch.accC, e.ch.state)
	e.st.last = last
	e.ops.Cycles += cycles
	e.ops.LastHits += lastHits
	e.ops.CodeSends += codeSends
	e.ops.RawSends += rawSends
	e.ops.Shifts += rawSends
	e.ops.PartialMatches += partial
	e.ops.FullMatches += full
}

// countProbes models the selective-precharge CAM probe of §5.3.3: every
// entry compares its low 8 bits; only entries passing that partial match
// charge the comparators of the remaining bits. The byte histogram keeps
// the modeled counts identical to scanning the register.
func (e *windowEncoder) countProbes(v uint64) {
	e.ops.PartialMatches += uint64(len(e.st.entries))
	e.ops.FullMatches += uint64(e.st.byteCount[v&0xFF])
}

func (e *windowEncoder) BusWidth() int { return e.ch.busWidth() }
func (e *windowEncoder) Reset() {
	e.st.reset()
	e.ch.reset()
	e.ops = OpStats{}
}
func (e *windowEncoder) Ops() OpStats { return e.ops }

type windowDecoder struct {
	t  *WindowTranscoder
	st windowState
	ch decodeChannel
}

func (d *windowDecoder) Decode(w bus.Word) uint64 {
	t := d.t
	mode, payload := d.ch.observe(w)
	var v uint64
	switch mode {
	case modeCode:
		idx, ok := t.cb.Index(payload)
		if !ok {
			panic(fmt.Sprintf("coding: window decoder received non-codeword transition %#x", payload))
		}
		if idx == 0 {
			v = d.st.last
		} else {
			v = d.st.entries[idx-1]
		}
	default:
		v = uint64(payload)
		d.st.insert(v)
	}
	d.st.last = v
	return v
}

func (d *windowDecoder) Reset() {
	d.st.reset()
	d.ch.reset()
}
