package coding

import (
	"fmt"

	"buspower/internal/bus"
)

// WindowTranscoder implements the Window-based transcoder of §4.3: a
// pointer-based shift register holds the last N *unique* bus values; a hit
// sends the low-weight codeword of the matching physical entry, a repeat
// of the previous value sends the all-zero code (LAST-value folded in,
// §5.3.3 "pointer-based last value"), and a miss sends the value raw (or
// inverted, whichever is cheaper) while both ends shift it into the
// register, evicting the oldest entry.
//
// This is the scheme the paper carries through to layout (Figure 33) and
// crossover analysis, chosen over the Context-based design for its far
// simpler hardware (§5.4.3).
type WindowTranscoder struct {
	width   int
	entries int
	lambda  float64
	cb      *Codebook
}

// NewWindow builds a window transcoder with the given number of shift
// register entries; lambda is the assumed Λ used to order codewords and
// choose raw-vs-inverted fallbacks.
func NewWindow(width, entries int, lambda float64) (*WindowTranscoder, error) {
	checkWidth(width)
	if entries < 1 {
		return nil, fmt.Errorf("coding: window entries %d < 1", entries)
	}
	cb, err := NewCodebook(width, 1+entries, lambda)
	if err != nil {
		return nil, err
	}
	return &WindowTranscoder{width: width, entries: entries, lambda: lambda, cb: cb}, nil
}

// Name implements Transcoder.
func (t *WindowTranscoder) Name() string { return fmt.Sprintf("window-%d", t.entries) }

// DataWidth implements Transcoder.
func (t *WindowTranscoder) DataWidth() int { return t.width }

// Entries returns the shift register size.
func (t *WindowTranscoder) Entries() int { return t.entries }

// NewEncoder implements Transcoder.
func (t *WindowTranscoder) NewEncoder() Encoder {
	return &windowEncoder{t: t, st: newWindowState(t.entries), ch: newChannel(t.width, t.lambda)}
}

// NewDecoder implements Transcoder.
func (t *WindowTranscoder) NewDecoder() Decoder {
	return &windowDecoder{t: t, st: newWindowState(t.entries), ch: newDecodeChannel(t.width)}
}

// windowState is the dictionary shared (by construction) between encoder
// and decoder: a pointer-based ring of entries plus the last input value.
type windowState struct {
	entries []uint64
	head    int // next slot to overwrite (the oldest entry)
	last    uint64
}

func newWindowState(n int) windowState {
	return windowState{entries: make([]uint64, n)}
}

// find returns the physical slot holding v, or -1.
func (s *windowState) find(v uint64) int {
	for i, e := range s.entries {
		if e == v {
			return i
		}
	}
	return -1
}

// insert overwrites the oldest entry with v (pointer-based shift: only one
// entry's bits change).
func (s *windowState) insert(v uint64) {
	s.entries[s.head] = v
	s.head++
	if s.head == len(s.entries) {
		s.head = 0
	}
}

func (s *windowState) reset() {
	for i := range s.entries {
		s.entries[i] = 0
	}
	s.head = 0
	s.last = 0
}

type windowEncoder struct {
	t   *WindowTranscoder
	st  windowState
	ch  channel
	ops OpStats
}

func (e *windowEncoder) Encode(v uint64) bus.Word {
	t := e.t
	v &= uint64(bus.Mask(t.width))
	e.ops.Cycles++
	e.countProbes(v)
	var out bus.Word
	switch {
	case v == e.st.last:
		e.ops.LastHits++
		out = e.ch.sendCode(0)
	default:
		if slot := e.st.find(v); slot >= 0 {
			e.ops.CodeSends++
			out = e.ch.sendCode(t.cb.Code(1 + slot))
		} else {
			e.ops.RawSends++
			e.ops.Shifts++
			e.st.insert(v)
			out, _ = e.ch.sendRaw(v)
		}
	}
	e.st.last = v
	return out
}

// countProbes models the selective-precharge CAM probe of §5.3.3: every
// entry compares its low 8 bits; only entries passing that partial match
// charge the comparators of the remaining bits.
func (e *windowEncoder) countProbes(v uint64) {
	e.ops.PartialMatches += uint64(len(e.st.entries))
	for _, entry := range e.st.entries {
		if entry&0xFF == v&0xFF {
			e.ops.FullMatches++
		}
	}
}

func (e *windowEncoder) BusWidth() int { return e.ch.busWidth() }
func (e *windowEncoder) Reset() {
	e.st.reset()
	e.ch.reset()
	e.ops = OpStats{}
}
func (e *windowEncoder) Ops() OpStats { return e.ops }

type windowDecoder struct {
	t  *WindowTranscoder
	st windowState
	ch decodeChannel
}

func (d *windowDecoder) Decode(w bus.Word) uint64 {
	t := d.t
	mode, payload := d.ch.observe(w)
	var v uint64
	switch mode {
	case modeCode:
		idx, ok := t.cb.Index(payload)
		if !ok {
			panic(fmt.Sprintf("coding: window decoder received non-codeword transition %#x", payload))
		}
		if idx == 0 {
			v = d.st.last
		} else {
			v = d.st.entries[idx-1]
		}
	default:
		v = uint64(payload)
		d.st.insert(v)
	}
	d.st.last = v
	return v
}

func (d *windowDecoder) Reset() {
	d.st.reset()
	d.ch.reset()
}
