package cpu

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DataBase is the address at which the assembler places the data segment.
const DataBase = 0x100

// Program is an assembled unit: decoded instructions (PC counts
// instructions, not bytes — a Harvard arrangement like SimpleScalar's
// decoded-instruction cache) plus an initialized data image loaded at
// DataBase.
type Program struct {
	Instrs []Instr
	Data   []byte
	Labels map[string]int32
}

// Assemble translates assembly source into a Program. The syntax follows
// common RISC conventions:
//
//	.data                       switch to the data segment
//	buf:   .space 1024          reserve zeroed bytes
//	tbl:   .word 1, -2, 0x30    32-bit words
//	cof:   .float 0.5, 2.25     float32 values
//	.text                       switch to the text segment
//	main:  li   r1, 0x12345     load 32-bit immediate (pseudo)
//	       la   r2, buf         load data address (pseudo)
//	loop:  lw   r3, 4(r2)
//	       add  r4, r4, r3
//	       bne  r3, r0, loop
//	       halt
//
// Comments run from '#' or ';' to end of line. Registers are r0..r31
// (r0 reads as zero) and f0..f31. Immediate operands of real instructions
// must fit in 16 bits signed; li/la expand to lui+ori as needed. Further
// pseudo-instructions: mv, not, neg, j, jr, call, ret, beqz, bnez.
func Assemble(src string) (*Program, error) {
	a := &assembler{labels: make(map[string]int32)}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	return a.encode()
}

// MustAssemble is Assemble for statically known-good sources (workloads).
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type stmtKind int

const (
	stmtInstr stmtKind = iota
	stmtWord
	stmtFloat
	stmtSpace
	stmtByte
)

type stmt struct {
	kind    stmtKind
	line    int
	mnem    string
	args    []string
	values  []int64   // .word/.byte payload
	floats  []float64 // .float payload
	space   int       // .space size
	size    int       // instructions emitted (text) or bytes (data)
	address int32     // resolved position (instr index or data address)
}

type assembler struct {
	text   []stmt
	data   []stmt
	labels map[string]int32
}

func (a *assembler) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (a *assembler) parse(src string) error {
	inData := false
	pendingLabels := []string{}
	labelSeg := map[string]bool{} // label -> is data
	lineNo := 0
	for _, rawLine := range strings.Split(src, "\n") {
		lineNo++
		line := rawLine
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) at line start.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			head := strings.TrimSpace(line[:i])
			if head == "" || strings.ContainsAny(head, " \t,()") {
				break
			}
			if _, dup := a.labels[head]; dup || labelSeg[head] {
				return a.errf(lineNo, "duplicate label %q", head)
			}
			labelSeg[head] = true
			pendingLabels = append(pendingLabels, head)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		mnem := strings.ToLower(fields[0])
		rest := strings.TrimSpace(line[len(fields[0]):])

		switch mnem {
		case ".data":
			inData = true
			continue
		case ".text":
			inData = false
			continue
		}

		s := stmt{line: lineNo, mnem: mnem}
		switch mnem {
		case ".word", ".byte":
			vals, err := splitArgs(rest)
			if err != nil {
				return a.errf(lineNo, "%v", err)
			}
			for _, v := range vals {
				n, err := parseInt(v)
				if err != nil {
					return a.errf(lineNo, "bad integer %q", v)
				}
				s.values = append(s.values, n)
			}
			if mnem == ".word" {
				s.kind, s.size = stmtWord, 4*len(s.values)
			} else {
				s.kind, s.size = stmtByte, len(s.values)
			}
		case ".float":
			vals, err := splitArgs(rest)
			if err != nil {
				return a.errf(lineNo, "%v", err)
			}
			for _, v := range vals {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return a.errf(lineNo, "bad float %q", v)
				}
				s.floats = append(s.floats, f)
			}
			s.kind, s.size = stmtFloat, 4*len(s.floats)
		case ".space":
			n, err := parseInt(strings.TrimSpace(rest))
			if err != nil || n < 0 {
				return a.errf(lineNo, "bad .space size %q", rest)
			}
			s.kind, s.space, s.size = stmtSpace, int(n), int(n)
		default:
			if strings.HasPrefix(mnem, ".") {
				return a.errf(lineNo, "unknown directive %s", mnem)
			}
			args, err := splitArgs(rest)
			if err != nil {
				return a.errf(lineNo, "%v", err)
			}
			s.kind, s.mnem, s.args = stmtInstr, mnem, args
			n, err := pseudoSize(mnem, args)
			if err != nil {
				return a.errf(lineNo, "%v", err)
			}
			s.size = n
		}

		if s.kind == stmtInstr && inData {
			return a.errf(lineNo, "instruction in .data segment")
		}
		if s.kind != stmtInstr && !inData {
			return a.errf(lineNo, "data directive in .text segment")
		}

		// Attach pending labels to this statement's position.
		if inData {
			for _, l := range pendingLabels {
				a.data = append(a.data, stmt{kind: stmtSpace, line: lineNo, mnem: "label:" + l})
			}
			a.data = append(a.data, s)
		} else {
			for _, l := range pendingLabels {
				a.text = append(a.text, stmt{kind: stmtInstr, mnem: "label:" + l, line: lineNo, size: 0})
			}
			a.text = append(a.text, s)
		}
		pendingLabels = pendingLabels[:0]
	}
	if len(pendingLabels) > 0 {
		// Trailing labels point one past the end of their segment.
		for _, l := range pendingLabels {
			if inData {
				a.data = append(a.data, stmt{kind: stmtSpace, mnem: "label:" + l})
			} else {
				a.text = append(a.text, stmt{kind: stmtInstr, mnem: "label:" + l, size: 0})
			}
		}
	}
	return nil
}

// layout resolves all label addresses.
func (a *assembler) layout() error {
	addr := int32(DataBase)
	for i := range a.data {
		s := &a.data[i]
		if name, ok := strings.CutPrefix(s.mnem, "label:"); ok {
			a.labels[name] = addr
			continue
		}
		s.address = addr
		addr += int32(s.size)
	}
	pc := int32(0)
	for i := range a.text {
		s := &a.text[i]
		if name, ok := strings.CutPrefix(s.mnem, "label:"); ok {
			a.labels[name] = pc
			continue
		}
		s.address = pc
		pc += int32(s.size)
	}
	return nil
}

func (a *assembler) encode() (*Program, error) {
	if err := a.layout(); err != nil {
		return nil, err
	}
	p := &Program{Labels: a.labels}
	for _, s := range a.data {
		if strings.HasPrefix(s.mnem, "label:") {
			continue
		}
		switch s.kind {
		case stmtWord:
			for _, v := range s.values {
				p.Data = append(p.Data,
					byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
		case stmtByte:
			for _, v := range s.values {
				p.Data = append(p.Data, byte(v))
			}
		case stmtFloat:
			for _, f := range s.floats {
				b := math.Float32bits(float32(f))
				p.Data = append(p.Data,
					byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
			}
		case stmtSpace:
			p.Data = append(p.Data, make([]byte, s.space)...)
		}
	}
	for _, s := range a.text {
		if strings.HasPrefix(s.mnem, "label:") {
			continue
		}
		instrs, err := a.encodeInstr(s)
		if err != nil {
			return nil, err
		}
		p.Instrs = append(p.Instrs, instrs...)
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("asm: empty program")
	}
	return p, nil
}

func splitArgs(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty operand")
		}
		out = append(out, p)
	}
	return out, nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// fitsImm16 reports whether v fits the 16-bit signed immediate field.
func fitsImm16(v int64) bool { return v >= -32768 && v <= 32767 }

// pseudoSize returns how many real instructions a mnemonic expands to.
func pseudoSize(mnem string, args []string) (int, error) {
	switch mnem {
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li needs 2 operands")
		}
		v, err := parseInt(args[1])
		if err != nil {
			return 0, fmt.Errorf("li immediate %q", args[1])
		}
		if fitsImm16(v) {
			return 1, nil
		}
		return 2, nil
	case "la":
		// Data addresses are small in this simulator but may exceed 16
		// bits for large segments; reserve the worst case uniformly so
		// label layout does not depend on itself.
		return 2, nil
	default:
		return 1, nil
	}
}
