package cpu

import (
	"strconv"
	"strings"
)

var mnemToOp = func() map[string]Op {
	m := make(map[string]Op, int(opCount))
	for op := Op(0); op < opCount; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// reg parses an integer register operand r0..r31.
func (a *assembler) reg(s stmt, tok string) (uint8, error) {
	return a.regPrefixed(s, tok, "r")
}

// freg parses a float register operand f0..f31.
func (a *assembler) freg(s stmt, tok string) (uint8, error) {
	return a.regPrefixed(s, tok, "f")
}

func (a *assembler) regPrefixed(s stmt, tok, prefix string) (uint8, error) {
	if !strings.HasPrefix(tok, prefix) {
		return 0, a.errf(s.line, "expected %s-register, got %q", prefix, tok)
	}
	n, err := strconv.Atoi(tok[len(prefix):])
	if err != nil || n < 0 || n > 31 {
		return 0, a.errf(s.line, "bad register %q", tok)
	}
	return uint8(n), nil
}

// imm16 parses an immediate operand and checks the 16-bit signed range.
func (a *assembler) imm16(s stmt, tok string) (int32, error) {
	v, err := parseInt(tok)
	if err != nil {
		return 0, a.errf(s.line, "bad immediate %q", tok)
	}
	if !fitsImm16(v) {
		return 0, a.errf(s.line, "immediate %d out of 16-bit range (use li)", v)
	}
	return int32(v), nil
}

// target resolves a label or numeric instruction index.
func (a *assembler) target(s stmt, tok string) (int32, error) {
	if v, err := parseInt(tok); err == nil {
		return int32(v), nil
	}
	if addr, ok := a.labels[tok]; ok {
		return addr, nil
	}
	return 0, a.errf(s.line, "undefined label %q", tok)
}

// memOperand parses "imm(rN)".
func (a *assembler) memOperand(s stmt, tok string) (int32, uint8, error) {
	open := strings.Index(tok, "(")
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return 0, 0, a.errf(s.line, "expected imm(reg), got %q", tok)
	}
	immPart := strings.TrimSpace(tok[:open])
	regPart := strings.TrimSpace(tok[open+1 : len(tok)-1])
	var off int32
	if immPart != "" {
		v, err := a.imm16(s, immPart)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	base, err := a.reg(s, regPart)
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

func (a *assembler) needArgs(s stmt, n int) error {
	if len(s.args) != n {
		return a.errf(s.line, "%s needs %d operands, got %d", s.mnem, n, len(s.args))
	}
	return nil
}

// encodeInstr expands one statement (real or pseudo) into instructions.
func (a *assembler) encodeInstr(s stmt) ([]Instr, error) {
	// Pseudo-instructions first.
	switch s.mnem {
	case "li":
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseInt(s.args[1])
		if err != nil {
			return nil, a.errf(s.line, "bad immediate %q", s.args[1])
		}
		return expandLoadImm(rd, int32(v), fitsImm16(v)), nil
	case "la":
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.args[0])
		if err != nil {
			return nil, err
		}
		addr, ok := a.labels[s.args[1]]
		if !ok {
			return nil, a.errf(s.line, "undefined label %q", s.args[1])
		}
		// la always reserves two slots (see pseudoSize); pad with nop when
		// one suffices so label layout stays consistent.
		ins := expandLoadImm(rd, addr, fitsImm16(int64(addr)))
		for len(ins) < 2 {
			ins = append(ins, Instr{Op: OpNop})
		}
		return ins, nil
	case "mv":
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.args[1])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpAddi, Rd: rd, Rs1: rs}}, nil
	case "not":
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.args[1])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpXori, Rd: rd, Rs1: rs, Imm: -1}}, nil
	case "neg":
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.args[1])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpSub, Rd: rd, Rs1: 0, Rs2: rs}}, nil
	case "j":
		if err := a.needArgs(s, 1); err != nil {
			return nil, err
		}
		tgt, err := a.target(s, s.args[0])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpJal, Rd: 0, Imm: tgt}}, nil
	case "jr":
		if err := a.needArgs(s, 1); err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.args[0])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpJalr, Rd: 0, Rs1: rs}}, nil
	case "call":
		if err := a.needArgs(s, 1); err != nil {
			return nil, err
		}
		tgt, err := a.target(s, s.args[0])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpJal, Rd: 31, Imm: tgt}}, nil
	case "ret":
		if err := a.needArgs(s, 0); err != nil {
			return nil, err
		}
		return []Instr{{Op: OpJalr, Rd: 0, Rs1: 31}}, nil
	case "beqz":
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.args[0])
		if err != nil {
			return nil, err
		}
		tgt, err := a.target(s, s.args[1])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpBeq, Rs1: rs, Rs2: 0, Imm: tgt}}, nil
	case "bnez":
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.args[0])
		if err != nil {
			return nil, err
		}
		tgt, err := a.target(s, s.args[1])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpBne, Rs1: rs, Rs2: 0, Imm: tgt}}, nil
	}

	op, ok := mnemToOp[s.mnem]
	if !ok {
		return nil, a.errf(s.line, "unknown mnemonic %q", s.mnem)
	}
	info := opTable[op]
	in := Instr{Op: op}
	switch info.format {
	case fmtNone:
		if err := a.needArgs(s, 0); err != nil {
			return nil, err
		}
	case fmtRRR:
		if err := a.needArgs(s, 3); err != nil {
			return nil, err
		}
		parse := a.reg
		if info.isFP {
			parse = a.freg
		}
		dstParse := parse
		if op == OpFeq || op == OpFlt || op == OpFle {
			dstParse = a.reg // comparison result is an integer
		}
		var err error
		if in.Rd, err = dstParse(s, s.args[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = parse(s, s.args[1]); err != nil {
			return nil, err
		}
		if in.Rs2, err = parse(s, s.args[2]); err != nil {
			return nil, err
		}
	case fmtRRI:
		if err := a.needArgs(s, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = a.reg(s, s.args[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = a.reg(s, s.args[1]); err != nil {
			return nil, err
		}
		if in.Imm, err = a.imm16(s, s.args[2]); err != nil {
			return nil, err
		}
	case fmtRI:
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = a.reg(s, s.args[0]); err != nil {
			return nil, err
		}
		v, err := parseInt(s.args[1])
		if err != nil || v < -32768 || v > 65535 {
			return nil, a.errf(s.line, "lui immediate %q out of range", s.args[1])
		}
		in.Imm = int32(v) & 0xFFFF
	case fmtMem:
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		parse := a.reg
		if info.isFP {
			parse = a.freg
		}
		dataReg, err := parse(s, s.args[0])
		if err != nil {
			return nil, err
		}
		off, base, err := a.memOperand(s, s.args[1])
		if err != nil {
			return nil, err
		}
		in.Imm, in.Rs1 = off, base
		if info.isStor {
			in.Rs2 = dataReg
		} else {
			in.Rd = dataReg
		}
	case fmtBranch:
		if err := a.needArgs(s, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rs1, err = a.reg(s, s.args[0]); err != nil {
			return nil, err
		}
		if in.Rs2, err = a.reg(s, s.args[1]); err != nil {
			return nil, err
		}
		if in.Imm, err = a.target(s, s.args[2]); err != nil {
			return nil, err
		}
	case fmtJal:
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = a.reg(s, s.args[0]); err != nil {
			return nil, err
		}
		if in.Imm, err = a.target(s, s.args[1]); err != nil {
			return nil, err
		}
	case fmtJalr:
		if err := a.needArgs(s, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = a.reg(s, s.args[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = a.reg(s, s.args[1]); err != nil {
			return nil, err
		}
		if in.Imm, err = a.imm16(s, s.args[2]); err != nil {
			return nil, err
		}
	case fmtRR:
		if err := a.needArgs(s, 2); err != nil {
			return nil, err
		}
		dstParse, srcParse := a.freg, a.freg
		if op == OpFcvtWS {
			dstParse = a.reg
		}
		if op == OpFcvtSW {
			srcParse = a.reg
		}
		var err error
		if in.Rd, err = dstParse(s, s.args[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = srcParse(s, s.args[1]); err != nil {
			return nil, err
		}
	default:
		return nil, a.errf(s.line, "unhandled format for %s", s.mnem)
	}
	return []Instr{in}, nil
}

// expandLoadImm materializes a 32-bit constant.
func expandLoadImm(rd uint8, v int32, fits16 bool) []Instr {
	if fits16 {
		return []Instr{{Op: OpAddi, Rd: rd, Rs1: 0, Imm: v}}
	}
	return []Instr{
		{Op: OpLui, Rd: rd, Imm: int32(uint32(v) >> 16)},
		{Op: OpOri, Rd: rd, Rs1: rd, Imm: int32(uint32(v) & 0xFFFF)},
	}
}
