package cpu

import (
	"strings"
	"testing"
	"testing/quick"

	"buspower/internal/stats"
)

// The assembler must never panic: arbitrary text yields either a program
// or an error.
func TestAssembleNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Assemble(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Mutated fragments of real assembly exercise the parser's error paths
// more effectively than raw random strings.
func TestAssembleSurvivesMutatedSource(t *testing.T) {
	base := `
	.data
arr:	.word 1, 2, 3
buf:	.space 64
fv:	.float 1.5
	.text
main:	la   r1, arr
	lw   r2, 0(r1)
	addi r3, r2, 5
	beq  r2, r3, main
	call fn
	halt
fn:	add  r4, r2, r3
	ret
`
	rng := stats.NewRNG(99)
	mutants := []func(string) string{
		func(s string) string { return strings.Replace(s, ",", "", 1) },
		func(s string) string { return strings.Replace(s, "(", "[", 1) },
		func(s string) string { return strings.Replace(s, "r1", "r99", 1) },
		func(s string) string { return strings.Replace(s, "arr", "xyz", 1) },
		func(s string) string { return strings.Replace(s, ".word", ".wird", 1) },
		func(s string) string { return strings.Replace(s, "5", "99999999999", 1) },
		func(s string) string { return s + "\n\tlw r1" },
		func(s string) string { return strings.Replace(s, ":", "::", 1) },
	}
	for trial := 0; trial < 500; trial++ {
		src := base
		nMut := 1 + rng.Intn(3)
		for i := 0; i < nMut; i++ {
			src = mutants[rng.Intn(len(mutants))](src)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("assembler panicked on mutated source: %v\n%s", r, src)
				}
			}()
			if p, err := Assemble(src); err == nil && p != nil {
				// If it assembled, it must also execute without faulting
				// for a bounded number of steps.
				if c, err := NewCore(p); err == nil {
					c.Run(10_000)
				}
			}
		}()
	}
}

// Programs of random valid instructions must execute without panicking
// (memory accesses are the exception: constrain bases to a safe window).
func TestRandomProgramsExecute(t *testing.T) {
	rng := stats.NewRNG(123)
	for trial := 0; trial < 200; trial++ {
		n := 10 + rng.Intn(40)
		instrs := make([]Instr, 0, n+1)
		for i := 0; i < n; i++ {
			op := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSll, OpSrl,
				OpAddi, OpOri, OpXori, OpSlti, OpLui, OpFadd, OpFmul,
				OpFcvtSW, OpFcvtWS}[rng.Intn(17)]
			instrs = append(instrs, Instr{
				Op:  op,
				Rd:  uint8(rng.Intn(32)),
				Rs1: uint8(rng.Intn(32)),
				Rs2: uint8(rng.Intn(32)),
				Imm: int32(rng.Intn(65536) - 32768),
			})
		}
		instrs = append(instrs, Instr{Op: OpHalt})
		p := &Program{Instrs: instrs, Labels: map[string]int32{}}
		c, err := NewCore(p)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(uint64(n + 10))
		if !c.Halted() {
			t.Fatalf("trial %d: straight-line program did not halt", trial)
		}
	}
}
