package cpu

import "fmt"

// Cache is a set-associative cache with true-LRU replacement, used for the
// L1 data cache and the unified L2 of the timing model. Only tags are
// tracked — data lives in the functional memory — since the timing model
// needs hit/miss outcomes and the memory-bus generator needs fill events.
//
// Lines are stored in one flat set-major array (lines[set*ways+way]) so a
// set probe touches one contiguous cache-friendly block instead of chasing
// a per-set slice header.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	setMask   uint32
	lines     []cacheLine // sets*ways, set-major

	// Statistics.
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

type cacheLine struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64 // last-use stamp
}

// NewCache builds a cache of size bytes with the given associativity and
// line size (both powers of two).
func NewCache(name string, size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("cpu: invalid cache geometry %d/%d/%d", size, ways, lineSize))
	}
	if size%(ways*lineSize) != 0 {
		panic(fmt.Sprintf("cpu: cache size %d not divisible by ways*lineSize %d", size, ways*lineSize))
	}
	sets := size / (ways * lineSize)
	if sets&(sets-1) != 0 || lineSize&(lineSize-1) != 0 {
		panic("cpu: cache sets and line size must be powers of two")
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		setMask:   uint32(sets - 1),
		lines:     make([]cacheLine, sets*ways),
	}
}

// AccessResult describes one cache access.
type AccessResult struct {
	Hit bool
	// WritebackAddr is set (with Writeback=true) when a dirty line was
	// evicted to make room.
	Writeback     bool
	WritebackAddr uint32
}

// Access looks up addr, allocating on miss (write-allocate); isWrite marks
// the line dirty. The access counter stamp provides LRU ordering.
func (c *Cache) Access(addr uint32, isWrite bool) AccessResult {
	c.Accesses++
	lineAddr := addr >> c.lineShift
	set := int(lineAddr & c.setMask)
	tag := lineAddr // full line address as tag (set bits redundant but harmless)
	ways := c.lines[set*c.ways : set*c.ways+c.ways]
	for i := range ways {
		if ways[i].tag == tag && ways[i].valid {
			ways[i].lru = c.Accesses
			if isWrite {
				ways[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	// Miss: fill an invalid way if one exists, else evict the LRU way.
	c.Misses++
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
	}
	res := AccessResult{}
	if ways[victim].valid && ways[victim].dirty {
		res.Writeback = true
		res.WritebackAddr = ways[victim].tag << c.lineShift
		c.Evictions++
	}
	ways[victim] = cacheLine{tag: tag, valid: true, dirty: isWrite, lru: c.Accesses}
	return res
}

// MissRate returns misses/accesses (0 for an untouched cache).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineShift }

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }
