package cpu

import (
	"fmt"
	"math"
)

// Core is the functional execution engine: architectural registers, PC and
// memory. Like SimpleScalar's functional-first organization, instructions
// are executed architecturally in program order; the timing model re-times
// the resulting dynamic instruction stream (§4.1: "the results of
// instructions are computed immediately upon dispatch").
type Core struct {
	R    [32]uint32 // integer registers; R[0] reads as zero
	F    [32]uint32 // float32 registers (bit patterns)
	PC   int32
	Mem  *Memory
	prog *Program

	halted  bool
	retired uint64
}

// DefaultMemorySize is the data memory size given to NewCore.
const DefaultMemorySize = 1 << 21 // 2 MiB

// NewCore builds a core with the program's data image loaded.
func NewCore(p *Program) (*Core, error) {
	c := &Core{Mem: NewMemory(DefaultMemorySize), prog: p}
	if err := c.Mem.LoadImage(DataBase, p.Data); err != nil {
		return nil, err
	}
	// Stack pointer convention: r29 starts at the top of memory.
	c.R[29] = uint32(c.Mem.Size() - 16)
	return c, nil
}

// StepInfo describes one architecturally executed instruction — everything
// the timing model and the bus timing generators need.
type StepInfo struct {
	Index  int32 // instruction index (PC before execution)
	Instr  Instr
	NextPC int32

	// SrcInt holds the integer register operand values read (register bus
	// traffic); N gives how many are valid.
	SrcInt  [2]uint32
	NSrcInt int

	// Memory behaviour.
	IsLoad  bool
	IsStore bool
	Addr    uint32
	Data    uint32 // loaded or stored 32-bit value (byte/half zero-padded)

	// Control behaviour.
	IsControl bool
	Taken     bool

	Halted bool
}

// Halted reports whether the program has executed HALT (or run off the end
// of the text segment).
func (c *Core) Halted() bool { return c.halted }

// Retired returns the number of instructions executed.
func (c *Core) Retired() uint64 { return c.retired }

// Step executes one instruction and reports what happened.
func (c *Core) Step() StepInfo {
	var info StepInfo
	c.StepInto(&info)
	return info
}

// StepInto is Step without the StepInfo return copy: the caller provides
// the (reused) info struct. This is the timing model's per-instruction
// entry point.
func (c *Core) StepInto(info *StepInfo) {
	if c.halted {
		*info = StepInfo{Halted: true, Index: c.PC}
		return
	}
	if c.PC < 0 || int(c.PC) >= len(c.prog.Instrs) {
		c.halted = true
		*info = StepInfo{Halted: true, Index: c.PC}
		return
	}
	in := c.prog.Instrs[c.PC]
	*info = StepInfo{Index: c.PC, Instr: in, NextPC: c.PC + 1}
	c.execute(in, info)
	c.R[0] = 0 // r0 is hard-wired
	c.PC = info.NextPC
	c.retired++
	if info.Halted {
		c.halted = true
	}
}

// Run executes until HALT or maxInstrs, returning the number executed.
func (c *Core) Run(maxInstrs uint64) uint64 {
	start := c.retired
	for !c.halted && c.retired-start < maxInstrs {
		c.Step()
	}
	return c.retired - start
}

func (c *Core) srcInt(info *StepInfo, vals ...uint32) {
	for _, v := range vals {
		if info.NSrcInt < 2 {
			info.SrcInt[info.NSrcInt] = v
			info.NSrcInt++
		}
	}
}

func (c *Core) execute(in Instr, info *StepInfo) {
	r := &c.R
	f := &c.F
	switch in.Op {
	case OpNop:
	case OpHalt:
		info.Halted = true

	case OpAdd:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case OpSub:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case OpMul:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case OpDiv:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = uint32(int32(r[in.Rs1]) / int32(r[in.Rs2]))
		}
	case OpRem:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = uint32(int32(r[in.Rs1]) % int32(r[in.Rs2]))
		}
	case OpAnd:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case OpOr:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case OpXor:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case OpSll:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = r[in.Rs1] << (r[in.Rs2] & 31)
	case OpSrl:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = r[in.Rs1] >> (r[in.Rs2] & 31)
	case OpSra:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = uint32(int32(r[in.Rs1]) >> (r[in.Rs2] & 31))
	case OpSlt:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = boolTo32(int32(r[in.Rs1]) < int32(r[in.Rs2]))
	case OpSltu:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		r[in.Rd] = boolTo32(r[in.Rs1] < r[in.Rs2])

	case OpAddi:
		c.srcInt(info, r[in.Rs1])
		r[in.Rd] = r[in.Rs1] + uint32(in.Imm)
	case OpAndi:
		c.srcInt(info, r[in.Rs1])
		r[in.Rd] = r[in.Rs1] & uint32(in.Imm)
	case OpOri:
		c.srcInt(info, r[in.Rs1])
		r[in.Rd] = r[in.Rs1] | uint32(in.Imm)
	case OpXori:
		c.srcInt(info, r[in.Rs1])
		r[in.Rd] = r[in.Rs1] ^ uint32(in.Imm)
	case OpSlli:
		c.srcInt(info, r[in.Rs1])
		r[in.Rd] = r[in.Rs1] << (uint32(in.Imm) & 31)
	case OpSrli:
		c.srcInt(info, r[in.Rs1])
		r[in.Rd] = r[in.Rs1] >> (uint32(in.Imm) & 31)
	case OpSrai:
		c.srcInt(info, r[in.Rs1])
		r[in.Rd] = uint32(int32(r[in.Rs1]) >> (uint32(in.Imm) & 31))
	case OpSlti:
		c.srcInt(info, r[in.Rs1])
		r[in.Rd] = boolTo32(int32(r[in.Rs1]) < in.Imm)
	case OpLui:
		r[in.Rd] = uint32(in.Imm) << 16

	case OpLw, OpLh, OpLhu, OpLb, OpLbu, OpFlw:
		c.srcInt(info, r[in.Rs1])
		addr := r[in.Rs1] + uint32(in.Imm)
		info.IsLoad = true
		info.Addr = addr
		var v uint32
		switch in.Op {
		case OpLw, OpFlw:
			v = c.Mem.Read32(addr)
		case OpLh:
			v = uint32(int32(int16(c.Mem.Read16(addr))))
		case OpLhu:
			v = uint32(c.Mem.Read16(addr))
		case OpLb:
			v = uint32(int32(int8(c.Mem.Read8(addr))))
		case OpLbu:
			v = uint32(c.Mem.Read8(addr))
		}
		info.Data = v
		if in.Op == OpFlw {
			f[in.Rd] = v
		} else {
			r[in.Rd] = v
		}

	case OpSw, OpSh, OpSb, OpFsw:
		c.srcInt(info, r[in.Rs1])
		addr := r[in.Rs1] + uint32(in.Imm)
		info.IsStore = true
		info.Addr = addr
		var v uint32
		if in.Op == OpFsw {
			v = f[in.Rs2]
		} else {
			v = r[in.Rs2]
			c.srcInt(info, r[in.Rs2])
		}
		switch in.Op {
		case OpSw, OpFsw:
			c.Mem.Write32(addr, v)
			info.Data = v
		case OpSh:
			c.Mem.Write16(addr, uint16(v))
			info.Data = v & 0xFFFF
		case OpSb:
			c.Mem.Write8(addr, uint8(v))
			info.Data = v & 0xFF
		}

	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		c.srcInt(info, r[in.Rs1], r[in.Rs2])
		info.IsControl = true
		a, b := r[in.Rs1], r[in.Rs2]
		var taken bool
		switch in.Op {
		case OpBeq:
			taken = a == b
		case OpBne:
			taken = a != b
		case OpBlt:
			taken = int32(a) < int32(b)
		case OpBge:
			taken = int32(a) >= int32(b)
		case OpBltu:
			taken = a < b
		case OpBgeu:
			taken = a >= b
		}
		info.Taken = taken
		if taken {
			info.NextPC = in.Imm
		}

	case OpJal:
		info.IsControl = true
		info.Taken = true
		r[in.Rd] = uint32(info.Index + 1)
		info.NextPC = in.Imm
	case OpJalr:
		c.srcInt(info, r[in.Rs1])
		info.IsControl = true
		info.Taken = true
		target := int32(r[in.Rs1]) + in.Imm
		r[in.Rd] = uint32(info.Index + 1)
		info.NextPC = target

	case OpFadd:
		f[in.Rd] = f32op(f[in.Rs1], f[in.Rs2], func(a, b float32) float32 { return a + b })
	case OpFsub:
		f[in.Rd] = f32op(f[in.Rs1], f[in.Rs2], func(a, b float32) float32 { return a - b })
	case OpFmul:
		f[in.Rd] = f32op(f[in.Rs1], f[in.Rs2], func(a, b float32) float32 { return a * b })
	case OpFdiv:
		f[in.Rd] = f32op(f[in.Rs1], f[in.Rs2], func(a, b float32) float32 {
			if b == 0 {
				return 0
			}
			return a / b
		})
	case OpFmin:
		f[in.Rd] = f32op(f[in.Rs1], f[in.Rs2], func(a, b float32) float32 {
			if a < b {
				return a
			}
			return b
		})
	case OpFmax:
		f[in.Rd] = f32op(f[in.Rs1], f[in.Rs2], func(a, b float32) float32 {
			if a > b {
				return a
			}
			return b
		})
	case OpFneg:
		f[in.Rd] = f[in.Rs1] ^ 0x80000000
	case OpFabs:
		f[in.Rd] = f[in.Rs1] &^ 0x80000000
	case OpFmov:
		f[in.Rd] = f[in.Rs1]
	case OpFcvtSW:
		c.srcInt(info, r[in.Rs1])
		f[in.Rd] = math.Float32bits(float32(int32(r[in.Rs1])))
	case OpFcvtWS:
		v := math.Float32frombits(f[in.Rs1])
		switch {
		case math.IsNaN(float64(v)):
			r[in.Rd] = 0
		case v >= math.MaxInt32:
			r[in.Rd] = math.MaxInt32
		case v <= math.MinInt32:
			r[in.Rd] = 0x80000000 // int32 minimum
		default:
			r[in.Rd] = uint32(int32(v))
		}
	case OpFeq:
		r[in.Rd] = boolTo32(math.Float32frombits(f[in.Rs1]) == math.Float32frombits(f[in.Rs2]))
	case OpFlt:
		r[in.Rd] = boolTo32(math.Float32frombits(f[in.Rs1]) < math.Float32frombits(f[in.Rs2]))
	case OpFle:
		r[in.Rd] = boolTo32(math.Float32frombits(f[in.Rs1]) <= math.Float32frombits(f[in.Rs2]))

	default:
		panic(fmt.Sprintf("cpu: unimplemented opcode %d", in.Op))
	}
}

func boolTo32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func f32op(a, b uint32, f func(float32, float32) float32) uint32 {
	return math.Float32bits(f(math.Float32frombits(a), math.Float32frombits(b)))
}
