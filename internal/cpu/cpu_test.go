package cpu

import (
	"strings"
	"testing"
)

func runProgram(t *testing.T, src string, maxInstrs uint64) *Core {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := NewCore(p)
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	c.Run(maxInstrs)
	if !c.Halted() {
		t.Fatalf("program did not halt within %d instructions", maxInstrs)
	}
	return c
}

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
		.text
		addi r1, r0, 5
		add  r2, r1, r1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 3 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	if p.Instrs[0].Op != OpAddi || p.Instrs[0].Imm != 5 {
		t.Errorf("instr 0 = %v", p.Instrs[0])
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := map[string]string{
		"unknown mnemonic":   "frobnicate r1, r2",
		"bad register":       "add r1, r2, r99",
		"imm out of range":   "addi r1, r0, 100000",
		"undefined label":    "beq r1, r2, nowhere",
		"duplicate label":    "x: nop\nx: nop",
		"instr in data":      ".data\nadd r1, r2, r3",
		"directive in text":  ".text\n.word 5",
		"empty program":      "   # nothing\n",
		"wrong operands":     "add r1, r2",
		"unknown directive":  ".bogus 12",
		"bad float":          ".data\nf: .float zap",
		"bad space":          ".data\ns: .space -4",
		"fp reg for int op":  "add r1, f2, r3",
		"int reg for fp op":  "fadd f1, r2, f3",
		"jalr imm too large": "jalr r1, r2, 70000",
	}
	for name, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestArithmetic(t *testing.T) {
	c := runProgram(t, `
		li   r1, 7
		li   r2, 3
		add  r3, r1, r2    # 10
		sub  r4, r1, r2    # 4
		mul  r5, r1, r2    # 21
		div  r6, r1, r2    # 2
		rem  r7, r1, r2    # 1
		and  r8, r1, r2    # 3
		or   r9, r1, r2    # 7
		xor  r10, r1, r2   # 4
		sll  r11, r1, r2   # 56
		srl  r12, r11, r2  # 7
		li   r13, -8
		sra  r14, r13, r2  # -1
		slt  r15, r13, r2  # 1
		sltu r16, r13, r2  # 0 (unsigned -8 is huge)
		halt
	`, 100)
	want := map[int]uint32{
		3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4,
		11: 56, 12: 7, 14: 0xFFFFFFFF, 15: 1, 16: 0,
	}
	for reg, v := range want {
		if c.R[reg] != v {
			t.Errorf("r%d = %#x, want %#x", reg, c.R[reg], v)
		}
	}
}

func TestDivByZeroYieldsZero(t *testing.T) {
	c := runProgram(t, `
		li r1, 9
		div r2, r1, r0
		rem r3, r1, r0
		halt
	`, 10)
	if c.R[2] != 0 || c.R[3] != 0 {
		t.Errorf("div/rem by zero: r2=%d r3=%d", c.R[2], c.R[3])
	}
}

func TestR0HardwiredZero(t *testing.T) {
	c := runProgram(t, `
		addi r0, r0, 42
		add  r1, r0, r0
		halt
	`, 10)
	if c.R[0] != 0 || c.R[1] != 0 {
		t.Errorf("r0=%d r1=%d, want zeros", c.R[0], c.R[1])
	}
}

func TestLiExpansion(t *testing.T) {
	c := runProgram(t, `
		li r1, 0x12345678
		li r2, -5
		li r3, 32767
		li r4, -32768
		halt
	`, 20)
	if c.R[1] != 0x12345678 {
		t.Errorf("r1 = %#x", c.R[1])
	}
	if int32(c.R[2]) != -5 || int32(c.R[3]) != 32767 || int32(c.R[4]) != -32768 {
		t.Errorf("r2=%d r3=%d r4=%d", int32(c.R[2]), int32(c.R[3]), int32(c.R[4]))
	}
}

func TestMemoryAndData(t *testing.T) {
	c := runProgram(t, `
		.data
		arr:  .word 10, 20, 30
		bytes: .byte 1, 2, 255
		gap:  .space 8
		fs:   .float 1.5
		.text
		la   r1, arr
		lw   r2, 0(r1)     # 10
		lw   r3, 4(r1)     # 20
		lw   r4, 8(r1)     # 30
		la   r5, bytes
		lbu  r6, 2(r5)     # 255
		lb   r7, 2(r5)     # -1
		sw   r4, 0(r1)     # arr[0] = 30
		lw   r8, 0(r1)
		la   r9, fs
		flw  f1, 0(r9)
		fadd f2, f1, f1    # 3.0
		la   r10, gap
		fsw  f2, 0(r10)
		lw   r11, 0(r10)   # bits of 3.0f
		halt
	`, 100)
	if c.R[2] != 10 || c.R[3] != 20 || c.R[4] != 30 {
		t.Errorf("loads: %d %d %d", c.R[2], c.R[3], c.R[4])
	}
	if c.R[6] != 255 || int32(c.R[7]) != -1 {
		t.Errorf("byte loads: %d %d", c.R[6], int32(c.R[7]))
	}
	if c.R[8] != 30 {
		t.Errorf("store/load: %d", c.R[8])
	}
	if c.R[11] != 0x40400000 { // 3.0f
		t.Errorf("fsw bits = %#x, want 0x40400000", c.R[11])
	}
}

func TestHalfwordOps(t *testing.T) {
	c := runProgram(t, `
		.data
		buf: .space 8
		.text
		la  r1, buf
		li  r2, 0xFFFF8001
		sh  r2, 0(r1)
		lh  r3, 0(r1)     # sign-extended 0xFFFF8001 & 0xFFFF = 0x8001 -> -32767
		lhu r4, 0(r1)     # 0x8001
		halt
	`, 20)
	if int32(c.R[3]) != -32767 {
		t.Errorf("lh = %d", int32(c.R[3]))
	}
	if c.R[4] != 0x8001 {
		t.Errorf("lhu = %#x", c.R[4])
	}
}

func TestControlFlowLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	c := runProgram(t, `
		li r1, 10
		li r2, 0        # sum
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		bnez r1, loop
		halt
	`, 200)
	if c.R[2] != 55 {
		t.Errorf("sum = %d, want 55", c.R[2])
	}
}

func TestCallRet(t *testing.T) {
	c := runProgram(t, `
		li r1, 5
		call double
		call double
		halt
	double:
		add r1, r1, r1
		ret
	`, 50)
	if c.R[1] != 20 {
		t.Errorf("r1 = %d, want 20", c.R[1])
	}
}

func TestJalrIndirect(t *testing.T) {
	c := runProgram(t, `
		li r1, 6          # index of target
		jalr r2, r1, 0
		halt              # skipped? no: jalr jumps to instr 6
		nop
		nop
		nop
	target:
		li r3, 99
		halt
	`, 20)
	// li expands to one instruction here; count: li(1) jalr(1) halt nop nop nop => target at 6.
	if c.R[3] != 99 {
		t.Errorf("indirect jump failed: r3 = %d", c.R[3])
	}
}

func TestFloatOps(t *testing.T) {
	c := runProgram(t, `
		li r1, 3
		fcvt.s.w f1, r1    # 3.0
		li r2, 4
		fcvt.s.w f2, r2    # 4.0
		fmul f3, f1, f2    # 12.0
		fdiv f4, f3, f2    # 3.0
		fsub f5, f4, f1    # 0.0
		feq  r3, f4, f1    # 1
		flt  r4, f1, f2    # 1
		fle  r5, f2, f1    # 0
		fneg f6, f2
		flt  r6, f6, f1    # -4 < 3 -> 1
		fabs f7, f6
		feq  r7, f7, f2    # 1
		fmin f8, f1, f2
		feq  r8, f8, f1    # 1
		fmax f9, f1, f2
		feq  r9, f9, f2    # 1
		fcvt.w.s r10, f3   # 12
		halt
	`, 100)
	for reg, want := range map[int]uint32{3: 1, 4: 1, 5: 0, 6: 1, 7: 1, 8: 1, 9: 1, 10: 12} {
		if c.R[reg] != want {
			t.Errorf("r%d = %d, want %d", reg, c.R[reg], want)
		}
	}
}

func TestRunOffEndHalts(t *testing.T) {
	p := MustAssemble("nop\nnop")
	c, err := NewCore(p)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(100)
	if !c.Halted() {
		t.Error("running off the end of text should halt")
	}
}

func TestStepInfoOperands(t *testing.T) {
	p := MustAssemble(`
		li  r1, 17
		li  r2, 25
		add r3, r1, r2
		halt
	`)
	c, _ := NewCore(p)
	c.Step()
	c.Step()
	info := c.Step() // the add
	if info.NSrcInt != 2 || info.SrcInt[0] != 17 || info.SrcInt[1] != 25 {
		t.Errorf("add operands = %+v", info)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache("t", 1024, 2, 32) // 16 sets
	if r := c.Access(0, false); r.Hit {
		t.Error("cold access should miss")
	}
	if r := c.Access(4, false); !r.Hit {
		t.Error("same-line access should hit")
	}
	if r := c.Access(1024, false); r.Hit {
		t.Error("different line should miss")
	}
	// Same set (addresses 0, 1024 with 16 sets * 32B line -> stride 512):
	// fill both ways then evict.
	c2 := NewCache("t2", 1024, 2, 32)
	c2.Access(0, true)    // way 0, dirty
	c2.Access(512, false) // way 1 (same set 0)
	res := c2.Access(1024, false)
	if res.Hit {
		t.Error("third distinct line in 2-way set should miss")
	}
	if !res.Writeback || res.WritebackAddr != 0 {
		t.Errorf("expected dirty writeback of line 0, got %+v", res)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache("lru", 64, 2, 32) // 1 set, 2 ways
	c.Access(0, false)
	c.Access(32, false)
	c.Access(0, false)  // touch line 0 -> line 32 is LRU
	c.Access(64, false) // evicts 32
	if r := c.Access(0, false); !r.Hit {
		t.Error("LRU should have kept line 0")
	}
	if r := c.Access(32, false); r.Hit {
		t.Error("line 32 should have been evicted")
	}
}

func TestCacheMissRate(t *testing.T) {
	c := NewCache("mr", 1024, 2, 32)
	for i := 0; i < 10; i++ {
		c.Access(uint32(i)*4096, false) // all distinct lines
	}
	if c.MissRate() != 1.0 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestBimodalPredictorLearns(t *testing.T) {
	p := NewBimodalPredictor(16)
	// Always-taken branch: after warm-up the predictor must be right.
	for i := 0; i < 10; i++ {
		p.PredictAndUpdate(5, true)
	}
	if got := p.PredictAndUpdate(5, true); !got {
		t.Error("predictor failed to learn an always-taken branch")
	}
	// Alternating branch at another index: accuracy should be poor but
	// tracked.
	for i := 0; i < 100; i++ {
		p.PredictAndUpdate(7, i%2 == 0)
	}
	if p.Accuracy() <= 0 || p.Accuracy() >= 1 {
		t.Logf("accuracy = %v", p.Accuracy()) // sanity only
	}
}

func TestSimulatorRunsAndProducesTraces(t *testing.T) {
	src := `
		.data
		arr: .space 4096
		.text
		la  r1, arr
		li  r2, 1024     # words
		li  r3, 0
	fill:
		sw  r3, 0(r1)
		addi r1, r1, 4
		addi r3, r3, 7
		addi r2, r2, -1
		bnez r2, fill
		la  r1, arr
		li  r2, 1024
		li  r4, 0
	sum:
		lw  r5, 0(r1)
		add r4, r4, r5
		addi r1, r1, 4
		addi r2, r2, -1
		bnez r2, sum
		halt
	`
	p := MustAssemble(src)
	sim, err := NewSimulator(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := sim.Run(100000, 0)
	if tr.Instructions < 8000 {
		t.Fatalf("expected ~10k instructions, got %d", tr.Instructions)
	}
	if tr.Cycles == 0 || tr.IPC <= 0 || tr.IPC > float64(DefaultConfig().IssueWidth) {
		t.Errorf("implausible timing: cycles=%d IPC=%v", tr.Cycles, tr.IPC)
	}
	if len(tr.RegisterBus) == 0 {
		t.Error("no register bus traffic captured")
	}
	if len(tr.MemoryBus) == 0 {
		t.Error("no memory bus traffic captured")
	}
	// The fill loop stores multiples of 7: those values must appear on the
	// memory bus.
	seen := map[uint64]bool{}
	for _, v := range tr.MemoryBus {
		seen[v] = true
	}
	if !seen[7] || !seen[14] {
		t.Error("store data missing from memory bus trace")
	}
	if tr.L1DMissRate <= 0 {
		t.Error("sequential walk over 4KB should produce L1 misses")
	}
	if tr.BranchAccuracy < 0.9 {
		t.Errorf("loop branch accuracy %v suspiciously low", tr.BranchAccuracy)
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	src := `
		li r1, 200
	loop:
		mul r2, r1, r1
		addi r1, r1, -1
		bnez r1, loop
		halt
	`
	run := func() BusTraces {
		sim, err := NewSimulator(MustAssemble(src), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(10000, 0)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Error("simulator is not deterministic")
	}
	if len(a.RegisterBus) != len(b.RegisterBus) {
		t.Fatal("register traces differ in length")
	}
	for i := range a.RegisterBus {
		if a.RegisterBus[i] != b.RegisterBus[i] {
			t.Fatalf("register traces diverge at %d", i)
		}
	}
}

func TestSimulatorMaxBusValues(t *testing.T) {
	src := `
		li r1, 10000
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		bnez r1, loop
		halt
	`
	sim, _ := NewSimulator(MustAssemble(src), DefaultConfig())
	tr := sim.Run(1<<40, 500)
	if len(tr.RegisterBus) > 500 {
		t.Errorf("register trace exceeded cap: %d", len(tr.RegisterBus))
	}
}

func TestDependencyStallsShowInTiming(t *testing.T) {
	// A chain of dependent multiplies must take more cycles than
	// independent ones.
	dep := `
		li r1, 3
		mul r1, r1, r1
		mul r1, r1, r1
		mul r1, r1, r1
		mul r1, r1, r1
		halt
	`
	indep := `
		li r1, 3
		mul r2, r1, r1
		mul r3, r1, r1
		mul r4, r1, r1
		mul r5, r1, r1
		halt
	`
	run := func(src string) uint64 {
		sim, err := NewSimulator(MustAssemble(src), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(100, 0).Cycles
	}
	// Note: with one multiplier, independent muls still serialize on the
	// FU, but the dependent chain additionally serializes on data.
	if run(dep) <= run(indep) {
		t.Error("dependent chain should be slower than independent ops")
	}
}

func TestMemoryImageTooLarge(t *testing.T) {
	m := NewMemory(64)
	if err := m.LoadImage(60, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("oversized image should fail")
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(64)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds access should panic")
		}
	}()
	m.Read32(62)
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddi, Rd: 1, Rs1: 0, Imm: -4}, "addi r1, r0, -4"},
		{Instr{Op: OpLw, Rd: 5, Rs1: 2, Imm: 8}, "lw r5, 8(r2)"},
		{Instr{Op: OpSw, Rs2: 5, Rs1: 2, Imm: 8}, "sw r5, 8(r2)"},
		{Instr{Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3}, "fadd f1, f2, f3"},
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 10}, "beq r1, r2, 10"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAssembleCommentsAndLabels(t *testing.T) {
	p, err := Assemble(`
		# full-line comment
		.text
	a: b:  nop        ; two labels, trailing comment
		j a
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 {
		t.Errorf("labels = %v", p.Labels)
	}
	if !strings.Contains(p.Instrs[1].String(), "jal") {
		t.Errorf("j should expand to jal, got %v", p.Instrs[1])
	}
}
