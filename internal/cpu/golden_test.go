package cpu_test

import (
	"reflect"
	"testing"

	"buspower/internal/cpu"
	"buspower/internal/workload"
)

// The optimized Simulator (index-based slot rings, direct-mapped store
// tracking, pre-decoded metadata, radix-sorted event collection) must be
// cycle-identical to the map-based ReferenceSimulator it replaced: every
// experiment artifact derives from these traces, so "faster" is only
// admissible when BusTraces match byte for byte.

// goldenWorkloads covers the behaviour space: integer pointer chasing,
// hashing/branching, FP stencils (FP register timing paths), and a
// store-heavy kernel (memory bus + writeback paths).
var goldenWorkloads = []string{"li", "gcc", "compress", "swim", "tomcatv"}

func TestGoldenTraceDifferential(t *testing.T) {
	const (
		maxInstrs = 300_000
		maxValues = 40_000
	)
	for _, name := range goldenWorkloads {
		t.Run(name, func(t *testing.T) {
			w, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := w.Program()
			if err != nil {
				t.Fatal(err)
			}
			opt, err := cpu.NewSimulator(p, cpu.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			ref, err := cpu.NewReferenceSimulator(p, cpu.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			got := opt.Run(maxInstrs, maxValues)
			want := ref.Run(maxInstrs, maxValues)
			compareBusTraces(t, got, want)
		})
	}
}

// TestGoldenTraceDifferentialUnbounded exercises the no-cap path (the
// early-exit break never fires, every event is collected and sorted).
func TestGoldenTraceDifferentialUnbounded(t *testing.T) {
	w, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := cpu.NewSimulator(p, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cpu.NewReferenceSimulator(p, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	compareBusTraces(t, opt.Run(120_000, 0), ref.Run(120_000, 0))
}

func compareBusTraces(t *testing.T, got, want cpu.BusTraces) {
	t.Helper()
	if got.Instructions != want.Instructions || got.Cycles != want.Cycles {
		t.Fatalf("timing diverged: got %d instrs / %d cycles, want %d / %d",
			got.Instructions, got.Cycles, want.Instructions, want.Cycles)
	}
	compareStream(t, "RegisterBus", got.RegisterBus, want.RegisterBus)
	compareStream(t, "MemoryBus", got.MemoryBus, want.MemoryBus)
	compareStream(t, "MemoryAddrBus", got.MemoryAddrBus, want.MemoryAddrBus)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("summary statistics diverged:\n got %+v\nwant %+v", got, want)
	}
}

func compareStream(t *testing.T, name string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s diverges at beat %d: got %#x, want %#x", name, i, got[i], want[i])
		}
	}
}
