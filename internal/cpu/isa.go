// Package cpu implements the reproduction's substitute for the paper's
// modified SimpleScalar 3.0: a 32-bit RISC instruction set, a text
// assembler, a functional core, a set-associative cache hierarchy, a
// bimodal branch predictor, and an out-of-order timing model in the style
// of sim-outorder (register update unit + load/store queue) with the
// paper's "bus timing generators" bolted on: the integer register-file
// output port and the memory data bus are observed as streams of 32-bit
// values, re-timed to resemble actual bus activity (§4.1).
package cpu

import "fmt"

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. Register operands are integer registers r0..r31 (r0 is
// hard-wired to zero) unless the mnemonic starts with F, which addresses
// the float32 register file f0..f31.
const (
	OpNop Op = iota
	OpHalt

	// Integer register-register ALU.
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; division by zero yields 0 (software must guard)
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// Integer immediate ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui // rd = imm << 16

	// Memory.
	OpLw
	OpLh
	OpLhu
	OpLb
	OpLbu
	OpSw
	OpSh
	OpSb

	// Control.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal  // rd = return index; jump to Imm
	OpJalr // rd = return index; jump to rs1 + Imm

	// Floating point (float32 in f registers).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFmin
	OpFmax
	OpFneg
	OpFabs
	OpFmov
	OpFlw // f[rd] = mem32[r[rs1]+imm]
	OpFsw // mem32[r[rs1]+imm] = f[rs2]
	OpFcvtSW
	OpFcvtWS // r[rd] = int32(f[rs1]) (truncating)
	OpFeq    // r[rd] = f[rs1] == f[rs2]
	OpFlt
	OpFle

	opCount // sentinel
)

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// opInfo captures per-opcode metadata used by the assembler, the
// functional core, and the timing model.
type opInfo struct {
	name   string
	format opFormat
	class  FUClass
	isLoad bool
	isStor bool
	isCtrl bool
	isFP   bool // reads/writes the f register file
}

// opFormat drives assembler operand parsing.
type opFormat int

const (
	fmtNone   opFormat = iota // nop, halt
	fmtRRR                    // op rd, rs1, rs2
	fmtRRI                    // op rd, rs1, imm
	fmtRI                     // op rd, imm (lui)
	fmtMem                    // op rd, imm(rs1)
	fmtBranch                 // op rs1, rs2, label
	fmtJal                    // op rd, label
	fmtJalr                   // op rd, rs1, imm
	fmtRR                     // op rd, rs1 (fneg, fmov, cvt)
)

// FUClass buckets opcodes by functional unit for the timing model.
type FUClass int

const (
	// ClassIntALU covers simple integer operations (1 cycle).
	ClassIntALU FUClass = iota
	// ClassIntMul covers integer multiply/divide.
	ClassIntMul
	// ClassMem covers loads and stores (address generation).
	ClassMem
	// ClassBranch covers control transfers.
	ClassBranch
	// ClassFPAdd covers FP add/sub/compare/convert/move.
	ClassFPAdd
	// ClassFPMul covers FP multiply.
	ClassFPMul
	// ClassFPDiv covers FP divide.
	ClassFPDiv
	fuClassCount
)

var opTable = [opCount]opInfo{
	OpNop:  {name: "nop", format: fmtNone, class: ClassIntALU},
	OpHalt: {name: "halt", format: fmtNone, class: ClassIntALU},

	OpAdd:  {name: "add", format: fmtRRR, class: ClassIntALU},
	OpSub:  {name: "sub", format: fmtRRR, class: ClassIntALU},
	OpMul:  {name: "mul", format: fmtRRR, class: ClassIntMul},
	OpDiv:  {name: "div", format: fmtRRR, class: ClassIntMul},
	OpRem:  {name: "rem", format: fmtRRR, class: ClassIntMul},
	OpAnd:  {name: "and", format: fmtRRR, class: ClassIntALU},
	OpOr:   {name: "or", format: fmtRRR, class: ClassIntALU},
	OpXor:  {name: "xor", format: fmtRRR, class: ClassIntALU},
	OpSll:  {name: "sll", format: fmtRRR, class: ClassIntALU},
	OpSrl:  {name: "srl", format: fmtRRR, class: ClassIntALU},
	OpSra:  {name: "sra", format: fmtRRR, class: ClassIntALU},
	OpSlt:  {name: "slt", format: fmtRRR, class: ClassIntALU},
	OpSltu: {name: "sltu", format: fmtRRR, class: ClassIntALU},

	OpAddi: {name: "addi", format: fmtRRI, class: ClassIntALU},
	OpAndi: {name: "andi", format: fmtRRI, class: ClassIntALU},
	OpOri:  {name: "ori", format: fmtRRI, class: ClassIntALU},
	OpXori: {name: "xori", format: fmtRRI, class: ClassIntALU},
	OpSlli: {name: "slli", format: fmtRRI, class: ClassIntALU},
	OpSrli: {name: "srli", format: fmtRRI, class: ClassIntALU},
	OpSrai: {name: "srai", format: fmtRRI, class: ClassIntALU},
	OpSlti: {name: "slti", format: fmtRRI, class: ClassIntALU},
	OpLui:  {name: "lui", format: fmtRI, class: ClassIntALU},

	OpLw:  {name: "lw", format: fmtMem, class: ClassMem, isLoad: true},
	OpLh:  {name: "lh", format: fmtMem, class: ClassMem, isLoad: true},
	OpLhu: {name: "lhu", format: fmtMem, class: ClassMem, isLoad: true},
	OpLb:  {name: "lb", format: fmtMem, class: ClassMem, isLoad: true},
	OpLbu: {name: "lbu", format: fmtMem, class: ClassMem, isLoad: true},
	OpSw:  {name: "sw", format: fmtMem, class: ClassMem, isStor: true},
	OpSh:  {name: "sh", format: fmtMem, class: ClassMem, isStor: true},
	OpSb:  {name: "sb", format: fmtMem, class: ClassMem, isStor: true},

	OpBeq:  {name: "beq", format: fmtBranch, class: ClassBranch, isCtrl: true},
	OpBne:  {name: "bne", format: fmtBranch, class: ClassBranch, isCtrl: true},
	OpBlt:  {name: "blt", format: fmtBranch, class: ClassBranch, isCtrl: true},
	OpBge:  {name: "bge", format: fmtBranch, class: ClassBranch, isCtrl: true},
	OpBltu: {name: "bltu", format: fmtBranch, class: ClassBranch, isCtrl: true},
	OpBgeu: {name: "bgeu", format: fmtBranch, class: ClassBranch, isCtrl: true},
	OpJal:  {name: "jal", format: fmtJal, class: ClassBranch, isCtrl: true},
	OpJalr: {name: "jalr", format: fmtJalr, class: ClassBranch, isCtrl: true},

	OpFadd:   {name: "fadd", format: fmtRRR, class: ClassFPAdd, isFP: true},
	OpFsub:   {name: "fsub", format: fmtRRR, class: ClassFPAdd, isFP: true},
	OpFmul:   {name: "fmul", format: fmtRRR, class: ClassFPMul, isFP: true},
	OpFdiv:   {name: "fdiv", format: fmtRRR, class: ClassFPDiv, isFP: true},
	OpFmin:   {name: "fmin", format: fmtRRR, class: ClassFPAdd, isFP: true},
	OpFmax:   {name: "fmax", format: fmtRRR, class: ClassFPAdd, isFP: true},
	OpFneg:   {name: "fneg", format: fmtRR, class: ClassFPAdd, isFP: true},
	OpFabs:   {name: "fabs", format: fmtRR, class: ClassFPAdd, isFP: true},
	OpFmov:   {name: "fmov", format: fmtRR, class: ClassFPAdd, isFP: true},
	OpFlw:    {name: "flw", format: fmtMem, class: ClassMem, isLoad: true, isFP: true},
	OpFsw:    {name: "fsw", format: fmtMem, class: ClassMem, isStor: true, isFP: true},
	OpFcvtSW: {name: "fcvt.s.w", format: fmtRR, class: ClassFPAdd, isFP: true},
	OpFcvtWS: {name: "fcvt.w.s", format: fmtRR, class: ClassFPAdd, isFP: true},
	OpFeq:    {name: "feq", format: fmtRRR, class: ClassFPAdd, isFP: true},
	OpFlt:    {name: "flt", format: fmtRRR, class: ClassFPAdd, isFP: true},
	OpFle:    {name: "fle", format: fmtRRR, class: ClassFPAdd, isFP: true},
}

// Info accessors.

// Name returns the assembly mnemonic.
func (o Op) Name() string { return opTable[o].name }

// Class returns the functional-unit class.
func (o Op) Class() FUClass { return opTable[o].class }

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool { return opTable[o].isLoad }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return opTable[o].isStor }

// IsControl reports whether the opcode can redirect fetch.
func (o Op) IsControl() bool { return opTable[o].isCtrl }

// IsFP reports whether the opcode touches the f register file.
func (o Op) IsFP() bool { return opTable[o].isFP }

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	info := opTable[in.Op]
	rp := "r"
	if info.isFP {
		rp = "f"
	}
	switch info.format {
	case fmtNone:
		return info.name
	case fmtRRR:
		d, s := rp, rp
		if in.Op == OpFeq || in.Op == OpFlt || in.Op == OpFle {
			d = "r" // comparison result lands in an integer register
		}
		return fmt.Sprintf("%s %s%d, %s%d, %s%d", info.name, d, in.Rd, s, in.Rs1, s, in.Rs2)
	case fmtRRI:
		return fmt.Sprintf("%s r%d, r%d, %d", info.name, in.Rd, in.Rs1, in.Imm)
	case fmtRI:
		return fmt.Sprintf("%s r%d, %d", info.name, in.Rd, in.Imm)
	case fmtMem:
		reg := fmt.Sprintf("r%d", in.Rd)
		if info.isFP {
			reg = fmt.Sprintf("f%d", in.Rd)
		}
		if info.isStor {
			if info.isFP {
				reg = fmt.Sprintf("f%d", in.Rs2)
			} else {
				reg = fmt.Sprintf("r%d", in.Rs2)
			}
		}
		return fmt.Sprintf("%s %s, %d(r%d)", info.name, reg, in.Imm, in.Rs1)
	case fmtBranch:
		return fmt.Sprintf("%s r%d, r%d, %d", info.name, in.Rs1, in.Rs2, in.Imm)
	case fmtJal:
		return fmt.Sprintf("%s r%d, %d", info.name, in.Rd, in.Imm)
	case fmtJalr:
		return fmt.Sprintf("%s r%d, r%d, %d", info.name, in.Rd, in.Rs1, in.Imm)
	case fmtRR:
		d, s := rp, rp
		if in.Op == OpFcvtWS {
			d = "r"
		}
		if in.Op == OpFcvtSW {
			s = "r"
		}
		return fmt.Sprintf("%s %s%d, %s%d", info.name, d, in.Rd, s, in.Rs1)
	}
	return info.name
}

// Latency returns the execution latency in cycles for the timing model
// (SimpleScalar-like defaults).
func (o Op) Latency() int {
	switch o.Class() {
	case ClassIntALU, ClassBranch:
		return 1
	case ClassIntMul:
		if o == OpMul {
			return 3
		}
		return 12 // div/rem
	case ClassMem:
		return 1 // address generation; cache latency added separately
	case ClassFPAdd:
		return 2
	case ClassFPMul:
		return 4
	case ClassFPDiv:
		return 12
	}
	return 1
}
