package cpu

import "fmt"

// Memory is the simulator's flat little-endian data memory.
type Memory struct {
	bytes []byte
}

// NewMemory allocates a zeroed memory of the given size in bytes.
func NewMemory(size int) *Memory {
	if size <= 0 {
		panic(fmt.Sprintf("cpu: invalid memory size %d", size))
	}
	return &Memory{bytes: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.bytes) }

// LoadImage copies data into memory starting at addr.
func (m *Memory) LoadImage(addr uint32, data []byte) error {
	if int(addr)+len(data) > len(m.bytes) {
		return fmt.Errorf("cpu: image of %d bytes at %#x exceeds memory size %d", len(data), addr, len(m.bytes))
	}
	copy(m.bytes[addr:], data)
	return nil
}

func (m *Memory) check(addr uint32, n int) {
	if int(addr)+n > len(m.bytes) {
		panic(fmt.Sprintf("cpu: memory access of %d bytes at %#x out of bounds (size %#x)", n, addr, len(m.bytes)))
	}
}

// Read32 loads a 32-bit word.
func (m *Memory) Read32(addr uint32) uint32 {
	m.check(addr, 4)
	return uint32(m.bytes[addr]) | uint32(m.bytes[addr+1])<<8 |
		uint32(m.bytes[addr+2])<<16 | uint32(m.bytes[addr+3])<<24
}

// Write32 stores a 32-bit word.
func (m *Memory) Write32(addr uint32, v uint32) {
	m.check(addr, 4)
	m.bytes[addr] = byte(v)
	m.bytes[addr+1] = byte(v >> 8)
	m.bytes[addr+2] = byte(v >> 16)
	m.bytes[addr+3] = byte(v >> 24)
}

// Read16 loads a 16-bit halfword.
func (m *Memory) Read16(addr uint32) uint16 {
	m.check(addr, 2)
	return uint16(m.bytes[addr]) | uint16(m.bytes[addr+1])<<8
}

// Write16 stores a 16-bit halfword.
func (m *Memory) Write16(addr uint32, v uint16) {
	m.check(addr, 2)
	m.bytes[addr] = byte(v)
	m.bytes[addr+1] = byte(v >> 8)
}

// Read8 loads a byte.
func (m *Memory) Read8(addr uint32) uint8 {
	m.check(addr, 1)
	return m.bytes[addr]
}

// Write8 stores a byte.
func (m *Memory) Write8(addr uint32, v uint8) {
	m.check(addr, 1)
	m.bytes[addr] = v
}
