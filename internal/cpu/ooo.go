package cpu

import (
	"fmt"
	"math/bits"
)

// Config parameterizes the out-of-order timing model
// (SimpleScalar sim-outorder defaults).
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	RUUSize     int // register update unit (reorder window) entries
	LSQSize     int // load/store queue entries

	// Functional unit counts per class.
	FUCounts [fuClassCount]int

	// Memory hierarchy.
	L1DSize, L1DWays, L1DLine int
	L2Size, L2Ways, L2Line    int
	L1Latency                 int // load-to-use on L1 hit
	L2Latency                 int // additional cycles on L1 miss / L2 hit
	MemLatency                int // additional cycles on L2 miss

	MispredictPenalty int
	PredictorEntries  int
}

// DefaultConfig returns the configuration used for all experiments.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		RUUSize:     64,
		LSQSize:     32,
		FUCounts: [fuClassCount]int{
			ClassIntALU: 4,
			ClassIntMul: 1,
			ClassMem:    2,
			ClassBranch: 1,
			ClassFPAdd:  2,
			ClassFPMul:  1,
			ClassFPDiv:  1,
		},
		L1DSize: 16 << 10, L1DWays: 4, L1DLine: 32,
		L2Size: 256 << 10, L2Ways: 8, L2Line: 64,
		L1Latency:         2,
		L2Latency:         10,
		MemLatency:        80,
		MispredictPenalty: 3,
		PredictorEntries:  2048,
	}
}

// BusTraces carries the simulator outputs the paper's study consumes: the
// re-timed value streams of the integer register-file output port and the
// external memory data bus (§4.1), plus summary statistics.
type BusTraces struct {
	// RegisterBus is the sequence of 32-bit values appearing on the
	// integer register file's output port, ordered by issue time.
	RegisterBus []uint64
	// MemoryBus is the sequence of 32-bit data values crossing the
	// memory data bus (cache-fill words of L1 misses and outgoing store
	// data), ordered by the cycle the value appears on the bus.
	MemoryBus []uint64
	// MemoryAddrBus is the sequence of addresses on the memory address
	// bus, one per MemoryBus beat — the traffic the related-work
	// address-bus coders (workzone, sector) target.
	MemoryAddrBus []uint64

	Instructions   uint64
	Cycles         uint64
	IPC            float64
	L1DMissRate    float64
	L2MissRate     float64
	BranchAccuracy float64
}

// instrMeta is the pre-decoded per-opcode timing metadata: one dense array
// load in the simulation loop replaces the opTable indirections (Class,
// Latency, IsFP, usesRs2, destOf, isConditional) the loop used to chase
// per instruction.
type instrMeta struct {
	class   uint8
	latency uint8
	dest    uint8 // destKind
	flags   uint8
}

const (
	mfFP uint8 = 1 << iota
	mfUsesRs2
	mfCond
)

var metaTable [opCount]instrMeta

func init() {
	for op := Op(0); op < opCount; op++ {
		m := instrMeta{
			class:   uint8(op.Class()),
			latency: uint8(op.Latency()),
			dest:    uint8(destOf(op)),
		}
		if op.IsFP() {
			m.flags |= mfFP
		}
		if usesRs2(op) {
			m.flags |= mfUsesRs2
		}
		if isConditional(op) {
			m.flags |= mfCond
		}
		metaTable[op] = m
	}
}

// slotRing is an index-based replacement for the per-cycle bandwidth maps:
// a power-of-two ring of (cycle tag, reservation count) slots. A slot
// whose tag differs from the queried cycle is empty — stale tags belong to
// cycles the simulation has provably moved past (reservations only ever
// start at or after monotonically increasing frontiers), so they are
// overwritten in place instead of being pruned in batches.
//
// The ring must be larger than the maximum spread between the oldest cycle
// still queryable and the newest cycle reserved. reserve panics if it ever
// observes a slot tagged with a *future* cycle — the signature of that
// invariant breaking — so aliasing can never silently corrupt timing.
type slotRing struct {
	tags   []uint64
	counts []int32
	mask   uint64
}

func newSlotRing(size int) slotRing {
	if size <= 0 || size&(size-1) != 0 {
		panic("cpu: slot ring size must be a positive power of two")
	}
	return slotRing{
		tags:   make([]uint64, size),
		counts: make([]int32, size),
		mask:   uint64(size - 1),
	}
}

// reserve finds the first cycle >= from with a free slot (capacity cap)
// and consumes it. Cycles are always >= 1, so the zero tag means "never
// used".
func (r *slotRing) reserve(from uint64, cap int32) uint64 {
	c := from
	for {
		i := c & r.mask
		t := r.tags[i]
		if t != c {
			if t > c {
				panic(fmt.Sprintf("cpu: slot ring aliasing: cycle %d collides with live cycle %d (ring too small)", c, t))
			}
			r.tags[i] = c
			r.counts[i] = 1
			return c
		}
		if r.counts[i] < cap {
			r.counts[i]++
			return c
		}
		c++
	}
}

// Simulator re-times the functional core's dynamic instruction stream
// through an out-of-order pipeline model: per-instruction fetch, dispatch,
// issue, completion and commit times are derived from dependence,
// bandwidth and structural constraints — the same functional-first
// organization the paper built its bus timing generators on.
//
// This is the optimized implementation; ReferenceSimulator (kept in
// ooo_reference.go) is the map-based original, and the golden differential
// test requires both to produce byte-identical BusTraces.
type Simulator struct {
	cfg  Config
	core *Core
	l1d  *Cache
	l2   *Cache
	pred *BimodalPredictor

	// Per-architectural-register ready times.
	intReady [32]uint64
	fpReady  [32]uint64

	// Ring buffer of commit times of the last RUUSize instructions (for
	// the dispatch window constraint), and LSQ analog for memory ops.
	commitRing []uint64
	ringPos    int
	lsqRing    []uint64
	lsqPos     int

	// Per-functional-unit next-free cycle.
	fuFree [fuClassCount][]uint64

	// Bandwidth accounting: issued/committed/fetched counts per cycle.
	issueSlots  slotRing
	commitSlots slotRing
	fetchSlots  slotRing

	// Store forwarding/conflict tracking: completion of the youngest
	// store to each memory word, direct-mapped over the data memory
	// (exact — no pruning, no hashing). Entries the map-based original
	// pruned are provably unreachable: a later load's ready time already
	// exceeds any completion old enough to have been pruned.
	storeDone []uint64

	fetchFrontier uint64 // earliest cycle the next instruction can fetch
	lastCommit    uint64 // commit time of the previous instruction (in-order)
	lastCycle     uint64

	// Return-address stack for predicting returns (depth-limited ring;
	// overflow silently wraps like real hardware).
	ras    [16]int32
	rasTop int

	regEvents  []busEvent
	memEvents  []busEvent
	addrEvents []busEvent

	// regCutoff, once non-zero, is a proven upper bound on the cycle of
	// any register-bus event that can still appear in the truncated
	// output; later events beyond it are skipped at the append site (see
	// compactRegEvents).
	regCutoff uint64
}

// rasPush records a call's return address.
func (s *Simulator) rasPush(addr int32) {
	s.rasTop = (s.rasTop + 1) % len(s.ras)
	s.ras[s.rasTop] = addr
}

// rasPop predicts a return target (and consumes the entry).
func (s *Simulator) rasPop() int32 {
	addr := s.ras[s.rasTop]
	s.rasTop = (s.rasTop - 1 + len(s.ras)) % len(s.ras)
	return addr
}

// busEvent is one value beat. Events are appended in program order, and
// the collection sort is stable, so no explicit sequence tie-break is
// needed.
type busEvent struct {
	cycle uint64
	value uint32
}

// ringSizeFor picks the bandwidth-ring capacity: comfortably above the
// worst-case spread between the oldest queryable cycle (the fetch
// frontier) and the newest reserved cycle, which is bounded by the reorder
// window depth times the longest per-instruction latency chain
// (RUUSize * ~(L1+L2+Mem+slack)). The aliasing panic in reserve guards the
// bound.
func ringSizeFor(cfg Config) int {
	span := cfg.RUUSize * 512
	if span < 1<<15 {
		span = 1 << 15
	}
	return 1 << bits.Len(uint(span-1))
}

// NewSimulator wraps a functional core in the timing model.
func NewSimulator(p *Program, cfg Config) (*Simulator, error) {
	core, err := NewCore(p)
	if err != nil {
		return nil, err
	}
	ringSize := ringSizeFor(cfg)
	s := &Simulator{
		cfg:           cfg,
		core:          core,
		l1d:           NewCache("l1d", cfg.L1DSize, cfg.L1DWays, cfg.L1DLine),
		l2:            NewCache("l2", cfg.L2Size, cfg.L2Ways, cfg.L2Line),
		pred:          NewBimodalPredictor(cfg.PredictorEntries),
		commitRing:    make([]uint64, cfg.RUUSize),
		lsqRing:       make([]uint64, cfg.LSQSize),
		issueSlots:    newSlotRing(ringSize),
		commitSlots:   newSlotRing(ringSize),
		fetchSlots:    newSlotRing(ringSize),
		storeDone:     make([]uint64, core.Mem.Size()/4+1),
		fetchFrontier: 1,
	}
	for class := range s.fuFree {
		n := cfg.FUCounts[class]
		if n < 1 {
			return nil, fmt.Errorf("cpu: functional unit class %d has no units", class)
		}
		s.fuFree[class] = make([]uint64, n)
	}
	return s, nil
}

// Run executes up to maxInstrs instructions (or until HALT), collecting at
// most maxBusValues per bus (0 = unlimited).
func (s *Simulator) Run(maxInstrs uint64, maxBusValues int) BusTraces {
	var (
		fetchWidth  = int32(s.cfg.FetchWidth)
		issueWidth  = int32(s.cfg.IssueWidth)
		commitWidth = int32(s.cfg.CommitWidth)
		mispredict  = uint64(s.cfg.MispredictPenalty)
		core        = s.core
		executed    uint64
		info        StepInfo
	)
	// When the caller caps the trace length, size the event buffers up
	// front and bound the register-bus buffer by periodic compaction: the
	// loop runs until *both* buses are full, so the busier register bus
	// would otherwise grow to many multiples of the cap, only to be
	// sorted and truncated in collect.
	highWater := 0
	if maxBusValues > 0 {
		highWater = 4 * maxBusValues
		if s.regEvents == nil {
			s.regEvents = make([]busEvent, 0, highWater+4)
			s.memEvents = make([]busEvent, 0, maxBusValues+4)
			s.addrEvents = make([]busEvent, 0, maxBusValues+4)
		}
	}
	for executed < maxInstrs && !core.halted {
		core.StepInto(&info)
		if info.Halted && info.Instr.Op != OpHalt {
			break
		}
		executed++

		in := info.Instr
		meta := metaTable[in.Op]
		isMem := info.IsLoad || info.IsStore

		// --- Fetch ---
		fetch := s.fetchSlots.reserve(s.fetchFrontier, fetchWidth)

		// --- Dispatch: decode depth + reorder window slot ---
		dispatch := fetch + 2
		if windowFree := s.commitRing[s.ringPos]; dispatch < windowFree {
			dispatch = windowFree
		}
		if isMem {
			if lsqFree := s.lsqRing[s.lsqPos]; dispatch < lsqFree {
				dispatch = lsqFree
			}
		}
		// A full reorder window (or LSQ) backpressures the front end: the
		// fetch buffer is finite, so fetch cannot run ahead of dispatch.
		if dispatch > fetch+2 && dispatch-2 > s.fetchFrontier {
			s.fetchFrontier = dispatch - 2
		}

		// --- Source operands ---
		ready := dispatch + 1
		if meta.flags&mfFP != 0 {
			// FP ops read f sources; loads/stores also read the int base.
			if t := fpSrcReadyTimes(&s.fpReady, &s.intReady, in); t > ready {
				ready = t
			}
			if isMem && s.intReady[in.Rs1] > ready {
				ready = s.intReady[in.Rs1]
			}
		} else {
			if t := s.intReady[in.Rs1]; t > ready {
				ready = t
			}
			if meta.flags&mfUsesRs2 != 0 {
				if t := s.intReady[in.Rs2]; t > ready {
					ready = t
				}
			}
		}
		// Memory ordering: a load may not issue before the youngest
		// earlier store to the same word completes (no speculation).
		if info.IsLoad {
			if t := s.storeDone[info.Addr>>2]; t > ready {
				ready = t
			}
		}

		// --- Issue: bandwidth + functional unit ---
		issue := s.issueSlots.reserve(ready, issueWidth)
		issue = s.acquireFU(FUClass(meta.class), issue)

		// --- Execute/complete ---
		complete := issue + uint64(meta.latency)
		l1Miss := false
		if isMem {
			var lat int
			lat, l1Miss = s.memoryLatency(&info)
			complete = issue + uint64(lat)
		}

		// --- Register bus events: operand reads at issue ---
		if s.regCutoff == 0 || issue <= s.regCutoff {
			for i := 0; i < info.NSrcInt; i++ {
				s.regEvents = append(s.regEvents, busEvent{issue, info.SrcInt[i]})
			}
			if highWater > 0 && len(s.regEvents) >= highWater {
				s.compactRegEvents(maxBusValues)
				// If ties at the cutoff kept the buffer large, raise the
				// trigger so compaction cannot thrash.
				if hw := 2 * len(s.regEvents); hw > highWater {
					highWater = hw
				}
			}
		}

		// --- Memory bus events (§4.1): load data crossing the external
		// bus on an L1 miss arrives at completion; store data leaves the
		// store buffer at completion. ---
		if (info.IsLoad && l1Miss) || info.IsStore {
			s.memEvents = append(s.memEvents, busEvent{complete, info.Data})
			s.addrEvents = append(s.addrEvents, busEvent{complete, info.Addr})
		}

		// --- Writeback: destination ready ---
		switch destKind(meta.dest) {
		case destInt:
			if in.Rd != 0 {
				s.intReady[in.Rd] = complete
			}
		case destFP:
			s.fpReady[in.Rd] = complete
		}
		if info.IsStore {
			s.storeDone[info.Addr>>2] = complete
		}

		// --- Commit: in order ---
		commit := complete + 1
		if commit < s.lastCommit {
			commit = s.lastCommit
		}
		commit = s.commitSlots.reserve(commit, commitWidth)
		s.lastCommit = commit
		s.commitRing[s.ringPos] = commit
		s.ringPos++
		if s.ringPos == len(s.commitRing) {
			s.ringPos = 0
		}
		if isMem {
			s.lsqRing[s.lsqPos] = commit
			s.lsqPos++
			if s.lsqPos == len(s.lsqRing) {
				s.lsqPos = 0
			}
		}
		if commit > s.lastCycle {
			s.lastCycle = commit
		}

		// --- Control flow: train predictor, charge mispredictions ---
		// (fetch bandwidth itself is enforced by the slot reservation; the
		// frontier only ever moves forward.)
		if fetch > s.fetchFrontier {
			s.fetchFrontier = fetch
		}
		if info.IsControl {
			mispredicted := false
			switch {
			case meta.flags&mfCond != 0:
				predictedTaken := s.pred.PredictAndUpdate(info.Index, info.Taken)
				mispredicted = predictedTaken != info.Taken
			case in.Op == OpJal:
				// Direct jumps and calls resolve in decode (BTB hit
				// assumed); calls push the return-address stack.
				if in.Rd == 31 {
					s.rasPush(info.Index + 1)
				}
			case in.Op == OpJalr:
				// Returns predict through the RAS; other indirect jumps
				// are unpredicted and always redirect.
				if in.Rs1 == 31 && in.Rd == 0 {
					mispredicted = s.rasPop() != info.NextPC
				} else {
					mispredicted = true
				}
			}
			if mispredicted {
				redirect := complete + mispredict
				if redirect > s.fetchFrontier {
					s.fetchFrontier = redirect
				}
			}
		}

		if maxBusValues > 0 && len(s.regEvents) >= maxBusValues && len(s.memEvents) >= maxBusValues {
			break
		}
	}
	return s.collect(executed, maxBusValues)
}

// fpSrcReadyTimes returns the cycle the FP instruction's source operands
// become available. Shared by the optimized and reference simulators.
func fpSrcReadyTimes(fpReady, intReady *[32]uint64, in Instr) uint64 {
	t := uint64(0)
	switch in.Op {
	case OpFadd, OpFsub, OpFmul, OpFdiv, OpFmin, OpFmax, OpFeq, OpFlt, OpFle:
		if fpReady[in.Rs1] > t {
			t = fpReady[in.Rs1]
		}
		if fpReady[in.Rs2] > t {
			t = fpReady[in.Rs2]
		}
	case OpFneg, OpFabs, OpFmov, OpFcvtWS:
		t = fpReady[in.Rs1]
	case OpFcvtSW:
		t = intReady[in.Rs1]
	case OpFsw:
		t = fpReady[in.Rs2]
	case OpFlw:
		// base handled by caller
	}
	return t
}

// destKind classifies an opcode's destination register file.
type destKind int

const (
	destNone destKind = iota
	destInt
	destFP
)

func destOf(op Op) destKind {
	info := opTable[op]
	switch {
	case info.isStor, info.isCtrl && op != OpJal && op != OpJalr:
		return destNone
	case op == OpNop, op == OpHalt:
		return destNone
	case op == OpFcvtWS, op == OpFeq, op == OpFlt, op == OpFle:
		return destInt
	case info.isFP:
		return destFP
	default:
		return destInt
	}
}

// memoryLatency performs the cache accesses for a memory instruction and
// returns its load-to-use (or store completion) latency plus whether the
// access missed the L1 (i.e. the data word crossed the memory bus).
func (s *Simulator) memoryLatency(info *StepInfo) (int, bool) {
	cfg := &s.cfg
	lat := cfg.L1Latency
	res := s.l1d.Access(info.Addr, info.IsStore)
	if res.Hit {
		return lat, false
	}
	lat += cfg.L2Latency
	l2res := s.l2.Access(info.Addr, false)
	if !l2res.Hit {
		lat += cfg.MemLatency
	}
	if res.Writeback {
		s.l2.Access(res.WritebackAddr, true)
	}
	return lat, true
}

func (s *Simulator) acquireFU(class FUClass, from uint64) uint64 {
	units := s.fuFree[class]
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := from
	if units[best] > start {
		start = units[best]
	}
	units[best] = start + 1 // fully pipelined units
	return start
}

func (s *Simulator) collect(executed uint64, maxBusValues int) BusTraces {
	var scratch []busEvent
	sortEvents := func(ev []busEvent) []uint64 {
		if len(ev) > len(scratch) {
			scratch = make([]busEvent, len(ev))
		}
		radixSortByCycle(ev, scratch[:len(ev)])
		out := make([]uint64, len(ev))
		for i, e := range ev {
			out[i] = uint64(e.value)
		}
		if maxBusValues > 0 && len(out) > maxBusValues {
			out = out[:maxBusValues]
		}
		return out
	}
	t := BusTraces{
		RegisterBus:    sortEvents(s.regEvents),
		MemoryBus:      sortEvents(s.memEvents),
		MemoryAddrBus:  sortEvents(s.addrEvents),
		Instructions:   executed,
		Cycles:         s.lastCycle,
		L1DMissRate:    s.l1d.MissRate(),
		L2MissRate:     s.l2.MissRate(),
		BranchAccuracy: s.pred.Accuracy(),
	}
	if t.Cycles > 0 {
		t.IPC = float64(t.Instructions) / float64(t.Cycles)
	}
	return t
}

// compactRegEvents bounds the register-bus event buffer without changing
// the collected trace. Let T be the maxBusValues-th smallest cycle
// currently buffered: at least maxBusValues events have cycle <= T, and
// the collection sort is stable, so every event with cycle > T sorts
// strictly after them and can never be among the first maxBusValues
// output values. Dropping those events — and, via regCutoff, skipping
// future ones — while keeping *all* events with cycle <= T in append
// order therefore leaves the truncated, stably-sorted output
// byte-identical to the unbounded build. Recomputed cutoffs only
// tighten: later selections run over a subset of events all <= the
// previous cutoff.
func (s *Simulator) compactRegEvents(maxBusValues int) {
	t := kthSmallestCycle(s.regEvents, maxBusValues)
	w := 0
	for _, e := range s.regEvents {
		if e.cycle <= t {
			s.regEvents[w] = e
			w++
		}
	}
	s.regEvents = s.regEvents[:w]
	s.regCutoff = t
}

// kthSmallestCycle returns the k-th smallest (1-indexed, counting
// duplicates) cycle among the events without perturbing their order:
// iterative quickselect with median-of-three pivots over a scratch copy
// of the cycles. Requires 1 <= k <= len(ev).
func kthSmallestCycle(ev []busEvent, k int) uint64 {
	c := make([]uint64, len(ev))
	for i := range ev {
		c[i] = ev[i].cycle
	}
	lo, hi, idx := 0, len(c)-1, k-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if c[mid] < c[lo] {
			c[mid], c[lo] = c[lo], c[mid]
		}
		if c[hi] < c[lo] {
			c[hi], c[lo] = c[lo], c[hi]
		}
		if c[hi] < c[mid] {
			c[hi], c[mid] = c[mid], c[hi]
		}
		p := c[mid]
		i, j := lo, hi
		for i <= j {
			for c[i] < p {
				i++
			}
			for c[j] > p {
				j--
			}
			if i <= j {
				c[i], c[j] = c[j], c[i]
				i++
				j--
			}
		}
		switch {
		case idx <= j:
			hi = j
		case idx >= i:
			lo = i
		default:
			return c[idx]
		}
	}
	return c[idx]
}

// radixSortByCycle sorts events by cycle with a stable byte-wise LSD radix
// sort, preserving append (program) order within a cycle — the same order
// sort.Slice over (cycle, seq) produced, without the comparison-sort
// closures that dominated the collection profile. Passes whose byte is
// constant across all events (the high cycle bytes, usually) are skipped.
func radixSortByCycle(ev, scratch []busEvent) {
	if len(ev) < 2 {
		return
	}
	var orAll, andAll uint64 = 0, ^uint64(0)
	for i := range ev {
		orAll |= ev[i].cycle
		andAll &= ev[i].cycle
	}
	src, dst := ev, scratch
	swapped := false
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		varying := byte(orAll>>shift) ^ byte(andAll>>shift)
		if varying == 0 {
			continue // every event shares this byte
		}
		counts = [256]int{}
		for i := range src {
			counts[byte(src[i].cycle>>shift)]++
		}
		total := 0
		for b := 0; b < 256; b++ {
			counts[b], total = total, total+counts[b]
		}
		for i := range src {
			b := byte(src[i].cycle >> shift)
			dst[counts[b]] = src[i]
			counts[b]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(ev, src)
	}
}

func usesRs2(op Op) bool {
	switch opTable[op].format {
	case fmtRRR, fmtBranch:
		return !opTable[op].isFP || op == OpFeq || op == OpFlt || op == OpFle
	case fmtMem:
		return opTable[op].isStor && !opTable[op].isFP
	}
	return false
}

func isConditional(op Op) bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}
