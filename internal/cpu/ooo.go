package cpu

import (
	"fmt"
	"sort"
)

// Config parameterizes the out-of-order timing model
// (SimpleScalar sim-outorder defaults).
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	RUUSize     int // register update unit (reorder window) entries
	LSQSize     int // load/store queue entries

	// Functional unit counts per class.
	FUCounts [fuClassCount]int

	// Memory hierarchy.
	L1DSize, L1DWays, L1DLine int
	L2Size, L2Ways, L2Line    int
	L1Latency                 int // load-to-use on L1 hit
	L2Latency                 int // additional cycles on L1 miss / L2 hit
	MemLatency                int // additional cycles on L2 miss

	MispredictPenalty int
	PredictorEntries  int
}

// DefaultConfig returns the configuration used for all experiments.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		RUUSize:     64,
		LSQSize:     32,
		FUCounts: [fuClassCount]int{
			ClassIntALU: 4,
			ClassIntMul: 1,
			ClassMem:    2,
			ClassBranch: 1,
			ClassFPAdd:  2,
			ClassFPMul:  1,
			ClassFPDiv:  1,
		},
		L1DSize: 16 << 10, L1DWays: 4, L1DLine: 32,
		L2Size: 256 << 10, L2Ways: 8, L2Line: 64,
		L1Latency:         2,
		L2Latency:         10,
		MemLatency:        80,
		MispredictPenalty: 3,
		PredictorEntries:  2048,
	}
}

// BusTraces carries the simulator outputs the paper's study consumes: the
// re-timed value streams of the integer register-file output port and the
// external memory data bus (§4.1), plus summary statistics.
type BusTraces struct {
	// RegisterBus is the sequence of 32-bit values appearing on the
	// integer register file's output port, ordered by issue time.
	RegisterBus []uint64
	// MemoryBus is the sequence of 32-bit data values crossing the
	// memory data bus (cache-fill words of L1 misses and outgoing store
	// data), ordered by the cycle the value appears on the bus.
	MemoryBus []uint64
	// MemoryAddrBus is the sequence of addresses on the memory address
	// bus, one per MemoryBus beat — the traffic the related-work
	// address-bus coders (workzone, sector) target.
	MemoryAddrBus []uint64

	Instructions   uint64
	Cycles         uint64
	IPC            float64
	L1DMissRate    float64
	L2MissRate     float64
	BranchAccuracy float64
}

// Simulator re-times the functional core's dynamic instruction stream
// through an out-of-order pipeline model: per-instruction fetch, dispatch,
// issue, completion and commit times are derived from dependence,
// bandwidth and structural constraints — the same functional-first
// organization the paper built its bus timing generators on.
type Simulator struct {
	cfg  Config
	core *Core
	l1d  *Cache
	l2   *Cache
	pred *BimodalPredictor

	// Per-architectural-register ready times.
	intReady [32]uint64
	fpReady  [32]uint64

	// Ring buffer of commit times of the last RUUSize instructions (for
	// the dispatch window constraint), and LSQ analog for memory ops.
	commitRing []uint64
	ringPos    int
	lsqRing    []uint64
	lsqPos     int

	// Per-functional-unit next-free cycle.
	fuFree [fuClassCount][]uint64

	// Bandwidth accounting: issued/committed/fetched counts per cycle.
	issueSlots  slotMap
	commitSlots slotMap
	fetchSlots  slotMap

	// Store forwarding/conflict tracking: word address -> completion of
	// the youngest store to it.
	storeComplete map[uint32]uint64

	fetchFrontier  uint64 // earliest cycle the next instruction can fetch
	lastCommit     uint64 // commit time of the previous instruction (in-order)
	lastCycle      uint64
	pruneCountdown int // instructions until the next slot-map cleanup

	// Return-address stack for predicting returns (depth-limited ring;
	// overflow silently wraps like real hardware).
	ras    [16]int32
	rasTop int

	regEvents  []busEvent
	memEvents  []busEvent
	addrEvents []busEvent
}

// rasPush records a call's return address.
func (s *Simulator) rasPush(addr int32) {
	s.rasTop = (s.rasTop + 1) % len(s.ras)
	s.ras[s.rasTop] = addr
}

// rasPop predicts a return target (and consumes the entry).
func (s *Simulator) rasPop() int32 {
	addr := s.ras[s.rasTop]
	s.rasTop = (s.rasTop - 1 + len(s.ras)) % len(s.ras)
	return addr
}

type busEvent struct {
	cycle uint64
	seq   int // tie-break: program order
	value uint32
}

// slotMap counts bandwidth consumption per cycle with pruning.
type slotMap map[uint64]int

// reserve finds the first cycle >= from with a free slot (capacity cap)
// and consumes it.
func (s slotMap) reserve(from uint64, cap int) uint64 {
	c := from
	for s[c] >= cap {
		c++
	}
	s[c]++
	return c
}

// NewSimulator wraps a functional core in the timing model.
func NewSimulator(p *Program, cfg Config) (*Simulator, error) {
	core, err := NewCore(p)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:           cfg,
		core:          core,
		l1d:           NewCache("l1d", cfg.L1DSize, cfg.L1DWays, cfg.L1DLine),
		l2:            NewCache("l2", cfg.L2Size, cfg.L2Ways, cfg.L2Line),
		pred:          NewBimodalPredictor(cfg.PredictorEntries),
		commitRing:    make([]uint64, cfg.RUUSize),
		lsqRing:       make([]uint64, cfg.LSQSize),
		issueSlots:    make(slotMap),
		commitSlots:   make(slotMap),
		fetchSlots:    make(slotMap),
		storeComplete: make(map[uint32]uint64),
		fetchFrontier: 1,
	}
	for class := range s.fuFree {
		n := cfg.FUCounts[class]
		if n < 1 {
			return nil, fmt.Errorf("cpu: functional unit class %d has no units", class)
		}
		s.fuFree[class] = make([]uint64, n)
	}
	return s, nil
}

// Run executes up to maxInstrs instructions (or until HALT), collecting at
// most maxBusValues per bus (0 = unlimited).
func (s *Simulator) Run(maxInstrs uint64, maxBusValues int) BusTraces {
	cfg := s.cfg
	var executed uint64
	for executed < maxInstrs && !s.core.Halted() {
		info := s.core.Step()
		if info.Halted && info.Instr.Op != OpHalt {
			break
		}
		executed++

		// --- Fetch ---
		fetch := s.fetchSlots.reserve(s.fetchFrontier, cfg.FetchWidth)
		s.pruneSlots(fetch)

		// --- Dispatch: decode depth + reorder window slot ---
		dispatch := fetch + 2
		if windowFree := s.commitRing[s.ringPos]; dispatch < windowFree {
			dispatch = windowFree
		}
		if info.IsLoad || info.IsStore {
			if lsqFree := s.lsqRing[s.lsqPos]; dispatch < lsqFree {
				dispatch = lsqFree
			}
		}
		// A full reorder window (or LSQ) backpressures the front end: the
		// fetch buffer is finite, so fetch cannot run ahead of dispatch.
		if dispatch > fetch+2 && dispatch-2 > s.fetchFrontier {
			s.fetchFrontier = dispatch - 2
		}

		// --- Source operands ---
		ready := dispatch + 1
		in := info.Instr
		switch {
		case in.Op.IsFP():
			// FP ops read f sources; loads/stores also read the int base.
			if t := s.fpSrcReady(in); t > ready {
				ready = t
			}
			if (info.IsLoad || info.IsStore) && s.intReady[in.Rs1] > ready {
				ready = s.intReady[in.Rs1]
			}
		default:
			if t := s.intReady[in.Rs1]; t > ready {
				ready = t
			}
			if usesRs2(in.Op) {
				if t := s.intReady[in.Rs2]; t > ready {
					ready = t
				}
			}
		}
		// Memory ordering: a load may not issue before the youngest
		// earlier store to the same word completes (no speculation).
		if info.IsLoad {
			if t := s.storeComplete[info.Addr&^3]; t > ready {
				ready = t
			}
		}

		// --- Issue: bandwidth + functional unit ---
		issue := s.issueSlots.reserve(ready, cfg.IssueWidth)
		issue = s.acquireFU(in.Op.Class(), issue)

		// --- Execute/complete ---
		complete := issue + uint64(in.Op.Latency())
		l1Miss := false
		if info.IsLoad || info.IsStore {
			var lat int
			lat, l1Miss = s.memoryLatency(info)
			complete = issue + uint64(lat)
		}

		// --- Register bus events: operand reads at issue ---
		for i := 0; i < info.NSrcInt; i++ {
			s.regEvents = append(s.regEvents, busEvent{issue, len(s.regEvents), info.SrcInt[i]})
		}

		// --- Memory bus events (§4.1): load data crossing the external
		// bus on an L1 miss arrives at completion; store data leaves the
		// store buffer at completion. ---
		if (info.IsLoad && l1Miss) || info.IsStore {
			s.memEvents = append(s.memEvents, busEvent{complete, len(s.memEvents), info.Data})
			s.addrEvents = append(s.addrEvents, busEvent{complete, len(s.addrEvents), info.Addr})
		}

		// --- Writeback: destination ready ---
		s.setDestReady(in, info, complete)
		if info.IsStore {
			s.storeComplete[info.Addr&^3] = complete
			if len(s.storeComplete) > 4*cfg.LSQSize {
				s.pruneStores(complete)
			}
		}

		// --- Commit: in order ---
		commit := complete + 1
		if commit < s.lastCommit {
			commit = s.lastCommit
		}
		commit = s.commitSlots.reserve(commit, cfg.CommitWidth)
		s.lastCommit = commit
		s.commitRing[s.ringPos] = commit
		s.ringPos = (s.ringPos + 1) % len(s.commitRing)
		if info.IsLoad || info.IsStore {
			s.lsqRing[s.lsqPos] = commit
			s.lsqPos = (s.lsqPos + 1) % len(s.lsqRing)
		}
		if commit > s.lastCycle {
			s.lastCycle = commit
		}

		// --- Control flow: train predictor, charge mispredictions ---
		// (fetch bandwidth itself is enforced by the slot reservation; the
		// frontier only ever moves forward.)
		if fetch > s.fetchFrontier {
			s.fetchFrontier = fetch
		}
		if info.IsControl {
			mispredicted := false
			switch {
			case isConditional(in.Op):
				predictedTaken := s.pred.PredictAndUpdate(info.Index, info.Taken)
				mispredicted = predictedTaken != info.Taken
			case in.Op == OpJal:
				// Direct jumps and calls resolve in decode (BTB hit
				// assumed); calls push the return-address stack.
				if in.Rd == 31 {
					s.rasPush(info.Index + 1)
				}
			case in.Op == OpJalr:
				// Returns predict through the RAS; other indirect jumps
				// are unpredicted and always redirect.
				if in.Rs1 == 31 && in.Rd == 0 {
					mispredicted = s.rasPop() != info.NextPC
				} else {
					mispredicted = true
				}
			}
			if mispredicted {
				redirect := complete + uint64(cfg.MispredictPenalty)
				if redirect > s.fetchFrontier {
					s.fetchFrontier = redirect
				}
			}
		}

		if maxBusValues > 0 && len(s.regEvents) >= maxBusValues && len(s.memEvents) >= maxBusValues {
			break
		}
	}
	return s.collect(executed, maxBusValues)
}

func (s *Simulator) fpSrcReady(in Instr) uint64 {
	t := uint64(0)
	switch in.Op {
	case OpFadd, OpFsub, OpFmul, OpFdiv, OpFmin, OpFmax, OpFeq, OpFlt, OpFle:
		if s.fpReady[in.Rs1] > t {
			t = s.fpReady[in.Rs1]
		}
		if s.fpReady[in.Rs2] > t {
			t = s.fpReady[in.Rs2]
		}
	case OpFneg, OpFabs, OpFmov, OpFcvtWS:
		t = s.fpReady[in.Rs1]
	case OpFcvtSW:
		t = s.intReady[in.Rs1]
	case OpFsw:
		t = s.fpReady[in.Rs2]
	case OpFlw:
		// base handled by caller
	}
	return t
}

// destKind classifies an opcode's destination register file.
type destKind int

const (
	destNone destKind = iota
	destInt
	destFP
)

func destOf(op Op) destKind {
	info := opTable[op]
	switch {
	case info.isStor, info.isCtrl && op != OpJal && op != OpJalr:
		return destNone
	case op == OpNop, op == OpHalt:
		return destNone
	case op == OpFcvtWS, op == OpFeq, op == OpFlt, op == OpFle:
		return destInt
	case info.isFP:
		return destFP
	default:
		return destInt
	}
}

func (s *Simulator) setDestReady(in Instr, info StepInfo, complete uint64) {
	switch destOf(in.Op) {
	case destInt:
		if in.Rd != 0 {
			s.intReady[in.Rd] = complete
		}
	case destFP:
		s.fpReady[in.Rd] = complete
	}
}

// memoryLatency performs the cache accesses for a memory instruction and
// returns its load-to-use (or store completion) latency plus whether the
// access missed the L1 (i.e. the data word crossed the memory bus).
func (s *Simulator) memoryLatency(info StepInfo) (int, bool) {
	cfg := s.cfg
	lat := cfg.L1Latency
	res := s.l1d.Access(info.Addr, info.IsStore)
	if res.Hit {
		return lat, false
	}
	lat += cfg.L2Latency
	l2res := s.l2.Access(info.Addr, false)
	if !l2res.Hit {
		lat += cfg.MemLatency
	}
	if res.Writeback {
		s.l2.Access(res.WritebackAddr, true)
	}
	return lat, true
}

func (s *Simulator) acquireFU(class FUClass, from uint64) uint64 {
	units := s.fuFree[class]
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := from
	if units[best] > start {
		start = units[best]
	}
	units[best] = start + 1 // fully pipelined units
	return start
}

func (s *Simulator) pruneSlots(frontier uint64) {
	// Amortized cleanup: every 16384 instructions, drop bandwidth entries
	// far enough behind the fetch frontier that no future reservation can
	// reach them (reservations start at or after the frontier minus the
	// reorder window's reach).
	s.pruneCountdown--
	if s.pruneCountdown > 0 {
		return
	}
	s.pruneCountdown = 16384
	cut := frontier
	if window := uint64(s.cfg.RUUSize) * 4; cut > window {
		cut -= window
	} else {
		cut = 0
	}
	for _, m := range []slotMap{s.issueSlots, s.commitSlots, s.fetchSlots} {
		for c := range m {
			if c < cut {
				delete(m, c)
			}
		}
	}
}

func (s *Simulator) pruneStores(frontier uint64) {
	cut := frontier
	if cut > 512 {
		cut -= 512
	} else {
		cut = 0
	}
	for a, t := range s.storeComplete {
		if t < cut {
			delete(s.storeComplete, a)
		}
	}
}

func (s *Simulator) collect(executed uint64, maxBusValues int) BusTraces {
	sortEvents := func(ev []busEvent) []uint64 {
		sort.Slice(ev, func(i, j int) bool {
			if ev[i].cycle != ev[j].cycle {
				return ev[i].cycle < ev[j].cycle
			}
			return ev[i].seq < ev[j].seq
		})
		out := make([]uint64, len(ev))
		for i, e := range ev {
			out[i] = uint64(e.value)
		}
		if maxBusValues > 0 && len(out) > maxBusValues {
			out = out[:maxBusValues]
		}
		return out
	}
	t := BusTraces{
		RegisterBus:    sortEvents(s.regEvents),
		MemoryBus:      sortEvents(s.memEvents),
		MemoryAddrBus:  sortEvents(s.addrEvents),
		Instructions:   executed,
		Cycles:         s.lastCycle,
		L1DMissRate:    s.l1d.MissRate(),
		L2MissRate:     s.l2.MissRate(),
		BranchAccuracy: s.pred.Accuracy(),
	}
	if t.Cycles > 0 {
		t.IPC = float64(t.Instructions) / float64(t.Cycles)
	}
	return t
}

func usesRs2(op Op) bool {
	switch opTable[op].format {
	case fmtRRR, fmtBranch:
		return !opTable[op].isFP || op == OpFeq || op == OpFlt || op == OpFle
	case fmtMem:
		return opTable[op].isStor && !opTable[op].isFP
	}
	return false
}

func isConditional(op Op) bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}
