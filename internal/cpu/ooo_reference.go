package cpu

import (
	"fmt"
	"sort"
)

// This file preserves the straightforward map-based timing model as a
// correctness oracle for the optimized Simulator in ooo.go. The two
// implementations must stay cycle-identical: the golden differential test
// (golden_test.go) runs real workloads through both and requires the
// resulting BusTraces to match exactly. When changing pipeline semantics,
// change BOTH implementations; when optimizing, change only ooo.go.

// refSlotMap counts bandwidth consumption per cycle with pruning — the
// unoptimized analog of slotRing.
type refSlotMap map[uint64]int

// reserve finds the first cycle >= from with a free slot (capacity cap)
// and consumes it.
func (s refSlotMap) reserve(from uint64, cap int) uint64 {
	c := from
	for s[c] >= cap {
		c++
	}
	s[c]++
	return c
}

// ReferenceSimulator is the unoptimized out-of-order timing model. It
// exists solely as a differential-testing oracle; production code uses
// Simulator.
type ReferenceSimulator struct {
	cfg  Config
	core *Core
	l1d  *Cache
	l2   *Cache
	pred *BimodalPredictor

	intReady [32]uint64
	fpReady  [32]uint64

	commitRing []uint64
	ringPos    int
	lsqRing    []uint64
	lsqPos     int

	fuFree [fuClassCount][]uint64

	issueSlots  refSlotMap
	commitSlots refSlotMap
	fetchSlots  refSlotMap

	storeComplete map[uint32]uint64

	fetchFrontier  uint64
	lastCommit     uint64
	lastCycle      uint64
	pruneCountdown int

	ras    [16]int32
	rasTop int

	regEvents  []refBusEvent
	memEvents  []refBusEvent
	addrEvents []refBusEvent
}

func (s *ReferenceSimulator) rasPush(addr int32) {
	s.rasTop = (s.rasTop + 1) % len(s.ras)
	s.ras[s.rasTop] = addr
}

func (s *ReferenceSimulator) rasPop() int32 {
	addr := s.ras[s.rasTop]
	s.rasTop = (s.rasTop - 1 + len(s.ras)) % len(s.ras)
	return addr
}

type refBusEvent struct {
	cycle uint64
	seq   int // tie-break: program order
	value uint32
}

// NewReferenceSimulator wraps a functional core in the unoptimized timing
// model.
func NewReferenceSimulator(p *Program, cfg Config) (*ReferenceSimulator, error) {
	core, err := NewCore(p)
	if err != nil {
		return nil, err
	}
	s := &ReferenceSimulator{
		cfg:           cfg,
		core:          core,
		l1d:           NewCache("l1d", cfg.L1DSize, cfg.L1DWays, cfg.L1DLine),
		l2:            NewCache("l2", cfg.L2Size, cfg.L2Ways, cfg.L2Line),
		pred:          NewBimodalPredictor(cfg.PredictorEntries),
		commitRing:    make([]uint64, cfg.RUUSize),
		lsqRing:       make([]uint64, cfg.LSQSize),
		issueSlots:    make(refSlotMap),
		commitSlots:   make(refSlotMap),
		fetchSlots:    make(refSlotMap),
		storeComplete: make(map[uint32]uint64),
		fetchFrontier: 1,
	}
	for class := range s.fuFree {
		n := cfg.FUCounts[class]
		if n < 1 {
			return nil, fmt.Errorf("cpu: functional unit class %d has no units", class)
		}
		s.fuFree[class] = make([]uint64, n)
	}
	return s, nil
}

// Run executes up to maxInstrs instructions (or until HALT), collecting at
// most maxBusValues per bus (0 = unlimited).
func (s *ReferenceSimulator) Run(maxInstrs uint64, maxBusValues int) BusTraces {
	cfg := s.cfg
	var executed uint64
	for executed < maxInstrs && !s.core.Halted() {
		info := s.core.Step()
		if info.Halted && info.Instr.Op != OpHalt {
			break
		}
		executed++

		// --- Fetch ---
		fetch := s.fetchSlots.reserve(s.fetchFrontier, cfg.FetchWidth)
		s.pruneSlots(fetch)

		// --- Dispatch: decode depth + reorder window slot ---
		dispatch := fetch + 2
		if windowFree := s.commitRing[s.ringPos]; dispatch < windowFree {
			dispatch = windowFree
		}
		if info.IsLoad || info.IsStore {
			if lsqFree := s.lsqRing[s.lsqPos]; dispatch < lsqFree {
				dispatch = lsqFree
			}
		}
		if dispatch > fetch+2 && dispatch-2 > s.fetchFrontier {
			s.fetchFrontier = dispatch - 2
		}

		// --- Source operands ---
		ready := dispatch + 1
		in := info.Instr
		switch {
		case in.Op.IsFP():
			if t := fpSrcReadyTimes(&s.fpReady, &s.intReady, in); t > ready {
				ready = t
			}
			if (info.IsLoad || info.IsStore) && s.intReady[in.Rs1] > ready {
				ready = s.intReady[in.Rs1]
			}
		default:
			if t := s.intReady[in.Rs1]; t > ready {
				ready = t
			}
			if usesRs2(in.Op) {
				if t := s.intReady[in.Rs2]; t > ready {
					ready = t
				}
			}
		}
		if info.IsLoad {
			if t := s.storeComplete[info.Addr&^3]; t > ready {
				ready = t
			}
		}

		// --- Issue: bandwidth + functional unit ---
		issue := s.issueSlots.reserve(ready, cfg.IssueWidth)
		issue = s.acquireFU(in.Op.Class(), issue)

		// --- Execute/complete ---
		complete := issue + uint64(in.Op.Latency())
		l1Miss := false
		if info.IsLoad || info.IsStore {
			var lat int
			lat, l1Miss = s.memoryLatency(info)
			complete = issue + uint64(lat)
		}

		// --- Register bus events: operand reads at issue ---
		for i := 0; i < info.NSrcInt; i++ {
			s.regEvents = append(s.regEvents, refBusEvent{issue, len(s.regEvents), info.SrcInt[i]})
		}

		// --- Memory bus events ---
		if (info.IsLoad && l1Miss) || info.IsStore {
			s.memEvents = append(s.memEvents, refBusEvent{complete, len(s.memEvents), info.Data})
			s.addrEvents = append(s.addrEvents, refBusEvent{complete, len(s.addrEvents), info.Addr})
		}

		// --- Writeback: destination ready ---
		s.setDestReady(in, complete)
		if info.IsStore {
			s.storeComplete[info.Addr&^3] = complete
			if len(s.storeComplete) > 4*cfg.LSQSize {
				s.pruneStores(complete)
			}
		}

		// --- Commit: in order ---
		commit := complete + 1
		if commit < s.lastCommit {
			commit = s.lastCommit
		}
		commit = s.commitSlots.reserve(commit, cfg.CommitWidth)
		s.lastCommit = commit
		s.commitRing[s.ringPos] = commit
		s.ringPos = (s.ringPos + 1) % len(s.commitRing)
		if info.IsLoad || info.IsStore {
			s.lsqRing[s.lsqPos] = commit
			s.lsqPos = (s.lsqPos + 1) % len(s.lsqRing)
		}
		if commit > s.lastCycle {
			s.lastCycle = commit
		}

		// --- Control flow: train predictor, charge mispredictions ---
		if fetch > s.fetchFrontier {
			s.fetchFrontier = fetch
		}
		if info.IsControl {
			mispredicted := false
			switch {
			case isConditional(in.Op):
				predictedTaken := s.pred.PredictAndUpdate(info.Index, info.Taken)
				mispredicted = predictedTaken != info.Taken
			case in.Op == OpJal:
				if in.Rd == 31 {
					s.rasPush(info.Index + 1)
				}
			case in.Op == OpJalr:
				if in.Rs1 == 31 && in.Rd == 0 {
					mispredicted = s.rasPop() != info.NextPC
				} else {
					mispredicted = true
				}
			}
			if mispredicted {
				redirect := complete + uint64(cfg.MispredictPenalty)
				if redirect > s.fetchFrontier {
					s.fetchFrontier = redirect
				}
			}
		}

		if maxBusValues > 0 && len(s.regEvents) >= maxBusValues && len(s.memEvents) >= maxBusValues {
			break
		}
	}
	return s.collect(executed, maxBusValues)
}

func (s *ReferenceSimulator) setDestReady(in Instr, complete uint64) {
	switch destOf(in.Op) {
	case destInt:
		if in.Rd != 0 {
			s.intReady[in.Rd] = complete
		}
	case destFP:
		s.fpReady[in.Rd] = complete
	}
}

func (s *ReferenceSimulator) memoryLatency(info StepInfo) (int, bool) {
	cfg := s.cfg
	lat := cfg.L1Latency
	res := s.l1d.Access(info.Addr, info.IsStore)
	if res.Hit {
		return lat, false
	}
	lat += cfg.L2Latency
	l2res := s.l2.Access(info.Addr, false)
	if !l2res.Hit {
		lat += cfg.MemLatency
	}
	if res.Writeback {
		s.l2.Access(res.WritebackAddr, true)
	}
	return lat, true
}

func (s *ReferenceSimulator) acquireFU(class FUClass, from uint64) uint64 {
	units := s.fuFree[class]
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := from
	if units[best] > start {
		start = units[best]
	}
	units[best] = start + 1 // fully pipelined units
	return start
}

func (s *ReferenceSimulator) pruneSlots(frontier uint64) {
	s.pruneCountdown--
	if s.pruneCountdown > 0 {
		return
	}
	s.pruneCountdown = 16384
	cut := frontier
	if window := uint64(s.cfg.RUUSize) * 4; cut > window {
		cut -= window
	} else {
		cut = 0
	}
	for _, m := range []refSlotMap{s.issueSlots, s.commitSlots, s.fetchSlots} {
		for c := range m {
			if c < cut {
				delete(m, c)
			}
		}
	}
}

func (s *ReferenceSimulator) pruneStores(frontier uint64) {
	cut := frontier
	if cut > 512 {
		cut -= 512
	} else {
		cut = 0
	}
	for a, t := range s.storeComplete {
		if t < cut {
			delete(s.storeComplete, a)
		}
	}
}

func (s *ReferenceSimulator) collect(executed uint64, maxBusValues int) BusTraces {
	sortEvents := func(ev []refBusEvent) []uint64 {
		sort.Slice(ev, func(i, j int) bool {
			if ev[i].cycle != ev[j].cycle {
				return ev[i].cycle < ev[j].cycle
			}
			return ev[i].seq < ev[j].seq
		})
		out := make([]uint64, len(ev))
		for i, e := range ev {
			out[i] = uint64(e.value)
		}
		if maxBusValues > 0 && len(out) > maxBusValues {
			out = out[:maxBusValues]
		}
		return out
	}
	t := BusTraces{
		RegisterBus:    sortEvents(s.regEvents),
		MemoryBus:      sortEvents(s.memEvents),
		MemoryAddrBus:  sortEvents(s.addrEvents),
		Instructions:   executed,
		Cycles:         s.lastCycle,
		L1DMissRate:    s.l1d.MissRate(),
		L2MissRate:     s.l2.MissRate(),
		BranchAccuracy: s.pred.Accuracy(),
	}
	if t.Cycles > 0 {
		t.IPC = float64(t.Instructions) / float64(t.Cycles)
	}
	return t
}
