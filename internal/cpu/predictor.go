package cpu

// BimodalPredictor is SimpleScalar's default branch predictor: a table of
// 2-bit saturating counters indexed by instruction address. The timing
// model uses it to charge misprediction bubbles (the functional core has
// already resolved every branch).
type BimodalPredictor struct {
	counters []uint8
	mask     uint32

	// Statistics.
	Lookups uint64
	Hits    uint64
}

// NewBimodalPredictor builds a predictor with the given table size (a
// power of two; SimpleScalar's default is 2048).
func NewBimodalPredictor(entries int) *BimodalPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("cpu: predictor entries must be a positive power of two")
	}
	c := make([]uint8, entries)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &BimodalPredictor{counters: c, mask: uint32(entries - 1)}
}

// PredictAndUpdate returns the prediction for the branch at index and
// trains the counter with the actual outcome.
func (b *BimodalPredictor) PredictAndUpdate(index int32, taken bool) (predictedTaken bool) {
	i := uint32(index) & b.mask
	predictedTaken = b.counters[i] >= 2
	b.Lookups++
	if predictedTaken == taken {
		b.Hits++
	}
	if taken {
		if b.counters[i] < 3 {
			b.counters[i]++
		}
	} else if b.counters[i] > 0 {
		b.counters[i]--
	}
	return predictedTaken
}

// Accuracy returns the fraction of correct predictions.
func (b *BimodalPredictor) Accuracy() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Lookups)
}
