package cpu

import (
	"strings"
	"testing"
)

func TestRASPredictsReturns(t *testing.T) {
	// A call-heavy loop: with a working return-address stack the only
	// redirects are the loop branch; without it every ret would pay.
	src := `
		li r20, 500
	loop:
		call f
		call f
		addi r20, r20, -1
		bnez r20, loop
		halt
	f:
		addi r1, r1, 1
		ret
	`
	sim, err := NewSimulator(MustAssemble(src), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := sim.Run(100000, 0)
	if tr.Instructions < 3000 {
		t.Fatalf("too few instructions: %d", tr.Instructions)
	}
	// Compare against a variant where returns are unpredictable (indirect
	// jump through a non-RA register) — it must be slower per instruction.
	srcBad := strings.ReplaceAll(src, "ret", "jr r2")
	srcBad = strings.ReplaceAll(srcBad, "addi r1, r1, 1", "addi r1, r1, 1\n\t\tmv r2, r31")
	simBad, err := NewSimulator(MustAssemble(srcBad), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trBad := simBad.Run(100000, 0)
	cpiGood := float64(tr.Cycles) / float64(tr.Instructions)
	cpiBad := float64(trBad.Cycles) / float64(trBad.Instructions)
	if cpiBad <= cpiGood {
		t.Errorf("unpredicted indirect returns (CPI %.3f) should cost more than RAS-predicted rets (CPI %.3f)", cpiBad, cpiGood)
	}
}

func TestRASRing(t *testing.T) {
	s := &Simulator{}
	for i := int32(1); i <= 5; i++ {
		s.rasPush(i)
	}
	for want := int32(5); want >= 1; want-- {
		if got := s.rasPop(); got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
	// Deep nesting beyond the ring depth wraps without corrupting the
	// most recent entries.
	for i := int32(0); i < 40; i++ {
		s.rasPush(i)
	}
	if got := s.rasPop(); got != 39 {
		t.Errorf("after wrap, top = %d, want 39", got)
	}
}

// Every instruction's String() form must assemble back to the identical
// instruction — the disassembler and assembler are inverses.
func TestDisassemblyRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSub, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: OpMul, Rd: 7, Rs1: 8, Rs2: 9},
		{Op: OpDiv, Rd: 7, Rs1: 8, Rs2: 9},
		{Op: OpRem, Rd: 1, Rs1: 1, Rs2: 1},
		{Op: OpAnd, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpOr, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpXor, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpSll, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpSrl, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpSra, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpSlt, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpSltu, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -42},
		{Op: OpAndi, Rd: 1, Rs1: 2, Imm: 255},
		{Op: OpOri, Rd: 1, Rs1: 2, Imm: 4095},
		{Op: OpXori, Rd: 1, Rs1: 2, Imm: -1},
		{Op: OpSlli, Rd: 1, Rs1: 2, Imm: 5},
		{Op: OpSrli, Rd: 1, Rs1: 2, Imm: 31},
		{Op: OpSrai, Rd: 1, Rs1: 2, Imm: 16},
		{Op: OpSlti, Rd: 1, Rs1: 2, Imm: -7},
		{Op: OpLui, Rd: 1, Imm: 0x1234},
		{Op: OpLw, Rd: 3, Rs1: 4, Imm: 16},
		{Op: OpLh, Rd: 3, Rs1: 4, Imm: -2},
		{Op: OpLhu, Rd: 3, Rs1: 4, Imm: 2},
		{Op: OpLb, Rd: 3, Rs1: 4, Imm: 1},
		{Op: OpLbu, Rd: 3, Rs1: 4, Imm: 0},
		{Op: OpSw, Rs2: 3, Rs1: 4, Imm: 16},
		{Op: OpSh, Rs2: 3, Rs1: 4, Imm: -2},
		{Op: OpSb, Rs2: 3, Rs1: 4, Imm: 1},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 7},
		{Op: OpBne, Rs1: 1, Rs2: 2, Imm: 0},
		{Op: OpBlt, Rs1: 1, Rs2: 2, Imm: 3},
		{Op: OpBge, Rs1: 1, Rs2: 2, Imm: 3},
		{Op: OpBltu, Rs1: 1, Rs2: 2, Imm: 3},
		{Op: OpBgeu, Rs1: 1, Rs2: 2, Imm: 3},
		{Op: OpJal, Rd: 31, Imm: 12},
		{Op: OpJalr, Rd: 0, Rs1: 31, Imm: 0},
		{Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFsub, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFmul, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFdiv, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFmin, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFmax, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFneg, Rd: 1, Rs1: 2},
		{Op: OpFabs, Rd: 1, Rs1: 2},
		{Op: OpFmov, Rd: 1, Rs1: 2},
		{Op: OpFlw, Rd: 3, Rs1: 4, Imm: 8},
		{Op: OpFsw, Rs2: 3, Rs1: 4, Imm: 8},
		{Op: OpFcvtSW, Rd: 1, Rs1: 2},
		{Op: OpFcvtWS, Rd: 1, Rs1: 2},
		{Op: OpFeq, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFlt, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFle, Rd: 1, Rs1: 2, Rs2: 3},
	}
	for _, in := range cases {
		src := in.String()
		p, err := Assemble(src + "\nhalt")
		if err != nil {
			t.Errorf("%v (%q): %v", in.Op.Name(), src, err)
			continue
		}
		if got := p.Instrs[0]; got != in {
			t.Errorf("round trip %q: got %+v, want %+v", src, got, in)
		}
	}
	// The table above must cover every opcode.
	covered := map[Op]bool{}
	for _, in := range cases {
		covered[in.Op] = true
	}
	for op := Op(0); op < opCount; op++ {
		if !covered[op] {
			t.Errorf("opcode %s missing from the round-trip table", op.Name())
		}
	}
}

// The timing model must serialize a load behind the youngest earlier store
// to the same word (no memory speculation): a store-load chain is slower
// than the same operations on disjoint addresses.
func TestStoreLoadForwardingDelay(t *testing.T) {
	chain := `
		.data
		buf: .space 64
		.text
		la  r1, buf
		li  r20, 2000
	loop:
		sw  r20, 0(r1)
		lw  r2, 0(r1)       # must wait for the store
		add r3, r3, r2
		addi r20, r20, -1
		bnez r20, loop
		halt
	`
	disjoint := `
		.data
		buf: .space 64
		.text
		la  r1, buf
		li  r20, 2000
	loop:
		sw  r20, 0(r1)
		lw  r2, 8(r1)       # independent word
		add r3, r3, r2
		addi r20, r20, -1
		bnez r20, loop
		halt
	`
	run := func(src string) float64 {
		sim, err := NewSimulator(MustAssemble(src), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tr := sim.Run(100000, 0)
		return float64(tr.Cycles) / float64(tr.Instructions)
	}
	if cpiChain, cpiFree := run(chain), run(disjoint); cpiChain <= cpiFree {
		t.Errorf("store->load chain (CPI %.3f) should be slower than disjoint accesses (CPI %.3f)", cpiChain, cpiFree)
	}
}
