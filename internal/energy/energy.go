// Package energy performs the paper's §5 system-level analysis: it
// combines a transcoder's measured activity savings (internal/coding),
// the wire energy model (internal/wire) and the transcoder circuit energy
// model (internal/circuit) into energy budgets (Figure 26), total
// energy-vs-length curves (Figures 35-36) and break-even crossover lengths
// (Figures 37-38, Table 3).
//
// The governing arithmetic is linear in wire length: a trace's raw bus
// costs E_raw(L) = e_t·L·C_raw where C_raw is the Λ-weighted activity and
// e_t the per-transition-per-mm energy; the transcoded system costs
// E_coded(L) = e_t·L·C_coded + N_cycles·E_pair. The crossover is where the
// two meet:
//
//	L* = E_pair / (e_t · ΔC_per_cycle)
package energy

import (
	"fmt"
	"math"

	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/wire"
)

// Analysis evaluates one (trace, transcoder, technology) combination. The
// underlying meters store transitions and couplings separately, so the
// Λ-weighted costs are recomputed here with the technology's effective Λ
// — a single coding.Evaluate serves every technology.
type Analysis struct {
	// Tech is the process node under analysis.
	Tech wire.Technology
	// Res holds the transcoding result (meters + op counts).
	Res coding.Result
	// Design identifies the circuit whose energy pays for the savings.
	Design circuit.DesignKind
	// Entries is the dictionary size (for leakage scaling).
	Entries int

	lambda     float64 // effective Λ of the buffered wire
	pairPJ     float64 // encoder+decoder dynamic energy per cycle
	leakPJ     float64 // encoder+decoder leakage per cycle
	rawCycle   float64 // Λ-weighted raw activity per cycle
	codedCycle float64 // Λ-weighted coded activity per cycle
}

// NewAnalysis builds the analysis. The transcoder's per-cycle energy is
// derived from its actual operation counts via the §5.4.2 statistical
// model, plus twice the characterized leakage (encoder and decoder).
func NewAnalysis(tech wire.Technology, res coding.Result, design circuit.DesignKind, entries int) (Analysis, error) {
	if res.Raw == nil || res.Coded == nil {
		return Analysis{}, fmt.Errorf("energy: result carries no meters")
	}
	cycles := float64(res.Ops.Cycles)
	if cycles == 0 {
		return Analysis{}, fmt.Errorf("energy: transcoder reported no operation counts (scheme %s)", res.Scheme)
	}
	opE, err := circuit.OpEnergiesFor(tech)
	if err != nil {
		return Analysis{}, err
	}
	ch, err := circuit.Characterize(tech, design, entries)
	if err != nil {
		return Analysis{}, err
	}
	lambda := tech.EffectiveLambda(wire.Buffered)
	a := Analysis{
		Tech:       tech,
		Res:        res,
		Design:     design,
		Entries:    entries,
		lambda:     lambda,
		pairPJ:     opE.PairEnergyPJ(res.Ops) / cycles,
		leakPJ:     2 * ch.LeakagePJ,
		rawCycle:   res.Raw.Cost(lambda) / cycles,
		codedCycle: res.Coded.Cost(lambda) / cycles,
	}
	return a, nil
}

// PairEnergyPerCyclePJ returns the encoder+decoder dynamic+leakage energy
// per cycle.
func (a Analysis) PairEnergyPerCyclePJ() float64 { return a.pairPJ + a.leakPJ }

// WithDutyCycle charges the transcoder for the machine cycles in which the
// bus carried no beat: clocks and leakage run continuously even when the
// bus idles. This is the effect behind the paper's §5.4.3 memory-bus
// result — a bus with few beats per cycle amortizes its transcoder poorly.
// Beat counts at or above the cycle count leave the analysis unchanged.
func (a Analysis) WithDutyCycle(busBeats, machineCycles uint64) Analysis {
	if busBeats == 0 || machineCycles <= busBeats {
		return a
	}
	idle := float64(machineCycles) / float64(busBeats)
	// Dynamic energy on idle cycles is clock/control only (~the PerCycle
	// share); charge half the active-cycle dynamic energy per idle cycle,
	// and leakage in full.
	a.pairPJ += 0.5 * a.pairPJ * (idle - 1)
	a.leakPJ *= idle
	return a
}

// RawWirePJPerCycle returns the un-encoded bus's wire energy per cycle at
// the given length.
func (a Analysis) RawWirePJPerCycle(lengthMM float64) float64 {
	return a.Tech.WeightedCostEnergyPJ(wire.Buffered, lengthMM, a.rawCycle)
}

// CodedWirePJPerCycle returns the coded bus's wire energy per cycle.
func (a Analysis) CodedWirePJPerCycle(lengthMM float64) float64 {
	return a.Tech.WeightedCostEnergyPJ(wire.Buffered, lengthMM, a.codedCycle)
}

// TotalPJPerCycle returns coded wire energy plus transcoder energy.
func (a Analysis) TotalPJPerCycle(lengthMM float64) float64 {
	return a.CodedWirePJPerCycle(lengthMM) + a.PairEnergyPerCyclePJ()
}

// NormalizedTotal returns total transcoded energy over raw wire energy —
// the y-axis of Figures 35/36. Values below 1 mean the transcoder saves
// energy at that length. Returns +Inf for traces with no raw activity.
func (a Analysis) NormalizedTotal(lengthMM float64) float64 {
	raw := a.RawWirePJPerCycle(lengthMM)
	if raw == 0 {
		return math.Inf(1)
	}
	return a.TotalPJPerCycle(lengthMM) / raw
}

// SavedPerCyclePJ returns the wire energy removed per cycle at the given
// length — the transcoder's energy budget (Figure 26): any implementation
// cheaper than this saves net energy.
func (a Analysis) SavedPerCyclePJ(lengthMM float64) float64 {
	return a.RawWirePJPerCycle(lengthMM) - a.CodedWirePJPerCycle(lengthMM)
}

// CrossoverMM returns the break-even wire length: beyond it the
// transcoder+wire system consumes less than the bare wire. It returns
// +Inf when the coding never pays (no activity removed).
func (a Analysis) CrossoverMM() float64 {
	delta := a.rawCycle - a.codedCycle
	if delta <= 0 {
		return math.Inf(1)
	}
	perMM := a.Tech.WeightedCostEnergyPJ(wire.Buffered, 1, delta)
	return a.PairEnergyPerCyclePJ() / perMM
}

// EnergyRemovedFraction returns the fraction of Λ-weighted wire activity
// removed, at this technology's effective Λ.
func (a Analysis) EnergyRemovedFraction() float64 {
	if a.rawCycle == 0 {
		return 0
	}
	return 1 - a.codedCycle/a.rawCycle
}

// TimingErrorRate models the probability that a bus cycle misses timing
// at relative supply voltage s (1.0 = nominal). Below nominal the error
// rate climbs exponentially toward certainty near the circuit's minimum
// operating point (~0.45·Vdd), the characteristic wall measured for
// Razor-style designs (PAPERS.md #4). At or above nominal it is zero.
func TimingErrorRate(s float64) float64 {
	if s >= 1 {
		return 0
	}
	r := math.Pow(10, -15*(s-0.45))
	if r > 1 {
		return 1
	}
	return r
}

// WithVoltageScale rescales the coded side of the analysis for a bus
// driven at relative supply voltage s — the DVS trade of PAPERS.md #4:
// spend coding headroom on a lower rail instead of fewer transitions.
// Dynamic energy scales as s²; timing errors at the reduced rail force
// retransmits that replay a fraction of cycles; the per-cycle
// error-detection machinery costs ecPJPerCycle, itself on the scaled
// rail; leakage falls roughly linearly with Vdd. The raw reference bus
// stays at nominal voltage — that asymmetry is exactly the comparison
// the crossover verdict makes. Out-of-range s (≤0 or >1) is a no-op.
func (a Analysis) WithVoltageScale(s, ecPJPerCycle float64) Analysis {
	if s <= 0 || s > 1 {
		return a
	}
	f := s * s * (1 + TimingErrorRate(s))
	a.codedCycle *= f
	a.pairPJ = a.pairPJ*f + ecPJPerCycle*s*s
	a.leakPJ *= s
	return a
}

// Budget is a standalone helper for Figure 26: the per-cycle energy
// budget of a transcoding result at one technology and wire length,
// without requiring a circuit design.
func Budget(tech wire.Technology, res coding.Result, lengthMM float64) float64 {
	lambda := tech.EffectiveLambda(wire.Buffered)
	cycles := float64(res.Raw.Cycles())
	if cycles <= 1 {
		return 0
	}
	delta := (res.Raw.Cost(lambda) - res.Coded.Cost(lambda)) / (cycles - 1)
	return tech.WeightedCostEnergyPJ(wire.Buffered, lengthMM, delta)
}
