package energy

import (
	"math"
	"testing"

	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/stats"
	"buspower/internal/wire"
)

// hotTrace builds traffic a window transcoder saves heavily on.
func hotTrace(n int) []uint64 {
	rng := stats.NewRNG(99)
	hot := make([]uint64, 6)
	for i := range hot {
		hot[i] = rng.Uint64() & 0xFFFFFFFF
	}
	out := make([]uint64, n)
	for i := range out {
		if rng.Intn(10) == 0 {
			out[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			out[i] = hot[rng.Intn(len(hot))]
		}
	}
	return out
}

func windowResult(t *testing.T, trace []uint64, entries int) coding.Result {
	t.Helper()
	win, err := coding.NewWindow(32, entries, 1)
	if err != nil {
		t.Fatal(err)
	}
	return coding.MustEvaluate(win, trace, 1)
}

func TestAnalysisBasics(t *testing.T) {
	res := windowResult(t, hotTrace(20000), 8)
	a, err := NewAnalysis(wire.Tech130, res, circuit.WindowDesign, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.PairEnergyPerCyclePJ() <= 0 {
		t.Error("pair energy must be positive")
	}
	if a.EnergyRemovedFraction() < 0.3 {
		t.Errorf("hot-set savings fraction %v too low", a.EnergyRemovedFraction())
	}
	// Wire energies are linear in length.
	if r10, r20 := a.RawWirePJPerCycle(10), a.RawWirePJPerCycle(20); math.Abs(r20-2*r10) > 1e-12 {
		t.Error("raw wire energy not linear in length")
	}
	// At zero length the transcoder can only lose.
	if a.NormalizedTotal(0.001) < 1 {
		t.Error("transcoder should lose at negligible wire length")
	}
}

func TestCrossoverIsBreakEven(t *testing.T) {
	res := windowResult(t, hotTrace(20000), 8)
	for _, tech := range wire.Technologies() {
		a, err := NewAnalysis(tech, res, circuit.WindowDesign, 8)
		if err != nil {
			t.Fatal(err)
		}
		l := a.CrossoverMM()
		if math.IsInf(l, 1) {
			t.Fatalf("%s: expected finite crossover", tech.Name)
		}
		if l <= 0 || l > 100 {
			t.Fatalf("%s: implausible crossover %v mm", tech.Name, l)
		}
		// NormalizedTotal must equal 1 at the crossover (within fp error)
		// and be below 1 beyond it.
		if nt := a.NormalizedTotal(l); math.Abs(nt-1) > 1e-9 {
			t.Errorf("%s: normalized total at crossover = %v", tech.Name, nt)
		}
		if a.NormalizedTotal(l*2) >= 1 {
			t.Errorf("%s: no savings beyond crossover", tech.Name)
		}
		if a.NormalizedTotal(l/2) <= 1 {
			t.Errorf("%s: savings below crossover", tech.Name)
		}
	}
}

func TestCrossoverShrinksWithTechnology(t *testing.T) {
	// The paper's scaling claim (Table 3): smaller technology nodes break
	// even at shorter wire lengths.
	res := windowResult(t, hotTrace(20000), 8)
	get := func(tech wire.Technology) float64 {
		a, err := NewAnalysis(tech, res, circuit.WindowDesign, 8)
		if err != nil {
			t.Fatal(err)
		}
		return a.CrossoverMM()
	}
	l130, l100, l070 := get(wire.Tech130), get(wire.Tech100), get(wire.Tech070)
	if !(l130 > l100 && l100 > l070) {
		t.Errorf("crossovers do not shrink: %.2f, %.2f, %.2f", l130, l100, l070)
	}
}

func TestNoCrossoverWhenCodingHurts(t *testing.T) {
	// Pure random traffic through a small window coder adds activity;
	// there must be no break-even length.
	rng := stats.NewRNG(5)
	trace := make([]uint64, 10000)
	for i := range trace {
		trace[i] = rng.Uint64() & 0xFFFFFFFF
	}
	res := windowResult(t, trace, 4)
	a, err := NewAnalysis(wire.Tech130, res, circuit.WindowDesign, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyRemovedFraction() > 0.05 {
		t.Skipf("random traffic unexpectedly compressible (%v); skip", a.EnergyRemovedFraction())
	}
	if !math.IsInf(a.CrossoverMM(), 1) && a.CrossoverMM() < 100 {
		t.Errorf("expected no practical crossover on random traffic, got %v mm", a.CrossoverMM())
	}
}

func TestBudgetGrowsWithLength(t *testing.T) {
	res := windowResult(t, hotTrace(20000), 8)
	b5 := Budget(wire.Tech130, res, 5)
	b10 := Budget(wire.Tech130, res, 10)
	b15 := Budget(wire.Tech130, res, 15)
	if !(b5 < b10 && b10 < b15) {
		t.Errorf("budget not increasing with length: %v %v %v", b5, b10, b15)
	}
	if b5 <= 0 {
		t.Error("budget must be positive for a saving coder")
	}
}

func TestBudgetMatchesAnalysisSaved(t *testing.T) {
	res := windowResult(t, hotTrace(20000), 8)
	a, err := NewAnalysis(wire.Tech130, res, circuit.WindowDesign, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Budget uses (cycles-1) from the meter, Analysis uses ops cycles;
	// they differ by the initial meter seed, so compare loosely.
	if diff := math.Abs(Budget(wire.Tech130, res, 10)-a.SavedPerCyclePJ(10)) / a.SavedPerCyclePJ(10); diff > 0.01 {
		t.Errorf("budget and analysis disagree by %v", diff)
	}
}

func TestAnalysisRejectsMissingOps(t *testing.T) {
	// The raw transcoder reports no ops; analysis must refuse rather than
	// divide by zero.
	raw := coding.NewRaw(32)
	res := coding.MustEvaluate(raw, hotTrace(100), 1)
	if _, err := NewAnalysis(wire.Tech130, res, circuit.WindowDesign, 8); err == nil {
		t.Error("expected error for a result without op counts")
	}
}

func TestAnalysisRejectsUnknownTech(t *testing.T) {
	res := windowResult(t, hotTrace(1000), 8)
	bogus := wire.Technology{Name: "45nm", FeatureNM: 45}
	if _, err := NewAnalysis(bogus, res, circuit.WindowDesign, 8); err == nil {
		t.Error("expected error for uncharacterized technology")
	}
}

func TestBiggerDictionarySavesMoreButCostsMore(t *testing.T) {
	trace := hotTrace(20000)
	res8 := windowResult(t, trace, 8)
	res16 := windowResult(t, trace, 16)
	a8, _ := NewAnalysis(wire.Tech130, res8, circuit.WindowDesign, 8)
	a16, _ := NewAnalysis(wire.Tech130, res16, circuit.WindowDesign, 16)
	if a16.PairEnergyPerCyclePJ() <= a8.PairEnergyPerCyclePJ() {
		t.Error("16-entry transcoder should cost more per cycle")
	}
	if a16.EnergyRemovedFraction() < a8.EnergyRemovedFraction()-1e-9 {
		t.Error("16-entry transcoder should not remove less activity on hot-set traffic")
	}
}

func TestWithDutyCycle(t *testing.T) {
	res := windowResult(t, hotTrace(20000), 8)
	a, err := NewAnalysis(wire.Tech130, res, circuit.WindowDesign, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := a.PairEnergyPerCyclePJ()
	// A bus idle half the time pays idle clock/leakage: energy per beat
	// grows, so crossovers stretch.
	busy := a.WithDutyCycle(1000, 1000)
	if busy.PairEnergyPerCyclePJ() != base {
		t.Error("full-duty bus must be unchanged")
	}
	idle := a.WithDutyCycle(1000, 4000)
	if idle.PairEnergyPerCyclePJ() <= base {
		t.Error("idle cycles must add transcoder energy per beat")
	}
	if idle.CrossoverMM() <= a.CrossoverMM() {
		t.Error("idle bus must break even later")
	}
	// Degenerate inputs leave the analysis unchanged.
	if z := a.WithDutyCycle(0, 100); z.PairEnergyPerCyclePJ() != base {
		t.Error("zero beats must be a no-op")
	}
	if m := a.WithDutyCycle(500, 100); m.PairEnergyPerCyclePJ() != base {
		t.Error("more beats than cycles must be a no-op")
	}
	// The original analysis is unmodified (value semantics).
	if a.PairEnergyPerCyclePJ() != base {
		t.Error("WithDutyCycle mutated its receiver")
	}
}
