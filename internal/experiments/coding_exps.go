package experiments

import (
	"fmt"

	"buspower/internal/bus"
	"buspower/internal/coding"
	"buspower/internal/workload"
)

// busWidth is the data width of the paper's studied buses.
const busWidth = 32

// evalLambda is the coupling ratio assumed in §4.4's coding-effectiveness
// studies ("unless otherwise noted, Λ = 1").
const evalLambda = 1.0

// randomSeed feeds the uniformly random comparison trace.
const randomSeed = 20031294 // the report number

func init() {
	register(Runner{ID: "fig15", Title: "Inversion coder: normalized energy remaining vs actual Λ (Figure 15)", Run: runFig15})
	register(Runner{ID: "fig16", Title: "Strided predictor: normalized energy removed vs strides, memory bus (Figure 16)", Run: strideSweep("fig16", "mem")})
	register(Runner{ID: "fig17", Title: "Strided predictor: normalized energy removed vs strides, register bus (Figure 17)", Run: strideSweep("fig17", "reg")})
	register(Runner{ID: "fig18", Title: "Window transcoder: energy removed vs shift register size, memory bus (Figure 18)", Run: windowSweep("fig18", "mem")})
	register(Runner{ID: "fig19", Title: "Window transcoder: energy removed vs shift register size, register bus (Figure 19)", Run: windowSweep("fig19", "reg")})
	register(Runner{ID: "fig20", Title: "Context transcoder (transition-based): energy removed vs table size, memory bus (Figure 20)", Run: contextSweep("fig20", "mem", true)})
	register(Runner{ID: "fig21", Title: "Context transcoder (transition-based): energy removed vs table size, register bus (Figure 21)", Run: contextSweep("fig21", "reg", true)})
	register(Runner{ID: "fig22", Title: "Context transcoder (value-based): energy removed vs table size, memory bus (Figure 22)", Run: contextSweep("fig22", "mem", false)})
	register(Runner{ID: "fig23", Title: "Context transcoder (value-based): energy removed vs table size, register bus (Figure 23)", Run: contextSweep("fig23", "reg", false)})
	register(Runner{ID: "fig24", Title: "Context transcoder: energy removed vs shift register size, tables of 16 and 64 (Figure 24)", Run: runFig24})
	register(Runner{ID: "fig25", Title: "Context transcoder: energy removed vs counter divide period, tables of 16 and 64 (Figure 25)", Run: runFig25})
}

// sweepRows runs a builder over every workload (plus the random source)
// and a parameter axis, emitting one row per (source, parameter). Sources
// are evaluated concurrently when the engine is attached; row order is
// the serial traversal's regardless. Each source's parameter family goes
// through the grid engine in one pass, so e.g. a stride sweep encodes the
// trace once for all bank depths instead of once per depth.
func sweepRows(t *Table, busName string, cfg Config, params []int, includeRandom bool,
	build func(param int) (coding.Transcoder, error)) error {
	sources := workload.Names()
	if includeRandom {
		sources = append([]string{"random"}, sources...)
	}
	n := cfg.Run.MaxBusValues
	if n <= 0 {
		n = 100_000
	}
	return gatherRows(t, cfg, len(sources), func(i int, out *Table) error {
		src := sources[i]
		var tr []uint64
		var raw *bus.Meter
		var id traceID
		var err error
		if src == "random" {
			tr = randomTraceFor(n)
			raw = randomRawMeter(n)
			id = randomTraceID(n)
		} else {
			tr, err = busTrace(src, busName, cfg)
			if err != nil {
				return err
			}
			raw, err = rawMeterFor(src, busName, cfg)
			if err != nil {
				return err
			}
			id = workloadTraceID(src, busName, cfg)
		}
		points := make([]gridPoint, len(params))
		for k, p := range params {
			tc, err := build(p)
			if err != nil {
				return err
			}
			points[k] = gridPoint{tc: tc, lambda: evalLambda}
		}
		results, err := evalGridPoints(points, id, tr, raw, cfg)
		if err != nil {
			return err
		}
		for k, p := range params {
			out.AddRow(src, p, 100*results[k].EnergyRemoved())
		}
		return nil
	})
}

func strideSweep(id, bus string) func(Config) (*Table, error) {
	return func(cfg Config) (*Table, error) {
		params := []int{1, 2, 3, 4, 5, 8, 10, 15, 20, 25, 30}
		if cfg.Quick {
			params = []int{2, 5, 15, 30}
		}
		t := &Table{
			ID:      id,
			Title:   "Normalized energy removed by the strided predictor (" + bus + " bus)",
			Columns: []string{"benchmark", "strides", "energy_removed_pct"},
		}
		err := sweepRows(t, bus, cfg, params, true, func(p int) (coding.Transcoder, error) {
			return coding.NewStride(busWidth, p, evalLambda)
		})
		return t, err
	}
}

func windowSweep(id, bus string) func(Config) (*Table, error) {
	return func(cfg Config) (*Table, error) {
		params := []int{2, 4, 8, 12, 16, 24, 32, 48, 64}
		if cfg.Quick {
			params = []int{4, 8, 32}
		}
		t := &Table{
			ID:      id,
			Title:   "Normalized energy removed by the window-based transcoder (" + bus + " bus)",
			Columns: []string{"benchmark", "shift_register_size", "energy_removed_pct"},
		}
		err := sweepRows(t, bus, cfg, params, false, func(p int) (coding.Transcoder, error) {
			return coding.NewWindow(busWidth, p, evalLambda)
		})
		return t, err
	}
}

func contextSweep(id, bus string, transitionBased bool) func(Config) (*Table, error) {
	return func(cfg Config) (*Table, error) {
		params := []int{4, 8, 16, 24, 32, 48, 64}
		if cfg.Quick {
			params = []int{8, 32}
		}
		t := &Table{
			ID:      id,
			Title:   fmt.Sprintf("Normalized energy removed by the context-based transcoder (%s bus, shift register size 8)", bus),
			Columns: []string{"benchmark", "table_size", "energy_removed_pct"},
		}
		err := sweepRows(t, bus, cfg, params, true, func(p int) (coding.Transcoder, error) {
			return coding.NewContext(coding.ContextConfig{
				Width: busWidth, TableSize: p, ShiftEntries: 8,
				DividePeriod: 4096, TransitionBased: transitionBased, Lambda: evalLambda,
			})
		})
		return t, err
	}
}

// fig24Benchmarks mirror the paper's Figure 24/25 legend.
var fig24Benchmarks = []string{"li", "compress", "gcc", "perl", "fpppp", "apsi", "swim"}

func runFig24(cfg Config) (*Table, error) {
	srSizes := []int{2, 4, 8, 12, 16, 24, 32}
	if cfg.Quick {
		srSizes = []int{4, 8, 16}
	}
	t := &Table{
		ID:      "fig24",
		Title:   "Energy removed vs shift register size on the register bus (value-based, tables of 16 and 64)",
		Columns: []string{"benchmark", "table_size", "shift_register_size", "energy_removed_pct"},
	}
	err := gatherRows(t, cfg, len(fig24Benchmarks), func(i int, out *Table) error {
		name := fig24Benchmarks[i]
		tr, err := busTrace(name, "reg", cfg)
		if err != nil {
			return err
		}
		raw, err := rawMeterFor(name, "reg", cfg)
		if err != nil {
			return err
		}
		var points []gridPoint
		for _, tbl := range []int{16, 64} {
			for _, sr := range srSizes {
				ctx, err := coding.NewContext(coding.ContextConfig{
					Width: busWidth, TableSize: tbl, ShiftEntries: sr,
					DividePeriod: 4096, Lambda: evalLambda,
				})
				if err != nil {
					return err
				}
				points = append(points, gridPoint{tc: ctx, lambda: evalLambda})
			}
		}
		results, err := evalGridPoints(points, workloadTraceID(name, "reg", cfg), tr, raw, cfg)
		if err != nil {
			return err
		}
		k := 0
		for _, tbl := range []int{16, 64} {
			for _, sr := range srSizes {
				out.AddRow(name, tbl, sr, 100*results[k].EnergyRemoved())
				k++
			}
		}
		return nil
	})
	return t, err
}

func runFig25(cfg Config) (*Table, error) {
	periods := []int{4, 16, 64, 256, 1024, 4096, 16384}
	if cfg.Quick {
		periods = []int{16, 1024, 16384}
	}
	t := &Table{
		ID:      "fig25",
		Title:   "Energy removed vs counter divide period on the register bus (value-based, shift register size 8)",
		Columns: []string{"benchmark", "table_size", "divide_period", "energy_removed_pct"},
	}
	err := gatherRows(t, cfg, len(fig24Benchmarks), func(i int, out *Table) error {
		name := fig24Benchmarks[i]
		tr, err := busTrace(name, "reg", cfg)
		if err != nil {
			return err
		}
		raw, err := rawMeterFor(name, "reg", cfg)
		if err != nil {
			return err
		}
		var points []gridPoint
		for _, tbl := range []int{16, 64} {
			for _, period := range periods {
				ctx, err := coding.NewContext(coding.ContextConfig{
					Width: busWidth, TableSize: tbl, ShiftEntries: 8,
					DividePeriod: period, Lambda: evalLambda,
				})
				if err != nil {
					return err
				}
				points = append(points, gridPoint{tc: ctx, lambda: evalLambda})
			}
		}
		results, err := evalGridPoints(points, workloadTraceID(name, "reg", cfg), tr, raw, cfg)
		if err != nil {
			return err
		}
		k := 0
		for _, tbl := range []int{16, 64} {
			for _, period := range periods {
				out.AddRow(name, tbl, period, 100*results[k].EnergyRemoved())
				k++
			}
		}
		return nil
	})
	return t, err
}

func runFig15(cfg Config) (*Table, error) {
	lambdas := []float64{0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100}
	if cfg.Quick {
		lambdas = []float64{0.1, 1, 10, 100}
	}
	t := &Table{
		ID:      "fig15",
		Title:   "Inversion coder: normalized energy remaining (%) vs actual wire Λ for cost functions assuming Λ=0, Λ=1 and the true Λ",
		Columns: []string{"source", "cost_function", "actual_lambda", "energy_remaining_pct"},
	}
	pats, err := coding.DefaultInversionPatterns(busWidth, 4)
	if err != nil {
		return nil, err
	}
	// Sources: benchmark-average register bus, benchmark-average memory
	// bus, and uniformly random traffic.
	type source struct {
		name string
		bus  string
	}
	sources := []source{{"register bus average", "reg"}, {"memory bus average", "mem"}, {"random", ""}}
	n := cfg.Run.MaxBusValues
	if n <= 0 {
		n = 100_000
	}
	err = gatherRows(t, cfg, len(sources), func(i int, out *Table) error {
		src := sources[i]
		var traces [][]uint64
		var raws []*bus.Meter
		var ids []traceID
		if src.bus == "" {
			traces = [][]uint64{randomTraceFor(n)}
			raws = []*bus.Meter{randomRawMeter(n)}
			ids = []traceID{randomTraceID(n)}
		} else {
			for _, b := range fig7Benchmarks {
				tr, err := busTrace(b, src.bus, cfg)
				if err != nil {
					return err
				}
				raw, err := rawMeterFor(b, src.bus, cfg)
				if err != nil {
					return err
				}
				traces = append(traces, tr)
				raws = append(raws, raw)
				ids = append(ids, workloadTraceID(b, src.bus, cfg))
			}
		}
		variants := []struct {
			label   string
			assumed func(actual float64) float64
		}{
			{"lambda0", func(float64) float64 { return 0 }},
			{"lambda1", func(float64) float64 { return 1 }},
			{"lambdaN", func(actual float64) float64 { return actual }},
		}
		// One grid family per trace covering every (cost function, actual Λ)
		// point: the λ0 and λ1 variants are each a single encoder config read
		// at all actual Λs, so the grid encodes each trace once per config
		// instead of once per (variant, Λ) pair.
		var points []gridPoint
		for _, variant := range variants {
			for _, actual := range lambdas {
				inv, err := coding.NewInversion(busWidth, pats, variant.assumed(actual))
				if err != nil {
					return err
				}
				points = append(points, gridPoint{tc: inv, lambda: actual})
			}
		}
		// The benchmark suite streams through one shared transcoder
		// scratch (coding.EvaluateBatch): each unique inversion config
		// still encodes every trace, but construction, meter setup and
		// grid bookkeeping are pinned once for the suite.
		inputs := make([]batchTraceInput, len(traces))
		for j, tr := range traces {
			inputs[j] = batchTraceInput{id: ids[j], tr: tr, raw: raws[j]}
		}
		perTrace, err := evalGridPointsMulti(points, inputs, cfg)
		if err != nil {
			return err
		}
		k := 0
		for _, variant := range variants {
			for _, actual := range lambdas {
				sum := 0.0
				for j := range traces {
					sum += 100 * perTrace[j][k].EnergyRemaining()
				}
				out.AddRow(src.name, variant.label, actual, sum/float64(len(traces)))
				k++
			}
		}
		return nil
	})
	return t, err
}
