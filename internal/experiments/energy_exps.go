package experiments

import (
	"fmt"
	"math"

	"buspower/internal/bus"
	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/energy"
	"buspower/internal/stats"
	"buspower/internal/wire"
	"buspower/internal/workload"
)

func init() {
	register(Runner{ID: "fig26", Title: "Transcoder energy budget vs total entries for window and context designs (Figure 26)", Run: runFig26})
	register(Runner{ID: "table2", Title: "Transcoder circuit characteristics per technology (Table 2)", Run: runTable2})
	register(Runner{ID: "fig35", Title: "Window transcoder total energy vs bus length, register bus (Figure 35)", Run: totalEnergySweep("fig35", "reg")})
	register(Runner{ID: "fig36", Title: "Window transcoder total energy vs bus length, memory bus (Figure 36)", Run: totalEnergySweep("fig36", "mem")})
	register(Runner{ID: "fig37", Title: "Crossover trend on the register bus across technologies and sizes (Figure 37)", Run: crossoverTrend("fig37", "reg")})
	register(Runner{ID: "fig38", Title: "Crossover trend on the memory bus across technologies and sizes (Figure 38)", Run: crossoverTrend("fig38", "mem")})
	register(Runner{ID: "table3", Title: "Median crossover lengths for the window-based design (Table 3)", Run: runTable3})
}

// windowResultFor returns the memoized evaluation of a window transcoder
// on one workload bus. The energy figures previously kept a private memo
// for these; they now share the package-wide result memo with every other
// runner, and a hit skips even the trace-cache lookup.
func windowResultFor(name, busName string, entries int, cfg Config) (coding.Result, error) {
	win, err := coding.NewWindow(busWidth, entries, evalLambda)
	if err != nil {
		return coding.Result{}, err
	}
	var ev coding.Evaluator
	return evalResultKeyed(&ev, win, workloadTraceID(name, busName, cfg), evalLambda, cfg,
		func() ([]uint64, *bus.Meter, error) {
			tr, err := busTrace(name, busName, cfg)
			if err != nil {
				return nil, nil, err
			}
			raw, err := rawMeterFor(name, busName, cfg)
			if err != nil {
				return nil, nil, err
			}
			return tr, raw, nil
		})
}

func runFig26(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig26",
		Title:   "Per-cycle energy budget vs total value entries at 5/10/15mm (0.13um, register bus average)",
		Columns: []string{"design", "length_mm", "total_entries", "budget_pj_per_cycle"},
	}
	names := workload.Names()
	if cfg.Quick {
		names = names[:4]
	}
	lengths := []float64{5, 10, 15}
	windowSizes := []int{2, 4, 8, 16, 32, 64}
	contextTables := []int{4, 8, 16, 24, 32, 56} // +8 shift register entries
	if cfg.Quick {
		windowSizes = []int{4, 16}
		contextTables = []int{8, 24}
	}
	avgBudget := func(build func() (coding.Transcoder, error), length float64) (float64, error) {
		tc, err := build()
		if err != nil {
			return 0, err
		}
		var ev coding.Evaluator
		sum := 0.0
		for _, name := range names {
			tr, err := busTrace(name, "reg", cfg)
			if err != nil {
				return 0, err
			}
			raw, err := rawMeterFor(name, "reg", cfg)
			if err != nil {
				return 0, err
			}
			res, err := evalResult(&ev, tc, workloadTraceID(name, "reg", cfg), tr, evalLambda, raw, cfg)
			if err != nil {
				return 0, err
			}
			sum += energy.Budget(wire.Tech130, res, length)
		}
		return sum / float64(len(names)), nil
	}
	type spec struct {
		design  string
		length  float64
		entries int
		build   func() (coding.Transcoder, error)
	}
	var specs []spec
	for _, l := range lengths {
		for _, n := range windowSizes {
			n := n
			specs = append(specs, spec{"window", l, n, func() (coding.Transcoder, error) {
				return coding.NewWindow(busWidth, n, evalLambda)
			}})
		}
		for _, tbl := range contextTables {
			tbl := tbl
			specs = append(specs, spec{"context", l, tbl + 8, func() (coding.Transcoder, error) {
				return coding.NewContext(coding.ContextConfig{
					Width: busWidth, TableSize: tbl, ShiftEntries: 8,
					DividePeriod: 4096, Lambda: evalLambda,
				})
			}})
		}
	}
	err := gatherRows(t, cfg, len(specs), func(i int, out *Table) error {
		s := specs[i]
		b, err := avgBudget(s.build, s.length)
		if err != nil {
			return err
		}
		out.AddRow(s.design, s.length, s.entries, b)
		return nil
	})
	return t, err
}

func runTable2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "Transcoder characteristics: area, op energy, leakage, delay, cycle time",
		Columns: []string{"design", "technology", "voltage_v", "area_um2",
			"op_energy_pj", "measured_encoder_pj_per_cycle", "leakage_pj", "delay_ns", "cycle_time_ns"},
	}
	// Measured column: the statistical model's average encoder energy over
	// the SPECint register traces (the methodology of Figure 34).
	names := []string{"gcc", "compress", "li", "perl"}
	if cfg.Quick {
		names = names[:2]
	}
	measure := func(tech wire.Technology) (float64, error) {
		opE, err := circuit.OpEnergiesFor(tech)
		if err != nil {
			return 0, err
		}
		sum := 0.0
		for _, name := range names {
			res, err := windowResultFor(name, "reg", 8, cfg)
			if err != nil {
				return 0, err
			}
			sum += opE.EncoderEnergyPJ(res.Ops) / float64(res.Ops.Cycles)
		}
		return sum / float64(len(names)), nil
	}
	for _, tech := range wire.Technologies() {
		ch, err := circuit.Characterize(tech, circuit.WindowDesign, 8)
		if err != nil {
			return nil, err
		}
		m, err := measure(tech)
		if err != nil {
			return nil, err
		}
		t.AddRow("window-8", tech.Name, ch.VoltageV, ch.AreaUM2, ch.OpEnergyPJ, m, ch.LeakagePJ, ch.DelayNS, ch.CycleTimeNS)
	}
	inv, err := circuit.Characterize(wire.Tech130, circuit.InversionDesign, 0)
	if err != nil {
		return nil, err
	}
	t.AddRow("inversion", wire.Tech130.Name, inv.VoltageV, inv.AreaUM2, inv.OpEnergyPJ, inv.OpEnergyPJ, inv.LeakagePJ, inv.DelayNS, inv.CycleTimeNS)
	return t, nil
}

// analysisFor builds the energy analysis for one (workload, bus, entries,
// tech), applying the duty-cycle correction on the memory bus: its
// transcoder clocks every machine cycle but sees a beat only on misses and
// stores (§5.4.3).
func analysisFor(tech wire.Technology, name, bus string, entries int, cfg Config) (energy.Analysis, error) {
	res, err := windowResultFor(name, bus, entries, cfg)
	if err != nil {
		return energy.Analysis{}, err
	}
	a, err := energy.NewAnalysis(tech, res, circuit.WindowDesign, entries)
	if err != nil {
		return energy.Analysis{}, err
	}
	if bus == "mem" {
		ts, err := workload.Traces(name, cfg.Run)
		if err != nil {
			return energy.Analysis{}, err
		}
		a = a.WithDutyCycle(uint64(len(ts.Mem)), ts.Summary.Cycles)
	}
	return a, nil
}

func totalEnergySweep(id, bus string) func(Config) (*Table, error) {
	return func(cfg Config) (*Table, error) {
		t := &Table{
			ID:      id,
			Title:   "Total transcoder+wire energy normalized to the un-encoded bus vs wire length (window-8, 0.13um, " + bus + " bus)",
			Columns: []string{"benchmark", "length_mm", "normalized_total"},
		}
		step := 2.0
		if cfg.Quick {
			step = 10.0
		}
		names := workload.Names()
		if cfg.Quick {
			names = names[:4]
		}
		err := gatherRows(t, cfg, len(names), func(i int, out *Table) error {
			name := names[i]
			a, err := analysisFor(wire.Tech130, name, bus, 8, cfg)
			if err != nil {
				return err
			}
			for l := 1.0; l <= 30+1e-9; l += step {
				out.AddRow(name, l, a.NormalizedTotal(l))
			}
			return nil
		})
		return t, err
	}
}

// suiteNames maps the Table 3 grouping to workload name lists.
func suiteNames(which string) []string {
	switch which {
	case "SPECint":
		return namesOf(workload.BySuite(workload.SPECint))
	case "SPECfp":
		return namesOf(workload.BySuite(workload.SPECfp))
	default:
		return workload.Names()
	}
}

func namesOf(ws []workload.Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

func crossoverTrend(id, bus string) func(Config) (*Table, error) {
	return func(cfg Config) (*Table, error) {
		t := &Table{
			ID:      id,
			Title:   "Median normalized total energy vs wire length per technology and transcoder size (" + bus + " bus)",
			Columns: []string{"technology", "entries", "suite", "length_mm", "median_normalized_total"},
		}
		step := 3.0
		if cfg.Quick {
			step = 15.0
		}
		units := techEntrySuiteUnits([]int{8, 16}, []string{"SPECint", "SPECfp"})
		err := gatherRows(t, cfg, len(units), func(i int, out *Table) error {
			u := units[i]
			names := suiteNames(u.suite)
			if cfg.Quick {
				names = names[:2]
			}
			var analyses []energy.Analysis
			for _, name := range names {
				a, err := analysisFor(u.tech, name, bus, u.entries, cfg)
				if err != nil {
					return err
				}
				analyses = append(analyses, a)
			}
			for l := 1.0; l <= 30+1e-9; l += step {
				vals := make([]float64, len(analyses))
				for i, a := range analyses {
					vals[i] = a.NormalizedTotal(l)
				}
				out.AddRow(u.tech.Name, u.entries, u.suite, l, stats.Median(vals))
			}
			return nil
		})
		return t, err
	}
}

// techEntrySuiteUnit is one cell of the technology × entries × suite
// sweep the crossover artifacts share, flattened in the serial traversal
// order for deterministic row assembly.
type techEntrySuiteUnit struct {
	tech    wire.Technology
	entries int
	suite   string
}

func techEntrySuiteUnits(entriesList []int, suites []string) []techEntrySuiteUnit {
	var out []techEntrySuiteUnit
	for _, tech := range wire.Technologies() {
		for _, entries := range entriesList {
			for _, suite := range suites {
				out = append(out, techEntrySuiteUnit{tech, entries, suite})
			}
		}
	}
	return out
}

func runTable3(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Median crossover lengths for the window-based design (register bus)",
		Columns: []string{"technology", "entries", "suite", "median_crossover_mm"},
	}
	units := techEntrySuiteUnits([]int{8, 16}, []string{"SPECint", "SPECfp", "ALL"})
	err := gatherRows(t, cfg, len(units), func(i int, out *Table) error {
		u := units[i]
		names := suiteNames(u.suite)
		if cfg.Quick {
			names = names[:2]
		}
		var xs []float64
		for _, name := range names {
			a, err := analysisFor(u.tech, name, "reg", u.entries, cfg)
			if err != nil {
				return err
			}
			xs = append(xs, a.CrossoverMM())
		}
		med := stats.Median(xs)
		cell := fmt.Sprintf("%.1f", med)
		if math.IsInf(med, 1) {
			cell = "inf"
		}
		out.AddRow(u.tech.Name, u.entries, u.suite, cell)
		return nil
	})
	return t, err
}
