package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the concurrent experiment engine. RunAll executes many
// registered runners on one bounded worker pool, and the runners' heavy
// inner loops (per-workload, per-scheme sweeps) fan out onto the same
// pool via parFor/gatherRows. Results are slotted by index, so the output
// is byte-identical to the serial path regardless of scheduling.

// Options tunes RunAll.
type Options struct {
	// Jobs bounds the total number of concurrently executing goroutines
	// across experiments and their inner sweeps; <= 0 means
	// runtime.GOMAXPROCS(0).
	Jobs int
	// Progress, when non-nil, receives one event as each experiment
	// starts and one as it finishes. Calls are serialized.
	Progress func(ProgressEvent)
}

// ProgressEvent reports one experiment starting or finishing.
type ProgressEvent struct {
	// ID is the experiment.
	ID string
	// Index is the experiment's position in the RunAll id list.
	Index int
	// Total is the length of the id list.
	Total int
	// Done is false for the start event, true for the finish event.
	Done bool
	// Elapsed is the experiment's wall time (finish events only).
	Elapsed time.Duration
	// Err is the experiment's failure (finish events only).
	Err error
}

// engine is the shared concurrency budget. Experiment workers hold one
// token each; inner loops opportunistically claim extra tokens and always
// also run on their caller's goroutine, so the pool can never deadlock.
type engine struct {
	sem      chan struct{}
	progMu   sync.Mutex
	progress func(ProgressEvent)
}

func newEngine(jobs int, progress func(ProgressEvent)) *engine {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &engine{sem: make(chan struct{}, jobs), progress: progress}
}

func (e *engine) acquire() { e.sem <- struct{}{} }

func (e *engine) tryAcquire() bool {
	select {
	case e.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (e *engine) release() { <-e.sem }

func (e *engine) emit(ev ProgressEvent) {
	if e.progress == nil {
		return
	}
	e.progMu.Lock()
	defer e.progMu.Unlock()
	e.progress(ev)
}

// RunAll executes the given experiments concurrently on a worker pool of
// opts.Jobs goroutines and returns their tables in id order — the output
// is deterministic and byte-identical to running each id serially. Every
// id is validated against the registry before any experiment runs. The
// first failure (or ctx cancellation) cancels everything still in flight
// and is returned; no partial tables are returned.
func RunAll(ctx context.Context, cfg Config, ids []string, opts Options) ([]*Table, error) {
	if err := validateIDs(ids); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	eng := newEngine(opts.Jobs, opts.Progress)
	cfg.ctx = ctx
	cfg.eng = eng

	tables := make([]*Table, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		if ctx.Err() != nil {
			break
		}
		eng.acquire()
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			defer eng.release()
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			eng.emit(ProgressEvent{ID: id, Index: i, Total: len(ids)})
			start := time.Now()
			tbl, err := Run(id, cfg)
			eng.emit(ProgressEvent{ID: id, Index: i, Total: len(ids), Done: true, Elapsed: time.Since(start), Err: err})
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			tables[i] = tbl
		}(i, id)
	}
	wg.Wait()
	// Prefer the lowest-index real failure over secondary cancellations so
	// the reported error is stable across schedules.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return tables, nil
}

// ResolveIDs expands a comma-separated experiment selection ("fig15",
// "fig15,table3", "all", "fig15,all") into registered ids, validating
// every element up front so nothing runs before a typo is caught. "all"
// may appear anywhere in the list and expands to every registered id;
// empty elements (as in a trailing comma) are ignored; duplicates are
// dropped, keeping first-occurrence order.
func ResolveIDs(spec string) ([]string, error) {
	var out []string
	var unknown []string
	seen := map[string]bool{}
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case part == "":
		case part == "all":
			for _, id := range IDs() {
				add(id)
			}
		case !registered(part):
			unknown = append(unknown, part)
		default:
			add(part)
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("experiments: unknown experiment(s) %s (see -list)", strings.Join(unknown, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty experiment selection %q", spec)
	}
	return out, nil
}

func registered(id string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	_, ok := registry[id]
	return ok
}

func validateIDs(ids []string) error {
	var unknown []string
	for _, id := range ids {
		if !registered(id) {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("experiments: unknown experiment(s) %s (see IDs())", strings.Join(unknown, ", "))
	}
	if len(ids) == 0 {
		return fmt.Errorf("experiments: no experiments selected")
	}
	return nil
}

// parFor runs fn(0..n-1), fanning out across the engine's spare pool
// capacity when the Config carries one (under RunAll) and degrading to a
// plain serial loop otherwise. The calling goroutine always participates,
// and helpers only claim pool tokens opportunistically, so nested use
// cannot deadlock. On failure the lowest-index error observed is
// returned; fn must write its result into an index-addressed slot for
// deterministic assembly.
func parFor(cfg Config, n int, fn func(i int) error) error {
	ctx := cfg.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.eng == nil || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed() || ctx.Err() != nil {
				return
			}
			if err := fn(i); err != nil {
				fail(i, err)
				return
			}
		}
	}
	var wg sync.WaitGroup
	for helpers := 0; helpers < n-1 && cfg.eng.tryAcquire(); helpers++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cfg.eng.release()
			work()
		}()
	}
	work()
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// gatherRows evaluates n independent row groups — in parallel when the
// Config carries an engine — each into its own scratch table, then
// appends the groups' rows to t in slot order so the assembled table is
// identical to the serial traversal.
func gatherRows(t *Table, cfg Config, n int, fn func(i int, out *Table) error) error {
	subs := make([]*Table, n)
	if err := parFor(cfg, n, func(i int) error {
		sub := &Table{}
		if err := fn(i, sub); err != nil {
			return err
		}
		subs[i] = sub
		return nil
	}); err != nil {
		return err
	}
	for _, sub := range subs {
		t.Rows = append(t.Rows, sub.Rows...)
	}
	return nil
}
