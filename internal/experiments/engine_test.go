package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"buspower/internal/workload"
)

func TestResolveIDs(t *testing.T) {
	all := IDs()
	// "fig15,all": fig15 first, then the rest of the registry in IDs()
	// order — "all" inside a comma list must expand, not run as a garbage
	// id, and the duplicate fig15 is dropped.
	fig15First := []string{"fig15"}
	for _, id := range all {
		if id != "fig15" {
			fig15First = append(fig15First, id)
		}
	}
	cases := []struct {
		spec string
		want []string
	}{
		{"fig15", []string{"fig15"}},
		{"fig15, table3", []string{"fig15", "table3"}},
		{"all", all},
		{"all,", all}, // trailing comma must not run a garbage id
		{"fig15,all", fig15First},
		{"fig15,fig15,fig15", []string{"fig15"}}, // duplicates dropped
	}
	for _, c := range cases {
		got, err := ResolveIDs(c.spec)
		if err != nil {
			t.Errorf("ResolveIDs(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ResolveIDs(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestResolveIDsRejectsUnknown(t *testing.T) {
	for _, spec := range []string{"figXX", "fig15,figXX", "fig15,bogus,table3,junk", ""} {
		if _, err := ResolveIDs(spec); err == nil {
			t.Errorf("ResolveIDs(%q) should fail", spec)
		}
	}
	// Every unknown id must be named so one run surfaces every typo.
	_, err := ResolveIDs("fig15,bogus,junk")
	if err == nil || !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "junk") {
		t.Errorf("error should list all unknown ids, got %v", err)
	}
}

// Determinism: RunAll on a contended pool must produce tables identical,
// row for row, to the serial Run path.
func TestRunAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	ids := []string{"table1", "fig7", "fig8", "fig16", "extvlc"}
	parallel, err := RunAll(context.Background(), quickCfg, ids, Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		serial, err := Run(id, quickCfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := parallel[i].TSV(), serial.TSV(); got != want {
			t.Errorf("%s: parallel output differs from serial:\n--- parallel ---\n%s--- serial ---\n%s", id, got, want)
		}
	}
}

func TestRunAllValidatesUpFront(t *testing.T) {
	// An unknown id anywhere in the list must fail before any experiment
	// runs — observable through the trace-cache counters.
	workload.ClearTraceCache()
	defer workload.ClearTraceCache()
	_, err := RunAll(context.Background(), quickCfg, []string{"fig7", "figXX"}, Options{})
	if err == nil || !strings.Contains(err.Error(), "figXX") {
		t.Fatalf("want unknown-id error, got %v", err)
	}
	if _, misses := workload.TraceCacheStats(); misses != 0 {
		t.Errorf("%d simulations ran before validation failed", misses)
	}
	if _, err := RunAll(context.Background(), quickCfg, nil, Options{}); err == nil {
		t.Error("empty id list should fail")
	}
}

func TestGatherRowsPropagatesError(t *testing.T) {
	for _, jobs := range []int{0, 8} {
		cfg := quickCfg
		if jobs > 0 {
			cfg.ctx = context.Background()
			cfg.eng = newEngine(jobs, nil)
		}
		tbl := &Table{Columns: []string{"i"}}
		err := gatherRows(tbl, cfg, 20, func(i int, out *Table) error {
			if i == 3 {
				return errSlot3
			}
			out.AddRow(i)
			return nil
		})
		if err != errSlot3 {
			t.Errorf("jobs=%d: err = %v, want errSlot3", jobs, err)
		}
		if len(tbl.Rows) != 0 {
			t.Errorf("jobs=%d: failed gather appended %d rows", jobs, len(tbl.Rows))
		}
	}
}

var errSlot3 = errors.New("slot 3 failed")

func TestRunAllHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx, quickCfg, []string{"table1"}, Options{}); err == nil {
		t.Error("pre-canceled context should abort RunAll")
	}
}

func TestRunAllProgressEvents(t *testing.T) {
	var mu sync.Mutex
	events := map[string][2]int{} // id -> {starts, finishes}
	opts := Options{Jobs: 4, Progress: func(ev ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		e := events[ev.ID]
		if ev.Done {
			e[1]++
			if ev.Err != nil {
				t.Errorf("%s: unexpected error %v", ev.ID, ev.Err)
			}
		} else {
			e[0]++
		}
		events[ev.ID] = e
	}}
	ids := []string{"table1", "fig5", "fig6"}
	if _, err := RunAll(context.Background(), quickCfg, ids, opts); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if events[id] != [2]int{1, 1} {
			t.Errorf("%s: events = %v, want one start and one finish", id, events[id])
		}
	}
}

// parFor is the engine's inner-loop primitive; its serial degradation
// (no engine attached) and its bounded parallel form must both visit
// every index exactly once.
func TestParForCoversAllIndexes(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 16} {
		cfg := quickCfg
		if jobs > 0 {
			cfg.ctx = context.Background()
			cfg.eng = newEngine(jobs, nil)
		}
		const n = 100
		visited := make([]int, n)
		var mu sync.Mutex
		err := parFor(cfg, n, func(i int) error {
			mu.Lock()
			visited[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("jobs=%d: index %d visited %d times", jobs, i, v)
			}
		}
	}
}
