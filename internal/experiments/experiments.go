// Package experiments reproduces every table and figure of the paper's
// evaluation. Each runner is a pure function of its Config, returning a
// Table whose rows/series correspond to what the paper plots; cmd/buspower
// prints them as TSV and the bench harness regenerates them under
// go test -bench.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"buspower/internal/coding"
	"buspower/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// Run bounds the per-workload simulation.
	Run workload.RunConfig
	// Quick trims sweep ranges and trace lengths for smoke tests and
	// benchmarks; the full configuration reproduces the paper's axes.
	Quick bool
	// Verify selects the decoder round-trip policy for every evaluation
	// (see coding.VerifyPolicy). The zero value is full verification —
	// tests get the strictest checking by default; cmd/buspower relaxes
	// it to sampled via -verify. Results are bit-identical either way.
	Verify coding.VerifyPolicy
	// Parallel bounds the goroutine fan-out of a single experiment's
	// inner sweeps when it runs outside RunAll (which brings its own
	// pool): the async job engine sets it to its per-item CPU share so a
	// lone batch item can still shard its grid across spare cores.
	// Values <= 1 keep the serial path; it is ignored when RunAll has
	// already attached an engine.
	Parallel int

	// ctx and eng are set by RunAll: ctx carries cancellation into runner
	// inner loops, eng bounds their goroutine fan-out. Both nil under the
	// plain serial Run path, where parFor degrades to a simple loop.
	ctx context.Context
	eng *engine
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config {
	return Config{Run: workload.DefaultRunConfig()}
}

// QuickConfig returns a reduced configuration for benches and smoke tests.
func QuickConfig() Config {
	return Config{
		Run:   workload.RunConfig{MaxInstructions: 250_000, MaxBusValues: 25_000},
		Quick: true,
	}
}

// Table is one reproduced artifact.
type Table struct {
	// ID is the experiment identifier, e.g. "fig15" or "table3".
	ID string
	// Title describes the artifact, mirroring the paper's caption.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold formatted cells; Rows[i][j] belongs to Columns[j].
	Rows [][]string
}

// AddRow appends a row, formatting each cell: strings pass through,
// float64s use %.4g, ints use %d.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 4, 64)
		case int:
			row[i] = strconv.Itoa(v)
		case uint64:
			row[i] = strconv.FormatUint(v, 10)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Float parses the cell at (row, col) as a number.
func (t *Table) Float(row, col int) (float64, error) {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return 0, fmt.Errorf("experiments: cell (%d,%d) out of range in %s", row, col, t.ID)
	}
	return strconv.ParseFloat(t.Rows[row][col], 64)
}

// Column returns the index of the named column.
func (t *Table) Column(name string) (int, error) {
	for i, c := range t.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiments: no column %q in %s", name, t.ID)
}

// TSV renders the table with a title comment, header and tab-separated
// rows.
func (t *Table) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner produces one artifact.
type Runner struct {
	// ID is the registry key.
	ID string
	// Title mirrors the paper's caption.
	Title string
	// Run executes the experiment.
	Run func(Config) (*Table, error)
}

var (
	regMu    sync.Mutex
	registry = map[string]Runner{}
)

func register(r Runner) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[r.ID]; dup {
		panic("experiments: duplicate id " + r.ID)
	}
	registry[r.ID] = r
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Table, error) {
	regMu.Lock()
	r, ok := registry[id]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (see IDs())", id)
	}
	if cfg.eng == nil && cfg.Parallel > 1 {
		// Standalone run with an explicit parallelism budget: give the
		// runner's inner parFor loops a pool of its own. Row assembly is
		// index-slotted, so the table stays byte-identical to serial.
		cfg.eng = newEngine(cfg.Parallel, nil)
	}
	t, err := r.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return t, nil
}

// RunContext executes the experiment with the given id, carrying ctx
// into the runner's inner sweep loops so a long full-mode experiment can
// be cancelled cooperatively between evaluation points. It is the async
// job engine's per-item entry point; Run is the plain uncancellable
// path and produces byte-identical tables.
func RunContext(ctx context.Context, id string, cfg Config) (*Table, error) {
	if ctx != nil {
		cfg.ctx = ctx
	}
	return Run(id, cfg)
}

// IDs lists all experiment identifiers in a stable order: tables first,
// then figures, each numerically.
func IDs() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	rank := func(id string) (class, num int) {
		switch {
		case strings.HasPrefix(id, "table"):
			n, _ := strconv.Atoi(id[len("table"):])
			return 0, n
		case strings.HasPrefix(id, "fig"):
			n, _ := strconv.Atoi(id[len("fig"):])
			return 1, n
		default: // extensions sort last, alphabetically
			return 2, 0
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, ni := rank(out[i])
		cj, nj := rank(out[j])
		if ci != cj {
			return ci < cj
		}
		if ni != nj {
			return ni < nj
		}
		return out[i] < out[j]
	})
	return out
}

// Titles returns id -> title for all registered experiments.
func Titles() map[string]string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make(map[string]string, len(registry))
	for id, r := range registry {
		out[id] = r.Title
	}
	return out
}
