package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// quickCfg is shared across tests; workload traces are cached per config,
// so one simulation run serves the whole file.
var quickCfg = QuickConfig()

func mustRun(t *testing.T, id string) *Table {
	t.Helper()
	tbl, err := Run(id, quickCfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("%s: row %d has %d cells, want %d", id, i, len(row), len(tbl.Columns))
		}
	}
	return tbl
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig5", "fig6", "fig7", "fig8", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
		"fig26", "fig35", "fig36", "fig37", "fig38",
		"extaddr", "extvlc", "extscale", "extctx",
		"extopt", "extxover", "extdvs",
	}
	ids := IDs()
	got := map[string]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry holds %d experiments, want %d", len(ids), len(want))
	}
	titles := Titles()
	for _, id := range ids {
		if titles[id] == "" {
			t.Errorf("%s has no title", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", quickCfg); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			mustRun(t, id)
		})
	}
}

func TestTSVFormat(t *testing.T) {
	tbl := mustRun(t, "table1")
	tsv := tbl.TSV()
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if !strings.HasPrefix(lines[0], "# table1:") {
		t.Error("TSV missing title comment")
	}
	if lines[1] != "technology\twire_type\taverage_lambda" {
		t.Errorf("TSV header = %q", lines[1])
	}
	if len(lines) != 2+len(tbl.Rows) {
		t.Errorf("TSV line count %d", len(lines))
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := mustRun(t, "table1")
	want := map[string]float64{
		"0.13um/Unbuffered wire": 14.0,
		"0.13um/With repeaters":  0.670,
		"0.10um/Unbuffered wire": 16.6,
		"0.10um/With repeaters":  0.576,
		"0.07um/Unbuffered wire": 14.5,
		"0.07um/With repeaters":  0.591,
	}
	for i, row := range tbl.Rows {
		key := row[0] + "/" + row[1]
		v, err := tbl.Float(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if w, ok := want[key]; !ok || math.Abs(v-w)/w > 0.01 {
			t.Errorf("%s: Λ=%v, want %v", key, v, want[key])
		}
	}
}

func TestFig5EnergyIncreasing(t *testing.T) {
	tbl := mustRun(t, "fig5")
	// Column 1 is Repeater_0.13um; values must increase down the rows and
	// stay within the paper's 0-6 pJ band.
	prev := -1.0
	for i := range tbl.Rows {
		v, err := tbl.Float(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Errorf("row %d: energy %v not increasing", i, v)
		}
		if v < 0 || v > 6.5 {
			t.Errorf("row %d: energy %v outside Figure 5 band", i, v)
		}
		prev = v
	}
}

func TestFig6DelayShape(t *testing.T) {
	tbl := mustRun(t, "fig6")
	// Unbuffered delay (columns 4..6) must exceed buffered (1..3) at the
	// longest length.
	last := len(tbl.Rows) - 1
	for c := 1; c <= 3; c++ {
		buf, _ := tbl.Float(last, c)
		unbuf, _ := tbl.Float(last, c+3)
		if unbuf <= buf {
			t.Errorf("column %d: unbuffered %v should exceed buffered %v at 30mm", c, unbuf, buf)
		}
	}
}

func TestFig7CoverageMonotone(t *testing.T) {
	tbl := mustRun(t, "fig7")
	// Within one (benchmark, bus) group, coverage must not decrease as the
	// unique-value budget grows.
	lastKey := ""
	prev := 0.0
	for i, row := range tbl.Rows {
		key := row[0] + "/" + row[1]
		cov, err := tbl.Float(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		if key == lastKey && cov < prev-1e-9 {
			t.Errorf("%s: coverage decreased (%v -> %v)", key, prev, cov)
		}
		if cov < 0 || cov > 1 {
			t.Errorf("%s: coverage %v outside [0,1]", key, cov)
		}
		lastKey, prev = key, cov
	}
}

func TestFig8UniqueFractionsShowLocality(t *testing.T) {
	tbl := mustRun(t, "fig8")
	// At window 1000 no benchmark's bus should look fully random:
	// fractions must be clearly below 1.
	for i, row := range tbl.Rows {
		w, _ := strconv.Atoi(row[2])
		if w < 1000 {
			continue
		}
		f, err := tbl.Float(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		if f > 0.9 {
			t.Errorf("%s/%s window %d: unique fraction %v looks random", row[0], row[1], w, f)
		}
	}
}

// The paper's Figure 15 point: evaluating inversion coders on random data
// makes them look better (lower energy remaining) than on real traffic at
// moderate-to-high Λ.
func TestFig15RandomLooksBetter(t *testing.T) {
	tbl := mustRun(t, "fig15")
	remaining := map[string]float64{} // source/cost/lambda -> pct
	for i, row := range tbl.Rows {
		v, err := tbl.Float(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		remaining[row[0]+"/"+row[1]+"/"+row[2]] = v
	}
	rand1, okA := remaining["random/lambda1/1"]
	reg1, okB := remaining["register bus average/lambda1/1"]
	if !okA || !okB {
		t.Fatalf("missing fig15 rows: %v", remaining)
	}
	if rand1 >= reg1 {
		t.Errorf("at Λ=1 random traffic (%.1f%% remaining) should look better than register traffic (%.1f%%)", rand1, reg1)
	}
	// λN must never be worse than λ0 at high Λ on the same source.
	for _, src := range []string{"random", "register bus average", "memory bus average"} {
		n := remaining[src+"/lambdaN/100"]
		z := remaining[src+"/lambda0/100"]
		if n > z*1.01 {
			t.Errorf("%s: λN (%.2f%%) worse than λ0 (%.2f%%) at Λ=100", src, n, z)
		}
	}
}

func TestFig19WindowSavingsGrowWithSize(t *testing.T) {
	tbl := mustRun(t, "fig19")
	// For each benchmark, savings at the largest size must be at least the
	// savings at the smallest size.
	type span struct{ small, large float64 }
	spans := map[string]*span{}
	for i, row := range tbl.Rows {
		size, _ := strconv.Atoi(row[1])
		v, err := tbl.Float(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		s := spans[row[0]]
		if s == nil {
			s = &span{}
			spans[row[0]] = s
		}
		if size == 4 {
			s.small = v
		}
		if size == 32 {
			s.large = v
		}
	}
	grow := 0
	for name, s := range spans {
		if s.large >= s.small-0.5 {
			grow++
		} else {
			t.Logf("%s: savings shrank %v -> %v", name, s.small, s.large)
		}
	}
	if grow < len(spans)*3/4 {
		t.Errorf("only %d/%d benchmarks grow savings with window size", grow, len(spans))
	}
}

// §4.4's design decision: value-based context coding beats transition-based
// for the same hardware.
func TestValueBasedBeatsTransitionBased(t *testing.T) {
	value := mustRun(t, "fig23")
	transition := mustRun(t, "fig21")
	avg := func(tbl *Table) float64 {
		sum, n := 0.0, 0
		for i, row := range tbl.Rows {
			if row[0] == "random" {
				continue
			}
			v, err := tbl.Float(i, 2)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
			n++
		}
		return sum / float64(n)
	}
	if a, b := avg(value), avg(transition); a < b {
		t.Errorf("value-based average %.2f%% < transition-based %.2f%%", a, b)
	}
}

func TestTable2Structure(t *testing.T) {
	tbl := mustRun(t, "table2")
	if len(tbl.Rows) != 4 {
		t.Fatalf("table2 should have 3 window rows + 1 inversion row, got %d", len(tbl.Rows))
	}
	// The measured encoder energy must be within 25% of the Table 2 anchor
	// for each technology (the statistical model's validation, §5.4.2).
	for i := 0; i < 3; i++ {
		anchor, _ := tbl.Float(i, 4)
		measured, _ := tbl.Float(i, 5)
		if math.Abs(measured-anchor)/anchor > 0.25 {
			t.Errorf("row %d: measured %.3f vs anchor %.3f diverges >25%%", i, measured, anchor)
		}
	}
}

func TestFig26BudgetGrowsWithLength(t *testing.T) {
	tbl := mustRun(t, "fig26")
	// Group rows by (design, entries); budget must increase with length.
	type key struct{ design, entries string }
	byKey := map[key]map[string]float64{}
	for i, row := range tbl.Rows {
		k := key{row[0], row[2]}
		if byKey[k] == nil {
			byKey[k] = map[string]float64{}
		}
		v, err := tbl.Float(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		byKey[k][row[1]] = v
	}
	for k, lens := range byKey {
		if lens["5"] > lens["10"] || lens["10"] > lens["15"] {
			t.Errorf("%v: budget not increasing with length: %v", k, lens)
		}
	}
}

func TestFig35NormalizedTotalDecreasesWithLength(t *testing.T) {
	tbl := mustRun(t, "fig35")
	lastBench := ""
	prev := math.Inf(1)
	for i, row := range tbl.Rows {
		v, err := tbl.Float(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] == lastBench && v > prev+1e-9 {
			t.Errorf("%s: normalized total increased with length", row[0])
		}
		lastBench, prev = row[0], v
	}
}

func TestTable3Shape(t *testing.T) {
	tbl := mustRun(t, "table3")
	get := func(tech string, entries int, suite string) float64 {
		for i, row := range tbl.Rows {
			if row[0] == tech && row[1] == strconv.Itoa(entries) && row[2] == suite {
				if row[3] == "inf" {
					return math.Inf(1)
				}
				v, err := tbl.Float(i, 3)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("missing table3 row %s/%d/%s", tech, entries, suite)
		return 0
	}
	// Crossovers must shrink with technology (the paper's scaling claim).
	for _, suite := range []string{"ALL"} {
		for _, entries := range []int{8, 16} {
			l13 := get("0.13um", entries, suite)
			l10 := get("0.10um", entries, suite)
			l07 := get("0.07um", entries, suite)
			if !(l13 > l10 && l10 > l07) {
				t.Errorf("%s/%d: crossovers do not shrink with technology: %v %v %v", suite, entries, l13, l10, l07)
			}
		}
	}
}

func TestQuickVsFullAxes(t *testing.T) {
	// Quick mode must shrink the sweep, not change its schema.
	q, err := Run("fig5", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := Run("fig5", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Columns) != len(f.Columns) {
		t.Error("quick mode changed the schema")
	}
	if len(q.Rows) >= len(f.Rows) {
		t.Error("quick mode did not shrink the sweep")
	}
}
