package experiments

import (
	"fmt"

	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/energy"
	"buspower/internal/stats"
	"buspower/internal/wire"
	"buspower/internal/workload"
)

// Extension experiments beyond the paper's published artifacts.
//
// extaddr evaluates the related-work address-bus coders the paper cites in
// §2 — workzone encoding (Musoll et al. [15], extended by sector-based
// encoding [1]) and partial bus-invert (Shin et al. [20]) — against the
// paper's own prediction-based transcoders, on the memory *address* bus
// the simulator extracts. The paper argues its value-prediction approach
// targets data buses; this table shows the flip side: on address streams
// the special-purpose zone coder dominates, confirming that coding schemes
// must match their bus's traffic structure.
func init() {
	register(Runner{
		ID:    "extaddr",
		Title: "Extension: coding schemes on the memory address bus (workzone vs the paper's transcoders)",
		Run:   runExtAddr,
	})
	register(Runner{
		ID:    "extvlc",
		Title: "Extension: §6 variable-length coding vs the fixed-length window design (register bus)",
		Run:   runExtVLC,
	})
	register(Runner{
		ID:    "extscale",
		Title: "Extension: break-even length vs feature size as a continuous axis (§6 scaling outlook)",
		Run:   runExtScale,
	})
	register(Runner{
		ID:    "extctx",
		Title: "Extension: the §5.4.3 design decision quantified — window vs context crossover lengths",
		Run:   runExtCtx,
	})
}

// runExtCtx pushes the Context-based design through the same crossover
// analysis the paper only performed for the Window-based design, making
// §5.4.3's decision quantitative: the context transcoder removes somewhat
// more activity, but its counters, counter-match and swap circuitry
// (±50% energy overhead) must be repaid by the extra savings — which, for
// short wires, they are not.
func runExtCtx(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "extctx",
		Title:   "Median register-bus crossover: window vs context designs (matched total entries)",
		Columns: []string{"design", "technology", "median_savings_pct", "median_crossover_mm"},
	}
	names := workload.Names()
	if cfg.Quick {
		names = names[:3]
	}
	type design struct {
		label   string
		kind    circuit.DesignKind
		entries int
		build   func() (coding.Transcoder, error)
	}
	designs := []design{
		{"window-32", circuit.WindowDesign, 32, func() (coding.Transcoder, error) {
			return coding.NewWindow(busWidth, 32, evalLambda)
		}},
		{"context-24t+8s", circuit.ContextDesign, 32, func() (coding.Transcoder, error) {
			return coding.NewContext(coding.ContextConfig{
				Width: busWidth, TableSize: 24, ShiftEntries: 8,
				DividePeriod: 4096, Lambda: evalLambda,
			})
		}},
	}
	techs := wire.Technologies()
	type unit struct {
		tech wire.Technology
		d    design
	}
	var units []unit
	for _, tech := range techs {
		for _, d := range designs {
			units = append(units, unit{tech, d})
		}
	}
	err := gatherRows(t, cfg, len(units), func(i int, out *Table) error {
		tech, d := units[i].tech, units[i].d
		tc, err := d.build()
		if err != nil {
			return err
		}
		var ev coding.Evaluator
		var savings, xovers []float64
		for _, name := range names {
			tr, err := busTrace(name, "reg", cfg)
			if err != nil {
				return err
			}
			raw, err := rawMeterFor(name, "reg", cfg)
			if err != nil {
				return err
			}
			// The same (transcoder, trace, Λ) evaluation repeats across the
			// technology axis; the memo collapses those to one computation.
			res, err := evalResult(&ev, tc, workloadTraceID(name, "reg", cfg), tr, evalLambda, raw, cfg)
			if err != nil {
				return err
			}
			a, err := energy.NewAnalysis(tech, res, d.kind, d.entries)
			if err != nil {
				return err
			}
			savings = append(savings, 100*a.EnergyRemovedFraction())
			xovers = append(xovers, a.CrossoverMM())
		}
		out.AddRow(d.label, tech.Name, stats.Median(savings), stats.Median(xovers))
		return nil
	})
	return t, err
}

// runExtScale sweeps feature size continuously between the paper's
// anchored nodes (interpolating both the wire and circuit models) and
// reports the median break-even length — the quantitative form of §6's
// claim that transcoding grows more attractive as technology shrinks.
func runExtScale(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "extscale",
		Title:   "Median register-bus crossover length vs feature size (window design)",
		Columns: []string{"feature_nm", "entries", "median_crossover_mm"},
	}
	sizes := []int{130, 120, 110, 100, 90, 80, 70}
	if cfg.Quick {
		sizes = []int{130, 100, 70}
	}
	names := workload.Names()
	if cfg.Quick {
		names = names[:3]
	}
	err := gatherRows(t, cfg, len(sizes), func(i int, out *Table) error {
		nm := sizes[i]
		tech, err := wire.Interpolate(nm)
		if err != nil {
			return err
		}
		for _, entries := range []int{8, 16} {
			var xs []float64
			for _, name := range names {
				res, err := windowResultFor(name, "reg", entries, cfg)
				if err != nil {
					return err
				}
				a, err := energy.NewAnalysis(tech, res, circuit.WindowDesign, entries)
				if err != nil {
					return err
				}
				xs = append(xs, a.CrossoverMM())
			}
			out.AddRow(nm, entries, stats.Median(xs))
		}
		return nil
	})
	return t, err
}

// runExtVLC implements the paper's §6 future work — variable-length
// coding — and quantifies its trade-off against the fixed-length window
// design with the same dictionary: the VLC coder compresses transmission
// *time* (beat ratio), while fixed-length one-hot codes stay more
// transition-efficient per value.
func runExtVLC(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "extvlc",
		Title:   "Variable-length vs fixed-length window coding on the register bus",
		Columns: []string{"benchmark", "vlc_energy_removed_pct", "vlc_beat_ratio", "fixed_energy_removed_pct"},
	}
	names := workload.Names()
	if cfg.Quick {
		names = names[:4]
	}
	err := gatherRows(t, cfg, len(names), func(i int, out *Table) error {
		name := names[i]
		tr, err := busTrace(name, "reg", cfg)
		if err != nil {
			return err
		}
		raw, err := rawMeterFor(name, "reg", cfg)
		if err != nil {
			return err
		}
		// The VLC evaluator has its own entry point (no Transcoder), so its
		// memo key carries a hand-built config string.
		vlcCfg := coding.VLCConfig{Width: busWidth, Entries: 14, Lambda: evalLambda}
		vlcKey := resultKey{
			config: fmt.Sprintf("vlc-%d/w%d/l%g", vlcCfg.Entries, vlcCfg.Width, vlcCfg.Lambda),
			trace:  workloadTraceID(name, "reg", cfg),
			verify: cfg.Verify.String(),
		}
		vlc, err := vlcMemo.Do(vlcKey, func() (coding.VLCResult, error) {
			return coding.EvaluateVLCShared(vlcCfg, tr, evalLambda, raw)
		})
		if err != nil {
			return err
		}
		fixed, err := windowResultFor(name, "reg", 14, cfg)
		if err != nil {
			return err
		}
		out.AddRow(name, 100*vlc.EnergyRemoved(), vlc.BeatRatio(), 100*fixed.EnergyRemoved())
		return nil
	})
	return t, err
}

func runExtAddr(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "extaddr",
		Title:   "Normalized energy removed on the memory address bus",
		Columns: []string{"benchmark", "scheme", "energy_removed_pct"},
	}
	builders := []func() (coding.Transcoder, error){
		func() (coding.Transcoder, error) {
			return coding.NewWorkzone(coding.WorkzoneConfig{Width: busWidth, Zones: 4, MaxDelta: 64, Lambda: evalLambda})
		},
		func() (coding.Transcoder, error) { return coding.NewBusInvert(busWidth, evalLambda) },
		func() (coding.Transcoder, error) { return coding.NewPartialBusInvert(busWidth, 4, evalLambda) },
		func() (coding.Transcoder, error) { return coding.NewWindow(busWidth, 8, evalLambda) },
		func() (coding.Transcoder, error) { return coding.NewStride(busWidth, 8, evalLambda) },
		func() (coding.Transcoder, error) { return coding.NewGray(busWidth) },
	}
	names := workload.Names()
	if cfg.Quick {
		names = names[:4]
	}
	err := gatherRows(t, cfg, len(names), func(i int, out *Table) error {
		name := names[i]
		tr, err := busTrace(name, "addr", cfg)
		if err != nil {
			return err
		}
		if len(tr) < 100 {
			return nil
		}
		raw, err := rawMeterFor(name, "addr", cfg)
		if err != nil {
			return err
		}
		points := make([]gridPoint, len(builders))
		for k, build := range builders {
			tc, err := build()
			if err != nil {
				return err
			}
			points[k] = gridPoint{tc: tc, lambda: evalLambda}
		}
		results, err := evalGridPoints(points, workloadTraceID(name, "addr", cfg), tr, raw, cfg)
		if err != nil {
			return err
		}
		for k, res := range results {
			out.AddRow(name, points[k].tc.Name(), 100*res.EnergyRemoved())
		}
		return nil
	})
	return t, err
}
