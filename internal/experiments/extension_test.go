package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestExtAddrWorkzoneWins(t *testing.T) {
	tbl := mustRun(t, "extaddr")
	// On address traffic the workzone coder must beat the window design on
	// average — the traffic-structure point the extension makes.
	sums := map[string]float64{}
	counts := map[string]int{}
	for i, row := range tbl.Rows {
		v, err := tbl.Float(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		sums[row[1]] += v
		counts[row[1]]++
	}
	avg := func(scheme string) float64 {
		if counts[scheme] == 0 {
			t.Fatalf("no rows for %s", scheme)
		}
		return sums[scheme] / float64(counts[scheme])
	}
	if avg("workzone-4z") <= avg("window-8") {
		t.Errorf("workzone (%.1f%%) should beat window (%.1f%%) on the address bus",
			avg("workzone-4z"), avg("window-8"))
	}
}

func TestExtVLCTimeCompression(t *testing.T) {
	tbl := mustRun(t, "extvlc")
	for i, row := range tbl.Rows {
		ratio, err := tbl.Float(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ratio <= 0 || ratio >= 1.2 {
			t.Errorf("%s: implausible beat ratio %v", row[0], ratio)
		}
	}
}

func TestExtScaleMonotone(t *testing.T) {
	tbl := mustRun(t, "extscale")
	prev := map[string]float64{}
	for i, row := range tbl.Rows {
		v, err := tbl.Float(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Rows run from 130nm downward: crossover must not grow.
		if p, ok := prev[row[1]]; ok && v > p+1e-9 {
			t.Errorf("%snm %s-entry: crossover grew (%v -> %v)", row[0], row[1], p, v)
		}
		prev[row[1]] = v
	}
}

func TestExtCtxWindowWinsBreakEven(t *testing.T) {
	tbl := mustRun(t, "extctx")
	xover := map[string]float64{}
	for i, row := range tbl.Rows {
		v, err := tbl.Float(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		xover[row[0]+"/"+row[1]] = v
	}
	for _, tech := range []string{"0.13um", "0.10um", "0.07um"} {
		w, okW := xover["window-32/"+tech]
		c, okC := xover["context-24t+8s/"+tech]
		if !okW || !okC {
			t.Fatalf("missing extctx rows for %s", tech)
		}
		if w >= c {
			t.Errorf("%s: window crossover (%v) should beat context (%v) — §5.4.3", tech, w, c)
		}
	}
}

// Docs-code consistency: every registered experiment must appear in
// DESIGN.md's per-experiment index.
func TestDesignDocCoversAllExperiments(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, id := range IDs() {
		if !strings.Contains(doc, "`"+id+"`") {
			t.Errorf("experiment %s missing from DESIGN.md's index", id)
		}
	}
	// And the sort order groups tables, figures, extensions.
	ids := IDs()
	if ids[0] != "table1" || ids[len(ids)-1][:3] != "ext" {
		t.Errorf("unexpected ordering: first %s last %s", ids[0], ids[len(ids)-1])
	}
	figSeen := -1
	for _, id := range ids {
		if strings.HasPrefix(id, "fig") {
			n, _ := strconv.Atoi(id[3:])
			if n < figSeen {
				t.Errorf("figure ids out of order at %s", id)
			}
			figSeen = n
		}
	}
}
