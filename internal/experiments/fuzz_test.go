package experiments

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseEvalRequest proves two properties of the request parser over
// arbitrary byte input: it never panics, and any input it accepts is
// canonical — encoding the parsed request and parsing it again yields
// the identical request (so memo keys derived from parsed requests are
// stable across clients that round-trip them).
func FuzzParseEvalRequest(f *testing.F) {
	seeds := []string{
		`{"values":[1,2,3],"scheme":"raw"}`,
		`{"values":[1,2,3,4],"scheme":"window:entries=8","lambda":2.5}`,
		`{"random":1000,"scheme":"context:table=16,sr=8"}`,
		`{"workload":"li","bus":"reg","quick":true,"scheme":"businvert"}`,
		`{"workload":"go","bus":"mem","scheme":"inversion:patterns=4","verify":"sampled:32"}`,
		`{"workload":"compress","bus":"addr","scheme":"stride:strides=4","max_instructions":50000,"max_bus_values":4000}`,
		`{"values":[18446744073709551615],"scheme":"gray","verify":"off"}`,
		`{"random":1,"scheme":"pbi:groups=4","lambda":0}`,
		`{"scheme":"raw"}`,
		`{"values":[],"scheme":"raw"}`,
		`{"values":[1],"scheme":"spatial:width=4"}`,
		`{"values":[1,2,3],"scheme":"optmem:extra=2"}`,
		`{"values":[5,6,7],"scheme":"vc:extra=3","lambda":1.5}`,
		`{"random":500,"scheme":"lowweight:groups=4,extra=1"}`,
		`{"workload":"li","bus":"reg","quick":true,"scheme":"dvs:extra=2,vdd=80"}`,
		`{"values":[1],"scheme":"dvs:vdd=49"}`,
		`not json at all`,
		`{"values":[1],"scheme":"raw","extra":true}`,
		`{"values":[1],"scheme":"raw"}{"values":[2],"scheme":"raw"}`,
		`{"values":[1],"scheme":"raw","lambda":1e309}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseEvalRequest(data)
		if err != nil {
			return // rejected input is fine; the property is about accepted input
		}
		encoded, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v\ninput: %q", err, data)
		}
		again, err := ParseEvalRequest(encoded)
		if err != nil {
			t.Fatalf("canonical encoding rejected on reparse: %v\nencoded: %s\ninput: %q", err, encoded, data)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round-trip unstable:\nfirst:  %+v\nsecond: %+v\nencoded: %s", req, again, encoded)
		}
	})
}
