package experiments

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden conformance fixtures under testdata/golden/")

// goldenTable is the fixture schema: exactly the public Table fields, so
// a fixture diff reads like the experiment's printed output.
type goldenTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

// TestGoldenConformance regenerates every experiment in quick mode and
// compares each table cell-for-cell against its checked-in JSON fixture.
// The fixtures pin the numeric output of the whole pipeline — simulator,
// traces, transcoders, meters, formatting — so any unintended change to
// the numbers fails loudly with a readable diff. After an *intended*
// change, regenerate with:
//
//	go test ./internal/experiments/ -run TestGoldenConformance -update
//
// and review the fixture diff like any other code change.
func TestGoldenConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("golden conformance runs every experiment; skipped in -short")
	}
	ids := IDs()
	tables, err := RunAll(context.Background(), QuickConfig(), ids, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		// Remove fixtures for experiments that no longer exist so the
		// directory never accumulates stale IDs.
		known := make(map[string]bool, len(ids))
		for _, id := range ids {
			known[id] = true
		}
		old, _ := filepath.Glob(goldenPath("*"))
		for _, path := range old {
			id := strings.TrimSuffix(filepath.Base(path), ".json")
			if !known[id] {
				if err := os.Remove(path); err != nil {
					t.Fatal(err)
				}
				t.Logf("removed stale fixture %s", path)
			}
		}
	}
	for i, tbl := range tables {
		id := ids[i]
		t.Run(id, func(t *testing.T) {
			got := goldenTable{ID: tbl.ID, Title: tbl.Title, Columns: tbl.Columns, Rows: tbl.Rows}
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(id), append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(goldenPath(id))
			if err != nil {
				t.Fatalf("missing fixture (regenerate with -update): %v", err)
			}
			var want goldenTable
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt fixture %s: %v", goldenPath(id), err)
			}
			if diff := diffTables(want, got); diff != "" {
				t.Errorf("%s diverges from golden fixture (rerun with -update after an intended change):\n%s", id, diff)
			}
		})
	}
}

// diffTables reports a human-readable, cell-level diff between two
// tables, or "" if identical.
func diffTables(want, got goldenTable) string {
	var b strings.Builder
	if want.ID != got.ID {
		fmt.Fprintf(&b, "  id: fixture %q, got %q\n", want.ID, got.ID)
	}
	if want.Title != got.Title {
		fmt.Fprintf(&b, "  title: fixture %q, got %q\n", want.Title, got.Title)
	}
	if !equalStrings(want.Columns, got.Columns) {
		fmt.Fprintf(&b, "  columns: fixture %v, got %v\n", want.Columns, got.Columns)
	}
	if len(want.Rows) != len(got.Rows) {
		fmt.Fprintf(&b, "  row count: fixture %d, got %d\n", len(want.Rows), len(got.Rows))
	}
	n := len(want.Rows)
	if len(got.Rows) < n {
		n = len(got.Rows)
	}
	shown := 0
	for r := 0; r < n && shown < 10; r++ {
		if equalStrings(want.Rows[r], got.Rows[r]) {
			continue
		}
		fmt.Fprintf(&b, "  row %d:\n    fixture: %s\n    got:     %s\n",
			r, strings.Join(want.Rows[r], "\t"), strings.Join(got.Rows[r], "\t"))
		for c := 0; c < len(want.Rows[r]) && c < len(got.Rows[r]); c++ {
			if want.Rows[r][c] != got.Rows[r][c] {
				col := fmt.Sprintf("col %d", c)
				if c < len(want.Columns) {
					col = want.Columns[c]
				}
				fmt.Fprintf(&b, "    %s: fixture %q, got %q\n", col, want.Rows[r][c], got.Rows[r][c])
			}
		}
		shown++
	}
	if shown == 10 {
		b.WriteString("  ... (more differing rows elided)\n")
	}
	return b.String()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
