package experiments

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// MemoStats is a point-in-time snapshot of one memo's counters.
type MemoStats struct {
	// Hits counts Do calls that found an existing entry (including ones
	// that waited on an in-flight computation).
	Hits uint64
	// Misses counts Do calls that started a computation.
	Misses uint64
	// Evictions counts completed entries dropped by the LRU bound.
	Evictions uint64
	// InFlight is the number of computations currently running.
	InFlight int
	// Size is the current number of entries (in-flight included).
	Size int
}

// sfMemo is a single-flight, LRU-bounded memo: concurrent Do calls for
// the same key compute once and share the result, and the entry count is
// bounded by evicting the least-recently-used *completed* entry — an
// in-flight entry is never dropped out from under its waiters (which
// would start a second computation of the same key). This generalizes the
// raw-meter memo introduced in PR 1 to any (comparable key, value) pair;
// the raw-meter, random-trace and evaluation-result memos below are all
// instances of it.
//
// Errors are memoized alongside values, mirroring the original behavior:
// a failed computation is not retried until its entry ages out. The one
// exception is context errors (cancellation, deadline): those belong to
// the *leader's* request, not to the key, so the entry is dropped the
// moment the leader finishes and every coalesced waiter transparently
// re-runs Do — one of them becomes the new leader under its own context
// instead of all of them failing with an error their own contexts never
// produced. Other non-deterministic failures can still be dropped
// explicitly with Forget.
//
// The counters are atomics, not mu-guarded fields, so Stats is wait-free:
// a metrics scrape under load observes them without contending with (or
// being blocked behind) in-flight Do calls holding mu for eviction scans.
type sfMemo[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*sfEntry[K, V]
	lru     *list.List // front = most recently used
	limit   int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	inFlight  atomic.Int64
	size      atomic.Int64
}

type sfEntry[K comparable, V any] struct {
	ready chan struct{}
	val   V
	err   error
	// done is set under sfMemo.mu before ready is closed; only done
	// entries are eviction candidates.
	done bool
	// retry is set (under mu, before ready is closed) when the leader's
	// computation ended with a context error: the entry has already been
	// un-cached and waiters must re-run Do instead of adopting a failure
	// that belongs to the leader's request, not to the key.
	retry bool
	key   K
	elem  *list.Element
}

func newSFMemo[K comparable, V any](limit int) *sfMemo[K, V] {
	return &sfMemo[K, V]{entries: map[K]*sfEntry[K, V]{}, lru: list.New(), limit: limit}
}

// Do returns the memoized value for key, running compute (without holding
// the memo lock) if no entry exists yet. A waiter that coalesced onto a
// leader whose computation was cancelled retries (counting another hit or
// miss), so hits+misses can exceed the number of Do calls only across
// cancelled computations.
func (c *sfMemo[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.hits.Add(1)
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			<-e.ready
			if e.retry {
				// The leader was cancelled or timed out; this caller's
				// context may be fine. The entry is already gone — race to
				// become the new leader (the losers coalesce on the winner).
				continue
			}
			return e.val, e.err
		}
		c.misses.Add(1)
		c.inFlight.Add(1)
		e := &sfEntry[K, V]{ready: make(chan struct{}), key: key}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		for len(c.entries) > c.limit {
			var victim *sfEntry[K, V]
			for le := c.lru.Back(); le != nil; le = le.Prev() {
				if cand := le.Value.(*sfEntry[K, V]); cand.done {
					victim = cand
					break
				}
			}
			if victim == nil {
				// Every entry is in flight: tolerate a temporary overshoot
				// rather than evict work in progress.
				break
			}
			c.lru.Remove(victim.elem)
			delete(c.entries, victim.key)
			c.evictions.Add(1)
		}
		c.size.Store(int64(len(c.entries)))
		c.mu.Unlock()

		v, err := compute()
		c.mu.Lock()
		e.val, e.err = v, err
		e.done = true
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The leader's request died, not the computation for this key:
			// un-cache the entry so waiters retry and later callers miss,
			// instead of replaying an error their own contexts never
			// produced. The leader itself still returns its own error.
			e.retry = true
			c.lru.Remove(e.elem)
			delete(c.entries, key)
		}
		c.inFlight.Add(-1)
		c.size.Store(int64(len(c.entries)))
		c.mu.Unlock()
		close(e.ready)
		return v, err
	}
}

// Peek returns the completed entry for key without blocking and without
// starting a computation on a miss. An in-flight entry is reported as
// absent: the caller is batching misses into one grid evaluation, and
// waiting on another request's leader would serialize exactly the work
// the batch exists to fuse. A found entry counts as a hit and is touched
// in the LRU, so Peek-then-store traffic ages the cache the same way Do
// traffic does; a miss counts nothing — the caller re-enters through Do
// to publish the batched result, and that call records the miss.
func (c *sfMemo[K, V]) Peek(key K) (V, error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.done {
		c.hits.Add(1)
		c.lru.MoveToFront(e.elem)
		return e.val, e.err, true
	}
	var zero V
	return zero, nil, false
}

// Forget drops the entry for key if its computation has completed. Do
// already un-caches context errors on its own; Forget covers any other
// failure a caller knows to be non-deterministic, which would otherwise
// be replayed to every later request for the same key until the entry
// aged out of the LRU. An in-flight entry is left alone: its waiters
// already coalesced on it, and the computing caller will decide what to
// do with the outcome.
func (c *sfMemo[K, V]) Forget(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.done {
		c.lru.Remove(e.elem)
		delete(c.entries, key)
		c.size.Store(int64(len(c.entries)))
	}
}

// Stats returns a snapshot of the memo's counters. It is wait-free (pure
// atomic loads), so reporting and metrics-scrape paths can call it at any
// rate without contending with in-flight Do calls; the counters are read
// individually, so a snapshot taken mid-burst may be slightly torn
// between fields (e.g. a hit counted whose entry-touch is not yet
// reflected elsewhere), which any monitoring consumer already tolerates.
func (c *sfMemo[K, V]) Stats() MemoStats {
	return MemoStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		InFlight:  int(c.inFlight.Load()),
		Size:      int(c.size.Load()),
	}
}

// Reset drops every completed entry and zeroes the counters, returning
// the memo to its cold state (for tests and the bench harness's memo-cold
// phases). In-flight entries are kept so their waiters still coalesce.
func (c *sfMemo[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.done {
			c.lru.Remove(e.elem)
			delete(c.entries, k)
		}
	}
	c.size.Store(int64(len(c.entries)))
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}
