package experiments

import (
	"container/list"
	"sync"
)

// MemoStats is a point-in-time snapshot of one memo's counters.
type MemoStats struct {
	// Hits counts Do calls that found an existing entry (including ones
	// that waited on an in-flight computation).
	Hits uint64
	// Misses counts Do calls that started a computation.
	Misses uint64
	// Evictions counts completed entries dropped by the LRU bound.
	Evictions uint64
	// InFlight is the number of computations currently running.
	InFlight int
	// Size is the current number of entries (in-flight included).
	Size int
}

// sfMemo is a single-flight, LRU-bounded memo: concurrent Do calls for
// the same key compute once and share the result, and the entry count is
// bounded by evicting the least-recently-used *completed* entry — an
// in-flight entry is never dropped out from under its waiters (which
// would start a second computation of the same key). This generalizes the
// raw-meter memo introduced in PR 1 to any (comparable key, value) pair;
// the raw-meter, random-trace and evaluation-result memos below are all
// instances of it.
//
// Errors are memoized alongside values, mirroring the original behavior:
// a failed computation is not retried until its entry ages out.
type sfMemo[K comparable, V any] struct {
	mu        sync.Mutex
	entries   map[K]*sfEntry[K, V]
	lru       *list.List // front = most recently used
	limit     int
	hits      uint64
	misses    uint64
	evictions uint64
	inFlight  int
}

type sfEntry[K comparable, V any] struct {
	ready chan struct{}
	val   V
	err   error
	// done is set under sfMemo.mu before ready is closed; only done
	// entries are eviction candidates.
	done bool
	key  K
	elem *list.Element
}

func newSFMemo[K comparable, V any](limit int) *sfMemo[K, V] {
	return &sfMemo[K, V]{entries: map[K]*sfEntry[K, V]{}, lru: list.New(), limit: limit}
}

// Do returns the memoized value for key, running compute (without holding
// the memo lock) if no entry exists yet.
func (c *sfMemo[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	c.misses++
	c.inFlight++
	e := &sfEntry[K, V]{ready: make(chan struct{}), key: key}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for len(c.entries) > c.limit {
		var victim *sfEntry[K, V]
		for le := c.lru.Back(); le != nil; le = le.Prev() {
			if cand := le.Value.(*sfEntry[K, V]); cand.done {
				victim = cand
				break
			}
		}
		if victim == nil {
			// Every entry is in flight: tolerate a temporary overshoot
			// rather than evict work in progress.
			break
		}
		c.lru.Remove(victim.elem)
		delete(c.entries, victim.key)
		c.evictions++
	}
	c.mu.Unlock()

	v, err := compute()
	c.mu.Lock()
	e.val, e.err = v, err
	e.done = true
	c.inFlight--
	c.mu.Unlock()
	close(e.ready)
	return v, err
}

// Stats returns a snapshot of the memo's counters.
func (c *sfMemo[K, V]) Stats() MemoStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MemoStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		InFlight:  c.inFlight,
		Size:      len(c.entries),
	}
}

// Reset drops every completed entry and zeroes the counters, returning
// the memo to its cold state (for tests and the bench harness's memo-cold
// phases). In-flight entries are kept so their waiters still coalesce.
func (c *sfMemo[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.done {
			c.lru.Remove(e.elem)
			delete(c.entries, k)
		}
	}
	c.hits, c.misses, c.evictions = 0, 0, 0
}
