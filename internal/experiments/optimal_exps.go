package experiments

import (
	"fmt"

	"buspower/internal/circuit"
	"buspower/internal/coding"
	"buspower/internal/energy"
	"buspower/internal/stats"
	"buspower/internal/wire"
	"buspower/internal/workload"
)

// Optimal-codebook extension experiments.
//
// The paper's transcoders chase the *predictable* fraction of the traffic;
// a complementary line of work fixes the codebook up front and bounds the
// worst case instead: minimal-transition memoryless codes (PAPERS.md #1),
// the Valentini–Chiani optimal transition scheme (#2), practical low-weight
// codes that trade a little optimality for grouped, cheap datapaths (#3),
// and DVS designs that spend the coding headroom on a lower supply rail
// with timing-error correction (#4). These runners race those families on
// the harness's own workloads and push each through the Table-3 crossover
// machinery so every scheme gets a net-energy break-even verdict.
func init() {
	register(Runner{
		ID:    "extopt",
		Title: "Extension: optimal-codebook schemes raced against the paper's coders (register bus)",
		Run:   runExtOpt,
	})
	register(Runner{
		ID:    "extxover",
		Title: "Extension: net-energy break-even verdicts for the optimal-codebook schemes",
		Run:   runExtXover,
	})
	register(Runner{
		ID:    "extdvs",
		Title: "Extension: DVS rail sweep — coding headroom spent on voltage instead of transitions",
		Run:   runExtDvs,
	})
}

// optRefLenMM is the wire length at which the break-even verdict is
// issued — the paper's §5.4 examples put on-chip global buses at a few
// to a few tens of millimetres; 10mm sits in the band where Table 3's
// own crossovers land.
const optRefLenMM = 10.0

// optAnalysis builds the energy analysis for one of the optimal-codebook
// transcoders. All four map to the enumerative rank/unrank datapath
// (circuit.EnumerativeDesign) sized by their Stages(); the DVS scheme
// additionally rescales the coded side of the ledger to its reduced rail
// and is charged the Razor-style error-detection overhead on every coded
// wire.
func optAnalysis(tech wire.Technology, res coding.Result, tc coding.Transcoder) (energy.Analysis, error) {
	switch t := tc.(type) {
	case *coding.OptMemTranscoder:
		return energy.NewAnalysis(tech, res, circuit.EnumerativeDesign, t.Stages())
	case *coding.VCTranscoder:
		return energy.NewAnalysis(tech, res, circuit.EnumerativeDesign, t.Stages())
	case *coding.LowWeightTranscoder:
		return energy.NewAnalysis(tech, res, circuit.EnumerativeDesign, t.Stages())
	case *coding.DVSTranscoder:
		a, err := energy.NewAnalysis(tech, res, circuit.EnumerativeDesign, t.Stages())
		if err != nil {
			return energy.Analysis{}, err
		}
		ec, err := circuit.DVSOverheadPJ(tech, t.BusWidth())
		if err != nil {
			return energy.Analysis{}, err
		}
		return a.WithVoltageScale(t.VoltageScale(), ec), nil
	}
	return energy.Analysis{}, fmt.Errorf("experiments: %s is not an optimal-codebook transcoder", tc.Name())
}

// runExtOpt races the four optimal-codebook families against two of the
// harness's established coders (bus-invert and an 8-entry window) on the
// register data bus. The fixed codebooks guarantee their transition bound
// on every cycle but cannot exploit value locality — the table shows how
// much that guarantee costs against predictors on real traffic.
func runExtOpt(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "extopt",
		Title:   "Optimal-codebook schemes vs prediction on the register bus",
		Columns: []string{"benchmark", "scheme", "coded_wires", "energy_removed_pct"},
	}
	specs := []string{
		"optmem:extra=2", "vc:extra=2", "lowweight:groups=4,extra=1",
		"dvs:extra=2,vdd=80", "businvert", "window:entries=8",
	}
	names := workload.Names()
	if cfg.Quick {
		names = names[:4]
	}
	err := gatherRows(t, cfg, len(names), func(i int, out *Table) error {
		name := names[i]
		tr, err := busTrace(name, "reg", cfg)
		if err != nil {
			return err
		}
		raw, err := rawMeterFor(name, "reg", cfg)
		if err != nil {
			return err
		}
		points := make([]gridPoint, len(specs))
		widths := make([]int, len(specs))
		for k, spec := range specs {
			tc, err := coding.BuildScheme(spec)
			if err != nil {
				return err
			}
			points[k] = gridPoint{tc: tc, lambda: evalLambda}
			widths[k] = tc.NewEncoder().BusWidth()
		}
		results, err := evalGridPoints(points, workloadTraceID(name, "reg", cfg), tr, raw, cfg)
		if err != nil {
			return err
		}
		for k, res := range results {
			out.AddRow(name, points[k].tc.Name(), widths[k], 100*res.EnergyRemoved())
		}
		return nil
	})
	return t, err
}

// runExtXover extends the Table 3 crossover analysis to the four new
// families: per (scheme, technology) it reports the median activity
// savings, the median normalized total energy at the 10mm reference
// length, the median break-even length, and the resulting verdict.
// Activity removed on the wires only pays if it covers the enumerative
// datapath's own energy — the same ledger the paper applies to its
// window design.
func runExtXover(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "extxover",
		Title: "Break-even verdicts for the optimal-codebook schemes (register bus, 10mm reference)",
		Columns: []string{"scheme", "technology", "median_savings_pct",
			"median_net_ratio_10mm", "median_crossover_mm", "verdict"},
	}
	specs := []string{
		"optmem:extra=2", "vc:extra=2", "lowweight:groups=4,extra=1",
		"dvs:extra=2,vdd=80",
	}
	names := workload.Names()
	if cfg.Quick {
		names = names[:3]
	}
	techs := wire.Technologies()
	type unit struct {
		spec string
		tech wire.Technology
	}
	var units []unit
	for _, spec := range specs {
		for _, tech := range techs {
			units = append(units, unit{spec, tech})
		}
	}
	err := gatherRows(t, cfg, len(units), func(i int, out *Table) error {
		spec, tech := units[i].spec, units[i].tech
		tc, err := coding.BuildScheme(spec)
		if err != nil {
			return err
		}
		var ev coding.Evaluator
		var savings, ratios, xovers []float64
		for _, name := range names {
			tr, err := busTrace(name, "reg", cfg)
			if err != nil {
				return err
			}
			raw, err := rawMeterFor(name, "reg", cfg)
			if err != nil {
				return err
			}
			// The evaluation memo collapses the technology axis: the same
			// (transcoder, trace, Λ) measurement serves all three nodes.
			res, err := evalResult(&ev, tc, workloadTraceID(name, "reg", cfg), tr, evalLambda, raw, cfg)
			if err != nil {
				return err
			}
			a, err := optAnalysis(tech, res, tc)
			if err != nil {
				return err
			}
			savings = append(savings, 100*a.EnergyRemovedFraction())
			ratios = append(ratios, a.NormalizedTotal(optRefLenMM))
			xovers = append(xovers, a.CrossoverMM())
		}
		verdict := "costs"
		if stats.Median(ratios) < 1 {
			verdict = "saves"
		}
		out.AddRow(spec, tech.Name, stats.Median(savings),
			stats.Median(ratios), stats.Median(xovers), verdict)
		return nil
	})
	return t, err
}

// runExtDvs sweeps the DVS scheme's supply rail at 0.13µm. Lowering Vdd
// buys quadratic dynamic savings on the coded wires but pushes the
// timing-error rate up the exponential wall, charging retransmits and
// error-correction energy back against the ledger (PAPERS.md #4). The
// wall sits just below the grammar's 50% floor, so the sweep shows the
// approach to it: quadratic wins still outpacing the error tax. The rail
// is deliberately excluded from the scheme's ConfigKey: the coded wire
// stream is identical at every Vdd, so one evaluation serves the whole
// sweep and only the energy analysis varies.
func runExtDvs(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "extdvs",
		Title: "DVS rail sweep at 0.13µm (register bus, 10mm reference)",
		Columns: []string{"vdd_pct", "voltage_scale", "timing_error_rate",
			"median_savings_pct", "median_net_ratio_10mm", "median_crossover_mm"},
	}
	vdds := []int{100, 90, 80, 70, 60}
	names := workload.Names()
	if cfg.Quick {
		vdds = []int{100, 80, 60}
		names = names[:3]
	}
	tech := wire.Tech130
	err := gatherRows(t, cfg, len(vdds), func(i int, out *Table) error {
		vdd := vdds[i]
		tc, err := coding.NewDVS(busWidth, 2, vdd)
		if err != nil {
			return err
		}
		var ev coding.Evaluator
		var savings, ratios, xovers []float64
		for _, name := range names {
			tr, err := busTrace(name, "reg", cfg)
			if err != nil {
				return err
			}
			raw, err := rawMeterFor(name, "reg", cfg)
			if err != nil {
				return err
			}
			res, err := evalResult(&ev, tc, workloadTraceID(name, "reg", cfg), tr, evalLambda, raw, cfg)
			if err != nil {
				return err
			}
			a, err := optAnalysis(tech, res, tc)
			if err != nil {
				return err
			}
			savings = append(savings, 100*a.EnergyRemovedFraction())
			ratios = append(ratios, a.NormalizedTotal(optRefLenMM))
			xovers = append(xovers, a.CrossoverMM())
		}
		s := float64(vdd) / 100
		out.AddRow(vdd, s, energy.TimingErrorRate(s),
			stats.Median(savings), stats.Median(ratios), stats.Median(xovers))
		return nil
	})
	return t, err
}
