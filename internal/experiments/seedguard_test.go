package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"
)

// seedGoldenSHA256 pins the golden fixtures that existed before the
// optimal-codebook extension (extopt/extxover/extdvs) landed. The golden
// conformance test pins experiment *output* against the fixtures; this
// guard pins the fixtures themselves, so a -update run that silently
// perturbs a pre-existing table — a formatting tweak, an accidental
// change to shared evaluation machinery, a reordered row — cannot slip
// through by regenerating its own expectation. Changing one of these
// hashes is a deliberate, reviewed act of re-baselining, not a side
// effect of adding a new experiment.
var seedGoldenSHA256 = map[string]string{
	"extaddr":  "9d9617124f596b78a37e51b79d6af31c0ad302bf910220185559c8f866d90a86",
	"extctx":   "8ddf78b21d6a8cae0940bafef5ddcdcdbfdb0c8e9c6050181d195afa7b0f34aa",
	"extscale": "5032a93182c1edbbde742db4ab6d05359929d649cdeecaba78a42342426330cb",
	"extvlc":   "ed5d54e587e33d1143bf377aca0020a7ed4339b49c9e3ec3302ac624aee2fd39",
	"fig5":     "e1bc338459fb17bf78b285dba9580ce9ed05b88e7324df0bcc4699037a12c8f4",
	"fig6":     "36f41bda73307421adc63ddb6cc31a132e63a5c9f6925f5649a17f5c29bd9c7b",
	"fig7":     "18b3d639e89dd861d93125f1230c7dff3ace37647f0ddabde52828030454753f",
	"fig8":     "b5ffa1ae2bbc21077ce6c93d9926149a454a22b954b28425e1ea7c73374efe8b",
	"fig15":    "cbd9082e3a4adff1737cd9155e01026b7f49bf8760c79afed8c83d2929a16cb5",
	"fig16":    "8ee7d9218bfcca09164eceab25b0db632dba84af658674e931f89f3a0153c873",
	"fig17":    "ecd94a7d4c096bc32e5fee8f326814f597e28584526a7af4026bb9bcd8fd958b",
	"fig18":    "83a63a93012d46c6cbdb2cbdca5ce0d7edd12420c80a1f4e0d10c62fa0653101",
	"fig19":    "fb007705c8448878f4871732e5fcde9fa5bdad1224c0e510a7784313444c180b",
	"fig20":    "396528da41144ab7dfd92d872cea140277dd93a52012cc3487ed1092b0ccc8c2",
	"fig21":    "6b8432d021dddb7a1e225578a804d6fd7199aa2c3b3abf800cae9f1fb9bca951",
	"fig22":    "7fe2393ab05f6a8e3827a8aa2d4d47a0830cb5423d6b80232777af044439f8c4",
	"fig23":    "2002271af65393240ec64a4642690fae65c638b0aedd9cd50429085d41497226",
	"fig24":    "bfd352c4fe1be13cd313dc501155ee0b75804c8c4666ec2bc9ec7ebca589ef92",
	"fig25":    "7eb95c13ed6aac2768e53d834996e395b4c5835a0a41517210364b43694ec01c",
	"fig26":    "b22e561a7fc3c2ddca6a9108abc1c5ecfb6fca6fe3093fd59149b454fd643db4",
	"fig35":    "8716b33b7193993299b9120944ff22e448fe5bf54233a702d7bfa94528168675",
	"fig36":    "385956e19379031b2aaff5dc807e49b6f29bc30881466f3b2a3b146165181d2b",
	"fig37":    "a4c7728dc8f6fc0b3d4694103bbc0deb628ae0a8a7c645faff1eeb084dd0f9df",
	"fig38":    "278c2221b06bd9f13ce9d71de667d1cd5d915144a2795130514c961c4185228f",
	"table1":   "c15e0ca61d4fc4f450b1db834c0f3b74129592304b8a0559da3c1370921ae9fd",
	"table2":   "2abb62ffcd79881afabe8cadb23e0b1ad1374eeb9d1fea3edd612be156462aee",
	"table3":   "2c33460bdb70fb3f03f2cea754b9c73b2485358fa22ccc5ecdd07f7cbe9af206",
}

// TestSeedGoldenGuard verifies that every pre-extension golden fixture
// is byte-identical to its pinned hash. It reads files only — no
// experiments run — so it is cheap enough to never skip.
func TestSeedGoldenGuard(t *testing.T) {
	for id, want := range seedGoldenSHA256 {
		data, err := os.ReadFile(goldenPath(id))
		if err != nil {
			t.Errorf("seed fixture %s unreadable: %v", id, err)
			continue
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != want {
			t.Errorf("seed fixture %s changed: sha256 %s, pinned %s\n"+
				"pre-existing quick-mode tables must stay byte-identical; if this change is deliberate, re-pin the hash", id, got, want)
		}
	}
}
