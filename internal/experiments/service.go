package experiments

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"buspower/internal/bus"
	"buspower/internal/coding"
	"buspower/internal/workload"
)

// This file is the request-shaped entry point the serving layer calls:
// one EvalRequest in, one EvalResponse out, computed through the same
// memoized machinery the experiment runners use (trace cache, shared
// raw-bus meters, the single-flight evaluation-result memo), so a
// repeated request is near-free and a served answer is bit-identical to
// what the CLI path computes for the same inputs.

// Request-side resource caps. The entry point fronts a network API, so
// every axis that scales work or memory is bounded here regardless of
// what transport-level limits the server applies.
const (
	// MaxRequestInstructions caps the per-request simulated instruction
	// count for named-workload sources.
	MaxRequestInstructions = 5_000_000
	// MaxRequestValues caps the captured/submitted/synthesized trace
	// length (values are 8 bytes each, so this is a 32 MiB ceiling).
	MaxRequestValues = 4 << 20
)

// EvalRequest describes one transcoder evaluation over one value stream.
// Exactly one source must be set: a named SPEC-analog workload (Workload
// + Bus), a uniformly random stream (Random values, the paper's
// traditional baseline), or an inline submitted trace (Values).
type EvalRequest struct {
	// Workload names a registered benchmark (see workload.Names); Bus
	// selects its captured stream: "reg", "mem" or "addr".
	Workload string `json:"workload,omitempty"`
	Bus      string `json:"bus,omitempty"`
	// Random asks for the shared uniformly random trace of this length.
	Random int `json:"random,omitempty"`
	// Values is an inline submitted trace (each value is masked to the
	// scheme's data width on evaluation).
	Values []uint64 `json:"values,omitempty"`

	// Scheme is the transcoder configuration in coding.SchemeSpec grammar,
	// e.g. "window:entries=8" or "context:table=64,sr=8". ParseEvalRequest
	// rewrites it to canonical form.
	Scheme string `json:"scheme"`
	// Lambda is the coupling ratio Λ the meters are read at (default 1).
	Lambda float64 `json:"lambda,omitempty"`
	// Verify is the decoder round-trip policy: "full", "sampled[:N]" or
	// "off" (default "sampled"; results are bit-identical under all).
	Verify string `json:"verify,omitempty"`

	// Quick selects the reduced simulation bounds (QuickConfig) as the
	// base for named-workload sources; MaxInstructions/MaxBusValues
	// override individual bounds. All are ignored for random and inline
	// sources.
	Quick           bool   `json:"quick,omitempty"`
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	MaxBusValues    int    `json:"max_bus_values,omitempty"`
}

// BusStats summarizes one bus's metered activity.
type BusStats struct {
	// Width is the bus width in wires.
	Width int `json:"width"`
	// Cycles is the number of recorded bus states (the power-up state
	// included).
	Cycles uint64 `json:"cycles"`
	// Transitions is Σλ_n, the total wire self-transitions (eq. 2).
	Transitions uint64 `json:"transitions"`
	// Couplings is Σψ_n, the total adjacent-pair coupling events (eq. 3).
	Couplings uint64 `json:"couplings"`
	// Cost is the Λ-weighted activity: Transitions + Λ·Couplings.
	Cost float64 `json:"cost"`
	// CostPerCycle is Cost divided by the switching cycles.
	CostPerCycle float64 `json:"cost_per_cycle"`
}

func busStats(m *bus.Meter, lambda float64) BusStats {
	return BusStats{
		Width:        m.Width(),
		Cycles:       m.Cycles(),
		Transitions:  m.Transitions(),
		Couplings:    m.Couplings(),
		Cost:         m.Cost(lambda),
		CostPerCycle: m.CostPerCycle(lambda),
	}
}

// EvalResponse is the result of one EvaluateRequest call.
type EvalResponse struct {
	// Scheme is the transcoder's name; ConfigKey its full canonical
	// configuration (the memo identity).
	Scheme    string `json:"scheme"`
	ConfigKey string `json:"config_key"`
	// Source identifies the evaluated stream, e.g. "workload:li/reg",
	// "random:25000" or "inline:3f51…/w32".
	Source string `json:"source"`
	// Lambda is the coupling ratio the costs below are weighted with.
	Lambda float64 `json:"lambda"`
	// Verify is the canonical verification policy that was applied.
	Verify string `json:"verify"`
	// Raw and Coded are the un-encoded and coded buses' activity.
	Raw   BusStats `json:"raw"`
	Coded BusStats `json:"coded"`
	// EnergyRemovedPct is the paper's normalized energy removed, in
	// percent (negative when the coding added activity);
	// EnergyRemainingPct is its complement (CodedCost/RawCost·100).
	EnergyRemovedPct   float64 `json:"energy_removed_pct"`
	EnergyRemainingPct float64 `json:"energy_remaining_pct"`
	// Ops counts the encoder's §5 hardware operations, when reported.
	Ops coding.OpStats `json:"ops"`
}

// ParseEvalRequest decodes, validates and canonicalizes a JSON-encoded
// EvalRequest. Unknown fields are rejected. On success the returned
// request is in canonical form: re-encoding it with encoding/json and
// parsing that yields an identical request (the property
// FuzzParseEvalRequest proves), so canonical requests are usable as
// cache identities.
func ParseEvalRequest(data []byte) (EvalRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req EvalRequest
	if err := dec.Decode(&req); err != nil {
		return EvalRequest{}, fmt.Errorf("experiments: bad eval request: %w", err)
	}
	// Exactly one JSON value, nothing trailing.
	if dec.More() {
		return EvalRequest{}, fmt.Errorf("experiments: bad eval request: trailing data after JSON object")
	}
	if err := req.normalize(); err != nil {
		return EvalRequest{}, err
	}
	return req, nil
}

// normalize validates the request in place and rewrites Scheme and
// Verify to their canonical spellings.
func (r *EvalRequest) normalize() error {
	sources := 0
	if r.Workload != "" || r.Bus != "" {
		sources++
	}
	if r.Random != 0 {
		sources++
	}
	if len(r.Values) != 0 {
		sources++
	}
	if sources != 1 {
		return fmt.Errorf("experiments: eval request needs exactly one source (workload+bus, random, or values), got %d", sources)
	}
	switch {
	case r.Workload != "" || r.Bus != "":
		if r.Workload == "" || r.Bus == "" {
			return fmt.Errorf("experiments: workload source needs both workload and bus")
		}
		if _, err := workload.ByName(r.Workload); err != nil {
			return err
		}
		switch r.Bus {
		case "reg", "mem", "addr":
		default:
			return fmt.Errorf("experiments: unknown bus %q (want reg, mem or addr)", r.Bus)
		}
		if r.MaxInstructions > MaxRequestInstructions {
			return fmt.Errorf("experiments: max_instructions %d exceeds cap %d", r.MaxInstructions, MaxRequestInstructions)
		}
		if r.MaxBusValues < 0 || r.MaxBusValues > MaxRequestValues {
			return fmt.Errorf("experiments: max_bus_values %d outside [0, %d]", r.MaxBusValues, MaxRequestValues)
		}
	case r.Random != 0:
		if r.Random < 0 || r.Random > MaxRequestValues {
			return fmt.Errorf("experiments: random length %d outside [1, %d]", r.Random, MaxRequestValues)
		}
	default:
		if len(r.Values) > MaxRequestValues {
			return fmt.Errorf("experiments: %d submitted values exceed cap %d", len(r.Values), MaxRequestValues)
		}
	}
	if r.Random != 0 || len(r.Values) != 0 {
		// Simulation bounds only apply to workload sources; forbid them
		// elsewhere so a canonical request has no dead fields.
		if r.Quick || r.MaxInstructions != 0 || r.MaxBusValues != 0 {
			return fmt.Errorf("experiments: quick/max_instructions/max_bus_values only apply to workload sources")
		}
	}
	if math.IsNaN(r.Lambda) || math.IsInf(r.Lambda, 0) || r.Lambda < 0 {
		return fmt.Errorf("experiments: lambda %v is not a finite non-negative number", r.Lambda)
	}
	if r.Lambda == 0 {
		r.Lambda = evalLambda
	}
	spec, err := coding.ParseSchemeSpec(r.Scheme)
	if err != nil {
		return err
	}
	r.Scheme = spec.String()
	if r.Verify == "" {
		r.Verify = "sampled"
	}
	policy, err := coding.ParseVerifyPolicy(r.Verify)
	if err != nil {
		return err
	}
	r.Verify = policy.String()
	// "sampled:64" is the default period's canonical String form; keep the
	// shorter spelling stable under re-parsing.
	if r.Verify == coding.VerifySampled(0).String() {
		r.Verify = "sampled"
	}
	return nil
}

// runConfig resolves the simulation bounds for a workload source.
func (r *EvalRequest) runConfig() workload.RunConfig {
	base := DefaultConfig()
	if r.Quick {
		base = QuickConfig()
	}
	run := base.Run
	if r.MaxInstructions > 0 {
		run.MaxInstructions = r.MaxInstructions
	}
	if r.MaxBusValues > 0 {
		run.MaxBusValues = r.MaxBusValues
	}
	return run
}

// sourceID derives the request's memo trace identity and display name.
func (r *EvalRequest) sourceID(width int) (traceID, string) {
	switch {
	case r.Workload != "":
		id := traceID{source: r.Workload, bus: r.Bus, run: r.runConfig()}
		return id, "workload:" + r.Workload + "/" + r.Bus
	case r.Random != 0:
		return randomTraceID(r.Random), "random:" + strconv.Itoa(r.Random)
	default:
		// Inline traces are content-addressed so a resubmitted trace hits
		// the eval memo. The data width is part of the identity because
		// the shared raw meter is measured at it.
		h := sha256.New()
		var b [8]byte
		for _, v := range r.Values {
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
			h.Write(b[:])
		}
		sum := hex.EncodeToString(h.Sum(nil)[:12])
		name := fmt.Sprintf("inline:%s/w%d", sum, width)
		return traceID{source: name, n: len(r.Values)}, name
	}
}

// RequestKey derives a request's canonical cluster-wide identity: the
// SHA-256 (hex) of its canonical JSON encoding. The request must be in
// canonical form (as ParseEvalRequest returns); two requests describing
// the same evaluation — however their JSON was originally spelled — get
// the same key. The serving layer's consistent-hash ring shards the
// eval-result state on this key, so every replica derives the same
// owner without coordination.
func RequestKey(req EvalRequest) (string, error) {
	if err := req.normalize(); err != nil {
		return "", err
	}
	data, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// EvaluateRequest answers one evaluation request through the shared
// memos: the trace comes from the two-layer trace cache (workload
// sources) or the random/inline fast paths, the raw-bus meter and the
// whole evaluation Result are memoized single-flight, and concurrent
// identical requests coalesce into one computation. ctx is checked
// between the trace-fetch and evaluation stages; requests already
// answerable from the memo never fetch a trace at all.
//
// The request must be in canonical form (as ParseEvalRequest returns);
// EvaluateRequest normalizes defensively and rejects invalid requests.
func EvaluateRequest(ctx context.Context, req EvalRequest) (*EvalResponse, error) {
	if err := req.normalize(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := coding.ParseSchemeSpec(req.Scheme)
	if err != nil {
		return nil, err
	}
	tc, err := spec.Build()
	if err != nil {
		return nil, err
	}
	policy, err := coding.ParseVerifyPolicy(req.Verify)
	if err != nil {
		return nil, err
	}
	id, sourceName := req.sourceID(tc.DataWidth())
	cfg := Config{Verify: policy}
	if req.Workload != "" {
		cfg.Run = req.runConfig()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var ev coding.Evaluator
	res, err := evalResultKeyed(&ev, tc, id, req.Lambda, cfg, func() ([]uint64, *bus.Meter, error) {
		return fetchRequestTrace(ctx, req, tc.DataWidth(), id, cfg)
	})
	if err != nil {
		return nil, err
	}
	return &EvalResponse{
		Scheme:             res.Scheme,
		ConfigKey:          coding.ConfigKey(tc),
		Source:             sourceName,
		Lambda:             req.Lambda,
		Verify:             req.Verify,
		Raw:                busStats(res.Raw, req.Lambda),
		Coded:              busStats(res.Coded, req.Lambda),
		EnergyRemovedPct:   100 * res.EnergyRemoved(),
		EnergyRemainingPct: 100 * res.EnergyRemaining(),
		Ops:                res.Ops,
	}, nil
}

// fetchRequestTrace resolves the request's trace and (when available at
// the scheme's width) its shared raw-bus meter. It runs only on an
// eval-memo miss.
func fetchRequestTrace(ctx context.Context, req EvalRequest, width int, id traceID, cfg Config) ([]uint64, *bus.Meter, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	switch {
	case req.Workload != "":
		tr, err := busTrace(req.Workload, req.Bus, cfg)
		if err != nil {
			return nil, nil, err
		}
		if width != busWidth {
			// The shared raw-meter memo is keyed for the experiments'
			// 32-bit buses; other widths measure inline.
			return tr, nil, nil
		}
		raw, err := rawMeterFor(req.Workload, req.Bus, cfg)
		return tr, raw, err
	case req.Random != 0:
		b := randomBundleFor(req.Random)
		if width != busWidth {
			return b.trace, nil, nil
		}
		return b.trace, b.meter, nil
	default:
		raw, err := rawMeterMemo.Do(id, func() (*bus.Meter, error) {
			return coding.MeasureRawValues(width, req.Values), nil
		})
		return req.Values, raw, err
	}
}
