package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"buspower/internal/coding"
	"buspower/internal/workload"
)

// TestEvaluateRequestMatchesCLIPath: a served evaluation must be
// bit-identical to what the direct (CLI experiment) path computes for
// the same workload, scheme and Λ.
func TestEvaluateRequestMatchesCLIPath(t *testing.T) {
	req := EvalRequest{
		Workload: "li", Bus: "reg",
		Scheme: "window:entries=8",
		Quick:  true,
	}
	resp, err := EvaluateRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	cfg := QuickConfig()
	tr, err := busTrace("li", "reg", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := coding.NewWindow(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coding.Evaluate(tc, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Raw.Transitions != want.Raw.Transitions() || resp.Raw.Couplings != want.Raw.Couplings() {
		t.Errorf("raw stats diverge: got %+v, want %d/%d", resp.Raw, want.Raw.Transitions(), want.Raw.Couplings())
	}
	if resp.Coded.Transitions != want.Coded.Transitions() || resp.Coded.Couplings != want.Coded.Couplings() {
		t.Errorf("coded stats diverge: got %+v, want %d/%d", resp.Coded, want.Coded.Transitions(), want.Coded.Couplings())
	}
	if resp.Ops != want.Ops {
		t.Errorf("op stats diverge: got %+v, want %+v", resp.Ops, want.Ops)
	}
	if got, want := resp.EnergyRemovedPct, 100*want.EnergyRemoved(); got != want {
		t.Errorf("energy removed %v, want %v", got, want)
	}
	if resp.Scheme != "window-8" || resp.Source != "workload:li/reg" {
		t.Errorf("labels: %q / %q", resp.Scheme, resp.Source)
	}
}

// TestEvaluateRequestMemoizes: a repeated request (including a
// resubmitted inline trace, which is content-addressed) must be answered
// from the evaluation-result memo.
func TestEvaluateRequestMemoizes(t *testing.T) {
	vals := make([]uint64, 2048)
	for i := range vals {
		vals[i] = uint64(i%97) * 0x9e3779b9
	}
	req := EvalRequest{Values: vals, Scheme: "context:table=16,sr=8"}
	first, err := EvaluateRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	before := EvalMemoStats()
	// Resubmit the same values in a fresh slice: the content address, not
	// the slice identity, must key the memo.
	again := EvalRequest{Values: append([]uint64(nil), vals...), Scheme: "context:table=16,sr=8"}
	second, err := EvaluateRequest(context.Background(), again)
	if err != nil {
		t.Fatal(err)
	}
	after := EvalMemoStats()
	if after.Misses != before.Misses {
		t.Errorf("resubmission recomputed: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Errorf("resubmission did not hit the memo: hits %d -> %d", before.Hits, after.Hits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("memoized response diverges:\nfirst  %+v\nsecond %+v", first, second)
	}
}

func TestEvaluateRequestHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateRequest(ctx, EvalRequest{Workload: "go", Bus: "mem", Scheme: "raw", Quick: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context did not fail the request: %v", err)
	}
}

func TestParseEvalRequestValidates(t *testing.T) {
	cases := []struct {
		json    string
		errLike string
	}{
		{`{`, "bad eval request"},
		{`{} {}`, "trailing data"},
		{`{"scheme":"raw"}`, "exactly one source"},
		{`{"workload":"li","bus":"reg","random":5,"scheme":"raw"}`, "exactly one source"},
		{`{"workload":"li","scheme":"raw"}`, "both workload and bus"},
		{`{"workload":"nope","bus":"reg","scheme":"raw"}`, "unknown benchmark"},
		{`{"workload":"li","bus":"dbus","scheme":"raw"}`, "unknown bus"},
		{`{"workload":"li","bus":"reg","scheme":"frobnicate"}`, "unknown scheme kind"},
		{`{"workload":"li","bus":"reg","scheme":"raw","verify":"never"}`, "unknown verification policy"},
		{`{"workload":"li","bus":"reg","scheme":"raw","lambda":-2}`, "finite non-negative"},
		{`{"workload":"li","bus":"reg","scheme":"raw","max_instructions":6000000}`, "exceeds cap"},
		{`{"workload":"li","bus":"reg","scheme":"raw","max_bus_values":-1}`, "outside"},
		{`{"random":-5,"scheme":"raw"}`, "outside"},
		{`{"random":9000000,"scheme":"raw"}`, "outside"},
		{`{"random":100,"quick":true,"scheme":"raw"}`, "only apply to workload"},
		{`{"values":[1,2],"max_instructions":5,"scheme":"raw"}`, "only apply to workload"},
		{`{"values":[1,2],"scheme":"raw","unknown_field":1}`, "unknown field"},
	}
	for _, c := range cases {
		if _, err := ParseEvalRequest([]byte(c.json)); err == nil {
			t.Errorf("ParseEvalRequest(%s) succeeded, want error containing %q", c.json, c.errLike)
		} else if !strings.Contains(err.Error(), c.errLike) {
			t.Errorf("ParseEvalRequest(%s) error %q does not contain %q", c.json, err, c.errLike)
		}
	}
}

// TestParseEvalRequestCanonicalizes: defaults are materialized and the
// scheme/verify spellings rewritten so the parsed form is a stable cache
// identity (encode→parse is the identity on canonical requests).
func TestParseEvalRequestCanonicalizes(t *testing.T) {
	req, err := ParseEvalRequest([]byte(`{"random":100,"scheme":" window : entries=8 ","verify":"sampled:64"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Scheme != "window:entries=8" || req.Verify != "sampled" || req.Lambda != 1 {
		t.Fatalf("not canonicalized: %+v", req)
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseEvalRequest(data)
	if err != nil {
		t.Fatalf("canonical form did not reparse: %v", err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("canonical round-trip drifted:\n%+v\n%+v", req, back)
	}
}

// TestEvaluateRequestRandomMatchesSharedTrace: the random source serves
// the exact shared trace the experiments use.
func TestEvaluateRequestRandomMatchesSharedTrace(t *testing.T) {
	n := 4096
	resp, err := EvaluateRequest(context.Background(), EvalRequest{Random: n, Scheme: "businvert"})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.RandomTrace(n, randomSeed)
	tc, err := coding.NewBusInvert(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coding.Evaluate(tc, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Coded.Transitions != want.Coded.Transitions() {
		t.Errorf("random-source transitions %d, want %d", resp.Coded.Transitions, want.Coded.Transitions())
	}
}
