package experiments

import (
	"sync"

	"buspower/internal/bus"
	"buspower/internal/coding"
	"buspower/internal/workload"
)

// The raw-bus measurement of a (source, bus) pair is identical for every
// scheme and Λ a sweep evaluates on it (Λ enters only when the meter is
// read), so the runners share one Σ-only meter per pair through this
// single-flight memo instead of re-metering the trace once per scheme.
// Like workload.Traces, concurrent callers for the same key measure once
// and share the result.
type rawMeterKey struct {
	name string
	bus  string
	n    int // random-trace length; 0 for workload buses
	run  workload.RunConfig
}

type rawMeterEntry struct {
	ready chan struct{}
	m     *bus.Meter
	err   error
}

var (
	rawMeterMu    sync.Mutex
	rawMeterMemo  = map[rawMeterKey]*rawMeterEntry{}
	rawMeterLimit = 128
)

func rawMeterMemoized(key rawMeterKey, measure func() (*bus.Meter, error)) (*bus.Meter, error) {
	rawMeterMu.Lock()
	e, ok := rawMeterMemo[key]
	if ok {
		rawMeterMu.Unlock()
		<-e.ready
		return e.m, e.err
	}
	e = &rawMeterEntry{ready: make(chan struct{})}
	if len(rawMeterMemo) > rawMeterLimit {
		rawMeterMemo = map[rawMeterKey]*rawMeterEntry{}
	}
	rawMeterMemo[key] = e
	rawMeterMu.Unlock()
	e.m, e.err = measure()
	close(e.ready)
	return e.m, e.err
}

// rawMeterFor returns the shared raw-bus meter of one workload bus at the
// experiments' data width.
func rawMeterFor(name, busName string, cfg Config) (*bus.Meter, error) {
	return rawMeterMemoized(rawMeterKey{name: name, bus: busName, run: cfg.Run}, func() (*bus.Meter, error) {
		tr, err := busTrace(name, busName, cfg)
		if err != nil {
			return nil, err
		}
		return coding.MeasureRawValues(busWidth, tr), nil
	})
}

// randomRawMeter returns the shared raw-bus meter of the n-value random
// comparison trace (randomSeed is fixed, so n fully identifies it).
func randomRawMeter(n int) *bus.Meter {
	m, _ := rawMeterMemoized(rawMeterKey{name: "random", n: n}, func() (*bus.Meter, error) {
		return coding.MeasureRawValues(busWidth, workload.RandomTrace(n, randomSeed)), nil
	})
	return m
}
