package experiments

import (
	"fmt"

	"buspower/internal/bus"
	"buspower/internal/coding"
	"buspower/internal/workload"
)

// traceID names one evaluation input stream: a workload bus trace
// (source + bus + run bounds) or the synthetic random comparison trace
// (source "random" + length; randomSeed is fixed, so n fully identifies
// it). It is the trace component of every memo key below.
type traceID struct {
	source string
	bus    string
	n      int // random-trace length; 0 for workload buses
	run    workload.RunConfig
}

func workloadTraceID(name, busName string, cfg Config) traceID {
	return traceID{source: name, bus: busName, run: cfg.Run}
}

func randomTraceID(n int) traceID {
	return traceID{source: "random", n: n}
}

// The raw-bus measurement of a trace is identical for every scheme and Λ
// a sweep evaluates on it (Λ enters only when the meter is read), so the
// runners share one Σ-only meter per trace through this single-flight
// memo instead of re-metering the trace once per scheme.
var rawMeterMemo = newSFMemo[traceID, *bus.Meter](128)

// rawMeterFor returns the shared raw-bus meter of one workload bus at the
// experiments' data width.
func rawMeterFor(name, busName string, cfg Config) (*bus.Meter, error) {
	return rawMeterMemo.Do(workloadTraceID(name, busName, cfg), func() (*bus.Meter, error) {
		tr, err := busTrace(name, busName, cfg)
		if err != nil {
			return nil, err
		}
		return coding.MeasureRawValues(busWidth, tr), nil
	})
}

// randomBundle pairs the n-value random comparison trace with its raw-bus
// meter, so the runners neither regenerate the values nor re-meter them.
type randomBundle struct {
	trace []uint64
	meter *bus.Meter
}

var randomMemo = newSFMemo[int, randomBundle](8)

func randomBundleFor(n int) randomBundle {
	b, _ := randomMemo.Do(n, func() (randomBundle, error) {
		tr := workload.RandomTrace(n, randomSeed)
		return randomBundle{trace: tr, meter: coding.MeasureRawValues(busWidth, tr)}, nil
	})
	return b
}

// randomTraceFor returns the shared n-value random comparison trace.
func randomTraceFor(n int) []uint64 { return randomBundleFor(n).trace }

// randomRawMeter returns the shared raw-bus meter of that trace.
func randomRawMeter(n int) *bus.Meter { return randomBundleFor(n).meter }

// resultKey identifies one transcoder evaluation: what was encoded
// (trace), with which exact codec configuration (the canonical
// coding.ConfigKey string — names alone under-specify, e.g. the context
// coder's divide period), under which verification policy. Every policy
// yields bit-identical Results, but keeping the policy in the key means
// a -verify=full run re-proves every evaluation instead of inheriting
// sampled-run entries.
//
// The metered Λ is deliberately NOT part of the key: an encoder's output
// stream depends only on its own configuration (including its assumed Λ,
// which ConfigKey captures), never on the Λ the meters are read at — the
// same invariant the grid engine already exploits when it fans
// equal-config cells of a Λ sweep out from one encode. The memoized
// Result therefore carries λ-independent meters and counts, and each
// retrieval stamps its own Lambda before use, so one encode serves every
// Λ any experiment asks for.
type resultKey struct {
	config string
	trace  traceID
	verify string
}

// resultMemo shares whole evaluation Results across experiments: the
// figure-24/25 context sweeps, the energy figures and the extension
// tables all re-evaluate overlapping (transcoder, trace, Λ) points, and
// within one invocation each point is computed once. It subsumes the
// window-result memo the energy experiments previously kept for
// themselves. The full -exp all sweep computes ~1.6k distinct entries;
// 2048 holds them all without mid-run eviction (a Result is one cloned
// meter plus counters, well under 1 KiB).
var resultMemo = newSFMemo[resultKey, coding.Result](2048)

// vlcMemo is the variable-length-coding counterpart: VLC evaluations
// return their own result type (beat-accurate), so they get a small memo
// of their own on the same machinery.
var vlcMemo = newSFMemo[resultKey, coding.VLCResult](64)

// The stateless grid cells (raw, Gray, spatial) meter on a bit-sliced
// transposition of the trace. The transposition depends only on
// (trace identity, width) — content-addressed exactly like the trace
// cache — so grid calls, serve requests and jobs share one build per
// named trace instead of re-transposing it every EvaluateGrid call.
// An entry is ~n/8 bytes per wire (≈0.5 MB for a 120k-cycle 32-wire
// trace); 32 entries bound the cache well under the trace cache's own
// footprint.
type slicedKey struct {
	trace traceID
	width int
}

var slicedMemo = newSFMemo[slicedKey, *bus.SlicedTrace](32)

// slicedProviderFor adapts the sliced-plane cache to
// coding.GridOptions.Sliced for one trace.
func slicedProviderFor(id traceID, tr []uint64) func(int) *bus.SlicedTrace {
	return func(width int) *bus.SlicedTrace {
		s, err := slicedMemo.Do(slicedKey{trace: id, width: width}, func() (*bus.SlicedTrace, error) {
			return bus.NewSlicedTrace(width, tr), nil
		})
		if err != nil {
			return nil
		}
		return s
	}
}

// EvalMemoStats reports the evaluation-result memo's counters.
func EvalMemoStats() MemoStats { return resultMemo.Stats() }

// RawMeterMemoStats reports the shared raw-bus meter memo's counters.
func RawMeterMemoStats() MemoStats { return rawMeterMemo.Stats() }

// SlicedCacheStats reports the sliced-plane cache's counters.
func SlicedCacheStats() MemoStats { return slicedMemo.Stats() }

// ClearEvalMemo returns the evaluation-result memos (fixed-length and
// VLC) and the sliced-plane cache to their cold state (the bench
// harness's memo-cold phase; raw-meter and trace caches are governed
// separately).
func ClearEvalMemo() {
	resultMemo.Reset()
	vlcMemo.Reset()
	slicedMemo.Reset()
	coding.ClearStrideTapeCache()
}

// evalResultKeyed memoizes one transcoder evaluation. fetch returns the
// trace and its shared raw meter (nil to measure inline) and runs only on
// a miss, so hits skip even the trace-cache lookup. On a miss the
// evaluation runs through ev — reusing the caller's sweep-local scratch —
// under cfg.Verify, and the Result's coded meter is detached (Clone) from
// the evaluator before it is retained.
func evalResultKeyed(ev *coding.Evaluator, tc coding.Transcoder, id traceID, lambda float64, cfg Config,
	fetch func() ([]uint64, *bus.Meter, error)) (coding.Result, error) {
	key := resultKey{config: coding.ConfigKey(tc), trace: id, verify: cfg.Verify.String()}
	res, err := resultMemo.Do(key, func() (coding.Result, error) {
		tr, raw, err := fetch()
		if err != nil {
			return coding.Result{}, err
		}
		ev.Use(tc)
		ev.Verify = cfg.Verify
		res, err := ev.Evaluate(tr, lambda, raw)
		if err != nil {
			return coding.Result{}, err
		}
		res.Coded = res.Coded.Clone()
		return res, nil
	})
	res.Lambda = lambda
	// Evaluation errors are deterministic in the key and stay cached;
	// cancellations and per-request timeouts (the serving path) are not a
	// property of the key, and the memo itself un-caches them on
	// completion — later identical requests recompute, and concurrently
	// coalesced waiters re-run instead of inheriting the leader's death.
	return res, err
}

// gridPoint is one (transcoder, Λ) cell of a sweep family evaluated on a
// single trace.
type gridPoint struct {
	tc     coding.Transcoder
	lambda float64
}

// evalGridPoints evaluates a whole family of sweep points on one trace,
// preserving the per-point result-memo contract of evalResult: memoized
// points are served from the cache (Peek — a hit), and every miss is
// batched into a single coding.EvaluateGrid pass over the trace, which
// fans equal-config points out from one encode and bit-slices the
// stateless coders. Each grid result is then published through the memo
// under its own key (recording the miss), so scalar and grid callers
// share one cache and identical hit/miss accounting. Results are
// bit-identical to per-point evalResult calls — the grid engine is
// differentially tested against the scalar evaluator cell by cell.
func evalGridPoints(points []gridPoint, id traceID, tr []uint64, raw *bus.Meter, cfg Config) ([]coding.Result, error) {
	out := make([]coding.Result, len(points))
	keys := make([]resultKey, len(points))
	var missIdx []int
	var cells []coding.GridCell
	for i, p := range points {
		keys[i] = resultKey{config: coding.ConfigKey(p.tc), trace: id, verify: cfg.Verify.String()}
		if res, err, ok := resultMemo.Peek(keys[i]); ok {
			if err != nil {
				return nil, err
			}
			res.Lambda = p.lambda
			out[i] = res
			continue
		}
		missIdx = append(missIdx, i)
		cells = append(cells, coding.GridCell{T: p.tc, Lambda: p.lambda})
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	results, err := coding.EvaluateGridOpts(cells, tr, raw, cfg.Verify,
		coding.GridOptions{Sliced: slicedProviderFor(id, tr)})
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		res := results[j]
		// Cells of one config group share a coded meter; detach each
		// retained copy, exactly as evalResultKeyed does on a miss.
		res.Coded = res.Coded.Clone()
		// Duplicate keys inside one family (e.g. Figure 15's λN=1 point
		// coinciding with the λ1 family) collapse here: the first Do
		// stores, the second hits the fresh entry.
		stored, err := resultMemo.Do(keys[i], func() (coding.Result, error) { return res, nil })
		if err != nil {
			return nil, err
		}
		stored.Lambda = points[i].lambda
		out[i] = stored
	}
	return out, nil
}

// batchTraceInput is one trace of a multi-trace sweep: identity (for
// memo keys), values, and the shared raw meter (nil to measure inline).
type batchTraceInput struct {
	id  traceID
	tr  []uint64
	raw *bus.Meter
}

// evalGridPointsMulti is evalGridPoints fanned out over a whole trace
// suite through coding.EvaluateBatch, which pins one set of transcoder
// scratch (encoder dictionaries, window-family arenas) across the
// traces. The per-point memo contract is identical: per-trace Peek for
// hits, traces with the same miss set batch together (one scratch
// warm-up for the whole suite — the common cold case), odd miss sets
// batch among themselves, and every computed cell publishes under its
// own key. Results are trace-major, aligned with traces × points.
func evalGridPointsMulti(points []gridPoint, traces []batchTraceInput, cfg Config) ([][]coding.Result, error) {
	configs := make([]string, len(points))
	for i, p := range points {
		configs[i] = coding.ConfigKey(p.tc)
	}
	verify := cfg.Verify.String()
	out := make([][]coding.Result, len(traces))
	keys := make([][]resultKey, len(traces))
	missIdx := make([][]int, len(traces))
	groups := make(map[string][]int, 1) // miss-set signature → trace indices
	var order []string
	for ti := range traces {
		bt := &traces[ti]
		out[ti] = make([]coding.Result, len(points))
		keys[ti] = make([]resultKey, len(points))
		var miss []int
		for i, p := range points {
			k := resultKey{config: configs[i], trace: bt.id, verify: verify}
			keys[ti][i] = k
			if res, err, ok := resultMemo.Peek(k); ok {
				if err != nil {
					return nil, err
				}
				res.Lambda = p.lambda
				out[ti][i] = res
				continue
			}
			miss = append(miss, i)
		}
		if len(miss) == 0 {
			continue
		}
		missIdx[ti] = miss
		sig := fmt.Sprint(miss)
		if _, ok := groups[sig]; !ok {
			order = append(order, sig)
		}
		groups[sig] = append(groups[sig], ti)
	}
	for _, sig := range order {
		tis := groups[sig]
		miss := missIdx[tis[0]]
		cells := make([]coding.GridCell, len(miss))
		for j, i := range miss {
			cells[j] = coding.GridCell{T: points[i].tc, Lambda: points[i].lambda}
		}
		bts := make([]coding.BatchTrace, len(tis))
		for j, ti := range tis {
			bts[j] = coding.BatchTrace{
				Values: traces[ti].tr,
				Raw:    traces[ti].raw,
				Sliced: slicedProviderFor(traces[ti].id, traces[ti].tr),
			}
		}
		results, err := coding.EvaluateBatch(cells, bts, cfg.Verify)
		if err != nil {
			return nil, err
		}
		for j, ti := range tis {
			for jj, i := range miss {
				res := results[j][jj]
				res.Coded = res.Coded.Clone()
				stored, err := resultMemo.Do(keys[ti][i], func() (coding.Result, error) { return res, nil })
				if err != nil {
					return nil, err
				}
				stored.Lambda = points[i].lambda
				out[ti][i] = stored
			}
		}
	}
	return out, nil
}

// evalResult is evalResultKeyed for callers that already hold the trace
// and its raw meter.
func evalResult(ev *coding.Evaluator, tc coding.Transcoder, id traceID, tr []uint64, lambda float64, raw *bus.Meter, cfg Config) (coding.Result, error) {
	return evalResultKeyed(ev, tc, id, lambda, cfg, func() ([]uint64, *bus.Meter, error) {
		return tr, raw, nil
	})
}
