package experiments

import (
	"container/list"
	"sync"

	"buspower/internal/bus"
	"buspower/internal/coding"
	"buspower/internal/workload"
)

// The raw-bus measurement of a (source, bus) pair is identical for every
// scheme and Λ a sweep evaluates on it (Λ enters only when the meter is
// read), so the runners share one Σ-only meter per pair through this
// single-flight memo instead of re-metering the trace once per scheme.
// Like workload.Traces, concurrent callers for the same key measure once
// and share the result.
type rawMeterKey struct {
	name string
	bus  string
	n    int // random-trace length; 0 for workload buses
	run  workload.RunConfig
}

type rawMeterEntry struct {
	ready chan struct{}
	m     *bus.Meter
	err   error
	// done is set under rawMeterMu before ready is closed; only done
	// entries are eviction candidates, so a key being measured can never
	// be dropped out from under its waiters (which would start a second
	// measurement of the same trace).
	done bool
	key  rawMeterKey
	elem *list.Element
}

// The memo is bounded by an LRU: rawMeterLRU orders entries front =
// most-recently-used, and eviction walks from the back, skipping
// in-flight entries. (The previous policy flushed the whole map when it
// grew past the limit, which also discarded entries still being
// measured — a caller racing with the flush would re-measure a trace
// that another goroutine was measuring at that moment.)
var (
	rawMeterMu    sync.Mutex
	rawMeterMemo  = map[rawMeterKey]*rawMeterEntry{}
	rawMeterLRU   = list.New()
	rawMeterLimit = 128
)

func rawMeterMemoized(key rawMeterKey, measure func() (*bus.Meter, error)) (*bus.Meter, error) {
	rawMeterMu.Lock()
	if e, ok := rawMeterMemo[key]; ok {
		rawMeterLRU.MoveToFront(e.elem)
		rawMeterMu.Unlock()
		<-e.ready
		return e.m, e.err
	}
	e := &rawMeterEntry{ready: make(chan struct{}), key: key}
	e.elem = rawMeterLRU.PushFront(e)
	rawMeterMemo[key] = e
	for len(rawMeterMemo) > rawMeterLimit {
		var victim *rawMeterEntry
		for le := rawMeterLRU.Back(); le != nil; le = le.Prev() {
			if cand := le.Value.(*rawMeterEntry); cand.done {
				victim = cand
				break
			}
		}
		if victim == nil {
			// Every entry is in flight: tolerate a temporary overshoot
			// rather than evict work in progress.
			break
		}
		rawMeterLRU.Remove(victim.elem)
		delete(rawMeterMemo, victim.key)
	}
	rawMeterMu.Unlock()

	m, err := measure()
	rawMeterMu.Lock()
	e.m, e.err = m, err
	e.done = true
	rawMeterMu.Unlock()
	close(e.ready)
	return m, err
}

// rawMeterFor returns the shared raw-bus meter of one workload bus at the
// experiments' data width.
func rawMeterFor(name, busName string, cfg Config) (*bus.Meter, error) {
	return rawMeterMemoized(rawMeterKey{name: name, bus: busName, run: cfg.Run}, func() (*bus.Meter, error) {
		tr, err := busTrace(name, busName, cfg)
		if err != nil {
			return nil, err
		}
		return coding.MeasureRawValues(busWidth, tr), nil
	})
}

// randomRawMeter returns the shared raw-bus meter of the n-value random
// comparison trace (randomSeed is fixed, so n fully identifies it).
func randomRawMeter(n int) *bus.Meter {
	m, _ := rawMeterMemoized(rawMeterKey{name: "random", n: n}, func() (*bus.Meter, error) {
		return coding.MeasureRawValues(busWidth, workload.RandomTrace(n, randomSeed)), nil
	})
	return m
}
