package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"buspower/internal/bus"
	"buspower/internal/coding"
)

// resetRawMeterMemo gives each test a private memo with its own size
// limit, restoring the package state afterwards.
func resetRawMeterMemo(t *testing.T, limit int) {
	t.Helper()
	rawMeterMu.Lock()
	prevMemo, prevLRU, prevLimit := rawMeterMemo, rawMeterLRU, rawMeterLimit
	rawMeterMemo = map[rawMeterKey]*rawMeterEntry{}
	rawMeterLRU.Init()
	rawMeterLimit = limit
	rawMeterMu.Unlock()
	t.Cleanup(func() {
		rawMeterMu.Lock()
		rawMeterMemo, rawMeterLRU, rawMeterLimit = prevMemo, prevLRU, prevLimit
		rawMeterMu.Unlock()
	})
}

func testMeter(v uint64) func() (*bus.Meter, error) {
	return func() (*bus.Meter, error) {
		return coding.MeasureRawValues(busWidth, []uint64{v, v ^ 0xFF}), nil
	}
}

// The memo must stay bounded, evicting least-recently-used entries one at
// a time instead of flushing wholesale.
func TestRawMeterMemoEvictsLRU(t *testing.T) {
	resetRawMeterMemo(t, 4)
	for i := 0; i < 10; i++ {
		if _, err := rawMeterMemoized(rawMeterKey{name: "k", n: i + 1}, testMeter(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	rawMeterMu.Lock()
	size := len(rawMeterMemo)
	_, oldest := rawMeterMemo[rawMeterKey{name: "k", n: 1}]
	_, newest := rawMeterMemo[rawMeterKey{name: "k", n: 10}]
	rawMeterMu.Unlock()
	if size > 4 {
		t.Fatalf("memo grew to %d entries, limit 4", size)
	}
	if oldest {
		t.Error("least-recently-used entry survived eviction")
	}
	if !newest {
		t.Error("most-recent entry was evicted")
	}
}

// An in-flight measurement must never be evicted: while one goroutine is
// measuring a key, a flood of other keys overflows the memo, and a second
// caller for the in-flight key must still coalesce onto the first
// measurement rather than start its own.
func TestRawMeterMemoKeepsInFlightEntries(t *testing.T) {
	resetRawMeterMemo(t, 2)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	slowKey := rawMeterKey{name: "slow", n: 999}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rawMeterMemoized(slowKey, func() (*bus.Meter, error) {
			calls.Add(1)
			close(started)
			<-release
			return coding.MeasureRawValues(busWidth, []uint64{1}), nil
		})
	}()
	<-started

	// Overflow the memo while slowKey is still measuring.
	for i := 0; i < 8; i++ {
		if _, err := rawMeterMemoized(rawMeterKey{name: "filler", n: i + 1}, testMeter(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	rawMeterMu.Lock()
	_, stillThere := rawMeterMemo[slowKey]
	rawMeterMu.Unlock()
	if !stillThere {
		t.Fatal("in-flight entry was evicted")
	}

	// A second caller for slowKey must wait for the first measurement,
	// not run its own.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rawMeterMemoized(slowKey, func() (*bus.Meter, error) {
			calls.Add(1)
			return coding.MeasureRawValues(busWidth, []uint64{2}), nil
		})
	}()
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("key measured %d times, want 1", n)
	}
}

// Touching an entry refreshes its recency: re-reading the oldest key
// before overflowing must keep it alive while a younger untouched key is
// evicted instead.
func TestRawMeterMemoTouchRefreshesRecency(t *testing.T) {
	resetRawMeterMemo(t, 3)
	for i := 0; i < 3; i++ {
		if _, err := rawMeterMemoized(rawMeterKey{name: "k", n: i + 1}, testMeter(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 1 (the oldest), then insert a fourth key: key 2 is now
	// the LRU and must be the one evicted.
	if _, err := rawMeterMemoized(rawMeterKey{name: "k", n: 1}, testMeter(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := rawMeterMemoized(rawMeterKey{name: "k", n: 4}, testMeter(3)); err != nil {
		t.Fatal(err)
	}
	rawMeterMu.Lock()
	_, touched := rawMeterMemo[rawMeterKey{name: "k", n: 1}]
	_, lru := rawMeterMemo[rawMeterKey{name: "k", n: 2}]
	rawMeterMu.Unlock()
	if !touched {
		t.Error("recently touched entry was evicted")
	}
	if lru {
		t.Error("least-recently-used entry survived")
	}
}
