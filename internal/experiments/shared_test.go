package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"buspower/internal/bus"
	"buspower/internal/coding"
)

func testMeter(v uint64) func() (*bus.Meter, error) {
	return func() (*bus.Meter, error) {
		return coding.MeasureRawValues(busWidth, []uint64{v, v ^ 0xFF}), nil
	}
}

func memoKey(i int) traceID { return traceID{source: "k", n: i} }

// The memo must stay bounded, evicting least-recently-used entries one at
// a time instead of flushing wholesale.
func TestMemoEvictsLRU(t *testing.T) {
	memo := newSFMemo[traceID, *bus.Meter](4)
	for i := 0; i < 10; i++ {
		if _, err := memo.Do(memoKey(i+1), testMeter(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	memo.mu.Lock()
	size := len(memo.entries)
	_, oldest := memo.entries[memoKey(1)]
	_, newest := memo.entries[memoKey(10)]
	memo.mu.Unlock()
	if size > 4 {
		t.Fatalf("memo grew to %d entries, limit 4", size)
	}
	if oldest {
		t.Error("least-recently-used entry survived eviction")
	}
	if !newest {
		t.Error("most-recent entry was evicted")
	}
	st := memo.Stats()
	if st.Misses != 10 || st.Hits != 0 || st.Evictions != 6 || st.Size != 4 || st.InFlight != 0 {
		t.Fatalf("stats %+v, want 10 misses / 0 hits / 6 evictions / size 4 / 0 in flight", st)
	}
}

// An in-flight computation must never be evicted: while one goroutine is
// computing a key, a flood of other keys overflows the memo, and a second
// caller for the in-flight key must still coalesce onto the first
// computation rather than start its own.
func TestMemoKeepsInFlightEntries(t *testing.T) {
	memo := newSFMemo[traceID, *bus.Meter](2)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	slowKey := memoKey(999)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		memo.Do(slowKey, func() (*bus.Meter, error) {
			calls.Add(1)
			close(started)
			<-release
			return coding.MeasureRawValues(busWidth, []uint64{1}), nil
		})
	}()
	<-started

	if st := memo.Stats(); st.InFlight != 1 {
		t.Fatalf("InFlight = %d during computation, want 1", st.InFlight)
	}

	// Overflow the memo while slowKey is still computing.
	for i := 0; i < 8; i++ {
		if _, err := memo.Do(memoKey(i+1), testMeter(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	memo.mu.Lock()
	_, stillThere := memo.entries[slowKey]
	memo.mu.Unlock()
	if !stillThere {
		t.Fatal("in-flight entry was evicted")
	}

	// A second caller for slowKey must wait for the first computation,
	// not run its own.
	wg.Add(1)
	go func() {
		defer wg.Done()
		memo.Do(slowKey, func() (*bus.Meter, error) {
			calls.Add(1)
			return coding.MeasureRawValues(busWidth, []uint64{2}), nil
		})
	}()
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("key computed %d times, want 1", n)
	}
}

// Touching an entry refreshes its recency: re-reading the oldest key
// before overflowing must keep it alive while a younger untouched key is
// evicted instead.
func TestMemoTouchRefreshesRecency(t *testing.T) {
	memo := newSFMemo[traceID, *bus.Meter](3)
	for i := 0; i < 3; i++ {
		if _, err := memo.Do(memoKey(i+1), testMeter(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 1 (the oldest), then insert a fourth key: key 2 is now
	// the LRU and must be the one evicted.
	if _, err := memo.Do(memoKey(1), testMeter(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := memo.Do(memoKey(4), testMeter(3)); err != nil {
		t.Fatal(err)
	}
	memo.mu.Lock()
	_, touched := memo.entries[memoKey(1)]
	_, lru := memo.entries[memoKey(2)]
	memo.mu.Unlock()
	if !touched {
		t.Error("recently touched entry was evicted")
	}
	if lru {
		t.Error("least-recently-used entry survived")
	}
}

// TestMemoSingleFlightUnderContention hammers a small set of keys from
// many goroutines (run under -race in CI): every key must be computed
// exactly once even while LRU pressure from disjoint keys churns the
// memo, and all callers for a key must observe the same value.
func TestMemoSingleFlightUnderContention(t *testing.T) {
	memo := newSFMemo[int, int](4)
	const keys = 8
	const callers = 6
	var computed [keys]atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for k := 0; k < keys; k++ {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				<-start
				v, err := memo.Do(k, func() (int, error) {
					computed[k].Add(1)
					return k * 100, nil
				})
				if err != nil || v != k*100 {
					t.Errorf("key %d: got (%d, %v), want (%d, nil)", k, v, err, k*100)
				}
			}(k)
		}
	}
	close(start)
	wg.Wait()
	for k := 0; k < keys; k++ {
		// Keys may age out between caller waves and be recomputed, but a
		// computation can never run concurrently with itself — with all
		// callers racing through close(start), each key computes once per
		// residency. The hard invariant: at least 1 (it ran), and never
		// more than the caller count (no free-for-all).
		if n := computed[k].Load(); n < 1 || n > callers {
			t.Errorf("key %d computed %d times", k, n)
		}
	}
	st := memo.Stats()
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after all callers returned", st.InFlight)
	}
	if st.Hits+st.Misses != keys*callers {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, keys*callers)
	}
}

// TestMemoResetKeepsInFlight pins Reset's contract: completed entries and
// counters go, an in-flight computation stays so its waiters coalesce.
func TestMemoResetKeepsInFlight(t *testing.T) {
	memo := newSFMemo[traceID, *bus.Meter](8)
	if _, err := memo.Do(memoKey(1), testMeter(1)); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		memo.Do(memoKey(2), func() (*bus.Meter, error) {
			close(started)
			<-release
			return coding.MeasureRawValues(busWidth, []uint64{1}), nil
		})
	}()
	<-started
	memo.Reset()
	st := memo.Stats()
	if st.Size != 1 || st.InFlight != 1 {
		t.Fatalf("after Reset: size %d in-flight %d, want 1 and 1", st.Size, st.InFlight)
	}
	if st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Fatalf("after Reset: counters %+v not zeroed", st)
	}
	close(release)
	wg.Wait()
}

// TestEvalResultMemoizes exercises the package-level result memo through
// evalResult: a second call with a rebuilt identical transcoder must hit
// (keyed on the canonical config, not the instance), the retained Result
// must be detached from the evaluator's reused coded meter, and a
// different Λ or verify policy must miss.
func TestEvalResultMemoizes(t *testing.T) {
	ClearEvalMemo()
	t.Cleanup(ClearEvalMemo)
	vals := make([]uint64, 2000)
	for i := range vals {
		vals[i] = uint64(i*2654435761) >> 16
	}
	raw := coding.MeasureRawValues(busWidth, vals)
	id := traceID{source: "test-eval-memo"}
	cfg := Config{}
	build := func() coding.Transcoder {
		win, err := coding.NewWindow(busWidth, 8, evalLambda)
		if err != nil {
			t.Fatal(err)
		}
		return win
	}
	var ev coding.Evaluator
	before := EvalMemoStats()
	a, err := evalResult(&ev, build(), id, vals, evalLambda, raw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate something else through the same evaluator: if the memoized
	// Result still referenced ev's reused coded meter, this would corrupt it.
	other, err := coding.NewStride(busWidth, 2, evalLambda)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evalResult(&ev, other, id, vals, evalLambda, raw, cfg); err != nil {
		t.Fatal(err)
	}
	b, err := evalResult(&ev, build(), id, vals, evalLambda, raw, cfg) // rebuilt instance: must hit
	if err != nil {
		t.Fatal(err)
	}
	if a.Coded != b.Coded {
		t.Fatal("memo hit returned a different Result than the original computation")
	}
	if a.CodedCost() != b.CodedCost() {
		t.Fatalf("retained Result was corrupted by later evaluator use: %v != %v", b.CodedCost(), a.CodedCost())
	}
	st := EvalMemoStats()
	if hits := st.Hits - before.Hits; hits != 1 {
		t.Fatalf("got %d hits, want exactly 1 (the rebuilt-instance call)", hits)
	}
	// A different metered Λ shares the same entry — encoder output never
	// depends on the Λ the meters are read at — and the retrieved Result
	// is stamped with the requested Λ.
	atTwo, err := evalResult(&ev, build(), id, vals, 2.0, raw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if atTwo.Lambda != 2.0 {
		t.Fatalf("Λ=2 retrieval carries Λ=%g", atTwo.Lambda)
	}
	if atTwo.Coded != a.Coded {
		t.Fatal("Λ=2 retrieval recomputed instead of sharing the Λ=1 encode")
	}
	if st2 := EvalMemoStats(); st2.Hits != st.Hits+1 {
		t.Fatalf("Λ change missed the memo (hits %d -> %d)", st.Hits, st2.Hits)
	}
	// A different verify policy is still a distinct entry.
	st = EvalMemoStats()
	cfgSampled := Config{Verify: coding.VerifySampled(0)}
	if _, err := evalResult(&ev, build(), id, vals, evalLambda, raw, cfgSampled); err != nil {
		t.Fatal(err)
	}
	if st2 := EvalMemoStats(); st2.Hits != st.Hits {
		t.Fatalf("verify-policy change hit the memo (hits %d -> %d)", st.Hits, st2.Hits)
	}
}

// TestRandomBundleMemoizes: the random comparison trace and its raw meter
// are generated once per length and shared thereafter.
func TestRandomBundleMemoizes(t *testing.T) {
	a := randomBundleFor(1234)
	b := randomBundleFor(1234)
	if &a.trace[0] != &b.trace[0] || a.meter != b.meter {
		t.Fatal("randomBundleFor regenerated the trace or meter for the same length")
	}
	if len(a.trace) != 1234 {
		t.Fatalf("trace length %d, want 1234", len(a.trace))
	}
	c := randomBundleFor(999)
	if len(c.trace) != 999 || a.meter == c.meter {
		t.Fatal("different lengths must be distinct entries")
	}
}
