package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"buspower/internal/bus"
	"buspower/internal/coding"
)

// TestMemoStatsReadableUnderLoad is the -race regression test for the
// reporting paths: Stats must be safely readable (and wait-free) while
// many goroutines are driving Do, exactly as the serve /metrics scrape
// reads the memo and cache counters while evaluations are in flight.
func TestMemoStatsReadableUnderLoad(t *testing.T) {
	m := newSFMemo[int, int](8)
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := m.Stats()
				if st.Size < 0 || st.InFlight < 0 {
					t.Errorf("implausible snapshot: %+v", st)
					return
				}
			}
		}()
	}
	var workers sync.WaitGroup
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 500; i++ {
				key := (w + i) % 32 // force hits, misses and evictions
				if _, err := m.Do(key, func() (int, error) { return key * key, nil }); err != nil {
					t.Errorf("Do(%d): %v", key, err)
					return
				}
				if i%100 == 0 {
					m.Forget(key)
				}
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	scrapes.Wait()
	st := m.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("lost counts: hits %d + misses %d != %d", st.Hits, st.Misses, 8*500)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after quiesce", st.InFlight)
	}
}

// TestMemoForgetDropsCancellationErrors: a context-cancelled evaluation
// must not be served from the memo to later identical requests.
func TestMemoForgetDropsCancellationErrors(t *testing.T) {
	m := newSFMemo[string, int](8)
	fail := func() (int, error) { return 0, context.Canceled }
	if _, err := m.Do("k", fail); !errors.Is(err, context.Canceled) {
		t.Fatalf("seeded error: %v", err)
	}
	m.Forget("k")
	v, err := m.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("recompute after Forget: %d, %v (want 7, nil)", v, err)
	}
	// A deterministic error, by contrast, stays cached until it ages out.
	boom := fmt.Errorf("deterministic failure")
	if _, err := m.Do("bad", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("seeded deterministic error: %v", err)
	}
	if _, err := m.Do("bad", func() (int, error) {
		t.Error("deterministic error was recomputed")
		return 0, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("cached deterministic error: %v", err)
	}
}

// TestMemoCancelledLeaderDoesNotFailWaiters is the single-flight
// error-coalescing regression test (run under -race in CI): when the
// leader's computation dies with the leader's *own* context error, the
// concurrently coalesced waiters — whose contexts are fine — must not
// inherit that failure. Exactly one waiter re-runs the computation and
// every waiter observes its successful result; only the leader sees the
// cancellation.
func TestMemoCancelledLeaderDoesNotFailWaiters(t *testing.T) {
	m := newSFMemo[string, int](8)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leaderErr = m.Do("k", func() (int, error) {
			close(leaderIn)
			<-leaderGo
			// The leader's request was cancelled mid-computation.
			return 0, context.Canceled
		})
	}()
	<-leaderIn

	const waiters = 8
	vals := make([]int, waiters)
	errs := make([]error, waiters)
	var recomputes atomic.Int64
	var wwg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wwg.Add(1)
		go func(i int) {
			defer wwg.Done()
			vals[i], errs[i] = m.Do("k", func() (int, error) {
				recomputes.Add(1)
				return 42, nil
			})
		}(i)
	}
	// Every waiter registers a hit when it coalesces onto the in-flight
	// entry; wait until all have joined before failing the leader, so the
	// test exercises live waiters rather than late arrivals.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Hits < waiters {
		if time.Now().After(deadline) {
			t.Fatal("waiters never coalesced onto the in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}
	close(leaderGo)
	wg.Wait()
	wwg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader error %v, want its own context.Canceled", leaderErr)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("waiter %d: got (%d, %v), want (42, nil) — leader's cancellation leaked", i, vals[i], errs[i])
		}
	}
	if n := recomputes.Load(); n != 1 {
		t.Fatalf("computation re-ran %d times after the cancelled leader, want exactly 1", n)
	}
	// The successful recomputation is cached for later callers.
	v, err := m.Do("k", func() (int, error) {
		t.Error("cached successful result was recomputed")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("post-recovery lookup: (%d, %v), want (42, nil)", v, err)
	}
	if st := m.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after quiesce", st.InFlight)
	}
}

// TestMemoCancelledLeaderWithNoWaiters: with nobody coalesced, a
// context-cancelled computation simply leaves no entry behind — the next
// caller for the key recomputes without needing Forget.
func TestMemoCancelledLeaderWithNoWaiters(t *testing.T) {
	m := newSFMemo[string, int](8)
	if _, err := m.Do("k", func() (int, error) { return 0, context.DeadlineExceeded }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader error: %v", err)
	}
	if st := m.Stats(); st.Size != 0 {
		t.Fatalf("cancelled entry retained: size %d", st.Size)
	}
	v, err := m.Do("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("recompute after deadline error: (%d, %v), want (9, nil)", v, err)
	}
}

// TestEvalResultMemoDropsCancellation: the full evalResultKeyed path must
// recompute after a cancelled fetch instead of replaying the cancellation
// to every later request for the same key (the serving-path poisoning
// regression).
func TestEvalResultMemoDropsCancellation(t *testing.T) {
	tc, err := coding.NewStride(32, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	id := traceID{source: "stats-race-test-cancel", n: 10}
	trace := []uint64{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	var ev coding.Evaluator
	// A fetch interrupted by cancellation (as when a per-request timeout
	// fires mid-trace-load) fails this call...
	_, err = evalResultKeyed(&ev, tc, id, 1, Config{}, func() ([]uint64, *bus.Meter, error) {
		return nil, nil, context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fetch: %v", err)
	}
	// ...but must not be replayed to the next identical request.
	res, err := evalResultKeyed(&ev, tc, id, 1, Config{}, func() ([]uint64, *bus.Meter, error) {
		return trace, nil, nil
	})
	if err != nil {
		t.Fatalf("identical request after cancellation still fails: %v", err)
	}
	if res.Raw.Cycles() == 0 {
		t.Fatal("empty result after recompute")
	}
}
