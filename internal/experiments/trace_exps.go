package experiments

import (
	"fmt"

	"buspower/internal/stats"
	"buspower/internal/workload"
)

// fig7Benchmarks are the four benchmarks the paper's Figures 7-8 examine.
var fig7Benchmarks = []string{"gcc", "su2cor", "swim", "turb3d"}

func init() {
	register(Runner{
		ID:    "fig7",
		Title: "CDF of most frequent unique values in 10M-value traces (Figure 7)",
		Run:   runFig7,
	})
	register(Runner{
		ID:    "fig8",
		Title: "Average fraction of unique values within a window vs window size (Figure 8)",
		Run:   runFig8,
	})
}

// busTrace fetches one bus of a workload's traffic.
func busTrace(name, bus string, cfg Config) ([]uint64, error) {
	ts, err := workload.Traces(name, cfg.Run)
	if err != nil {
		return nil, err
	}
	switch bus {
	case "reg":
		return ts.Reg, nil
	case "mem":
		return ts.Mem, nil
	case "addr":
		return ts.Addr, nil
	default:
		return nil, fmt.Errorf("unknown bus %q", bus)
	}
}

func runFig7(cfg Config) (*Table, error) {
	counts := []int{1, 10, 100, 1000, 10000, 100000}
	if cfg.Quick {
		counts = []int{1, 10, 100, 1000}
	}
	t := &Table{
		ID:      "fig7",
		Title:   "Fraction of total trace covered by the N most frequent unique values",
		Columns: []string{"benchmark", "bus", "unique_values", "coverage"},
	}
	pairs := benchBusPairs(fig7Benchmarks)
	err := gatherRows(t, cfg, len(pairs), func(i int, out *Table) error {
		name, bus := pairs[i].name, pairs[i].bus
		tr, err := busTrace(name, bus, cfg)
		if err != nil {
			return err
		}
		cdf := stats.FrequencyCDF(tr)
		for _, n := range counts {
			out.AddRow(name, bus, n, stats.CoverageAt(cdf, n))
		}
		return nil
	})
	return t, err
}

// benchBusPairs flattens the (benchmark, bus) double loop the §4.2 trace
// statistics share, in the serial traversal's order.
type benchBus struct{ name, bus string }

func benchBusPairs(names []string) []benchBus {
	out := make([]benchBus, 0, 2*len(names))
	for _, name := range names {
		for _, bus := range []string{"reg", "mem"} {
			out = append(out, benchBus{name, bus})
		}
	}
	return out
}

func runFig8(cfg Config) (*Table, error) {
	windows := []int{1, 4, 10, 40, 100, 400, 1000, 4000, 10000}
	if cfg.Quick {
		windows = []int{1, 10, 100, 1000}
	}
	t := &Table{
		ID:      "fig8",
		Title:   "Average fraction of values unique within a sliding window",
		Columns: []string{"benchmark", "bus", "window", "unique_fraction"},
	}
	pairs := benchBusPairs(fig7Benchmarks)
	err := gatherRows(t, cfg, len(pairs), func(i int, out *Table) error {
		name, bus := pairs[i].name, pairs[i].bus
		tr, err := busTrace(name, bus, cfg)
		if err != nil {
			return err
		}
		prof := stats.NewWindowUniqueProfile(tr)
		for _, w := range windows {
			if w > len(tr) {
				continue
			}
			out.AddRow(name, bus, w, prof.Fraction(w))
		}
		return nil
	})
	return t, err
}
