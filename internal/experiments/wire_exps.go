package experiments

import "buspower/internal/wire"

func init() {
	register(Runner{
		ID:    "table1",
		Title: "Effective Λ values for various technologies (Table 1)",
		Run:   runTable1,
	})
	register(Runner{
		ID:    "fig5",
		Title: "Wire energy vs length for repeated and unbuffered wires (Figure 5)",
		Run:   runFig5,
	})
	register(Runner{
		ID:    "fig6",
		Title: "Wire propagation delay vs length (Figure 6)",
		Run:   runFig6,
	})
}

func runTable1(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Effective Λ values for various technologies",
		Columns: []string{"technology", "wire_type", "average_lambda"},
	}
	for _, tech := range wire.Technologies() {
		for _, kind := range []wire.Kind{wire.Unbuffered, wire.Buffered} {
			t.AddRow(tech.Name, kind.String(), tech.EffectiveLambda(kind))
		}
	}
	return t, nil
}

// wireSweep builds the Figure 5/6 series: one column per
// technology × wire-kind, one row per length.
func wireSweep(id, title, unit string, cfg Config, sample func(wire.Technology, wire.Kind, float64) float64) *Table {
	t := &Table{ID: id, Title: title}
	t.Columns = []string{"length_mm"}
	type series struct {
		tech wire.Technology
		kind wire.Kind
	}
	var ss []series
	for _, kind := range []wire.Kind{wire.Buffered, wire.Unbuffered} {
		for _, tech := range wire.Technologies() {
			ss = append(ss, series{tech, kind})
			label := "Repeater_"
			if kind == wire.Unbuffered {
				label = "Wire_"
			}
			t.Columns = append(t.Columns, label+tech.Name+"_"+unit)
		}
	}
	step := 1.0
	if cfg.Quick {
		step = 5.0
	}
	for l := 1.0; l <= 30.0+1e-9; l += step {
		row := make([]interface{}, 0, len(ss)+1)
		row = append(row, l)
		for _, s := range ss {
			row = append(row, sample(s.tech, s.kind, l))
		}
		t.AddRow(row...)
	}
	return t
}

func runFig5(cfg Config) (*Table, error) {
	return wireSweep("fig5", "Single-transition wire energy vs length", "pJ", cfg,
		func(tech wire.Technology, kind wire.Kind, l float64) float64 {
			return tech.SingleTransitionEnergyPJ(kind, l)
		}), nil
}

func runFig6(cfg Config) (*Table, error) {
	return wireSweep("fig6", "Wire propagation delay vs length", "ps", cfg,
		func(tech wire.Technology, kind wire.Kind, l float64) float64 {
			return tech.DelayPS(kind, l)
		}), nil
}
