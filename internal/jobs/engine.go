package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"buspower/internal/coding"
	"buspower/internal/experiments"
)

// ErrQueueFull is returned by Submit when the item queue cannot admit
// the whole job; the HTTP layer translates it to 429.
var ErrQueueFull = errors.New("jobs: item queue full")

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("jobs: engine draining")

// EngineStats is a point-in-time snapshot of the engine for /metrics.
type EngineStats struct {
	// Workers is the configured pool size.
	Workers int
	// QueueDepth is the number of items waiting for a worker.
	QueueDepth int
	// ItemsCompleted counts items finished since the process started
	// (done, failed or cancelled) — a monotone counter, so items/s is
	// its rate.
	ItemsCompleted uint64
}

// itemRef addresses one unit of queued work.
type itemRef struct {
	id    string
	index int
}

// activeJob is the engine's bookkeeping for a job with queued or running
// items. remaining drives the terminal transition; ctx/cancel carry
// cooperative cancellation into the evaluation (ctx is created lazily by
// the first worker that touches the job).
type activeJob struct {
	ctx       context.Context
	cancel    context.CancelFunc
	remaining int
	cancelled bool
}

// Engine drains job items through the experiments engine on a dedicated
// worker pool — deliberately separate from the synchronous /v1/eval
// admission pool, so a deep batch backlog can never starve interactive
// requests (and vice versa). Items of one job run independently: several
// workers may serve one job's items concurrently, and per-item outcomes
// are journaled as they land, so progress survives a crash at item
// granularity.
type Engine struct {
	store   *Store
	workers int
	queue   chan itemRef

	mu     sync.Mutex
	active map[string]*activeJob

	baseCtx context.Context
	stop    context.CancelFunc
	// quit tells workers to stop picking up new items (graceful drain);
	// stop aborts the items themselves (forced drain).
	quit     chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup

	itemsCompleted atomic.Uint64

	// runEval and runExperiment are the per-item entry points, injectable
	// by tests to exercise the state machine without real evaluations.
	runEval       func(ctx context.Context, req *experiments.EvalRequest) (interface{}, error)
	runExperiment func(ctx context.Context, it Item) (interface{}, error)
}

// NewEngine builds an engine over the store. workers <= 0 defaults to
// half of GOMAXPROCS (floored at 1): batch throughput matters, but the
// interactive pool keeps priority on the machine. queueDepth <= 0
// defaults to 4×MaxItems.
func NewEngine(store *Store, workers, queueDepth int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 1 {
			workers = 1
		}
	}
	if queueDepth <= 0 {
		queueDepth = 4 * MaxItems
	}
	ctx, cancel := context.WithCancel(context.Background())
	perItem := runtime.GOMAXPROCS(0) / workers
	if perItem < 1 {
		perItem = 1
	}
	return &Engine{
		store:   store,
		workers: workers,
		queue:   make(chan itemRef, queueDepth),
		active:  map[string]*activeJob{},
		baseCtx: ctx,
		stop:    cancel,
		quit:    make(chan struct{}),
		runEval: func(ctx context.Context, req *experiments.EvalRequest) (interface{}, error) {
			resp, err := experiments.EvaluateRequest(ctx, *req)
			if err != nil {
				return nil, err
			}
			return resp, nil
		},
		runExperiment: func(ctx context.Context, it Item) (interface{}, error) {
			return defaultRunExperiment(ctx, it, perItem)
		},
	}
}

// defaultRunExperiment runs one registered experiment with the same
// sampled-verification default the serving layer uses for /v1/eval
// (results are bit-identical under every policy). parallel is the item's
// share of the machine: with the worker pool sized at a fraction of
// GOMAXPROCS, each item's grid sweeps may shard across the spare cores
// without the pool as a whole oversubscribing the box.
func defaultRunExperiment(ctx context.Context, it Item, parallel int) (interface{}, error) {
	cfg := experiments.DefaultConfig()
	if it.Quick {
		cfg = experiments.QuickConfig()
	}
	policy, err := coding.ParseVerifyPolicy("sampled")
	if err != nil {
		return nil, err
	}
	cfg.Verify = policy
	cfg.Parallel = parallel
	return experiments.RunContext(ctx, it.Experiment, cfg)
}

// Start launches the worker pool and re-enqueues every incomplete job
// recovered from the journal (their completed items stay completed; only
// the missing work re-runs, and much of it lands in the eval memo).
// Start must be called exactly once, before any Submit.
func (e *Engine) Start() {
	resumed := e.store.Incomplete()
	// Grow the queue if the recovered backlog alone would overflow it,
	// so resumption can never deadlock the engine against itself.
	var backlog int
	for _, j := range resumed {
		backlog += len(j.Items)
	}
	if backlog > cap(e.queue) {
		e.queue = make(chan itemRef, backlog)
	}
	for _, j := range resumed {
		e.schedule(j)
	}
	for i := 0; i < e.workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
}

// schedule registers bookkeeping for a job and queues its incomplete
// items. The caller must have verified queue capacity; sends cannot
// block because every producer checks capacity under e.mu.
func (e *Engine) schedule(j *Job) {
	e.mu.Lock()
	a := &activeJob{}
	for i := range j.Results {
		if j.Results[i].Status != ItemDone {
			a.remaining++
		}
	}
	if a.remaining == 0 {
		// Nothing left to run (e.g. a recovered job whose terminal state
		// record was lost after its last item landed): finalize directly.
		e.mu.Unlock()
		e.finalize(j.ID, a)
		return
	}
	e.active[j.ID] = a
	for i := range j.Results {
		if j.Results[i].Status != ItemDone {
			e.queue <- itemRef{id: j.ID, index: i}
		}
	}
	e.mu.Unlock()
}

// jobCancelled reports whether cancellation was requested for this job
// specifically (as opposed to the whole engine shutting down).
func (e *Engine) jobCancelled(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if a, ok := e.active[id]; ok {
		return a.cancelled
	}
	return false
}

// jobCtx returns the job's cancellation context, creating it lazily
// under the engine lock.
func (e *Engine) jobCtx(id string) context.Context {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, ok := e.active[id]
	if !ok || a.cancelled {
		// Finished or cancelled; a dead context keeps stray refs idle.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx
	}
	if a.ctx == nil {
		a.ctx, a.cancel = context.WithCancel(e.baseCtx)
	}
	return a.ctx
}

// Submit admits a parsed item batch: dedup by content address (a
// pending, running or done job with the same id is returned as-is;
// failed and cancelled jobs re-activate and re-run their incomplete
// items), journal, enqueue. The bool is true when new work was
// scheduled, false when the submission coalesced onto an existing job.
func (e *Engine) Submit(items []Item) (*Job, bool, error) {
	if len(items) == 0 {
		return nil, false, errors.New("jobs: empty job")
	}
	if e.draining.Load() {
		return nil, false, ErrDraining
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id := JobID(items)
	need := len(items)
	if j, ok := e.store.Get(id); ok {
		if _, scheduled := e.active[id]; scheduled || j.State == StateDone || !j.State.Terminal() {
			// Already scheduled, already answered, or mid-flight:
			// coalesce — the caller polls the existing job.
			return j, false, nil
		}
		// Terminal failed/cancelled: re-activation re-runs only the
		// items that never completed.
		need = 0
		for i := range j.Results {
			if j.Results[i].Status != ItemDone {
				need++
			}
		}
	}
	// Capacity check before any journaling: a job is admitted whole or
	// not at all. Capacity cannot shrink under us — every producer holds
	// e.mu — so the sends below never block.
	if need > cap(e.queue)-len(e.queue) {
		return nil, false, ErrQueueFull
	}
	j, created, err := e.store.Submit(items)
	if err != nil {
		return nil, false, err
	}
	if !created {
		return j, false, nil
	}
	a := &activeJob{}
	for i := range j.Results {
		if j.Results[i].Status != ItemDone {
			a.remaining++
		}
	}
	if a.remaining == 0 {
		// Re-activated job whose items had all completed (a cancel that
		// landed after the last item): nothing to run, finalize now.
		e.mu.Unlock()
		e.finalize(id, a)
		e.mu.Lock() // restore for the deferred unlock
		j, _ = e.store.Get(id)
		return j, true, nil
	}
	e.active[id] = a
	for i := range j.Results {
		if j.Results[i].Status != ItemDone {
			e.queue <- itemRef{id: id, index: i}
		}
	}
	return j, true, nil
}

// Cancel requests cooperative cancellation: the job transitions to
// cancelled immediately, queued items short-circuit, and running items
// see their context end. ok=false if the job is unknown.
func (e *Engine) Cancel(id string) (*Job, bool) {
	e.mu.Lock()
	if a, active := e.active[id]; active {
		a.cancelled = true
		if a.cancel != nil {
			a.cancel()
		}
	}
	e.mu.Unlock()
	j, ok := e.store.Get(id)
	if !ok {
		return nil, false
	}
	if !j.State.Terminal() {
		e.store.SetState(id, StateCancelled)
		j, _ = e.store.Get(id)
	}
	return j, true
}

// Get proxies Store.Get.
func (e *Engine) Get(id string) (*Job, bool) { return e.store.Get(id) }

// List proxies Store.List.
func (e *Engine) List() []*Job { return e.store.List() }

// Subscribe proxies Store.Subscribe.
func (e *Engine) Subscribe(id string) (<-chan Event, func(), bool) { return e.store.Subscribe(id) }

// Stats snapshots the engine for /metrics.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Workers:        e.workers,
		QueueDepth:     len(e.queue),
		ItemsCompleted: e.itemsCompleted.Load(),
	}
}

// StoreStats proxies Store.Stats.
func (e *Engine) StoreStats() StoreStats { return e.store.Stats() }

// worker drains the item queue until quit or stop.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case ref := <-e.queue:
			e.runItem(ref)
		}
	}
}

// runItem executes one queued item and journals its outcome. A cancelled
// job's items short-circuit to cancelled results without running.
func (e *Engine) runItem(ref itemRef) {
	job, ok := e.store.Get(ref.id)
	if !ok || ref.index >= len(job.Results) {
		return
	}
	if job.Results[ref.index].Status == ItemDone {
		// Already durable (idempotent journal replay); just account for
		// the queued ref.
		e.finishItem(ref.id)
		return
	}
	if e.jobCancelled(ref.id) || job.State == StateCancelled {
		e.completeItem(ref, ItemResult{Status: ItemCancelled, Error: context.Canceled.Error()})
		return
	}
	ctx := e.jobCtx(ref.id)
	if ctx.Err() != nil {
		// The engine is stopping, not the job: leave the item incomplete
		// so the next Start resumes it from the journal.
		return
	}
	if job.State == StatePending {
		e.store.SetState(ref.id, StateRunning)
	}
	e.store.SetItemRunning(ref.id, ref.index)
	it := job.Items[ref.index]
	start := time.Now()
	var payload interface{}
	var err error
	switch it.Kind {
	case "eval":
		payload, err = e.runEval(ctx, it.Eval)
	case "experiment":
		payload, err = e.runExperiment(ctx, it)
	default:
		err = fmt.Errorf("jobs: unknown item kind %q", it.Kind)
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	out := ItemResult{ElapsedMS: elapsed}
	switch {
	case err == nil:
		data, merr := json.Marshal(payload)
		if merr != nil {
			out.Status = ItemFailed
			out.Error = merr.Error()
		} else {
			out.Status = ItemDone
			out.Result = data
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if !e.jobCancelled(ref.id) {
			// Aborted by engine shutdown, not job cancellation: record
			// nothing, so the restart re-runs this item rather than
			// freezing the job in a cancelled state it never asked for.
			return
		}
		out.Status = ItemCancelled
		out.Error = err.Error()
	default:
		out.Status = ItemFailed
		out.Error = err.Error()
	}
	e.completeItem(ref, out)
}

// completeItem journals the outcome and performs the terminal transition
// when this was the job's last incomplete item.
func (e *Engine) completeItem(ref itemRef, res ItemResult) {
	e.store.SetItemResult(ref.id, ref.index, res)
	e.itemsCompleted.Add(1)
	e.finishItem(ref.id)
}

// finishItem decrements the job's incomplete count, finalizing at zero.
func (e *Engine) finishItem(id string) {
	e.mu.Lock()
	a, ok := e.active[id]
	if !ok {
		e.mu.Unlock()
		return
	}
	a.remaining--
	if a.remaining > 0 {
		e.mu.Unlock()
		return
	}
	delete(e.active, id)
	e.mu.Unlock()
	if a.cancel != nil {
		a.cancel()
	}
	e.finalize(id, a)
}

// finalize applies the job's terminal state from its item outcomes.
func (e *Engine) finalize(id string, a *activeJob) {
	j, ok := e.store.Get(id)
	if !ok || j.State.Terminal() {
		return
	}
	switch {
	case a.cancelled || j.Progress.Cancelled > 0:
		e.store.SetState(id, StateCancelled)
	case j.Progress.Failed > 0:
		e.store.SetState(id, StateFailed)
	default:
		e.store.SetState(id, StateDone)
	}
}

// Drain shuts the engine down gracefully: no new submissions, workers
// finish the items they hold, and the store compacts and closes so every
// completed result is durable. If ctx expires first, running items are
// aborted through their contexts — their jobs resume from the last
// completed item on the next Start. Queued-but-unstarted items stay
// journaled as pending for the same resume path.
func (e *Engine) Drain(ctx context.Context) error {
	if !e.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(e.quit)
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Out of budget: abort in-flight evaluations cooperatively.
		e.stop()
		<-done
	}
	return e.store.Close()
}
