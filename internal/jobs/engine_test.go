package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"buspower/internal/experiments"
)

// evalItems builds n distinct canonical eval items (inline traces of
// different lengths, so their content addresses differ).
func evalItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		req := experiments.EvalRequest{Scheme: "raw", Values: make([]uint64, i+1)}
		items[i] = Item{Kind: "eval", Eval: &req}
	}
	return items
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, e *Engine, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := e.Get(id); ok && j.State.Terminal() {
			return j
		}
		time.Sleep(time.Millisecond)
	}
	j, _ := e.Get(id)
	t.Fatalf("job %s never reached a terminal state: %+v", id, j)
	return nil
}

func newTestEngine(t *testing.T, dir string, workers, queue int) *Engine {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(s, workers, queue)
}

func TestEngineRunsJobToDone(t *testing.T) {
	e := newTestEngine(t, "", 2, 0)
	var calls atomic.Int64
	e.runEval = func(ctx context.Context, req *experiments.EvalRequest) (interface{}, error) {
		calls.Add(1)
		return map[string]int{"len": len(req.Values)}, nil
	}
	e.Start()
	defer e.Drain(context.Background())

	items := evalItems(3)
	j, created, err := e.Submit(items)
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	final := waitTerminal(t, e, j.ID)
	if final.State != StateDone || final.Progress.Done != 3 {
		t.Fatalf("final: state=%s progress=%+v", final.State, final.Progress)
	}
	if calls.Load() != 3 {
		t.Errorf("runEval called %d times, want 3", calls.Load())
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Error("timestamps not set on completion")
	}
	for i, r := range final.Results {
		if r.Status != ItemDone || len(r.Result) == 0 || r.ElapsedMS < 0 {
			t.Errorf("item %d: %+v", i, r)
		}
	}
	if st := e.Stats(); st.ItemsCompleted != 3 {
		t.Errorf("ItemsCompleted = %d, want 3", st.ItemsCompleted)
	}
	if ss := e.StoreStats(); ss.JobsByState[StateDone] != 1 {
		t.Errorf("StoreStats: %+v, want one done job", ss.JobsByState)
	}
	// A subscription on a terminal job closes immediately.
	ch, cancel, ok := e.Subscribe(j.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()
	if _, open := <-ch; open {
		t.Error("terminal subscription delivered an event instead of closing")
	}
}

func TestEngineFailedItemFailsJob(t *testing.T) {
	e := newTestEngine(t, "", 2, 0)
	e.runEval = func(ctx context.Context, req *experiments.EvalRequest) (interface{}, error) {
		if len(req.Values) == 2 {
			return nil, errors.New("boom")
		}
		return "ok", nil
	}
	e.Start()
	defer e.Drain(context.Background())

	j, _, err := e.Submit(evalItems(3))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, e, j.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Progress.Done != 2 || final.Progress.Failed != 1 {
		t.Fatalf("progress %+v, want 2 done / 1 failed", final.Progress)
	}
	if final.Results[1].Error != "boom" {
		t.Errorf("failed item error = %q", final.Results[1].Error)
	}
}

func TestEngineDedupServedWithoutRerun(t *testing.T) {
	e := newTestEngine(t, "", 1, 0)
	var calls atomic.Int64
	e.runEval = func(context.Context, *experiments.EvalRequest) (interface{}, error) {
		calls.Add(1)
		return "ok", nil
	}
	e.Start()
	defer e.Drain(context.Background())

	items := evalItems(2)
	j, _, err := e.Submit(items)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, e, j.ID)
	before := calls.Load()

	j2, created, err := e.Submit(items)
	if err != nil {
		t.Fatal(err)
	}
	if created || j2.State != StateDone {
		t.Fatalf("resubmission: created=%v state=%s, want coalesced done", created, j2.State)
	}
	if calls.Load() != before {
		t.Errorf("resubmission re-ran items: %d calls, want %d", calls.Load(), before)
	}
}

func TestEngineCancelMidRun(t *testing.T) {
	e := newTestEngine(t, "", 1, 0)
	started := make(chan struct{}, 8)
	e.runEval = func(ctx context.Context, req *experiments.EvalRequest) (interface{}, error) {
		started <- struct{}{}
		<-ctx.Done() // park until cancelled
		return nil, ctx.Err()
	}
	e.Start()
	defer e.Drain(context.Background())

	j, _, err := e.Submit(evalItems(3))
	if err != nil {
		t.Fatal(err)
	}
	<-started // one item is in flight (single worker), two queued
	cj, ok := e.Cancel(j.ID)
	if !ok {
		t.Fatal("cancel: job unknown")
	}
	if cj.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled (immediately)", cj.State)
	}
	// The job is terminal immediately; per-item cancelled markers land as
	// each queued/running ref drains through a worker.
	final := waitTerminal(t, e, j.ID)
	if final.State != StateCancelled {
		t.Fatalf("final state = %s, want cancelled", final.State)
	}
	deadline := time.Now().Add(10 * time.Second)
	for final.Progress.Cancelled != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		final, _ = e.Get(j.ID)
	}
	if final.Progress.Cancelled != 3 {
		t.Errorf("progress %+v, want all 3 items cancelled", final.Progress)
	}
	// Cancelling a terminal job is an idempotent no-op.
	again, ok := e.Cancel(j.ID)
	if !ok || again.State != StateCancelled {
		t.Errorf("second cancel: ok=%v state=%s", ok, again.State)
	}
}

func TestEngineQueueFullRejectsWholeJob(t *testing.T) {
	e := newTestEngine(t, "", 1, 2)
	e.Start()
	defer e.Drain(context.Background())
	_, _, err := e.Submit(evalItems(3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Nothing may have been journaled for a rejected job.
	if n := len(e.List()); n != 0 {
		t.Fatalf("%d jobs stored after rejection, want 0", n)
	}
}

func TestEngineSubmitAfterDrainRejected(t *testing.T) {
	e := newTestEngine(t, "", 1, 0)
	e.Start()
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Submit(evalItems(1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

// TestEngineRestartResumesIncompleteWork is the crash-recovery
// acceptance path in miniature: item 0 completes, the process "dies"
// mid-item-1, and the next engine re-runs only item 1.
func TestEngineRestartResumesIncompleteWork(t *testing.T) {
	dir := t.TempDir()
	e1 := newTestEngine(t, dir, 1, 0)
	blocked := make(chan struct{})
	e1.runEval = func(ctx context.Context, req *experiments.EvalRequest) (interface{}, error) {
		if len(req.Values) == 2 {
			close(blocked)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return fmt.Sprintf("gen1:%d", len(req.Values)), nil
	}
	e1.Start()
	items := evalItems(2)
	j, _, err := e1.Submit(items)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked // item 0 done (single worker runs in order), item 1 parked

	// Forced drain: the expired context aborts item 1 through its ctx.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e1.Drain(expired); err != nil {
		t.Fatalf("drain: %v", err)
	}

	e2 := newTestEngine(t, dir, 1, 0)
	var calls atomic.Int64
	e2.runEval = func(ctx context.Context, req *experiments.EvalRequest) (interface{}, error) {
		calls.Add(1)
		return fmt.Sprintf("gen2:%d", len(req.Values)), nil
	}
	recovered, ok := e2.Get(j.ID)
	if !ok || recovered.State.Terminal() {
		t.Fatalf("job not recovered as incomplete: %+v", recovered)
	}
	if recovered.Results[0].Status != ItemDone {
		t.Fatalf("completed item lost across restart: %+v", recovered.Results[0])
	}
	e2.Start()
	defer e2.Drain(context.Background())
	final := waitTerminal(t, e2, j.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job state = %s, want done", final.State)
	}
	if got := string(final.Results[0].Result); got != `"gen1:1"` {
		t.Errorf("item 0 was re-run after restart: %s", got)
	}
	if got := string(final.Results[1].Result); got != `"gen2:2"` {
		t.Errorf("item 1 result = %s, want the resumed run's", got)
	}
	if calls.Load() != 1 {
		t.Errorf("restart ran %d items, want exactly the 1 incomplete one", calls.Load())
	}
}

func TestEngineRunsExperimentItems(t *testing.T) {
	e := newTestEngine(t, "", 1, 0)
	var got []string
	done := make(chan struct{})
	e.runExperiment = func(ctx context.Context, it Item) (interface{}, error) {
		got = append(got, fmt.Sprintf("%s/quick=%v", it.Experiment, it.Quick))
		if len(got) == 2 {
			close(done)
		}
		return map[string]string{"id": it.Experiment}, nil
	}
	e.Start()
	defer e.Drain(context.Background())
	j, _, err := e.Submit(mkItems("table3", "fig15"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, e, j.ID)
	<-done
	if final.State != StateDone {
		t.Fatalf("state = %s", final.State)
	}
	if len(got) != 2 || got[0] != "table3/quick=true" || got[1] != "fig15/quick=true" {
		t.Errorf("experiment invocations: %v", got)
	}
}
