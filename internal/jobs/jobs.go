// Package jobs is the database-free async job engine behind the serving
// layer's /v1/jobs API: a submitted batch of evaluation requests (or a
// whole experiment suite) becomes a content-addressed Job whose items a
// dedicated worker pool drains through the experiments engine's memoized
// entry points. Jobs move pending → running → done/failed/cancelled with
// per-item progress, cooperative cancellation through context, and an
// append-only checksummed journal (plus atomic-rename snapshot
// compaction) so completed results survive restarts — a resubmission of
// an identical job is answered from the journal without re-evaluation,
// and a full-mode experiment suite that could never fit in one HTTP
// request window runs to completion behind a job id.
package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"buspower/internal/coding"
	"buspower/internal/experiments"
)

// State is a job's position in its lifecycle.
type State string

const (
	// StatePending: accepted and journaled, no item has started.
	StatePending State = "pending"
	// StateRunning: at least one item has started.
	StateRunning State = "running"
	// StateDone: every item completed successfully.
	StateDone State = "done"
	// StateFailed: every item completed, at least one failed.
	StateFailed State = "failed"
	// StateCancelled: cancellation was requested before completion.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ItemStatus is one item's position in its lifecycle.
type ItemStatus string

const (
	ItemPending   ItemStatus = "pending"
	ItemRunning   ItemStatus = "running"
	ItemDone      ItemStatus = "done"
	ItemFailed    ItemStatus = "failed"
	ItemCancelled ItemStatus = "cancelled"
)

// Item is one unit of work inside a job: a single evaluation request or
// one registered experiment (a suite submission expands to one item per
// experiment id). Items are stored in canonical form — eval requests as
// ParseEvalRequest returns them — so the job id derived from them is
// stable across equivalent submissions.
type Item struct {
	// Kind is "eval" or "experiment".
	Kind string `json:"kind"`
	// Eval is the canonical evaluation request (kind "eval").
	Eval *experiments.EvalRequest `json:"eval,omitempty"`
	// Experiment is the registered experiment id (kind "experiment").
	Experiment string `json:"experiment,omitempty"`
	// Quick selects the reduced simulation bounds for experiment items;
	// false runs the paper's full-mode configuration.
	Quick bool `json:"quick,omitempty"`
}

// ItemResult is one item's outcome. Result holds the marshalled
// experiments.EvalResponse (eval items) or experiments.Table (experiment
// items) once the item is done.
type ItemResult struct {
	Status ItemStatus      `json:"status"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// ElapsedMS is the item's wall time (completed items only).
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// Progress summarizes a job's per-item completion counts.
type Progress struct {
	Total     int `json:"total"`
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Job is one submitted batch with its full per-item state. Results is
// index-parallel to Items.
type Job struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	CreatedAt time.Time  `json:"created_at"`
	StartedAt *time.Time `json:"started_at,omitempty"`
	// FinishedAt is set when the job reaches a terminal state.
	FinishedAt *time.Time   `json:"finished_at,omitempty"`
	Items      []Item       `json:"items"`
	Results    []ItemResult `json:"results"`
	Progress   Progress     `json:"progress"`
}

// recount rebuilds the Progress summary from the per-item statuses.
func (j *Job) recount() {
	p := Progress{Total: len(j.Results)}
	for i := range j.Results {
		switch j.Results[i].Status {
		case ItemRunning:
			p.Running++
		case ItemDone:
			p.Done++
		case ItemFailed:
			p.Failed++
		case ItemCancelled:
			p.Cancelled++
		default:
			p.Pending++
		}
	}
	j.Progress = p
}

// clone returns a deep copy safe to hand outside the store's lock.
func (j *Job) clone() *Job {
	c := *j
	if j.StartedAt != nil {
		t := *j.StartedAt
		c.StartedAt = &t
	}
	if j.FinishedAt != nil {
		t := *j.FinishedAt
		c.FinishedAt = &t
	}
	c.Items = append([]Item(nil), j.Items...)
	c.Results = make([]ItemResult, len(j.Results))
	for i, r := range j.Results {
		c.Results[i] = r
		c.Results[i].Result = append(json.RawMessage(nil), r.Result...)
	}
	return &c
}

// JobID content-addresses a canonical item list: the SHA-256 of the
// items' canonical JSON encoding, truncated to 128 bits. Two submissions
// describing the same work — however their JSON was originally spelled —
// collapse onto one job, so a million identical dashboard reloads cost
// one evaluation and one journal entry.
func JobID(items []Item) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, it := range items {
		// Encoding a struct with a fixed field order cannot fail.
		enc.Encode(it)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// MaxItems bounds one job's item count: big enough for any sweep the
// experiments define, small enough that a single submission cannot queue
// unbounded work.
const MaxItems = 1024

// Spec is the wire shape of a POST /v1/jobs submission. Exactly one of
// Requests or Suite must be set.
type Spec struct {
	// Requests is a batch of evaluation requests, each validated through
	// the same ParseEvalRequest path as POST /v1/eval.
	Requests []json.RawMessage `json:"requests,omitempty"`
	// Suite selects registered experiments by id.
	Suite *SuiteSpec `json:"suite,omitempty"`
}

// SuiteSpec names a set of registered experiments to run as one job.
type SuiteSpec struct {
	// Experiments is a comma-separated id list; "all" (alone or inside
	// the list) expands to every registered experiment.
	Experiments string `json:"experiments"`
	// Quick selects the reduced simulation bounds; false is full mode.
	Quick bool `json:"quick,omitempty"`
}

// ParseSpec decodes and validates a JSON submission into canonical
// items. Unknown fields and trailing data are rejected, every eval
// request goes through ParseEvalRequest (including the build-time scheme
// check), and suite ids are resolved against the experiment registry —
// a job can only be admitted whole.
func ParseSpec(data []byte) ([]Item, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("jobs: bad job spec: %w", err)
	}
	if dec.More() {
		return nil, errors.New("jobs: bad job spec: trailing data after JSON object")
	}
	if (len(spec.Requests) == 0) == (spec.Suite == nil) {
		return nil, errors.New("jobs: job spec needs exactly one of requests or suite")
	}
	var items []Item
	if spec.Suite != nil {
		ids, err := experiments.ResolveIDs(spec.Suite.Experiments)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			items = append(items, Item{Kind: "experiment", Experiment: id, Quick: spec.Suite.Quick})
		}
	} else {
		for i, raw := range spec.Requests {
			req, err := experiments.ParseEvalRequest(raw)
			if err != nil {
				return nil, fmt.Errorf("jobs: request %d: %w", i, err)
			}
			// Parameter combinations no constructor admits only surface at
			// build time; catch them at submission, not mid-job.
			if _, err := coding.BuildScheme(req.Scheme); err != nil {
				return nil, fmt.Errorf("jobs: request %d: %w", i, err)
			}
			r := req
			items = append(items, Item{Kind: "eval", Eval: &r})
		}
	}
	if len(items) > MaxItems {
		return nil, fmt.Errorf("jobs: %d items exceed the per-job cap %d", len(items), MaxItems)
	}
	return items, nil
}
