package jobs

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"time"
)

// The journal is the store's durability layer: one append-only JSONL
// file where every line is an independently checksummed record, plus a
// snapshot file written by atomic rename during compaction. The record
// stream is a redo log — replaying it over the snapshot reconstructs the
// store — and replay is idempotent, so a crash between "snapshot
// renamed" and "journal truncated" only replays records the snapshot
// already contains.
//
// Line format:
//
//	<16 lowercase hex digits of FNV-1a 64 over the payload> <payload JSON>\n
//
// Corruption handling follows the BUSTRC02 trace-container discipline:
// readers trust nothing after the first malformed line (torn tail write,
// bit-flipped checksum, merged lines) and the store truncates the file
// back to the last valid record — corruption costs the tail, never the
// process and never the records before it.

const (
	journalName  = "journal.jsonl"
	snapshotName = "snapshot.json"
)

// record is one journal entry. Type selects which fields are meaningful:
//
//	"job"      — Job: a full job at submission time
//	"item"     — ID, Index, Item: one item's durable outcome
//	"state"    — ID, State, TS: a job-level state transition
//	"snapshot" — Jobs: the whole store (snapshot file only)
type record struct {
	Type  string      `json:"type"`
	Job   *Job        `json:"job,omitempty"`
	ID    string      `json:"id,omitempty"`
	Index int         `json:"index,omitempty"`
	Item  *ItemResult `json:"item,omitempty"`
	State State       `json:"state,omitempty"`
	TS    time.Time   `json:"ts,omitempty"`
	Jobs  []*Job      `json:"jobs,omitempty"`
}

// encodeRecord renders one checksummed journal line.
func encodeRecord(rec *record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	line := make([]byte, 0, len(payload)+18)
	line = fmt.Appendf(line, "%016x ", h.Sum64())
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeLine parses one journal line, verifying its checksum. ok=false
// means the line (and by the append-only contract everything after it)
// cannot be trusted.
func decodeLine(line []byte) (*record, bool) {
	// "<16 hex> <payload>\n" — anything shorter cannot hold a record.
	if len(line) < 19 || line[len(line)-1] != '\n' || line[16] != ' ' {
		return nil, false
	}
	var sumBytes [8]byte
	if _, err := hex.Decode(sumBytes[:], line[:16]); err != nil {
		return nil, false
	}
	payload := line[17 : len(line)-1]
	h := fnv.New64a()
	h.Write(payload)
	var want uint64
	for _, b := range sumBytes {
		want = want<<8 | uint64(b)
	}
	if h.Sum64() != want {
		return nil, false
	}
	rec := &record{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, false
	}
	switch rec.Type {
	case "job", "item", "state", "snapshot":
		return rec, true
	default:
		return nil, false
	}
}

// readJournal scans checksummed records from r, calling fn for each valid
// one, and returns the byte offset just past the last valid record. The
// scan stops without error at the first malformed line — a torn tail
// write, a flipped bit, a line missing its newline — because an
// append-only log's corruption can only extend to its end; the caller
// truncates the file to the returned offset. Only I/O errors are
// returned.
func readJournal(r io.Reader, fn func(*record)) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var off int64
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// A partial final line is a torn write: drop it.
			return off, nil
		}
		if err != nil {
			return off, err
		}
		rec, ok := decodeLine(line)
		if !ok {
			return off, nil
		}
		fn(rec)
		off += int64(len(line))
	}
}

// writeSnapshot atomically replaces the snapshot file with the given
// jobs: write to a temp file in the same directory, sync, rename. A
// crash at any point leaves either the old snapshot or the new one,
// never a torn file.
func writeSnapshot(dir string, jobsList []*Job) error {
	line, err := encodeRecord(&record{Type: "snapshot", Jobs: jobsList})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, snapshotName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(line); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, snapshotName))
}

// readSnapshot loads the snapshot file, if a trustworthy one exists. Any
// problem — missing file, bad checksum, wrong record type — yields nil:
// the snapshot is an optimization over replaying the whole journal, so
// an untrustworthy one is simply ignored.
func readSnapshot(dir string) []*Job {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil
	}
	rec, ok := decodeLine(data)
	if !ok || rec.Type != "snapshot" {
		return nil
	}
	return rec.Jobs
}
