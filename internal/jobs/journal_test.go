package jobs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// mkItems builds n distinct canonical experiment items.
func mkItems(ids ...string) []Item {
	items := make([]Item, len(ids))
	for i, id := range ids {
		items[i] = Item{Kind: "experiment", Experiment: id, Quick: true}
	}
	return items
}

func TestJournalRoundTrip(t *testing.T) {
	recs := []*record{
		{Type: "job", Job: &Job{ID: "a", State: StatePending, Items: mkItems("table3"), Results: []ItemResult{{Status: ItemPending}}}},
		{Type: "item", ID: "a", Index: 0, Item: &ItemResult{Status: ItemDone, Result: []byte(`{"x":1}`)}},
		{Type: "state", ID: "a", State: StateDone},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		line, err := encodeRecord(r)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		buf.Write(line)
	}
	var got []*record
	off, err := readJournal(bytes.NewReader(buf.Bytes()), func(r *record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if off != int64(buf.Len()) {
		t.Fatalf("offset %d, want %d (whole file valid)", off, buf.Len())
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Type != recs[i].Type {
			t.Errorf("record %d type %q, want %q", i, r.Type, recs[i].Type)
		}
	}
	if got[1].Item == nil || string(got[1].Item.Result) != `{"x":1}` {
		t.Errorf("item payload did not round-trip: %+v", got[1].Item)
	}
}

// TestJournalTruncatedTail: a torn final write (no newline) must not cost
// the records before it.
func TestJournalTruncatedTail(t *testing.T) {
	line1, _ := encodeRecord(&record{Type: "state", ID: "a", State: StateRunning})
	line2, _ := encodeRecord(&record{Type: "state", ID: "a", State: StateDone})
	data := append(append([]byte{}, line1...), line2[:len(line2)/2]...) // torn mid-record

	var n int
	off, err := readJournal(bytes.NewReader(data), func(*record) { n++ })
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if n != 1 {
		t.Fatalf("decoded %d records, want 1 (the intact one)", n)
	}
	if off != int64(len(line1)) {
		t.Fatalf("offset %d, want %d (end of last valid record)", off, len(line1))
	}
}

// TestJournalBitFlip: a flipped bit anywhere in a record fails its
// checksum and everything after it is distrusted.
func TestJournalBitFlip(t *testing.T) {
	var buf bytes.Buffer
	var lens []int
	for _, st := range []State{StatePending, StateRunning, StateDone} {
		line, _ := encodeRecord(&record{Type: "state", ID: "a", State: st})
		buf.Write(line)
		lens = append(lens, len(line))
	}
	data := buf.Bytes()
	// Flip one payload bit in the middle record.
	data[lens[0]+20] ^= 0x04

	var got []State
	off, err := readJournal(bytes.NewReader(data), func(r *record) { got = append(got, r.State) })
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if len(got) != 1 || got[0] != StatePending {
		t.Fatalf("decoded %v, want just the first record", got)
	}
	if off != int64(lens[0]) {
		t.Fatalf("offset %d, want %d", off, lens[0])
	}
}

// TestStoreRecoversFromCorruptTail: Open must truncate a corrupt journal
// tail, keep everything before it, count the discarded bytes, and leave
// the file appendable.
func TestStoreRecoversFromCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	itemsA := mkItems("table3")
	if _, _, err := s.Submit(itemsA); err != nil {
		t.Fatal(err)
	}
	idA := JobID(itemsA)
	if err := s.SetItemResult(idA, 0, ItemResult{Status: ItemDone, Result: []byte(`{"ok":true}`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetState(idA, StateDone); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close compacted into the snapshot; plant fresh journal records and
	// then corrupt the later ones.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	itemsB := mkItems("fig15")
	if _, _, err := s2.Submit(itemsB); err != nil {
		t.Fatal(err)
	}
	// Skip Close (simulating a crash): corrupt the tail on disk directly.
	path := filepath.Join(dir, journalName)
	garbage := []byte("deadbeef not a valid journal line at all\npartial")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after corruption: %v", err)
	}
	defer s3.Close()
	st := s3.Stats()
	if st.RecoveredBytes != int64(len(garbage)) {
		t.Errorf("RecoveredBytes = %d, want %d", st.RecoveredBytes, len(garbage))
	}
	if jA, ok := s3.Get(idA); !ok || jA.State != StateDone || string(jA.Results[0].Result) != `{"ok":true}` {
		t.Errorf("job A not intact after recovery: %+v", jA)
	}
	if jB, ok := s3.Get(JobID(itemsB)); !ok || jB.State != StatePending {
		t.Errorf("job B (before the corruption) not intact: %+v", jB)
	}
	// The tail must actually be gone from disk and the journal appendable.
	if _, _, err := s3.Submit(mkItems("fig16")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("deadbeef not")) {
		t.Error("corrupt tail still present on disk")
	}
}

// TestStoreStaleSnapshotNewerJournal: a snapshot that predates later
// journal records must be superseded by them on replay.
func TestStoreStaleSnapshotNewerJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	items := mkItems("table3", "fig15")
	if _, _, err := s.Submit(items); err != nil {
		t.Fatal(err)
	}
	id := JobID(items)
	// Force a compaction now: the snapshot captures the job still pending.
	s.mu.Lock()
	s.compactLocked()
	s.mu.Unlock()
	// Newer history lands in the journal only.
	if err := s.SetItemResult(id, 0, ItemResult{Status: ItemDone, Result: []byte(`1`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetItemResult(id, 1, ItemResult{Status: ItemDone, Result: []byte(`2`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetState(id, StateDone); err != nil {
		t.Fatal(err)
	}
	// Crash without Close: the snapshot on disk is stale.

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j, ok := s2.Get(id)
	if !ok {
		t.Fatal("job missing after reopen")
	}
	if j.State != StateDone || j.Progress.Done != 2 {
		t.Errorf("stale snapshot won over newer journal: state=%s progress=%+v", j.State, j.Progress)
	}
	if string(j.Results[1].Result) != `2` {
		t.Errorf("journal item result lost: %+v", j.Results[1])
	}
}

// TestSnapshotIgnoredWhenCorrupt: a flipped bit in the snapshot file must
// not take the store down — the journal alone still reconstructs it.
func TestSnapshotIgnoredWhenCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	items := mkItems("table3")
	if _, _, err := s.Submit(items); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.compactLocked()
	s.mu.Unlock()
	// Re-journal the job so it survives losing the snapshot (compaction
	// truncated the journal; a fresh submit would dedup, so write the
	// record directly as a crashed writer would have).
	if err := s.SetState(JobID(items), StateRunning); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with corrupt snapshot: %v", err)
	}
	defer s2.Close()
	// The job record lived only in the pre-compaction snapshot, so losing
	// the snapshot loses it — but the store opens, and the "state" record
	// for the now-unknown job replays as a harmless no-op.
	if n := len(s2.List()); n != 0 {
		t.Errorf("expected empty store after snapshot loss, got %d jobs", n)
	}
	if _, _, err := s2.Submit(items); err != nil {
		t.Fatalf("store unusable after snapshot corruption: %v", err)
	}
}

// FuzzReadJournal: whatever bytes are on disk, readJournal must not
// error, must return an offset inside the input that falls on a record
// boundary, and re-reading its own prefix must be a fixpoint.
func FuzzReadJournal(f *testing.F) {
	line1, _ := encodeRecord(&record{Type: "job", Job: &Job{ID: "a", Items: mkItems("table3"), Results: []ItemResult{{Status: ItemPending}}}})
	line2, _ := encodeRecord(&record{Type: "state", ID: "a", State: StateDone})
	f.Add(append(append([]byte{}, line1...), line2...))
	f.Add(append(append([]byte{}, line1...), line2[:12]...))
	f.Add([]byte("0000000000000000 {}\n"))
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var n int
		off, err := readJournal(bytes.NewReader(data), func(*record) { n++ })
		if err != nil {
			t.Fatalf("readJournal errored on in-memory input: %v", err)
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d outside input of %d bytes", off, len(data))
		}
		var n2 int
		off2, err := readJournal(bytes.NewReader(data[:off]), func(*record) { n2++ })
		if err != nil || off2 != off || n2 != n {
			t.Fatalf("prefix not a fixpoint: off %d->%d, records %d->%d, err %v", off, off2, n, n2, err)
		}
	})
}
