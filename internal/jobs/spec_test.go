package jobs

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"buspower/internal/experiments"
)

func TestParseSpecRequests(t *testing.T) {
	items, err := ParseSpec([]byte(`{"requests":[
		{"values":[1,2,3],"scheme":"raw"},
		{"values":[1,2,3],"scheme":"window:entries=8","lambda":2}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("%d items, want 2", len(items))
	}
	for i, it := range items {
		if it.Kind != "eval" || it.Eval == nil {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
	// ParseEvalRequest canonicalizes the scheme spec, so equivalent
	// spellings content-address identically.
	if got := items[1].Eval.Scheme; got != "window:entries=8" {
		t.Errorf("canonical scheme = %q", got)
	}
	a, _ := ParseSpec([]byte(`{"requests":[{"values":[1,2,3],"scheme":"raw"}]}`))
	b, _ := ParseSpec([]byte(`{ "requests" : [ { "scheme" : "raw", "values" : [1, 2, 3] } ] }`))
	if JobID(a) != JobID(b) {
		t.Error("equivalent submissions got different job ids")
	}
}

func TestParseSpecSuite(t *testing.T) {
	items, err := ParseSpec([]byte(`{"suite":{"experiments":"table3,fig15","quick":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Experiment != "table3" || items[1].Experiment != "fig15" {
		t.Fatalf("items: %+v", items)
	}
	for _, it := range items {
		if it.Kind != "experiment" || !it.Quick {
			t.Fatalf("item: %+v", it)
		}
	}
	all, err := ParseSpec([]byte(`{"suite":{"experiments":"all"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiments.IDs()) {
		t.Errorf("'all' expanded to %d items, want %d", len(all), len(experiments.IDs()))
	}
}

func TestParseSpecRejects(t *testing.T) {
	big := `{"requests":[` + strings.Repeat(`{"values":[1],"scheme":"raw"},`, MaxItems) + `{"values":[1],"scheme":"raw"}]}`
	cases := []struct {
		name, spec, wantIn string
	}{
		{"neither source", `{}`, "exactly one"},
		{"both sources", `{"requests":[{"values":[1],"scheme":"raw"}],"suite":{"experiments":"all"}}`, "exactly one"},
		{"unknown field", `{"turbo":1}`, "unknown field"},
		{"not json", `nope`, "bad job spec"},
		{"trailing data", `{"suite":{"experiments":"all"}}[]`, "trailing data"},
		{"bad request", `{"requests":[{"values":[1],"scheme":"quantum"}]}`, "request 0"},
		{"unbuildable scheme", `{"requests":[{"values":[1],"scheme":"spatial"}]}`, "request 0"},
		{"bad suite id", `{"suite":{"experiments":"figXX"}}`, "unknown experiment"},
		{"too many items", big, fmt.Sprintf("cap %d", MaxItems)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.spec))
			if err == nil || !strings.Contains(err.Error(), tc.wantIn) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantIn)
			}
		})
	}
}

func TestDefaultRunExperiment(t *testing.T) {
	if _, err := defaultRunExperiment(context.Background(), Item{Kind: "experiment", Experiment: "figXX", Quick: true}, 1); err == nil {
		t.Fatal("unknown experiment id must error")
	}
	out, err := defaultRunExperiment(context.Background(), Item{Kind: "experiment", Experiment: "table3", Quick: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := out.(*experiments.Table)
	if !ok || tbl.ID != "table3" || len(tbl.Rows) == 0 {
		t.Fatalf("unexpected result: %#v", out)
	}
}
