package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Event is one progress notification delivered to SSE subscribers:
// either a job-level state transition or one item's completion.
type Event struct {
	// Type is "state" or "item".
	Type  string `json:"type"`
	JobID string `json:"job_id"`
	// State is the job's state after the event.
	State State `json:"state"`
	// Index and Item carry the item outcome ("item" events).
	Index int         `json:"index,omitempty"`
	Item  *ItemResult `json:"item,omitempty"`
	// Progress is the job's counts after the event.
	Progress Progress `json:"progress"`
}

// StoreStats is a point-in-time snapshot of the store for /metrics.
type StoreStats struct {
	// JobsByState counts the resident jobs per lifecycle state.
	JobsByState map[State]int
	// JournalBytes is the journal file's current size (0 when the store
	// is memory-only).
	JournalBytes int64
	// Compactions counts snapshot compactions performed.
	Compactions uint64
	// RecoveredBytes counts journal bytes discarded by corruption
	// recovery at Open.
	RecoveredBytes int64
}

// Store holds every job in memory and mirrors the durable parts —
// submissions, item outcomes, state transitions — into the journal. All
// methods are safe for concurrent use. With an empty dir the store is
// memory-only (no journal, no snapshot): same semantics, no durability.
type Store struct {
	mu   sync.Mutex
	dir  string
	jobs map[string]*Job
	// order preserves submission order for List.
	order []string

	journal      *os.File
	journalBytes int64
	// compactBytes is the journal size that triggers snapshot compaction.
	compactBytes int64
	compactions  uint64
	recovered    int64

	subs map[string][]chan Event

	// now is injectable for tests.
	now func() time.Time
}

// defaultCompactBytes keeps the journal a few flushes long: full-suite
// jobs journal tables of a few hundred KiB, so compaction every ~8 MiB
// bounds replay time without rewriting the snapshot on every item.
const defaultCompactBytes = 8 << 20

// Open loads (or creates) the job store rooted at dir, recovering from
// any corrupt journal tail by truncating back to the last valid record.
// An empty dir yields a memory-only store.
func Open(dir string) (*Store, error) {
	s := &Store{
		jobs:         map[string]*Job{},
		subs:         map[string][]chan Event{},
		compactBytes: defaultCompactBytes,
		now:          time.Now,
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: store dir: %w", err)
	}
	s.dir = dir
	// Snapshot first (it may be absent or stale), then the journal on
	// top: records the snapshot already contains replay as no-ops.
	for _, j := range readSnapshot(dir) {
		s.apply(&record{Type: "job", Job: j})
	}
	path := filepath.Join(dir, journalName)
	if f, err := os.Open(path); err == nil {
		valid, rerr := readJournal(f, s.apply)
		size, _ := f.Seek(0, 2)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("jobs: reading journal: %w", rerr)
		}
		if valid < size {
			// Corrupt tail: drop it, keep everything before.
			s.recovered = size - valid
			if err := os.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("jobs: truncating corrupt journal tail: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening journal for append: %w", err)
	}
	s.journal = f
	if st, err := f.Stat(); err == nil {
		s.journalBytes = st.Size()
	}
	// A crash mid-run left jobs running and items started-but-unfinished;
	// demote both to pending so the engine re-enqueues exactly the
	// incomplete work (completed item results are durable and kept).
	for _, j := range s.jobs {
		s.normalizeRecovered(j)
	}
	return s, nil
}

// normalizeRecovered resets transient in-flight markers after a restart.
func (s *Store) normalizeRecovered(j *Job) {
	for i := range j.Results {
		if j.Results[i].Status == ItemRunning {
			j.Results[i].Status = ItemPending
		}
	}
	if j.State == StateRunning {
		j.State = StatePending
		j.StartedAt = nil
	}
	j.recount()
}

// apply replays one journal record into memory. It must stay idempotent:
// compaction can leave the journal holding records the snapshot already
// reflects, and replaying them twice must be harmless.
func (s *Store) apply(rec *record) {
	switch rec.Type {
	case "job":
		if rec.Job == nil || rec.Job.ID == "" {
			return
		}
		if _, exists := s.jobs[rec.Job.ID]; exists {
			return
		}
		j := rec.Job.clone()
		if len(j.Results) != len(j.Items) {
			// A foreign or hand-edited record; normalize rather than crash.
			j.Results = make([]ItemResult, len(j.Items))
			for i := range j.Results {
				j.Results[i].Status = ItemPending
			}
		}
		j.recount()
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	case "item":
		j, ok := s.jobs[rec.ID]
		if !ok || rec.Item == nil || rec.Index < 0 || rec.Index >= len(j.Results) {
			return
		}
		j.Results[rec.Index] = *rec.Item
		j.recount()
	case "state":
		j, ok := s.jobs[rec.ID]
		if !ok {
			return
		}
		s.applyState(j, rec.State, rec.TS)
	}
}

// applyState performs one job-level transition. Re-activation (a failed
// or cancelled job resubmitted) transitions back to pending and resets
// every non-done item so only the incomplete work re-runs.
func (s *Store) applyState(j *Job, st State, ts time.Time) {
	switch st {
	case StatePending:
		for i := range j.Results {
			if j.Results[i].Status != ItemDone {
				j.Results[i] = ItemResult{Status: ItemPending}
			}
		}
		j.State = StatePending
		j.StartedAt = nil
		j.FinishedAt = nil
	case StateRunning:
		j.State = StateRunning
		if j.StartedAt == nil {
			t := ts
			j.StartedAt = &t
		}
	case StateDone, StateFailed, StateCancelled:
		j.State = st
		if j.FinishedAt == nil {
			t := ts
			j.FinishedAt = &t
		}
	}
	j.recount()
}

// append journals one record. Memory is the source of truth while the
// process lives; a failed append degrades durability, not correctness,
// so callers decide whether to surface the error. Called under mu.
func (s *Store) append(rec *record) error {
	if s.journal == nil {
		return nil
	}
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	n, err := s.journal.Write(line)
	s.journalBytes += int64(n)
	if err != nil {
		return fmt.Errorf("jobs: journal append: %w", err)
	}
	if s.journalBytes >= s.compactBytes {
		s.compactLocked()
	}
	return nil
}

// compactLocked folds the journal into a freshly renamed snapshot and
// truncates the journal. Failure leaves the journal as-is (longer, but
// still correct). Called under mu.
func (s *Store) compactLocked() {
	if s.journal == nil {
		return
	}
	if err := s.journal.Sync(); err != nil {
		return
	}
	all := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		all = append(all, s.jobs[id])
	}
	if err := writeSnapshot(s.dir, all); err != nil {
		return
	}
	// The snapshot is durable; the journal's records are now redundant
	// (replay is idempotent if we crash before this truncate completes).
	if err := s.journal.Truncate(0); err != nil {
		return
	}
	if _, err := s.journal.Seek(0, 0); err == nil {
		s.journalBytes = 0
		s.compactions++
	}
}

// Submit creates (and journals) a job for the canonical items, or
// returns the existing job with the same content address. A terminal
// failed/cancelled job is re-activated: its non-done items reset to
// pending so only incomplete work re-runs. The bool reports whether any
// new work was scheduled (a fresh job or a re-activation).
func (s *Store) Submit(items []Item) (*Job, bool, error) {
	id := JobID(items)
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		switch j.State {
		case StateFailed, StateCancelled:
			rec := &record{Type: "state", ID: id, State: StatePending, TS: s.now().UTC()}
			if err := s.append(rec); err != nil {
				return nil, false, err
			}
			s.applyState(j, StatePending, rec.TS)
			s.publish(j, Event{Type: "state", JobID: id, State: j.State, Progress: j.Progress})
			return j.clone(), true, nil
		default:
			return j.clone(), false, nil
		}
	}
	j := &Job{
		ID:        id,
		State:     StatePending,
		CreatedAt: s.now().UTC(),
		Items:     append([]Item(nil), items...),
		Results:   make([]ItemResult, len(items)),
	}
	for i := range j.Results {
		j.Results[i].Status = ItemPending
	}
	j.recount()
	if err := s.append(&record{Type: "job", Job: j}); err != nil {
		return nil, false, err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j.clone(), true, nil
}

// Get returns a deep copy of the job.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// List returns deep copies of every job in submission order.
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].clone())
	}
	return out
}

// SetItemRunning marks one item in-flight. Transient — not journaled (a
// restart demotes running items to pending anyway) but published to
// subscribers for live progress.
func (s *Store) SetItemRunning(id string, index int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || index < 0 || index >= len(j.Results) || j.Results[index].Status != ItemPending {
		return
	}
	j.Results[index].Status = ItemRunning
	j.recount()
	res := j.Results[index]
	s.publish(j, Event{Type: "item", JobID: id, State: j.State, Index: index, Item: &res, Progress: j.Progress})
}

// SetItemResult records (and journals) one item's durable outcome.
func (s *Store) SetItemResult(id string, index int, res ItemResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || index < 0 || index >= len(j.Results) {
		return fmt.Errorf("jobs: no item %d in job %s", index, id)
	}
	err := s.append(&record{Type: "item", ID: id, Index: index, Item: &res})
	j.Results[index] = res
	j.recount()
	s.publish(j, Event{Type: "item", JobID: id, State: j.State, Index: index, Item: &res, Progress: j.Progress})
	return err
}

// SetState records (and journals) a job-level transition, publishing it
// to subscribers. Terminal transitions close every subscriber channel:
// the SSE layer re-reads the final job and ends the stream.
func (s *Store) SetState(id string, st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: unknown job %s", id)
	}
	if j.State == st || (j.State.Terminal() && !st.Terminal()) {
		return nil
	}
	rec := &record{Type: "state", ID: id, State: st, TS: s.now().UTC()}
	err := s.append(rec)
	s.applyState(j, st, rec.TS)
	s.publish(j, Event{Type: "state", JobID: id, State: j.State, Progress: j.Progress})
	return err
}

// Subscribe registers a progress-event channel for the job. The channel
// is buffered; a subscriber that falls far behind loses intermediate
// events but never the terminal close. The returned cancel is idempotent
// and must be called when the subscriber goes away.
func (s *Store) Subscribe(id string) (<-chan Event, func(), bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, false
	}
	ch := make(chan Event, 64)
	if j.State.Terminal() {
		// Nothing further will happen; hand back an already-closed channel
		// so the subscriber immediately renders the final state.
		close(ch)
		return ch, func() {}, true
	}
	s.subs[id] = append(s.subs[id], ch)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		list := s.subs[id]
		for i, c := range list {
			if c == ch {
				s.subs[id] = append(list[:i], list[i+1:]...)
				close(c)
				break
			}
		}
	}
	return ch, cancel, true
}

// publish fans an event out to the job's subscribers (non-blocking: a
// full buffer drops the event) and closes the channels on terminal
// states. Called under mu.
func (s *Store) publish(j *Job, ev Event) {
	for _, ch := range s.subs[j.ID] {
		select {
		case ch <- ev:
		default:
		}
	}
	if j.State.Terminal() {
		for _, ch := range s.subs[j.ID] {
			close(ch)
		}
		delete(s.subs, j.ID)
	}
}

// Incomplete returns the jobs (in submission order) that still have work
// to do, for the engine to resume after a restart.
func (s *Store) Incomplete() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; !j.State.Terminal() {
			out = append(out, j.clone())
		}
	}
	return out
}

// Stats snapshots the store for /metrics.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		JobsByState:    map[State]int{},
		JournalBytes:   s.journalBytes,
		Compactions:    s.compactions,
		RecoveredBytes: s.recovered,
	}
	for _, j := range s.jobs {
		st.JobsByState[j.State]++
	}
	return st
}

// Close compacts into a final snapshot and closes the journal. The store
// must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	s.compactLocked()
	err := s.journal.Close()
	s.journal = nil
	return err
}
