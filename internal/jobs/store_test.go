package jobs

import (
	"testing"
	"time"
)

func TestSubmitDedupAndReactivation(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	items := mkItems("table3", "fig15")
	j1, created, err := s.Submit(items)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	if j1.State != StatePending || j1.Progress.Pending != 2 {
		t.Fatalf("fresh job: %+v", j1)
	}
	if _, created, _ := s.Submit(items); created {
		t.Fatal("identical submission must coalesce, not create")
	}
	// One item succeeds, one fails, job fails.
	s.SetItemResult(j1.ID, 0, ItemResult{Status: ItemDone, Result: []byte(`1`)})
	s.SetItemResult(j1.ID, 1, ItemResult{Status: ItemFailed, Error: "boom"})
	s.SetState(j1.ID, StateFailed)

	// Resubmission re-activates: back to pending with only the failed
	// item reset; the done item's result is retained.
	j2, created, err := s.Submit(items)
	if err != nil || !created {
		t.Fatalf("re-activation: created=%v err=%v", created, err)
	}
	if j2.State != StatePending {
		t.Errorf("re-activated state = %s, want pending", j2.State)
	}
	if j2.Results[0].Status != ItemDone || string(j2.Results[0].Result) != `1` {
		t.Errorf("done item was reset: %+v", j2.Results[0])
	}
	if j2.Results[1].Status != ItemPending || j2.Results[1].Error != "" {
		t.Errorf("failed item not reset: %+v", j2.Results[1])
	}
}

func TestSubmitOrderIndependentID(t *testing.T) {
	a := JobID(mkItems("table3", "fig15"))
	b := JobID(mkItems("fig15", "table3"))
	if a == b {
		t.Fatal("distinct item orders are distinct jobs (items run positionally)")
	}
	if a != JobID(mkItems("table3", "fig15")) {
		t.Fatal("JobID not deterministic")
	}
}

func TestSubscribeStreamsAndCloses(t *testing.T) {
	s, _ := Open("")
	items := mkItems("table3")
	j, _, _ := s.Submit(items)
	ch, cancel, ok := s.Subscribe(j.ID)
	if !ok {
		t.Fatal("subscribe on live job failed")
	}
	defer cancel()

	s.SetState(j.ID, StateRunning)
	s.SetItemResult(j.ID, 0, ItemResult{Status: ItemDone, Result: []byte(`1`)})
	s.SetState(j.ID, StateDone)

	var types []string
	for ev := range ch { // closes on the terminal transition
		types = append(types, ev.Type)
	}
	want := []string{"state", "item", "state"}
	if len(types) != len(want) {
		t.Fatalf("events %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("events %v, want %v", types, want)
		}
	}

	// Subscribing to a terminal job yields an immediately closed channel.
	ch2, cancel2, ok := s.Subscribe(j.ID)
	if !ok {
		t.Fatal("subscribe on terminal job failed")
	}
	defer cancel2()
	select {
	case _, open := <-ch2:
		if open {
			t.Fatal("terminal subscription delivered an event instead of closing")
		}
	case <-time.After(time.Second):
		t.Fatal("terminal subscription channel not closed")
	}
}

func TestRunningDemotedToPendingOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	items := mkItems("table3", "fig15")
	j, _, _ := s.Submit(items)
	s.SetState(j.ID, StateRunning)
	s.SetItemRunning(j.ID, 0) // transient, deliberately not journaled
	s.SetItemResult(j.ID, 1, ItemResult{Status: ItemDone, Result: []byte(`2`)})
	// Crash without Close.

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(j.ID)
	if !ok {
		t.Fatal("job missing after reopen")
	}
	if got.State != StatePending || got.StartedAt != nil {
		t.Errorf("running job not demoted to pending: state=%s started=%v", got.State, got.StartedAt)
	}
	if got.Results[0].Status != ItemPending {
		t.Errorf("in-flight item not demoted: %+v", got.Results[0])
	}
	if got.Results[1].Status != ItemDone {
		t.Errorf("completed item lost: %+v", got.Results[1])
	}
	inc := s2.Incomplete()
	if len(inc) != 1 || inc[0].ID != j.ID {
		t.Errorf("Incomplete() = %v, want the one recovered job", inc)
	}
}

func TestCompactionPreservesEverything(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.compactBytes = 256 // force frequent compaction
	ids := []string{"table3", "fig15", "fig16", "fig17"}
	for _, id := range ids {
		j, _, err := s.Submit(mkItems(id))
		if err != nil {
			t.Fatal(err)
		}
		s.SetItemResult(j.ID, 0, ItemResult{Status: ItemDone, Result: []byte(`{"id":"` + id + `"}`)})
		s.SetState(j.ID, StateDone)
	}
	if got := s.Stats(); got.Compactions == 0 {
		t.Fatal("expected at least one compaction at a 256-byte threshold")
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.List()); got != len(ids) {
		t.Fatalf("%d jobs after reopen, want %d", got, len(ids))
	}
	for _, id := range ids {
		j, ok := s2.Get(JobID(mkItems(id)))
		if !ok || j.State != StateDone || j.Progress.Done != 1 {
			t.Errorf("job %s not intact after compaction+reopen: %+v", id, j)
		}
	}
}
