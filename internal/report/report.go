// Package report builds a self-checking reproduction report: it runs the
// experiment suite, extracts the quantities the paper publishes numbers
// for, compares measured against published, and renders a Markdown
// document with a verdict per check. cmd/buspower exposes it as -report.
package report

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"buspower/internal/experiments"
)

// Verdict grades one comparison.
type Verdict string

const (
	// VerdictMatch: within tolerance of the published value.
	VerdictMatch Verdict = "MATCH"
	// VerdictShape: outside tolerance but the qualitative claim holds.
	VerdictShape Verdict = "SHAPE"
	// VerdictDiverges: the qualitative claim does not hold.
	VerdictDiverges Verdict = "DIVERGES"
)

// Check is one paper-vs-measured comparison.
type Check struct {
	// Artifact is the experiment id the quantity comes from.
	Artifact string
	// Name describes the quantity.
	Name string
	// Paper is the published value (0 when the paper states only a trend;
	// then Tolerance is ignored and Grade decides from the trend).
	Paper float64
	// Measured is our value.
	Measured float64
	// Tolerance is the relative deviation accepted as MATCH.
	Tolerance float64
	// TrendHolds reports whether the qualitative claim held (used when the
	// deviation exceeds Tolerance, and exclusively when Paper is 0).
	TrendHolds bool
	// Unit annotates the values.
	Unit string
}

// Grade returns the check's verdict. A trend-only check (Paper == 0) that
// holds is a MATCH — the paper published no number to deviate from.
func (c Check) Grade() Verdict {
	if c.Paper == 0 {
		if c.TrendHolds {
			return VerdictMatch
		}
		return VerdictDiverges
	}
	if math.Abs(c.Measured-c.Paper)/math.Abs(c.Paper) <= c.Tolerance {
		return VerdictMatch
	}
	if c.TrendHolds {
		return VerdictShape
	}
	return VerdictDiverges
}

// Report is the assembled document.
type Report struct {
	Checks []Check
	Tables map[string]*experiments.Table
}

// Build runs the required experiments and assembles all checks.
func Build(cfg experiments.Config) (*Report, error) {
	return BuildContext(context.Background(), cfg, experiments.Options{})
}

// BuildContext is Build with cancellation and a tunable worker pool: the
// required experiments run concurrently through experiments.RunAll.
func BuildContext(ctx context.Context, cfg experiments.Config, opts experiments.Options) (*Report, error) {
	r := &Report{Tables: map[string]*experiments.Table{}}
	need := []string{"table1", "table2", "table3", "fig15", "fig19", "fig21", "fig23"}
	tables, err := experiments.RunAll(ctx, cfg, need, opts)
	if err != nil {
		return nil, err
	}
	for i, id := range need {
		r.Tables[id] = tables[i]
	}
	var errs []string
	for _, f := range []func(*Report) error{
		checkTable1, checkTable2, checkTable3, checkFig15, checkFig19, checkValueVsTransition,
	} {
		if err := f(r); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("report: %s", strings.Join(errs, "; "))
	}
	sort.SliceStable(r.Checks, func(i, j int) bool { return r.Checks[i].Artifact < r.Checks[j].Artifact })
	return r, nil
}

// cell finds a numeric cell by matching leading key columns.
func cell(t *experiments.Table, valueCol int, keys ...string) (float64, error) {
rows:
	for i, row := range t.Rows {
		for k, key := range keys {
			if row[k] != key {
				continue rows
			}
		}
		if row[valueCol] == "inf" {
			return math.Inf(1), nil
		}
		return t.Float(i, valueCol)
	}
	return 0, fmt.Errorf("no row %v in %s", keys, t.ID)
}

func checkTable1(r *Report) error {
	t := r.Tables["table1"]
	for _, c := range []struct {
		tech, kind string
		paper      float64
	}{
		{"0.13um", "With repeaters", 0.670},
		{"0.10um", "With repeaters", 0.576},
		{"0.07um", "With repeaters", 0.591},
		{"0.13um", "Unbuffered wire", 14.0},
		{"0.10um", "Unbuffered wire", 16.6},
		{"0.07um", "Unbuffered wire", 14.5},
	} {
		v, err := cell(t, 2, c.tech, c.kind)
		if err != nil {
			return err
		}
		r.Checks = append(r.Checks, Check{
			Artifact: "table1", Name: "effective Λ " + c.tech + " " + strings.ToLower(c.kind),
			Paper: c.paper, Measured: v, Tolerance: 0.02, TrendHolds: v > 0, Unit: "",
		})
	}
	return nil
}

func checkTable2(r *Report) error {
	t := r.Tables["table2"]
	for _, c := range []struct {
		tech  string
		paper float64
	}{{"0.13um", 1.39}, {"0.10um", 1.07}, {"0.07um", 0.55}} {
		measured, err := cell(t, 5, "window-8", c.tech)
		if err != nil {
			return err
		}
		r.Checks = append(r.Checks, Check{
			Artifact: "table2", Name: "avg encoder energy " + c.tech,
			Paper: c.paper, Measured: measured, Tolerance: 0.10,
			TrendHolds: measured > 0 && measured < 2*c.paper, Unit: "pJ/cycle",
		})
	}
	return nil
}

func checkTable3(r *Report) error {
	t := r.Tables["table3"]
	get := func(tech string, entries int, suite string) (float64, error) {
		return cell(t, 3, tech, strconv.Itoa(entries), suite)
	}
	for _, c := range []struct {
		tech    string
		entries int
		suite   string
		paper   float64
	}{
		{"0.13um", 8, "ALL", 11.5},
		{"0.13um", 16, "ALL", 7.0},
		{"0.10um", 8, "ALL", 8.0},
		{"0.10um", 16, "ALL", 6.4},
		{"0.07um", 8, "ALL", 4.1},
		{"0.07um", 16, "ALL", 2.7},
	} {
		v, err := get(c.tech, c.entries, c.suite)
		if err != nil {
			return err
		}
		// Trend: crossovers shrink with technology and with more entries.
		v13, err := get("0.13um", c.entries, c.suite)
		if err != nil {
			return err
		}
		v07, err := get("0.07um", c.entries, c.suite)
		if err != nil {
			return err
		}
		r.Checks = append(r.Checks, Check{
			Artifact: "table3",
			Name:     fmt.Sprintf("median crossover %s %d-entry %s", c.tech, c.entries, c.suite),
			Paper:    c.paper, Measured: v, Tolerance: 0.25,
			TrendHolds: v07 < v13 && !math.IsInf(v, 1), Unit: "mm",
		})
	}
	return nil
}

func checkFig15(r *Report) error {
	t := r.Tables["fig15"]
	randV, err := cell(t, 3, "random", "lambda1", "1")
	if err != nil {
		return err
	}
	regV, err := cell(t, 3, "register bus average", "lambda1", "1")
	if err != nil {
		return err
	}
	r.Checks = append(r.Checks, Check{
		Artifact: "fig15", Name: "random minus real energy remaining at Λ=1 (random must look better)",
		Paper: 0, Measured: randV - regV, TrendHolds: randV < regV, Unit: "pct points",
	})
	return nil
}

func checkFig19(r *Report) error {
	t := r.Tables["fig19"]
	// Median savings at 8 entries across benchmarks, and the knee: the
	// step from 8 to 32 entries must be smaller than from 2..4 to 8.
	perSize := map[int][]float64{}
	for i, row := range t.Rows {
		size, err := strconv.Atoi(row[1])
		if err != nil {
			return err
		}
		v, err := t.Float(i, 2)
		if err != nil {
			return err
		}
		perSize[size] = append(perSize[size], v)
	}
	med := func(xs []float64) float64 {
		if len(xs) == 0 {
			return math.NaN()
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	m8 := med(perSize[8])
	m32 := med(perSize[32])
	m4 := med(perSize[4])
	r.Checks = append(r.Checks, Check{
		Artifact: "fig19", Name: "median register-bus savings at 8 entries (paper: 19-25%)",
		Paper: 22, Measured: m8, Tolerance: 0.35,
		TrendHolds: m8 > 5 && (m32-m8) < (m8-m4), Unit: "%",
	})
	return nil
}

func checkValueVsTransition(r *Report) error {
	avgOf := func(t *experiments.Table) (float64, error) {
		sum, n := 0.0, 0
		for i, row := range t.Rows {
			if row[0] == "random" {
				continue
			}
			v, err := t.Float(i, 2)
			if err != nil {
				return 0, err
			}
			sum += v
			n++
		}
		if n == 0 {
			return 0, fmt.Errorf("no rows")
		}
		return sum / float64(n), nil
	}
	value, err := avgOf(r.Tables["fig23"])
	if err != nil {
		return err
	}
	transition, err := avgOf(r.Tables["fig21"])
	if err != nil {
		return err
	}
	r.Checks = append(r.Checks, Check{
		Artifact: "fig23", Name: "value-based minus transition-based average savings (must be positive)",
		Paper: 0, Measured: value - transition, TrendHolds: value > transition, Unit: "pct points",
	})
	return nil
}

// Markdown renders the report.
func (r *Report) Markdown() string {
	var b strings.Builder
	b.WriteString("# Reproduction self-check\n\n")
	b.WriteString("Automated comparison of measured quantities against the values\n")
	b.WriteString("published in \"Exploiting Prediction to Reduce Power on Buses\".\n")
	b.WriteString("`MATCH` = within tolerance; `SHAPE` = outside tolerance but the\n")
	b.WriteString("qualitative claim holds; `DIVERGES` = the claim failed.\n\n")
	b.WriteString("| artifact | quantity | paper | measured | verdict |\n")
	b.WriteString("|---|---|---|---|---|\n")
	counts := map[Verdict]int{}
	for _, c := range r.Checks {
		v := c.Grade()
		counts[v]++
		paper := "trend"
		if c.Paper != 0 {
			paper = trim(c.Paper) + " " + c.Unit
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s %s | %s |\n",
			c.Artifact, c.Name, paper, trim(c.Measured), c.Unit, v)
	}
	fmt.Fprintf(&b, "\n**Summary: %d MATCH, %d SHAPE, %d DIVERGES of %d checks.**\n",
		counts[VerdictMatch], counts[VerdictShape], counts[VerdictDiverges], len(r.Checks))
	return b.String()
}

func trim(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}
