package report

import (
	"math"
	"strings"
	"testing"

	"buspower/internal/experiments"
)

func TestCheckGrading(t *testing.T) {
	cases := []struct {
		c    Check
		want Verdict
	}{
		{Check{Paper: 10, Measured: 10.5, Tolerance: 0.1, TrendHolds: true}, VerdictMatch},
		{Check{Paper: 10, Measured: 15, Tolerance: 0.1, TrendHolds: true}, VerdictShape},
		{Check{Paper: 10, Measured: 15, Tolerance: 0.1, TrendHolds: false}, VerdictDiverges},
		{Check{Paper: 0, Measured: 3, TrendHolds: true}, VerdictMatch},
		{Check{Paper: 0, Measured: 3, TrendHolds: false}, VerdictDiverges},
		{Check{Paper: -5, Measured: -5.1, Tolerance: 0.05, TrendHolds: false}, VerdictMatch},
	}
	for i, c := range cases {
		if got := c.c.Grade(); got != c.want {
			t.Errorf("case %d: Grade() = %s, want %s", i, got, c.want)
		}
	}
}

func TestBuildAndRender(t *testing.T) {
	r, err := Build(experiments.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Checks) < 15 {
		t.Fatalf("only %d checks assembled", len(r.Checks))
	}
	diverged := 0
	for _, c := range r.Checks {
		if c.Grade() == VerdictDiverges {
			diverged++
			t.Logf("DIVERGES: %s / %s (paper %v, measured %v)", c.Artifact, c.Name, c.Paper, c.Measured)
		}
		if math.IsNaN(c.Measured) {
			t.Errorf("check %s/%s measured NaN", c.Artifact, c.Name)
		}
	}
	// The reproduction must not diverge on more than 3 checks even at the
	// quick scale (shorter traces move numbers, not trends).
	if diverged > 3 {
		t.Errorf("%d checks diverge", diverged)
	}
	md := r.Markdown()
	for _, want := range []string{
		"# Reproduction self-check",
		"| artifact |",
		"table1", "table2", "table3", "fig15", "fig19", "fig23",
		"Summary:",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Table 1 is solved from the anchors: all six Λ checks must MATCH.
	for _, c := range r.Checks {
		if c.Artifact == "table1" && c.Grade() != VerdictMatch {
			t.Errorf("table1 check %q did not MATCH (measured %v)", c.Name, c.Measured)
		}
	}
}
