package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"

	"buspower/internal/cluster"
	"buspower/internal/experiments"
	"buspower/internal/workload"
)

// The sharded-serving layer: a static consistent-hash ring assigns
// every canonical request key a primary owner among the replicas. The
// owner computes and memoizes; non-owners serve from a bounded local
// response cache, filling it with single-flight peer fetches from the
// owner instead of recomputing. Every peer failure — dead replica,
// timeout, checksum mismatch, saturation — degrades that one request to
// the pre-cluster local path, never to an error.

// serveCluster is a Server's view of the replica topology.
type serveCluster struct {
	topo  *cluster.Topology
	peers *cluster.PeerClient

	// Routing outcome counters for /metrics: owned keys served through
	// the local engine, non-owned keys served from the response cache or
	// a peer fetch, and peer failures that fell back to local compute.
	ownedLocal  atomic.Uint64
	peerServed  atomic.Uint64
	cacheServed atomic.Uint64
	fallbacks   atomic.Uint64
}

// respCache is the serve-level response byte cache: canonical request
// key → exact marshalled 200 response. On the key's owner it shortcuts
// re-building the transcoder and re-marshalling on every warm hit; on
// non-owners it holds peer-fetched copies so steady-state traffic costs
// no peer hop. Results are deterministic in the key (the same argument
// the eval memo rests on), so entries never expire — only LRU bounds
// apply.
type respCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	limit   int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type respEntry struct {
	key  string
	data []byte
}

// defaultResponseCacheEntries bounds the response cache; at the ~600 B
// a typical EvalResponse marshals to, the default costs a few MiB.
const defaultResponseCacheEntries = 4096

func newRespCache(limit int) *respCache {
	if limit <= 0 {
		limit = defaultResponseCacheEntries
	}
	return &respCache{entries: map[string]*list.Element{}, lru: list.New(), limit: limit}
}

func (c *respCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.hits.Add(1)
		c.lru.MoveToFront(e)
		return e.Value.(*respEntry).data, true
	}
	c.misses.Add(1)
	return nil, false
}

func (c *respCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e)
		e.Value.(*respEntry).data = data
		return
	}
	c.entries[key] = c.lru.PushFront(&respEntry{key: key, data: data})
	for len(c.entries) > c.limit {
		victim := c.lru.Back()
		c.lru.Remove(victim)
		delete(c.entries, victim.Value.(*respEntry).key)
		c.evictions.Add(1)
	}
}

func (c *respCache) stats() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	entries = len(c.entries)
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), entries
}

// evalRingKey namespaces eval-result keys on the ring so they never
// collide with trace-container keys.
func evalRingKey(key string) string { return "eval:" + key }

// traceRingKey namespaces trace-cache content addresses on the ring.
func traceRingKey(key string) string { return "trace:" + key }

// bodyRingKey addresses a raw request body in the response cache: an
// alias entry for the canonical key that lets byte-identical repeats
// skip the parse/canonicalize pipeline. Never used for ring routing —
// two bodies can canonicalize to one key — only as a cache address.
func bodyRingKey(body []byte) string {
	sum := sha256.Sum256(body)
	return "body:" + hex.EncodeToString(sum[:])
}

// serveFromCluster answers a non-owned request from the response cache
// or the key's owner. It reports true when the response was written.
// False means the caller must run the local path: the replica owns the
// key, the request came from a peer (never re-routed — loops are
// structurally impossible), or every owner fetch failed (degradation).
func (s *Server) serveFromCluster(w http.ResponseWriter, r *http.Request, req experiments.EvalRequest, ringKey, bodyKey string) bool {
	c := s.cluster
	if c == nil || r.Header.Get(cluster.PeerHeader) != "" {
		return false
	}
	if c.topo.Ring.Owns(c.topo.Self.ID, ringKey) {
		c.ownedLocal.Add(1)
		return false
	}
	if data, ok := s.respCache.get(ringKey); ok {
		c.cacheServed.Add(1)
		s.respCache.put(bodyKey, data)
		writeJSONBytes(w, http.StatusOK, data)
		return true
	}
	// Canonical body: the owner re-derives the same ring key from it.
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	for _, owner := range c.topo.Ring.Owners(ringKey) {
		if owner.ID == c.topo.Self.ID {
			continue
		}
		data, err := c.peers.FetchEval(r.Context(), owner, ringKey, body)
		if err != nil {
			continue // next replica in the owner set, then local fallback
		}
		s.respCache.put(ringKey, data)
		s.respCache.put(bodyKey, data)
		c.peerServed.Add(1)
		writeJSONBytes(w, http.StatusOK, data)
		return true
	}
	c.fallbacks.Add(1)
	return false
}

// handlePeerEval answers POST /v1/peer/eval: the replica-internal
// transfer endpoint. The caller sends a canonical eval request; this
// replica — the key's owner — answers through its response cache and
// memoized engine, checksumming the payload for the transfer. Peer
// requests are never re-routed, so fetch chains cannot loop.
func (s *Server) handlePeerEval(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not a cluster member")
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if r.Header.Get(cluster.PeerHeader) == "" {
		writeError(w, http.StatusForbidden, "peer endpoint (missing %s)", cluster.PeerHeader)
		return
	}
	body, err := readBody(w, r, s.opts.MaxBodyBytes)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	req, err := experiments.ParseEvalRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := experiments.RequestKey(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, herr := s.evalResponseBytes(r, req, evalRingKey(key))
	if herr != nil {
		herr.write(w)
		return
	}
	w.Header().Set(cluster.ChecksumHeader, cluster.BodyChecksum(data))
	writeJSONBytes(w, http.StatusOK, data)
}

// handlePeerTrace answers GET /v1/peer/trace/{key}: the raw BUSTRC
// container stored under the content address, verbatim, with a
// transfer checksum. 404 is the authoritative miss the fetching side
// maps to "simulate locally".
func (s *Server) handlePeerTrace(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not a cluster member")
		return
	}
	if r.Header.Get(cluster.PeerHeader) == "" {
		writeError(w, http.StatusForbidden, "peer endpoint (missing %s)", cluster.PeerHeader)
		return
	}
	data, err := workload.CachedContainerBytes(r.PathValue("key"))
	switch {
	case err == nil:
	case errors.Is(err, workload.ErrNoCacheEntry):
		writeError(w, http.StatusNotFound, "no cached container")
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set(cluster.ChecksumHeader, cluster.BodyChecksum(data))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// installPeerTraceFetcher hooks the workload trace cache into the ring:
// a disk miss on a peer-owned key asks the owner for its container
// before simulating. The background context is deliberate — the fetch
// outlives no request (the trace-cache single-flight leader calls it),
// and the peer client applies its own timeout.
func (s *Server) installPeerTraceFetcher() {
	c := s.cluster
	workload.SetPeerTraceFetcher(func(key string) ([]byte, bool) {
		ringKey := traceRingKey(key)
		if c.topo.Ring.Owns(c.topo.Self.ID, ringKey) {
			return nil, false
		}
		for _, owner := range c.topo.Ring.Owners(ringKey) {
			if owner.ID == c.topo.Self.ID {
				continue
			}
			data, err := c.peers.FetchTrace(context.Background(), owner, key)
			if err == nil {
				return data, true
			}
			if errors.Is(err, cluster.ErrPeerMiss) {
				// The owner answered and has no copy: simulating locally
				// is faster than asking further non-owners.
				return nil, false
			}
		}
		return nil, false
	})
}
