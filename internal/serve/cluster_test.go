package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"buspower/internal/cluster"
	"buspower/internal/experiments"
	"buspower/internal/workload"
)

// swapHandler lets the HTTP listener exist before the Server it will
// serve — the ring needs every replica's URL, and httptest assigns URLs
// at start.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "replica not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type replica struct {
	srv  *Server
	base string // replica's own URL
	id   string
}

// startReplicas builds an n-replica shard group on real listeners, all
// sharing one ring view. The returned replicas are cleaned up with the
// test.
func startReplicas(t *testing.T, n int) []*replica {
	t.Helper()
	handlers := make([]*swapHandler, n)
	peers := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := range handlers {
		handlers[i] = &swapHandler{}
		servers[i] = httptest.NewServer(handlers[i])
		peers[i] = fmt.Sprintf("n%d=%s", i, servers[i].URL)
	}
	reps := make([]*replica, n)
	for i := range reps {
		topo, err := cluster.ParseTopology(fmt.Sprintf("n%d", i), peers, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		s := testServer(t, Options{
			Topology:       topo,
			RequestTimeout: 10 * time.Second,
			PeerTimeout:    2 * time.Second,
		})
		handlers[i].set(s.Handler())
		reps[i] = &replica{srv: s, base: servers[i].URL, id: topo.Self.ID}
	}
	t.Cleanup(func() {
		for i := range reps {
			reps[i].srv.Close()
			servers[i].Close()
		}
		workload.SetPeerTraceFetcher(nil)
	})
	return reps
}

// ownerOf resolves which replica primary-owns the eval request body.
func ownerOf(t *testing.T, reps []*replica, body string) (owner *replica, others []*replica) {
	t.Helper()
	req, err := experiments.ParseEvalRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	key, err := experiments.RequestKey(req)
	if err != nil {
		t.Fatal(err)
	}
	id := reps[0].srv.cluster.topo.Ring.Owner(evalRingKey(key)).ID
	for _, r := range reps {
		if r.id == id {
			owner = r
		} else {
			others = append(others, r)
		}
	}
	if owner == nil {
		t.Fatalf("owner %s not among replicas", id)
	}
	return owner, others
}

func postEvalHTTP(t *testing.T, base, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestClusterPeerRouting: a non-owner serves a peer-fetched response
// byte-identical to the owner's, then serves repeats from its local
// response cache without another hop.
func TestClusterPeerRouting(t *testing.T) {
	reps := startReplicas(t, 3)
	body := evalBody("window:entries=8")
	owner, others := ownerOf(t, reps, body)
	nonOwner := others[0]

	code, fromOwner := postEvalHTTP(t, owner.base, body)
	if code != http.StatusOK {
		t.Fatalf("owner: code %d: %s", code, fromOwner)
	}
	if got := owner.srv.cluster.ownedLocal.Load(); got != 1 {
		t.Fatalf("owner ownedLocal = %d, want 1", got)
	}

	code, fromPeer := postEvalHTTP(t, nonOwner.base, body)
	if code != http.StatusOK {
		t.Fatalf("non-owner: code %d: %s", code, fromPeer)
	}
	if !bytes.Equal(fromOwner, fromPeer) {
		t.Fatalf("peer-served response diverges:\nowner %s\npeer  %s", fromOwner, fromPeer)
	}
	if got := nonOwner.srv.cluster.peerServed.Load(); got != 1 {
		t.Fatalf("non-owner peerServed = %d, want 1", got)
	}
	if s := nonOwner.srv.cluster.peers.Stats(); s.EvalHits != 1 {
		t.Fatalf("non-owner peer stats = %+v, want one eval hit", s)
	}

	// Steady state, byte-identical replay: served straight off the
	// raw-body alias, before parsing — no second hop.
	code, cached := postEvalHTTP(t, nonOwner.base, body)
	if code != http.StatusOK || !bytes.Equal(cached, fromOwner) {
		t.Fatalf("cached replay: code %d, equal %v", code, bytes.Equal(cached, fromOwner))
	}
	if s := nonOwner.srv.cluster.peers.Stats(); s.EvalHits != 1 {
		t.Fatalf("replay reached the peer: %+v", s)
	}

	// A different byte encoding of the same request misses the body
	// alias but canonicalizes onto the cached ring key — still no hop.
	respaced := strings.Replace(body, `],"`, `], "`, 1)
	if respaced == body {
		t.Fatalf("test body %q has no separator to respace", body)
	}
	code, canon := postEvalHTTP(t, nonOwner.base, respaced)
	if code != http.StatusOK || !bytes.Equal(canon, fromOwner) {
		t.Fatalf("canonical replay: code %d, equal %v", code, bytes.Equal(canon, fromOwner))
	}
	if got := nonOwner.srv.cluster.cacheServed.Load(); got != 1 {
		t.Fatalf("non-owner cacheServed = %d, want 1", got)
	}
	if s := nonOwner.srv.cluster.peers.Stats(); s.EvalHits != 1 {
		t.Fatalf("canonical replay reached the peer: %+v", s)
	}
}

// TestClusterDeadPeerFallback: when the key's owner is unreachable, a
// non-owner computes locally and still answers 200 with the exact
// single-replica payload.
func TestClusterDeadPeerFallback(t *testing.T) {
	handler := &swapHandler{}
	live := httptest.NewServer(handler)
	defer live.Close()
	// The dead peer holds a ring slice but refuses every connection.
	peers := []string{"alive=" + live.URL, "dead=http://127.0.0.1:1"}
	topo, err := cluster.ParseTopology("alive", peers, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Options{Topology: topo, RequestTimeout: 10 * time.Second, PeerTimeout: 200 * time.Millisecond})
	defer s.Close()
	handler.set(s.Handler())

	// Find a request the dead node owns.
	var body string
	for i := 0; i < 200; i++ {
		cand := fmt.Sprintf(`{"random":%d,"scheme":"businvert"}`, 1000+i)
		req, err := experiments.ParseEvalRequest([]byte(cand))
		if err != nil {
			t.Fatal(err)
		}
		key, err := experiments.RequestKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if topo.Ring.Owner(evalRingKey(key)).ID == "dead" {
			body = cand
			break
		}
	}
	if body == "" {
		t.Fatal("no candidate request owned by the dead node")
	}

	code, got := postEvalHTTP(t, live.URL, body)
	if code != http.StatusOK {
		t.Fatalf("code %d: %s", code, got)
	}
	if n := s.cluster.fallbacks.Load(); n != 1 {
		t.Fatalf("fallbacks = %d, want 1", n)
	}
	// The degraded answer matches what a single-replica server computes.
	single := testServer(t, Options{RequestTimeout: 10 * time.Second})
	defer single.Close()
	rec := postEval(single.Handler(), body)
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), got) {
		t.Fatalf("degraded response diverges from single-replica:\n%s\n%s", got, rec.Body.Bytes())
	}
}

// TestPeerEndpointsGuarded: the internal surface rejects requests
// without the peer header, and is absent outside cluster mode.
func TestPeerEndpointsGuarded(t *testing.T) {
	reps := startReplicas(t, 2)
	resp, err := http.Post(reps[0].base+"/v1/peer/eval", "application/json", strings.NewReader(evalBody("raw")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("headerless peer eval: code %d, want 403", resp.StatusCode)
	}

	single := testServer(t, Options{})
	defer single.Close()
	req := httptest.NewRequest(http.MethodPost, "/v1/peer/eval", strings.NewReader(evalBody("raw")))
	req.Header.Set(cluster.PeerHeader, "x")
	rec := httptest.NewRecorder()
	single.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("single-replica peer eval: code %d, want 404", rec.Code)
	}
}

// TestPeerTraceEndpoint: a replica serves its cached trace containers
// verbatim with a transfer checksum; absent and malformed keys map to
// 404 and 400.
func TestPeerTraceEndpoint(t *testing.T) {
	dir := t.TempDir()
	prev, err := workload.SetTraceCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer workload.SetTraceCacheDir(prev)
	defer workload.ClearTraceCache()
	workload.ClearTraceCache()

	// Populate one cache entry with a tiny run.
	if _, err := workload.Traces("li", workload.RunConfig{MaxInstructions: 20_000, MaxBusValues: 4_000}); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.trc"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries %v (err %v), want exactly one", entries, err)
	}
	key := strings.TrimSuffix(filepath.Base(entries[0]), ".trc")
	want, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}

	reps := startReplicas(t, 2)
	get := func(path string) (int, []byte, http.Header) {
		req, err := http.NewRequest(http.MethodGet, reps[0].base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(cluster.PeerHeader, "test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), resp.Header
	}

	code, got, hdr := get("/v1/peer/trace/" + key)
	if code != http.StatusOK {
		t.Fatalf("code %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("transferred container diverges from disk copy (%d vs %d bytes)", len(got), len(want))
	}
	if cs := hdr.Get(cluster.ChecksumHeader); cs != cluster.BodyChecksum(want) {
		t.Fatalf("checksum header %q", cs)
	}

	if code, _, _ := get("/v1/peer/trace/" + strings.Repeat("0", 32)); code != http.StatusNotFound {
		t.Fatalf("absent key: code %d, want 404", code)
	}
	if code, _, _ := get("/v1/peer/trace/..%2F..%2Fetc"); code != http.StatusBadRequest {
		t.Fatalf("malformed key: code %d, want 400", code)
	}
}

// TestClusterMetricsExposition: ring shape, ownership, routing and peer
// counters all surface on /metrics.
func TestClusterMetricsExposition(t *testing.T) {
	reps := startReplicas(t, 3)
	body := evalBody("gray")
	_, others := ownerOf(t, reps, body)
	if code, _ := postEvalHTTP(t, others[0].base, body); code != http.StatusOK {
		t.Fatalf("eval failed: %d", code)
	}
	resp, err := http.Get(others[0].base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, w := range []string{
		"buspower_ring_nodes 3",
		`buspower_ring_ownership{node="n0"}`,
		`buspower_cluster_eval_total{path="peer"} 1`,
		`buspower_peer_fetch_total{kind="eval",result="hit"} 1`,
		"buspower_response_cache_entries",
		"buspower_trace_cache_peer_hits",
	} {
		if !strings.Contains(text, w) {
			t.Errorf("metrics missing %q", w)
		}
	}
}
