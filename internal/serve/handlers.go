package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"

	"buspower/internal/coding"
	"buspower/internal/experiments"
	"buspower/internal/workload"
)

// handleEval answers POST /v1/eval: one experiments.EvalRequest in, one
// experiments.EvalResponse out. The full pipeline is: body size limit →
// strict parse/validate (400) → pool admission (429 when saturated) →
// per-request timeout → memoized evaluation.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	req, err := experiments.ParseEvalRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Scheme parameter *combinations* no constructor admits (e.g. spatial
	// at width 32) only surface at build time; classify them as client
	// errors here rather than letting the evaluation path 500 on them.
	if _, err := coding.BuildScheme(req.Scheme); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	release, err := s.pool.acquire(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, errSaturated):
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, "server saturated: %d evaluations running, %d queued", s.opts.Workers, s.opts.QueueDepth)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "request deadline expired while queued")
		default: // client went away while queued
			writeError(w, http.StatusServiceUnavailable, "request cancelled while queued")
		}
		return
	}
	defer release()

	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	resp, err := experiments.EvaluateRequest(ctx, req)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "evaluation exceeded the %v request timeout", s.opts.RequestTimeout)
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "request cancelled")
		default:
			// Validation re-runs inside EvaluateRequest; anything it
			// rejects after the parse above is still a client error.
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// schemeInfo describes one accepted scheme kind for /v1/schemes.
type schemeInfo struct {
	Kind    string `json:"kind"`
	Example string `json:"example"`
}

var schemeExamples = map[string]string{
	"raw":       "raw",
	"gray":      "gray",
	"spatial":   "spatial:width=4",
	"businvert": "businvert",
	"inversion": "inversion:patterns=4",
	"pbi":       "pbi:groups=4",
	"stride":    "stride:strides=4",
	"window":    "window:entries=8",
	"context":   "context:table=64,sr=8,divide=4096,transition=false",
}

// handleSchemes answers GET /v1/schemes with the accepted scheme grammar.
func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	kinds := coding.SchemeKinds()
	out := make([]schemeInfo, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, schemeInfo{Kind: k, Example: schemeExamples[k]})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"schemes": out,
		"grammar": "kind[:key=value[,key=value...]]; common keys: width=1..62, lambda>=0",
	})
}

// workloadInfo describes one registered workload for /v1/workloads.
type workloadInfo struct {
	Name        string   `json:"name"`
	Suite       string   `json:"suite"`
	Description string   `json:"description"`
	Buses       []string `json:"buses"`
}

// handleWorkloads answers GET /v1/workloads with the evaluable sources.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	all := workload.All()
	out := make([]workloadInfo, 0, len(all))
	for _, wl := range all {
		out = append(out, workloadInfo{
			Name:        wl.Name,
			Suite:       wl.Suite.String(),
			Description: wl.Description,
			Buses:       []string{"reg", "mem", "addr"},
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"workloads": out})
}

// handleHealthz answers GET /healthz: 200 while serving, 503 once
// shutdown has begun (so load balancers stop routing new traffic while
// in-flight requests drain).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics answers GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.render(w, s.pool, s.jobs)
}

// maxRetryAfterSeconds caps the 429 back-off hint: a server run with a
// long full-mode -timeout (minutes) is telling clients how long one
// evaluation may take, not how long the queue needs to drain — without
// the cap, shed clients would be told to go away for the whole timeout.
const maxRetryAfterSeconds = 30

// retryAfterSeconds estimates how long a shed client should back off: one
// nominal request-timeout's worth of drain, floored at 1s and capped at
// maxRetryAfterSeconds.
func (s *Server) retryAfterSeconds() int {
	if s.opts.RequestTimeout <= 0 {
		return 1
	}
	secs := int(s.opts.RequestTimeout.Seconds())
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}
