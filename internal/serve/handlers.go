package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"buspower/internal/coding"
	"buspower/internal/experiments"
	"buspower/internal/workload"
)

// handleEval answers POST /v1/eval: one experiments.EvalRequest in, one
// experiments.EvalResponse out. The full pipeline is: body size limit →
// strict parse/validate (400) → ring routing (non-owned keys go to the
// response cache or the owner replica, with local fallback) → pool
// admission (429 when saturated) → per-request timeout → memoized
// evaluation.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := readBody(w, r, s.opts.MaxBodyBytes)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	// Raw-body fast path: a repeated byte-identical request skips
	// parsing, validation and canonicalization entirely. Only successful
	// responses are ever stored under a body alias, so the shortcut can
	// never change an answer — at worst it misses and the full pipeline
	// runs.
	bodyKey := bodyRingKey(body)
	if data, ok := s.respCache.get(bodyKey); ok {
		writeJSONBytes(w, http.StatusOK, data)
		return
	}
	req, err := experiments.ParseEvalRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Scheme parameter *combinations* no constructor admits (e.g. spatial
	// at width 32) only surface at build time; classify them as client
	// errors here rather than letting the evaluation path 500 on them.
	if _, err := coding.BuildScheme(req.Scheme); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := experiments.RequestKey(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ringKey := evalRingKey(key)
	if s.serveFromCluster(w, r, req, ringKey, bodyKey) {
		return
	}
	data, herr := s.evalResponseBytes(r, req, ringKey)
	if herr != nil {
		herr.write(w)
		return
	}
	s.respCache.put(bodyKey, data)
	writeJSONBytes(w, http.StatusOK, data)
}

// httpError carries an error-response decision out of evalResponseBytes
// so /v1/eval and /v1/peer/eval render identical failures.
type httpError struct {
	code       int
	retryAfter int // seconds; emitted as Retry-After when > 0
	msg        string
}

func (e *httpError) write(w http.ResponseWriter) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeError(w, e.code, "%s", e.msg)
}

// evalResponseBytes produces the exact marshalled 200 payload for a
// parsed request: the response byte cache first, then the bounded pool
// and the memoized engine on a miss. Only successful payloads are
// cached — an error here describes this request's admission or
// deadline, not the key's value.
func (s *Server) evalResponseBytes(r *http.Request, req experiments.EvalRequest, ringKey string) ([]byte, *httpError) {
	if data, ok := s.respCache.get(ringKey); ok {
		return data, nil
	}
	release, err := s.pool.acquire(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, errSaturated):
			return nil, &httpError{
				code:       http.StatusTooManyRequests,
				retryAfter: s.evalRetryAfterSeconds(),
				msg:        fmt.Sprintf("server saturated: %d evaluations running, %d queued", s.opts.Workers, s.opts.QueueDepth),
			}
		case errors.Is(err, context.DeadlineExceeded):
			return nil, &httpError{code: http.StatusGatewayTimeout, msg: "request deadline expired while queued"}
		default: // client went away while queued
			return nil, &httpError{code: http.StatusServiceUnavailable, msg: "request cancelled while queued"}
		}
	}
	defer release()

	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	resp, err := experiments.EvaluateRequest(ctx, req)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return nil, &httpError{code: http.StatusGatewayTimeout, msg: fmt.Sprintf("evaluation exceeded the %v request timeout", s.opts.RequestTimeout)}
		case errors.Is(err, context.Canceled):
			return nil, &httpError{code: http.StatusServiceUnavailable, msg: "request cancelled"}
		default:
			// Validation re-runs inside EvaluateRequest; anything it
			// rejects after the parse above is still a client error.
			return nil, &httpError{code: http.StatusBadRequest, msg: err.Error()}
		}
	}
	data, err := json.Marshal(resp)
	if err != nil {
		return nil, &httpError{code: http.StatusInternalServerError, msg: "response encoding failed"}
	}
	data = append(data, '\n') // exact writeJSON framing, so all paths are byte-identical
	s.respCache.put(ringKey, data)
	return data, nil
}

// readBody reads the size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
}

// writeBodyError maps a readBody failure to 413 (over the cap) or 400.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "reading body: %v", err)
}

// schemeInfo describes one accepted scheme kind for /v1/schemes.
type schemeInfo struct {
	Kind    string `json:"kind"`
	Example string `json:"example"`
}

var schemeExamples = map[string]string{
	"raw":       "raw",
	"gray":      "gray",
	"spatial":   "spatial:width=4",
	"businvert": "businvert",
	"inversion": "inversion:patterns=4",
	"pbi":       "pbi:groups=4",
	"stride":    "stride:strides=4",
	"window":    "window:entries=8",
	"context":   "context:table=64,sr=8,divide=4096,transition=false",
	"optmem":    "optmem:extra=2",
	"vc":        "vc:extra=2",
	"lowweight": "lowweight:groups=4,extra=1",
	"dvs":       "dvs:extra=2,vdd=80",
}

// handleSchemes answers GET /v1/schemes with the accepted scheme grammar.
func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	kinds := coding.SchemeKinds()
	out := make([]schemeInfo, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, schemeInfo{Kind: k, Example: schemeExamples[k]})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"schemes": out,
		"grammar": "kind[:key=value[,key=value...]]; common keys: width=1..62, lambda>=0",
	})
}

// workloadInfo describes one registered workload for /v1/workloads.
type workloadInfo struct {
	Name        string   `json:"name"`
	Suite       string   `json:"suite"`
	Description string   `json:"description"`
	Buses       []string `json:"buses"`
}

// handleWorkloads answers GET /v1/workloads with the evaluable sources.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	all := workload.All()
	out := make([]workloadInfo, 0, len(all))
	for _, wl := range all {
		out = append(out, workloadInfo{
			Name:        wl.Name,
			Suite:       wl.Suite.String(),
			Description: wl.Description,
			Buses:       []string{"reg", "mem", "addr"},
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"workloads": out})
}

// handleHealthz answers GET /healthz: 200 while serving, 503 once
// shutdown has begun (so load balancers stop routing new traffic while
// in-flight requests drain).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics answers GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.render(w, s)
}
