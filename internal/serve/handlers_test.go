package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"buspower/internal/experiments"
)

func testServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 8
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	return NewServer(opts)
}

func postEval(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/eval", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// evalBody builds a small inline-trace request.
func evalBody(scheme string) string {
	return fmt.Sprintf(`{"values":[1,2,3,4,5,6,7,8,4,4,4,1,2,3],"scheme":%q}`, scheme)
}

func TestEvalEndpointTable(t *testing.T) {
	srv := testServer(t, Options{RequestTimeout: 10 * time.Second})
	h := srv.Handler()
	cases := []struct {
		name     string
		method   string
		body     string
		wantCode int
		wantIn   string // substring of the response body
	}{
		{"happy inline", http.MethodPost, evalBody("window:entries=8"), http.StatusOK, `"scheme":"window-8"`},
		{"happy workload", http.MethodPost, `{"workload":"li","bus":"reg","quick":true,"scheme":"businvert"}`, http.StatusOK, `"source":"workload:li/reg"`},
		{"happy random", http.MethodPost, `{"random":2000,"scheme":"stride:strides=4","lambda":2}`, http.StatusOK, `"source":"random:2000"`},
		{"happy optmem", http.MethodPost, evalBody("optmem:extra=2"), http.StatusOK, `"scheme":"optmem-32+2"`},
		{"happy vc", http.MethodPost, evalBody("vc"), http.StatusOK, `"scheme":"vc-32+2"`},
		{"happy lowweight", http.MethodPost, evalBody("lowweight:groups=4,extra=1"), http.StatusOK, `"scheme":"lowweight-32g4+1"`},
		{"happy dvs", http.MethodPost, evalBody("dvs:vdd=70"), http.StatusOK, `"scheme":"dvs-32+2"`},
		{"bad optmem extra", http.MethodPost, evalBody("optmem:extra=9"), http.StatusBadRequest, "outside"},
		{"bad dvs rail", http.MethodPost, evalBody("dvs:vdd=40"), http.StatusBadRequest, "outside"},
		{"unbuildable optmem width", http.MethodPost, evalBody("optmem:extra=2,width=61"), http.StatusBadRequest, "62-wire bus limit"},
		{"malformed JSON", http.MethodPost, `{"values":[1,2`, http.StatusBadRequest, "bad eval request"},
		{"not JSON", http.MethodPost, `it's traces all the way down`, http.StatusBadRequest, "bad eval request"},
		{"trailing garbage", http.MethodPost, evalBody("raw") + `{"again":true}`, http.StatusBadRequest, "trailing data"},
		{"unknown field", http.MethodPost, `{"values":[1],"scheme":"raw","turbo":9}`, http.StatusBadRequest, "unknown field"},
		{"no source", http.MethodPost, `{"scheme":"raw"}`, http.StatusBadRequest, "exactly one source"},
		{"two sources", http.MethodPost, `{"random":5,"values":[1],"scheme":"raw"}`, http.StatusBadRequest, "exactly one source"},
		{"unknown scheme", http.MethodPost, evalBody("quantum"), http.StatusBadRequest, "unknown scheme kind"},
		{"bad scheme params", http.MethodPost, evalBody("window:entries=0"), http.StatusBadRequest, "outside"},
		{"unbuildable scheme combo", http.MethodPost, evalBody("spatial"), http.StatusBadRequest, "outside [1, 6]"},
		{"unknown workload", http.MethodPost, `{"workload":"doom","bus":"reg","scheme":"raw"}`, http.StatusBadRequest, "unknown benchmark"},
		{"unknown bus", http.MethodPost, `{"workload":"li","bus":"q","scheme":"raw"}`, http.StatusBadRequest, "unknown bus"},
		{"bad verify", http.MethodPost, evalBody("raw")[:len(evalBody("raw"))-1] + `,"verify":"psychic"}`, http.StatusBadRequest, "verification policy"},
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed, "POST only"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest(c.method, "/v1/eval", strings.NewReader(c.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != c.wantCode {
				t.Fatalf("code %d, want %d; body: %s", rec.Code, c.wantCode, rec.Body.String())
			}
			if !strings.Contains(rec.Body.String(), c.wantIn) {
				t.Fatalf("body %q does not contain %q", rec.Body.String(), c.wantIn)
			}
			if rec.Header().Get("X-Request-Id") == "" {
				t.Fatal("missing X-Request-Id")
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("content type %q", ct)
			}
		})
	}
}

// TestEvalMatchesDirectPath: the served numbers must be identical to what
// the request-shaped engine entry point (and hence the CLI experiment
// path, proven in internal/experiments) computes.
func TestEvalMatchesDirectPath(t *testing.T) {
	srv := testServer(t, Options{})
	rec := postEval(srv.Handler(), evalBody("context:table=16,sr=8"))
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d: %s", rec.Code, rec.Body.String())
	}
	var got experiments.EvalResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	req, err := experiments.ParseEvalRequest([]byte(evalBody("context:table=16,sr=8")))
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.EvaluateRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got != *want {
		t.Fatalf("served response diverges from engine:\ngot  %+v\nwant %+v", got, *want)
	}
}

func TestEvalOversizedBody(t *testing.T) {
	srv := testServer(t, Options{MaxBodyBytes: 256})
	var b bytes.Buffer
	b.WriteString(`{"values":[`)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", i)
	}
	b.WriteString(`],"scheme":"raw"}`)
	rec := postEval(srv.Handler(), b.String())
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("code %d, want 413; body: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "256 bytes") {
		t.Fatalf("body %q does not name the limit", rec.Body.String())
	}
}

func TestEvalTimeout(t *testing.T) {
	// A 1ns request timeout has always expired by the time the evaluation
	// starts, so the request must come back as 504, not hang or 500.
	srv := testServer(t, Options{RequestTimeout: time.Nanosecond})
	rec := postEval(srv.Handler(), evalBody("window:entries=4"))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("code %d, want 504; body: %s", rec.Code, rec.Body.String())
	}
}

func TestEvalSaturationShedsWith429(t *testing.T) {
	// A long full-mode -timeout must not leak into the back-off hint: the
	// Retry-After on a shed request is capped, not the whole 10 minutes.
	srv := testServer(t, Options{Workers: 1, QueueDepth: -1, RequestTimeout: 10 * time.Minute})
	// Occupy the single worker slot so the next request finds the (empty)
	// queue full.
	release, err := srv.pool.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rec := postEval(srv.Handler(), evalBody("raw"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code %d, want 429; body: %s", rec.Code, rec.Body.String())
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > maxRetryAfterSeconds {
		t.Fatalf("Retry-After %q outside [1, %d] under a 10m request timeout", ra, maxRetryAfterSeconds)
	}
	// Validation failures must be rejected before consuming pool capacity,
	// so they still answer 400 (not 429) while saturated.
	if rec := postEval(srv.Handler(), evalBody("quantum")); rec.Code != http.StatusBadRequest {
		t.Fatalf("validation under saturation: code %d, want 400", rec.Code)
	}
}

func TestHealthzAndDrainingFlag(t *testing.T) {
	srv := testServer(t, Options{})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	srv.draining.Store(true)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"draining"`) {
		t.Fatalf("draining healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestSchemesAndWorkloadsEndpoints(t *testing.T) {
	srv := testServer(t, Options{})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/schemes", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("schemes: %d", rec.Code)
	}
	for _, kind := range []string{"window", "context", "businvert", "optmem", "vc", "lowweight", "dvs"} {
		if !strings.Contains(rec.Body.String(), fmt.Sprintf("%q", kind)) {
			t.Errorf("schemes listing missing %q: %s", kind, rec.Body.String())
		}
	}
	// Every advertised kind must ship a non-empty example that builds, so
	// the listing can never drift from the grammar.
	var listing struct {
		Schemes []struct {
			Kind    string `json:"kind"`
			Example string `json:"example"`
		} `json:"schemes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	for _, s := range listing.Schemes {
		if s.Example == "" {
			t.Errorf("kind %q has no example", s.Kind)
			continue
		}
		if rec := postEval(srv.Handler(), evalBody(s.Example)); rec.Code != http.StatusOK {
			t.Errorf("example %q does not evaluate: %d %s", s.Example, rec.Code, rec.Body.String())
		}
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workloads", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"li"`) {
		t.Fatalf("workloads: %d %s", rec.Code, rec.Body.String())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t, Options{})
	h := srv.Handler()
	postEval(h, evalBody("window:entries=8")) // seed at least one request
	postEval(h, evalBody("nonsense"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`buspower_requests_total{handler="eval",code="200"}`,
		`buspower_requests_total{handler="eval",code="400"}`,
		"buspower_request_duration_seconds_bucket",
		`le="+Inf"`,
		"buspower_eval_memo_hits",
		"buspower_eval_memo_misses",
		"buspower_trace_cache_mem_hits",
		"buspower_raw_meter_memo_hits",
		"buspower_pool_inflight 0",
		"buspower_pool_rejected_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestConcurrentMixedLoad is the -race test the acceptance criteria ask
// for: 100 parallel requests of mixed kinds against a live server, every
// eval answer identical to the engine's direct answer for the same
// request, and the pool gauges settling back to zero.
func TestConcurrentMixedLoad(t *testing.T) {
	srv := testServer(t, Options{Workers: 8, QueueDepth: 200, RequestTimeout: 60 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := []string{
		evalBody("window:entries=8"),
		evalBody("context:table=16,sr=8"),
		evalBody("businvert"),
		evalBody("stride:strides=4"),
		`{"random":3000,"scheme":"window:entries=4"}`,
		`{"workload":"li","bus":"reg","quick":true,"scheme":"window:entries=8"}`,
		`{"workload":"compress","bus":"mem","quick":true,"scheme":"businvert"}`,
	}
	// Direct engine answers to compare against (computed once, up front —
	// they also warm the memo for some, but not all, of the traffic).
	want := make(map[string]string, len(bodies))
	for _, body := range bodies {
		req, err := experiments.ParseEvalRequest([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := experiments.EvaluateRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		want[body] = string(data)
	}

	const parallel = 100
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := bodies[i%len(bodies)]
			resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: code %d: %s", i, resp.StatusCode, buf.String())
				return
			}
			if got := strings.TrimSpace(buf.String()); got != want[body] {
				errs <- fmt.Errorf("request %d diverged:\ngot  %s\nwant %s", i, got, want[body])
			}
		}(i)
	}
	// Scrape /metrics concurrently with the load — the exposition path
	// must be race-free against in-flight evaluations.
	stop := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrape.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if inflight, waiting, _ := srv.pool.stats(); inflight != 0 || waiting != 0 {
		t.Fatalf("pool not idle after load: inflight %d waiting %d", inflight, waiting)
	}
}

// TestGracefulDrain: cancelling the serve context must flip /healthz to
// draining, let the in-flight request finish, and return nil from Serve.
func TestGracefulDrain(t *testing.T) {
	srv := testServer(t, Options{DrainTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Wait until the server answers.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	r, err := http.Post(base+"/v1/eval", "application/json", strings.NewReader(evalBody("raw")))
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("eval before drain: %v %v", err, r)
	}
	r.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}
