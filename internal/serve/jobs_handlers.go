package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"buspower/internal/jobs"
)

// The /v1/jobs surface: asynchronous batch evaluation over the same
// engine /v1/eval uses synchronously. A submission is validated whole,
// content-addressed, journaled, and drained by a dedicated worker pool;
// clients poll GET /v1/jobs/{id} or stream GET /v1/jobs/{id}/events.

// jobSummary is the list view: everything but the (potentially large)
// per-item payloads.
type jobSummary struct {
	ID         string        `json:"id"`
	State      jobs.State    `json:"state"`
	CreatedAt  time.Time     `json:"created_at"`
	StartedAt  *time.Time    `json:"started_at,omitempty"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
	Progress   jobs.Progress `json:"progress"`
}

func summarize(j *jobs.Job) jobSummary {
	return jobSummary{
		ID:         j.ID,
		State:      j.State,
		CreatedAt:  j.CreatedAt,
		StartedAt:  j.StartedAt,
		FinishedAt: j.FinishedAt,
		Progress:   j.Progress,
	}
}

// handleJobSubmit answers POST /v1/jobs: a jobs.Spec in (a batch of eval
// requests or an experiment suite), the accepted job out. 202 means new
// work was scheduled; 200 means the submission coalesced onto an
// existing job with the same content address — for a done job that is
// the complete result, served from the journal without re-evaluation.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, s.opts.MaxBodyBytes)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	items, err := jobs.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, created, err := s.jobs.Submit(items)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(s.jobsRetryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, "job queue full")
		case errors.Is(err, jobs.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "server draining")
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, j)
}

// handleJobList answers GET /v1/jobs with summaries in submission order.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	all := s.jobs.List()
	out := make([]jobSummary, 0, len(all))
	for _, j := range all {
		out = append(out, summarize(j))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": out})
}

// handleJobGet answers GET /v1/jobs/{id} with the full job, including
// per-item progress and any partial results already completed.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleJobCancel answers DELETE /v1/jobs/{id}: cooperative
// cancellation. Queued items short-circuit; the running ones see their
// context end. Cancelling a terminal job is a no-op returning its final
// state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleJobEvents answers GET /v1/jobs/{id}/events with a Server-Sent
// Events stream: an initial "state" snapshot, then one event per item
// outcome and state transition, ending after the terminal state event.
// Streams also end when the client disconnects or the server drains.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	ch, cancelSub, ok := s.jobs.Subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	defer cancelSub()
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// Snapshot first so a subscriber joining late still sees where the
	// job stands; every later event supersedes it.
	writeSSE(w, "state", jobs.Event{Type: "state", JobID: j.ID, State: j.State, Progress: j.Progress})
	if err := rc.Flush(); err != nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		case ev, open := <-ch:
			if !open {
				// Terminal: re-read the final state (the closing event may
				// have been dropped by a full buffer) and end the stream.
				if final, ok := s.jobs.Get(id); ok {
					writeSSE(w, "state", jobs.Event{Type: "state", JobID: final.ID, State: final.State, Progress: final.Progress})
					rc.Flush()
				}
				return
			}
			writeSSE(w, ev.Type, ev)
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// writeSSE renders one Server-Sent Event with a JSON data payload.
func writeSSE(w io.Writer, event string, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
