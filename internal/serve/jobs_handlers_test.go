package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"buspower/internal/jobs"
)

// jobsBody is a two-request batch over cheap inline traces.
func jobsBody() string {
	return `{"requests":[
		{"values":[1,2,3,4,5,6,7,8],"scheme":"raw"},
		{"values":[1,2,3,4,5,6,7,8],"scheme":"gray"}
	]}`
}

func doJSON(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var r *httptest.ResponseRecorder
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	r = httptest.NewRecorder()
	h.ServeHTTP(r, req)
	return r
}

func decodeJob(t *testing.T, body string) jobs.Job {
	t.Helper()
	var j jobs.Job
	if err := json.Unmarshal([]byte(body), &j); err != nil {
		t.Fatalf("decoding job from %q: %v", body, err)
	}
	return j
}

// pollJobTerminal polls GET /v1/jobs/{id} until the job is terminal.
func pollJobTerminal(t *testing.T, h http.Handler, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := doJSON(h, http.MethodGet, "/v1/jobs/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job: %d %s", rec.Code, rec.Body.String())
		}
		j := decodeJob(t, rec.Body.String())
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return jobs.Job{}
}

func TestJobsSubmitPollAndCoalesce(t *testing.T) {
	srv := testServer(t, Options{RequestTimeout: 10 * time.Second})
	defer srv.Close()
	h := srv.Handler()

	rec := doJSON(h, http.MethodPost, "/v1/jobs", jobsBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	j := decodeJob(t, rec.Body.String())
	if j.ID == "" || j.Progress.Total != 2 {
		t.Fatalf("accepted job: %+v", j)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/"+j.ID {
		t.Errorf("Location = %q", loc)
	}

	final := pollJobTerminal(t, h, j.ID)
	if final.State != jobs.StateDone || final.Progress.Done != 2 {
		t.Fatalf("final: state=%s progress=%+v", final.State, final.Progress)
	}
	for i, r := range final.Results {
		if r.Status != jobs.ItemDone || !strings.Contains(string(r.Result), `"scheme"`) {
			t.Errorf("item %d result: %+v", i, r)
		}
	}

	// Identical resubmission (different whitespace, same canonical
	// content) coalesces: 200, already done, no re-evaluation.
	rec2 := doJSON(h, http.MethodPost, "/v1/jobs", strings.ReplaceAll(jobsBody(), "\n", " "))
	if rec2.Code != http.StatusOK {
		t.Fatalf("resubmit: %d %s", rec2.Code, rec2.Body.String())
	}
	if j2 := decodeJob(t, rec2.Body.String()); j2.ID != j.ID || j2.State != jobs.StateDone {
		t.Fatalf("resubmit: id=%s state=%s, want same job already done", j2.ID, j2.State)
	}

	// The list view carries summaries.
	recList := doJSON(h, http.MethodGet, "/v1/jobs", "")
	if recList.Code != http.StatusOK || !strings.Contains(recList.Body.String(), j.ID) {
		t.Fatalf("list: %d %s", recList.Code, recList.Body.String())
	}
}

func TestJobsValidation(t *testing.T) {
	srv := testServer(t, Options{})
	defer srv.Close()
	h := srv.Handler()
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
		wantIn string
	}{
		{"empty spec", http.MethodPost, "/v1/jobs", `{}`, http.StatusBadRequest, "exactly one"},
		{"both sources", http.MethodPost, "/v1/jobs", `{"requests":[{"values":[1],"scheme":"raw"}],"suite":{"experiments":"all"}}`, http.StatusBadRequest, "exactly one"},
		{"unknown field", http.MethodPost, "/v1/jobs", `{"turbo":true}`, http.StatusBadRequest, "unknown field"},
		{"bad request in batch", http.MethodPost, "/v1/jobs", `{"requests":[{"values":[1],"scheme":"quantum"}]}`, http.StatusBadRequest, "request 0"},
		{"unbuildable scheme", http.MethodPost, "/v1/jobs", `{"requests":[{"values":[1],"scheme":"spatial"}]}`, http.StatusBadRequest, "request 0"},
		{"bad suite id", http.MethodPost, "/v1/jobs", `{"suite":{"experiments":"figXX"}}`, http.StatusBadRequest, "unknown experiment"},
		{"trailing data", http.MethodPost, "/v1/jobs", `{"suite":{"experiments":"all"}}{"x":1}`, http.StatusBadRequest, "trailing"},
		{"get unknown", http.MethodGet, "/v1/jobs/deadbeef", "", http.StatusNotFound, "no such job"},
		{"cancel unknown", http.MethodDelete, "/v1/jobs/deadbeef", "", http.StatusNotFound, "no such job"},
		{"events unknown", http.MethodGet, "/v1/jobs/deadbeef/events", "", http.StatusNotFound, "no such job"},
		{"bad method", http.MethodPut, "/v1/jobs", "", http.StatusMethodNotAllowed, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSON(h, tc.method, tc.path, tc.body)
			if rec.Code != tc.want {
				t.Fatalf("code = %d, want %d (%s)", rec.Code, tc.want, rec.Body.String())
			}
			if tc.wantIn != "" && !strings.Contains(rec.Body.String(), tc.wantIn) {
				t.Fatalf("body %q does not contain %q", rec.Body.String(), tc.wantIn)
			}
		})
	}
}

func TestJobsQueueFullSheds429(t *testing.T) {
	srv := testServer(t, Options{JobQueueDepth: 1, RequestTimeout: time.Minute})
	defer srv.Close()
	rec := doJSON(srv.Handler(), http.MethodPost, "/v1/jobs", jobsBody())
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > maxRetryAfterSeconds {
		t.Fatalf("Retry-After = %q, want an integer in [1, %d]", rec.Header().Get("Retry-After"), maxRetryAfterSeconds)
	}
}

// TestJobsSSEStream drives the events endpoint over a real connection:
// the stream must deliver a snapshot and end after a terminal event.
func TestJobsSSEStream(t *testing.T) {
	srv := testServer(t, Options{RequestTimeout: 10 * time.Second})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(jobsBody()))
	if err != nil {
		t.Fatal(err)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	es, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// Read events until the stream ends; the server closes it after the
	// terminal state event.
	sc := bufio.NewScanner(es.Body)
	var sawSnapshot, sawTerminal bool
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var ev jobs.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
			if ev.JobID != j.ID {
				t.Fatalf("event for job %q, want %q", ev.JobID, j.ID)
			}
			sawSnapshot = true
			if ev.Type == "state" && ev.State.Terminal() {
				sawTerminal = true
			}
			data = ""
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if !sawSnapshot || !sawTerminal {
		t.Fatalf("snapshot=%v terminal=%v, want both", sawSnapshot, sawTerminal)
	}
	// After the stream ends the job must be done with both results.
	final := pollJobTerminal(t, srv.Handler(), j.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state after stream = %s", final.State)
	}
}

// TestJobsSurviveRestart is the durability acceptance path in-process: a
// completed job's results come back from the journal in a fresh server,
// and resubmission is answered without re-evaluation.
func TestJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	srv1 := testServer(t, Options{JobsDir: dir, RequestTimeout: 10 * time.Second})
	rec := doJSON(srv1.Handler(), http.MethodPost, "/v1/jobs", jobsBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	j := decodeJob(t, rec.Body.String())
	pollJobTerminal(t, srv1.Handler(), j.ID)
	if err := srv1.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	srv2 := testServer(t, Options{JobsDir: dir})
	defer srv2.Close()
	rec2 := doJSON(srv2.Handler(), http.MethodGet, "/v1/jobs/"+j.ID, "")
	if rec2.Code != http.StatusOK {
		t.Fatalf("GET after restart: %d %s", rec2.Code, rec2.Body.String())
	}
	got := decodeJob(t, rec2.Body.String())
	if got.State != jobs.StateDone || got.Progress.Done != 2 {
		t.Fatalf("restored job: state=%s progress=%+v", got.State, got.Progress)
	}
	for i, r := range got.Results {
		if r.Status != jobs.ItemDone || len(r.Result) == 0 {
			t.Fatalf("restored item %d: %+v", i, r)
		}
	}
	// Resubmission coalesces onto the journaled result: 200, not 202.
	rec3 := doJSON(srv2.Handler(), http.MethodPost, "/v1/jobs", jobsBody())
	if rec3.Code != http.StatusOK {
		t.Fatalf("resubmit after restart: %d %s", rec3.Code, rec3.Body.String())
	}
}

func TestJobsCancelViaDelete(t *testing.T) {
	srv := testServer(t, Options{})
	defer srv.Close()
	h := srv.Handler()
	// A whole quick suite takes long enough that an immediate DELETE
	// lands while work is still queued or running.
	rec := doJSON(h, http.MethodPost, "/v1/jobs", `{"suite":{"experiments":"all","quick":true}}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit suite: %d %s", rec.Code, rec.Body.String())
	}
	j := decodeJob(t, rec.Body.String())
	recDel := doJSON(h, http.MethodDelete, "/v1/jobs/"+j.ID, "")
	if recDel.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", recDel.Code, recDel.Body.String())
	}
	cj := decodeJob(t, recDel.Body.String())
	if !cj.State.Terminal() {
		t.Fatalf("state after DELETE = %s, want terminal", cj.State)
	}
	final := pollJobTerminal(t, h, j.ID)
	if final.State != jobs.StateCancelled {
		t.Fatalf("final state = %s, want cancelled", final.State)
	}
}

func TestMetricsIncludeJobGauges(t *testing.T) {
	srv := testServer(t, Options{RequestTimeout: 10 * time.Second})
	defer srv.Close()
	h := srv.Handler()
	rec := doJSON(h, http.MethodPost, "/v1/jobs", jobsBody())
	j := decodeJob(t, rec.Body.String())
	pollJobTerminal(t, h, j.ID)

	mrec := doJSON(h, http.MethodGet, "/metrics", "")
	body := mrec.Body.String()
	for _, want := range []string{
		fmt.Sprintf("buspower_jobs{state=%q} 1", "done"),
		"buspower_jobs_queue_depth",
		"buspower_jobs_workers",
		"buspower_jobs_items_completed_total 2",
		"buspower_jobs_journal_bytes",
		"buspower_jobs_journal_compactions_total",
		"buspower_jobs_journal_recovered_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
