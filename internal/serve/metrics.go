package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"buspower/internal/experiments"
	"buspower/internal/jobs"
	"buspower/internal/workload"
)

// A small dependency-free metrics registry rendering the Prometheus text
// exposition format. Counters and histograms are updated on the request
// path with atomics only; gauges are read at scrape time from callbacks
// (the memo and trace-cache Stats snapshots are themselves wait-free, so
// a scrape never contends with in-flight evaluations).

// durationBuckets are the latency histogram's upper bounds in seconds:
// memo hits land in the sub-millisecond buckets, cold full-trace
// evaluations in the hundreds of milliseconds, cold simulations above.
var durationBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30}

// counterVec is a labelled set of monotone counters.
type counterVec struct {
	mu   sync.Mutex
	vals map[string]*atomic.Uint64
}

func newCounterVec() *counterVec { return &counterVec{vals: map[string]*atomic.Uint64{}} }

func (c *counterVec) get(labels string) *atomic.Uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vals[labels]
	if !ok {
		v = &atomic.Uint64{}
		c.vals[labels] = v
	}
	return v
}

func (c *counterVec) snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v.Load()
	}
	return out
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts []atomic.Uint64 // one per bucket, cumulative style computed at render
	sumNS  atomic.Int64
	total  atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(durationBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range durationBuckets {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.sumNS.Add(int64(d))
	h.total.Add(1)
}

// mean returns the average observed latency in seconds (0 before the
// first observation) — the drain-time input to evalRetryAfter.
func (h *histogram) mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load()).Seconds() / float64(n)
}

// metrics is the server's registry.
type metrics struct {
	requests  *counterVec // labels: handler, code
	durations map[string]*histogram
	started   time.Time
}

func newMetrics(handlers []string) *metrics {
	m := &metrics{requests: newCounterVec(), durations: map[string]*histogram{}, started: time.Now()}
	for _, h := range handlers {
		m.durations[h] = newHistogram()
	}
	return m
}

func (m *metrics) record(handler string, code int, elapsed time.Duration) {
	m.requests.get(fmt.Sprintf(`handler=%q,code="%d"`, handler, code)).Add(1)
	if h, ok := m.durations[handler]; ok {
		h.observe(elapsed)
	}
}

// render writes the whole exposition; s supplies the pool, job-engine,
// response-cache and cluster gauges.
func (m *metrics) render(w http.ResponseWriter, s *Server) {
	p, e := s.pool, s.jobs
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	b.WriteString("# HELP buspower_requests_total HTTP requests served, by handler and status code.\n")
	b.WriteString("# TYPE buspower_requests_total counter\n")
	reqs := m.requests.snapshot()
	keys := make([]string, 0, len(reqs))
	for k := range reqs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "buspower_requests_total{%s} %d\n", k, reqs[k])
	}

	b.WriteString("# HELP buspower_request_duration_seconds Request latency, by handler.\n")
	b.WriteString("# TYPE buspower_request_duration_seconds histogram\n")
	handlers := make([]string, 0, len(m.durations))
	for h := range m.durations {
		handlers = append(handlers, h)
	}
	sort.Strings(handlers)
	for _, name := range handlers {
		h := m.durations[name]
		cum := uint64(0)
		for i, ub := range durationBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "buspower_request_duration_seconds_bucket{handler=%q,le=%q} %d\n", name, trimFloat(ub), cum)
		}
		total := h.total.Load()
		fmt.Fprintf(&b, "buspower_request_duration_seconds_bucket{handler=%q,le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(&b, "buspower_request_duration_seconds_sum{handler=%q} %g\n", name, time.Duration(h.sumNS.Load()).Seconds())
		fmt.Fprintf(&b, "buspower_request_duration_seconds_count{handler=%q} %d\n", name, total)
	}

	// Pool gauges: current saturation state plus cumulative sheds.
	inflight, waiting, rejected := p.stats()
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	gauge("buspower_pool_inflight", "Evaluations currently executing.", inflight)
	gauge("buspower_pool_waiting", "Requests queued for a worker slot.", waiting)
	fmt.Fprintf(&b, "# HELP buspower_pool_rejected_total Requests shed with 429 because the queue was full.\n# TYPE buspower_pool_rejected_total counter\nbuspower_pool_rejected_total %d\n", rejected)

	// Cache and memo effectiveness, wired straight from the engine's own
	// wait-free Stats counters. These are cumulative process-lifetime
	// values exposed as gauges because external resets (memo eviction,
	// ClearEvalMemo) can move some of them non-monotonically.
	ts := workload.Stats()
	gauge("buspower_trace_cache_mem_hits", "In-process trace cache hits.", ts.MemHits)
	gauge("buspower_trace_cache_mem_misses", "In-process trace cache misses (simulations started).", ts.MemMisses)
	gauge("buspower_trace_cache_disk_hits", "Persistent trace cache hits.", ts.DiskHits)
	gauge("buspower_trace_cache_disk_misses", "Persistent trace cache misses.", ts.DiskMisses)
	gauge("buspower_trace_cache_disk_errors", "Persistent trace cache entries that could not be trusted plus failed writes.", ts.DiskErrors)
	gauge("buspower_trace_cache_peer_hits", "Trace containers fetched from the ring owner instead of re-simulated.", ts.PeerHits)
	gauge("buspower_trace_cache_peer_misses", "Trace peer-fetch attempts the owner could not serve.", ts.PeerMisses)
	gauge("buspower_trace_cache_peer_errors", "Peer-transferred trace containers that failed validation.", ts.PeerErrors)

	// Serve-level response byte cache (all replicas, cluster or not).
	rcHits, rcMisses, rcEvictions, rcEntries := s.respCache.stats()
	gauge("buspower_response_cache_hits", "Marshalled-response cache hits.", rcHits)
	gauge("buspower_response_cache_misses", "Marshalled-response cache misses.", rcMisses)
	gauge("buspower_response_cache_evictions", "Marshalled-response cache LRU evictions.", rcEvictions)
	gauge("buspower_response_cache_entries", "Marshalled-response cache current entries.", rcEntries)

	es := experiments.EvalMemoStats()
	gauge("buspower_eval_memo_hits", "Evaluation-result memo hits.", es.Hits)
	gauge("buspower_eval_memo_misses", "Evaluation-result memo misses.", es.Misses)
	gauge("buspower_eval_memo_evictions", "Evaluation-result memo LRU evictions.", es.Evictions)
	gauge("buspower_eval_memo_entries", "Evaluation-result memo current entries.", es.Size)
	gauge("buspower_eval_memo_inflight", "Evaluation-result memo computations in flight.", es.InFlight)

	rs := experiments.RawMeterMemoStats()
	gauge("buspower_raw_meter_memo_hits", "Shared raw-bus meter memo hits.", rs.Hits)
	gauge("buspower_raw_meter_memo_misses", "Shared raw-bus meter memo misses.", rs.Misses)

	sl := experiments.SlicedCacheStats()
	gauge("buspower_sliced_plane_cache_hits", "Sliced-plane (bit-transposed trace) cache hits.", sl.Hits)
	gauge("buspower_sliced_plane_cache_misses", "Sliced-plane cache misses (transpositions built).", sl.Misses)
	gauge("buspower_sliced_plane_cache_entries", "Sliced-plane cache current entries.", sl.Size)

	// Async job engine: lifecycle census, worker-pool saturation and
	// journal health. Items-completed is the throughput counter — its
	// rate() is items/s.
	if e != nil {
		es := e.Stats()
		ss := e.StoreStats()
		b.WriteString("# HELP buspower_jobs Jobs resident in the store, by lifecycle state.\n# TYPE buspower_jobs gauge\n")
		for _, st := range []jobs.State{jobs.StatePending, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCancelled} {
			fmt.Fprintf(&b, "buspower_jobs{state=%q} %d\n", string(st), ss.JobsByState[st])
		}
		gauge("buspower_jobs_queue_depth", "Job items waiting for a job worker.", es.QueueDepth)
		gauge("buspower_jobs_workers", "Dedicated job worker pool size.", es.Workers)
		fmt.Fprintf(&b, "# HELP buspower_jobs_items_completed_total Job items finished since start (done, failed or cancelled).\n# TYPE buspower_jobs_items_completed_total counter\nbuspower_jobs_items_completed_total %d\n", es.ItemsCompleted)
		gauge("buspower_jobs_journal_bytes", "Current job journal size in bytes.", ss.JournalBytes)
		fmt.Fprintf(&b, "# HELP buspower_jobs_journal_compactions_total Journal snapshot compactions performed.\n# TYPE buspower_jobs_journal_compactions_total counter\nbuspower_jobs_journal_compactions_total %d\n", ss.Compactions)
		gauge("buspower_jobs_journal_recovered_bytes", "Journal bytes discarded by corruption recovery at startup.", ss.RecoveredBytes)
	}

	// Cluster topology and routing: ring shape, per-node key-space
	// ownership, /v1/eval routing outcomes, and the peer client's
	// fetch/coalescing counters.
	if c := s.cluster; c != nil {
		ring := c.topo.Ring
		gauge("buspower_ring_nodes", "Replicas in the consistent-hash ring.", len(ring.Nodes()))
		gauge("buspower_ring_vnodes", "Virtual nodes per replica.", ring.VNodes())
		gauge("buspower_ring_replication", "Owners per key (replication factor).", ring.ReplicationFactor())
		own := ring.Ownership()
		ids := make([]string, 0, len(own))
		for id := range own {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		b.WriteString("# HELP buspower_ring_ownership Fraction of the key space each replica primary-owns.\n# TYPE buspower_ring_ownership gauge\n")
		for _, id := range ids {
			fmt.Fprintf(&b, "buspower_ring_ownership{node=%q} %g\n", id, own[id])
		}
		b.WriteString("# HELP buspower_cluster_eval_total /v1/eval requests by routing outcome.\n# TYPE buspower_cluster_eval_total counter\n")
		for _, rc := range []struct {
			path string
			n    uint64
		}{
			{"owned", c.ownedLocal.Load()},
			{"cache", c.cacheServed.Load()},
			{"peer", c.peerServed.Load()},
			{"fallback", c.fallbacks.Load()},
		} {
			fmt.Fprintf(&b, "buspower_cluster_eval_total{path=%q} %d\n", rc.path, rc.n)
		}
		ps := c.peers.Stats()
		b.WriteString("# HELP buspower_peer_fetch_total Peer fetches by kind and result.\n# TYPE buspower_peer_fetch_total counter\n")
		for _, pc := range []struct {
			kind, result string
			n            uint64
		}{
			{"eval", "hit", ps.EvalHits}, {"eval", "miss", ps.EvalMisses},
			{"eval", "timeout", ps.EvalTimeouts}, {"eval", "error", ps.EvalErrors},
			{"trace", "hit", ps.TraceHits}, {"trace", "miss", ps.TraceMisses},
			{"trace", "timeout", ps.TraceTimeouts}, {"trace", "error", ps.TraceErrors},
		} {
			fmt.Fprintf(&b, "buspower_peer_fetch_total{kind=%q,result=%q} %d\n", pc.kind, pc.result, pc.n)
		}
		fmt.Fprintf(&b, "# HELP buspower_peer_fetch_coalesced_total Peer fetches answered by an already in-flight identical fetch.\n# TYPE buspower_peer_fetch_coalesced_total counter\nbuspower_peer_fetch_coalesced_total %d\n", ps.Coalesced)
	}

	gauge("buspower_uptime_seconds", "Seconds since the server started.", int64(time.Since(m.started).Seconds()))

	w.Write([]byte(b.String()))
}

// trimFloat formats a bucket bound the way Prometheus expects ("0.005").
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}
