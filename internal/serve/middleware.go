package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// requestIDSeed is a per-process random prefix so request ids are unique
// across restarts; the per-request counter makes them unique (and
// ordered) within one.
var (
	requestIDSeed    = newRequestIDSeed()
	requestIDCounter atomic.Uint64
)

func newRequestIDSeed() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", requestIDSeed, requestIDCounter.Add(1))
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flusher (the SSE endpoint streams through the instrument wrapper).
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with the full request middleware stack:
// request-id assignment (echoed in X-Request-Id), panic recovery (500,
// with stack logged, never a torn connection taking the server down),
// structured per-request logging, and metrics recording under the given
// handler name.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic serving request",
					"request_id", id, "handler", name, "panic", fmt.Sprint(p),
					"stack", string(debug.Stack()))
				if rec.code == http.StatusOK {
					writeError(rec, http.StatusInternalServerError, "internal error")
				}
			}
			elapsed := time.Since(start)
			s.metrics.record(name, rec.code, elapsed)
			// Under QuietAccessLog successful requests log at debug —
			// formatting tens of thousands of per-request lines is a
			// measurable cost at load-test rates. Failures always log.
			level := slog.LevelInfo
			if s.opts.QuietAccessLog && rec.code < 400 {
				level = slog.LevelDebug
			}
			s.log.Log(r.Context(), level, "request",
				"request_id", id,
				"handler", name,
				"method", r.Method,
				"path", r.URL.Path,
				"code", rec.code,
				"elapsed_ms", float64(elapsed.Microseconds())/1000,
				"remote", r.RemoteAddr,
			)
		}()
		h(rec, r)
	})
}

// writeError emits the uniform JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSONBytes emits an already-marshalled JSON payload (newline
// included) with the given status code — the cached-response fast path.
func writeJSONBytes(w http.ResponseWriter, code int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

// writeJSON emits v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshalling our own response types cannot fail; guard anyway.
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
