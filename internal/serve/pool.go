// Package serve exposes the experiments engine over an HTTP JSON API:
// submitted traces (or named SPEC-analog workloads) plus a coding-scheme
// configuration in, transition/coupling/energy statistics out, answered
// through the same trace cache and evaluation-result memo the CLI uses,
// so repeated traffic is near-free. The server is built for sustained
// concurrent load: a bounded worker pool with queue backpressure (429 +
// Retry-After when saturated), per-request timeouts, request size
// limits, graceful drain on shutdown, and an observability surface
// (/metrics, /healthz, structured per-request logs, optional pprof).
package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errSaturated is returned by pool.acquire when the queue is full; the
// HTTP layer translates it to 429 + Retry-After.
var errSaturated = errors.New("serve: worker pool saturated")

// pool is the evaluation admission controller: at most `workers` requests
// evaluate concurrently, at most `queue` more wait for a slot, and
// everything beyond that is rejected immediately — the server sheds load
// with a fast 429 instead of stacking unbounded goroutines until memory
// or latency collapses.
//
// Waiters are admitted in select order (not strict FIFO), which is fine
// for a cache-backed service: fairness over a few hundred milliseconds
// matters less than never queuing unbounded work.
type pool struct {
	slots    chan struct{} // capacity = workers
	queue    int64         // max waiters
	waiting  atomic.Int64
	inflight atomic.Int64
	rejected atomic.Uint64
}

func newPool(workers, queue int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &pool{slots: make(chan struct{}, workers), queue: int64(queue)}
}

// acquire claims a worker slot, waiting in the bounded queue if none is
// free. It returns a release function on success; errSaturated when the
// queue is already full; or ctx.Err() if the caller's context ends first
// (a request whose deadline fires while queued never starts evaluating).
func (p *pool) acquire(ctx context.Context) (release func(), err error) {
	// A request whose context is already over — deadline elapsed before
	// admission, client gone — must not claim a slot and start evaluating;
	// the fast-path select below would otherwise admit it regardless.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Fast path: a slot is free right now.
	select {
	case p.slots <- struct{}{}:
		return p.claim(), nil
	default:
	}
	if p.waiting.Add(1) > p.queue {
		p.waiting.Add(-1)
		p.rejected.Add(1)
		return nil, errSaturated
	}
	defer p.waiting.Add(-1)
	select {
	case p.slots <- struct{}{}:
		return p.claim(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *pool) claim() func() {
	p.inflight.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			p.inflight.Add(-1)
			<-p.slots
		}
	}
}

// stats reports the pool's instantaneous and cumulative state.
func (p *pool) stats() (inflight, waiting int64, rejected uint64) {
	return p.inflight.Load(), p.waiting.Load(), p.rejected.Load()
}
