package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolAdmitsUpToWorkers(t *testing.T) {
	p := newPool(2, 0)
	r1, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.acquire(context.Background()); !errors.Is(err, errSaturated) {
		t.Fatalf("third acquire: %v, want errSaturated", err)
	}
	r1()
	r3, err := p.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	r3()
	if inflight, waiting, _ := p.stats(); inflight != 0 || waiting != 0 {
		t.Fatalf("pool not idle: inflight %d waiting %d", inflight, waiting)
	}
}

func TestPoolQueueWaitsAndRespectsContext(t *testing.T) {
	p := newPool(1, 1)
	release, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue and is admitted once the slot frees.
	admitted := make(chan error, 1)
	go func() {
		r, err := p.acquire(context.Background())
		if err == nil {
			r()
		}
		admitted <- err
	}()
	// Give the waiter time to enqueue, then verify the queue is full.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, waiting, _ := p.stats(); waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.acquire(context.Background()); !errors.Is(err, errSaturated) {
		t.Fatalf("overflow acquire: %v, want errSaturated", err)
	}
	release()
	if err := <-admitted; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}

	// A waiter whose context expires while queued gets the context error.
	release2, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter: %v, want DeadlineExceeded", err)
	}
	release2()
}

// TestPoolRejectsPreCancelledContext: a request whose deadline already
// expired (or whose client already went away) must not claim a worker
// slot through the fast path and start evaluating.
func TestPoolRejectsPreCancelledContext(t *testing.T) {
	p := newPool(1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled acquire: %v, want context.Canceled", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := p.acquire(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired acquire: %v, want context.DeadlineExceeded", err)
	}
	if inflight, waiting, _ := p.stats(); inflight != 0 || waiting != 0 {
		t.Fatalf("dead requests consumed capacity: inflight %d waiting %d", inflight, waiting)
	}
	// The (only) slot is still free for a live request.
	r, err := p.acquire(context.Background())
	if err != nil {
		t.Fatalf("live acquire after dead ones: %v", err)
	}
	r()
}

func TestPoolReleaseIdempotent(t *testing.T) {
	p := newPool(1, 0)
	r, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r()
	r() // double release must not free a phantom slot
	r2, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.acquire(context.Background()); !errors.Is(err, errSaturated) {
		t.Fatalf("slot leaked by double release: %v", err)
	}
	r2()
}

// TestPoolHammer drives the pool from many goroutines under -race: no
// lost slots, no negative gauges, accepted+rejected+expired accounts for
// every attempt.
func TestPoolHammer(t *testing.T) {
	p := newPool(4, 8)
	var accepted, rejected, expired atomic.Uint64
	var peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				release, err := p.acquire(ctx)
				switch {
				case err == nil:
					in, _, _ := p.stats()
					for {
						old := peak.Load()
						if in <= old || peak.CompareAndSwap(old, in) {
							break
						}
					}
					accepted.Add(1)
					time.Sleep(50 * time.Microsecond)
					release()
				case errors.Is(err, errSaturated):
					rejected.Add(1)
				default:
					expired.Add(1)
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	total := accepted.Load() + rejected.Load() + expired.Load()
	if total != 32*50 {
		t.Fatalf("lost attempts: %d accounted, want %d", total, 32*50)
	}
	if accepted.Load() == 0 {
		t.Fatal("nothing was admitted")
	}
	if peak.Load() > 4 {
		t.Fatalf("inflight peaked at %d, limit 4", peak.Load())
	}
	if inflight, waiting, _ := p.stats(); inflight != 0 || waiting != 0 {
		t.Fatalf("pool not idle after hammer: inflight %d waiting %d", inflight, waiting)
	}
}
