package serve

import (
	"math"
	"time"
)

// Retry-After estimation. The sync eval pool and the async job queue
// shed load through different bottlenecks — a handful of workers
// draining sub-second cache hits versus a deep queue of multi-second
// batch items — so each computes its own hint from its own observed
// state instead of both parroting the configured request timeout.

// maxRetryAfterSeconds caps the 429 back-off hint: a server run with a
// long full-mode -timeout (minutes) is telling clients how long one
// evaluation may take, not how long the queue needs to drain — without
// the cap, shed clients would be told to go away for the whole timeout.
const maxRetryAfterSeconds = 30

// clampRetrySeconds rounds a drain estimate up to whole seconds in
// [1, maxRetryAfterSeconds].
func clampRetrySeconds(secs float64) int {
	if !(secs > 0) { // NaN and negatives land here too
		return 1
	}
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	if n > maxRetryAfterSeconds {
		n = maxRetryAfterSeconds
	}
	return n
}

// nominalRetrySeconds is the fallback before any latency or throughput
// has been observed: one request-timeout's worth of back-off, clamped.
func nominalRetrySeconds(timeout time.Duration) int {
	if timeout <= 0 {
		return 1
	}
	return clampRetrySeconds(timeout.Seconds())
}

// evalRetryAfter estimates the sync pool's drain time when a request is
// shed: the queue holds `waiting` requests plus the retrying one,
// spread over `workers` slots, each occupied for the observed mean
// evaluation latency. A memo-warm server quotes ~1s even with a long
// configured timeout; a cold one saturated with multi-second
// evaluations quotes proportionally more.
func evalRetryAfter(meanSeconds float64, waiting, workers int64, timeout time.Duration) int {
	if meanSeconds <= 0 || workers < 1 {
		return nominalRetrySeconds(timeout)
	}
	return clampRetrySeconds(float64(waiting+1) / float64(workers) * meanSeconds)
}

// jobsRetryAfter estimates the job queue's drain time when a submission
// is shed: the current backlog divided by the observed item completion
// rate.
func jobsRetryAfter(queueDepth int, itemsPerSecond float64, timeout time.Duration) int {
	if itemsPerSecond <= 0 {
		return nominalRetrySeconds(timeout)
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return clampRetrySeconds(float64(queueDepth) / itemsPerSecond)
}

// evalRetryAfterSeconds feeds evalRetryAfter from the live server: mean
// /v1/eval latency from the metrics histogram, queue length from the
// pool.
func (s *Server) evalRetryAfterSeconds() int {
	var mean float64
	if h, ok := s.metrics.durations["eval"]; ok {
		mean = h.mean()
	}
	_, waiting, _ := s.pool.stats()
	return evalRetryAfter(mean, waiting, int64(s.opts.Workers), s.opts.RequestTimeout)
}

// jobsRetryAfterSeconds feeds jobsRetryAfter from the live engine:
// backlog depth and the process-lifetime item completion rate.
func (s *Server) jobsRetryAfterSeconds() int {
	es := s.jobs.Stats()
	var rate float64
	if elapsed := time.Since(s.metrics.started).Seconds(); elapsed > 0 {
		rate = float64(es.ItemsCompleted) / elapsed
	}
	return jobsRetryAfter(es.QueueDepth, rate, s.opts.RequestTimeout)
}
