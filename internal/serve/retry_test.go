package serve

import (
	"testing"
	"time"
)

func TestEvalRetryAfter(t *testing.T) {
	cases := []struct {
		name    string
		mean    float64
		waiting int64
		workers int64
		timeout time.Duration
		want    int
	}{
		// No latency observed yet: fall back to the nominal timeout hint.
		{"cold fallback", 0, 10, 4, 5 * time.Second, 5},
		{"cold fallback capped", 0, 10, 4, 5 * time.Minute, maxRetryAfterSeconds},
		{"cold fallback no timeout", 0, 10, 4, 0, 1},
		// Memo-warm server: sub-millisecond means quote the 1s floor even
		// with a long configured timeout.
		{"warm floor", 0.0004, 60, 4, 5 * time.Minute, 1},
		// Saturated with genuinely slow work: quote the queue's drain time.
		{"slow drain", 2.0, 7, 4, 30 * time.Second, 4}, // (7+1)/4 * 2s = 4s
		{"slow drain capped", 10.0, 63, 2, 30 * time.Second, maxRetryAfterSeconds},
		{"no workers", 1.0, 5, 0, 8 * time.Second, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := evalRetryAfter(c.mean, c.waiting, c.workers, c.timeout); got != c.want {
				t.Fatalf("evalRetryAfter(%v, %d, %d, %v) = %d, want %d",
					c.mean, c.waiting, c.workers, c.timeout, got, c.want)
			}
		})
	}
}

func TestJobsRetryAfter(t *testing.T) {
	cases := []struct {
		name    string
		depth   int
		rate    float64
		timeout time.Duration
		want    int
	}{
		{"cold fallback", 100, 0, 10 * time.Second, 10},
		{"backlog drains fast", 10, 20, 10 * time.Second, 1},  // 0.5s → floor
		{"backlog drains slow", 100, 8, 10 * time.Second, 13}, // ceil(12.5)
		{"deep backlog capped", 4096, 2, 10 * time.Second, maxRetryAfterSeconds},
		{"empty queue", 0, 5, 10 * time.Second, 1},
		{"negative depth", -3, 5, 10 * time.Second, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := jobsRetryAfter(c.depth, c.rate, c.timeout); got != c.want {
				t.Fatalf("jobsRetryAfter(%d, %v, %v) = %d, want %d",
					c.depth, c.rate, c.timeout, got, c.want)
			}
		})
	}
}

// TestRetryAfterDistinct is the satellite's core claim: under the same
// configured timeout, the two pools quote different, state-derived
// hints instead of both parroting the timeout.
func TestRetryAfterDistinct(t *testing.T) {
	timeout := 25 * time.Second
	// Sync pool: warm (0.8ms mean), short queue → floor.
	evalHint := evalRetryAfter(0.0008, 8, 4, timeout)
	// Job queue: 200 batch items backed up, draining 10/s → 20s.
	jobsHint := jobsRetryAfter(200, 10, timeout)
	if evalHint != 1 {
		t.Fatalf("evalHint = %d, want 1", evalHint)
	}
	if jobsHint != 20 {
		t.Fatalf("jobsHint = %d, want 20", jobsHint)
	}
	if evalHint == jobsHint {
		t.Fatal("pools quoted identical hints")
	}
}

func TestClampRetrySeconds(t *testing.T) {
	for _, c := range []struct {
		in   float64
		want int
	}{{-1, 1}, {0, 1}, {0.01, 1}, {1.2, 2}, {29.5, 30}, {1e9, maxRetryAfterSeconds}} {
		if got := clampRetrySeconds(c.in); got != c.want {
			t.Fatalf("clampRetrySeconds(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
