package serve

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"
)

// Options configures a Server. The zero value is not usable; call
// DefaultOptions and override.
type Options struct {
	// Addr is the listen address, e.g. ":8080".
	Addr string
	// Workers bounds concurrently executing evaluations (<= 0 means
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker before new ones are
	// shed with 429.
	QueueDepth int
	// RequestTimeout bounds one evaluation (queue wait included via the
	// request context); <= 0 disables the timeout.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds the /v1/eval request body.
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown.
	DrainTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logger receives structured request and lifecycle logs; nil discards
	// them.
	Logger *slog.Logger
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{
		Addr:           ":8080",
		Workers:        runtime.GOMAXPROCS(0),
		QueueDepth:     64,
		RequestTimeout: 30 * time.Second,
		MaxBodyBytes:   8 << 20,
		DrainTimeout:   30 * time.Second,
	}
}

// Server is the buspower evaluation service.
type Server struct {
	opts     Options
	pool     *pool
	metrics  *metrics
	log      *slog.Logger
	mux      *http.ServeMux
	draining atomic.Bool
}

// NewServer builds a Server; fields of opts left zero fall back to
// DefaultOptions.
func NewServer(opts Options) *Server {
	def := DefaultOptions()
	if opts.Addr == "" {
		opts.Addr = def.Addr
	}
	if opts.Workers <= 0 {
		opts.Workers = def.Workers
	}
	if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = def.MaxBodyBytes
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = def.DrainTimeout
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		opts:    opts,
		pool:    newPool(opts.Workers, opts.QueueDepth),
		metrics: newMetrics([]string{"eval", "schemes", "workloads", "healthz", "metrics"}),
		log:     log,
		mux:     http.NewServeMux(),
	}
	s.mux.Handle("/v1/eval", s.instrument("eval", s.handleEval))
	s.mux.Handle("/v1/schemes", s.instrument("schemes", s.handleSchemes))
	s.mux.Handle("/v1/workloads", s.instrument("workloads", s.handleWorkloads))
	s.mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("/metrics", s.instrument("metrics", s.handleMetrics))
	if opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's routing tree (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe runs the server until ctx is cancelled, then drains:
// /healthz flips to 503 so load balancers stop routing here, the
// listener closes, and in-flight requests get up to DrainTimeout to
// finish before the server exits. Returns nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe on an existing listener (the listener is
// closed on shutdown).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.Background() },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.log.Info("serving", "addr", ln.Addr().String(), "workers", s.opts.Workers, "queue", s.opts.QueueDepth)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.log.Info("draining", "timeout", s.opts.DrainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		// The drain window expired with requests still running; cut them.
		hs.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	s.log.Info("drained")
	return nil
}
